package eval

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"netsamp/internal/control"
	"netsamp/internal/core"
	"netsamp/internal/engine"
	"netsamp/internal/faults"
	"netsamp/internal/geant"
	"netsamp/internal/plan"
	"netsamp/internal/rng"
	"netsamp/internal/topology"
)

// DegradationStudy measures what the paper's per-interval
// re-optimization loop is worth when the monitoring plant itself fails.
// Over a grid of (monitor-failure rate, export-loss rate) points it
// simulates the same fault history against two operators:
//
//   - naive: solves once on the full candidate set and keeps the plan;
//     a crashed monitor silently stops sampling, and estimates are
//     renormalized by the PLANNED effective rate with no loss
//     compensation — the operator is blind to its own degradation;
//   - graceful: control.Controller.StepResilient fed by fast failure
//     detection — the collector's per-exporter FlowSequence counters
//     reveal a silent exporter within the interval, so the controller
//     excludes monitors down in the current interval (re-entry is
//     hysteresis-gated), solver overruns fall back to the last good plan
//     rescaled into budget, and estimates are renormalized by the
//     achieved effective rate and the collector's measured record loss.
//
// Every fault draw and sampling experiment is split-seeded, so the study
// is bit-identical at any worker count.

// DegradeConfig parameterizes the study. Zero-value fields select the
// defaults noted on each field.
type DegradeConfig struct {
	// FailRates are the per-interval monitor crash probabilities to
	// sweep (default 0, 0.1, 0.2).
	FailRates []float64
	// LossRates are the exporter→collector record loss fractions to
	// sweep (default 0, 0.05, 0.2).
	LossRates []float64
	// Intervals is the simulated horizon per grid point (default 8).
	Intervals int
	// Theta is the budget θ in packets per Interval (default 100000).
	Theta float64
	// OverrunRate is the per-interval probability the re-optimization
	// solve fails or overruns, exercising the fallback path (default
	// 0.2; negative disables overruns entirely; applies to the graceful
	// operator only — the naive one never re-solves).
	OverrunRate float64
	// Seed drives the fault plans and sampling experiments.
	Seed uint64
	// Workers bounds the engine pool (0 = GOMAXPROCS); results are
	// identical for every value.
	Workers int
}

func (c *DegradeConfig) defaults() {
	if c.FailRates == nil {
		c.FailRates = []float64{0, 0.1, 0.2}
	}
	if c.LossRates == nil {
		c.LossRates = []float64{0, 0.05, 0.2}
	}
	if c.Intervals <= 0 {
		c.Intervals = 8
	}
	if c.Theta <= 0 {
		c.Theta = 100000
	}
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if c.OverrunRate == 0 {
		c.OverrunRate = 0.2
	} else if c.OverrunRate < 0 {
		c.OverrunRate = 0
	}
}

// DegradePoint is one grid point of the study. Utilities are the mean
// per-pair SRE utility of the rates ACHIEVED on the wire (deployed plan
// restricted to monitors actually alive); squared errors are mean
// squared relative estimation errors of the simulated X/ρ̂ estimates.
type DegradePoint struct {
	FailRate float64
	LossRate float64

	NaiveUtility    float64
	GracefulUtility float64
	NaiveSqErr      float64
	GracefulSqErr   float64

	// Fallbacks counts graceful intervals served from the last good
	// plan; Degraded counts intervals the graceful controller flagged.
	Fallbacks int
	// BudgetViolations counts graceful deployed plans with
	// Σ p_i·U_i > θ. The controller's contract keeps this at zero.
	BudgetViolations int
	// NaiveUnmeasured counts pair-intervals the naive operator left
	// with zero achieved sampling rate (its estimate degenerates to 0).
	NaiveUnmeasured int
}

// DegradeResult aggregates the study grid.
type DegradeResult struct {
	Points    []DegradePoint
	Intervals int
	Theta     float64
}

// DegradationStudy runs the study; see DegradeConfig for the knobs.
func DegradationStudy(ctx context.Context, s *geant.Scenario, cfg DegradeConfig) (*DegradeResult, error) {
	cfg.defaults()
	budget := core.BudgetPerInterval(cfg.Theta, Interval)
	inv := s.UtilityParams(Interval)

	// The naive operator's one-shot plan is fault-independent: solve it
	// once and share it (read-only) across every grid point.
	prob, _, err := plan.Build(plan.Input{
		Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks,
		InvMeanSizes: inv, Budget: budget,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: degrade: %w", err)
	}
	sol, err := core.Solve(prob, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("eval: degrade: %w", err)
	}
	naivePlan := plan.RatesByLink(sol, s.MonitorLinks)
	naiveBelieved := plan.EffectiveRates(s.Matrix, naivePlan, nil)

	type gridPoint struct{ fail, loss float64 }
	var grid []gridPoint
	for _, f := range cfg.FailRates {
		for _, l := range cfg.LossRates {
			grid = append(grid, gridPoint{f, l})
		}
	}

	points, err := engine.Map(ctx, engine.Options{Workers: cfg.Workers, Seed: cfg.Seed}, len(grid),
		func(_ context.Context, job int, r *rng.Source) (DegradePoint, error) {
			gp := grid[job]
			fp, err := faults.NewPlan(faults.Config{
				Seed:          rng.SplitSeed(cfg.Seed, uint64(1000+job)),
				MonitorCrash:  gp.fail,
				MeanOutage:    2,
				SolverOverrun: cfg.OverrunRate,
			})
			if err != nil {
				return DegradePoint{}, err
			}
			return simulateDegradePoint(s, fp, r, degradeInputs{
				budget: budget, inv: inv, intervals: cfg.Intervals,
				lossRate: gp.loss, naivePlan: naivePlan, naiveBelieved: naiveBelieved,
			})
		})
	if err != nil {
		return nil, err
	}
	return &DegradeResult{Points: points, Intervals: cfg.Intervals, Theta: cfg.Theta}, nil
}

type degradeInputs struct {
	budget        float64
	inv           []float64
	intervals     int
	lossRate      float64
	naivePlan     map[topology.LinkID]float64
	naiveBelieved []float64
}

// simulateDegradePoint plays one fault history against both operators.
// All randomness is drawn sequentially from the job's private source, so
// the point is deterministic regardless of scheduling.
func simulateDegradePoint(s *geant.Scenario, fp *faults.Plan, r *rng.Source, in degradeInputs) (DegradePoint, error) {
	cfg := fp.Config()
	pt := DegradePoint{FailRate: cfg.MonitorCrash, LossRate: in.lossRate}
	// ReviveAfter 0: the fault model has no flapping (outages are
	// geometric, detection is exact), so holding a recovered monitor in
	// probation would only forfeit coverage.
	ctl, err := control.New(control.Options{Budget: in.budget})
	if err != nil {
		return pt, err
	}
	nPairs := len(s.Pairs)
	var utilN, utilG, sqN, sqG float64
	samples := 0

	for t := 0; t < in.intervals; t++ {
		deadNow := make(map[topology.LinkID]bool)
		for _, lid := range fp.DownSet(t, s.MonitorLinks) {
			deadNow[lid] = true
		}

		// Graceful: re-optimize with the current interval's failure set.
		// Export silence shows up in the collector's per-exporter counters
		// within seconds, so the controller learns about a dead monitor in
		// the same interval and patches the deployment accordingly.
		si := control.StepInput{
			Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks,
			InvSizes: in.inv, Workers: 1,
			Down: fp.DownSet(t, s.MonitorLinks),
		}
		if t > 0 {
			si.FailSolve = fp.SolverOverrun(t)
		}
		d, err := ctl.StepResilient(context.Background(), si)
		if err != nil {
			return pt, fmt.Errorf("eval: degrade interval %d: %w", t, err)
		}
		if d.Degraded {
			pt.Fallbacks++
		}
		if plan.SampledRate(d.Plan, s.Loads) > in.budget*(1+1e-9) {
			pt.BudgetViolations++
		}

		// What actually runs on the wire: each deployed plan restricted
		// to monitors alive THIS interval.
		restrict := func(p map[topology.LinkID]float64) map[topology.LinkID]float64 {
			out := make(map[topology.LinkID]float64, len(p))
			for lid, rate := range p {
				if !deadNow[lid] {
					out[lid] = rate
				}
			}
			return out
		}
		naiveAchieved := plan.EffectiveRates(s.Matrix, restrict(in.naivePlan), nil)
		gracefulAchieved := plan.EffectiveRates(s.Matrix, restrict(d.Plan), nil)
		// The graceful operator renormalizes by what it believes it
		// deployed; with in-interval detection the plan already excludes
		// the dead monitors, so belief tracks the wire.
		gracefulBelieved := plan.EffectiveRates(s.Matrix, d.Plan, nil)

		// Sampling experiment: binomial thinning at the achieved rate,
		// then record loss on the export path. The graceful estimator
		// compensates with the collector's measured loss fraction; the
		// naive one is blind to both.
		type draw struct{ sampled, delivered int64 }
		drawsN := make([]draw, nPairs)
		drawsG := make([]draw, nPairs)
		var sampledG, deliveredG int64
		for k := 0; k < nPairs; k++ {
			size := int64(s.Rates[k] * Interval)
			xn := r.Binomial(size, naiveAchieved[k])
			drawsN[k] = draw{xn, r.Binomial(xn, 1-in.lossRate)}
			xg := r.Binomial(size, gracefulAchieved[k])
			dg := r.Binomial(xg, 1-in.lossRate)
			drawsG[k] = draw{xg, dg}
			sampledG += xg
			deliveredG += dg
		}
		measuredLoss := 0.0
		if sampledG > 0 {
			measuredLoss = float64(sampledG-deliveredG) / float64(sampledG)
		}

		for k := 0; k < nPairs; k++ {
			size := s.Rates[k] * Interval
			u := core.MustSRE(in.inv[k])
			utilN += u.Value(naiveAchieved[k])
			utilG += u.Value(gracefulAchieved[k])

			estN := 0.0
			if in.naiveBelieved[k] > 0 {
				estN = float64(drawsN[k].delivered) / in.naiveBelieved[k]
			}
			//netsamp:floateq-ok an unmeasured pair has an exactly-zero achieved rate, not a rounded one
			if naiveAchieved[k] == 0 {
				pt.NaiveUnmeasured++
			}
			rhoHat := gracefulBelieved[k] * (1 - measuredLoss)
			estG := 0.0
			if rhoHat > 0 {
				estG = float64(drawsG[k].delivered) / rhoHat
			}
			relN := (estN - size) / size
			relG := (estG - size) / size
			sqN += relN * relN
			sqG += relG * relG
			samples++
		}
	}
	n := float64(samples)
	pt.NaiveUtility = utilN / n
	pt.GracefulUtility = utilG / n
	pt.NaiveSqErr = sqN / n
	pt.GracefulSqErr = sqG / n
	return pt, nil
}

// RenderDegrade writes the study as a text table.
func RenderDegrade(w io.Writer, r *DegradeResult) error {
	if _, err := fmt.Fprintf(w, "Degradation study: naive vs graceful operation (%d intervals of %.0f s, θ = %.0f)\n\n",
		r.Intervals, Interval, r.Theta); err != nil {
		return err
	}
	fmt.Fprintf(w, "%6s %6s | %10s %10s | %12s %12s | %5s %5s %5s\n",
		"fail", "loss", "util naive", "util grace", "sqerr naive", "sqerr grace", "fback", "bviol", "unmea")
	fmt.Fprintln(w, strings.Repeat("-", 96))
	for _, p := range r.Points {
		fmt.Fprintf(w, "%6.2f %6.2f | %10.4f %10.4f | %12.6f %12.6f | %5d %5d %5d\n",
			p.FailRate, p.LossRate, p.NaiveUtility, p.GracefulUtility,
			p.NaiveSqErr, p.GracefulSqErr, p.Fallbacks, p.BudgetViolations, p.NaiveUnmeasured)
	}
	fmt.Fprintln(w, "\nutil: mean per-pair SRE utility of the rates achieved on the wire")
	fmt.Fprintln(w, "sqerr: mean squared relative error of the X/ρ̂ size estimates")
	fmt.Fprintln(w, "fback: intervals served from the last known-good plan; bviol: budget violations (must be 0)")
	return nil
}

// DegradeCSV flattens the study for WriteCSV.
func DegradeCSV(r *DegradeResult) (header []string, rows [][]string) {
	header = []string{"fail_rate", "loss_rate",
		"naive_utility", "graceful_utility", "naive_sqerr", "graceful_sqerr",
		"fallbacks", "budget_violations", "naive_unmeasured"}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	for _, p := range r.Points {
		rows = append(rows, []string{
			f(p.FailRate), f(p.LossRate),
			f(p.NaiveUtility), f(p.GracefulUtility), f(p.NaiveSqErr), f(p.GracefulSqErr),
			strconv.Itoa(p.Fallbacks), strconv.Itoa(p.BudgetViolations), strconv.Itoa(p.NaiveUnmeasured),
		})
	}
	return header, rows
}
