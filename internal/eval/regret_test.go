package eval

import (
	"bytes"
	"context"
	"math"
	"testing"

	"netsamp/internal/geant"
)

func regretTestConfig() RegretConfig {
	return RegretConfig{
		FailRates: []float64{0.1, 0.2},
		Intervals: 16,
		Seed:      7,
		Workers:   1,
	}
}

// TestRegretRobustDominatesPlugin is the headline robustness claim:
// under drifting loads and a >= 10% per-interval monitor failure rate,
// the uncertainty-aware controller's cumulative utility regret against
// the true-load oracle is strictly below the naive plug-in's.
func TestRegretRobustDominatesPlugin(t *testing.T) {
	s := geant.MustBuild(1)
	res, err := RegretStudy(context.Background(), s, regretTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		// The oracle is an upper bound: no operator solving on estimates
		// may beat re-optimization on the true loads (solver tolerance
		// is the only slack).
		slack := 1e-6 * math.Abs(p.OracleUtility)
		if p.PluginRegret < -slack || p.RobustRegret < -slack {
			t.Errorf("fail %.2f: negative regret (plug-in %v, robust %v)", p.FailRate, p.PluginRegret, p.RobustRegret)
		}
		if !(p.RobustRegret < p.PluginRegret) {
			t.Errorf("fail %.2f: robust regret %v does not beat plug-in regret %v",
				p.FailRate, p.RobustRegret, p.PluginRegret)
		}
		if p.Explored == 0 {
			t.Errorf("fail %.2f: exploration reserve never spent", p.FailRate)
		}
	}
}

// TestRegretDeterministic: the study is bit-identical at any worker
// count and across a mid-run kill/restore of the robust controller.
func TestRegretDeterministic(t *testing.T) {
	s := geant.MustBuild(1)
	base := regretTestConfig()
	base.FailRates = []float64{0.1}
	base.Intervals = 10

	variants := []RegretConfig{base, base, base}
	variants[1].Workers = 4
	variants[2].KillAt = 5
	var results []*RegretResult
	for _, cfg := range variants {
		res, err := RegretStudy(context.Background(), s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	ref := results[0].Points[0]
	for i, res := range results[1:] {
		p := res.Points[0]
		same := math.Float64bits(p.OracleUtility) == math.Float64bits(ref.OracleUtility) &&
			math.Float64bits(p.PluginUtility) == math.Float64bits(ref.PluginUtility) &&
			math.Float64bits(p.RobustUtility) == math.Float64bits(ref.RobustUtility) &&
			p.PluginOverspends == ref.PluginOverspends &&
			p.RobustOverspends == ref.RobustOverspends &&
			p.Explored == ref.Explored
		if !same {
			t.Fatalf("variant %d diverged:\n%+v\n%+v", i+1, p, ref)
		}
	}
}

// TestRegretRendering smoke-tests the table and CSV writers.
func TestRegretRendering(t *testing.T) {
	res := &RegretResult{
		Points: []RegretPoint{{
			FailRate: 0.1, OracleUtility: 10, PluginUtility: 8, RobustUtility: 9,
			PluginRegret: 2, RobustRegret: 1, PluginOverspends: 3, Explored: 12,
		}},
		Intervals: 16, Theta: 100000,
	}
	var buf bytes.Buffer
	if err := RenderRegret(&buf, res); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
	header, rows := RegretCSV(res)
	if len(header) != 9 || len(rows) != 1 || len(rows[0]) != len(header) {
		t.Fatalf("CSV shape: %d cols, %d rows", len(header), len(rows))
	}
}
