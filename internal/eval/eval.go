// Package eval regenerates every table and figure of the paper's
// evaluation (Section V) on the synthetic GEANT scenario, plus the
// in-text statistics of Section IV-D:
//
//	Figure 1 — the utility function M(ρ) for two mean flow sizes;
//	Table I  — optimal sampling rates, per-pair utilities/accuracies,
//	           link loads and budget contributions at θ = 100,000
//	           packets per 5-minute interval;
//	Figure 2 — average/worst/best accuracy versus θ, full optimizer
//	           against the UK-links-only restriction;
//	§IV-D    — convergence statistics over randomized instances;
//	§V-C     — the access-link capacity comparison.
package eval

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"netsamp/internal/baseline"
	"netsamp/internal/core"
	"netsamp/internal/engine"
	"netsamp/internal/geant"
	"netsamp/internal/plan"
	"netsamp/internal/rng"
	"netsamp/internal/routing"
	"netsamp/internal/sampling"
	"netsamp/internal/topology"
	"netsamp/internal/traffic"
)

// Interval is the measurement interval (seconds) all experiments use.
const Interval = traffic.DefaultInterval

// Figure1Point is one abscissa of Figure 1.
type Figure1Point struct {
	Rho    float64
	M1, M2 float64 // utility for the two E[1/S] values
}

// Figure1Result reproduces Figure 1: M(ρ) for two mean flow sizes, with
// the stitching points x₀ annotated (the paper plots E[1/S] = 0.002,
// "average size 500", and E[1/S] ≈ 0.000667, "average size 1500").
type Figure1Result struct {
	C1, C2     float64
	X01, X02   float64
	MX01, MX02 float64
	Points     []Figure1Point
}

// Figure1 evaluates the two utilities on n points over [0, 1].
func Figure1(n int) Figure1Result {
	if n < 2 {
		n = 2
	}
	u1 := core.MustSRE(0.002)
	u2 := core.MustSRE(1.0 / 1500)
	res := Figure1Result{
		C1: u1.C, C2: u2.C,
		X01: u1.X0, X02: u2.X0,
		MX01: u1.Value(u1.X0), MX02: u2.Value(u2.X0),
	}
	for i := 0; i < n; i++ {
		rho := float64(i) / float64(n-1)
		res.Points = append(res.Points, Figure1Point{Rho: rho, M1: u1.Value(rho), M2: u2.Value(rho)})
	}
	return res
}

// Table1Link is one active monitor column of Table I.
type Table1Link struct {
	Link         topology.LinkID
	Name         string
	Rate         float64 // optimal sampling probability p_i
	Load         float64 // pkt/s
	Contribution float64 // fraction of θ consumed: p_i·U_i / θ
	Pairs        []string
}

// Table1Row is one OD-pair row of Table I.
type Table1Row struct {
	Name      string
	RatePkts  float64  // OD intensity, pkt/s
	Monitored []string // links where the pair is sampled
	Utility   float64
	Accuracy  float64 // mean 1−|X/ρ−S|/S over the sampling experiments
}

// Table1Result reproduces Table I.
type Table1Result struct {
	Theta    float64 // packets per interval
	Links    []Table1Link
	Rows     []Table1Row
	Solution *core.Solution
	// MaxMonitorsPerPair is the largest number of links any pair is
	// sampled on (the paper observes at most two).
	MaxMonitorsPerPair int
}

// Table1 solves the JANET task at θ packets per interval and runs
// `trials` sampling experiments per pair (the paper uses 20).
func Table1(s *geant.Scenario, theta float64, trials int, seed uint64) (*Table1Result, error) {
	budget := core.BudgetPerInterval(theta, Interval)
	prob, _, err := plan.Build(plan.Input{
		Matrix:       s.Matrix,
		Loads:        s.Loads,
		Candidates:   s.MonitorLinks,
		InvMeanSizes: s.UtilityParams(Interval),
		Budget:       budget,
	})
	if err != nil {
		return nil, err
	}
	sol, err := core.Solve(prob, core.Options{})
	if err != nil {
		return nil, err
	}
	rates := plan.RatesByLink(sol, s.MonitorLinks)

	res := &Table1Result{Theta: theta, Solution: sol}
	// Active monitor columns, ordered by link ID for stability.
	active := topology.SortedKeys(rates)
	for _, lid := range active {
		col := Table1Link{
			Link:         lid,
			Name:         s.Graph.LinkName(lid),
			Rate:         rates[lid],
			Load:         s.Loads[lid],
			Contribution: rates[lid] * s.Loads[lid] / budget,
		}
		for _, k := range s.Matrix.PairsOnLink(lid) {
			col.Pairs = append(col.Pairs, s.Pairs[k].Name)
		}
		res.Links = append(res.Links, col)
	}

	// OD rows with simulated accuracies.
	r := rng.New(seed)
	sizes := s.PairSizes(Interval)
	for k, pr := range s.Pairs {
		row := Table1Row{
			Name:     pr.Name,
			RatePkts: s.Rates[k],
			Utility:  sol.Utilities[k],
		}
		for _, lid := range s.Matrix.Rows[k] {
			if rates[lid] > 0 {
				row.Monitored = append(row.Monitored, s.Graph.LinkName(lid))
			}
		}
		if len(row.Monitored) > res.MaxMonitorsPerPair {
			res.MaxMonitorsPerPair = len(row.Monitored)
		}
		exp, err := sampling.Experiment(pr.Name, sizes[k], sol.Rho[k], trials, r.Split())
		if err != nil {
			return nil, err
		}
		row.Accuracy = exp.MeanAccuracy
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Figure2Point is one θ abscissa of Figure 2.
type Figure2Point struct {
	Theta   float64 // packets per interval
	Optimal sampling.Summary
	UKOnly  sampling.Summary
}

// Figure2 sweeps θ and, for each value, simulates the accuracy of the
// full optimal solution and of the optimizer restricted to the six UK
// links (the paper's comparison). The sweep runs on the engine's worker
// pool (one job per θ); see Figure2Ctx for cancellation and an explicit
// worker count.
func Figure2(s *geant.Scenario, thetas []float64, trials int, seed uint64) ([]Figure2Point, error) {
	return Figure2Ctx(context.Background(), s, thetas, trials, seed, 0)
}

// figure2ChunkSize is the continuation chunk of the Figure 2 sweep:
// each (candidate set, chunk of the θ grid) pair is one continuation
// chain. The chunking is a fixed function of the grid — never of the
// worker count — so the chains, and therefore the results, are
// bit-identical for every worker count.
const figure2ChunkSize = 4

// Figure2Ctx is Figure2 with cancellation and an explicit worker count
// (0 selects GOMAXPROCS). It runs in two phases. The optimization phase
// sweeps θ in continuation chains: each candidate-set variant compiles
// its problem once (plan.Compile), re-tunes only the budget between
// grid points, and warm-starts every solve from the previous θ's
// optimum (core.WarmStart) — the solver family's standard trick for
// related instances. The simulation phase then runs the sampling
// experiments with one engine job per θ, each with its own split-seeded
// random stream, so the result is bit-identical for every worker count
// (the chains are chunked by the fixed figure2ChunkSize, and the solves
// consume no randomness at all).
func Figure2Ctx(ctx context.Context, s *geant.Scenario, thetas []float64, trials int, seed uint64, workers int) ([]Figure2Point, error) {
	inv := s.UtilityParams(Interval)
	sizes := s.PairSizes(Interval)
	variants := [][]topology.LinkID{s.MonitorLinks, s.UKLinks}

	// Phase 1: continuation chains over the θ grid, one job per
	// (variant, chunk). Jobs write disjoint slots of sols.
	nChunks := (len(thetas) + figure2ChunkSize - 1) / figure2ChunkSize
	sols := make([][2]*core.Solution, len(thetas))
	_, err := engine.Map(ctx, engine.Options{Workers: workers}, len(variants)*nChunks,
		func(_ context.Context, job int, _ *rng.Source) (struct{}, error) {
			variant, chunk := job/nChunks, job%nChunks
			lo := chunk * figure2ChunkSize
			hi := lo + figure2ChunkSize
			if hi > len(thetas) {
				hi = len(thetas)
			}
			var (
				comp *plan.Compiled
				prev *core.Solution
				warm []float64
			)
			// The chain runs its chunk top-down: projecting an optimum onto
			// a SMALLER budget is a pure rescale that keeps the active
			// monitor set intact, so descending continuation converges in
			// one or two Newton steps per grid point, where ascending
			// continuation has to waterfill and re-discover activations.
			for i := hi - 1; i >= lo; i-- {
				theta := thetas[i]
				in := plan.Input{
					Matrix:       s.Matrix,
					Loads:        s.Loads,
					Candidates:   variants[variant],
					InvMeanSizes: inv,
					Budget:       core.BudgetPerInterval(theta, Interval),
				}
				var err error
				if comp == nil {
					comp, err = plan.Compile(in)
				} else {
					err = comp.Retune(in)
				}
				if err != nil {
					return struct{}{}, fmt.Errorf("eval: θ=%v: %w", theta, err)
				}
				opt := core.Options{}
				if prev != nil {
					if warm, err = comp.Solver().WarmStart(prev, warm); err != nil {
						return struct{}{}, fmt.Errorf("eval: θ=%v: %w", theta, err)
					}
					opt.Initial = warm
				}
				sol, err := comp.Solver().Solve(opt)
				if err != nil {
					return struct{}{}, fmt.Errorf("eval: θ=%v: %w", theta, err)
				}
				sols[i][variant] = sol
				prev = sol
			}
			return struct{}{}, nil
		})
	if err != nil {
		return nil, err
	}

	// Phase 2: sampling experiments, one job per θ with the same
	// split-seeded stream layout the sweep has always used.
	return engine.Map(ctx, engine.Options{Workers: workers, Seed: seed}, len(thetas),
		func(_ context.Context, i int, r *rng.Source) (Figure2Point, error) {
			point := Figure2Point{Theta: thetas[i]}
			for variant := range variants {
				sol := sols[i][variant]
				results := make([]sampling.Result, 0, len(s.Pairs))
				for k := range s.Pairs {
					exp, err := sampling.Experiment(s.Pairs[k].Name, sizes[k], sol.Rho[k], trials, r.Split())
					if err != nil {
						return point, err
					}
					results = append(results, exp)
				}
				if variant == 0 {
					point.Optimal = sampling.Summarize(results)
				} else {
					point.UKOnly = sampling.Summarize(results)
				}
			}
			return point, nil
		})
}

// DefaultThetas is the Figure 2 sweep: log-spaced budgets from 10k to
// 1M sampled packets per interval.
func DefaultThetas() []float64 {
	return []float64{10000, 20000, 50000, 100000, 200000, 500000, 1000000}
}

// ConvergenceResult reproduces the Section IV-D statistics: the paper
// reports 98.6% of runs converging within 2000 iterations and 1.64±1.27
// constraint-removal events per run over 200 randomized executions.
type ConvergenceResult struct {
	Runs           int
	Converged      int
	PctConverged   float64
	MeanRemovals   float64
	StdRemovals    float64
	MeanIterations float64
	MaxIterations  int
}

// ConvergenceStudy runs the solver on `runs` randomized instances:
// per-run jitter on OD sizes, link loads and θ, as in the paper ("each
// time with a different set of input parameters").
func ConvergenceStudy(s *geant.Scenario, runs int, seed uint64) (*ConvergenceResult, error) {
	return ConvergenceStudyCtx(context.Background(), s, runs, seed, core.Options{}, 0)
}

// ConvergenceStudyWithOptions is ConvergenceStudy under explicit solver
// options. Passing DisablePreconditioner reproduces the behaviour of the
// paper's plain gradient-projection method (slower convergence, more
// constraint-removal events).
func ConvergenceStudyWithOptions(s *geant.Scenario, runs int, seed uint64, opt core.Options) (*ConvergenceResult, error) {
	return ConvergenceStudyCtx(context.Background(), s, runs, seed, opt, 0)
}

// convergenceChunkSize is the number of randomized runs each worker job
// solves on one shared compiled plan. Like figure2ChunkSize it is a
// fixed function of the run grid, never of the worker count.
const convergenceChunkSize = 16

// ConvergenceStudyCtx runs the randomized instances on the engine's
// worker pool and aggregates the per-run statistics in run order. The
// runs are grouped into fixed-size chunks; each chunk compiles the
// problem structure once (the matrix and candidate set never change —
// only loads, utility parameters and θ are jittered) and re-tunes it
// per run through the plan.Compiled path. Every run still draws its
// jitter from its own split-seeded stream (rng.SplitSeed(seed, run))
// and starts cold from the waterfilling point, so the per-run solver
// statistics — the study's whole output — are bit-identical to solving
// each instance from scratch, for every worker count. workers = 0
// selects GOMAXPROCS.
func ConvergenceStudyCtx(ctx context.Context, s *geant.Scenario, runs int, seed uint64, opt core.Options, workers int) (*ConvergenceResult, error) {
	if runs <= 0 {
		runs = 200
	}
	inv := s.UtilityParams(Interval)
	nChunks := (runs + convergenceChunkSize - 1) / convergenceChunkSize
	stats := make([]core.Stats, runs)
	_, err := engine.Map(ctx, engine.Options{Workers: workers}, nChunks,
		func(_ context.Context, chunk int, _ *rng.Source) (struct{}, error) {
			lo := chunk * convergenceChunkSize
			hi := lo + convergenceChunkSize
			if hi > runs {
				hi = runs
			}
			var comp *plan.Compiled
			loads := make([]float64, len(s.Loads))
			invRun := make([]float64, len(inv))
			for run := lo; run < hi; run++ {
				r := rng.New(rng.SplitSeed(seed, uint64(run)))
				for i, u := range s.Loads {
					loads[i] = u * r.LogNormal(0, 0.4)
				}
				for k, c := range inv {
					invRun[k] = math.Min(1, c*r.LogNormal(0, 0.3))
				}
				theta := 20000 + r.Float64()*480000 // packets per interval
				in := plan.Input{
					Matrix:       s.Matrix,
					Loads:        loads,
					Candidates:   s.MonitorLinks,
					InvMeanSizes: invRun,
					Budget:       core.BudgetPerInterval(theta, Interval),
				}
				var err error
				if comp == nil {
					comp, err = plan.Compile(in)
				} else {
					err = comp.Retune(in)
				}
				if err != nil {
					return struct{}{}, err
				}
				sol, err := comp.Solver().Solve(opt)
				if err != nil {
					return struct{}{}, err
				}
				stats[run] = sol.Stats
			}
			return struct{}{}, nil
		})
	if err != nil {
		return nil, err
	}
	res := &ConvergenceResult{Runs: runs}
	var sumRem, sumRem2, sumIter float64
	for _, st := range stats {
		if st.Converged {
			res.Converged++
		}
		sumRem += float64(st.Removals)
		sumRem2 += float64(st.Removals) * float64(st.Removals)
		sumIter += float64(st.Iterations)
		if st.Iterations > res.MaxIterations {
			res.MaxIterations = st.Iterations
		}
	}
	n := float64(runs)
	res.PctConverged = 100 * float64(res.Converged) / n
	res.MeanRemovals = sumRem / n
	res.MeanIterations = sumIter / n
	if v := sumRem2/n - res.MeanRemovals*res.MeanRemovals; v > 0 {
		res.StdRemovals = math.Sqrt(v)
	}
	return res, nil
}

// AccessComparison reproduces the Section V-C argument: the access link
// carries every OD pair at a single sampling rate, so matching the
// optimum's per-pair accuracy requires sampling it at the LARGEST
// effective rate the optimum assigns to any pair — which the smallest
// OD pair drives (JANET-LU needs ≈1%). That costs substantially more
// capacity than θ (the paper computes 173,798 sampled packets per
// interval against θ = 100,000: ≈70% more).
type AccessComparison struct {
	Theta float64 // packets per interval (the optimum's budget)
	// DrivingPair is the OD pair whose optimal effective rate is the
	// largest (the smallest OD pair), and RequiredRho that rate — the
	// sampling rate the access link must run at.
	DrivingPair string
	RequiredRho float64
	// AccessTheta is the packets-per-interval capacity the access-link
	// strategy consumes at RequiredRho.
	AccessTheta float64
	// OverheadPct is 100·(AccessTheta−Theta)/Theta.
	OverheadPct float64
}

// AccessLinkComparison computes the capacity comparison at θ packets
// per interval (the paper evaluates θ = 100,000).
func AccessLinkComparison(s *geant.Scenario, theta float64) (*AccessComparison, error) {
	budget := core.BudgetPerInterval(theta, Interval)
	prob, _, err := plan.Build(plan.Input{
		Matrix:       s.Matrix,
		Loads:        s.Loads,
		Candidates:   s.MonitorLinks,
		InvMeanSizes: s.UtilityParams(Interval),
		Budget:       budget,
	})
	if err != nil {
		return nil, err
	}
	sol, err := core.Solve(prob, core.Options{})
	if err != nil {
		return nil, err
	}
	driving := 0
	for k := range sol.Rho {
		if sol.Rho[k] > sol.Rho[driving] {
			driving = k
		}
	}
	rho := sol.Rho[driving]
	accessRate := rho * s.Loads[s.AccessLink] // sampled pkt/s
	accessTheta := accessRate * Interval
	return &AccessComparison{
		Theta:       theta,
		DrivingPair: s.Pairs[driving].Name,
		RequiredRho: rho,
		AccessTheta: accessTheta,
		OverheadPct: 100 * (accessTheta - theta) / theta,
	}, nil
}

// ODPairsByName returns the scenario pair index by name (test helper
// shared by the CLI).
func ODPairsByName(pairs []routing.ODPair) map[string]int {
	out := make(map[string]int, len(pairs))
	for k, p := range pairs {
		out[p.Name] = k
	}
	return out
}

// Figure2ExtPoint extends a Figure 2 abscissa with the baseline series
// the paper discusses but does not plot: uniform network-wide sampling
// (the ISP practice of the introduction) and the two-phase
// placement-then-rates heuristic (the Suh et al.-style comparator of
// Section II).
type Figure2ExtPoint struct {
	Figure2Point
	Uniform sampling.Summary
	Greedy  sampling.Summary
}

// Figure2Extended runs the Figure 2 sweep with two extra baseline
// series.
func Figure2Extended(s *geant.Scenario, thetas []float64, trials int, seed uint64) ([]Figure2ExtPoint, error) {
	return Figure2ExtendedCtx(context.Background(), s, thetas, trials, seed, 0)
}

// Figure2ExtendedCtx is Figure2Extended on the engine's worker pool: the
// baseline assignments of each θ are built concurrently through
// baseline.CompareAll and the per-θ simulations are independent engine
// jobs, deterministically seeded per θ index.
func Figure2ExtendedCtx(ctx context.Context, s *geant.Scenario, thetas []float64, trials int, seed uint64, workers int) ([]Figure2ExtPoint, error) {
	base, err := Figure2Ctx(ctx, s, thetas, trials, seed, workers)
	if err != nil {
		return nil, err
	}
	sizes := s.PairSizes(Interval)
	return engine.Map(ctx, engine.Options{Workers: workers, Seed: seed ^ 0x5eed}, len(thetas),
		func(ctx context.Context, i int, r *rng.Source) (Figure2ExtPoint, error) {
			theta := thetas[i]
			out := Figure2ExtPoint{Figure2Point: base[i]}
			budget := core.BudgetPerInterval(theta, Interval)
			assigns, err := baseline.CompareAll(ctx, 0,
				baseline.Standard(s.Matrix, s.Loads, s.MonitorLinks, s.Rates, budget))
			if err != nil {
				return out, fmt.Errorf("eval: θ=%v: %w", theta, err)
			}
			simulate := func(rho []float64) (sampling.Summary, error) {
				results := make([]sampling.Result, 0, len(s.Pairs))
				for k := range s.Pairs {
					exp, err := sampling.Experiment(s.Pairs[k].Name, sizes[k], rho[k], trials, r.Split())
					if err != nil {
						return sampling.Summary{}, err
					}
					results = append(results, exp)
				}
				return sampling.Summarize(results), nil
			}
			if out.Uniform, err = simulate(assigns[0].Rho); err != nil {
				return out, err
			}
			if out.Greedy, err = simulate(assigns[1].Rho); err != nil {
				return out, err
			}
			return out, nil
		})
}

// RenderFigure2Extended writes the four-series sweep (worst-pair
// accuracy, the series where strategies separate most).
func RenderFigure2Extended(w io.Writer, points []Figure2ExtPoint) error {
	if _, err := fmt.Fprintf(w, "Figure 2 (extended) — worst-pair accuracy vs θ\n\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s %10s %10s %10s %10s\n", "theta", "optimal", "uk-only", "uniform", "greedy")
	fmt.Fprintln(w, strings.Repeat("-", 56))
	for _, p := range points {
		fmt.Fprintf(w, "%10.0f %10.4f %10.4f %10.4f %10.4f\n",
			p.Theta, p.Optimal.Worst, p.UKOnly.Worst, p.Uniform.Worst, p.Greedy.Worst)
	}
	return nil
}
