package eval

import (
	"math"
	"testing"

	"netsamp/internal/core"
	"netsamp/internal/geant"
	"netsamp/internal/plan"
)

func TestScaleStudy(t *testing.T) {
	pts, err := ScaleStudy(ScaleStudyConfig{
		Seed:  11,
		Links: []int{300, 500},
		Exact: core.Options{MaxIter: 4000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points, want 2", len(pts))
	}
	for _, pt := range pts {
		if pt.NNZ <= pt.Pairs {
			t.Fatalf("%d links: NNZ %d implausible for %d pairs", pt.Links, pt.NNZ, pt.Pairs)
		}
		if !pt.ExactConverged {
			t.Errorf("%d links: exact solve did not converge in %d iterations", pt.Links, pt.ExactIterations)
		}
		scale := math.Max(1, math.Abs(pt.ExactObjective))
		// The certificate must bracket the exact optimum.
		if pt.ApproxObjective > pt.ExactObjective+1e-7*scale {
			t.Errorf("%d links: approx objective %v beats exact %v", pt.Links, pt.ApproxObjective, pt.ExactObjective)
		}
		if pt.ExactObjective > pt.ApproxObjective+pt.GapBound+1e-7*scale {
			t.Errorf("%d links: gap bound unsound: exact %v > approx %v + gap %v",
				pt.Links, pt.ExactObjective, pt.ApproxObjective, pt.GapBound)
		}
		if pt.GapBound < 0 || math.IsNaN(pt.GapBound) || pt.GapRelative < 0 {
			t.Errorf("%d links: bad certificate: gap %v rel %v", pt.Links, pt.GapBound, pt.GapRelative)
		}
		if !pt.ShardBitIdentical {
			t.Errorf("%d links: sharded solves not bit-identical across worker counts %v",
				pt.Links, pt.WorkersTested)
		}
	}
}

func TestScaleStudyRejectsEmpty(t *testing.T) {
	if _, err := ScaleStudy(ScaleStudyConfig{}); err == nil {
		t.Fatal("empty study accepted")
	}
}

// TestApproxGapSoundOnGEANTThetaGrid pins the Frank-Wolfe certificate
// on the paper's own scenario across the Figure 2 budget sweep: at
// every θ the exact optimum must lie within [approx, approx + gap].
func TestApproxGapSoundOnGEANTThetaGrid(t *testing.T) {
	s := geant.MustBuild(1)
	inv := s.UtilityParams(Interval)
	for _, theta := range DefaultThetas() {
		budget := core.BudgetPerInterval(theta, Interval)
		prob, _, err := plan.Build(plan.Input{
			Matrix:       s.Matrix,
			Loads:        s.Loads,
			Candidates:   s.MonitorLinks,
			InvMeanSizes: inv,
			Budget:       budget,
		})
		if err != nil {
			t.Fatalf("θ=%v: %v", theta, err)
		}
		exact, err := core.Solve(prob, core.Options{})
		if err != nil {
			t.Fatalf("θ=%v: exact: %v", theta, err)
		}
		solver, err := core.NewSolver(prob)
		if err != nil {
			t.Fatalf("θ=%v: %v", theta, err)
		}
		apx, err := solver.SolveApprox(core.ApproxOptions{})
		if err != nil {
			t.Fatalf("θ=%v: approx: %v", theta, err)
		}
		if !apx.Approx || apx.GapBound < 0 || math.IsNaN(apx.GapBound) {
			t.Fatalf("θ=%v: bad certificate: approx=%v gap=%v", theta, apx.Approx, apx.GapBound)
		}
		scale := math.Max(1, math.Abs(exact.Objective))
		if apx.Objective > exact.Objective+1e-7*scale {
			t.Errorf("θ=%v: approx objective %v beats exact %v", theta, apx.Objective, exact.Objective)
		}
		if exact.Objective > apx.Objective+apx.GapBound+1e-7*scale {
			t.Errorf("θ=%v: gap bound unsound: exact %v > approx %v + gap %v",
				theta, exact.Objective, apx.Objective, apx.GapBound)
		}
	}
}
