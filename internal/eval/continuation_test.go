package eval

import (
	"fmt"
	"math"
	"testing"

	"netsamp/internal/core"
	"netsamp/internal/geant"
	"netsamp/internal/plan"
	"netsamp/internal/rng"
	"netsamp/internal/topology"
)

// These tests pin the correctness side of the continuation machinery:
// the warm-started, retuned solves the studies now run must land on the
// same fixed point as a cold compile-and-solve of every instance —
// same objective within tolerance and the same active monitor set.

// activeSet returns which links a solution samples (the solver snaps
// inactive rates to exact zero, so > 0 is the set membership test).
func activeSet(sol *core.Solution) []bool {
	out := make([]bool, len(sol.Rates))
	for i, r := range sol.Rates {
		out[i] = r > 0
	}
	return out
}

func checkSameFixedPoint(t *testing.T, label string, warm, cold *core.Solution) {
	t.Helper()
	if !warm.Stats.Converged || !cold.Stats.Converged {
		t.Fatalf("%s: converged warm=%v cold=%v", label, warm.Stats.Converged, cold.Stats.Converged)
	}
	if diff := math.Abs(warm.Objective - cold.Objective); diff > 1e-5*math.Max(1, math.Abs(cold.Objective)) {
		t.Fatalf("%s: objectives differ by %v (warm %v, cold %v)", label, diff, warm.Objective, cold.Objective)
	}
	wa, ca := activeSet(warm), activeSet(cold)
	for i := range wa {
		if wa[i] != ca[i] {
			t.Fatalf("%s: active sets differ at link %d (warm rate %v, cold rate %v)",
				label, i, warm.Rates[i], cold.Rates[i])
		}
	}
}

// TestFigure2ContinuationMatchesCold walks the Figure 2 θ grid exactly
// as Figure2Ctx does — one compiled plan per candidate set, budget
// retuned between grid points, every solve warm-started from the
// neighbouring optimum in descending order — and checks each solution
// against a cold Build+Solve of the same instance.
func TestFigure2ContinuationMatchesCold(t *testing.T) {
	s, err := geant.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	inv := s.UtilityParams(Interval)
	thetas := DefaultThetas()
	for variant, cands := range [][]topology.LinkID{s.MonitorLinks, s.UKLinks} {
		var (
			comp *plan.Compiled
			prev *core.Solution
			warm []float64
		)
		for i := len(thetas) - 1; i >= 0; i-- {
			in := plan.Input{
				Matrix:       s.Matrix,
				Loads:        s.Loads,
				Candidates:   cands,
				InvMeanSizes: inv,
				Budget:       core.BudgetPerInterval(thetas[i], Interval),
			}
			if comp == nil {
				comp, err = plan.Compile(in)
			} else {
				err = comp.Retune(in)
			}
			if err != nil {
				t.Fatalf("variant %d θ=%v: %v", variant, thetas[i], err)
			}
			opt := core.Options{}
			if prev != nil {
				if warm, err = comp.Solver().WarmStart(prev, warm); err != nil {
					t.Fatalf("variant %d θ=%v: %v", variant, thetas[i], err)
				}
				opt.Initial = warm
			}
			sol, err := comp.Solver().Solve(opt)
			if err != nil {
				t.Fatalf("variant %d θ=%v: %v", variant, thetas[i], err)
			}
			prob, _, err := plan.Build(in)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := core.Solve(prob, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			checkSameFixedPoint(t, fmt.Sprintf("variant %d θ=%v", variant, thetas[i]), sol, cold)
			prev = sol
		}
	}
}

// TestDynamicContinuationMatchesCold replays the dynamic study's
// per-interval chain — one plan.Cache, loads drifting every interval,
// each solve warm-started from the previous interval's optimum — and
// checks every interval against a cold solve.
func TestDynamicContinuationMatchesCold(t *testing.T) {
	s, err := geant.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	inv := s.UtilityParams(Interval)
	budget := core.BudgetPerInterval(100000, Interval)
	r := rng.New(7)
	cache := plan.NewCache()
	var (
		prev *core.Solution
		warm []float64
	)
	loads := make([]float64, len(s.Loads))
	for interval := 0; interval < 10; interval++ {
		for i, u := range s.Loads {
			loads[i] = u * r.LogNormal(0, 0.15)
		}
		in := plan.Input{
			Matrix:       s.Matrix,
			Loads:        loads,
			Candidates:   s.MonitorLinks,
			InvMeanSizes: inv,
			Budget:       budget,
		}
		comp, err := cache.Get(in)
		if err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		opt := core.Options{}
		if prev != nil {
			if warm, err = comp.Solver().WarmStart(prev, warm); err != nil {
				t.Fatalf("interval %d: %v", interval, err)
			}
			opt.Initial = warm
		}
		sol, err := comp.Solver().Solve(opt)
		if err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		prob, _, err := plan.Build(in)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := core.Solve(prob, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkSameFixedPoint(t, fmt.Sprintf("interval %d", interval), sol, cold)
		prev = sol
	}
	if hits, misses := cache.Stats(); misses != 1 || hits != 9 {
		t.Fatalf("cache stats = (%d hits, %d misses), want (9, 1): identity should be stable across intervals", hits, misses)
	}
}

// TestSecondOrderMatchesFirstOrder: the Newton-accelerated solver and
// the pure first-order ablation must agree on the fixed point (the
// acceleration changes the path, not the destination).
func TestSecondOrderMatchesFirstOrder(t *testing.T) {
	s, err := geant.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	inv := s.UtilityParams(Interval)
	for _, theta := range []float64{20000, 100000, 500000} {
		prob, _, err := plan.Build(plan.Input{
			Matrix:       s.Matrix,
			Loads:        s.Loads,
			Candidates:   s.MonitorLinks,
			InvMeanSizes: inv,
			Budget:       core.BudgetPerInterval(theta, Interval),
		})
		if err != nil {
			t.Fatal(err)
		}
		accel, err := core.Solve(prob, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := core.Solve(prob, core.Options{DisableSecondOrder: true})
		if err != nil {
			t.Fatal(err)
		}
		checkSameFixedPoint(t, fmt.Sprintf("θ=%v", theta), accel, plain)
		if accel.Stats.Iterations > plain.Stats.Iterations {
			t.Fatalf("θ=%v: second order took more iterations (%d) than first order (%d)",
				theta, accel.Stats.Iterations, plain.Stats.Iterations)
		}
	}
}
