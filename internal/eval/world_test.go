package eval

import (
	"testing"

	"netsamp/internal/geant"
)

// TestIntervalWorldPure: interval t's world is a pure function of
// (seed, t) — identical bits regardless of evaluation order, so a
// recovered run regenerates any interval without replaying its
// predecessors.
func TestIntervalWorldPure(t *testing.T) {
	s := geant.MustBuild(1)
	// Evaluate out of order, twice.
	order := []int{7, 0, 3, 7, 0, 3}
	got := make(map[int]*World)
	for _, tick := range order {
		w, err := IntervalWorld(s, tick, 42)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := got[tick]; ok {
			for i := range w.Loads {
				if w.Loads[i] != prev.Loads[i] {
					t.Fatalf("interval %d load %d not pure: %v vs %v", tick, i, w.Loads[i], prev.Loads[i])
				}
			}
			for k := range w.Inv {
				if w.Inv[k] != prev.Inv[k] {
					t.Fatalf("interval %d inv %d not pure", tick, k)
				}
			}
			continue
		}
		got[tick] = w
	}
	// Different intervals and different seeds actually vary.
	same := true
	for i := range got[0].Loads {
		if got[0].Loads[i] != got[7].Loads[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("intervals 0 and 7 produced identical loads")
	}
	other, err := IntervalWorld(s, 0, 43)
	if err != nil {
		t.Fatal(err)
	}
	same = true
	for i := range other.Loads {
		if other.Loads[i] != got[0].Loads[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical loads")
	}
	// Sanity: loads positive, inv in (0, 1].
	for i, u := range got[0].Loads {
		if !(u >= 0) {
			t.Fatalf("load %d = %v", i, u)
		}
	}
	for k, c := range got[0].Inv {
		if !(c > 0 && c <= 1) {
			t.Fatalf("inv %d = %v", k, c)
		}
	}
	if _, err := IntervalWorld(s, -1, 42); err == nil {
		t.Fatal("negative interval accepted")
	}
}
