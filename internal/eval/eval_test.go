package eval

import (
	"math"
	"strings"
	"testing"

	"netsamp/internal/geant"
)

func scenario(t *testing.T) *geant.Scenario {
	t.Helper()
	return geant.MustBuild(1)
}

func TestFigure1ShapeAndAnnotations(t *testing.T) {
	r := Figure1(101)
	if len(r.Points) != 101 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if r.Points[0].Rho != 0 || r.Points[100].Rho != 1 {
		t.Fatalf("abscissa range [%v, %v]", r.Points[0].Rho, r.Points[100].Rho)
	}
	// Paper's annotations: x0 ≈ 0.005988 / 0.002, M(x0) ≈ 0.666…0.668.
	if math.Abs(r.X01-0.005988) > 1e-5 || math.Abs(r.X02-0.002) > 2e-5 {
		t.Fatalf("x0 = %v / %v", r.X01, r.X02)
	}
	if math.Abs(r.MX01-2.0/3) > 0.005 || math.Abs(r.MX02-2.0/3) > 0.005 {
		t.Fatalf("M(x0) = %v / %v", r.MX01, r.MX02)
	}
	// M(0) = 0, M(1) = 1 for both curves; monotone increasing.
	if r.Points[0].M1 != 0 || r.Points[0].M2 != 0 {
		t.Fatal("M(0) != 0")
	}
	if math.Abs(r.Points[100].M1-1) > 1e-9 || math.Abs(r.Points[100].M2-1) > 1e-9 {
		t.Fatalf("M(1) = %v / %v", r.Points[100].M1, r.Points[100].M2)
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].M1 <= r.Points[i-1].M1 || r.Points[i].M2 <= r.Points[i-1].M2 {
			t.Fatalf("utility not increasing at %d", i)
		}
	}
	// The smaller-c (larger flows) curve dominates: bigger flows are
	// easier to estimate at the same ρ.
	mid := r.Points[50]
	if mid.M2 <= mid.M1 {
		t.Fatalf("M(avg 1500) = %v not above M(avg 500) = %v at ρ=%v", mid.M2, mid.M1, mid.Rho)
	}
}

func TestTable1ReproducesPaperShape(t *testing.T) {
	s := scenario(t)
	r, err := Table1(s, 100000, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Solution.Stats.Converged {
		t.Fatal("Table I solve did not converge")
	}
	// Paper shape (Section V-B): the optimum activates a small subset of
	// the candidate links...
	if len(r.Links) == 0 || len(r.Links) >= len(s.MonitorLinks) {
		t.Fatalf("active links = %d of %d", len(r.Links), len(s.MonitorLinks))
	}
	// ...every OD pair is sampled on at most two links...
	if r.MaxMonitorsPerPair > 2 {
		t.Fatalf("a pair is sampled on %d links (paper: at most 2)", r.MaxMonitorsPerPair)
	}
	// ...sampling rates are low (~1% or below on every link)...
	for _, l := range r.Links {
		if l.Rate > 0.02 {
			t.Fatalf("rate on %s = %v, want low rates", l.Name, l.Rate)
		}
	}
	// ...the budget shares sum to 1...
	sum := 0.0
	for _, l := range r.Links {
		sum += l.Contribution
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("contributions sum to %v", sum)
	}
	// ...and the measurement is accurate and fair: the paper reports
	// average accuracy above 0.89 for every OD pair.
	for _, row := range r.Rows {
		if row.Accuracy < 0.85 {
			t.Fatalf("pair %s accuracy = %v (paper: ≥0.89 on all pairs)", row.Name, row.Accuracy)
		}
		if row.Utility <= 0 {
			t.Fatalf("pair %s has zero utility", row.Name)
		}
	}
	// The distal stub links that make small pairs cheap must be active.
	names := map[string]bool{}
	for _, l := range r.Links {
		names[l.Name] = true
	}
	for _, want := range []string{"FR->LU", "CZ->SK"} {
		if !names[want] {
			t.Fatalf("expected distal link %s active; active set: %v", want, names)
		}
	}
}

func TestTable1UtilityTracksAccuracy(t *testing.T) {
	// Utilities are balanced across pairs (the paper's fairness claim):
	// min and max utility within a moderate band.
	s := scenario(t)
	r, err := Table1(s, 100000, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	minU, maxU := math.Inf(1), math.Inf(-1)
	for _, row := range r.Rows {
		minU = math.Min(minU, row.Utility)
		maxU = math.Max(maxU, row.Utility)
	}
	if minU < 0.5*maxU {
		t.Fatalf("utilities unbalanced: min %v, max %v", minU, maxU)
	}
}

func TestFigure2Shape(t *testing.T) {
	s := scenario(t)
	thetas := []float64{20000, 100000, 500000}
	points, err := Figure2(s, thetas, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(thetas) {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		// The optimum dominates the UK restriction on worst-pair accuracy
		// (the paper's headline comparison), with a small statistical
		// tolerance at high θ where both saturate.
		if p.Optimal.Worst < p.UKOnly.Worst-0.02 {
			t.Fatalf("θ=%v: optimal worst %v below UK-only worst %v",
				p.Theta, p.Optimal.Worst, p.UKOnly.Worst)
		}
		if p.Optimal.Average < p.UKOnly.Average-0.02 {
			t.Fatalf("θ=%v: optimal avg %v below UK-only avg %v",
				p.Theta, p.Optimal.Average, p.UKOnly.Average)
		}
		// Accuracy is non-decreasing in θ for the optimum.
		if i > 0 && p.Optimal.Average < points[i-1].Optimal.Average-0.02 {
			t.Fatalf("optimal average accuracy dropped with higher θ: %v → %v",
				points[i-1].Optimal.Average, p.Optimal.Average)
		}
		// Bounds sanity: worst ≤ average ≤ best ≤ 1.
		for _, s := range []struct{ w, a, b float64 }{
			{p.Optimal.Worst, p.Optimal.Average, p.Optimal.Best},
			{p.UKOnly.Worst, p.UKOnly.Average, p.UKOnly.Best},
		} {
			if !(s.w <= s.a+1e-9 && s.a <= s.b+1e-9 && s.b <= 1+1e-9) {
				t.Fatalf("θ=%v: summary ordering broken: %+v", p.Theta, s)
			}
		}
	}
	// The gap must be visible at the low-capacity end: the UK restriction
	// hurts the worst (small) OD pairs there.
	if points[0].Optimal.Worst <= points[0].UKOnly.Worst {
		t.Fatalf("no worst-pair gap at low θ: %v vs %v",
			points[0].Optimal.Worst, points[0].UKOnly.Worst)
	}
}

func TestConvergenceStudy(t *testing.T) {
	s := scenario(t)
	r, err := ConvergenceStudy(s, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	if r.Runs != 60 {
		t.Fatalf("runs = %d", r.Runs)
	}
	// The paper reports 98.6% convergence; require at least 90% here.
	if r.PctConverged < 90 {
		t.Fatalf("converged = %.1f%%", r.PctConverged)
	}
	// Removal events are rare (paper: 1.64 ± 1.27 per run).
	if r.MeanRemovals > 10 {
		t.Fatalf("mean removals = %v", r.MeanRemovals)
	}
	if r.MaxIterations > 2000 {
		t.Fatalf("max iterations = %d exceeded the 2000 cap", r.MaxIterations)
	}
}

func TestAccessLinkComparison(t *testing.T) {
	s := scenario(t)
	r, err := AccessLinkComparison(s, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Section V-C: matching the worst pair's accuracy by
	// sampling the access link alone costs substantially more capacity.
	if r.OverheadPct <= 20 {
		t.Fatalf("access-link overhead = %.0f%%, expected a large penalty", r.OverheadPct)
	}
	if r.AccessTheta <= r.Theta {
		t.Fatalf("access θ = %v not above optimal θ = %v", r.AccessTheta, r.Theta)
	}
	if r.DrivingPair != "JANET-LU" {
		t.Fatalf("driving pair = %s, want JANET-LU (the smallest OD pair)", r.DrivingPair)
	}
	if r.RequiredRho < 0.005 || r.RequiredRho > 0.03 {
		t.Fatalf("required rate = %v, want the paper's ≈1%% regime", r.RequiredRho)
	}
}

func TestRenderers(t *testing.T) {
	s := scenario(t)
	t1, err := Table1(s, 100000, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RenderTable1(&b, t1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table I", "FR->LU", "JANET-NL", "accuracy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I output missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	if err := RenderFigure1(&b, Figure1(11)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 1") {
		t.Fatal("figure 1 render missing header")
	}
	b.Reset()
	pts, err := Figure2(s, []float64{50000}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderFigure2(&b, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "opt wrst") {
		t.Fatal("figure 2 render missing columns")
	}
	b.Reset()
	conv, err := ConvergenceStudy(s, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderConvergence(&b, conv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Convergence study") {
		t.Fatal("convergence render missing header")
	}
	b.Reset()
	ac, err := AccessLinkComparison(s, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderAccessComparison(&b, ac); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Access-link comparison") {
		t.Fatal("access render missing header")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"a", "b"}, [][]string{{"1", `x,"y`}, {"2", "z"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,\"\"y\"\n2,z\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
	header, rows := Figure2CSV([]Figure2Point{{Theta: 100}})
	if len(header) != 7 || len(rows) != 1 {
		t.Fatalf("Figure2CSV shape: %d/%d", len(header), len(rows))
	}
}

func TestODPairsByName(t *testing.T) {
	s := scenario(t)
	idx := ODPairsByName(s.Pairs)
	if idx["JANET-LU"] != 19 || idx["JANET-NL"] != 0 {
		t.Fatalf("index = %v", idx)
	}
}

func TestDynamicStudy(t *testing.T) {
	s := scenario(t)
	r, err := DynamicStudy(s, 12, 100000, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 12 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Per interval the re-optimized plan dominates on the optimized
	// objective whenever the stale plan stays within budget (it is the
	// optimum of that interval's problem).
	for _, p := range r.Points {
		if p.StaticSpend <= 1+1e-9 && p.DynamicObj < p.StaticObj-1e-6 {
			t.Fatalf("interval %d: dynamic obj %v below static obj %v at spend %v",
				p.Interval, p.DynamicObj, p.StaticObj, p.StaticSpend)
		}
	}
	// The stale plan must drift off budget (the diurnal cycle swings
	// loads by >2x): under-spending strands capacity, over-spending
	// violates the resource cap the routers were provisioned for — the
	// operational failure mode the paper's re-optimization avoids. Any
	// interval where the stale plan "wins" on the objective must be one
	// where it overspends.
	drift := false
	for _, p := range r.Points {
		if math.Abs(p.StaticSpend-1) > 0.05 {
			drift = true
		}
		if p.StaticObj > p.DynamicObj+1e-6 && p.StaticSpend <= 1+1e-9 {
			t.Fatalf("interval %d: stale plan won within budget (%v vs %v at %vx)",
				p.Interval, p.StaticObj, p.DynamicObj, p.StaticSpend)
		}
	}
	if !drift {
		t.Fatal("static plan never drifted off budget (study too tame)")
	}
	// Re-optimization moves monitors over the run.
	if r.TotalChurn == 0 {
		t.Fatal("no monitor churn across failures and traffic shifts")
	}
	// The failure-affected intervals must exist and the scenario graph
	// must be restored afterwards (the study toggles a link down).
	failedSeen := false
	for _, p := range r.Points {
		failedSeen = failedSeen || p.Failed
	}
	if !failedSeen {
		t.Fatal("no failure interval")
	}
	for _, l := range s.Graph.Links() {
		if l.Down {
			t.Fatal("study left a link down")
		}
	}
	// Rendering works.
	var b strings.Builder
	if err := RenderDynamic(&b, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "link-down") || !strings.Contains(b.String(), "anomaly") {
		t.Fatalf("render missing events:\n%s", b.String())
	}
}

func TestDetectionStudy(t *testing.T) {
	s := scenario(t)
	r, err := DetectionStudy(s, 100000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Solution.Stats.Converged {
		t.Fatal("detection solve did not converge")
	}
	if len(r.OptimalProb) != len(s.Pairs) {
		t.Fatalf("probs = %d", len(r.OptimalProb))
	}
	// Probabilities in [0, 1]; optimized beats uniform on the mean (it
	// maximizes the sum) — and the worst path should not be far worse.
	for k := range r.OptimalProb {
		if r.OptimalProb[k] < 0 || r.OptimalProb[k] > 1 {
			t.Fatalf("prob out of range: %v", r.OptimalProb[k])
		}
	}
	if r.MeanOptimal <= r.MeanUniform {
		t.Fatalf("optimized mean %v not above uniform %v", r.MeanOptimal, r.MeanUniform)
	}
	var b strings.Builder
	if err := RenderDetection(&b, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "max-min") {
		t.Fatal("render missing header")
	}
}

func TestDetectionStudyErrors(t *testing.T) {
	s := scenario(t)
	if _, err := DetectionStudy(s, 100000, 1); err == nil {
		t.Fatal("event size 1 accepted")
	}
}

func TestDetectionStudyMaxMinLiftsWorst(t *testing.T) {
	s := scenario(t)
	r, err := DetectionStudy(s, 100000, 500)
	if err != nil {
		t.Fatal(err)
	}
	// The max-min variant must lift the worst path above both the sum
	// objective's worst and (here) the uniform baseline's worst.
	if r.MinMaxMin <= r.MinOptimal {
		t.Fatalf("max-min worst %v not above sum worst %v", r.MinMaxMin, r.MinOptimal)
	}
	if r.MinMaxMin < r.MinUniform {
		t.Fatalf("max-min worst %v below uniform worst %v", r.MinMaxMin, r.MinUniform)
	}
}

func TestCSVExports(t *testing.T) {
	s := scenario(t)
	t1, err := Table1(s, 100000, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, rows := Table1CSV(t1)
	if len(h) != 5 || len(rows) != len(t1.Links)+len(t1.Rows) {
		t.Fatalf("Table1CSV shape: %d/%d", len(h), len(rows))
	}
	dyn, err := DynamicStudy(s, 4, 100000, 3)
	if err != nil {
		t.Fatal(err)
	}
	h, rows = DynamicCSV(dyn)
	if len(h) != 9 || len(rows) != 4 {
		t.Fatalf("DynamicCSV shape: %d/%d", len(h), len(rows))
	}
	det, err := DetectionStudy(s, 100000, 500)
	if err != nil {
		t.Fatal(err)
	}
	h, rows = DetectionCSV(det)
	if len(h) != 4 || len(rows) != 20 {
		t.Fatalf("DetectionCSV shape: %d/%d", len(h), len(rows))
	}
	var b strings.Builder
	if err := WriteCSV(&b, h, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "JANET-LU") {
		t.Fatal("CSV missing pair rows")
	}
}

func TestTMStudy(t *testing.T) {
	s := scenario(t)
	r, err := TMStudy(s, 100000, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pairs) != 20 {
		t.Fatalf("pairs = %d", len(r.Pairs))
	}
	// The paper's claim: sampling beats aggregate-counter inference,
	// decisively so on the worst (small) pairs.
	if r.MeanSampled <= r.MeanTomo {
		t.Fatalf("sampled mean %v not above tomogravity %v", r.MeanSampled, r.MeanTomo)
	}
	if r.MinSampled <= r.MinTomo+0.2 {
		t.Fatalf("sampled worst %v not clearly above tomogravity worst %v", r.MinSampled, r.MinTomo)
	}
	// Tomogravity must improve on (or match) raw gravity on average —
	// it uses strictly more information.
	if r.MeanTomo < r.MeanGravity-0.05 {
		t.Fatalf("tomogravity %v worse than gravity %v", r.MeanTomo, r.MeanGravity)
	}
	var b strings.Builder
	if err := RenderTM(&b, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "tomogravity") {
		t.Fatal("render missing header")
	}
}

// TestTable1ShapeOnAbilene checks the paper's generality claim: the
// qualitative Table I properties hold on a very different backbone.
func TestTable1ShapeOnAbilene(t *testing.T) {
	s := geant.MustBuildAbilene(1)
	r, err := Table1(s, 60000, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Solution.Stats.Converged {
		t.Fatal("Abilene solve did not converge")
	}
	if len(r.Links) == 0 {
		t.Fatal("no monitors activated")
	}
	if r.MaxMonitorsPerPair > 2 {
		t.Fatalf("a pair sampled on %d links", r.MaxMonitorsPerPair)
	}
	for _, row := range r.Rows {
		if row.Utility <= 0 {
			t.Fatalf("pair %s abandoned", row.Name)
		}
		if row.Accuracy < 0.8 {
			t.Fatalf("pair %s accuracy %v", row.Name, row.Accuracy)
		}
	}
}

// TestTable1ShapeAcrossSeeds: the headline structure is robust to the
// background-traffic realization, not an artifact of one seed.
func TestTable1ShapeAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{2, 3, 4} {
		s := geant.MustBuild(seed)
		r, err := Table1(s, 100000, 10, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !r.Solution.Stats.Converged {
			t.Fatalf("seed %d: did not converge", seed)
		}
		if r.MaxMonitorsPerPair > 2 {
			t.Fatalf("seed %d: pair sampled on %d links", seed, r.MaxMonitorsPerPair)
		}
		for _, row := range r.Rows {
			if row.Accuracy < 0.85 {
				t.Fatalf("seed %d: pair %s accuracy %v", seed, row.Name, row.Accuracy)
			}
		}
		for _, l := range r.Links {
			if l.Rate > 0.025 {
				t.Fatalf("seed %d: rate %v on %s too high", seed, l.Rate, l.Name)
			}
		}
	}
}

func TestWriteReport(t *testing.T) {
	s := scenario(t)
	var b strings.Builder
	err := WriteReport(&b, s, ReportConfig{Trials: 3, ConvergenceRuns: 5, DynamicSteps: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# netsamp evaluation report",
		"Table I", "Figure 2", "Convergence study",
		"Access-link", "tomogravity", "max-min", "Dynamic re-optimization",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestFigure2Extended(t *testing.T) {
	s := scenario(t)
	pts, err := Figure2Extended(s, []float64{50000, 200000}, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		// The optimal dominates every baseline on worst-pair accuracy
		// (small statistical slack).
		for name, w := range map[string]float64{
			"uk":      p.UKOnly.Worst,
			"uniform": p.Uniform.Worst,
			"greedy":  p.Greedy.Worst,
		} {
			if p.Optimal.Worst < w-0.03 {
				t.Fatalf("θ=%v: optimal worst %v below %s %v", p.Theta, p.Optimal.Worst, name, w)
			}
		}
	}
	var b strings.Builder
	if err := RenderFigure2Extended(&b, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "greedy") {
		t.Fatal("render missing series")
	}
}
