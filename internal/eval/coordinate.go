package eval

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"netsamp/internal/core"
	"netsamp/internal/engine"
	"netsamp/internal/geant"
	"netsamp/internal/plan"
	"netsamp/internal/rng"
	"netsamp/internal/sampling"
	"netsamp/internal/topology"
)

// CoordinationStudy quantifies what coordinated (cSamp-style) flow-space
// sampling buys over independent per-monitor sampling at equal budget θ.
//
// Under independent sampling a packet crossing several monitors can be
// sampled more than once; the pair's inclusion probability is the
// product model 1−Π(1−p_i) and the duplicates consume budget without
// adding information. Under coordination the monitors on a pair's path
// partition the flow-hash space (plan.Coordinate), so the same per-link
// rates deliver the additive coverage min(1, Σ f_ki·p_i) — never lower
// than the product, strictly higher whenever two monitors both sample a
// pair. The study sweeps θ, solves the same instance under both rate
// models, and reports the deployed per-pair coverages plus simulated
// estimation accuracies.

// CoordinationPoint is one θ abscissa of the study.
type CoordinationPoint struct {
	Theta float64 // packets per interval
	// Independent and Coordinated summarize the simulated estimation
	// accuracy of each deployment at its own optimum.
	Independent sampling.Summary
	Coordinated sampling.Summary
	// MeanRho* and WorstRho* are the deployed per-pair coverages
	// (inclusion probabilities on the wire) of each optimum.
	MeanRhoIndependent  float64
	MeanRhoCoordinated  float64
	WorstRhoIndependent float64
	WorstRhoCoordinated float64
	// MeanGainSameRates isolates the coordination effect from the
	// optimizer: it evaluates the coordinated coverage AT the
	// independent optimum's per-link rates and averages the per-pair
	// gain over the product-model coverage. Non-negative by
	// construction (Σ f·p ≥ 1−Π(1−p) until the clamp at 1).
	MeanGainSameRates float64
}

// CoordinationStudy sweeps the default θ grid on the GEANT scenario.
func CoordinationStudy(s *geant.Scenario, thetas []float64, trials int, seed uint64) ([]CoordinationPoint, error) {
	return CoordinationStudyCtx(context.Background(), s, thetas, trials, seed, 0)
}

// CoordinationStudyCtx is CoordinationStudy with cancellation and an
// explicit worker count (0 selects GOMAXPROCS). Like Figure2Ctx it runs
// in two phases: a continuation phase that sweeps θ top-down in
// fixed-size chunks — one chain per (rate model, chunk), compiled once
// and re-tuned per grid point with warm starts — and a simulation phase
// with one split-seeded engine job per θ. Both phases are bit-identical
// for every worker count.
func CoordinationStudyCtx(ctx context.Context, s *geant.Scenario, thetas []float64, trials int, seed uint64, workers int) ([]CoordinationPoint, error) {
	if len(thetas) == 0 {
		thetas = DefaultThetas()
	}
	inv := s.UtilityParams(Interval)
	sizes := s.PairSizes(Interval)
	models := []core.RateModel{core.ModelIndependentExact, core.ModelCoordinated}

	// Phase 1: continuation chains over the θ grid, one job per
	// (model, chunk). Jobs write disjoint slots of rates.
	nChunks := (len(thetas) + figure2ChunkSize - 1) / figure2ChunkSize
	rates := make([][2]map[topology.LinkID]float64, len(thetas))
	_, err := engine.Map(ctx, engine.Options{Workers: workers}, len(models)*nChunks,
		func(_ context.Context, job int, _ *rng.Source) (struct{}, error) {
			variant, chunk := job/nChunks, job%nChunks
			lo := chunk * figure2ChunkSize
			hi := lo + figure2ChunkSize
			if hi > len(thetas) {
				hi = len(thetas)
			}
			var (
				comp *plan.Compiled
				prev *core.Solution
				warm []float64
			)
			for i := hi - 1; i >= lo; i-- {
				theta := thetas[i]
				in := plan.Input{
					Matrix:       s.Matrix,
					Loads:        s.Loads,
					Candidates:   s.MonitorLinks,
					InvMeanSizes: inv,
					Budget:       core.BudgetPerInterval(theta, Interval),
					Model:        models[variant],
				}
				var err error
				if comp == nil {
					comp, err = plan.Compile(in)
				} else {
					err = comp.Retune(in)
				}
				if err != nil {
					return struct{}{}, fmt.Errorf("eval: coordinate θ=%v: %w", theta, err)
				}
				opt := core.Options{}
				if prev != nil {
					if warm, err = comp.Solver().WarmStart(prev, warm); err != nil {
						return struct{}{}, fmt.Errorf("eval: coordinate θ=%v: %w", theta, err)
					}
					opt.Initial = warm
				}
				sol, err := comp.Solver().Solve(opt)
				if err != nil {
					return struct{}{}, fmt.Errorf("eval: coordinate θ=%v: %w", theta, err)
				}
				rates[i][variant] = plan.RatesByLink(sol, s.MonitorLinks)
				prev = sol
			}
			return struct{}{}, nil
		})
	if err != nil {
		return nil, err
	}

	// Phase 2: deployed coverages and sampling experiments, one job
	// per θ.
	return engine.Map(ctx, engine.Options{Workers: workers, Seed: seed}, len(thetas),
		func(_ context.Context, i int, r *rng.Source) (CoordinationPoint, error) {
			point := CoordinationPoint{Theta: thetas[i]}
			indepRho := plan.EffectiveRates(s.Matrix, rates[i][0], core.ModelIndependentExact)
			coordRho := plan.EffectiveRates(s.Matrix, rates[i][1], core.ModelCoordinated)
			// The coordination effect alone: same per-link rates, two
			// sampling disciplines.
			coordAtIndep := plan.EffectiveRates(s.Matrix, rates[i][0], core.ModelCoordinated)
			point.WorstRhoIndependent, point.WorstRhoCoordinated = 1, 1
			for k := range indepRho {
				point.MeanRhoIndependent += indepRho[k]
				point.MeanRhoCoordinated += coordRho[k]
				point.MeanGainSameRates += coordAtIndep[k] - indepRho[k]
				if indepRho[k] < point.WorstRhoIndependent {
					point.WorstRhoIndependent = indepRho[k]
				}
				if coordRho[k] < point.WorstRhoCoordinated {
					point.WorstRhoCoordinated = coordRho[k]
				}
			}
			n := float64(len(indepRho))
			point.MeanRhoIndependent /= n
			point.MeanRhoCoordinated /= n
			point.MeanGainSameRates /= n
			simulate := func(rho []float64) (sampling.Summary, error) {
				results := make([]sampling.Result, 0, len(s.Pairs))
				for k := range s.Pairs {
					exp, err := sampling.Experiment(s.Pairs[k].Name, sizes[k], rho[k], trials, r.Split())
					if err != nil {
						return sampling.Summary{}, err
					}
					results = append(results, exp)
				}
				return sampling.Summarize(results), nil
			}
			if point.Independent, err = simulate(indepRho); err != nil {
				return point, err
			}
			if point.Coordinated, err = simulate(coordRho); err != nil {
				return point, err
			}
			return point, nil
		})
}

// RenderCoordination writes the study as a per-θ table.
func RenderCoordination(w io.Writer, points []CoordinationPoint) error {
	if _, err := fmt.Fprintf(w, "Coordinated vs independent sampling — deployed coverage and accuracy vs θ\n\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s | %10s %10s | %10s %10s | %10s %10s | %10s\n",
		"theta", "mean indep", "mean coord", "wrst indep", "wrst coord", "acc indep", "acc coord", "gain@rates")
	fmt.Fprintln(w, strings.Repeat("-", 106))
	for _, p := range points {
		fmt.Fprintf(w, "%10.0f | %10.6f %10.6f | %10.6f %10.6f | %10.4f %10.4f | %10.6f\n",
			p.Theta, p.MeanRhoIndependent, p.MeanRhoCoordinated,
			p.WorstRhoIndependent, p.WorstRhoCoordinated,
			p.Independent.Average, p.Coordinated.Average, p.MeanGainSameRates)
	}
	fmt.Fprintln(w, "\ngain@rates: mean per-pair coverage gained by coordinating the independent")
	fmt.Fprintln(w, "optimum's own per-link rates (duplicate samples recycled into coverage).")
	return nil
}

// CoordinationCSV flattens the study for -csv output.
func CoordinationCSV(points []CoordinationPoint) (header []string, rows [][]string) {
	header = []string{
		"theta",
		"mean_rho_independent", "mean_rho_coordinated",
		"worst_rho_independent", "worst_rho_coordinated",
		"accuracy_independent", "accuracy_coordinated",
		"mean_gain_same_rates",
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, p := range points {
		rows = append(rows, []string{
			f(p.Theta),
			f(p.MeanRhoIndependent), f(p.MeanRhoCoordinated),
			f(p.WorstRhoIndependent), f(p.WorstRhoCoordinated),
			f(p.Independent.Average), f(p.Coordinated.Average),
			f(p.MeanGainSameRates),
		})
	}
	return header, rows
}
