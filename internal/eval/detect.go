package eval

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"netsamp/internal/baseline"
	"netsamp/internal/core"
	"netsamp/internal/engine"
	"netsamp/internal/geant"
	"netsamp/internal/plan"
	"netsamp/internal/rng"
)

// DetectionStudy instantiates the framework for the measurement task the
// paper's conclusion names as ongoing work: anomaly detection. The
// operator wants to sample at least one packet of any anomalous event of
// a given footprint (packets per interval) on any of the JANET paths;
// the per-pair utility is the detection probability 1−(1−ρ)^size. The
// optimized plan is compared against uniform network-wide sampling at
// the same budget — the deployment the paper says ISPs use today.
type DetectionResult struct {
	Theta     float64
	EventSize int
	Solution  *core.Solution
	Pairs     []string
	// OptimalProb, MaxMinProb and UniformProb are per-pair detection
	// probabilities under the sum-objective optimum, the max-min variant
	// and uniform sampling. The sum objective may abandon paths that are
	// expensive to watch (probability 0); max-min lifts the worst path —
	// usually the right goal for security monitoring.
	OptimalProb, MaxMinProb, UniformProb []float64
	// Mean/Min aggregates over pairs.
	MeanOptimal, MeanMaxMin, MeanUniform float64
	MinOptimal, MinMaxMin, MinUniform    float64
}

// DetectionStudy solves the detection-utility placement at θ packets per
// interval for anomalies of the given footprint.
func DetectionStudy(s *geant.Scenario, theta float64, eventSize int) (*DetectionResult, error) {
	return DetectionStudyCtx(context.Background(), s, theta, eventSize, 0)
}

// DetectionStudyCtx is DetectionStudy with cancellation; the three
// competing placements (sum-objective optimum, exact max-min, uniform)
// are independent, so they run as concurrent engine jobs.
func DetectionStudyCtx(ctx context.Context, s *geant.Scenario, theta float64, eventSize int, workers int) (*DetectionResult, error) {
	budget := core.BudgetPerInterval(theta, Interval)
	util, err := core.NewDetection(eventSize)
	if err != nil {
		return nil, err
	}
	// Build with placeholder SRE utilities, then swap in the detection
	// utility (plan.Build parameterizes SRE only).
	inv := make([]float64, len(s.Pairs))
	for k := range inv {
		inv[k] = 0.001
	}
	prob, _, err := plan.Build(plan.Input{
		Matrix:       s.Matrix,
		Loads:        s.Loads,
		Candidates:   s.MonitorLinks,
		InvMeanSizes: inv,
		Budget:       budget,
	})
	if err != nil {
		return nil, err
	}
	for k := range prob.Pairs {
		prob.Pairs[k].Utility = util
	}
	// Compile once; the solver clones the problem, so the concurrent
	// max-min job below can keep reading prob untouched.
	solver, err := core.NewSolver(prob)
	if err != nil {
		return nil, err
	}
	var (
		sol, mm *core.Solution
		uni     *baseline.Assignment
	)
	err = engine.Run(ctx, engine.Options{Workers: workers},
		func(_ context.Context, _ *rng.Source) error {
			var err error
			sol, err = solver.Solve(core.Options{})
			return err
		},
		func(_ context.Context, _ *rng.Source) error {
			var err error
			mm, err = core.SolveMaxMinExact(prob, 0)
			return err
		},
		func(_ context.Context, _ *rng.Source) error {
			var err error
			uni, err = baseline.Uniform(s.Matrix, s.Loads, s.MonitorLinks, budget)
			return err
		},
	)
	if err != nil {
		return nil, err
	}
	res := &DetectionResult{
		Theta:      theta,
		EventSize:  eventSize,
		Solution:   sol,
		MinOptimal: math.Inf(1),
		MinMaxMin:  math.Inf(1),
		MinUniform: math.Inf(1),
	}
	for k := range s.Pairs {
		res.Pairs = append(res.Pairs, s.Pairs[k].Name)
		po := util.Value(sol.Rho[k])
		pm := util.Value(mm.Rho[k])
		pu := util.Value(uni.Rho[k])
		res.OptimalProb = append(res.OptimalProb, po)
		res.MaxMinProb = append(res.MaxMinProb, pm)
		res.UniformProb = append(res.UniformProb, pu)
		res.MeanOptimal += po
		res.MeanMaxMin += pm
		res.MeanUniform += pu
		res.MinOptimal = math.Min(res.MinOptimal, po)
		res.MinMaxMin = math.Min(res.MinMaxMin, pm)
		res.MinUniform = math.Min(res.MinUniform, pu)
	}
	n := float64(len(s.Pairs))
	res.MeanOptimal /= n
	res.MeanMaxMin /= n
	res.MeanUniform /= n
	return res, nil
}

// RenderDetection writes the study as a table.
func RenderDetection(w io.Writer, r *DetectionResult) error {
	if _, err := fmt.Fprintf(w,
		"Anomaly-detection placement (events of %d packets, θ = %.0f pkts/interval)\n\n",
		r.EventSize, r.Theta); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %12s %12s %12s\n", "OD pair", "sum-optimal", "max-min", "uniform")
	fmt.Fprintln(w, strings.Repeat("-", 52))
	for k, name := range r.Pairs {
		fmt.Fprintf(w, "%-12s %12.4f %12.4f %12.4f\n", name, r.OptimalProb[k], r.MaxMinProb[k], r.UniformProb[k])
	}
	fmt.Fprintf(w, "\nmean detection probability: sum %.4f, max-min %.4f, uniform %.4f\n",
		r.MeanOptimal, r.MeanMaxMin, r.MeanUniform)
	fmt.Fprintf(w, "worst path:                 sum %.4f, max-min %.4f, uniform %.4f\n",
		r.MinOptimal, r.MinMaxMin, r.MinUniform)
	fmt.Fprintln(w, "\nThe sum objective may abandon expensive paths entirely; for")
	fmt.Fprintln(w, "security tasks the max-min variant is usually the right choice.")
	return nil
}
