package eval

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"netsamp/internal/core"
	"netsamp/internal/engine"
	"netsamp/internal/geant"
	"netsamp/internal/plan"
	"netsamp/internal/rng"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
	"netsamp/internal/traffic"
)

// DynamicStudy quantifies the paper's motivating claim (Section I):
// "short term variations due to failures and other anomalous events as
// well as longer term variations … quickly make a static placement of
// traffic monitors perform sub-optimally."
//
// Over a sequence of measurement intervals the background traffic
// follows a diurnal cycle with noise, the JANET demands jitter, one
// interval carries a traffic anomaly (the smallest OD pair collapses),
// and midway a core circuit fails and re-routes traffic. Two operators
// are compared:
//
//   - static: computes the optimal plan once, at interval 0, and keeps it;
//   - dynamic: re-optimizes every interval (the paper's proposal —
//     router-embedded monitors make re-activation free).
//
// The study reports each operator's worst-pair utility per interval and
// the monitor-set churn of the dynamic plan.

// DynamicPoint is one interval of the study.
type DynamicPoint struct {
	Interval int
	// StaticObj and DynamicObj are the sum-of-utilities objectives of
	// the stale interval-0 plan and the re-optimized plan under the
	// interval's conditions. The re-optimized plan is the optimum, so
	// DynamicObj >= StaticObj whenever the stale plan stays within
	// budget.
	StaticObj, DynamicObj float64
	// StaticWorst and DynamicWorst are the corresponding worst-pair
	// utilities (reported for the fairness picture).
	StaticWorst, DynamicWorst float64
	// StaticSpend is the sampled packet rate the stale plan consumes
	// under the interval's loads, relative to the budget (1 = exactly
	// θ). Traffic growth makes a static plan silently overspend its
	// resource cap; decay strands capacity.
	StaticSpend float64
	// Churn is the number of monitor activations plus deactivations
	// relative to the previous interval's dynamic plan.
	Churn int
	// Failed reports whether the failure event is active.
	Failed bool
	// Anomaly reports whether the traffic anomaly is active.
	Anomaly bool
}

// DynamicResult aggregates the study.
type DynamicResult struct {
	Points []DynamicPoint
	// MeanStaticObj and MeanDynamicObj average the objectives.
	MeanStaticObj, MeanDynamicObj float64
	// MinStaticWorst and MinDynamicWorst are the worst worst-pair
	// utilities over the run.
	MinStaticWorst, MinDynamicWorst float64
	// MaxStaticOverspend is the largest StaticSpend observed (> 1 means
	// the stale plan exceeded the resource cap).
	MaxStaticOverspend float64
	// TotalChurn sums monitor-set changes across the run.
	TotalChurn int
}

// DynamicStudy runs the study for the given number of intervals at
// θ packets per interval.
func DynamicStudy(s *geant.Scenario, intervals int, theta float64, seed uint64) (*DynamicResult, error) {
	return DynamicStudyCtx(context.Background(), s, intervals, theta, seed, 0)
}

// dynamicChunkSize is the continuation chunk of the per-interval
// re-optimization: each chunk of consecutive intervals is one warm-start
// chain. Fixed (never derived from the worker count) so the chains, and
// therefore the results, are identical for every worker count.
const dynamicChunkSize = 8

// dynamicInterval is one interval's world state, assembled sequentially
// (graph mutation and the shared jitter stream force ordering), then
// re-optimized in parallel.
type dynamicInterval struct {
	matrix     *routing.Matrix
	candidates []topology.LinkID
	loads      []float64
	inv        []float64
	failed     bool
	anomaly    bool
}

// DynamicStudyCtx runs the study in three phases: a sequential input
// phase that plays out the traffic/routing dynamics (it mutates the
// scenario graph and consumes one jitter stream, so order matters), a
// parallel phase that re-optimizes every interval on the engine's worker
// pool, and a sequential aggregation phase (the static-vs-dynamic
// comparison and churn depend on interval order). The per-interval
// optimizations dominate the cost and are order-independent, so the
// result is identical for every worker count.
func DynamicStudyCtx(ctx context.Context, s *geant.Scenario, intervals int, theta float64, seed uint64, workers int) (*DynamicResult, error) {
	if intervals <= 0 {
		intervals = 24
	}
	r := rng.New(seed)
	profile := traffic.Diurnal{Period: intervals, Trough: 0.5, Peak: 1.2, Noise: 0.1}
	budget := core.BudgetPerInterval(theta, Interval)
	failAt := intervals / 2
	anomalyAt := intervals / 3

	// The failure: take down the FR-CH circuit (both directions).
	frch, ok := s.Graph.FindLink(s.Graph.MustNode("FR"), s.Graph.MustNode("CH"))
	if !ok {
		return nil, fmt.Errorf("eval: FR->CH missing from scenario")
	}
	chfr, _ := s.Graph.FindLink(s.Graph.MustNode("CH"), s.Graph.MustNode("FR"))
	defer func() {
		s.Graph.SetDown(frch, false)
		s.Graph.SetDown(chfr, false)
	}()

	// Phase 1 (sequential): play out the dynamics. Routing is a pure
	// function of the topology state, which changes only at the failure
	// boundary — so the table, matrix and candidate set are recomputed
	// only when the boundary is crossed and shared (same pointers) by
	// every interval of a topology regime. The shared matrix identity is
	// what lets phase 2's plan.Cache reuse one compiled solver across a
	// regime's intervals.
	worlds := make([]dynamicInterval, intervals)
	var (
		tbl        *routing.Table
		matrix     *routing.Matrix
		candidates []topology.LinkID
	)
	for t := 0; t < intervals; t++ {
		failed := t >= failAt
		anomaly := t == anomalyAt

		// Current routing and candidate set: rebuilt on topology change
		// only (interval 0 and the failure boundary).
		if matrix == nil || failed != worlds[t-1].failed {
			s.Graph.SetDown(frch, failed)
			s.Graph.SetDown(chfr, failed)
			tbl = routing.ComputeTable(s.Graph)
			var err error
			matrix, err = routing.BuildMatrix(tbl, s.Pairs)
			if err != nil {
				return nil, fmt.Errorf("eval: interval %d: %w", t, err)
			}
			candidates = nil
			for _, lid := range matrix.LinkSet() {
				if !s.Graph.Link(lid).Access {
					candidates = append(candidates, lid)
				}
			}
		}

		// Current traffic: diurnal background, jittered JANET demands.
		factor := profile.Factor(t, r)
		rates := make([]float64, len(s.Rates))
		for k := range rates {
			rates[k] = s.Rates[k] * r.LogNormal(0, 0.15)
		}
		if anomaly {
			rates[len(rates)-1] *= 0.1 // the smallest pair collapses
		}
		demands := &traffic.Matrix{}
		for _, d := range s.Demands.Demands {
			nd := d
			isJANET := false
			for k, pr := range s.Pairs {
				if d.Pair.Name == pr.Name {
					nd.Rate = rates[k]
					isJANET = true
					break
				}
			}
			if !isJANET {
				nd.Rate *= factor
			}
			demands.Demands = append(demands.Demands, nd)
		}
		loads, err := traffic.LinkLoads(s.Graph, tbl, demands)
		if err != nil {
			return nil, fmt.Errorf("eval: interval %d: %w", t, err)
		}
		inv := make([]float64, len(rates))
		for k := range rates {
			inv[k] = math.Min(1, 1/(rates[k]*Interval))
		}
		worlds[t] = dynamicInterval{
			matrix: matrix, candidates: candidates, loads: loads, inv: inv,
			failed: failed, anomaly: anomaly,
		}
	}

	// Phase 2 (parallel): the dynamic operator re-optimizes every
	// interval. The intervals are grouped into fixed-size continuation
	// chunks — a fixed function of the interval grid, never of the
	// worker count — and each chunk is one engine job owning a private
	// plan.Cache. Within a chunk, successive intervals of one topology
	// regime reuse the compiled solver (only loads and utility
	// parameters change) and warm-start from the previous interval's
	// optimum; the failure boundary changes the matrix identity, so the
	// chain restarts cold there, exactly when the problem structure
	// genuinely changed.
	plans := make([]map[topology.LinkID]float64, intervals)
	nChunks := (intervals + dynamicChunkSize - 1) / dynamicChunkSize
	_, err := engine.Map(ctx, engine.Options{Workers: workers}, nChunks,
		func(_ context.Context, chunk int, _ *rng.Source) (struct{}, error) {
			lo := chunk * dynamicChunkSize
			hi := lo + dynamicChunkSize
			if hi > intervals {
				hi = intervals
			}
			cache := plan.NewCache()
			var (
				prev     *core.Solution
				prevComp *plan.Compiled
				warm     []float64
			)
			for t := lo; t < hi; t++ {
				w := &worlds[t]
				comp, err := cache.Get(plan.Input{
					Matrix: w.matrix, Loads: w.loads, Candidates: w.candidates,
					InvMeanSizes: w.inv, Budget: budget,
				})
				if err != nil {
					return struct{}{}, fmt.Errorf("eval: interval %d: %w", t, err)
				}
				opt := core.Options{}
				if prev != nil && comp == prevComp {
					if warm, err = comp.Solver().WarmStart(prev, warm); err != nil {
						return struct{}{}, fmt.Errorf("eval: interval %d: %w", t, err)
					}
					opt.Initial = warm
				}
				sol, err := comp.Solver().Solve(opt)
				if err != nil {
					return struct{}{}, fmt.Errorf("eval: interval %d: %w", t, err)
				}
				plans[t] = plan.RatesByLink(sol, w.candidates)
				prev, prevComp = sol, comp
			}
			return struct{}{}, nil
		})
	if err != nil {
		return nil, err
	}

	// Phase 3 (sequential): compare the stale interval-0 plan against
	// the re-optimized plans and account churn.
	res := &DynamicResult{MinStaticWorst: math.Inf(1), MinDynamicWorst: math.Inf(1)}
	staticPlan := plans[0]
	var prevDynamic map[topology.LinkID]float64
	rho := make([]float64, len(s.Pairs))
	for t := 0; t < intervals; t++ {
		w := &worlds[t]
		dynamicPlan := plans[t]
		evaluate := func(assign map[topology.LinkID]float64) (obj, worst float64) {
			plan.EffectiveRatesInto(rho, w.matrix, assign, nil)
			worst = math.Inf(1)
			for k := range rho {
				u := core.MustSRE(w.inv[k]).Value(rho[k])
				obj += u
				if u < worst {
					worst = u
				}
			}
			return obj, worst
		}
		point := DynamicPoint{
			Interval:    t,
			Failed:      w.failed,
			Anomaly:     w.anomaly,
			StaticSpend: plan.SampledRate(staticPlan, w.loads) / budget,
		}
		point.StaticObj, point.StaticWorst = evaluate(staticPlan)
		point.DynamicObj, point.DynamicWorst = evaluate(dynamicPlan)
		if prevDynamic != nil {
			point.Churn = planChurn(prevDynamic, dynamicPlan)
		}
		prevDynamic = dynamicPlan
		res.Points = append(res.Points, point)
		res.MeanStaticObj += point.StaticObj
		res.MeanDynamicObj += point.DynamicObj
		res.MinStaticWorst = math.Min(res.MinStaticWorst, point.StaticWorst)
		res.MinDynamicWorst = math.Min(res.MinDynamicWorst, point.DynamicWorst)
		res.MaxStaticOverspend = math.Max(res.MaxStaticOverspend, point.StaticSpend)
		res.TotalChurn += point.Churn
	}
	n := float64(len(res.Points))
	res.MeanStaticObj /= n
	res.MeanDynamicObj /= n
	return res, nil
}

// planChurn counts activations + deactivations between two plans.
func planChurn(prev, next map[topology.LinkID]float64) int {
	churn := 0
	for lid := range next {
		if _, ok := prev[lid]; !ok {
			churn++
		}
	}
	for lid := range prev {
		if _, ok := next[lid]; !ok {
			churn++
		}
	}
	return churn
}

// RenderDynamic writes the study as a per-interval table.
func RenderDynamic(w io.Writer, r *DynamicResult) error {
	if _, err := fmt.Fprintf(w, "Dynamic re-optimization study (%d intervals of %.0f s)\n\n", len(r.Points), Interval); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s | %11s %11s | %11s %11s | %7s %6s %s\n",
		"interval", "static obj", "dyn obj", "static wrst", "dyn wrst", "spend", "churn", "events")
	fmt.Fprintln(w, strings.Repeat("-", 94))
	for _, p := range r.Points {
		events := ""
		if p.Anomaly {
			events += " anomaly"
		}
		if p.Failed {
			events += " link-down"
		}
		fmt.Fprintf(w, "%8d | %11.4f %11.4f | %11.4f %11.4f | %6.2fx %6d%s\n",
			p.Interval, p.StaticObj, p.DynamicObj, p.StaticWorst, p.DynamicWorst, p.StaticSpend, p.Churn, events)
	}
	fmt.Fprintf(w, "\nmean objective:  static %.4f, re-optimized %.4f\n", r.MeanStaticObj, r.MeanDynamicObj)
	fmt.Fprintf(w, "worst pair over run: static %.4f, re-optimized %.4f\n", r.MinStaticWorst, r.MinDynamicWorst)
	fmt.Fprintf(w, "stale plan peak budget use: %.2fx of cap; dynamic plan churn: %d changes\n",
		r.MaxStaticOverspend, r.TotalChurn)
	return nil
}
