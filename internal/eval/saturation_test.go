package eval

import (
	"reflect"
	"testing"
)

// TestSaturationGracefulDegradation: the step-mode sweep shows the
// tentpole property — delivered goodput saturates at capacity while the
// Overload bucket absorbs the excess — and the whole study is
// bit-identical across runs (it sits inside the replay fence).
func TestSaturationGracefulDegradation(t *testing.T) {
	cfg := SaturationConfig{Ticks: 60, Seed: 11}
	res, err := SaturationStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("%d points, want 3 (1x/2x/4x)", len(res.Points))
	}
	capacity := uint64(res.Shards * res.CapacityPerTick * res.Ticks)
	for i, p := range res.Points {
		if p.Received == 0 || p.Delivered == 0 {
			t.Fatalf("%gx: empty point: %+v", p.Multiple, p)
		}
		if p.Bins == 0 {
			t.Fatalf("%gx: no estimator bins — survivors never reached the estimation stage", p.Multiple)
		}
		if i == 0 {
			continue
		}
		prev := res.Points[i-1]
		if !(p.DropFraction > prev.DropFraction) {
			t.Fatalf("drop fraction not increasing: %g at %gx, %g at %gx",
				prev.DropFraction, prev.Multiple, p.DropFraction, p.Multiple)
		}
		if !(p.DeliveredFraction < prev.DeliveredFraction) {
			t.Fatalf("delivered fraction not decreasing: %g at %gx, %g at %gx",
				prev.DeliveredFraction, prev.Multiple, p.DeliveredFraction, p.Multiple)
		}
		// Saturation, not collapse: absolute goodput never shrinks under
		// more offered load, and never exceeds the processing budget by
		// more than the rings' drain allowance.
		if p.Delivered < prev.Delivered {
			t.Fatalf("goodput collapsed: %d at %gx, %d at %gx",
				prev.Delivered, prev.Multiple, p.Delivered, p.Multiple)
		}
		slack := uint64(res.Shards * 256 * 34) // RingSize datagrams per shard drained at the end
		if p.Delivered > capacity+slack {
			t.Fatalf("%gx: delivered %d exceeds capacity %d + drain slack %d", p.Multiple, p.Delivered, capacity, slack)
		}
	}
	last := res.Points[len(res.Points)-1]
	if last.DroppedOverload == 0 {
		t.Fatal("4x offered load shed nothing")
	}
	if last.DroppedShutdown != 0 {
		t.Fatalf("%d records dropped at shutdown — the pre-close drain missed them", last.DroppedShutdown)
	}

	// Bit-identical across runs.
	again, err := SaturationStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatalf("study not deterministic:\n%+v\n%+v", res, again)
	}
}

// TestSaturationRejectsBadMultiple: non-positive multiples are refused.
func TestSaturationRejectsBadMultiple(t *testing.T) {
	_, err := SaturationStudy(SaturationConfig{Ticks: 1, Multiples: []float64{1, 0}})
	if err == nil {
		t.Fatal("zero multiple accepted")
	}
}
