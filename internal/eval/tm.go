package eval

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"netsamp/internal/core"
	"netsamp/internal/engine"
	"netsamp/internal/geant"
	"netsamp/internal/plan"
	"netsamp/internal/rng"
	"netsamp/internal/routing"
	"netsamp/internal/sampling"
	"netsamp/internal/tomo"
)

// TMStudy quantifies the paper's motivating comparison (Section I): SNMP
// aggregate counters versus sampled NetFlow for estimating traffic
// demands. Three estimators of the 20 JANET OD-pair sizes compete:
//
//   - gravity: per-node totals only (no routing, no sampling);
//   - tomogravity: gravity corrected to reproduce the observed link
//     loads (the Zhang et al. approach the paper cites in Section II);
//   - sampled: the paper's method — the optimizer's sampling plan at θ,
//     simulated and renormalized.
//
// Aggregate counters cannot separate a 20 pkt/s OD pair from the
// thousands of pkt/s sharing its links; sampling at the right place can.
type TMResult struct {
	Theta float64
	Pairs []string
	Truth []float64 // pkt/s
	// Accuracy per pair, 1−|est−truth|/truth clamped at 0.
	GravityAcc, TomoAcc, SampledAcc []float64
	// Means over pairs.
	MeanGravity, MeanTomo, MeanSampled float64
	// Worst pair of each estimator.
	MinGravity, MinTomo, MinSampled float64
}

// TMStudy runs the comparison at θ packets per interval with the given
// number of sampling trials per pair.
func TMStudy(s *geant.Scenario, theta float64, trials int, seed uint64) (*TMResult, error) {
	return TMStudyCtx(context.Background(), s, theta, trials, seed, 0)
}

// TMStudyCtx is TMStudy with cancellation and a parallel Monte-Carlo
// phase: the per-pair sampling experiments run as engine jobs, each on
// its own split-seeded stream, so the result is identical for every
// worker count. The tomogravity estimate and the optimizer solve are
// shared work computed once, up front.
func TMStudyCtx(ctx context.Context, s *geant.Scenario, theta float64, trials int, seed uint64, workers int) (*TMResult, error) {
	// Estimate the FULL traffic matrix from link loads; score only the
	// JANET pairs (the measurement task).
	allPairs := make([]routing.ODPair, len(s.Demands.Demands))
	truthAll := make([]float64, len(s.Demands.Demands))
	for i, d := range s.Demands.Demands {
		allPairs[i] = d.Pair
		truthAll[i] = d.Rate
	}
	matrix, err := routing.BuildMatrix(s.Table, allPairs)
	if err != nil {
		return nil, err
	}
	origins, dests, err := tomo.Totals(s.Graph.NumNodes(), allPairs, truthAll)
	if err != nil {
		return nil, err
	}
	prior, err := tomo.Gravity(allPairs, origins, dests)
	if err != nil {
		return nil, err
	}
	tg, err := tomo.Tomogravity(tomo.Instance{
		Matrix:   matrix,
		Loads:    s.Loads,
		NumNodes: s.Graph.NumNodes(),
	}, prior, 0)
	if err != nil {
		return nil, err
	}

	// The sampled estimator: Table I's plan at θ.
	budget := core.BudgetPerInterval(theta, Interval)
	prob, _, err := plan.Build(plan.Input{
		Matrix:       s.Matrix,
		Loads:        s.Loads,
		Candidates:   s.MonitorLinks,
		InvMeanSizes: s.UtilityParams(Interval),
		Budget:       budget,
	})
	if err != nil {
		return nil, err
	}
	sol, err := core.Solve(prob, core.Options{})
	if err != nil {
		return nil, err
	}

	// Index JANET pairs within the all-pairs list.
	index := make(map[string]int, len(allPairs))
	for i, p := range allPairs {
		index[p.Name] = i
	}
	sizes := s.PairSizes(Interval)

	// Monte-Carlo phase: one engine job per JANET pair.
	type pairScore struct {
		truth, gravity, tomo, sampled float64
	}
	scores, err := engine.Map(ctx, engine.Options{Workers: workers, Seed: seed}, len(s.Pairs),
		func(_ context.Context, k int, r *rng.Source) (pairScore, error) {
			pr := s.Pairs[k]
			i, ok := index[pr.Name]
			if !ok {
				return pairScore{}, fmt.Errorf("eval: pair %q missing from demand set", pr.Name)
			}
			truth := truthAll[i]
			acc := func(est float64) float64 {
				a := 1 - math.Abs(est-truth)/truth
				if a < 0 {
					return 0
				}
				return a
			}
			exp, err := sampling.Experiment(pr.Name, sizes[k], sol.Rho[k], trials, r.Split())
			if err != nil {
				return pairScore{}, err
			}
			return pairScore{
				truth: truth, gravity: acc(prior[i]), tomo: acc(tg[i]), sampled: exp.MeanAccuracy,
			}, nil
		})
	if err != nil {
		return nil, err
	}

	res := &TMResult{
		Theta:      theta,
		MinGravity: math.Inf(1), MinTomo: math.Inf(1), MinSampled: math.Inf(1),
	}
	for k, pr := range s.Pairs {
		sc := scores[k]
		res.Pairs = append(res.Pairs, pr.Name)
		res.Truth = append(res.Truth, sc.truth)
		res.GravityAcc = append(res.GravityAcc, sc.gravity)
		res.TomoAcc = append(res.TomoAcc, sc.tomo)
		res.SampledAcc = append(res.SampledAcc, sc.sampled)
		res.MeanGravity += sc.gravity
		res.MeanTomo += sc.tomo
		res.MeanSampled += sc.sampled
		res.MinGravity = math.Min(res.MinGravity, sc.gravity)
		res.MinTomo = math.Min(res.MinTomo, sc.tomo)
		res.MinSampled = math.Min(res.MinSampled, sc.sampled)
	}
	n := float64(len(res.Pairs))
	res.MeanGravity /= n
	res.MeanTomo /= n
	res.MeanSampled /= n
	return res, nil
}

// RenderTM writes the comparison table.
func RenderTM(w io.Writer, r *TMResult) error {
	if _, err := fmt.Fprintf(w,
		"Traffic-matrix estimation: SNMP counters vs optimized sampling (θ = %.0f)\n\n", r.Theta); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %10s %10s %12s %10s\n", "OD pair", "pkt/s", "gravity", "tomogravity", "sampled")
	fmt.Fprintln(w, strings.Repeat("-", 58))
	for k, name := range r.Pairs {
		fmt.Fprintf(w, "%-12s %10.0f %10.4f %12.4f %10.4f\n",
			name, r.Truth[k], r.GravityAcc[k], r.TomoAcc[k], r.SampledAcc[k])
	}
	fmt.Fprintf(w, "\nmean accuracy:  gravity %.4f, tomogravity %.4f, sampled %.4f\n",
		r.MeanGravity, r.MeanTomo, r.MeanSampled)
	fmt.Fprintf(w, "worst pair:     gravity %.4f, tomogravity %.4f, sampled %.4f\n",
		r.MinGravity, r.MinTomo, r.MinSampled)
	fmt.Fprintln(w, "\nAggregate link counters cannot separate a 20 pkt/s OD pair from")
	fmt.Fprintln(w, "the thousands of pkt/s sharing its links; targeted sampling can —")
	fmt.Fprintln(w, "the paper's argument for network-wide sampled NetFlow.")
	return nil
}
