package eval

import (
	"fmt"

	"netsamp/internal/core"
	"netsamp/internal/engine"
	"netsamp/internal/plan"
	"netsamp/internal/topology"
)

// ScaleStudy quantifies what the Internet-scale path trades away: on
// deterministic generated ISP-like instances it solves each size both
// exactly (Newton-KKT / Newton-CG) and approximately (Frank-Wolfe) and
// reports the certified duality gap, alongside a worker-count sweep
// checking the sharded kernels' bit-identity contract. It deliberately
// measures no wall-clock time — eval is replayable and timing belongs
// to `netsamp bench -scale` — so the study isolates the *accuracy* cost
// of approximation from the *speed* argument for it.

// ScaleStudyConfig parameterizes ScaleStudy. The zero value of every
// field except Links selects a sensible default.
type ScaleStudyConfig struct {
	// Seed drives the topology generator (instances are pure functions
	// of it).
	Seed uint64
	// Links lists the instance sizes to study (total directed links).
	Links []int
	// PairsPerLink scales the OD-pair count as PairsPerLink·Links;
	// 0 selects 3 (large enough to exercise the CG path, small enough
	// that the exact solve stays tractable in a test suite).
	PairsPerLink int
	// BudgetFrac is θ as a fraction of the instance's maximum sampled
	// rate; 0 selects 0.05.
	BudgetFrac float64
	// Workers lists the shard worker counts checked for bit-identity
	// against the single-worker sharded solve; nil selects {2, 4}.
	Workers []int
	// Exact and Approx carry the inner solver options.
	Exact  core.Options
	Approx core.ApproxOptions
	// ShardCheckIters bounds the bit-identity solves' iterations; 0
	// selects 12 (exact) and 40 (approx). Bit-identity is a property of
	// the whole iteration path, so checking a truncated prefix is sound
	// — and far cheaper than re-converging per worker count.
	ShardCheckIters int
}

// ScalePoint is one instance size's exact-versus-approximate outcome.
type ScalePoint struct {
	Links, Pairs, NNZ int
	// Exact solver outcome.
	ExactObjective  float64
	ExactIterations int
	ExactConverged  bool
	// Frank-Wolfe outcome with its certificate: the exact optimum is
	// provably within GapBound of ApproxObjective.
	ApproxObjective  float64
	ApproxIterations int
	GapBound         float64
	// GapRelative normalizes GapBound by max(1, |ApproxObjective|).
	GapRelative float64
	// ShardBitIdentical reports that every tested worker count
	// reproduced the single-worker sharded solve bit for bit (rates,
	// objective and gap), for both the exact and approximate paths.
	ShardBitIdentical bool
	WorkersTested     []int
}

func (c ScaleStudyConfig) pairsPerLink() int {
	if c.PairsPerLink <= 0 {
		return 3
	}
	return c.PairsPerLink
}

func (c ScaleStudyConfig) budgetFrac() float64 {
	if !(c.BudgetFrac > 0) {
		return 0.05
	}
	return c.BudgetFrac
}

func (c ScaleStudyConfig) workers() []int {
	if c.Workers == nil {
		return []int{2, 4}
	}
	return c.Workers
}

// ScaleStudy runs the study. Results are deterministic functions of the
// configuration: same config, same numbers, on any machine and at any
// concurrency.
func ScaleStudy(cfg ScaleStudyConfig) ([]ScalePoint, error) {
	if len(cfg.Links) == 0 {
		return nil, fmt.Errorf("eval: scale study needs at least one instance size")
	}
	points := make([]ScalePoint, 0, len(cfg.Links))
	for _, links := range cfg.Links {
		pt, err := scalePoint(cfg, links)
		if err != nil {
			return nil, fmt.Errorf("eval: scale study at %d links: %w", links, err)
		}
		points = append(points, pt)
	}
	return points, nil
}

func scalePoint(cfg ScaleStudyConfig, links int) (ScalePoint, error) {
	inst, err := topology.GenerateScale(topology.ScaleConfig{
		Seed:  cfg.Seed,
		Links: links,
		Pairs: cfg.pairsPerLink() * links,
		ECMP:  true,
	})
	if err != nil {
		return ScalePoint{}, err
	}
	budget := cfg.budgetFrac() * inst.MaxSampledRate()
	cp, err := plan.BuildScale(inst, budget, nil)
	if err != nil {
		return ScalePoint{}, err
	}
	s, err := core.NewSolverCSR(cp)
	if err != nil {
		return ScalePoint{}, err
	}
	exact, err := s.Solve(cfg.Exact)
	if err != nil {
		return ScalePoint{}, err
	}
	apx, err := s.SolveApprox(cfg.Approx)
	if err != nil {
		return ScalePoint{}, err
	}
	pt := ScalePoint{
		Links:            len(inst.Loads),
		Pairs:            inst.NumPairs(),
		NNZ:              inst.NNZ(),
		ExactObjective:   exact.Objective,
		ExactIterations:  exact.Stats.Iterations,
		ExactConverged:   exact.Stats.Converged,
		ApproxObjective:  apx.Objective,
		ApproxIterations: apx.Stats.Iterations,
		GapBound:         apx.GapBound,
		WorkersTested:    cfg.workers(),
	}
	scale := pt.ApproxObjective
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	pt.GapRelative = pt.GapBound / scale
	pt.ShardBitIdentical, err = shardIdentity(cp, cfg, pt.WorkersTested)
	if err != nil {
		return ScalePoint{}, err
	}
	return pt, nil
}

// shardIdentity checks the sharding contract on one compiled instance:
// every worker count must reproduce the single-worker sharded solve
// bit for bit, on both solver paths.
func shardIdentity(cp *core.CSRProblem, cfg ScaleStudyConfig, workers []int) (bool, error) {
	base, err := shardedSolves(cp, cfg, 1)
	if err != nil {
		return false, err
	}
	for _, w := range workers {
		got, err := shardedSolves(cp, cfg, w)
		if err != nil {
			return false, err
		}
		for i := range got {
			if !bitIdentical(&got[i], &base[i]) {
				return false, nil
			}
		}
	}
	return true, nil
}

func shardedSolves(cp *core.CSRProblem, cfg ScaleStudyConfig, workers int) ([2]core.Solution, error) {
	var out [2]core.Solution
	s, err := core.NewSolverCSR(cp)
	if err != nil {
		return out, err
	}
	pool := engine.NewPool(workers)
	defer pool.Close()
	s.Shard(pool)
	exOpt, apOpt := cfg.Exact, cfg.Approx
	exOpt.MaxIter, apOpt.MaxIter = 12, 40
	if cfg.ShardCheckIters > 0 {
		exOpt.MaxIter, apOpt.MaxIter = cfg.ShardCheckIters, cfg.ShardCheckIters
	}
	if err := s.SolveInto(&out[0], exOpt); err != nil {
		return out, err
	}
	if err := s.SolveApproxInto(&out[1], apOpt); err != nil {
		return out, err
	}
	return out, nil
}

func bitIdentical(a, b *core.Solution) bool {
	//netsamp:floateq-ok bit-identity is the property under test, not a tolerance check
	if a.Objective != b.Objective || a.GapBound != b.GapBound {
		return false
	}
	if len(a.Rates) != len(b.Rates) {
		return false
	}
	for i := range a.Rates {
		//netsamp:floateq-ok bit-identity is the property under test, not a tolerance check
		if a.Rates[i] != b.Rates[i] {
			return false
		}
	}
	return true
}
