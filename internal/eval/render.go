package eval

import (
	"fmt"
	"io"
	"strings"
)

// RenderTable1 writes Table I in a layout mirroring the paper: one
// section per active monitor link, one row per OD pair with its
// utility and measured accuracy, and the load/contribution footer.
func RenderTable1(w io.Writer, r *Table1Result) error {
	if _, err := fmt.Fprintf(w, "Table I — optimal sampling rates, θ = %.0f packets / %.0f s interval\n\n",
		r.Theta, Interval); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %12s %14s %14s  %s\n", "link", "rate p_i", "load (pkt/s)", "share of θ", "OD pairs sampled here")
	fmt.Fprintln(w, strings.Repeat("-", 96))
	for _, l := range r.Links {
		fmt.Fprintf(w, "%-10s %12.6f %14.0f %13.1f%%  %s\n",
			l.Name, l.Rate, l.Load, 100*l.Contribution, strings.Join(l.Pairs, " "))
	}
	fmt.Fprintf(w, "\n%-12s %12s %-24s %9s %9s\n", "OD pair", "pkt/s", "monitored on", "utility", "accuracy")
	fmt.Fprintln(w, strings.Repeat("-", 72))
	for _, row := range r.Rows {
		mon := strings.Join(row.Monitored, " ")
		if mon == "" {
			mon = "(none)"
		}
		fmt.Fprintf(w, "%-12s %12.0f %-24s %9.4f %9.4f\n",
			row.Name, row.RatePkts, mon, row.Utility, row.Accuracy)
	}
	fmt.Fprintf(w, "\nactive monitors: %d of %d candidate links; max monitors per OD pair: %d\n",
		len(r.Links), len(r.Solution.Rates), r.MaxMonitorsPerPair)
	fmt.Fprintf(w, "solver: %d iterations, %d constraint removals, converged=%v\n",
		r.Solution.Stats.Iterations, r.Solution.Stats.Removals, r.Solution.Stats.Converged)
	return nil
}

// RenderFigure1 writes the Figure 1 series as aligned columns (ρ, M for
// both flow-size regimes), with the stitch points in the header.
func RenderFigure1(w io.Writer, r Figure1Result) error {
	if _, err := fmt.Fprintf(w,
		"Figure 1 — utility M(ρ); x0(c=%.4g) = %.6f (M=%.3f), x0(c=%.4g) = %.6f (M=%.3f)\n",
		r.C1, r.X01, r.MX01, r.C2, r.X02, r.MX02); err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s %12s %12s\n", "rho", "M(avg~500)", "M(avg~1500)")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%10.5f %12.6f %12.6f\n", p.Rho, p.M1, p.M2)
	}
	return nil
}

// RenderFigure2 writes the Figure 2 sweep: per θ, the average/worst/best
// accuracy of the optimal and UK-links-only solutions.
func RenderFigure2(w io.Writer, points []Figure2Point) error {
	if _, err := fmt.Fprintf(w, "Figure 2 — accuracy vs θ (packets per %.0f s interval)\n\n", Interval); err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s | %8s %8s %8s | %8s %8s %8s\n",
		"theta", "opt avg", "opt wrst", "opt best", "uk avg", "uk wrst", "uk best")
	fmt.Fprintln(w, strings.Repeat("-", 70))
	for _, p := range points {
		fmt.Fprintf(w, "%10.0f | %8.4f %8.4f %8.4f | %8.4f %8.4f %8.4f\n",
			p.Theta,
			p.Optimal.Average, p.Optimal.Worst, p.Optimal.Best,
			p.UKOnly.Average, p.UKOnly.Worst, p.UKOnly.Best)
	}
	return nil
}

// RenderConvergence writes the Section IV-D statistics.
func RenderConvergence(w io.Writer, r *ConvergenceResult) error {
	_, err := fmt.Fprintf(w,
		"Convergence study (Section IV-D): %d randomized runs\n"+
			"  converged within 2000 iterations: %d (%.1f%%)   [paper: 98.6%%]\n"+
			"  constraint removals per run: %.2f ± %.2f        [paper: 1.64 ± 1.27]\n"+
			"  mean iterations: %.1f, max: %d\n",
		r.Runs, r.Converged, r.PctConverged, r.MeanRemovals, r.StdRemovals,
		r.MeanIterations, r.MaxIterations)
	return err
}

// RenderAccessComparison writes the Section V-C capacity comparison.
func RenderAccessComparison(w io.Writer, r *AccessComparison) error {
	_, err := fmt.Fprintf(w,
		"Access-link comparison (Section V-C) at θ = %.0f packets/interval\n"+
			"  driving OD pair (largest optimal effective rate): %s (ρ = %.5f)\n"+
			"  access-link-only capacity for equal per-pair accuracy: %.0f packets/interval\n"+
			"  capacity overhead vs optimal: %.0f%%              [paper: ≈70%%]\n",
		r.Theta, r.DrivingPair, r.RequiredRho, r.AccessTheta, r.OverheadPct)
	return err
}

// WriteCSV writes a rectangular table as CSV: header then rows.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	line := func(fields []string) error {
		for i, f := range fields {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, esc(f)); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := line(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// Figure2CSV converts the sweep to CSV rows.
func Figure2CSV(points []Figure2Point) (header []string, rows [][]string) {
	header = []string{"theta", "opt_avg", "opt_worst", "opt_best", "uk_avg", "uk_worst", "uk_best"}
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", p.Theta),
			fmt.Sprintf("%.6f", p.Optimal.Average),
			fmt.Sprintf("%.6f", p.Optimal.Worst),
			fmt.Sprintf("%.6f", p.Optimal.Best),
			fmt.Sprintf("%.6f", p.UKOnly.Average),
			fmt.Sprintf("%.6f", p.UKOnly.Worst),
			fmt.Sprintf("%.6f", p.UKOnly.Best),
		})
	}
	return header, rows
}

// Table1CSV converts Table I to CSV: one row per OD pair plus a
// link-plan section (prefixed rows).
func Table1CSV(r *Table1Result) (header []string, rows [][]string) {
	header = []string{"kind", "name", "rate_or_pkts", "load_or_utility", "share_or_accuracy"}
	for _, l := range r.Links {
		rows = append(rows, []string{
			"link", l.Name,
			fmt.Sprintf("%.8f", l.Rate),
			fmt.Sprintf("%.2f", l.Load),
			fmt.Sprintf("%.6f", l.Contribution),
		})
	}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			"pair", row.Name,
			fmt.Sprintf("%.2f", row.RatePkts),
			fmt.Sprintf("%.6f", row.Utility),
			fmt.Sprintf("%.6f", row.Accuracy),
		})
	}
	return header, rows
}

// DynamicCSV converts the dynamic study to CSV.
func DynamicCSV(r *DynamicResult) (header []string, rows [][]string) {
	header = []string{"interval", "static_obj", "dynamic_obj", "static_worst", "dynamic_worst", "static_spend", "churn", "failed", "anomaly"}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Interval),
			fmt.Sprintf("%.6f", p.StaticObj),
			fmt.Sprintf("%.6f", p.DynamicObj),
			fmt.Sprintf("%.6f", p.StaticWorst),
			fmt.Sprintf("%.6f", p.DynamicWorst),
			fmt.Sprintf("%.4f", p.StaticSpend),
			fmt.Sprintf("%d", p.Churn),
			fmt.Sprintf("%v", p.Failed),
			fmt.Sprintf("%v", p.Anomaly),
		})
	}
	return header, rows
}

// DetectionCSV converts the detection study to CSV.
func DetectionCSV(r *DetectionResult) (header []string, rows [][]string) {
	header = []string{"pair", "p_detect_sum", "p_detect_maxmin", "p_detect_uniform"}
	for k, name := range r.Pairs {
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.6f", r.OptimalProb[k]),
			fmt.Sprintf("%.6f", r.MaxMinProb[k]),
			fmt.Sprintf("%.6f", r.UniformProb[k]),
		})
	}
	return header, rows
}
