package eval

import (
	"context"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"netsamp/internal/control"
	"netsamp/internal/core"
	"netsamp/internal/engine"
	"netsamp/internal/faults"
	"netsamp/internal/geant"
	"netsamp/internal/netflow"
	"netsamp/internal/plan"
	"netsamp/internal/rng"
	"netsamp/internal/topology"
)

// RegretStudy quantifies what uncertainty-aware control is worth when
// the loads the optimizer runs on are themselves estimates. The paper
// assumes the per-link loads U_i are known; in production they come from
// the monitors' own sampled observations, drift between intervals, and
// freeze the moment a monitor crashes. Over a grid of monitor-failure
// rates — each point sharing one drifting true-load history — the study
// plays three operators:
//
//   - oracle: re-optimizes every interval on the TRUE loads (the paper's
//     idealized loop; the regret baseline);
//   - plug-in: EWMA-smooths the sampled load estimates and solves as if
//     they were exact. A crashed monitor's estimate silently freezes,
//     and a plan solved on stale loads overspends θ when the true loads
//     have drifted up;
//   - robust: the same observation stream through the confidence
//     tracker (loadtrack) — each observation's error carries both the
//     estimator's sampling noise (netflow.LinkLoadObservation) and the
//     process noise of the drift itself, unobserved links widen
//     multiplicatively — solved pessimistically against the upper
//     envelope with an exploration reserve on the widest intervals.
//
// Overspending θ is not free: the budget is the monitoring plant's
// processing capacity, and records beyond it are dropped before export
// without accounting (a router never generates the record, so no
// sequence gap betrays the loss). The surviving effective rates are the
// planned ones scaled by q = θ/spend, and — because the operator still
// renormalizes by its PLANNED rates — every estimate that interval is
// biased low by (1−q). In the SRE utility's own units (accuracy =
// 1 − squared relative error) a saturated interval therefore scores
// Value(q·ρ) − (1−q)² per pair: variance at the achieved rate plus the
// squared bias of the blind renormalization. The pessimistic operator
// buys freedom from that bias with a mildly conservative spend.
//
// The reported metric is cumulative utility regret against the oracle:
// Σ_t (U_oracle(t) − U_op(t)) over the achieved (alive, saturated)
// rates. Every draw is split-seeded, so a point is bit-identical at any
// worker count and across a mid-run kill/restore of the robust
// controller.

// RegretConfig parameterizes the study. Zero-value fields select the
// defaults noted on each field.
type RegretConfig struct {
	// FailRates are the per-interval monitor crash probabilities to
	// sweep (default 0, 0.1, 0.2).
	FailRates []float64
	// Intervals is the simulated horizon per grid point (default 24).
	Intervals int
	// Theta is the budget θ in packets per Interval (default 100000).
	Theta float64
	// DriftVol is the true-load random-walk volatility per interval
	// (default 0.3; negative disables).
	DriftVol float64
	// DriftStep is the per-interval probability of a step change in a
	// link's true load (default 0.1; negative disables).
	DriftStep float64
	// SmoothAlpha is the EWMA coefficient of the plug-in and robust
	// operators (default 0.3). The oracle never smooths.
	SmoothAlpha float64
	// ExplorationFrac is the robust operator's exploration reserve
	// (default 0.1; negative disables).
	ExplorationFrac float64
	// WidenFactor is the robust tracker's per-unobserved-interval
	// widening (default 1.3).
	WidenFactor float64
	// KillAt, when > 0, kills the robust controller before stepping that
	// interval and restores it from its serialized snapshot — the study
	// result must be bit-identical to an uninterrupted run.
	KillAt int
	// Seed drives the fault plans, drift and sampling experiments.
	Seed uint64
	// Workers bounds the engine pool (0 = GOMAXPROCS); results are
	// identical for every value.
	Workers int
}

func (c *RegretConfig) defaults() {
	if c.FailRates == nil {
		c.FailRates = []float64{0, 0.1, 0.2}
	}
	if c.Intervals <= 0 {
		c.Intervals = 24
	}
	if c.Theta <= 0 {
		c.Theta = 100000
	}
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if c.DriftVol == 0 {
		c.DriftVol = 0.3
	} else if c.DriftVol < 0 {
		c.DriftVol = 0
	}
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if c.DriftStep == 0 {
		c.DriftStep = 0.1
	} else if c.DriftStep < 0 {
		c.DriftStep = 0
	}
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if c.SmoothAlpha == 0 {
		c.SmoothAlpha = 0.3
	}
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if c.ExplorationFrac == 0 {
		c.ExplorationFrac = 0.1
	} else if c.ExplorationFrac < 0 {
		c.ExplorationFrac = 0
	}
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if c.WidenFactor == 0 {
		c.WidenFactor = 1.3
	}
}

// RegretPoint is one grid point: cumulative utilities over the horizon
// and the resulting regrets against the oracle.
type RegretPoint struct {
	FailRate float64

	OracleUtility float64
	PluginUtility float64
	RobustUtility float64
	// PluginRegret and RobustRegret are OracleUtility minus the
	// operator's utility (non-negative up to solver tolerance).
	PluginRegret float64
	RobustRegret float64

	// PluginOverspends and RobustOverspends count intervals whose
	// deployed plan exceeded θ against the TRUE loads and was clipped.
	PluginOverspends int
	RobustOverspends int
	// Explored is the total number of exploration grants the robust
	// operator issued over the horizon.
	Explored int
}

// RegretResult aggregates the study grid.
type RegretResult struct {
	Points    []RegretPoint
	Intervals int
	Theta     float64
}

// RegretStudy runs the study; see RegretConfig for the knobs.
func RegretStudy(ctx context.Context, s *geant.Scenario, cfg RegretConfig) (*RegretResult, error) {
	cfg.defaults()
	budget := core.BudgetPerInterval(cfg.Theta, Interval)
	inv := s.UtilityParams(Interval)

	points, err := engine.Map(ctx, engine.Options{Workers: cfg.Workers, Seed: cfg.Seed}, len(cfg.FailRates),
		func(_ context.Context, job int, r *rng.Source) (RegretPoint, error) {
			fp, err := faults.NewPlan(faults.Config{
				Seed:         rng.SplitSeed(cfg.Seed, uint64(1000+job)),
				MonitorCrash: cfg.FailRates[job],
				MeanOutage:   2,
				DriftVol:     cfg.DriftVol,
				DriftStep:    cfg.DriftStep,
			})
			if err != nil {
				return RegretPoint{}, err
			}
			return simulateRegretPoint(s, fp, r, regretInputs{
				budget: budget, inv: inv, cfg: cfg,
			})
		})
	if err != nil {
		return nil, err
	}
	return &RegretResult{Points: points, Intervals: cfg.Intervals, Theta: cfg.Theta}, nil
}

type regretInputs struct {
	budget float64
	inv    []float64
	cfg    RegretConfig
}

// regretOperator is one simulated operator's per-interval loop state.
type regretOperator struct {
	ctl *control.Controller
	// obs holds the operator's frozen last load observation per link
	// (what it feeds the controller when a link reports nothing new).
	obs []float64
	// wire is the previous interval's achieved per-link rate — the plan
	// that actually ran, restricted to alive monitors and clipped into
	// budget; it determines what the operator observes this interval.
	wire map[topology.LinkID]float64
}

// simulateRegretPoint plays one drifting fault history against the
// oracle, plug-in and robust operators. All randomness is drawn
// sequentially from the job's private source, so the point is
// deterministic regardless of scheduling.
func simulateRegretPoint(s *geant.Scenario, fp *faults.Plan, r *rng.Source, in regretInputs) (RegretPoint, error) {
	pt := RegretPoint{FailRate: fp.Config().MonitorCrash}
	cfg := in.cfg
	newCtl := func(opts control.Options) (*control.Controller, error) {
		opts.Budget = in.budget
		return control.New(opts)
	}
	robustOpts := control.Options{
		SmoothAlpha: cfg.SmoothAlpha,
		Robust: control.RobustOptions{
			Mode:            core.RobustPessimistic,
			ExplorationFrac: cfg.ExplorationFrac,
			WidenFactor:     cfg.WidenFactor,
		},
	}
	oracleCtl, err := newCtl(control.Options{})
	if err != nil {
		return pt, err
	}
	pluginCtl, err := newCtl(control.Options{SmoothAlpha: cfg.SmoothAlpha})
	if err != nil {
		return pt, err
	}
	robustCtl, err := newCtl(robustOpts)
	if err != nil {
		return pt, err
	}
	nLinks := len(s.Loads)
	oracle := &regretOperator{ctl: oracleCtl}
	plugin := &regretOperator{ctl: pluginCtl, obs: make([]float64, nLinks)}
	robust := &regretOperator{ctl: robustCtl, obs: make([]float64, nLinks)}

	trueLoadsAt := func(t int) []float64 {
		loads := make([]float64, nLinks)
		for i := range loads {
			loads[i] = s.Loads[i] * fp.LoadDrift(t, topology.LinkID(i))
		}
		return loads
	}
	prevTrue := trueLoadsAt(0)
	copy(plugin.obs, prevTrue)
	copy(robust.obs, prevTrue)

	// clipAndScore restricts a deployed plan to alive monitors and scores
	// the interval. A plan whose true sampled rate exceeds θ saturates
	// the plant: the achieved rates are the planned ones scaled by
	// q = θ/spend, and every pair pays the (1−q)² squared bias of
	// renormalizing by the planned rates while only a q fraction of the
	// records survived (see the package comment).
	clipAndScore := func(p map[topology.LinkID]float64, dead map[topology.LinkID]bool, trueLoads []float64) (map[topology.LinkID]float64, float64, bool) {
		achieved := make(map[topology.LinkID]float64, len(p))
		for lid, rate := range p {
			if !dead[lid] {
				achieved[lid] = rate
			}
		}
		bias := 0.0
		clipped := false
		if spend := plan.SampledRate(achieved, trueLoads); spend > in.budget*(1+1e-9) {
			clipped = true
			q := in.budget / spend
			bias = 1 - q
			for lid := range achieved {
				achieved[lid] *= q
			}
		}
		eff := plan.EffectiveRates(s.Matrix, achieved, nil)
		util := 0.0
		for k := range eff {
			util += core.MustSRE(in.inv[k]).Value(eff[k]) - bias*bias
		}
		return achieved, util, clipped
	}

	for t := 0; t < cfg.Intervals; t++ {
		trueLoads := trueLoadsAt(t)
		down := fp.DownSet(t, s.MonitorLinks)
		deadNow := make(map[topology.LinkID]bool, len(down))
		for _, lid := range down {
			deadNow[lid] = true
		}
		var deadPrev map[topology.LinkID]bool
		if t > 0 {
			deadPrev = make(map[topology.LinkID]bool)
			for _, lid := range fp.DownSet(t-1, s.MonitorLinks) {
				deadPrev[lid] = true
			}
		}

		// Observation step: each sampling operator sees, per link, a
		// binomial experiment run at the rate its own plan achieved on
		// the wire last interval — plan-dependent observability is the
		// whole feedback loop under study. Draws are ordered (operator,
		// LinkID) so the stream is schedule-independent.
		observed := make(map[*regretOperator][]bool, 2)
		relErr := make(map[*regretOperator][]float64, 2)
		// The robust operator knows its observations are one interval
		// stale against a drifting quantity, so it folds the drift's
		// per-interval process noise into each observation's error — the
		// plug-in treats the same numbers as exact. This is the entire
		// difference between the two operators' inputs.
		procVar := cfg.DriftVol * cfg.DriftVol
		for _, op := range []*regretOperator{plugin, robust} {
			obsMask := make([]bool, nLinks)
			errs := make([]float64, nLinks)
			if t > 0 {
				for i := 0; i < nLinks; i++ {
					lid := topology.LinkID(i)
					rate := op.wire[lid]
					if !(rate > 0) || deadPrev[lid] {
						continue
					}
					x := r.Binomial(int64(prevTrue[i]*Interval), rate)
					est, re, _ := netflow.LinkLoadObservation(uint64(x), rate, 0, Interval)
					if x > 0 {
						op.obs[i] = est
						obsMask[i] = true
						errs[i] = math.Sqrt(re*re + procVar)
					}
				}
			}
			observed[op] = obsMask
			relErr[op] = errs
		}

		// Deterministic-recovery check: kill the robust controller and
		// resume from its serialized snapshot; the remaining horizon must
		// be bit-identical to an uninterrupted run.
		if cfg.KillAt > 0 && t == cfg.KillAt {
			blob, err := robust.ctl.Snapshot().MarshalBinary()
			if err != nil {
				return pt, fmt.Errorf("eval: regret kill at %d: %w", t, err)
			}
			var st control.State
			if err := st.UnmarshalBinary(blob); err != nil {
				return pt, fmt.Errorf("eval: regret restore at %d: %w", t, err)
			}
			fresh, err := newCtl(robustOpts)
			if err != nil {
				return pt, err
			}
			if err := fresh.Restore(st); err != nil {
				return pt, fmt.Errorf("eval: regret restore at %d: %w", t, err)
			}
			robust.ctl = fresh
		}

		step := func(op *regretOperator, loads []float64, mask []bool, errs []float64) (*control.Decision, error) {
			return op.ctl.StepResilient(context.Background(), control.StepInput{
				Matrix: s.Matrix, Loads: loads, Candidates: s.MonitorLinks,
				InvSizes: in.inv, Workers: 1, Down: down,
				Observed: mask, LoadRelErr: errs,
			})
		}
		dOracle, err := step(oracle, trueLoads, nil, nil)
		if err != nil {
			return pt, fmt.Errorf("eval: regret oracle interval %d: %w", t, err)
		}
		dPlugin, err := step(plugin, plugin.obs, nil, nil)
		if err != nil {
			return pt, fmt.Errorf("eval: regret plug-in interval %d: %w", t, err)
		}
		dRobust, err := step(robust, robust.obs, observed[robust], relErr[robust])
		if err != nil {
			return pt, fmt.Errorf("eval: regret robust interval %d: %w", t, err)
		}
		pt.Explored += len(dRobust.Explored)

		_, utilO, _ := clipAndScore(dOracle.Plan, deadNow, trueLoads)
		wireP, utilP, clippedP := clipAndScore(dPlugin.Plan, deadNow, trueLoads)
		wireR, utilR, clippedR := clipAndScore(dRobust.Plan, deadNow, trueLoads)
		if clippedP {
			pt.PluginOverspends++
		}
		if clippedR {
			pt.RobustOverspends++
		}
		pt.OracleUtility += utilO
		pt.PluginUtility += utilP
		pt.RobustUtility += utilR
		plugin.wire, robust.wire = wireP, wireR
		prevTrue = trueLoads
	}
	pt.PluginRegret = pt.OracleUtility - pt.PluginUtility
	pt.RobustRegret = pt.OracleUtility - pt.RobustUtility
	return pt, nil
}

// RenderRegret writes the study as a text table.
func RenderRegret(w io.Writer, r *RegretResult) error {
	if _, err := fmt.Fprintf(w, "Regret study: plug-in vs uncertainty-aware control under load drift (%d intervals of %.0f s, θ = %.0f)\n\n",
		r.Intervals, Interval, r.Theta); err != nil {
		return err
	}
	fmt.Fprintf(w, "%6s | %12s | %12s %12s | %6s %6s | %8s\n",
		"fail", "util oracle", "regret plug", "regret rbst", "ovr pl", "ovr rb", "explored")
	fmt.Fprintln(w, strings.Repeat("-", 84))
	for _, p := range r.Points {
		fmt.Fprintf(w, "%6.2f | %12.2f | %12.2f %12.2f | %6d %6d | %8d\n",
			p.FailRate, p.OracleUtility, p.PluginRegret, p.RobustRegret,
			p.PluginOverspends, p.RobustOverspends, p.Explored)
	}
	fmt.Fprintln(w, "\nregret: cumulative utility the operator left on the table vs the true-load oracle")
	fmt.Fprintln(w, "ovr: intervals whose deployed plan overspent θ against the true loads and was clipped")
	return nil
}

// RegretCSV flattens the study for WriteCSV.
func RegretCSV(r *RegretResult) (header []string, rows [][]string) {
	header = []string{"fail_rate", "oracle_utility", "plugin_utility", "robust_utility",
		"plugin_regret", "robust_regret", "plugin_overspends", "robust_overspends", "explored"}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	for _, p := range r.Points {
		rows = append(rows, []string{
			f(p.FailRate), f(p.OracleUtility), f(p.PluginUtility), f(p.RobustUtility),
			f(p.PluginRegret), f(p.RobustRegret),
			strconv.Itoa(p.PluginOverspends), strconv.Itoa(p.RobustOverspends), strconv.Itoa(p.Explored),
		})
	}
	return header, rows
}
