package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"netsamp/internal/core"
	"netsamp/internal/geant"
)

// These tests pin the engine's determinism contract at the study level:
// every parallelized experiment must produce byte-identical results
// whether it runs on one worker or eight. Each job's RNG stream is a
// pure function of the master seed and the job index, and aggregation
// happens in job order, so worker count and scheduling cannot leak into
// the output.

func marshalJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFigure2DeterministicAcrossWorkers(t *testing.T) {
	s, err := geant.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	thetas := []float64{50000, 100000, 200000}
	serial, err := Figure2Ctx(context.Background(), s, thetas, 5, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Figure2Ctx(context.Background(), s, thetas, 5, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalJSON(t, serial), marshalJSON(t, parallel)) {
		t.Fatal("Figure2 differs between workers=1 and workers=8")
	}
}

func TestConvergenceDeterministicAcrossWorkers(t *testing.T) {
	s, err := geant.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := ConvergenceStudyCtx(context.Background(), s, 24, 42, core.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ConvergenceStudyCtx(context.Background(), s, 24, 42, core.Options{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalJSON(t, serial), marshalJSON(t, parallel)) {
		t.Fatal("ConvergenceStudy differs between workers=1 and workers=8")
	}
}

func TestTMStudyDeterministicAcrossWorkers(t *testing.T) {
	s, err := geant.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := TMStudyCtx(context.Background(), s, 100000, 5, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := TMStudyCtx(context.Background(), s, 100000, 5, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalJSON(t, serial), marshalJSON(t, parallel)) {
		t.Fatal("TMStudy differs between workers=1 and workers=8")
	}
}

func TestDynamicStudyDeterministicAcrossWorkers(t *testing.T) {
	s, err := geant.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := DynamicStudyCtx(context.Background(), s, 8, 100000, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := DynamicStudyCtx(context.Background(), s, 8, 100000, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalJSON(t, serial), marshalJSON(t, parallel)) {
		t.Fatal("DynamicStudy differs between workers=1 and workers=8")
	}
}
