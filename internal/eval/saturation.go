package eval

import (
	"fmt"
	"io"

	"netsamp/internal/ingest"
	"netsamp/internal/netflow"
	"netsamp/internal/packet"
	"netsamp/internal/rng"
)

// SaturationStudy measures the ingest tier's graceful-degradation curve
// entirely in step mode — no sockets, no goroutines, no clocks — so the
// study is bit-identical for a given seed and sits inside the replay
// fence like every other experiment. Each grid point offers a chosen
// multiple of the collector's aggregate record budget: synthetic
// exporters inject full export datagrams tick by tick (with seeded wire
// loss and duplicates), each shard processes at most its per-tick
// budget, and the periodic deterministic merge folds the survivors into
// the estimator. The curve to expect: delivered goodput saturates at
// capacity while the Overload bucket absorbs the excess, and the books
// balance exactly at every point.

// SaturationConfig parameterizes the study. Zero-value fields select
// the defaults noted on each field.
type SaturationConfig struct {
	// Shards is the collector shard count (default 4).
	Shards int
	// RingSize is the per-shard datagram ring capacity (default 256).
	RingSize int
	// Policy is the overload policy (default drop-newest; the Block
	// policy degrades to immediate drop in step mode, so drop-newest is
	// the honest default here).
	Policy ingest.Policy
	// CapacityPerTick is the record budget each shard may process per
	// tick (default 2048).
	CapacityPerTick int
	// Multiples are the offered-load multiples of aggregate capacity to
	// sweep (default 1, 2, 4).
	Multiples []float64
	// Ticks is the injection horizon per grid point (default 200).
	Ticks int
	// Exporters is the synthetic exporter count (default 8). Exporters
	// land on shards by ID hash, so the per-shard offered load carries
	// realistic imbalance.
	Exporters int
	// Seed drives the fault draws and record contents.
	Seed uint64
	// LossP is the per-datagram wire-loss probability — the datagram's
	// sequence range is emitted but never injected (default 0.01;
	// negative disables).
	LossP float64
	// DupP is the per-datagram duplicate probability (default 0.005;
	// negative disables).
	DupP float64
	// MergeEvery is the tick cadence of the deterministic merge
	// (default 16).
	MergeEvery int
}

func (c *SaturationConfig) defaults() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	if c.CapacityPerTick <= 0 {
		c.CapacityPerTick = 2048
	}
	if c.Multiples == nil {
		c.Multiples = []float64{1, 2, 4}
	}
	if c.Ticks <= 0 {
		c.Ticks = 200
	}
	if c.Exporters <= 0 {
		c.Exporters = 8
	}
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if c.LossP == 0 {
		c.LossP = 0.01
	}
	if c.LossP < 0 {
		c.LossP = 0
	}
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if c.DupP == 0 {
		c.DupP = 0.005
	}
	if c.DupP < 0 {
		c.DupP = 0
	}
	if c.MergeEvery <= 0 {
		c.MergeEvery = 16
	}
}

// SaturationPoint is one offered-load multiple's outcome.
type SaturationPoint struct {
	Multiple float64
	// Emitted counts records the exporters put on the "wire", injected
	// or lost there; Received is what the collector accepted.
	Emitted         uint64
	Received        uint64
	Delivered       uint64
	DroppedOverload uint64
	DroppedShutdown uint64
	LostUpstream    uint64
	Duplicates      uint64
	CoarseBatches   uint64
	// DeliveredFraction is Delivered/Received; DropFraction is the
	// collector's own shedding, Dropped/Received. LossFraction is the
	// estimator-facing combined estimate fed to SetTransportLoss.
	DeliveredFraction float64
	DropFraction      float64
	LossFraction      float64
	// Bins is the number of estimator bins the merges produced — proof
	// the survivors actually reached the estimation stage.
	Bins int
}

// SaturationResult is the full sweep.
type SaturationResult struct {
	Shards          int
	CapacityPerTick int
	Ticks           int
	Exporters       int
	Points          []SaturationPoint
}

// saturationRho/saturationOD: a small synthetic estimation task (3 OD
// pairs keyed by destination port) so the sweep exercises the full
// decode → classify → bin → merge path, not just the ring.
var saturationRho = []float64{0.1, 0.5, 1.0}

func saturationOD(key packet.FiveTuple) (int, bool) {
	return int(key.DstPort) % len(saturationRho), true
}

// SaturationStudy runs the sweep. The returned points are deterministic
// for a given config: same seed, same curve, bit for bit.
func SaturationStudy(cfg SaturationConfig) (*SaturationResult, error) {
	cfg.defaults()
	res := &SaturationResult{
		Shards:          cfg.Shards,
		CapacityPerTick: cfg.CapacityPerTick,
		Ticks:           cfg.Ticks,
		Exporters:       cfg.Exporters,
	}
	for mi, m := range cfg.Multiples {
		if !(m > 0) {
			return nil, fmt.Errorf("eval: saturation multiple %v, want > 0", m)
		}
		pt, err := saturationPoint(cfg, mi, m)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// satExporter is one synthetic exporter's injection state.
type satExporter struct {
	id    uint32
	seq   uint32
	src   *rng.Source
	carry float64
}

func saturationPoint(cfg SaturationConfig, mi int, multiple float64) (SaturationPoint, error) {
	col, err := ingest.New(ingest.Config{
		Shards:          cfg.Shards,
		RingSize:        cfg.RingSize,
		Policy:          cfg.Policy,
		IntervalSeconds: 300,
		Rho:             saturationRho,
		Classifier:      saturationOD,
	})
	if err != nil {
		return SaturationPoint{}, err
	}
	exporters := make([]*satExporter, cfg.Exporters)
	for e := range exporters {
		exporters[e] = &satExporter{
			id:  uint32(1 + e),
			seq: 1,
			src: rng.New(rng.SplitSeed(cfg.Seed, uint64(mi*100000+e))),
		}
	}
	// Offered records per exporter per tick, paced with a fractional
	// carry so any multiple is hit exactly in expectation.
	perExporter := multiple * float64(cfg.Shards*cfg.CapacityPerTick) / float64(cfg.Exporters)
	var pt SaturationPoint
	pt.Multiple = multiple
	const recs = netflow.MaxRecordsPerDatagram
	for tick := 0; tick < cfg.Ticks; tick++ {
		for _, ex := range exporters {
			ex.carry += perExporter / recs
			for ; ex.carry >= 1; ex.carry-- {
				if ex.src.Bernoulli(cfg.LossP) {
					// Lost on the wire: the sequence range is consumed but
					// the datagram never arrives.
					pt.Emitted += recs
					ex.seq += recs
					continue
				}
				b := saturationDgram(ex)
				ex.seq += recs
				pt.Emitted += recs
				col.Inject(b)
				if ex.src.Bernoulli(cfg.DupP) {
					col.Inject(b)
				}
			}
		}
		// Every shard spends at most its tick budget; the excess stays
		// queued until the ring fills and overload policy takes over.
		for s := 0; s < cfg.Shards; s++ {
			col.ProcessAvailable(s, cfg.CapacityPerTick)
		}
		if (tick+1)%cfg.MergeEvery == 0 {
			if err := col.MergeNow(); err != nil {
				return SaturationPoint{}, err
			}
		}
	}
	// Drain what the rings still hold — at most RingSize datagrams per
	// shard, bounded skew against the steady-state fractions — then
	// close and audit.
	col.ProcessAllAvailable()
	if err := col.Close(); err != nil {
		return SaturationPoint{}, err
	}
	v := col.Snapshot()
	if err := v.CheckInvariant(); err != nil {
		return SaturationPoint{}, err
	}
	pt.Received = v.Records
	pt.Delivered = v.Delivered
	pt.DroppedOverload = v.Dropped.Overload
	pt.DroppedShutdown = v.Dropped.Shutdown
	pt.LostUpstream = v.LostRecords
	pt.Duplicates = v.Duplicates
	pt.LossFraction = v.LossFraction
	pt.Bins = len(col.Estimates())
	for _, s := range v.Shards {
		pt.CoarseBatches += s.CoarseBatches
	}
	if v.Records > 0 {
		pt.DeliveredFraction = float64(v.Delivered) / float64(v.Records)
		pt.DropFraction = float64(v.Dropped.Total()) / float64(v.Records)
	}
	return pt, nil
}

// saturationDgram builds one full export datagram with record contents
// drawn from the exporter's seeded stream.
func saturationDgram(ex *satExporter) []byte {
	const count = netflow.MaxRecordsPerDatagram
	h := packet.Header{Count: count, Seq: ex.seq, Exporter: ex.id}
	b := h.AppendTo(make([]byte, 0, packet.HeaderSize+count*packet.RecordSize))
	start := uint32(ex.src.Intn(300))
	for i := 0; i < count; i++ {
		rec := packet.Record{
			Key: packet.FiveTuple{
				Src: packet.Addr(ex.id), Dst: packet.Addr(ex.seq + uint32(i)),
				SrcPort: uint16(ex.seq), DstPort: uint16(ex.src.Intn(65536)), Proto: packet.ProtoUDP,
			},
			MonitorID: uint16(ex.id),
			Packets:   uint64(1 + ex.src.Intn(100)),
			Bytes:     uint64(64 * (1 + ex.src.Intn(32))),
			Start:     start,
			End:       start + 1,
		}
		b = rec.AppendTo(b)
	}
	return b
}

// RenderSaturation writes the sweep as a text table.
func RenderSaturation(w io.Writer, res *SaturationResult) error {
	fmt.Fprintf(w, "Ingest saturation: %d shards x %d records/tick, %d ticks, %d exporters\n\n",
		res.Shards, res.CapacityPerTick, res.Ticks, res.Exporters)
	fmt.Fprintf(w, "%8s %12s %12s %12s %10s %10s %10s %8s\n",
		"offered", "received", "delivered", "overload", "dlv frac", "drop frac", "loss frac", "coarse")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%7.1fx %12d %12d %12d %10.4f %10.4f %10.4f %8d\n",
			p.Multiple, p.Received, p.Delivered, p.DroppedOverload,
			p.DeliveredFraction, p.DropFraction, p.LossFraction, p.CoarseBatches)
	}
	_, err := fmt.Fprintf(w, "\nThe tier saturates, it does not collapse: delivered goodput holds at\ncapacity while the Overload bucket absorbs the excess, and every point\nbalances received == delivered + dropped exactly.\n")
	return err
}

// SaturationCSV flattens the sweep for -csv output.
func SaturationCSV(res *SaturationResult) (header []string, rows [][]string) {
	header = []string{"multiple", "emitted", "received", "delivered", "dropped_overload",
		"dropped_shutdown", "lost_upstream", "duplicates", "delivered_fraction", "drop_fraction", "loss_fraction"}
	for _, p := range res.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%g", p.Multiple),
			fmt.Sprintf("%d", p.Emitted),
			fmt.Sprintf("%d", p.Received),
			fmt.Sprintf("%d", p.Delivered),
			fmt.Sprintf("%d", p.DroppedOverload),
			fmt.Sprintf("%d", p.DroppedShutdown),
			fmt.Sprintf("%d", p.LostUpstream),
			fmt.Sprintf("%d", p.Duplicates),
			fmt.Sprintf("%.6f", p.DeliveredFraction),
			fmt.Sprintf("%.6f", p.DropFraction),
			fmt.Sprintf("%.6f", p.LossFraction),
		})
	}
	return header, rows
}
