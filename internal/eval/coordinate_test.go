package eval

import (
	"strings"
	"testing"

	"netsamp/internal/core"
	"netsamp/internal/plan"
	"netsamp/internal/topology"
)

// TestCoordinationStudyDominates pins the study's headline claim on
// GEANT: at equal θ the coordinated deployment's mean coverage is never
// below the independent one, and at high θ — where multi-monitor paths
// actually overlap — it is strictly above, with a strictly positive
// same-rates gain.
func TestCoordinationStudyDominates(t *testing.T) {
	s := scenario(t)
	thetas := []float64{100000, 1000000}
	points, err := CoordinationStudy(s, thetas, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(thetas) {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.MeanRhoCoordinated < p.MeanRhoIndependent {
			t.Fatalf("θ=%v: coordinated mean coverage %v below independent %v",
				p.Theta, p.MeanRhoCoordinated, p.MeanRhoIndependent)
		}
		if p.MeanGainSameRates < -1e-12 {
			t.Fatalf("θ=%v: negative same-rates gain %v", p.Theta, p.MeanGainSameRates)
		}
		// The worst pair is NOT covered by the theorem — the two optima
		// allocate rates differently — but on GEANT it should not dip by
		// more than solver noise.
		if p.WorstRhoCoordinated < p.WorstRhoIndependent-1e-6 {
			t.Fatalf("θ=%v: coordinated worst coverage %v below independent %v",
				p.Theta, p.WorstRhoCoordinated, p.WorstRhoIndependent)
		}
	}
	// Strict dominance where the optimum spreads over multiple monitors.
	last := points[len(points)-1]
	if last.MeanRhoCoordinated <= last.MeanRhoIndependent {
		t.Fatalf("θ=%v: no strict coverage gain (%v vs %v)",
			last.Theta, last.MeanRhoCoordinated, last.MeanRhoIndependent)
	}
	if last.MeanGainSameRates <= 0 {
		t.Fatalf("θ=%v: no strict same-rates gain (%v)", last.Theta, last.MeanGainSameRates)
	}
}

// TestCoordinationTheoremPerPair checks the pointwise inequality the
// study averages: for ANY per-link rates, the coordinated coverage of
// each pair is at least the independent-sampling product coverage.
func TestCoordinationTheoremPerPair(t *testing.T) {
	s := scenario(t)
	rates := make(map[topology.LinkID]float64, len(s.MonitorLinks))
	for i, lid := range s.MonitorLinks {
		rates[lid] = 0.001 * float64(1+i%7)
	}
	indep := plan.EffectiveRates(s.Matrix, rates, core.ModelIndependentExact)
	coord := plan.EffectiveRates(s.Matrix, rates, core.ModelCoordinated)
	strict := 0
	for k := range indep {
		// Single-monitor pairs are mathematically equal under both
		// models; the product's 1−(1−p) rounding can land an ulp above
		// the additive p, hence the tolerance.
		if coord[k] < indep[k]-1e-12 {
			t.Fatalf("pair %d: coordinated %v below independent %v", k, coord[k], indep[k])
		}
		if coord[k] > indep[k]+1e-12 {
			strict++
		}
	}
	// GEANT paths cross several candidate links, so the inequality must
	// be strict somewhere.
	if strict == 0 {
		t.Fatal("coordination never strictly helped — no multi-monitor pair?")
	}
}

// TestCoordinationStudyDeterministic: same inputs, same output — both
// phases are engine jobs with split seeds, independent of worker count.
func TestCoordinationStudyDeterministic(t *testing.T) {
	s := scenario(t)
	thetas := []float64{50000}
	a, err := CoordinationStudy(s, thetas, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CoordinationStudy(s, thetas, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("study not deterministic:\n%+v\n%+v", a[0], b[0])
	}
}

func TestCoordinationRenderAndCSV(t *testing.T) {
	points := []CoordinationPoint{{
		Theta:              100000,
		MeanRhoIndependent: 0.004, MeanRhoCoordinated: 0.005,
		MeanGainSameRates: 0.0001,
	}}
	var sb strings.Builder
	if err := RenderCoordination(&sb, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "100000") || !strings.Contains(sb.String(), "gain@rates") {
		t.Fatalf("render output missing fields:\n%s", sb.String())
	}
	header, rows := CoordinationCSV(points)
	if len(header) != 8 || len(rows) != 1 || len(rows[0]) != len(header) {
		t.Fatalf("csv shape: %d cols, %d rows", len(header), len(rows))
	}
	if rows[0][0] != "100000" {
		t.Fatalf("theta cell = %q", rows[0][0])
	}
}
