package eval

import (
	"fmt"
	"math"

	"netsamp/internal/geant"
	"netsamp/internal/rng"
	"netsamp/internal/traffic"
)

// World is one measurement interval's synthesized observations: the
// per-link packet loads and the per-pair mean inverse OD sizes the
// controller steps on.
type World struct {
	Loads []float64
	Inv   []float64
}

// worldDomain decorrelates the world-synthesis random stream from the
// fault-plan domains sharing the same master seed.
const worldDomain uint64 = 0x574f524c // "WORL"

// DefaultDiurnalPeriod is the diurnal cycle length, in intervals, of the
// serve loop's synthesized traffic (24 five-minute intervals = 2 hours
// per cycle; the cycle length matters less than its determinism).
const DefaultDiurnalPeriod = 24

// IntervalWorld synthesizes interval t's observations as a PURE function
// of (seed, t): the diurnal background factor (with noise), lognormal
// jitter on the JANET pair demands, and the resulting link loads. Unlike
// DynamicStudy's sequential jitter stream, every draw here comes from a
// source split-seeded per interval — so a recovered run can regenerate
// interval t's world bit-exactly without replaying intervals 0..t-1,
// which is the foundation of the daemon's deterministic-recovery
// guarantee.
func IntervalWorld(s *geant.Scenario, t int, seed uint64) (*World, error) {
	if t < 0 {
		return nil, fmt.Errorf("eval: interval %d, want >= 0", t)
	}
	r := rng.New(rng.SplitSeed(rng.SplitSeed(seed, worldDomain), uint64(t)))
	profile := traffic.Diurnal{Period: DefaultDiurnalPeriod, Trough: 0.5, Peak: 1.2, Noise: 0.1}
	factor := profile.Factor(t, r)

	rates := make([]float64, len(s.Rates))
	for k := range rates {
		rates[k] = s.Rates[k] * r.LogNormal(0, 0.15)
	}
	demands := &traffic.Matrix{}
	for _, d := range s.Demands.Demands {
		nd := d
		isJANET := false
		for k, pr := range s.Pairs {
			if d.Pair.Name == pr.Name {
				nd.Rate = rates[k]
				isJANET = true
				break
			}
		}
		if !isJANET {
			nd.Rate *= factor
		}
		demands.Demands = append(demands.Demands, nd)
	}
	loads, err := traffic.LinkLoads(s.Graph, s.Table, demands)
	if err != nil {
		return nil, fmt.Errorf("eval: interval %d loads: %w", t, err)
	}
	inv := make([]float64, len(rates))
	for k := range rates {
		inv[k] = math.Min(1, 1/(rates[k]*Interval))
	}
	return &World{Loads: loads, Inv: inv}, nil
}
