package eval

import (
	"fmt"
	"io"

	"netsamp/internal/geant"
)

// ReportConfig sizes the full evaluation report.
type ReportConfig struct {
	Theta           float64 // packets per interval (0 → 100,000)
	Trials          int     // sampling experiments per pair (0 → 20)
	ConvergenceRuns int     // randomized solver runs (0 → 200)
	DynamicSteps    int     // intervals in the dynamic study (0 → 24)
	Seed            uint64
}

func (c ReportConfig) withDefaults() ReportConfig {
	if c.Theta <= 0 {
		c.Theta = 100000
	}
	if c.Trials <= 0 {
		c.Trials = 20
	}
	if c.ConvergenceRuns <= 0 {
		c.ConvergenceRuns = 200
	}
	if c.DynamicSteps <= 0 {
		c.DynamicSteps = 24
	}
	return c
}

// WriteReport runs every experiment on the scenario and writes one
// self-contained markdown report (the `netsamp report` command).
func WriteReport(w io.Writer, s *geant.Scenario, cfg ReportConfig) error {
	cfg = cfg.withDefaults()
	section := func(title string) {
		fmt.Fprintf(w, "\n## %s\n\n```\n", title)
	}
	endSection := func() { fmt.Fprint(w, "```\n") }

	fmt.Fprintln(w, "# netsamp evaluation report")
	fmt.Fprintf(w, "\nScenario: %d nodes, %d links, %d OD pairs; θ = %.0f packets per %.0f s interval; seed %d.\n",
		s.Graph.NumNodes(), s.Graph.NumLinks(), len(s.Pairs), cfg.Theta, Interval, cfg.Seed)

	section("Figure 1 — utility function")
	if err := RenderFigure1(w, Figure1(21)); err != nil {
		return err
	}
	endSection()

	section("Table I — optimal sampling plan")
	t1, err := Table1(s, cfg.Theta, cfg.Trials, cfg.Seed+1000)
	if err != nil {
		return err
	}
	if err := RenderTable1(w, t1); err != nil {
		return err
	}
	endSection()

	section("Figure 2 — accuracy vs capacity")
	f2, err := Figure2(s, DefaultThetas(), cfg.Trials, cfg.Seed+2000)
	if err != nil {
		return err
	}
	if err := RenderFigure2(w, f2); err != nil {
		return err
	}
	endSection()

	section("Figure 2 (extended) — all baselines, worst-pair accuracy")
	f2x, err := Figure2Extended(s, DefaultThetas(), cfg.Trials, cfg.Seed+2000)
	if err != nil {
		return err
	}
	if err := RenderFigure2Extended(w, f2x); err != nil {
		return err
	}
	endSection()

	section("Solver convergence (§IV-D)")
	conv, err := ConvergenceStudy(s, cfg.ConvergenceRuns, cfg.Seed+3000)
	if err != nil {
		return err
	}
	if err := RenderConvergence(w, conv); err != nil {
		return err
	}
	endSection()

	section("Access-link comparison (§V-C)")
	acc, err := AccessLinkComparison(s, cfg.Theta)
	if err != nil {
		return err
	}
	if err := RenderAccessComparison(w, acc); err != nil {
		return err
	}
	endSection()

	section("Traffic-matrix estimation comparison")
	tm, err := TMStudy(s, cfg.Theta, cfg.Trials, cfg.Seed+5000)
	if err != nil {
		return err
	}
	if err := RenderTM(w, tm); err != nil {
		return err
	}
	endSection()

	section("Anomaly-detection placement")
	det, err := DetectionStudy(s, cfg.Theta, 500)
	if err != nil {
		return err
	}
	if err := RenderDetection(w, det); err != nil {
		return err
	}
	endSection()

	section("Dynamic re-optimization")
	dyn, err := DynamicStudy(s, cfg.DynamicSteps, cfg.Theta, cfg.Seed+4000)
	if err != nil {
		return err
	}
	if err := RenderDynamic(w, dyn); err != nil {
		return err
	}
	endSection()
	return nil
}
