package eval

import (
	"bytes"
	"context"
	"testing"
)

// TestDegradationStudyGracefulDominates is the study's acceptance check:
// at monitor-failure rates of 10% and above, the graceful operator must
// strictly dominate the naive one — higher achieved utility AND lower
// squared relative estimation error — at every grid point. With
// failures off, loss compensation alone must keep graceful's error at or
// below naive's.
func TestDegradationStudyGracefulDominates(t *testing.T) {
	s := scenario(t)
	res, err := DegradationStudy(context.Background(), s, DegradeConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 9 {
		t.Fatalf("grid size = %d, want 9", len(res.Points))
	}
	for _, p := range res.Points {
		if p.BudgetViolations != 0 {
			t.Errorf("fail=%.2f loss=%.2f: %d budget violations", p.FailRate, p.LossRate, p.BudgetViolations)
		}
		if p.FailRate >= 0.1 {
			if p.GracefulUtility <= p.NaiveUtility {
				t.Errorf("fail=%.2f loss=%.2f: graceful utility %.4f <= naive %.4f",
					p.FailRate, p.LossRate, p.GracefulUtility, p.NaiveUtility)
			}
			if p.GracefulSqErr >= p.NaiveSqErr {
				t.Errorf("fail=%.2f loss=%.2f: graceful sqerr %.6f >= naive %.6f",
					p.FailRate, p.LossRate, p.GracefulSqErr, p.NaiveSqErr)
			}
		}
		if p.FailRate == 0 && p.GracefulSqErr > p.NaiveSqErr*(1+1e-9) {
			t.Errorf("loss=%.2f: loss compensation worse than blind: %.6f > %.6f",
				p.LossRate, p.GracefulSqErr, p.NaiveSqErr)
		}
	}
	if res.Points[0].NaiveUnmeasured != 0 {
		t.Errorf("healthy point reports %d unmeasured pair-intervals", res.Points[0].NaiveUnmeasured)
	}
}

// TestDegradationStudyDeterministic: the rendered study must be
// byte-identical across worker counts at a fixed seed.
func TestDegradationStudyDeterministic(t *testing.T) {
	s := scenario(t)
	render := func(workers int) string {
		t.Helper()
		res, err := DegradationStudy(context.Background(), s, DegradeConfig{
			Seed: 42, Intervals: 4, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := RenderDegrade(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial, parallel := render(1), render(8)
	if serial != parallel {
		t.Fatalf("study depends on worker count:\n--- workers=1\n%s\n--- workers=8\n%s", serial, parallel)
	}
}

func TestDegradeCSV(t *testing.T) {
	s := scenario(t)
	res, err := DegradationStudy(context.Background(), s, DegradeConfig{
		Seed: 3, Intervals: 2, FailRates: []float64{0, 0.1}, LossRates: []float64{0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	header, rows := DegradeCSV(res)
	if len(header) != 9 || len(rows) != 2 {
		t.Fatalf("csv shape = %d cols x %d rows", len(header), len(rows))
	}
	for _, row := range rows {
		if len(row) != len(header) {
			t.Fatalf("ragged csv row: %v", row)
		}
	}
}
