// Package plan bridges the network substrates and the optimizer: it maps
// a routing matrix, per-link loads and a candidate monitor set onto a
// dense core.Problem, and maps the solved sampling rates back onto
// topology link IDs for deployment and simulation.
package plan

import (
	"fmt"

	"netsamp/internal/core"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
)

// Input assembles everything needed to state a sampling problem.
type Input struct {
	// Matrix holds the routing rows of the OD pairs under study.
	Matrix *routing.Matrix
	// Loads is the packet rate per link, indexed by topology.LinkID.
	Loads []float64
	// Candidates is the monitorable link set L (access links excluded by
	// the caller per the paper's Section V-C).
	Candidates []topology.LinkID
	// InvMeanSizes is E[1/S_k] per OD pair, parameterizing each pair's
	// SRE utility.
	InvMeanSizes []float64
	// Weights optionally skews the objective per pair (nil = equal).
	Weights []float64
	// Budget is θ as a sampled packet rate (use core.BudgetPerInterval).
	Budget float64
	// MaxRates optionally caps each candidate link's sampling rate α_i
	// (nil = 1 everywhere, the paper's Table I setting). Every key must
	// name a link in Candidates; Build rejects strays with a typed
	// core.InputError rather than silently ignoring them.
	MaxRates map[topology.LinkID]float64
	// Model selects the effective-rate model (nil = core.ModelLinear).
	Model core.RateModel
}

// Build constructs the dense problem and the LinkID→dense-index map.
// Pairs that traverse no candidate link are rejected: they would be
// unmeasurable under this candidate set.
func Build(in Input) (*core.Problem, map[topology.LinkID]int, error) {
	if in.Matrix == nil {
		return nil, nil, fmt.Errorf("plan: nil routing matrix")
	}
	if len(in.InvMeanSizes) != len(in.Matrix.Pairs) {
		return nil, nil, fmt.Errorf("plan: %d InvMeanSizes for %d pairs", len(in.InvMeanSizes), len(in.Matrix.Pairs))
	}
	if in.Weights != nil && len(in.Weights) != len(in.Matrix.Pairs) {
		return nil, nil, fmt.Errorf("plan: %d Weights for %d pairs", len(in.Weights), len(in.Matrix.Pairs))
	}
	if len(in.Candidates) == 0 {
		return nil, nil, fmt.Errorf("plan: empty candidate set")
	}
	index := make(map[topology.LinkID]int, len(in.Candidates))
	prob := &core.Problem{
		Budget: in.Budget,
		Model:  in.Model,
	}
	for _, lid := range in.Candidates {
		if _, dup := index[lid]; dup {
			return nil, nil, fmt.Errorf("plan: duplicate candidate link %d", lid)
		}
		if int(lid) < 0 || int(lid) >= len(in.Loads) {
			return nil, nil, fmt.Errorf("plan: candidate link %d outside load table", lid)
		}
		index[lid] = len(prob.Loads)
		prob.Loads = append(prob.Loads, in.Loads[lid])
	}
	if in.MaxRates != nil {
		prob.MaxRate = make([]float64, len(prob.Loads))
		for i := range prob.MaxRate {
			prob.MaxRate[i] = 1
		}
		// Sorted iteration makes the first rejected stray deterministic.
		for _, lid := range topology.SortedKeys(in.MaxRates) {
			i, ok := index[lid]
			if !ok {
				return nil, nil, &core.InputError{
					Field:  "max rate of link",
					Index:  int(lid),
					Value:  in.MaxRates[lid],
					Reason: "link is not in Candidates (a cap on an unmonitorable link would be silently unenforceable)",
				}
			}
			prob.MaxRate[i] = in.MaxRates[lid]
		}
	}
	for k, pr := range in.Matrix.Pairs {
		u, err := core.NewSRE(in.InvMeanSizes[k])
		if err != nil {
			return nil, nil, fmt.Errorf("plan: pair %q: %w", pr.Name, err)
		}
		var links []int
		var fracs []float64
		for j, lid := range in.Matrix.Rows[k] {
			if i, ok := index[lid]; ok {
				links = append(links, i)
				if in.Matrix.Fracs != nil {
					fracs = append(fracs, in.Matrix.Fracs[k][j])
				}
			}
		}
		if len(links) == 0 {
			return nil, nil, fmt.Errorf("plan: pair %q traverses no candidate link", pr.Name)
		}
		p := core.Pair{Name: pr.Name, Links: links, Utility: u, Fracs: fracs}
		if in.Weights != nil {
			p.Weight = in.Weights[k]
		}
		prob.Pairs = append(prob.Pairs, p)
	}
	return prob, index, nil
}

// RatesByLink maps a solution's dense rate vector back to topology link
// IDs, omitting zero rates (monitors that stay off).
func RatesByLink(sol *core.Solution, candidates []topology.LinkID) map[topology.LinkID]float64 {
	out := make(map[topology.LinkID]float64)
	for i, lid := range candidates {
		if sol.Rates[i] > 0 {
			out[lid] = sol.Rates[i]
		}
	}
	return out
}

// EffectiveRates computes the per-pair effective sampling rate of an
// arbitrary per-link rate assignment (not necessarily an optimizer
// output) under the given rate model (nil = core.ModelLinear). The
// result is the deployed inclusion probability: the model's Deployed
// mapping is applied, which clamps the coordinated model's additive
// surrogate at 1 (identity for the other models).
func EffectiveRates(m *routing.Matrix, rates map[topology.LinkID]float64, model core.RateModel) []float64 {
	out := make([]float64, len(m.Pairs))
	EffectiveRatesInto(out, m, rates, model)
	return out
}

// EffectiveRatesInto is EffectiveRates writing into dst (length
// len(m.Pairs)) — the allocation-free form for per-interval loops.
//netsamp:noalloc
func EffectiveRatesInto(dst []float64, m *routing.Matrix, rates map[topology.LinkID]float64, model core.RateModel) {
	if len(dst) != len(m.Pairs) {
		panic("plan: EffectiveRatesInto destination length mismatch")
	}
	if model == nil {
		model = core.ModelLinear
	}
	additive := model.Additive() //netsamp:allocflow-ok core's model set is closed and noalloc; interface facts do not cross packages
	for k := range m.Pairs {
		var rho float64
		if additive {
			s := 0.0
			for j, lid := range m.Rows[k] {
				f := 1.0
				if m.Fracs != nil && m.Fracs[k] != nil {
					f = m.Fracs[k][j]
				}
				s += f * rates[lid]
			}
			rho = s
		} else {
			q := 1.0
			for _, lid := range m.Rows[k] {
				q *= 1 - rates[lid]
			}
			rho = 1 - q
		}
		dst[k] = model.Deployed(rho) //netsamp:allocflow-ok core's model set is closed and noalloc; interface facts do not cross packages
	}
}

// SampledRate returns Σ p_i·U_i for a per-link assignment. The sum runs
// in link-ID order so the result is bit-reproducible across runs (map
// iteration order would otherwise reorder the float additions).
func SampledRate(rates map[topology.LinkID]float64, loads []float64) float64 {
	lids := topology.SortedKeys(rates)
	t := 0.0
	for _, lid := range lids {
		t += rates[lid] * loads[lid]
	}
	return t
}
