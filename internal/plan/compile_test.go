package plan

import (
	"testing"

	"netsamp/internal/core"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
)

func fixtureInput(t *testing.T) Input {
	t.Helper()
	_, m, loads, cands := fixture(t)
	return Input{
		Matrix:       m,
		Loads:        loads,
		Candidates:   cands,
		InvMeanSizes: []float64{0.002, 0.001},
		Budget:       10,
	}
}

// sameSolution compares two solutions bit for bit: a retuned compile
// must be indistinguishable from a fresh one.
func sameSolution(t *testing.T, got, want *core.Solution, label string) {
	t.Helper()
	if got.Objective != want.Objective || got.Lambda != want.Lambda {
		t.Fatalf("%s: objective/lambda differ: (%v, %v) vs (%v, %v)",
			label, got.Objective, got.Lambda, want.Objective, want.Lambda)
	}
	for i := range got.Rates {
		if got.Rates[i] != want.Rates[i] {
			t.Fatalf("%s: rate %d differs: %v vs %v", label, i, got.Rates[i], want.Rates[i])
		}
	}
}

// TestRetuneMatchesFreshCompile: solving a retuned Compiled must match
// a fresh Build+Solve of the retuned input exactly, across budget
// shrink/grow, load drift, utility-parameter drift and weight changes.
func TestRetuneMatchesFreshCompile(t *testing.T) {
	base := fixtureInput(t)
	comp, err := Compile(base)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name   string
		mutate func(in *Input)
	}{
		{"budget-shrink", func(in *Input) { in.Budget = 4 }},
		{"budget-grow", func(in *Input) { in.Budget = 25 }},
		{"loads-drift", func(in *Input) {
			in.Loads = append([]float64(nil), in.Loads...)
			for i := range in.Loads {
				in.Loads[i] *= 1.3
			}
		}},
		{"sizes-drift", func(in *Input) { in.InvMeanSizes = []float64{0.003, 0.0015} }},
		{"weights-on", func(in *Input) { in.Weights = []float64{2, 1} }},
		{"weights-off-again", func(in *Input) {}},
	}
	for _, v := range variants {
		in := base
		v.mutate(&in)
		if err := comp.Retune(in); err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		got, err := comp.Solver().Solve(core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		fresh, err := Compile(in)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		want, err := fresh.Solver().Solve(core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		sameSolution(t, got, want, v.name)
	}
}

// TestRetuneStructureChanges: re-tuning may only touch numeric fields;
// a different candidate set, rate model or pair count must be refused.
func TestRetuneStructureChanges(t *testing.T) {
	base := fixtureInput(t)
	comp, err := Compile(base)
	if err != nil {
		t.Fatal(err)
	}
	exact := base
	exact.Model = core.ModelIndependentExact
	if err := comp.Retune(exact); err == nil {
		t.Fatal("rate-model change accepted")
	}
	fewer := base
	fewer.Candidates = base.Candidates[:1]
	if err := comp.Retune(fewer); err == nil {
		t.Fatal("candidate-set change accepted")
	}
	sizes := base
	sizes.InvMeanSizes = []float64{0.002}
	if err := comp.Retune(sizes); err == nil {
		t.Fatal("pair-count change accepted")
	}
	badW := base
	badW.Weights = []float64{1}
	if err := comp.Retune(badW); err == nil {
		t.Fatal("wrong-length weights accepted")
	}
	short := base
	short.Loads = base.Loads[:1]
	if err := comp.Retune(short); err == nil {
		t.Fatal("load table missing a candidate accepted")
	}
	// The failed retunes must not have corrupted the workspace.
	if err := comp.Retune(base); err != nil {
		t.Fatalf("retune back to base: %v", err)
	}
	got, err := comp.Solver().Solve(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := Compile(base)
	want, err := fresh.Solver().Solve(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, got, want, "after failed retunes")
}

// TestCacheIdentity: the cache must hit on the same (matrix, candidate
// set, rate model) identity and miss when any of the three changes.
func TestCacheIdentity(t *testing.T) {
	base := fixtureInput(t)
	cache := NewCache()

	first, err := cache.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	retuned := base
	retuned.Budget = 5
	second, err := cache.Get(retuned)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("same identity did not reuse the compiled pair")
	}
	if got := second.Problem().Budget; got != 5 {
		t.Fatalf("hit did not retune the budget: %v", got)
	}
	if h, m := cache.Stats(); h != 1 || m != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want (1, 1)", h, m)
	}

	// The rate model is part of the identity.
	exact := base
	exact.Model = core.ModelIndependentExact
	third, err := cache.Get(exact)
	if err != nil {
		t.Fatal(err)
	}
	if third == first {
		t.Fatal("exact and linear models shared a compiled pair")
	}

	// A reversed candidate order is a different dense layout.
	rev := base
	rev.Candidates = []topology.LinkID{base.Candidates[1], base.Candidates[0]}
	fourth, err := cache.Get(rev)
	if err != nil {
		t.Fatal(err)
	}
	if fourth == first {
		t.Fatal("different candidate order shared a compiled pair")
	}

	// A rebuilt matrix (same contents, new pointer) signals a routing
	// change and must miss.
	other := fixtureInput(t)
	fifth, err := cache.Get(other)
	if err != nil {
		t.Fatal(err)
	}
	if fifth == first {
		t.Fatal("distinct matrices shared a compiled pair")
	}
	if cache.Len() != 4 {
		t.Fatalf("cache holds %d entries, want 4", cache.Len())
	}

	cache.Reset()
	if cache.Len() != 0 {
		t.Fatal("reset left entries behind")
	}
	if _, err := cache.Get(Input{}); err == nil {
		t.Fatal("nil matrix accepted")
	}
}

// TestCacheBound: overflowing maxEntries resets the cache instead of
// growing without bound.
func TestCacheBound(t *testing.T) {
	base := fixtureInput(t)
	cache := NewCache()
	cache.maxEntries = 3
	mats := make([]*routing.Matrix, 5)
	for i := range mats {
		in := fixtureInput(t)
		mats[i] = in.Matrix
		if _, err := cache.Get(in); err != nil {
			t.Fatal(err)
		}
		if cache.Len() > 3 {
			t.Fatalf("cache grew to %d entries past the bound", cache.Len())
		}
	}
	// The cache still works after the reset.
	if _, err := cache.Get(base); err != nil {
		t.Fatal(err)
	}
}
