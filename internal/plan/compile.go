package plan

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"netsamp/internal/core"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
)

// Compiled couples a built core.Problem with its compiled core.Solver
// and the candidate-set bookkeeping, so a family of related instances —
// a θ-sweep, randomized restarts, successive measurement intervals —
// validates and compiles the CSR incidence once and re-tunes the
// numeric fields in place between solves.
//
// A Compiled is not safe for concurrent use (it wraps a core.Solver);
// run one per worker, or hand out entries of a Cache under distinct
// keys.
type Compiled struct {
	solver *core.Solver
	index  map[topology.LinkID]int
	cands  []topology.LinkID
	// model is the compiled rate model's identity (core.ModelName).
	model string

	// inv holds the InvMeanSizes the per-pair SRE utilities were built
	// from; Retune rebuilds utilities only when these change.
	inv []float64
	// denseLoads is the candidate-ordered load scratch Retune fills from
	// the per-LinkID load table.
	denseLoads []float64
	// ones backs Retune's weight reset when Input.Weights is nil.
	ones []float64
}

// Compile builds the dense problem for in (see Build) and compiles it
// into a reusable solver workspace.
func Compile(in Input) (*Compiled, error) {
	prob, index, err := Build(in)
	if err != nil {
		return nil, err
	}
	solver, err := core.NewSolver(prob)
	if err != nil {
		return nil, err
	}
	return &Compiled{
		solver:     solver,
		index:      index,
		cands:      append([]topology.LinkID(nil), in.Candidates...),
		model:      core.ModelName(in.Model),
		inv:        append([]float64(nil), in.InvMeanSizes...),
		denseLoads: make([]float64, len(in.Candidates)),
	}, nil
}

// Solver returns the compiled workspace.
func (c *Compiled) Solver() *core.Solver { return c.solver }

// Problem returns the compiled problem, reflecting any re-tuning.
// Read-only; re-tune through Retune.
func (c *Compiled) Problem() *core.Problem { return c.solver.Problem() }

// Index returns the LinkID→dense-index map (read-only).
func (c *Compiled) Index() map[topology.LinkID]int { return c.index }

// Candidates returns the candidate links in dense order (read-only).
func (c *Compiled) Candidates() []topology.LinkID { return c.cands }

// Retune re-points the compiled pair at in's numeric fields — Budget,
// Loads, InvMeanSizes and Weights — without recompiling. in must carry
// the same problem structure the pair was compiled from: the same
// routing-matrix rows, candidate set and rate model (a Cache keys on
// exactly that identity). Re-validation is limited to what changed.
func (c *Compiled) Retune(in Input) error {
	if core.ModelName(in.Model) != c.model {
		return fmt.Errorf("plan: retune changes the rate model %s -> %s (structure change; recompile)", c.model, core.ModelName(in.Model))
	}
	if len(in.Candidates) != len(c.cands) {
		return fmt.Errorf("plan: retune with %d candidates for a %d-candidate compile (structure change; recompile)", len(in.Candidates), len(c.cands))
	}
	nPairs := len(c.inv)
	if len(in.InvMeanSizes) != nPairs {
		return fmt.Errorf("plan: %d InvMeanSizes for %d pairs", len(in.InvMeanSizes), nPairs)
	}
	if in.Weights != nil && len(in.Weights) != nPairs {
		return fmt.Errorf("plan: %d Weights for %d pairs", len(in.Weights), nPairs)
	}
	for j, lid := range c.cands {
		if int(lid) < 0 || int(lid) >= len(in.Loads) {
			return fmt.Errorf("plan: candidate link %d outside load table", lid)
		}
		c.denseLoads[j] = in.Loads[lid]
	}
	// Order matters: each setter re-checks feasibility against the other
	// field's current value. A jointly feasible (budget, loads) pair
	// always passes when a shrinking budget is applied first (it fits
	// the old loads' bound a fortiori) and a growing one after the new
	// loads (whose bound it fits by assumption).
	if in.Budget <= c.solver.Problem().Budget {
		if err := c.solver.SetBudget(in.Budget); err != nil {
			return err
		}
		if err := c.solver.SetLoads(c.denseLoads); err != nil {
			return err
		}
	} else {
		if err := c.solver.SetLoads(c.denseLoads); err != nil {
			return err
		}
		if err := c.solver.SetBudget(in.Budget); err != nil {
			return err
		}
	}
	changed := false
	for k, v := range in.InvMeanSizes {
		//netsamp:floateq-ok bitwise change detection decides whether to re-push parameters
		if v != c.inv[k] {
			changed = true
			break
		}
	}
	if changed {
		us := make([]core.Utility, nPairs)
		for k, v := range in.InvMeanSizes {
			u, err := core.NewSRE(v)
			if err != nil {
				return fmt.Errorf("plan: pair %d: %w", k, err)
			}
			us[k] = u
		}
		if err := c.solver.SetUtilities(us); err != nil {
			return err
		}
		copy(c.inv, in.InvMeanSizes)
	}
	w := in.Weights
	if w == nil {
		// Explicit reset: Solver.SetWeights(nil) restores the weights
		// baked in at compile time, which is wrong when the compile-time
		// Input carried weights and this interval does not.
		if c.ones == nil {
			c.ones = make([]float64, nPairs)
			for k := range c.ones {
				c.ones[k] = 1
			}
		}
		w = c.ones
	}
	return c.solver.SetWeights(w)
}

// cacheKey is the problem identity a Cache memoizes on: the routing
// matrix (by pointer — rebuilding a matrix signals a routing change),
// the candidate-set contents and the rate model's name (so two models
// with the same matrix and candidates can never alias one compiled
// plan). Everything else about an Input is numeric re-tuning.
type cacheKey struct {
	matrix *routing.Matrix
	cands  string
	model  string
}

func candsFingerprint(cands []topology.LinkID) string {
	var b strings.Builder
	for i, lid := range cands {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(lid)))
	}
	return b.String()
}

// Cache memoizes Compiled pairs by problem identity, so sweep and
// per-interval loops that re-state the same structure with different
// budgets, loads or utility parameters skip re-validation and
// recompilation. A routing change (a new matrix) or a candidate-set
// change is a miss by construction — exactly the topology-change
// boundary at which a rebuild is genuinely required.
//
// Get itself is safe for concurrent use, but a Compiled entry is not:
// concurrent callers must solve under distinct keys (as the controller's
// full/retained pair does) or use distinct Caches (as the study chunks
// do).
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*Compiled
	hits    int
	misses  int
	// maxEntries bounds the map; exceeding it resets the cache (the
	// loops this serves cycle through a handful of identities, so a
	// full reset beats LRU bookkeeping).
	maxEntries int
}

// NewCache returns an empty cache holding up to 64 compiled pairs.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*Compiled), maxEntries: 64}
}

// Get returns the compiled pair for in's identity, compiling it on a
// miss and re-tuning the numeric fields (budget, loads, utility
// parameters, weights) on a hit. The returned Compiled is owned by the
// cache; see the Cache doc for the concurrency contract.
func (c *Cache) Get(in Input) (*Compiled, error) {
	if in.Matrix == nil {
		return nil, fmt.Errorf("plan: nil routing matrix")
	}
	key := cacheKey{matrix: in.Matrix, cands: candsFingerprint(in.Candidates), model: core.ModelName(in.Model)}
	c.mu.Lock()
	ent := c.entries[key]
	c.mu.Unlock()
	if ent != nil {
		if err := ent.Retune(in); err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return ent, nil
	}
	ent, err := Compile(in)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if len(c.entries) >= c.maxEntries {
		c.entries = make(map[cacheKey]*Compiled)
	}
	c.entries[key] = ent
	c.misses++
	c.mu.Unlock()
	return ent, nil
}

// Len returns the number of cached compiled pairs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns how many Get calls reused a compiled pair (hits) and
// how many had to compile (misses).
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset drops every cached pair.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[cacheKey]*Compiled)
}
