package plan

import (
	"netsamp/internal/core"
	"netsamp/internal/topology"
)

// BuildScale maps a generated topology.ScaleInstance onto a
// core.CSRProblem. Unlike Build there is no candidate-set indirection:
// every link of a generated instance is a candidate monitor, so
// topology.LinkID and the solver's dense index coincide and the
// instance's CSR routing arrays are handed to the solver as-is (they are
// read-only to both sides; several solvers may share one instance).
// Pairs share one SRE utility object per flow-size class — at 10⁶ pairs,
// per-pair utility allocations would dominate the build.
//
// budget is θ as a sampled packet rate. model selects the effective-rate
// model (nil = core.ModelLinear); single-path instances work with every
// model, ECMP instances only with fraction-aware ones.
func BuildScale(inst *topology.ScaleInstance, budget float64, model core.RateModel) (*core.CSRProblem, error) {
	classes := topology.SizeClasses()
	byClass := make(map[float64]core.Utility, len(classes))
	for _, c := range classes {
		u, err := core.NewSRE(c)
		if err != nil {
			return nil, err
		}
		byClass[c] = u
	}
	utils := make([]core.Utility, inst.NumPairs())
	for k, c := range inst.InvSizes {
		u, ok := byClass[c]
		if !ok {
			// An instance from a newer generator revision: build the odd
			// class out rather than fail.
			var err error
			if u, err = core.NewSRE(c); err != nil {
				return nil, err
			}
			byClass[c] = u
		}
		utils[k] = u
	}
	return &core.CSRProblem{
		Loads:     inst.Loads,
		Budget:    budget,
		Start:     inst.Start,
		Links:     inst.Links,
		Fracs:     inst.Fracs,
		Utilities: utils,
		Model:     model,
	}, nil
}
