package plan

import (
	"netsamp/internal/packet"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
)

// PairAssignment is the coordinated-sampling configuration of one OD
// pair: which monitors own which hash ranges, and the coin the owner
// applies to flows inside its range.
//
// The construction realizes the coordinated rate model's additive
// surrogate S_k = Σ f_ki·p_i as an inclusion probability min(1, S_k):
// the pair's flow-hash space is partitioned among its active monitors
// with widths proportional to each monitor's share f_ki·p_i, and the
// unique owner of a flow samples its packets with probability Coin =
// min(1, S_k). A uniformly hashed flow is therefore included with
// probability Σ_i (share_i/S_k)·Coin = min(1, S_k) — exactly the
// coordinated model's Deployed(ρ_k) — while no packet is ever sampled
// by two monitors (the budget buys coverage, not duplicates).
type PairAssignment struct {
	// Pair is the OD pair's name (routing.ODPair.Name).
	Pair string
	// Coin is the per-flow sampling probability the owning monitor
	// applies: min(1, Σ f_ki·p_i). Zero when no monitor on the path has
	// a positive rate (the pair is unmeasured).
	Coin float64
	// Links lists the pair's active monitors in path order; Ranges is
	// the parallel hash-range assignment. The ranges partition the full
	// 64-bit hash space exactly (see packet.PartitionHashSpace).
	Links  []topology.LinkID
	Ranges []packet.HashRange
}

// Coordination is the deterministic flow-space assignment derived from
// a routing matrix and a deployed per-link rate assignment. Building it
// is a pure function of (matrix, rates): the same inputs always yield
// bitwise-identical ranges, so exporters configured independently from
// the same plan agree on the partition.
type Coordination struct {
	// Assignments is indexed like the matrix's pairs.
	Assignments []PairAssignment
}

// Coordinate derives the per-pair hash-range assignment for a deployed
// rate assignment under the coordinated rate model. Monitors with zero
// (or absent) rates own no range; a pair with no active monitor gets an
// empty assignment with Coin 0.
func Coordinate(m *routing.Matrix, rates map[topology.LinkID]float64) *Coordination {
	c := &Coordination{Assignments: make([]PairAssignment, len(m.Pairs))}
	for k := range m.Pairs {
		a := &c.Assignments[k]
		a.Pair = m.Pairs[k].Name
		var shares []float64
		total := 0.0
		for j, lid := range m.Rows[k] {
			p := rates[lid]
			if p <= 0 {
				continue
			}
			f := 1.0
			if m.Fracs != nil && m.Fracs[k] != nil {
				f = m.Fracs[k][j]
			}
			share := f * p
			if share <= 0 {
				continue
			}
			a.Links = append(a.Links, lid)
			shares = append(shares, share)
			total += share
		}
		if len(a.Links) == 0 {
			continue
		}
		a.Coin = total
		if a.Coin > 1 {
			a.Coin = 1
		}
		a.Ranges = make([]packet.HashRange, len(shares))
		packet.PartitionHashSpace(a.Ranges, shares)
	}
	return c
}

// MonitorConfig extracts the per-pair filter configuration of one
// monitor: ranges[k] is the hash range link lid owns for pair k (the
// canonical empty range when it owns none) and coins[k] the sampling
// probability to apply inside it. The slices feed
// netflow.CoordConfig directly.
func (c *Coordination) MonitorConfig(lid topology.LinkID) (ranges []packet.HashRange, coins []float64) {
	ranges = make([]packet.HashRange, len(c.Assignments))
	coins = make([]float64, len(c.Assignments))
	for k := range c.Assignments {
		ranges[k] = packet.EmptyHashRange
		a := &c.Assignments[k]
		for j, l := range a.Links {
			if l == lid {
				ranges[k] = a.Ranges[j]
				coins[k] = a.Coin
				break
			}
		}
	}
	return ranges, coins
}
