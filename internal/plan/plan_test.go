package plan

import (
	"math"
	"testing"

	"netsamp/internal/core"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
	"netsamp/internal/traffic"
)

// fixture: A -> B -> C line with an A->C and a B->C pair.
func fixture(t *testing.T) (*topology.Graph, *routing.Matrix, []float64, []topology.LinkID) {
	t.Helper()
	g := topology.New()
	a, b, c := g.AddNode("A"), g.AddNode("B"), g.AddNode("C")
	g.AddDuplex(a, b, topology.OC48, 1)
	g.AddDuplex(b, c, topology.OC48, 1)
	tbl := routing.ComputeTable(g)
	m, err := routing.BuildMatrix(tbl, []routing.ODPair{
		{Name: "A->C", Src: a, Dst: c},
		{Name: "B->C", Src: b, Dst: c},
	})
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, g.NumLinks())
	ab, _ := g.FindLink(a, b)
	bc, _ := g.FindLink(b, c)
	loads[ab] = 1000
	loads[bc] = 2000
	return g, m, loads, []topology.LinkID{ab, bc}
}

func TestBuildProblem(t *testing.T) {
	_, m, loads, cands := fixture(t)
	prob, index, err := Build(Input{
		Matrix:       m,
		Loads:        loads,
		Candidates:   cands,
		InvMeanSizes: []float64{0.002, 0.001},
		Budget:       10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prob.NumLinks() != 2 || len(prob.Pairs) != 2 {
		t.Fatalf("problem shape: %d links %d pairs", prob.NumLinks(), len(prob.Pairs))
	}
	if prob.Loads[index[cands[0]]] != 1000 || prob.Loads[index[cands[1]]] != 2000 {
		t.Fatalf("loads mapped wrong: %v", prob.Loads)
	}
	// Pair A->C crosses both links; B->C only the second.
	if len(prob.Pairs[0].Links) != 2 || len(prob.Pairs[1].Links) != 1 {
		t.Fatalf("rows: %v / %v", prob.Pairs[0].Links, prob.Pairs[1].Links)
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildErrors(t *testing.T) {
	_, m, loads, cands := fixture(t)
	cases := []Input{
		{Matrix: nil, Loads: loads, Candidates: cands, InvMeanSizes: []float64{0.1, 0.1}, Budget: 1},
		{Matrix: m, Loads: loads, Candidates: cands, InvMeanSizes: []float64{0.1}, Budget: 1},
		{Matrix: m, Loads: loads, Candidates: nil, InvMeanSizes: []float64{0.1, 0.1}, Budget: 1},
		{Matrix: m, Loads: loads, Candidates: []topology.LinkID{cands[0], cands[0]}, InvMeanSizes: []float64{0.1, 0.1}, Budget: 1},
		{Matrix: m, Loads: loads, Candidates: []topology.LinkID{99}, InvMeanSizes: []float64{0.1, 0.1}, Budget: 1},
		{Matrix: m, Loads: loads, Candidates: cands, InvMeanSizes: []float64{0.1, 5}, Budget: 1},
		{Matrix: m, Loads: loads, Candidates: cands, InvMeanSizes: []float64{0.1, 0.1}, Weights: []float64{1}, Budget: 1},
		// B->C does not traverse the A->B link: empty row under this set.
		{Matrix: m, Loads: loads, Candidates: cands[:1], InvMeanSizes: []float64{0.1, 0.1}, Budget: 1},
	}
	for i, in := range cases {
		if _, _, err := Build(in); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBuildMaxRates(t *testing.T) {
	_, m, loads, cands := fixture(t)
	prob, index, err := Build(Input{
		Matrix:       m,
		Loads:        loads,
		Candidates:   cands,
		InvMeanSizes: []float64{0.002, 0.001},
		Budget:       10,
		MaxRates:     map[topology.LinkID]float64{cands[0]: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	if prob.MaxRate[index[cands[0]]] != 0.02 || prob.MaxRate[index[cands[1]]] != 1 {
		t.Fatalf("MaxRate = %v", prob.MaxRate)
	}
}

func TestRoundTripSolveAndMapBack(t *testing.T) {
	_, m, loads, cands := fixture(t)
	prob, _, err := Build(Input{
		Matrix:       m,
		Loads:        loads,
		Candidates:   cands,
		InvMeanSizes: []float64{0.002, 0.002},
		Budget:       15,
	})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(prob, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rates := RatesByLink(sol, cands)
	if got := SampledRate(rates, loads); math.Abs(got-15) > 1e-6 {
		t.Fatalf("SampledRate = %v", got)
	}
	rho := EffectiveRates(m, rates, nil)
	for k := range rho {
		if math.Abs(rho[k]-sol.Rho[k]) > 1e-12 {
			t.Fatalf("rho mismatch pair %d: %v vs %v", k, rho[k], sol.Rho[k])
		}
	}
}

func TestEffectiveRatesExact(t *testing.T) {
	_, m, _, cands := fixture(t)
	rates := map[topology.LinkID]float64{cands[0]: 0.5, cands[1]: 0.5}
	rho := EffectiveRates(m, rates, core.ModelIndependentExact)
	if math.Abs(rho[0]-0.75) > 1e-12 {
		t.Fatalf("exact rho = %v, want 0.75", rho[0])
	}
	if math.Abs(rho[1]-0.5) > 1e-12 {
		t.Fatalf("exact rho (single link) = %v", rho[1])
	}
}

// TestECMPEndToEnd routes a pair over an ECMP diamond, builds the
// fractional problem, solves it, and cross-checks the effective rates.
func TestECMPEndToEnd(t *testing.T) {
	g := topology.New()
	a, b, c2, d := g.AddNode("A"), g.AddNode("B"), g.AddNode("C"), g.AddNode("D")
	ab, _ := g.AddDuplex(a, b, topology.OC48, 1)
	ac, _ := g.AddDuplex(a, c2, topology.OC48, 1)
	bd, _ := g.AddDuplex(b, d, topology.OC48, 1)
	cd, _ := g.AddDuplex(c2, d, topology.OC48, 1)
	tbl := routing.ComputeTable(g)
	m, err := routing.BuildMatrixECMP(tbl, []routing.ODPair{{Name: "A->D", Src: a, Dst: d}})
	if err != nil {
		t.Fatal(err)
	}
	demands := &traffic.Matrix{Demands: []traffic.Demand{
		{Pair: routing.ODPair{Name: "A->D", Src: a, Dst: d}, Rate: 2000},
	}}
	loads, err := traffic.LinkLoadsECMP(g, tbl, demands)
	if err != nil {
		t.Fatal(err)
	}
	cands := []topology.LinkID{ab, ac, bd, cd}
	prob, _, err := Build(Input{
		Matrix:       m,
		Loads:        loads,
		Candidates:   cands,
		InvMeanSizes: []float64{1.0 / (2000 * 300)},
		Budget:       10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prob.Pairs[0].Fracs == nil {
		t.Fatal("fractions not threaded into the problem")
	}
	sol, err := core.Solve(prob, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Converged {
		t.Fatal("ECMP solve did not converge")
	}
	rates := RatesByLink(sol, cands)
	rho := EffectiveRates(m, rates, nil)
	if math.Abs(rho[0]-sol.Rho[0]) > 1e-12 {
		t.Fatalf("rho mismatch: %v vs %v", rho[0], sol.Rho[0])
	}
	// Sampling either branch covers only half the pair's packets: with
	// all rates p equal, rho = 0.5p+0.5p+0.5p+0.5p... on a 2-hop path
	// each packet crosses exactly 2 of the 4 links, so rho = 2*0.5*p.
	total := 0.0
	for lid, p := range rates {
		total += p * loads[lid]
	}
	if math.Abs(total-10) > 1e-6 {
		t.Fatalf("budget spent = %v", total)
	}
}
