package plan

import (
	"errors"
	"testing"

	"netsamp/internal/core"
	"netsamp/internal/packet"
	"netsamp/internal/topology"
)

// TestBuildRejectsStrayMaxRates: a MaxRates entry for a link outside
// the candidate set is a typed input error, not a silent no-op — a cap
// on an unmonitorable link could never be enforced.
func TestBuildRejectsStrayMaxRates(t *testing.T) {
	g, m, loads, cands := fixture(t)
	// A link that exists in the graph but is not a candidate (a reverse
	// direction the pairs never traverse).
	var stray topology.LinkID = -1
	for lid := topology.LinkID(0); int(lid) < g.NumLinks(); lid++ {
		if lid != cands[0] && lid != cands[1] {
			stray = lid
			break
		}
	}
	if stray < 0 {
		t.Fatal("no stray link in fixture")
	}
	in := Input{
		Matrix:       m,
		Loads:        loads,
		Candidates:   cands,
		InvMeanSizes: []float64{0.002, 0.001},
		Budget:       10,
		MaxRates:     map[topology.LinkID]float64{stray: 0.02},
	}
	_, _, err := Build(in)
	if err == nil {
		t.Fatal("stray MaxRates entry accepted")
	}
	if !errors.Is(err, core.ErrInvalidInput) {
		t.Fatalf("error not typed as invalid input: %v", err)
	}
	var ie *core.InputError
	if !errors.As(err, &ie) {
		t.Fatalf("error not an InputError: %v", err)
	}
}

// TestCacheNeverAliasesModels: compiled plans for the same matrix and
// candidates under different rate models must be distinct cache
// entries — sharing one would silently solve under the wrong model.
func TestCacheNeverAliasesModels(t *testing.T) {
	base := fixtureInput(t)
	cache := NewCache()
	var comps []*Compiled
	for _, m := range []core.RateModel{nil, core.ModelLinear, core.ModelIndependentExact, core.ModelCoordinated} {
		in := base
		in.Model = m
		c, err := cache.Get(in)
		if err != nil {
			t.Fatal(err)
		}
		comps = append(comps, c)
	}
	// nil and explicit linear are the SAME identity; all others differ.
	if comps[0] != comps[1] {
		t.Fatal("nil and ModelLinear did not share a compiled plan")
	}
	if comps[0] == comps[2] || comps[0] == comps[3] || comps[2] == comps[3] {
		t.Fatal("distinct models aliased one compiled plan")
	}
}

// TestRetuneAfterModelSwitchMatchesFresh: switching the model forces a
// recompile, and the recompiled plan must solve bitwise-identically to
// a fresh compile of the same input.
func TestRetuneAfterModelSwitchMatchesFresh(t *testing.T) {
	base := fixtureInput(t)
	comp, err := Compile(base)
	if err != nil {
		t.Fatal(err)
	}
	coordIn := base
	coordIn.Model = core.ModelCoordinated
	if err := comp.Retune(coordIn); err == nil {
		t.Fatal("model switch accepted by Retune")
	}
	// The refused retune must not have perturbed the original workspace.
	got, err := comp.Solver().Solve(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	freshBase, _ := Compile(base)
	want, err := freshBase.Solver().Solve(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, got, want, "after refused model switch")

	// Recompiling under the new model equals a fresh compile bitwise.
	recompiled, err := Compile(coordIn)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Compile(coordIn)
	if err != nil {
		t.Fatal(err)
	}
	a, err := recompiled.Solver().Solve(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.Solver().Solve(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, a, b, "recompile vs fresh")
}

// TestCoordinateAssignments: the hash-range assignment must partition
// each measured pair's flow space across exactly its active monitors,
// with the coin min(1, Σ f·p).
func TestCoordinateAssignments(t *testing.T) {
	_, m, _, cands := fixture(t)
	rates := map[topology.LinkID]float64{cands[0]: 0.003, cands[1]: 0.001}
	c := Coordinate(m, rates)
	if len(c.Assignments) != 2 {
		t.Fatalf("%d assignments", len(c.Assignments))
	}
	// Pair 0 (A->C) crosses both links: two ranges partitioning the
	// space with widths proportional to the rates.
	a := c.Assignments[0]
	if len(a.Links) != 2 || len(a.Ranges) != 2 {
		t.Fatalf("pair 0 assignment: %+v", a)
	}
	if a.Coin != 0.004 {
		t.Fatalf("pair 0 coin = %v", a.Coin)
	}
	if a.Ranges[0].Lo != 0 || a.Ranges[1].Hi != ^uint64(0) || a.Ranges[1].Lo != a.Ranges[0].Hi+1 {
		t.Fatalf("pair 0 ranges do not partition: %+v", a.Ranges)
	}
	// Pair 1 (B->C) crosses one link: it owns the full space.
	b := c.Assignments[1]
	if len(b.Links) != 1 || b.Ranges[0] != (packet.HashRange{Lo: 0, Hi: ^uint64(0)}) {
		t.Fatalf("pair 1 assignment: %+v", b)
	}
	if b.Coin != 0.001 {
		t.Fatalf("pair 1 coin = %v", b.Coin)
	}

	// MonitorConfig inverts the view: cands[1] owns a range for both
	// pairs; cands[0] only for pair 0.
	ranges0, coins0 := c.MonitorConfig(cands[0])
	ranges1, coins1 := c.MonitorConfig(cands[1])
	if ranges0[1] != packet.EmptyHashRange || coins0[1] != 0 {
		t.Fatalf("monitor 0 should not own pair 1: %v %v", ranges0[1], coins0[1])
	}
	if ranges1[0].Empty() || coins1[0] != 0.004 || ranges1[1].Empty() || coins1[1] != 0.001 {
		t.Fatalf("monitor 1 config wrong: %v %v", ranges1, coins1)
	}
	// The two monitors' pair-0 ranges are exactly the assignment's.
	if ranges0[0] != a.Ranges[0] || ranges1[0] != a.Ranges[1] {
		t.Fatal("MonitorConfig does not match the assignment")
	}

	// Zero-rate monitors own nothing; a pair with no active monitor is
	// unmeasured (empty assignment, coin 0).
	c2 := Coordinate(m, map[topology.LinkID]float64{cands[0]: 0.01})
	if got := c2.Assignments[1]; len(got.Links) != 0 || got.Coin != 0 {
		t.Fatalf("unmeasured pair got an assignment: %+v", got)
	}
}

// TestCoordinateCoinClamp: a surrogate above 1 deploys as coin 1.
func TestCoordinateCoinClamp(t *testing.T) {
	_, m, _, cands := fixture(t)
	c := Coordinate(m, map[topology.LinkID]float64{cands[0]: 0.7, cands[1]: 0.6})
	if c.Assignments[0].Coin != 1 {
		t.Fatalf("coin = %v, want clamp at 1", c.Assignments[0].Coin)
	}
}

// TestCoordinateDeterministic: same inputs, bitwise-identical ranges —
// exporters configured independently must agree on the partition.
func TestCoordinateDeterministic(t *testing.T) {
	_, m, _, cands := fixture(t)
	rates := map[topology.LinkID]float64{cands[0]: 0.003, cands[1]: 0.001}
	a, b := Coordinate(m, rates), Coordinate(m, rates)
	for k := range a.Assignments {
		ra, rb := a.Assignments[k].Ranges, b.Assignments[k].Ranges
		if len(ra) != len(rb) {
			t.Fatal("range counts differ")
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("pair %d range %d differs: %v vs %v", k, j, ra[j], rb[j])
			}
		}
	}
}
