package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between distinct seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between parent and child streams", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) produced only %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdges(t *testing.T) {
	r := New(6)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(7)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate = %v", rate)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(8)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(2.0)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exponential(2) mean = %v, want 0.5", mean)
	}
}

func TestParetoSupport(t *testing.T) {
	r := New(10)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(3, 1.5)
		if v < 3 {
			t.Fatalf("Pareto(3, 1.5) = %v < xm", v)
		}
	}
}

func TestParetoMean(t *testing.T) {
	// Mean of Pareto(xm, alpha) is alpha*xm/(alpha-1) for alpha > 1.
	r := New(11)
	const n = 500000
	xm, alpha := 1.0, 3.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Pareto(xm, alpha)
	}
	mean := sum / n
	want := alpha * xm / (alpha - 1)
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("Pareto mean = %v, want %v", mean, want)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 5, 25, 200} {
		r := New(12)
		const n = 100000
		var sum int64
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda)/math.Max(lambda, 1) > 0.03 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(13)
	if v := r.Poisson(-1); v != 0 {
		t.Fatalf("Poisson(-1) = %d", v)
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(14)
	if v := r.Binomial(0, 0.5); v != 0 {
		t.Fatalf("Binomial(0, .5) = %d", v)
	}
	if v := r.Binomial(10, 0); v != 0 {
		t.Fatalf("Binomial(10, 0) = %d", v)
	}
	if v := r.Binomial(10, 1); v != 10 {
		t.Fatalf("Binomial(10, 1) = %d", v)
	}
}

func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		n int64
		p float64
	}{
		{100, 0.01},     // geometric-skip regime
		{5000, 0.05},    // geometric-skip regime
		{1000000, 0.01}, // normal-approximation regime
		{50, 0.9},       // complement recursion
	}
	for _, c := range cases {
		r := New(15)
		const trials = 50000
		var sum, sumsq float64
		for i := 0; i < trials; i++ {
			v := float64(r.Binomial(c.n, c.p))
			if v < 0 || v > float64(c.n) {
				t.Fatalf("Binomial(%d,%v) out of range: %v", c.n, c.p, v)
			}
			sum += v
			sumsq += v * v
		}
		mean := sum / trials
		variance := sumsq/trials - mean*mean
		wantMean := float64(c.n) * c.p
		wantVar := wantMean * (1 - c.p)
		if math.Abs(mean-wantMean)/wantMean > 0.03 {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", c.n, c.p, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.1 {
			t.Errorf("Binomial(%d,%v) variance = %v, want %v", c.n, c.p, variance, wantVar)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(16)
	err := quick.Check(func(raw uint8) bool {
		n := int(raw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestZipfRanks(t *testing.T) {
	z := NewZipf(10, 1.0)
	r := New(17)
	counts := make([]int, 11)
	for i := 0; i < 100000; i++ {
		v := z.Draw(r)
		if v < 1 || v > 10 {
			t.Fatalf("Zipf rank out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 1 must be drawn roughly twice as often as rank 2 (1/1 vs 1/2).
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("Zipf rank-1/rank-2 ratio = %v, want ~2", ratio)
	}
	// Monotone non-increasing frequencies (statistically).
	if counts[1] < counts[5] || counts[5] < counts[10] {
		t.Fatalf("Zipf frequencies not decreasing: %v", counts[1:])
	}
}

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	z := NewZipf(4, 0)
	r := New(18)
	counts := make([]int, 5)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw(r)]++
	}
	for rank := 1; rank <= 4; rank++ {
		frac := float64(counts[rank]) / n
		if math.Abs(frac-0.25) > 0.01 {
			t.Fatalf("alpha=0 rank %d freq = %v, want 0.25", rank, frac)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkBinomialSmall(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Binomial(1000, 0.01)
	}
}

func BenchmarkBinomialLarge(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Binomial(10_000_000, 0.01)
	}
}

// TestSplitSeedOrderIndependence: SplitSeed is a pure function of
// (master, index) — the property the engine's worker-count determinism
// rests on — and adjacent indices must not collide or correlate with
// the sequential Split() stream.
func TestSplitSeedOrderIndependence(t *testing.T) {
	const master = 0xfeedface
	want := make([]uint64, 64)
	for i := range want {
		want[i] = SplitSeed(master, uint64(i))
	}
	// Recompute in reverse: identical values.
	for i := len(want) - 1; i >= 0; i-- {
		if got := SplitSeed(master, uint64(i)); got != want[i] {
			t.Fatalf("SplitSeed(%d) not pure: %x vs %x", i, got, want[i])
		}
	}
	seen := make(map[uint64]int, len(want))
	for i, s := range want {
		if j, dup := seen[s]; dup {
			t.Fatalf("seed collision between indices %d and %d", i, j)
		}
		seen[s] = i
	}
	// First draws of adjacent streams should look independent.
	a := New(SplitSeed(master, 0)).Float64()
	b := New(SplitSeed(master, 1)).Float64()
	if a == b {
		t.Fatal("adjacent split streams start identically")
	}
}
