// Package rng provides a deterministic, splittable pseudo-random number
// generator and the sampling distributions used throughout netsamp.
//
// Every experiment in the repository is seeded explicitly so that tables
// and figures regenerate bit-for-bit. The generator is xoshiro256**
// seeded through SplitMix64; Split derives statistically independent
// child streams, which lets concurrent simulations share one master seed
// without sharing state (no locking, unlike math/rand's global source).
package rng

import "math"

// Source is a deterministic pseudo-random number generator. It is not
// safe for concurrent use; derive one Source per goroutine with Split.
// The zero value is not valid: use New.
type Source struct {
	s [4]uint64
}

// splitMix64 advances x and returns the next SplitMix64 output. It is
// used only for seeding, as recommended by the xoshiro authors.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	x := seed
	for i := range src.s {
		src.s[i] = splitMix64(&x)
	}
	// xoshiro256** must not start in the all-zero state; SplitMix64 of any
	// seed never produces four zero words, but be defensive anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new Source whose stream is statistically independent
// from the receiver's continuation. The receiver is advanced.
func (r *Source) Split() *Source {
	seed := r.Uint64()
	return New(seed ^ 0xd2b74407b1ce6e93)
}

// SplitSeed derives the seed of the i-th child stream of a master seed
// as a pure function of (master, i): unlike Split it involves no shared
// state, so a batch of jobs can be seeded in any order — or concurrently
// — and job i always receives the same stream. This is the determinism
// contract of internal/engine: results are bit-identical regardless of
// worker count. Two SplitMix64 rounds decorrelate even adjacent indices.
func SplitSeed(master, i uint64) uint64 {
	x := master
	h := splitMix64(&x)
	x = h ^ (i+1)*0x9e3779b97f4a7c15
	splitMix64(&x)
	return splitMix64(&x)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits scaled by 2^-53, the standard full-precision construction.
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias negligible for n << 2^64
}

// Bernoulli reports true with probability p. Values of p outside [0, 1]
// are clamped.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exponential returns an exponentially distributed variate with the
// given rate (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / rate
		}
	}
}

// Pareto returns a Pareto(xm, alpha) variate: P(X > x) = (xm/x)^alpha for
// x >= xm. Heavy-tailed flow sizes in the traffic generator use this.
func (r *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto requires positive xm and alpha")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// LogNormal returns exp(N(mu, sigma^2)).
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Poisson returns a Poisson(lambda) variate. For small lambda it uses
// Knuth's product method; for large lambda a normal approximation with
// continuity correction, which is accurate to well under the noise floor
// of our statistical experiments.
func (r *Source) Poisson(lambda float64) int64 {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		var k int64
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := math.Floor(lambda + math.Sqrt(lambda)*r.NormFloat64() + 0.5)
	if v < 0 {
		return 0
	}
	return int64(v)
}

// Binomial returns a Binomial(n, p) variate: the number of successes in
// n independent trials of probability p. This is the exact distribution
// of the number of sampled packets of a flow of size n under i.i.d.
// packet sampling at rate p (paper, Section IV-C).
//
// Strategy: for small n*p it counts successes by skipping geometric
// waiting times (exact, O(n*p) expected); for large n*p it uses the
// normal approximation with continuity correction, whose relative error
// is far below the sampling noise the experiments measure.
func (r *Source) Binomial(n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	mean := float64(n) * p
	if mean < 1000 {
		// Geometric-skip method: the gap between successes is Geometric(p).
		q := math.Log(1 - p)
		var count, i int64
		for {
			u := r.Float64()
			if u <= 0 {
				u = math.SmallestNonzeroFloat64
			}
			skip := int64(math.Floor(math.Log(u) / q))
			i += skip + 1
			if i > n {
				return count
			}
			count++
		}
	}
	sd := math.Sqrt(mean * (1 - p))
	v := math.Floor(mean + sd*r.NormFloat64() + 0.5)
	if v < 0 {
		v = 0
	}
	if v > float64(n) {
		v = float64(n)
	}
	return int64(v)
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf draws ranks in [1, n] with probability proportional to
// rank^-alpha. The cumulative table is precomputed, so Draw is a binary
// search; build one Zipf per (n, alpha) and reuse it.
type Zipf struct {
	cdf []float64
}

// NewZipf returns a Zipf sampler over ranks 1..n with exponent alpha.
// It panics if n <= 0 or alpha < 0.
func NewZipf(n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	if alpha < 0 {
		panic("rng: NewZipf with negative alpha")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Draw returns a rank in [1, n].
func (z *Zipf) Draw(r *Source) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}
