package faults

import (
	"bytes"
	"testing"

	"netsamp/internal/topology"
)

// TestConfigRoundTrip: marshal → unmarshal is exact, and a plan rebuilt
// from the decoded config draws the identical fault history — the
// property deterministic recovery rests on.
func TestConfigRoundTrip(t *testing.T) {
	cfg := Config{
		Seed:            12345,
		MonitorCrash:    0.03,
		MeanOutage:      2.5,
		MaxOutage:       6,
		RateClamp:       0.1,
		ClampFactor:     0.25,
		DatagramLoss:    0.02,
		DatagramDup:     0.01,
		DatagramReorder: 0.005,
		SolverOverrun:   0.04,
	}
	blob, err := cfg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	blob2, _ := cfg.MarshalBinary()
	if !bytes.Equal(blob, blob2) {
		t.Fatal("config encoding is not deterministic")
	}
	var back Config
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back != cfg {
		t.Fatalf("round trip: %+v != %+v", back, cfg)
	}
	p1, p2 := MustPlan(cfg), MustPlan(back)
	for interval := 0; interval < 50; interval++ {
		for link := topology.LinkID(0); link < 10; link++ {
			if p1.MonitorDown(interval, link) != p2.MonitorDown(interval, link) {
				t.Fatalf("fault history diverged at t=%d link=%d", interval, link)
			}
			if p1.RateFactor(interval, link) != p2.RateFactor(interval, link) {
				t.Fatalf("rate factor diverged at t=%d link=%d", interval, link)
			}
		}
		if p1.SolverOverrun(interval) != p2.SolverOverrun(interval) {
			t.Fatalf("solver overrun diverged at t=%d", interval)
		}
	}
}

func TestConfigUnmarshalRejectsGarbage(t *testing.T) {
	blob, _ := Config{Seed: 1}.MarshalBinary()
	var c Config
	if err := c.UnmarshalBinary(blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated config accepted")
	}
	if err := c.UnmarshalBinary(append(blob, 0)); err == nil {
		t.Fatal("oversized config accepted")
	}
	bad := append([]byte{}, blob...)
	bad[0] = 0x7f
	if err := c.UnmarshalBinary(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
}
