package faults

import (
	"math"
	"testing"

	"netsamp/internal/topology"
)

func TestLoadDriftDisabledIsIdentity(t *testing.T) {
	p := MustPlan(Config{Seed: 7})
	for _, tt := range []int{0, 1, 5} {
		if f := p.LoadDrift(tt, 3); f != 1 {
			t.Fatalf("drift disabled: factor %v at t=%d, want 1", f, tt)
		}
	}
	p = MustPlan(Config{Seed: 7, DriftVol: 0.2})
	if f := p.LoadDrift(0, 3); f != 1 {
		t.Fatalf("interval 0 factor %v, want 1 (reference)", f)
	}
}

func TestLoadDriftDeterministicAndBounded(t *testing.T) {
	p := MustPlan(Config{Seed: 42, DriftVol: 0.3, DriftStep: 0.1})
	q := MustPlan(Config{Seed: 42, DriftVol: 0.3, DriftStep: 0.1})
	moved := false
	for tt := 1; tt <= 64; tt++ {
		for link := topology.LinkID(0); link < 5; link++ {
			f := p.LoadDrift(tt, link)
			if f != q.LoadDrift(tt, link) {
				t.Fatalf("drift not deterministic at (t=%d, link=%d)", tt, link)
			}
			if f < driftFloor || f > driftCeil {
				t.Fatalf("drift %v outside [%v, %v]", f, driftFloor, driftCeil)
			}
			if math.Abs(f-1) > 1e-9 {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("drift never moved any load")
	}
	// Distinct links drift independently.
	if p.LoadDrift(8, 0) == p.LoadDrift(8, 1) {
		t.Fatal("two links share a drift path")
	}
	// Step changes fire even without volatility.
	s := MustPlan(Config{Seed: 1, DriftStep: 0.5})
	stepped := false
	for tt := 1; tt <= 16 && !stepped; tt++ {
		stepped = math.Abs(s.LoadDrift(tt, 0)-1) > 1e-9
	}
	if !stepped {
		t.Fatal("step-change drift never fired at probability 0.5")
	}
}

func TestLoadDriftValidation(t *testing.T) {
	bad := []Config{
		{DriftVol: -0.1},
		{DriftVol: math.NaN()},
		{DriftVol: math.Inf(1)},
		{DriftStep: 1.5},
		{DriftStep: -0.1},
		{DriftStepMax: 0.5},
		{DriftStepMax: math.Inf(1)},
	}
	for i, cfg := range bad {
		if _, err := NewPlan(cfg); err == nil {
			t.Errorf("case %d: NewPlan accepted %+v", i, cfg)
		}
	}
	p := MustPlan(Config{DriftStep: 0.1})
	if got := p.Config().DriftStepMax; got != 4 {
		t.Fatalf("DriftStepMax default %v, want 4", got)
	}
}

func TestConfigCodecV2RoundTripAndV1Compat(t *testing.T) {
	cfg := Config{
		Seed: 99, MonitorCrash: 0.1, MeanOutage: 2.5, MaxOutage: 6,
		RateClamp: 0.05, ClampFactor: 0.7,
		DatagramLoss: 0.01, DatagramDup: 0.02, DatagramReorder: 0.03,
		SolverOverrun: 0.2, DriftVol: 0.15, DriftStep: 0.04, DriftStepMax: 3,
	}
	blob, err := cfg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back != cfg {
		t.Fatalf("round trip: %+v != %+v", back, cfg)
	}
	// A version-1 payload (pre-drift) decodes with drift disabled.
	v1 := append([]byte{}, blob...)
	v1[0] = 1
	v1 = v1[:len(v1)-24] // strip the three drift floats
	var old Config
	if err := old.UnmarshalBinary(v1); err != nil {
		t.Fatalf("v1 payload rejected: %v", err)
	}
	want := cfg
	want.DriftVol, want.DriftStep, want.DriftStepMax = 0, 0, 0
	if old != want {
		t.Fatalf("v1 decode: %+v, want %+v", old, want)
	}
}
