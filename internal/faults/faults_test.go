package faults

import (
	"bytes"
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"netsamp/internal/topology"
)

func TestNewPlanValidation(t *testing.T) {
	bad := []Config{
		{MonitorCrash: -0.1},
		{MonitorCrash: 1.5},
		{RateClamp: 2},
		{DatagramLoss: math.NaN()},
		{DatagramDup: -1},
		{DatagramReorder: 1.01},
		{SolverOverrun: -0.5},
		{ClampFactor: 1.5},
		{MaxOutage: -1},
	}
	for i, cfg := range bad {
		if _, err := NewPlan(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	p, err := NewPlan(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c := p.Config(); c.MaxOutage != 8 || c.MeanOutage != 1 || c.ClampFactor != 0.5 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

// TestMonitorDownDeterministic: the fault schedule is a pure function of
// (seed, interval, link) — queries in any order, from any plan instance
// with the same seed, agree; a different seed gives a different history.
func TestMonitorDownDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, MonitorCrash: 0.2, MeanOutage: 2}
	a, b := MustPlan(cfg), MustPlan(cfg)
	cfg.Seed = 12
	c := MustPlan(cfg)
	// Query a forward and b backward: evaluation order must not matter.
	forward := make(map[[2]int]bool)
	for tt := 0; tt < 64; tt++ {
		for lid := 0; lid < 16; lid++ {
			forward[[2]int{tt, lid}] = a.MonitorDown(tt, topology.LinkID(lid))
		}
	}
	for tt := 63; tt >= 0; tt-- {
		for lid := 15; lid >= 0; lid-- {
			if b.MonitorDown(tt, topology.LinkID(lid)) != forward[[2]int{tt, lid}] {
				t.Fatalf("same seed disagreed at t=%d link=%d", tt, lid)
			}
		}
	}
	identical := true
	for tt := 0; tt < 64 && identical; tt++ {
		for lid := 0; lid < 16; lid++ {
			if c.MonitorDown(tt, topology.LinkID(lid)) != forward[[2]int{tt, lid}] {
				identical = false
				break
			}
		}
	}
	if identical {
		t.Fatal("different seeds gave identical fault histories")
	}
}

// TestMonitorDownConcurrent: Plan must be queryable from many
// goroutines (run under -race).
func TestMonitorDownConcurrent(t *testing.T) {
	p := MustPlan(Config{Seed: 3, MonitorCrash: 0.3, MeanOutage: 3})
	var wg sync.WaitGroup
	results := make([][]bool, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]bool, 0, 32*8)
			for tt := 0; tt < 32; tt++ {
				for lid := topology.LinkID(0); lid < 8; lid++ {
					out = append(out, p.MonitorDown(tt, lid))
				}
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d diverged at %d", g, i)
			}
		}
	}
}

func TestMonitorDownRateAndOutages(t *testing.T) {
	p := MustPlan(Config{Seed: 7, MonitorCrash: 0.1, MeanOutage: 3, MaxOutage: 6})
	const links, intervals = 40, 400
	down := 0
	for tt := 0; tt < intervals; tt++ {
		for lid := topology.LinkID(0); lid < links; lid++ {
			if p.MonitorDown(tt, lid) {
				down++
			}
		}
	}
	frac := float64(down) / float64(links*intervals)
	// Crash rate 0.1 with ~3-interval outages: expect roughly 20–40%
	// downtime; mostly a sanity bound that faults actually fire.
	if frac < 0.1 || frac > 0.6 {
		t.Fatalf("downtime fraction %v implausible", frac)
	}
	// Outages respect the MaxOutage cap: no link is down for more than
	// MaxOutage+MaxOutage-1 consecutive intervals unless re-crashed —
	// just verify some link recovers at all.
	recovered := false
	for lid := topology.LinkID(0); lid < links && !recovered; lid++ {
		wasDown := false
		for tt := 0; tt < intervals; tt++ {
			d := p.MonitorDown(tt, lid)
			if wasDown && !d {
				recovered = true
				break
			}
			wasDown = d
		}
	}
	if !recovered {
		t.Fatal("no monitor ever recovered")
	}
}

func TestRateFactorAndSolverOverrun(t *testing.T) {
	p := MustPlan(Config{Seed: 5, RateClamp: 0.5, ClampFactor: 0.25, SolverOverrun: 0.5})
	clamped, overruns := 0, 0
	for tt := 0; tt < 1000; tt++ {
		switch f := p.RateFactor(tt, 1); f {
		case 0.25:
			clamped++
		case 1:
		default:
			t.Fatalf("rate factor %v", f)
		}
		if p.SolverOverrun(tt) {
			overruns++
		}
	}
	if clamped < 400 || clamped > 600 {
		t.Fatalf("clamp count %d far from 500", clamped)
	}
	if overruns < 400 || overruns > 600 {
		t.Fatalf("overrun count %d far from 500", overruns)
	}
	none := MustPlan(Config{Seed: 5})
	for tt := 0; tt < 50; tt++ {
		if none.RateFactor(tt, 1) != 1 || none.SolverOverrun(tt) || none.MonitorDown(tt, 1) {
			t.Fatal("zero-probability plan injected a fault")
		}
	}
}

func TestChannelLossDupReorder(t *testing.T) {
	p := MustPlan(Config{Seed: 9, DatagramLoss: 0.2, DatagramDup: 0.1, DatagramReorder: 0.1})
	run := func() ([]string, *Channel) {
		ch := p.Channel(1)
		var got []string
		deliver := func(b []byte) { got = append(got, string(b)) }
		for i := 0; i < 500; i++ {
			ch.Transmit([]byte{byte(i), byte(i >> 8)}, deliver)
		}
		ch.Flush(deliver)
		return got, ch
	}
	got1, ch := run()
	got2, _ := run()
	if len(got1) != len(got2) {
		t.Fatalf("channel not deterministic: %d vs %d deliveries", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("delivery %d differs", i)
		}
	}
	if ch.Lost() == 0 || ch.Duplicated() == 0 || ch.Reordered() == 0 {
		t.Fatalf("faults did not fire: lost=%d dup=%d reorder=%d", ch.Lost(), ch.Duplicated(), ch.Reordered())
	}
	if ch.Delivered() != uint64(len(got1)) {
		t.Fatalf("Delivered=%d, deliveries=%d", ch.Delivered(), len(got1))
	}
	want := 500 - ch.Lost() + ch.Duplicated()
	if ch.Delivered() != want {
		t.Fatalf("conservation violated: delivered %d, want %d", ch.Delivered(), want)
	}
}

func TestChannelReorderSwapsAdjacent(t *testing.T) {
	// Force a reorder on the first datagram only: with reorder
	// probability 1 every datagram wants to be held, but a datagram is
	// only held when no other is pending, so the stream becomes a
	// pairwise swap: (1,0), (3,2), ...
	p := MustPlan(Config{Seed: 1, DatagramReorder: 1})
	ch := p.Channel(0)
	var got []byte
	deliver := func(b []byte) { got = append(got, b[0]) }
	for i := byte(0); i < 6; i++ {
		ch.Transmit([]byte{i}, deliver)
	}
	ch.Flush(deliver)
	want := []byte{1, 0, 3, 2, 5, 4}
	if !bytes.Equal(got, want) {
		t.Fatalf("reorder pattern = %v, want %v", got, want)
	}
}

func TestChannelFlushReleasesHeld(t *testing.T) {
	p := MustPlan(Config{Seed: 2, DatagramReorder: 1})
	ch := p.Channel(0)
	var got []byte
	ch.Transmit([]byte{42}, func(b []byte) { got = append(got, b[0]) })
	if len(got) != 0 {
		t.Fatalf("held datagram delivered early: %v", got)
	}
	ch.Flush(func(b []byte) { got = append(got, b[0]) })
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("flush = %v", got)
	}
}

func TestFlakyConn(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	fc := NewFlakyConn(client)
	defer fc.Close()
	fc.FailNext(2)
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		server.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, _ := server.Read(buf)
		done <- buf[:n]
	}()
	if _, err := fc.Write([]byte("ok")); err != nil {
		t.Fatalf("disarmed conn failed: %v", err)
	}
	if got := <-done; string(got) != "ok" {
		t.Fatalf("delivered %q", got)
	}
	if fc.Injected() != 2 {
		t.Fatalf("Injected = %d", fc.Injected())
	}
}
