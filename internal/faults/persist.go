package faults

import (
	"fmt"

	"netsamp/internal/state"
)

// The fault configuration is part of the daemon's checkpoint: a restored
// run must rebuild the *same* fault plan, because every fault draw is a
// pure function of (Seed, domain, interval, entity) and the deterministic
// recovery guarantee re-executes intervals against it. The encoding is
// versioned and bit-exact (floats as IEEE-754 bits).

// configVersion stamps the Config binary encoding. Version 2 added the
// load-drift fields; version-1 payloads decode with drift disabled.
const configVersion = 2

// MarshalBinary encodes the configuration deterministically.
func (c Config) MarshalBinary() ([]byte, error) {
	var e state.Encoder
	e.U16(configVersion)
	e.U64(c.Seed)
	e.F64(c.MonitorCrash)
	e.F64(c.MeanOutage)
	e.I64(int64(c.MaxOutage))
	e.F64(c.RateClamp)
	e.F64(c.ClampFactor)
	e.F64(c.DatagramLoss)
	e.F64(c.DatagramDup)
	e.F64(c.DatagramReorder)
	e.F64(c.SolverOverrun)
	e.F64(c.DriftVol)
	e.F64(c.DriftStep)
	e.F64(c.DriftStepMax)
	return e.Data(), nil
}

// UnmarshalBinary decodes a configuration produced by MarshalBinary,
// rejecting unknown versions and malformed payloads. Version-1 payloads
// (pre-drift) are accepted with the drift fields zero. The decoded
// values are exactly the encoded ones; re-validate with NewPlan before
// use.
func (c *Config) UnmarshalBinary(b []byte) error {
	d := state.NewDecoder(b)
	v := d.U16()
	if d.Err() == nil && v != 1 && v != configVersion {
		return fmt.Errorf("faults: unknown config version %d", v)
	}
	c.Seed = d.U64()
	c.MonitorCrash = d.F64()
	c.MeanOutage = d.F64()
	c.MaxOutage = int(d.I64())
	c.RateClamp = d.F64()
	c.ClampFactor = d.F64()
	c.DatagramLoss = d.F64()
	c.DatagramDup = d.F64()
	c.DatagramReorder = d.F64()
	c.SolverOverrun = d.F64()
	c.DriftVol = 0
	c.DriftStep = 0
	c.DriftStepMax = 0
	if v >= configVersion {
		c.DriftVol = d.F64()
		c.DriftStep = d.F64()
		c.DriftStepMax = d.F64()
	}
	return d.Finish()
}
