package faults

import (
	"errors"
	"net"
	"sync"

	"netsamp/internal/rng"
)

// Channel injects datagram-level faults — loss, duplication, one-slot
// reordering — into an in-order datagram stream, modeling the UDP path
// between a netflow.Exporter and its collector. Faults are drawn from
// the plan's deterministic per-channel stream, so a given (seed,
// channel id) corrupts a given datagram sequence identically on every
// run.
//
// A Channel is not safe for concurrent use: it models a single ordered
// stream, matching the exporter's per-connection write ordering.
type Channel struct {
	plan *Plan
	r    *rng.Source
	held []byte // datagram delayed one slot by a reorder fault

	lost, duped, reordered uint64
	delivered              uint64
}

// Channel returns the fault injector of the datagram stream identified
// by id (use the exporter ID). Streams with distinct ids are
// independent.
func (p *Plan) Channel(id uint32) *Channel {
	return &Channel{plan: p, r: p.source(domChannel, uint64(id), 0)}
}

// Transmit pushes one datagram through the faulty channel, invoking
// deliver zero or more times (zero: lost; twice: duplicated; a held
// datagram is delivered after its successor, modeling reordering). The
// slice passed to deliver is a private copy.
func (c *Channel) Transmit(b []byte, deliver func([]byte)) {
	cfg := c.plan.cfg
	if c.r.Bernoulli(cfg.DatagramLoss) {
		c.lost++
		return
	}
	d := append([]byte(nil), b...)
	if c.held == nil && c.r.Bernoulli(cfg.DatagramReorder) {
		c.reordered++
		c.held = d
		return
	}
	c.deliver(d, deliver)
	if c.held != nil {
		h := c.held
		c.held = nil
		c.deliver(h, deliver)
	}
}

func (c *Channel) deliver(d []byte, deliver func([]byte)) {
	deliver(d)
	c.delivered++
	if c.r.Bernoulli(c.plan.cfg.DatagramDup) {
		c.duped++
		deliver(append([]byte(nil), d...))
		c.delivered++
	}
}

// Flush delivers a datagram still held back by a reorder fault. Call it
// when the stream ends.
func (c *Channel) Flush(deliver func([]byte)) {
	if c.held != nil {
		h := c.held
		c.held = nil
		c.deliver(h, deliver)
	}
}

// Lost, Duplicated, Reordered and Delivered report the channel's fault
// accounting: datagrams dropped, extra copies injected, datagrams held
// back one slot, and total deliver invocations.
func (c *Channel) Lost() uint64       { return c.lost }
func (c *Channel) Duplicated() uint64 { return c.duped }
func (c *Channel) Reordered() uint64  { return c.reordered }
func (c *Channel) Delivered() uint64  { return c.delivered }

// ChannelConn adapts a Channel onto a net.Conn: every Write passes
// through the fault injector and surviving datagrams are written to the
// underlying connection. It lets a netflow.Exporter run unmodified over
// a faulty path.
type ChannelConn struct {
	net.Conn
	mu sync.Mutex
	ch *Channel
}

// NewChannelConn wraps conn with the channel's datagram faults.
func NewChannelConn(conn net.Conn, ch *Channel) *ChannelConn {
	return &ChannelConn{Conn: conn, ch: ch}
}

// Write pushes the datagram through the fault channel. It reports the
// full length even when the datagram is dropped — loss on a UDP path is
// invisible to the sender, which is exactly the failure mode under
// study.
func (c *ChannelConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	c.ch.Transmit(b, func(d []byte) {
		if err == nil {
			_, err = c.Conn.Write(d)
		}
	})
	return len(b), err
}

// ErrInjected is the error FlakyConn returns for an injected write
// failure. Retry layers should treat it as transient.
var ErrInjected = errors.New("faults: injected write error")

// FlakyConn wraps a net.Conn and fails writes on demand, for testing
// retry paths. It is safe for concurrent use.
type FlakyConn struct {
	net.Conn
	mu       sync.Mutex
	failNext int
	injected uint64
}

// NewFlakyConn wraps conn. The connection behaves normally until
// FailNext arms it.
func NewFlakyConn(conn net.Conn) *FlakyConn {
	return &FlakyConn{Conn: conn}
}

// FailNext makes the next n writes fail with ErrInjected.
func (c *FlakyConn) FailNext(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failNext = n
}

// Injected returns how many writes were failed.
func (c *FlakyConn) Injected() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// Write fails with ErrInjected while armed, then delegates.
func (c *FlakyConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.failNext > 0 {
		c.failNext--
		c.injected++
		c.mu.Unlock()
		return 0, ErrInjected
	}
	c.mu.Unlock()
	return c.Conn.Write(b)
}
