// Package faults provides deterministic, seed-driven fault injection
// for the monitoring pipeline. The paper's premise is operational —
// monitors are reconfigured every measurement interval to follow
// traffic and routing dynamics (Sections I, VI) — and operational
// systems lose monitors, drop export datagrams and blow solver
// deadlines. This package models those failures so the rest of the
// system can be exercised (and measured) under them.
//
// Every fault draw is a pure function of (Config.Seed, fault domain,
// interval, entity) built on rng.SplitSeed, the same split-seeding
// discipline internal/engine uses for its jobs. Two consequences:
//
//   - a fault plan can be queried from any number of goroutines in any
//     order and always returns the same answer (Plan is stateless and
//     safe for concurrent use);
//   - a degradation study runs bit-identically at any worker count,
//     so robustness results are reproducible artifacts, not anecdotes.
//
// The stateful injectors (Channel for the exporter→collector datagram
// path, FlakyConn for transient socket errors) are deterministic given
// their construction order, mirroring the in-order semantics of the
// stream they corrupt.
package faults

import (
	"fmt"
	"math"

	"netsamp/internal/rng"
	"netsamp/internal/topology"
)

// Config parameterizes a fault plan. The zero value injects no faults.
// All probabilities are per-trial in [0, 1].
type Config struct {
	// Seed drives every fault draw; distinct seeds give independent
	// fault histories.
	Seed uint64

	// MonitorCrash is the per-interval probability that a monitor
	// starts an outage. Outage lengths are geometric-like with mean
	// MeanOutage intervals, hard-capped at MaxOutage.
	MonitorCrash float64
	// MeanOutage is the mean outage length in intervals (values < 1
	// select 1: crash-and-recover within one interval).
	MeanOutage float64
	// MaxOutage caps any single outage (default 8 intervals). The cap
	// bounds the lookback window of MonitorDown, keeping queries O(cap).
	MaxOutage int

	// RateClamp is the per-interval probability that a monitor only
	// achieves ClampFactor of its assigned sampling rate (a router
	// rejecting or degrading a configured 1-in-N interval).
	RateClamp float64
	// ClampFactor is the achieved fraction of the assigned rate when a
	// clamp fault fires (default 0.5).
	ClampFactor float64

	// DatagramLoss, DatagramDup and DatagramReorder drive the Channel
	// injector on the exporter→collector UDP path: each transmitted
	// datagram is independently dropped, duplicated, or held back one
	// slot (swapped with its successor).
	DatagramLoss    float64
	DatagramDup     float64
	DatagramReorder float64

	// SolverOverrun is the per-interval probability that the plan solve
	// blows its deadline and must be treated as failed.
	SolverOverrun float64

	// DriftVol makes the true per-link loads wander: each interval every
	// link's load is multiplied by exp(DriftVol·N(0,1)), a geometric
	// random walk with per-interval volatility DriftVol. 0 disables.
	DriftVol float64
	// DriftStep is the per-interval probability that a link's load takes
	// a step change (a regime shift: a routing event or a flash crowd),
	// multiplying it by a factor drawn log-uniformly in
	// [1/DriftStepMax, DriftStepMax].
	DriftStep float64
	// DriftStepMax bounds a single step-change factor (default 4; must
	// be >= 1).
	DriftStepMax float64
}

// Plan is a compiled fault schedule. It is stateless and safe for
// concurrent use; construct with NewPlan.
type Plan struct {
	cfg Config
}

// Fault domains keep the random streams of unrelated fault kinds
// decorrelated even when they share (interval, entity) coordinates.
const (
	domCrash uint64 = iota + 1
	domClamp
	domSolver
	domChannel
	domDrift
)

// Drift factors are clamped to this range: a random walk left unbounded
// would eventually push a load outside any solver-friendly magnitude,
// and no five-minute interval moves a backbone link by more than this.
const (
	driftFloor = 1.0 / 16
	driftCeil  = 16.0
)

// NewPlan validates the configuration and returns a plan.
func NewPlan(cfg Config) (*Plan, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"MonitorCrash", cfg.MonitorCrash},
		{"RateClamp", cfg.RateClamp},
		{"DatagramLoss", cfg.DatagramLoss},
		{"DatagramDup", cfg.DatagramDup},
		{"DatagramReorder", cfg.DatagramReorder},
		{"SolverOverrun", cfg.SolverOverrun},
		{"DriftStep", cfg.DriftStep},
	} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("faults: %s = %v, want a probability in [0, 1]", p.name, p.v)
		}
	}
	if math.IsNaN(cfg.DriftVol) || math.IsInf(cfg.DriftVol, 0) || cfg.DriftVol < 0 {
		return nil, fmt.Errorf("faults: DriftVol = %v, want a finite value >= 0", cfg.DriftVol)
	}
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if cfg.DriftStepMax == 0 {
		cfg.DriftStepMax = 4
	}
	if math.IsNaN(cfg.DriftStepMax) || math.IsInf(cfg.DriftStepMax, 0) || cfg.DriftStepMax < 1 {
		return nil, fmt.Errorf("faults: DriftStepMax = %v, want >= 1", cfg.DriftStepMax)
	}
	if cfg.MaxOutage < 0 {
		return nil, fmt.Errorf("faults: MaxOutage = %d, want >= 0", cfg.MaxOutage)
	}
	if cfg.ClampFactor < 0 || cfg.ClampFactor > 1 {
		return nil, fmt.Errorf("faults: ClampFactor = %v, want in [0, 1]", cfg.ClampFactor)
	}
	if cfg.MaxOutage == 0 {
		cfg.MaxOutage = 8
	}
	if cfg.MeanOutage < 1 {
		cfg.MeanOutage = 1
	}
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if cfg.ClampFactor == 0 {
		cfg.ClampFactor = 0.5
	}
	return &Plan{cfg: cfg}, nil
}

// MustPlan is NewPlan for known-good configurations; it panics on error.
func MustPlan(cfg Config) *Plan {
	p, err := NewPlan(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the validated configuration (defaults filled in).
func (p *Plan) Config() Config { return p.cfg }

// source derives the deterministic stream of one fault draw. Chaining
// SplitSeed per coordinate keeps the function pure: any evaluation
// order — or concurrent evaluation — sees the same stream.
func (p *Plan) source(dom, a, b uint64) *rng.Source {
	s := rng.SplitSeed(p.cfg.Seed, dom)
	s = rng.SplitSeed(s, a)
	return rng.New(rng.SplitSeed(s, b))
}

// outageLen draws the length (in intervals) of an outage starting now.
func (p *Plan) outageLen(r *rng.Source) int {
	d := 1
	if p.cfg.MeanOutage > 1 {
		// Exponential tail with the requested mean beyond the first
		// interval; the +1 keeps every outage at least one interval.
		d = 1 + int(r.Exponential(1/(p.cfg.MeanOutage-1)))
	}
	if d > p.cfg.MaxOutage {
		d = p.cfg.MaxOutage
	}
	return d
}

// MonitorDown reports whether the monitor on link is inside an outage
// at the given interval: some interval t0 in the MaxOutage-long window
// ending at t started an outage that covers t. The answer is a pure
// function of (seed, t, link).
func (p *Plan) MonitorDown(t int, link topology.LinkID) bool {
	if p.cfg.MonitorCrash <= 0 || t < 0 {
		return false
	}
	lo := t - p.cfg.MaxOutage + 1
	if lo < 0 {
		lo = 0
	}
	for t0 := lo; t0 <= t; t0++ {
		r := p.source(domCrash, uint64(t0), uint64(link))
		if !r.Bernoulli(p.cfg.MonitorCrash) {
			continue
		}
		if t < t0+p.outageLen(r) {
			return true
		}
	}
	return false
}

// DownSet returns the candidates that are inside an outage at interval
// t, in input order.
func (p *Plan) DownSet(t int, candidates []topology.LinkID) []topology.LinkID {
	var down []topology.LinkID
	for _, lid := range candidates {
		if p.MonitorDown(t, lid) {
			down = append(down, lid)
		}
	}
	return down
}

// RateFactor returns the fraction of its assigned sampling rate the
// monitor on link actually achieves at interval t: 1 normally,
// ClampFactor when a rate-clamp fault fires.
func (p *Plan) RateFactor(t int, link topology.LinkID) float64 {
	if p.cfg.RateClamp <= 0 || t < 0 {
		return 1
	}
	r := p.source(domClamp, uint64(t), uint64(link))
	if r.Bernoulli(p.cfg.RateClamp) {
		return p.cfg.ClampFactor
	}
	return 1
}

// SolverOverrun reports whether interval t's solve blows its deadline.
func (p *Plan) SolverOverrun(t int) bool {
	if p.cfg.SolverOverrun <= 0 || t < 0 {
		return false
	}
	return p.source(domSolver, uint64(t), 0).Bernoulli(p.cfg.SolverOverrun)
}

// LoadDrift returns the cumulative drift factor of link's true load at
// interval t: the product of the per-interval random-walk and
// step-change multipliers up to and including t, clamped to
// [1/16, 16]. Interval 0 is the reference (factor 1). Like every fault
// draw, the answer is a pure function of (seed, t, link): querying the
// same interval twice — or from concurrent study jobs — always yields
// the same factor.
func (p *Plan) LoadDrift(t int, link topology.LinkID) float64 {
	if (p.cfg.DriftVol <= 0 && p.cfg.DriftStep <= 0) || t <= 0 {
		return 1
	}
	f := 1.0
	logMax := math.Log(p.cfg.DriftStepMax)
	for tau := 1; tau <= t; tau++ {
		r := p.source(domDrift, uint64(tau), uint64(link))
		if p.cfg.DriftVol > 0 {
			f *= math.Exp(p.cfg.DriftVol * r.NormFloat64())
		}
		if p.cfg.DriftStep > 0 && r.Bernoulli(p.cfg.DriftStep) {
			f *= math.Exp((2*r.Float64() - 1) * logMax)
		}
		f = math.Min(driftCeil, math.Max(driftFloor, f))
	}
	return f
}
