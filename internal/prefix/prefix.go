// Package prefix implements an IPv4 longest-prefix-match table (a
// binary radix trie), the lookup structure behind the paper's
// flow-record post-processing: "we associate to each flow record the
// egress PoP, computed from the destination IP address using the
// technique presented in [Feldmann et al.]". The netflow classifier
// uses it to map sampled flow records onto OD pairs.
package prefix

import (
	"fmt"

	"netsamp/internal/packet"
)

// Table is a longest-prefix-match table mapping IPv4 prefixes to int32
// values (PoP or OD indices). The zero value is an empty table ready to
// use. It is not safe for concurrent mutation; lookups are read-only
// and may run concurrently after the table is built.
type Table struct {
	root *node
	n    int
}

type node struct {
	child [2]*node
	// set marks a terminating prefix with its value.
	set   bool
	value int32
}

// Insert adds the prefix addr/length with the given value, replacing
// any previous value for the exact same prefix. Length 0 installs a
// default route. It returns an error for invalid lengths.
func (t *Table) Insert(addr packet.Addr, length int, value int32) error {
	if length < 0 || length > 32 {
		return fmt.Errorf("prefix: length %d out of [0, 32]", length)
	}
	if t.root == nil {
		t.root = &node{}
	}
	cur := t.root
	for i := 0; i < length; i++ {
		bit := (uint32(addr) >> (31 - uint(i))) & 1
		if cur.child[bit] == nil {
			cur.child[bit] = &node{}
		}
		cur = cur.child[bit]
	}
	if !cur.set {
		t.n++
	}
	cur.set = true
	cur.value = value
	return nil
}

// MustInsert is Insert that panics on error (for static tables).
func (t *Table) MustInsert(addr packet.Addr, length int, value int32) {
	if err := t.Insert(addr, length, value); err != nil {
		panic(err)
	}
}

// Lookup returns the value of the longest matching prefix for addr and
// whether any prefix matched.
func (t *Table) Lookup(addr packet.Addr) (int32, bool) {
	cur := t.root
	var best int32
	found := false
	for i := 0; cur != nil; i++ {
		if cur.set {
			best, found = cur.value, true
		}
		if i == 32 {
			break
		}
		bit := (uint32(addr) >> (31 - uint(i))) & 1
		cur = cur.child[bit]
	}
	return best, found
}

// Len returns the number of installed prefixes.
func (t *Table) Len() int { return t.n }

// ParseCIDR parses "a.b.c.d/len" into an address and prefix length.
func ParseCIDR(s string) (packet.Addr, int, error) {
	var a, b, c, d, l int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d/%d", &a, &b, &c, &d, &l); err != nil {
		return 0, 0, fmt.Errorf("prefix: bad CIDR %q", s)
	}
	for _, o := range []int{a, b, c, d} {
		if o < 0 || o > 255 {
			return 0, 0, fmt.Errorf("prefix: bad CIDR %q", s)
		}
	}
	if l < 0 || l > 32 {
		return 0, 0, fmt.Errorf("prefix: bad CIDR %q", s)
	}
	return packet.AddrFrom4(byte(a), byte(b), byte(c), byte(d)), l, nil
}

// InsertCIDR inserts a prefix given in CIDR notation.
func (t *Table) InsertCIDR(cidr string, value int32) error {
	addr, l, err := ParseCIDR(cidr)
	if err != nil {
		return err
	}
	return t.Insert(addr, l, value)
}
