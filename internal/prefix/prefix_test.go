package prefix

import (
	"testing"

	"netsamp/internal/packet"
	"netsamp/internal/rng"
)

func TestLongestMatchWins(t *testing.T) {
	var tbl Table
	tbl.MustInsert(packet.AddrFrom4(10, 0, 0, 0), 8, 1)
	tbl.MustInsert(packet.AddrFrom4(10, 1, 0, 0), 16, 2)
	tbl.MustInsert(packet.AddrFrom4(10, 1, 2, 0), 24, 3)

	cases := []struct {
		addr packet.Addr
		want int32
		ok   bool
	}{
		{packet.AddrFrom4(10, 9, 9, 9), 1, true},
		{packet.AddrFrom4(10, 1, 9, 9), 2, true},
		{packet.AddrFrom4(10, 1, 2, 9), 3, true},
		{packet.AddrFrom4(11, 0, 0, 1), 0, false},
	}
	for _, c := range cases {
		got, ok := tbl.Lookup(c.addr)
		if ok != c.ok || (ok && got != c.want) {
			t.Fatalf("Lookup(%v) = %v,%v want %v,%v", c.addr, got, ok, c.want, c.ok)
		}
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestDefaultRoute(t *testing.T) {
	var tbl Table
	tbl.MustInsert(0, 0, 42)
	if got, ok := tbl.Lookup(packet.AddrFrom4(8, 8, 8, 8)); !ok || got != 42 {
		t.Fatalf("default route lookup = %v,%v", got, ok)
	}
}

func TestHostRoute(t *testing.T) {
	var tbl Table
	host := packet.AddrFrom4(192, 0, 2, 1)
	tbl.MustInsert(host, 32, 7)
	if got, ok := tbl.Lookup(host); !ok || got != 7 {
		t.Fatalf("host route = %v,%v", got, ok)
	}
	if _, ok := tbl.Lookup(host + 1); ok {
		t.Fatal("host route matched neighbour")
	}
}

func TestReplaceExact(t *testing.T) {
	var tbl Table
	tbl.MustInsert(packet.AddrFrom4(10, 0, 0, 0), 8, 1)
	tbl.MustInsert(packet.AddrFrom4(10, 0, 0, 0), 8, 9)
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d after replace", tbl.Len())
	}
	if got, _ := tbl.Lookup(packet.AddrFrom4(10, 5, 5, 5)); got != 9 {
		t.Fatalf("replaced value = %v", got)
	}
}

func TestInsertValidation(t *testing.T) {
	var tbl Table
	if err := tbl.Insert(0, 33, 1); err == nil {
		t.Fatal("length 33 accepted")
	}
	if err := tbl.Insert(0, -1, 1); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestEmptyTable(t *testing.T) {
	var tbl Table
	if _, ok := tbl.Lookup(packet.AddrFrom4(1, 2, 3, 4)); ok {
		t.Fatal("empty table matched")
	}
}

func TestParseCIDR(t *testing.T) {
	addr, l, err := ParseCIDR("10.1.2.0/24")
	if err != nil || addr != packet.AddrFrom4(10, 1, 2, 0) || l != 24 {
		t.Fatalf("ParseCIDR = %v/%d, %v", addr, l, err)
	}
	for _, bad := range []string{"10.1.2.0", "300.0.0.0/8", "10.0.0.0/40", "junk"} {
		if _, _, err := ParseCIDR(bad); err == nil {
			t.Fatalf("ParseCIDR(%q) accepted", bad)
		}
	}
	var tbl Table
	if err := tbl.InsertCIDR("172.16.0.0/12", 5); err != nil {
		t.Fatal(err)
	}
	if got, ok := tbl.Lookup(packet.AddrFrom4(172, 20, 1, 1)); !ok || got != 5 {
		t.Fatalf("CIDR insert lookup = %v,%v", got, ok)
	}
	if err := tbl.InsertCIDR("bogus", 1); err == nil {
		t.Fatal("bogus CIDR accepted")
	}
}

// TestLookupAgainstBruteForce cross-checks the trie against a linear
// scan over random prefix sets and random addresses.
func TestLookupAgainstBruteForce(t *testing.T) {
	r := rng.New(91)
	type pfx struct {
		addr   packet.Addr
		length int
		value  int32
	}
	for trial := 0; trial < 20; trial++ {
		var tbl Table
		var prefixes []pfx
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			length := r.Intn(33)
			raw := packet.Addr(r.Uint64())
			// Mask off host bits so the prefix is canonical.
			var mask uint32
			if length > 0 {
				mask = ^uint32(0) << (32 - uint(length))
			}
			addr := packet.Addr(uint32(raw) & mask)
			p := pfx{addr, length, int32(i)}
			tbl.MustInsert(p.addr, p.length, p.value)
			// Later exact duplicates replace earlier ones, mirroring the
			// trie semantics in the reference list.
			replaced := false
			for j := range prefixes {
				if prefixes[j].addr == p.addr && prefixes[j].length == p.length {
					prefixes[j].value = p.value
					replaced = true
					break
				}
			}
			if !replaced {
				prefixes = append(prefixes, p)
			}
		}
		for q := 0; q < 200; q++ {
			addr := packet.Addr(r.Uint64())
			// Brute force: longest matching prefix wins.
			bestLen, bestVal, found := -1, int32(0), false
			for _, p := range prefixes {
				var mask uint32
				if p.length > 0 {
					mask = ^uint32(0) << (32 - uint(p.length))
				}
				if uint32(addr)&mask == uint32(p.addr) && p.length > bestLen {
					bestLen, bestVal, found = p.length, p.value, true
				}
			}
			got, ok := tbl.Lookup(addr)
			if ok != found || (ok && got != bestVal) {
				t.Fatalf("trial %d: Lookup(%v) = %v,%v want %v,%v", trial, addr, got, ok, bestVal, found)
			}
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	var tbl Table
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		length := 8 + r.Intn(25)
		mask := ^uint32(0) << (32 - uint(length))
		tbl.MustInsert(packet.Addr(uint32(r.Uint64())&mask), length, int32(i))
	}
	addrs := make([]packet.Addr, 1024)
	for i := range addrs {
		addrs[i] = packet.Addr(r.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(addrs[i&1023])
	}
}
