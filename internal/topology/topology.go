// Package topology models the backbone network the monitor-placement
// problem is defined on: a directed graph of PoPs (points of presence)
// connected by unidirectional links with capacities and IGP weights.
//
// Links are unidirectional, matching the paper's formulation ("the 72
// unidirectional links of GEANT"); AddDuplex installs the two directions
// of a physical circuit in one call. Access links — circuits toward
// customer networks, whose CPE routers an ISP cannot always monitor
// (paper Section V-C) — are flagged so the optimizer can exclude them
// from the candidate monitor set.
package topology

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"strings"
)

// NodeID identifies a node (PoP, customer network, peer AS) in a Graph.
type NodeID int

// LinkID identifies a unidirectional link in a Graph.
type LinkID int

// Common SONET/SDH line rates, in bits per second. The GEANT links in the
// paper range from OC-3 (155 Mb/s) to OC-48 (2.5 Gb/s).
const (
	OC3   = 155_520_000
	OC12  = 622_080_000
	OC48  = 2_488_320_000
	OC192 = 9_953_280_000
)

// Node is a vertex of the backbone graph.
type Node struct {
	ID   NodeID
	Name string
}

// Link is a unidirectional edge of the backbone graph.
type Link struct {
	ID       LinkID
	Src, Dst NodeID
	// CapacityBps is the line rate in bits per second.
	CapacityBps float64
	// Weight is the IGP (ISIS-like) metric used by shortest-path routing.
	Weight int
	// Access marks customer access circuits that cannot be monitored
	// by the ISP (paper Section V-C).
	Access bool
	// Down marks a failed link; routing ignores down links.
	Down bool
}

// Name returns a human-readable "SRC->DST" label for the link within g.
func (g *Graph) LinkName(id LinkID) string {
	l := g.Link(id)
	return g.Node(l.Src).Name + "->" + g.Node(l.Dst).Name
}

// Graph is a directed multigraph. The zero value is an empty graph ready
// to use.
type Graph struct {
	nodes  []Node
	links  []Link
	out    [][]LinkID // outgoing link IDs per node
	in     [][]LinkID // incoming link IDs per node
	byName map[string]NodeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byName: make(map[string]NodeID)}
}

// AddNode adds a node with the given unique name and returns its ID.
// It panics if the name is empty or already present.
func (g *Graph) AddNode(name string) NodeID {
	if name == "" {
		panic("topology: empty node name")
	}
	if g.byName == nil {
		g.byName = make(map[string]NodeID)
	}
	if _, ok := g.byName[name]; ok {
		panic(fmt.Sprintf("topology: duplicate node %q", name))
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.byName[name] = id
	return id
}

// AddLink adds a unidirectional link and returns its ID. It panics on an
// invalid endpoint, a self-loop, or a non-positive capacity or weight.
func (g *Graph) AddLink(src, dst NodeID, capacityBps float64, weight int) LinkID {
	g.checkNode(src)
	g.checkNode(dst)
	if src == dst {
		panic("topology: self-loop")
	}
	if capacityBps <= 0 {
		panic("topology: non-positive capacity")
	}
	if weight <= 0 {
		panic("topology: non-positive weight")
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, Src: src, Dst: dst, CapacityBps: capacityBps, Weight: weight})
	g.out[src] = append(g.out[src], id)
	g.in[dst] = append(g.in[dst], id)
	return id
}

// AddDuplex adds both directions of a physical circuit with the same
// capacity and weight, returning the forward (a->b) and reverse (b->a)
// link IDs.
func (g *Graph) AddDuplex(a, b NodeID, capacityBps float64, weight int) (fwd, rev LinkID) {
	fwd = g.AddLink(a, b, capacityBps, weight)
	rev = g.AddLink(b, a, capacityBps, weight)
	return fwd, rev
}

// MarkAccess flags the link as a customer access circuit.
func (g *Graph) MarkAccess(id LinkID) {
	g.checkLink(id)
	g.links[id].Access = true
}

// SetDown marks the link up or down. Down links are skipped by routing.
func (g *Graph) SetDown(id LinkID, down bool) {
	g.checkLink(id)
	g.links[id].Down = down
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the number of unidirectional links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node {
	g.checkNode(id)
	return g.nodes[id]
}

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link {
	g.checkLink(id)
	return g.links[id]
}

// NodeByName returns the node ID for name, and whether it exists.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// MustNode returns the node ID for name and panics if it does not exist.
func (g *Graph) MustNode(name string) NodeID {
	id, ok := g.byName[name]
	if !ok {
		panic(fmt.Sprintf("topology: unknown node %q", name))
	}
	return id
}

// Out returns the IDs of the links leaving n. The returned slice must not
// be modified.
func (g *Graph) Out(n NodeID) []LinkID {
	g.checkNode(n)
	return g.out[n]
}

// In returns the IDs of the links entering n. The returned slice must not
// be modified.
func (g *Graph) In(n NodeID) []LinkID {
	g.checkNode(n)
	return g.in[n]
}

// Links returns a copy of all links, in ID order.
func (g *Graph) Links() []Link {
	out := make([]Link, len(g.links))
	copy(out, g.links)
	return out
}

// Nodes returns a copy of all nodes, in ID order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// FindLink returns the ID of a link from src to dst, and whether one
// exists. With parallel links it returns the lowest ID.
func (g *Graph) FindLink(src, dst NodeID) (LinkID, bool) {
	g.checkNode(src)
	g.checkNode(dst)
	for _, id := range g.out[src] {
		if g.links[id].Dst == dst {
			return id, true
		}
	}
	return 0, false
}

func (g *Graph) checkNode(id NodeID) {
	if id < 0 || int(id) >= len(g.nodes) {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", id, len(g.nodes)))
	}
}

func (g *Graph) checkLink(id LinkID) {
	if id < 0 || int(id) >= len(g.links) {
		panic(fmt.Sprintf("topology: link %d out of range [0,%d)", id, len(g.links)))
	}
}

// Validate checks structural invariants: at least one node, and weak
// connectivity of the non-access backbone (every node reachable from
// node 0 ignoring direction). It returns a descriptive error on the
// first violation.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return fmt.Errorf("topology: graph has no nodes")
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{0}
	seen[0] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.out[n] {
			if d := g.links[id].Dst; !seen[d] {
				seen[d] = true
				stack = append(stack, d)
			}
		}
		for _, id := range g.in[n] {
			if s := g.links[id].Src; !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("topology: node %q unreachable from %q", g.nodes[i].Name, g.nodes[0].Name)
		}
	}
	return nil
}

// DOT renders the graph in Graphviz DOT format. Duplex circuits are
// rendered once as an undirected-looking edge when both directions exist
// with equal attributes; access links are dashed.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph netsamp {\n  rankdir=LR;\n")
	names := make([]string, len(g.nodes))
	for i, n := range g.nodes {
		names[i] = n.Name
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	for _, l := range g.links {
		style := ""
		if l.Access {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q%s];\n",
			g.nodes[l.Src].Name, g.nodes[l.Dst].Name,
			fmt.Sprintf("w=%d", l.Weight), style)
	}
	b.WriteString("}\n")
	return b.String()
}

// SortedKeys returns the keys of m in ascending order. Replay
// determinism forbids letting Go's randomized map iteration order reach
// any persisted or decision-bearing output; every such loop in the
// replay-critical packages drains its map through this helper instead.
// The key type is generic over cmp.Ordered, so LinkID maps and the
// NetFlow tier's uint32 exporter maps share one blessed idiom.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k) //netsamp:nondeterministic-ok keys are sorted before return
	}
	slices.Sort(keys)
	return keys
}
