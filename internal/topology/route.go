package topology

import (
	"fmt"
	"math"
	"sort"
)

// CSR routing-matrix emission for generated instances. The generator
// cannot afford internal/routing's all-pairs table (next/dist are O(V²),
// and Matrix materializes one []LinkID per pair): at 10⁶ pairs the rows
// alone would dwarf the solver. Instead the sampled pairs arrive sorted
// by source, one Dijkstra runs per distinct source PoP, and each pair's
// row is appended straight into the shared CSR arrays.
//
// The Dijkstra replicates internal/routing's deterministic tie-break
// exactly (prefer the predecessor node with the smaller NodeID, then the
// smaller LinkID), so single-path rows have the same cost as
// routing.PathBetween and ECMP rows match routing.Fractions' equal-cost
// DAG; the tests in gen_test.go cross-check both on small instances.

const genUnreachable = math.MaxInt32

// genRouter carries per-source Dijkstra state and per-pair DAG scratch,
// reused across all sources of one routeCSR call.
type genRouter struct {
	g    *Graph
	dist []int
	prev []LinkID
	done []bool
	heap []genHeapItem

	// Per-pair equal-cost-DAG scratch; stamp arrays avoid O(V+E) clears.
	epoch     int
	nodeStamp []int
	mass      []float64
	dagNodes  []NodeID
	linkStamp []int
	linkFrac  []float64
	touched   []LinkID
}

type genHeapItem struct {
	node NodeID
	dist int
}

func newGenRouter(g *Graph) *genRouter {
	nv, ne := g.NumNodes(), g.NumLinks()
	return &genRouter{
		g:         g,
		dist:      make([]int, nv),
		prev:      make([]LinkID, nv),
		done:      make([]bool, nv),
		nodeStamp: make([]int, nv),
		mass:      make([]float64, nv),
		linkStamp: make([]int, ne),
		linkFrac:  make([]float64, ne),
	}
}

// dijkstra computes shortest paths from src with internal/routing's
// tie-break, filling r.dist and r.prev.
func (r *genRouter) dijkstra(src NodeID) {
	g := r.g
	for i := range r.dist {
		r.dist[i] = genUnreachable
		r.prev[i] = -1
		r.done[i] = false
	}
	r.dist[src] = 0
	r.heap = append(r.heap[:0], genHeapItem{node: src})
	for len(r.heap) > 0 {
		it := r.heapPop()
		u := it.node
		if r.done[u] || it.dist > r.dist[u] {
			continue
		}
		r.done[u] = true
		for _, lid := range g.Out(u) {
			l := g.Link(lid)
			if l.Down {
				continue
			}
			nd := r.dist[u] + l.Weight
			v := l.Dst
			if nd < r.dist[v] {
				r.dist[v] = nd
				r.prev[v] = lid
				r.heapPush(genHeapItem{node: v, dist: nd})
			} else if nd == r.dist[v] && r.prev[v] >= 0 {
				// Same tie-break as routing.sssp: prefer the smaller
				// predecessor node, then the smaller link.
				cur := g.Link(r.prev[v])
				if u < cur.Src || (u == cur.Src && lid < r.prev[v]) {
					r.prev[v] = lid
				}
			}
		}
	}
}

func (r *genRouter) heapPush(it genHeapItem) {
	r.heap = append(r.heap, it)
	i := len(r.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if r.heap[parent].dist <= r.heap[i].dist {
			break
		}
		r.heap[parent], r.heap[i] = r.heap[i], r.heap[parent]
		i = parent
	}
}

func (r *genRouter) heapPop() genHeapItem {
	top := r.heap[0]
	last := len(r.heap) - 1
	r.heap[0] = r.heap[last]
	r.heap = r.heap[:last]
	i := 0
	for {
		child := 2*i + 1
		if child >= last {
			break
		}
		if child+1 < last && r.heap[child+1].dist < r.heap[child].dist {
			child++
		}
		if r.heap[i].dist <= r.heap[child].dist {
			break
		}
		r.heap[i], r.heap[child] = r.heap[child], r.heap[i]
		i = child
	}
	return top
}

// appendPath walks the predecessor chain dst→src and appends the path's
// links, in src→dst order, to links. This reproduces routing.sssp's
// source-rooted shortest-path tree for the pair.
func (r *genRouter) appendPath(src, dst NodeID, links []int32) ([]int32, error) {
	if r.dist[dst] == genUnreachable {
		return nil, fmt.Errorf("topology: generated node %d unreachable from %d", dst, src)
	}
	first := len(links)
	for cur := dst; cur != src; {
		lid := r.prev[cur]
		links = append(links, int32(lid))
		cur = r.g.Link(lid).Src
	}
	// The walk collected the path back-to-front; reverse in place.
	for i, j := first, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	return links, nil
}

// appendECMP discovers the pair's equal-cost DAG (every link on some
// shortest src→dst path) and appends its links with their traffic
// fractions: at each DAG node the incoming mass splits equally over the
// tight outgoing links, exactly routing/ecmp's flow model. Links are
// appended in ascending LinkID order.
func (r *genRouter) appendECMP(src, dst NodeID, links []int32, fracs []float64) ([]int32, []float64, error) {
	if r.dist[dst] == genUnreachable {
		return nil, nil, fmt.Errorf("topology: generated node %d unreachable from %d", dst, src)
	}
	g := r.g
	r.epoch++
	ep := r.epoch

	// Backward reachability from dst over tight edges: a node u with
	// finite dist and a tight chain to dst lies on a shortest src→dst
	// path (dist[u] is minimal and the chain costs dist[dst] − dist[u]).
	r.dagNodes = append(r.dagNodes[:0], dst)
	r.nodeStamp[dst] = ep
	r.mass[dst] = 0
	for head := 0; head < len(r.dagNodes); head++ {
		v := r.dagNodes[head]
		for _, lid := range g.In(v) {
			l := g.Link(lid)
			if l.Down {
				continue
			}
			u := l.Src
			if r.dist[u] == genUnreachable || r.dist[u]+l.Weight != r.dist[v] {
				continue
			}
			if r.nodeStamp[u] != ep {
				r.nodeStamp[u] = ep
				r.mass[u] = 0
				r.dagNodes = append(r.dagNodes, u)
			}
		}
	}
	if r.nodeStamp[src] != ep {
		return nil, nil, fmt.Errorf("topology: no tight path from %d to %d", src, dst)
	}

	// Tight edges only go strictly downhill in dist (positive weights),
	// so ascending (dist, NodeID) is a topological order of the DAG.
	sort.Slice(r.dagNodes, func(i, j int) bool {
		a, b := r.dagNodes[i], r.dagNodes[j]
		if r.dist[a] != r.dist[b] {
			return r.dist[a] < r.dist[b]
		}
		return a < b
	})

	r.mass[src] = 1
	r.touched = r.touched[:0]
	for _, u := range r.dagNodes {
		if u == dst || r.mass[u] == 0 {
			continue
		}
		deg := 0
		for _, lid := range g.Out(u) {
			l := g.Link(lid)
			if !l.Down && r.nodeStamp[l.Dst] == ep && r.dist[u]+l.Weight == r.dist[l.Dst] {
				deg++
			}
		}
		share := r.mass[u] / float64(deg)
		for _, lid := range g.Out(u) {
			l := g.Link(lid)
			if l.Down || r.nodeStamp[l.Dst] != ep || r.dist[u]+l.Weight != r.dist[l.Dst] {
				continue
			}
			if r.linkStamp[lid] != ep {
				r.linkStamp[lid] = ep
				r.linkFrac[lid] = 0
				r.touched = append(r.touched, lid)
			}
			r.linkFrac[lid] += share
			r.mass[l.Dst] += share
		}
	}

	sort.Slice(r.touched, func(i, j int) bool { return r.touched[i] < r.touched[j] })
	for _, lid := range r.touched {
		f := r.linkFrac[lid]
		// Summed splits can exceed 1 by an ulp; the solver requires ≤ 1.
		if f > 1 {
			f = 1
		}
		links = append(links, int32(lid))
		fracs = append(fracs, f)
	}
	return links, fracs, nil
}

// routeCSR fills inst.Start/Links/Fracs for the sampled pairs. PairSrc
// is ascending (samplePairIndices sorts the global indices), so pairs
// group by source and each distinct source costs one Dijkstra.
func (inst *ScaleInstance) routeCSR() error {
	nPairs := len(inst.PairSrc)
	r := newGenRouter(inst.Graph)
	inst.Start = make([]int32, nPairs+1)
	// Hierarchical shortest paths run edge→agg→core→agg→edge: ~6 hops
	// typical, a little more for ECMP DAGs.
	est := 8 * nPairs
	inst.Links = make([]int32, 0, est)
	if inst.Config.ECMP {
		inst.Fracs = make([]float64, 0, est)
	}
	curSrc := NodeID(-1)
	for k := 0; k < nPairs; k++ {
		src, dst := inst.PairSrc[k], inst.PairDst[k]
		if src != curSrc {
			r.dijkstra(src)
			curSrc = src
		}
		var err error
		if inst.Config.ECMP {
			inst.Links, inst.Fracs, err = r.appendECMP(src, dst, inst.Links, inst.Fracs)
		} else {
			inst.Links, err = r.appendPath(src, dst, inst.Links)
		}
		if err != nil {
			return err
		}
		inst.Start[k+1] = int32(len(inst.Links))
	}
	return nil
}
