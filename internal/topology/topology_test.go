package topology

import (
	"strings"
	"testing"
)

func triangle(t *testing.T) (*Graph, NodeID, NodeID, NodeID) {
	t.Helper()
	g := New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	c := g.AddNode("C")
	g.AddDuplex(a, b, OC48, 10)
	g.AddDuplex(b, c, OC12, 10)
	g.AddDuplex(a, c, OC3, 30)
	return g, a, b, c
}

func TestAddNodeAndLookup(t *testing.T) {
	g := New()
	a := g.AddNode("UK")
	if got := g.Node(a).Name; got != "UK" {
		t.Fatalf("Node name = %q", got)
	}
	id, ok := g.NodeByName("UK")
	if !ok || id != a {
		t.Fatalf("NodeByName = %v, %v", id, ok)
	}
	if _, ok := g.NodeByName("FR"); ok {
		t.Fatal("NodeByName found nonexistent node")
	}
	if g.MustNode("UK") != a {
		t.Fatal("MustNode mismatch")
	}
}

func TestMustNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNode on unknown name did not panic")
		}
	}()
	New().MustNode("nope")
}

func TestDuplicateNodePanics(t *testing.T) {
	g := New()
	g.AddNode("A")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode did not panic")
		}
	}()
	g.AddNode("A")
}

func TestAddLinkValidation(t *testing.T) {
	g := New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	cases := []func(){
		func() { g.AddLink(a, a, OC3, 1) },  // self loop
		func() { g.AddLink(a, b, 0, 1) },    // zero capacity
		func() { g.AddLink(a, b, OC3, 0) },  // zero weight
		func() { g.AddLink(a, b, OC3, -2) }, // negative weight
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestDuplexAdjacency(t *testing.T) {
	g, a, b, c := triangle(t)
	if g.NumNodes() != 3 || g.NumLinks() != 6 {
		t.Fatalf("size = %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
	if len(g.Out(a)) != 2 || len(g.In(a)) != 2 {
		t.Fatalf("A degree out=%d in=%d", len(g.Out(a)), len(g.In(a)))
	}
	id, ok := g.FindLink(b, c)
	if !ok {
		t.Fatal("FindLink(B, C) missing")
	}
	l := g.Link(id)
	if l.Src != b || l.Dst != c || l.CapacityBps != OC12 {
		t.Fatalf("link = %+v", l)
	}
	if _, ok := g.FindLink(c, a); !ok {
		t.Fatal("reverse direction missing")
	}
}

func TestLinkName(t *testing.T) {
	g, a, b, _ := triangle(t)
	id, _ := g.FindLink(a, b)
	if got := g.LinkName(id); got != "A->B" {
		t.Fatalf("LinkName = %q", got)
	}
}

func TestMarkAccessAndDown(t *testing.T) {
	g, a, b, _ := triangle(t)
	id, _ := g.FindLink(a, b)
	g.MarkAccess(id)
	if !g.Link(id).Access {
		t.Fatal("MarkAccess did not stick")
	}
	g.SetDown(id, true)
	if !g.Link(id).Down {
		t.Fatal("SetDown did not stick")
	}
	g.SetDown(id, false)
	if g.Link(id).Down {
		t.Fatal("SetDown(false) did not stick")
	}
}

func TestValidateConnected(t *testing.T) {
	g, _, _, _ := triangle(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate = %v", err)
	}
}

func TestValidateDisconnected(t *testing.T) {
	g := New()
	g.AddNode("A")
	g.AddNode("Island")
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted a disconnected graph")
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := New().Validate(); err == nil {
		t.Fatal("Validate accepted empty graph")
	}
}

func TestLinksNodesAreCopies(t *testing.T) {
	g, _, _, _ := triangle(t)
	links := g.Links()
	links[0].Weight = 999
	if g.Link(0).Weight == 999 {
		t.Fatal("Links() exposed internal storage")
	}
	nodes := g.Nodes()
	nodes[0].Name = "mutated"
	if g.Node(0).Name == "mutated" {
		t.Fatal("Nodes() exposed internal storage")
	}
}

func TestDOT(t *testing.T) {
	g, a, b, _ := triangle(t)
	id, _ := g.FindLink(a, b)
	g.MarkAccess(id)
	dot := g.DOT()
	for _, want := range []string{"digraph", `"A" -> "B"`, "style=dashed", `"C"`} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	g, _, _, _ := triangle(t)
	cases := []func(){
		func() { g.Node(99) },
		func() { g.Link(99) },
		func() { g.Out(NodeID(-1)) },
		func() { g.Link(LinkID(-1)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
