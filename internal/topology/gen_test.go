package topology_test

import (
	"math"
	"reflect"
	"testing"

	"netsamp/internal/routing"
	"netsamp/internal/topology"
)

// The generator's contract: exact link-count targets, a valid three-tier
// structure, bitwise seed-determinism, and routing rows that agree with
// internal/routing on instances small enough to cross-check.

func mustGenerate(t *testing.T, cfg topology.GenConfig) *topology.ScaleInstance {
	t.Helper()
	inst, err := topology.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate(%+v): %v", cfg, err)
	}
	return inst
}

func TestScaleGenConfigHitsLinkTargets(t *testing.T) {
	for _, links := range []int{300, 1000, 2500, 4321, 5000, 10000} {
		cfg, err := topology.ScaleGenConfig(topology.ScaleConfig{Seed: 1, Links: links, Pairs: 40})
		if err != nil {
			t.Fatalf("ScaleGenConfig(%d): %v", links, err)
		}
		inst := mustGenerate(t, cfg)
		if got := inst.Graph.NumLinks(); got != links {
			t.Errorf("links = %d: generated %d links", links, got)
		}
		if err := inst.Graph.Validate(); err != nil {
			t.Errorf("links = %d: %v", links, err)
		}
	}
}

func TestScaleGenConfigRejectsTinyTargets(t *testing.T) {
	if _, err := topology.ScaleGenConfig(topology.ScaleConfig{Seed: 1, Links: 100}); err == nil {
		t.Fatal("ScaleGenConfig(100 links) succeeded, want error")
	}
}

func TestGenerateRejectsBadConfigs(t *testing.T) {
	base := topology.GenConfig{Seed: 1, CoreNodes: 6, AggNodes: 4, EdgeNodes: 6, Pairs: 10}
	cases := []func(*topology.GenConfig){
		func(c *topology.GenConfig) { c.CoreNodes = 5 },  // odd
		func(c *topology.GenConfig) { c.CoreNodes = 2 },  // too small
		func(c *topology.GenConfig) { c.EdgeNodes = 1 },  // too small
		func(c *topology.GenConfig) { c.Pairs = 0 },      // no pairs
		func(c *topology.GenConfig) { c.Pairs = 31 },     // > e·(e−1)
		func(c *topology.GenConfig) { c.ExtraLinks = 4 }, // out of range
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if _, err := topology.Generate(cfg); err == nil {
			t.Errorf("case %d: Generate(%+v) succeeded, want error", i, cfg)
		}
	}
}

func TestGenerateSeedDeterminism(t *testing.T) {
	cfg, err := topology.ScaleGenConfig(topology.ScaleConfig{Seed: 42, Links: 1000, Pairs: 500, ECMP: true})
	if err != nil {
		t.Fatal(err)
	}
	a := mustGenerate(t, cfg)
	b := mustGenerate(t, cfg)
	// Bitwise identity of every emitted array: the instance is a pure
	// function of the config.
	if !reflect.DeepEqual(a.Loads, b.Loads) {
		t.Error("Loads differ across identical configs")
	}
	if !reflect.DeepEqual(a.Start, b.Start) || !reflect.DeepEqual(a.Links, b.Links) {
		t.Error("routing CSR differs across identical configs")
	}
	if !reflect.DeepEqual(a.Fracs, b.Fracs) {
		t.Error("ECMP fractions differ across identical configs")
	}
	if !reflect.DeepEqual(a.InvSizes, b.InvSizes) {
		t.Error("InvSizes differ across identical configs")
	}
	if !reflect.DeepEqual(a.PairSrc, b.PairSrc) || !reflect.DeepEqual(a.PairDst, b.PairDst) {
		t.Error("pair sample differs across identical configs")
	}

	cfg2 := cfg
	cfg2.Seed = 43
	c := mustGenerate(t, cfg2)
	if reflect.DeepEqual(a.Loads, c.Loads) && reflect.DeepEqual(a.PairSrc, c.PairSrc) {
		t.Error("different seeds produced an identical instance")
	}
}

func TestGenerateTierStructure(t *testing.T) {
	cfg, err := topology.ScaleGenConfig(topology.ScaleConfig{Seed: 7, Links: 1000, Pairs: 100})
	if err != nil {
		t.Fatal(err)
	}
	inst := mustGenerate(t, cfg)
	g := inst.Graph

	if got := g.NumNodes(); got != cfg.CoreNodes+cfg.AggNodes+cfg.EdgeNodes {
		t.Fatalf("nodes = %d, want %d", got, cfg.CoreNodes+cfg.AggNodes+cfg.EdgeNodes)
	}
	counts := map[topology.NodeTier]int{}
	for _, tier := range inst.Tier {
		counts[tier]++
	}
	if counts[topology.TierCore] != cfg.CoreNodes ||
		counts[topology.TierAgg] != cfg.AggNodes ||
		counts[topology.TierEdge] != cfg.EdgeNodes {
		t.Fatalf("tier counts = %v, want core %d agg %d edge %d",
			counts, cfg.CoreNodes, cfg.AggNodes, cfg.EdgeNodes)
	}
	if len(inst.EdgeNodes) != cfg.EdgeNodes {
		t.Fatalf("EdgeNodes = %d, want %d", len(inst.EdgeNodes), cfg.EdgeNodes)
	}

	// Edge PoPs are dual-homed onto the aggregation tier and nothing else;
	// agg PoPs are dual-homed onto the core (plus edge downlinks).
	for _, id := range inst.EdgeNodes {
		out, in := g.Out(id), g.In(id)
		if len(out) != 2 || len(in) != 2 {
			t.Fatalf("edge node %d has degree out=%d in=%d, want 2/2", id, len(out), len(in))
		}
		for _, lid := range out {
			if dst := g.Link(lid).Dst; inst.Tier[dst] != topology.TierAgg {
				t.Fatalf("edge node %d uplinks to non-agg node %d", id, dst)
			}
		}
	}
	for id, tier := range inst.Tier {
		if tier != topology.TierAgg {
			continue
		}
		coreUp := 0
		for _, lid := range g.Out(topology.NodeID(id)) {
			switch inst.Tier[g.Link(lid).Dst] {
			case topology.TierCore:
				coreUp++
			case topology.TierAgg:
				t.Fatalf("agg node %d has an agg-agg link", id)
			}
		}
		if coreUp != 2 {
			t.Fatalf("agg node %d has %d core uplinks, want 2", id, coreUp)
		}
	}

	// Strong connectivity: every node forward-reachable from node 0
	// (Validate only checks the weak version).
	seen := make([]bool, g.NumNodes())
	stack := []topology.NodeID{0}
	seen[0] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, lid := range g.Out(n) {
			if d := g.Link(lid).Dst; !seen[d] {
				seen[d] = true
				stack = append(stack, d)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("node %d not forward-reachable from node 0", i)
		}
	}
}

func TestGenerateDegreeDistributionSkew(t *testing.T) {
	cfg, err := topology.ScaleGenConfig(topology.ScaleConfig{Seed: 7, Links: 1000, Pairs: 10})
	if err != nil {
		t.Fatal(err)
	}
	inst := mustGenerate(t, cfg)
	g := inst.Graph
	// Preferential attachment should concentrate agg homes on a few core
	// PoPs: the attachment-degree distribution must be skewed, not flat.
	homes := make(map[topology.NodeID]int)
	for id, tier := range inst.Tier {
		if tier != topology.TierAgg {
			continue
		}
		for _, lid := range g.Out(topology.NodeID(id)) {
			if dst := g.Link(lid).Dst; inst.Tier[dst] == topology.TierCore {
				homes[dst]++
			}
		}
	}
	total, minH, maxH := 0, math.MaxInt, 0
	for _, h := range homes {
		total += h
		if h < minH {
			minH = h
		}
		if h > maxH {
			maxH = h
		}
	}
	if total != 2*cfg.AggNodes {
		t.Fatalf("agg homes = %d, want %d", total, 2*cfg.AggNodes)
	}
	if maxH <= minH {
		t.Errorf("core attachment degrees are flat (min=max=%d); preferential attachment broken", minH)
	}
}

func checkCSRShape(t *testing.T, inst *topology.ScaleInstance) {
	t.Helper()
	nPairs := inst.NumPairs()
	if nPairs != len(inst.PairSrc) || nPairs != len(inst.PairDst) || nPairs != len(inst.InvSizes) {
		t.Fatalf("pair arrays disagree: Start says %d pairs, src/dst/sizes %d/%d/%d",
			nPairs, len(inst.PairSrc), len(inst.PairDst), len(inst.InvSizes))
	}
	if inst.Start[0] != 0 || int(inst.Start[nPairs]) != len(inst.Links) {
		t.Fatalf("Start bounds: [%d ... %d], links %d", inst.Start[0], inst.Start[nPairs], len(inst.Links))
	}
	classes := map[float64]bool{}
	for _, c := range topology.SizeClasses() {
		classes[c] = true
	}
	nLinks := inst.Graph.NumLinks()
	seenPair := map[[2]topology.NodeID]bool{}
	for k := 0; k < nPairs; k++ {
		lo, hi := inst.Start[k], inst.Start[k+1]
		if hi <= lo {
			t.Fatalf("pair %d: empty or non-monotone row [%d, %d)", k, lo, hi)
		}
		rowSeen := map[int32]bool{}
		for j := lo; j < hi; j++ {
			l := inst.Links[j]
			if l < 0 || int(l) >= nLinks {
				t.Fatalf("pair %d: link %d out of range", k, l)
			}
			if rowSeen[l] {
				t.Fatalf("pair %d: duplicate link %d", k, l)
			}
			rowSeen[l] = true
			if inst.Fracs != nil {
				if f := inst.Fracs[j]; !(f > 0) || f > 1 {
					t.Fatalf("pair %d: fraction %g out of (0, 1]", k, f)
				}
			}
		}
		src, dst := inst.PairSrc[k], inst.PairDst[k]
		if src == dst {
			t.Fatalf("pair %d: identical endpoints %d", k, src)
		}
		if inst.Tier[src] != topology.TierEdge || inst.Tier[dst] != topology.TierEdge {
			t.Fatalf("pair %d: endpoints %d->%d not edge tier", k, src, dst)
		}
		key := [2]topology.NodeID{src, dst}
		if seenPair[key] {
			t.Fatalf("pair %d: duplicate OD pair %d->%d", k, src, dst)
		}
		seenPair[key] = true
		if !classes[inst.InvSizes[k]] {
			t.Fatalf("pair %d: InvSizes %g not a generator size class", k, inst.InvSizes[k])
		}
	}
	for i, u := range inst.Loads {
		if !(u > 0) {
			t.Fatalf("link %d: load %g", i, u)
		}
		lineRate := inst.Graph.Link(topology.LinkID(i)).CapacityBps / (8 * 500)
		if u > 0.6*lineRate*(1+1e-12) {
			t.Fatalf("link %d: load %g exceeds 60%% of line rate %g", i, u, lineRate)
		}
	}
}

func TestGenerateCSRShape(t *testing.T) {
	for _, ecmp := range []bool{false, true} {
		cfg, err := topology.ScaleGenConfig(topology.ScaleConfig{Seed: 11, Links: 300, Pairs: 400, ECMP: ecmp})
		if err != nil {
			t.Fatal(err)
		}
		inst := mustGenerate(t, cfg)
		if ecmp != (inst.Fracs != nil) {
			t.Fatalf("ECMP=%v but Fracs nil=%v", ecmp, inst.Fracs == nil)
		}
		checkCSRShape(t, inst)
	}
}

// smallCfg is a hand-sized instance where cross-checking every pair
// against internal/routing's all-pairs machinery is cheap.
func smallCfg(ecmp bool) topology.GenConfig {
	return topology.GenConfig{
		Seed:      3,
		CoreNodes: 6,
		AggNodes:  5,
		EdgeNodes: 8,
		Pairs:     8 * 7, // every ordered edge pair
		ECMP:      ecmp,
	}
}

func TestGenerateSinglePathMatchesRouting(t *testing.T) {
	inst := mustGenerate(t, smallCfg(false))
	tab := routing.ComputeTable(inst.Graph)
	for k := 0; k < inst.NumPairs(); k++ {
		src, dst := inst.PairSrc[k], inst.PairDst[k]
		want, err := tab.Cost(src, dst)
		if err != nil {
			t.Fatalf("pair %d: %v", k, err)
		}
		got, cur := 0, src
		for _, l := range inst.Links[inst.Start[k]:inst.Start[k+1]] {
			link := inst.Graph.Link(topology.LinkID(l))
			if link.Src != cur {
				t.Fatalf("pair %d: row is not a contiguous path (link %d starts at %d, walk at %d)",
					k, l, link.Src, cur)
			}
			got += link.Weight
			cur = link.Dst
		}
		if cur != dst {
			t.Fatalf("pair %d: path ends at %d, want %d", k, cur, dst)
		}
		if got != want {
			t.Errorf("pair %d (%d->%d): path cost %d, routing says %d", k, src, dst, got, want)
		}
	}
}

func TestGenerateECMPMatchesRouting(t *testing.T) {
	inst := mustGenerate(t, smallCfg(true))
	tab := routing.ComputeTable(inst.Graph)
	for k := 0; k < inst.NumPairs(); k++ {
		src, dst := inst.PairSrc[k], inst.PairDst[k]
		hops, err := tab.Fractions(src, dst)
		if err != nil {
			t.Fatalf("pair %d: %v", k, err)
		}
		lo, hi := inst.Start[k], inst.Start[k+1]
		if int(hi-lo) != len(hops) {
			t.Fatalf("pair %d (%d->%d): %d links, routing says %d", k, src, dst, hi-lo, len(hops))
		}
		outFrac := 0.0
		for j := lo; j < hi; j++ {
			h := hops[j-lo]
			if int32(h.Link) != inst.Links[j] {
				t.Fatalf("pair %d: link %d, routing says %d", k, inst.Links[j], h.Link)
			}
			if diff := math.Abs(h.Frac - inst.Fracs[j]); diff > 1e-12 {
				t.Errorf("pair %d link %d: frac %g, routing says %g (diff %g)",
					k, inst.Links[j], inst.Fracs[j], h.Frac, diff)
			}
			if inst.Graph.Link(topology.LinkID(inst.Links[j])).Src == src {
				outFrac += inst.Fracs[j]
			}
		}
		// Mass conservation: the source's outgoing fractions carry the
		// whole flow.
		if math.Abs(outFrac-1) > 1e-9 {
			t.Errorf("pair %d: source out-fractions sum to %g, want 1", k, outFrac)
		}
	}
}

func TestGenerateECMPFindsMultipath(t *testing.T) {
	// Uniform per-tier weights exist precisely so the hierarchy yields
	// real equal-cost DAGs; a generator emitting only single paths under
	// ECMP would silently degrade the model.
	inst := mustGenerate(t, smallCfg(true))
	split := 0
	for j, f := range inst.Fracs {
		if f < 1 {
			split++
		}
		_ = j
	}
	if split == 0 {
		t.Fatal("no pair has a split path; expected equal-cost multipath in the hierarchy")
	}
}

func TestGenerateScaleDefaults(t *testing.T) {
	inst, err := topology.GenerateScale(topology.ScaleConfig{Seed: 5, Links: 300})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumPairs() == 0 {
		t.Fatal("default pair count is zero")
	}
	if inst.MaxSampledRate() <= 0 {
		t.Fatal("MaxSampledRate not positive")
	}
	if inst.NNZ() != len(inst.Links) {
		t.Fatalf("NNZ = %d, want %d", inst.NNZ(), len(inst.Links))
	}
}
