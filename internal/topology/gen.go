package topology

import (
	"fmt"
	"sort"
	"strconv"

	"netsamp/internal/rng"
)

// Deterministic ISP-scale topology generator. GEANT (~23 PoPs, ~74
// links) fits in cache; the scale tier needs hierarchical ISP-like
// graphs up to 10⁴ links and 10⁶ OD pairs, with the routing matrix
// emitted directly in the solver's CSR layout — a million Pair headers
// with per-pair link slices would defeat the point.
//
// Structure (the classic core/aggregation/edge hierarchy):
//
//   - core: a duplex ring plus random chords (redundant backbone mesh),
//     OC-192, IGP weight 10;
//   - aggregation: each agg PoP homes onto two distinct core PoPs,
//     chosen by preferential attachment — core attachment degrees come
//     out power-law-ish, like real ISP maps — OC-48, weight 20;
//   - edge: each edge PoP homes onto two distinct agg PoPs (again
//     preferentially), OC-12, weight 30.
//
// Everything — structure, link loads, OD pair sample, flow-size classes
// — is a pure function of GenConfig (in particular Seed), via split
// seeded rng streams keyed on stable entity indices: same config ⇒
// bitwise-identical instance at any code path or machine.

// NodeTier classifies a generated node.
type NodeTier uint8

const (
	// TierCore is a backbone PoP.
	TierCore NodeTier = iota
	// TierAgg is an aggregation PoP.
	TierAgg
	// TierEdge is an edge PoP (OD pair endpoints live here).
	TierEdge
)

// GenConfig sizes a generated instance explicitly. Most callers go
// through ScaleGenConfig, which derives the tier mix from a target link
// count.
type GenConfig struct {
	// Seed is the master seed; the instance is a pure function of the
	// whole config.
	Seed uint64
	// CoreNodes (≥ 4, even), AggNodes (≥ 2), EdgeNodes (≥ 2) size the
	// tiers.
	CoreNodes int
	AggNodes  int
	EdgeNodes int
	// CoreChords is the number of duplex chords added across the core
	// ring; 0 selects CoreNodes/2.
	CoreChords int
	// ExtraLinks adds up to that many unidirectional core chords, to hit
	// link-count targets that 2-link duplex circuits cannot (0 or 1 in
	// practice).
	ExtraLinks int
	// Pairs is the number of OD pairs to sample from the
	// EdgeNodes·(EdgeNodes−1) ordered edge-PoP pairs.
	Pairs int
	// ECMP routes each pair over its full equal-cost DAG with fractional
	// link usage; false picks a single deterministic shortest path.
	ECMP bool
}

// ScaleConfig is the high-level knob: a target link count. Tier sizes
// follow fixed ratios (≈0.6% core, 6% agg, rest edge).
type ScaleConfig struct {
	Seed uint64
	// Links is the target total unidirectional link count (≥ 300).
	Links int
	// Pairs is the OD pair count; 0 selects min(100·Links, max possible).
	Pairs int
	// ECMP selects DAG routing with fractions.
	ECMP bool
}

// ScaleGenConfig derives explicit tier sizes from a target link count.
// The generated instance has exactly cfg.Links links.
func ScaleGenConfig(cfg ScaleConfig) (GenConfig, error) {
	L := cfg.Links
	if L < 300 {
		return GenConfig{}, fmt.Errorf("topology: scale target %d links too small (want >= 300)", L)
	}
	c := L * 6 / 1000
	if c < 8 {
		c = 8
	}
	c &^= 1 // even, so the ring + c/2 chords contribute exactly 3c links
	a := L * 3 / 50
	if a < 4 {
		a = 4
	}
	rem := L - 3*c - 4*a
	e := rem / 4
	if e < 8 {
		return GenConfig{}, fmt.Errorf("topology: scale target %d links leaves only %d edge nodes", L, e)
	}
	r := rem - 4*e // 0..3 leftover links
	g := GenConfig{
		Seed:       cfg.Seed,
		CoreNodes:  c,
		AggNodes:   a,
		EdgeNodes:  e,
		CoreChords: c/2 + r/2,
		ExtraLinks: r % 2,
		Pairs:      cfg.Pairs,
		ECMP:       cfg.ECMP,
	}
	maxPairs := e * (e - 1)
	if g.Pairs == 0 {
		g.Pairs = 100 * L
		if g.Pairs > maxPairs {
			g.Pairs = maxPairs
		}
	}
	return g, nil
}

// ScaleInstance is a generated problem instance in solver-ready form:
// the graph, per-link loads, and the routing matrix of the sampled OD
// pairs as CSR rows over LinkID indices (pair k traverses
// Links[Start[k]:Start[k+1]]).
type ScaleInstance struct {
	Graph *Graph
	// Tier classifies each node, indexed by NodeID.
	Tier []NodeTier
	// EdgeNodes lists the edge-tier node IDs (OD endpoints).
	EdgeNodes []NodeID
	// Loads is the per-link packet rate U_i (packets/second), indexed by
	// LinkID — which is also the dense candidate index: every link is a
	// candidate monitor.
	Loads []float64
	// Start, Links, Fracs are the CSR routing matrix. Fracs is nil in
	// single-path mode, else parallel to Links with the ECMP traffic
	// fraction of each entry.
	Start []int32
	Links []int32
	Fracs []float64
	// InvSizes holds E[1/S] per pair (the SRE utility parameter), drawn
	// from a small set of flow-size classes.
	InvSizes []float64
	// PairSrc/PairDst are the OD endpoints per pair.
	PairSrc, PairDst []NodeID
	// Config echoes the generating configuration.
	Config GenConfig
}

// NumPairs returns the number of generated OD pairs.
func (inst *ScaleInstance) NumPairs() int { return len(inst.Start) - 1 }

// NNZ returns the number of (pair, link) incidences in the routing CSR.
func (inst *ScaleInstance) NNZ() int { return len(inst.Links) }

// MaxSampledRate returns Σ U_i — the feasibility ceiling for the budget
// θ (every link's cap α_i is 1).
func (inst *ScaleInstance) MaxSampledRate() float64 {
	t := 0.0
	for _, u := range inst.Loads {
		t += u
	}
	return t
}

// sizeClasses are the flow-size classes pairs draw E[1/S] from — mice
// (tiny flows, E[1/S] near 1/20) through elephants (E[1/S] = 1e-4).
// Shared classes let a million-pair instance share a handful of utility
// objects.
var sizeClasses = [...]float64{0.05, 0.02, 0.01, 0.005, 0.002, 0.001, 0.0005, 0.0001}

// SizeClasses returns the flow-size class values (E[1/S]) the generator
// draws from, for callers that build one shared utility per class.
func SizeClasses() []float64 {
	out := make([]float64, len(sizeClasses))
	copy(out, sizeClasses[:])
	return out
}

// Salts for the split-seeded rng streams, so structure, loads, sizes and
// the pair sample evolve independently.
const (
	genSaltStructure = iota
	genSaltLoads
	genSaltSizes
	genSaltPairs
)

// Generate builds the instance for the configuration. It is a pure
// function of cfg.
func Generate(cfg GenConfig) (*ScaleInstance, error) {
	if cfg.CoreNodes < 4 || cfg.CoreNodes%2 != 0 {
		return nil, fmt.Errorf("topology: CoreNodes = %d, want an even count >= 4", cfg.CoreNodes)
	}
	if cfg.AggNodes < 2 || cfg.EdgeNodes < 2 {
		return nil, fmt.Errorf("topology: AggNodes = %d, EdgeNodes = %d, want >= 2 each", cfg.AggNodes, cfg.EdgeNodes)
	}
	maxPairs := cfg.EdgeNodes * (cfg.EdgeNodes - 1)
	if cfg.Pairs < 1 || cfg.Pairs > maxPairs {
		return nil, fmt.Errorf("topology: Pairs = %d out of [1, %d] for %d edge nodes", cfg.Pairs, maxPairs, cfg.EdgeNodes)
	}
	if cfg.ExtraLinks < 0 || cfg.ExtraLinks > 3 {
		return nil, fmt.Errorf("topology: ExtraLinks = %d, want [0, 3]", cfg.ExtraLinks)
	}
	chords := cfg.CoreChords
	if chords == 0 {
		chords = cfg.CoreNodes / 2
	}

	inst := &ScaleInstance{Config: cfg}
	g := New()
	inst.Graph = g

	// --- Nodes: core, agg, edge, in that order (stable IDs). ---
	core := make([]NodeID, cfg.CoreNodes)
	agg := make([]NodeID, cfg.AggNodes)
	edge := make([]NodeID, cfg.EdgeNodes)
	for i := range core {
		core[i] = g.AddNode("c" + strconv.Itoa(i))
	}
	for i := range agg {
		agg[i] = g.AddNode("a" + strconv.Itoa(i))
	}
	for i := range edge {
		edge[i] = g.AddNode("e" + strconv.Itoa(i))
	}
	inst.EdgeNodes = edge
	inst.Tier = make([]NodeTier, g.NumNodes())
	for _, id := range agg {
		inst.Tier[id] = TierAgg
	}
	for _, id := range edge {
		inst.Tier[id] = TierEdge
	}

	sr := rng.New(rng.SplitSeed(cfg.Seed, genSaltStructure))

	// --- Core ring + chords. ---
	for i := 0; i < cfg.CoreNodes; i++ {
		g.AddDuplex(core[i], core[(i+1)%cfg.CoreNodes], OC192, 10)
	}
	// adj tracks existing core-core circuits so chords stay simple
	// (parallel circuits would be legal but add no path diversity).
	adj := make(map[[2]int]bool, cfg.CoreNodes+chords)
	for i := 0; i < cfg.CoreNodes; i++ {
		j := (i + 1) % cfg.CoreNodes
		adj[corePairKey(i, j)] = true
	}
	for added := 0; added < chords; {
		i := sr.Intn(cfg.CoreNodes)
		j := sr.Intn(cfg.CoreNodes)
		if i == j || adj[corePairKey(i, j)] {
			continue
		}
		adj[corePairKey(i, j)] = true
		g.AddDuplex(core[i], core[j], OC192, 10)
		added++
	}
	for added := 0; added < cfg.ExtraLinks; {
		i := sr.Intn(cfg.CoreNodes)
		j := sr.Intn(cfg.CoreNodes)
		if i == j {
			continue
		}
		// A unidirectional chord may parallel an existing circuit; routing
		// handles multigraphs, and it only ever lowers path costs.
		g.AddLink(core[i], core[j], OC192, 10)
		added++
	}

	// --- Aggregation uplinks: preferential attachment onto the core. ---
	coreDeg := make([]int, cfg.CoreNodes)
	for i := range agg {
		first := prefPick(sr, coreDeg, -1)
		second := prefPick(sr, coreDeg, first)
		coreDeg[first]++
		coreDeg[second]++
		g.AddDuplex(agg[i], core[first], OC48, 20)
		g.AddDuplex(agg[i], core[second], OC48, 20)
	}

	// --- Edge uplinks: preferential attachment onto the aggregation. ---
	aggDeg := make([]int, cfg.AggNodes)
	for i := range edge {
		first := prefPick(sr, aggDeg, -1)
		second := prefPick(sr, aggDeg, first)
		aggDeg[first]++
		aggDeg[second]++
		g.AddDuplex(edge[i], agg[first], OC12, 30)
		g.AddDuplex(edge[i], agg[second], OC12, 30)
	}

	// --- Per-link loads: utilization in [5%, 60%] of line rate at an
	// average packet size of 500 bytes, split-seeded per LinkID. ---
	inst.Loads = make([]float64, g.NumLinks())
	loadSalt := rng.SplitSeed(cfg.Seed, genSaltLoads)
	for i := range inst.Loads {
		lr := rng.New(rng.SplitSeed(loadSalt, uint64(i)))
		util := 0.05 + 0.55*lr.Float64()
		pktPerSec := g.Link(LinkID(i)).CapacityBps / (8 * 500)
		inst.Loads[i] = util * pktPerSec
	}

	// --- OD pair sample: Pairs distinct ordered edge-PoP pairs, drawn
	// uniformly without replacement (Floyd), reported in ascending
	// lexicographic (src, dst) order so sources group for routing. ---
	pairIdx := samplePairIndices(rng.New(rng.SplitSeed(cfg.Seed, genSaltPairs)), maxPairs, cfg.Pairs)
	ne := cfg.EdgeNodes
	inst.PairSrc = make([]NodeID, cfg.Pairs)
	inst.PairDst = make([]NodeID, cfg.Pairs)
	inst.InvSizes = make([]float64, cfg.Pairs)
	sizeSalt := rng.SplitSeed(cfg.Seed, genSaltSizes)
	for k, idx := range pairIdx {
		si := idx / (ne - 1)
		ti := idx % (ne - 1)
		if ti >= si {
			ti++
		}
		inst.PairSrc[k] = edge[si]
		inst.PairDst[k] = edge[ti]
		// The class draw is keyed on the global pair index, so a pair
		// keeps its flow-size class across different sample sizes.
		cr := rng.New(rng.SplitSeed(sizeSalt, uint64(idx)))
		inst.InvSizes[k] = sizeClasses[cr.Intn(len(sizeClasses))]
	}

	// --- Routing matrix, emitted directly as CSR. ---
	if err := inst.routeCSR(); err != nil {
		return nil, err
	}
	return inst, nil
}

// GenerateScale is Generate over a ScaleConfig.
func GenerateScale(cfg ScaleConfig) (*ScaleInstance, error) {
	g, err := ScaleGenConfig(cfg)
	if err != nil {
		return nil, err
	}
	return Generate(g)
}

func corePairKey(i, j int) [2]int {
	if i > j {
		i, j = j, i
	}
	return [2]int{i, j}
}

// prefPick draws an index proportionally to degree+1 (preferential
// attachment; the +1 keeps zero-degree nodes reachable), excluding one
// index.
func prefPick(r *rng.Source, deg []int, exclude int) int {
	total := 0
	for i, d := range deg {
		if i == exclude {
			continue
		}
		total += d + 1
	}
	t := r.Intn(total)
	for i, d := range deg {
		if i == exclude {
			continue
		}
		t -= d + 1
		if t < 0 {
			return i
		}
	}
	// Unreachable: the loop above always terminates with t < 0.
	return len(deg) - 1
}

// samplePairIndices draws k distinct values from [0, n) uniformly
// without replacement (Floyd's algorithm) and returns them sorted
// ascending.
func samplePairIndices(r *rng.Source, n, k int) []int {
	if k == n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := make([]bool, n)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if seen[t] {
			t = j
		}
		seen[t] = true
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}
