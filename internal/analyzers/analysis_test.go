package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

// TestParseDirectiveReasons pins the untokenized-remainder contract:
// the argument string is everything after the directive name, verbatim,
// so reasons containing ':' or '=' survive intact.
func TestParseDirectiveReasons(t *testing.T) {
	cases := []struct {
		comment  string
		ok       bool
		name     string
		args     string
	}{
		{"//netsamp:alloc-ok reused scratch", true, "alloc-ok", "reused scratch"},
		{"//netsamp:alloc-ok ratio = hits:misses, cap=64", true, "alloc-ok", "ratio = hits:misses, cap=64"},
		{"//netsamp:guarded-ok safe after Stop(): workers joined", true, "guarded-ok", "safe after Stop(): workers joined"},
		{"//netsamp:noalloc", true, "noalloc", ""},
		{"//netsamp:codec pair=decodePlan layout v2: keys=u32", true, "codec", "pair=decodePlan layout v2: keys=u32"},
		{"// netsamp:alloc-ok spaced prefix is not a directive", false, "", ""},
		{"// plain comment", false, "", ""},
	}
	for _, tc := range cases {
		name, args, ok := parseDirective(&ast.Comment{Text: tc.comment})
		if ok != tc.ok || name != tc.name || args != tc.args {
			t.Errorf("parseDirective(%q) = (%q, %q, %v), want (%q, %q, %v)",
				tc.comment, name, args, ok, tc.name, tc.args, tc.ok)
		}
	}
}

// TestDirectiveArg pins the structured-first-token split: only the
// first whitespace token is structure, the rest is the reason.
func TestDirectiveArg(t *testing.T) {
	cases := []struct {
		args, first, reason string
	}{
		{"mu", "mu", ""},
		{"mu protects table: see DESIGN §7", "mu", "protects table: see DESIGN §7"},
		{"pair=decodePlan layout v2: keys=u32", "pair=decodePlan", "layout v2: keys=u32"},
		{"", "", ""},
	}
	for _, tc := range cases {
		first, reason := DirectiveArg(tc.args)
		if first != tc.first || reason != tc.reason {
			t.Errorf("DirectiveArg(%q) = (%q, %q), want (%q, %q)",
				tc.args, first, reason, tc.first, tc.reason)
		}
	}
}

// TestLineAndFuncDirectives exercises the two lookup paths end to end
// on parsed source, with reasons that would break under tokenization.
func TestLineAndFuncDirectives(t *testing.T) {
	src := `package d

//netsamp:codec pair=decode v2 layout: keys=u32
func encode() {
	x := 1 //netsamp:alloc-ok same-line reason with colon: fine
	//netsamp:nondeterministic-ok line-above reason, cap=8
	y := 2
	_ = x
	_ = y //netsamp:alloc-ok trailing directive annotates this line only
	z := 3
	_ = z
}

func decode() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Fset: fset, Files: []*ast.File{f}}

	enc := f.Decls[0].(*ast.FuncDecl)
	args, ok := FuncDirective(enc, "codec")
	if !ok || args != "pair=decode v2 layout: keys=u32" {
		t.Fatalf("FuncDirective(codec) = (%q, %v)", args, ok)
	}
	first, reason := DirectiveArg(args)
	if first != "pair=decode" || reason != "v2 layout: keys=u32" {
		t.Fatalf("DirectiveArg = (%q, %q)", first, reason)
	}

	body := enc.Body.List
	sameLine := body[0].Pos()
	if args, ok := pass.LineDirective(sameLine, "alloc-ok"); !ok || args != "same-line reason with colon: fine" {
		t.Fatalf("same-line LineDirective = (%q, %v)", args, ok)
	}
	lineAbove := body[1].Pos()
	if args, ok := pass.LineDirective(lineAbove, "nondeterministic-ok"); !ok || args != "line-above reason, cap=8" {
		t.Fatalf("line-above LineDirective = (%q, %v)", args, ok)
	}
	if _, ok := pass.LineDirective(body[2].Pos(), "alloc-ok"); ok {
		t.Fatal("directive leaked to an unannotated line")
	}
	// body[3] is `_ = y` with a trailing directive; body[4] (`z := 3`)
	// sits on the next line and must not inherit it — a directive
	// trailing code annotates only its own line.
	if _, ok := pass.LineDirective(body[3].Pos(), "alloc-ok"); !ok {
		t.Fatal("trailing directive not found on its own line")
	}
	if _, ok := pass.LineDirective(body[4].Pos(), "alloc-ok"); ok {
		t.Fatal("trailing directive on the line above leaked downward")
	}
}

// TestExtractFacts pins the facts vocabulary: plain functions by name,
// methods as Type.Method, sorted, test files included as parsed.
func TestExtractFacts(t *testing.T) {
	src := `package d

//netsamp:noalloc
func Zeta() {}

type T struct{}

//netsamp:noalloc
func (t *T) Method() {}

func plain() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	facts := ExtractFacts([]*ast.File{f})
	want := []string{"T.Method", "Zeta"}
	if !reflect.DeepEqual(facts.Noalloc, want) {
		t.Fatalf("Noalloc = %v, want %v", facts.Noalloc, want)
	}
	if !facts.HasNoalloc("T.Method") || facts.HasNoalloc("plain") {
		t.Fatal("HasNoalloc membership wrong")
	}
	var nilFacts *PackageFacts
	if nilFacts.HasNoalloc("anything") {
		t.Fatal("nil facts must report no members")
	}
}
