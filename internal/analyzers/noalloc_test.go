package analyzers

import "testing"

func TestNoallocGolden(t *testing.T) {
	runGolden(t, NoallocAnalyzer, "noalloc")
}
