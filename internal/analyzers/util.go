package analyzers

import (
	"go/ast"
	"go/types"
)

// calleeObject resolves the function or method object a call invokes,
// or nil for calls through function values, built-ins, and conversions.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call: pkg.Fn.
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// isPkgFunc reports whether the call invokes a package-level function
// named name from the package with import path pkgPath.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	// Package-level functions have no receiver.
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isBuiltin reports whether the call invokes the builtin named name.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// hasFloats reports whether comparing two values of type t compares
// floating-point bits: floats and complex numbers themselves, arrays of
// them, and structs with such fields (struct/array comparison compares
// fields element-wise, so a stray NaN or -0 hides just as well there).
func hasFloats(t types.Type) bool {
	seen := make(map[types.Type]bool)
	var walk func(types.Type) bool
	walk = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		switch u := t.Underlying().(type) {
		case *types.Basic:
			return u.Info()&(types.IsFloat|types.IsComplex) != 0
		case *types.Array:
			return walk(u.Elem())
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
		}
		return false
	}
	return walk(t)
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// mentionsObjects reports whether expr references any of the given
// objects (by use).
func mentionsObjects(info *types.Info, expr ast.Node, objs map[types.Object]bool) bool {
	if expr == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// definedObj returns the object an identifier defines, or nil.
func definedObj(info *types.Info, id *ast.Ident) types.Object {
	if id == nil || id.Name == "_" {
		return nil
	}
	return info.Defs[id]
}

// namedMethodReceiver returns the named type a selector call's receiver
// resolves to (through pointers), or nil — e.g. for d.U16() it returns
// the Decoder named type.
func namedMethodReceiver(info *types.Info, call *ast.CallExpr) (*types.Named, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, ""
	}
	recv := s.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	if named, ok := recv.(*types.Named); ok {
		return named, sel.Sel.Name
	}
	// Receiver may itself be a pointer to a named type.
	if ptr, ok := recv.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			return named, sel.Sel.Name
		}
	}
	return nil, ""
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// returnsError reports whether the signature's last result is an error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res == nil || res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), errorType)
}
