package analyzers

import "testing"

func TestDeterminismGolden(t *testing.T) {
	runGolden(t, DeterminismAnalyzer, "determinism")
}

func TestReplayFence(t *testing.T) {
	for _, p := range ReplayCriticalPackages {
		if !IsReplayCritical(p) {
			t.Errorf("IsReplayCritical(%q) = false, want true", p)
		}
	}
	for _, p := range []string{"netsamp/internal/topology", "netsamp/internal/analyzers", "fmt"} {
		if IsReplayCritical(p) {
			t.Errorf("IsReplayCritical(%q) = true, want false", p)
		}
	}
}
