package analyzers

import (
	"go/ast"
	"go/token"
)

// FloatCmpAnalyzer flags == and != whose operands carry floating-point
// bits — floats, complex numbers, and structs/arrays containing them.
// Two floats that "should" be equal rarely are after independent
// computation paths, and a comparison that happens to hold on one
// machine order can break under a different FMA contraction or
// summation order — silently, which inside the replay fence means a
// divergence the journal cross-check can only report, not explain.
//
// Exact comparisons are legitimate in two places, and both must say so:
// comparisons against sentinel values written verbatim (exact zero
// pinned by the active-set logic, bit-pattern config digests), which
// take `//netsamp:floateq-ok <reason>` on the line; and the bitwise
// replay tests, which live in _test.go files the analyzer skips
// entirely.
//
// The analyzer runs over the replay-critical packages plus the
// persistence-adjacent ones (faults, netflow) where bit-exact codec
// round-trips make exact comparisons tempting.
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= on floating-point operands outside annotated exact comparisons",
	AppliesTo: func(pkgPath string) bool {
		return IsReplayCritical(pkgPath) ||
			pkgPath == "netsamp/internal/faults" ||
			pkgPath == "netsamp/internal/netflow"
	},
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	for _, f := range pass.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xt := pass.Info.Types[bin.X]
			yt := pass.Info.Types[bin.Y]
			if xt.Type == nil || yt.Type == nil {
				return true
			}
			if !hasFloats(xt.Type) && !hasFloats(yt.Type) {
				return true
			}
			// A comparison folded at compile time (two constants) cannot
			// diverge at run time.
			if xt.Value != nil && yt.Value != nil {
				return true
			}
			if reason, ok := pass.LineDirective(bin.OpPos, "floateq-ok"); ok {
				if reason == "" {
					pass.Reportf(bin.OpPos, "netsamp:floateq-ok requires a reason")
				}
				return true
			}
			pass.Reportf(bin.OpPos,
				"%s on floating-point operands; compare against a tolerance, or annotate //netsamp:floateq-ok <reason> for an intentional exact comparison", bin.Op)
			return true
		})
	}
	return nil
}
