package analyzers

import (
	"path/filepath"
	"testing"
)

func TestCodecVerGolden(t *testing.T) {
	runGolden(t, CodecVerAnalyzer, "codecver")
}

// TestCodecFingerprintRoundTrip pins the ledger writer/loader pair:
// what WriteCodecFingerprints emits, LoadCodecFingerprints reads back
// identically, and the golden package's computed entries agree with
// the committed fixture for the in-sync type.
func TestCodecFingerprintRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "src", "codecver", "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no codecver testdata: %v", err)
	}
	pkg, err := TypeCheck("codecver", files, testExports(t))
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	fps := CodecFingerprintsForPackage(pkg)
	want := map[string]CodecFingerprint{
		"codecver.Good":     {Version: "1", Fields: "A uint64; B float64"},
		"codecver.Unbumped": {Version: "3", Fields: "A uint64; B uint64"},
		"codecver.Bumped":   {Version: "2", Fields: "A uint64; B uint64"},
		"codecver.Fresh":    {Version: "1", Fields: "A uint64"},
	}
	if len(fps) != len(want) {
		t.Fatalf("fingerprinted %d types, want %d: %v", len(fps), len(want), fps)
	}
	for k, w := range want {
		if fps[k] != w {
			t.Errorf("%s = %+v, want %+v", k, fps[k], w)
		}
	}

	path := filepath.Join(t.TempDir(), CodecFingerprintFile)
	if err := WriteCodecFingerprints(path, fps); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := LoadCodecFingerprints(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(back) != len(fps) {
		t.Fatalf("round trip lost entries: wrote %d, read %d", len(fps), len(back))
	}
	for k, v := range fps {
		if back[k] != v {
			t.Errorf("round trip %s = %+v, want %+v", k, back[k], v)
		}
	}
}
