// Package ctxhygiene is golden-test input for cancellation hygiene in
// supervised packages: stoppable goroutines, no bare sleeps in loops,
// no selectless sends.
package ctxhygiene

import "time"

type worker struct {
	stop chan struct{}
	jobs chan int
	out  chan int
}

// runSelect is stoppable through its select: clean.
func (w *worker) runSelect() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			case j := <-w.jobs:
				_ = j
			}
		}
	}()
}

// runRange is stoppable by closing the channel it ranges over: clean.
func (w *worker) runRange() {
	go func() {
		for j := range w.jobs {
			_ = j
		}
	}()
}

// runNamed spawns a named method whose body has a select: clean.
func (w *worker) runNamed() {
	go w.loop()
}

func (w *worker) loop() {
	for {
		select {
		case <-w.stop:
			return
		case j := <-w.jobs:
			_ = j
		}
	}
}

// runForever spins with no way in for a stop signal.
func (w *worker) runForever() {
	go func() { // want `goroutine has no cancellation path`
		n := 0
		for {
			n++
		}
	}()
}

// runNamedForever spawns a named unstoppable body.
func (w *worker) runNamedForever() {
	go w.spin() // want `goroutine has no cancellation path`
}

func (w *worker) spin() {
	for {
	}
}

// runEscaped acknowledges a bounded fire-and-forget goroutine.
func (w *worker) runEscaped(done func()) {
	//netsamp:ctx-ok runs once and exits; bounded by the done callback
	go done()
}

// pollLoop sleeps inside its loop, blind to shutdown.
func (w *worker) pollLoop() {
	for {
		time.Sleep(time.Second) // want `time.Sleep in a supervised loop cannot observe a stop signal`
	}
}

// pollTimer uses the timer-in-select idiom: clean.
func (w *worker) pollTimer() {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			t.Reset(time.Second)
		}
	}
}

// startupSleep outside any loop is not flagged (one-shot delays are a
// different argument from unobservable loop sleeps).
func (w *worker) startupSleep() {
	time.Sleep(10 * time.Millisecond)
}

// sleepEscaped documents a deliberate in-loop backoff.
func (w *worker) sleepEscaped() {
	for i := 0; i < 3; i++ {
		//netsamp:ctx-ok bounded 3-iteration retry backoff during startup only
		time.Sleep(time.Millisecond)
	}
}

// sendBare blocks forever once the receiver is gone.
func (w *worker) sendBare(v int) {
	w.out <- v // want `channel send without a cancellation case`
}

// sendSelect has the stop case: clean.
func (w *worker) sendSelect(v int) {
	select {
	case w.out <- v:
	case <-w.stop:
	}
}

// sendEscaped documents a capacity argument.
func (w *worker) sendEscaped(v int) {
	//netsamp:ctx-ok buffered to len(shards), never more than one outstanding per shard
	w.out <- v
}

// sendEscapedNoReason forgets the reason.
func (w *worker) sendEscapedNoReason(v int) {
	//netsamp:ctx-ok
	w.out <- v // want `netsamp:ctx-ok requires a reason`
}
