// Package noalloc is golden-test input: each // want comment marks an
// expected finding on its line.
package noalloc

import "fmt"

type pair struct{ a, b int }

func run() {}

// unannotated functions are not checked at all.
func unannotated() []int {
	return make([]int, 8) // ok: no //netsamp:noalloc directive
}

//netsamp:noalloc
func grows(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n) // want `make`
	}
	return buf[:n]
}

//netsamp:noalloc
func selfAppend(xs []int, v int) []int {
	xs = append(xs, v) // ok: self-append grows in place (amortized)
	return xs
}

//netsamp:noalloc
func reuseAppend(buf, payload []byte) []byte {
	buf = append(buf[:0], payload...) // ok: buffer-reuse self-append
	return buf
}

//netsamp:noalloc
func freshAppend(xs []int) []int {
	ys := append(xs, 1) // want `fresh backing array`
	return ys
}

//netsamp:noalloc
func coldError(n int) error {
	if n < 0 {
		return fmt.Errorf("bad n %d", n) // ok: failure exit ends in return
	}
	return nil
}

//netsamp:noalloc
func hotFmt(n int) string {
	s := fmt.Sprintf("%d", n) // want `fmt\.Sprintf`
	return s
}

//netsamp:noalloc
func boxes(n int) any {
	return any(n) // want `conversion to interface`
}

//netsamp:noalloc
func copies(b []byte) string {
	return string(b) // want `string\(slice\) conversion`
}

//netsamp:noalloc
func literals() {
	_ = []int{1, 2}  // want `slice literal`
	_ = map[int]int{} // want `map literal`
	_ = &pair{}       // want `&composite literal`
}

//netsamp:noalloc
func spawns() {
	go run() // want `go statement`
}

//netsamp:noalloc
func closes() func() {
	return func() {} // want `function literal`
}

//netsamp:noalloc
func excused() func() {
	//netsamp:alloc-ok constructed once at startup, not per interval
	return func() {}
}

//netsamp:noalloc
func sloppyExcuse(xs []int) []int {
	//netsamp:alloc-ok
	ys := append(xs, 1) // want `requires a reason`
	return ys
}

func sink(v any)      {}
func sinks(vs ...any) {}
func take(e error)    {}

//netsamp:noalloc
func implicitBox(n int) {
	sink(n) // want `boxes the argument`
}

//netsamp:noalloc
func structBox(p pair) {
	sink(p) // want `boxes the argument`
}

//netsamp:noalloc
func ptrNoBox(p *pair) {
	sink(p) // ok: the interface data word holds the pointer, no allocation
}

//netsamp:noalloc
func ifacePassThrough(v any) {
	sink(v) // ok: already an interface, passes through unboxed
}

//netsamp:noalloc
func nilNoBox() {
	take(nil) // ok: nil interface
}

//netsamp:noalloc
func variadicBox(n int) {
	sinks(n, n+1) // want `boxes the argument` `boxes the argument`
}

//netsamp:noalloc
func spreadNoBox(vs []any) {
	sinks(vs...) // ok: the slice forwards as-is, no per-element boxing
}

//netsamp:noalloc
func coldBox(n int) int {
	if n < 0 {
		sink(n) // ok: failure exit ends in return, off the steady state
		return 0
	}
	return n
}

//netsamp:noalloc
func excusedBox(n int) {
	sink(n) //netsamp:alloc-ok logged once at startup, not per interval
}

//netsamp:noalloc
func coldPanic(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // ok: a panic exit is cold, like a return
	}
	return n
}
