// Package noalloc is golden-test input: each // want comment marks an
// expected finding on its line.
package noalloc

import "fmt"

type pair struct{ a, b int }

func run() {}

// unannotated functions are not checked at all.
func unannotated() []int {
	return make([]int, 8) // ok: no //netsamp:noalloc directive
}

//netsamp:noalloc
func grows(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n) // want `make`
	}
	return buf[:n]
}

//netsamp:noalloc
func selfAppend(xs []int, v int) []int {
	xs = append(xs, v) // ok: self-append grows in place (amortized)
	return xs
}

//netsamp:noalloc
func reuseAppend(buf, payload []byte) []byte {
	buf = append(buf[:0], payload...) // ok: buffer-reuse self-append
	return buf
}

//netsamp:noalloc
func freshAppend(xs []int) []int {
	ys := append(xs, 1) // want `fresh backing array`
	return ys
}

//netsamp:noalloc
func coldError(n int) error {
	if n < 0 {
		return fmt.Errorf("bad n %d", n) // ok: failure exit ends in return
	}
	return nil
}

//netsamp:noalloc
func hotFmt(n int) string {
	s := fmt.Sprintf("%d", n) // want `fmt\.Sprintf`
	return s
}

//netsamp:noalloc
func boxes(n int) any {
	return any(n) // want `conversion to interface`
}

//netsamp:noalloc
func copies(b []byte) string {
	return string(b) // want `string\(slice\) conversion`
}

//netsamp:noalloc
func literals() {
	_ = []int{1, 2}  // want `slice literal`
	_ = map[int]int{} // want `map literal`
	_ = &pair{}       // want `&composite literal`
}

//netsamp:noalloc
func spawns() {
	go run() // want `go statement`
}

//netsamp:noalloc
func closes() func() {
	return func() {} // want `function literal`
}

//netsamp:noalloc
func excused() func() {
	//netsamp:alloc-ok constructed once at startup, not per interval
	return func() {}
}

//netsamp:noalloc
func sloppyExcuse(xs []int) []int {
	//netsamp:alloc-ok
	ys := append(xs, 1) // want `requires a reason`
	return ys
}
