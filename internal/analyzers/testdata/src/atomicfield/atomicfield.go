// Package atomicfield is golden-test input for the all-or-nothing
// atomic-access rule and the 64-bit alignment placement check.
package atomicfield

import (
	"sync"
	"sync/atomic"
)

// counters mixes atomic and plain access to n.
type counters struct {
	n    uint64
	hits uint64
}

func (c *counters) inc() {
	atomic.AddUint64(&c.n, 1)
	c.hits++ // plain field never touched atomically: fine
}

func (c *counters) read() uint64 {
	return c.n // want `field n is accessed with sync/atomic elsewhere in this package but plainly here`
}

func (c *counters) readAtomic() uint64 {
	return atomic.LoadUint64(&c.n)
}

// newCounters initializes plainly inside a constructor: exempt, the
// value is not yet shared.
func newCounters() *counters {
	c := &counters{}
	c.n = 0
	return c
}

// drain reads plainly after external synchronization, with the escape
// hatch carrying its safety argument.
func (c *counters) drain(wg *sync.WaitGroup) uint64 {
	wg.Wait()
	//netsamp:atomic-ok all writers joined above, no concurrent access remains
	return c.n
}

// drainBad uses the escape hatch without a reason.
func (c *counters) drainBad() uint64 {
	//netsamp:atomic-ok
	return c.n // want `netsamp:atomic-ok requires a reason`
}

// misaligned places its 64-bit atomic counter after a bool: offset 4
// under 32-bit layout, so atomic access faults on 386/ARM.
type misaligned struct {
	ready bool
	count uint64 // want `64-bit atomic field count sits at offset 4 under 32-bit layout`
}

func (m *misaligned) bump() {
	atomic.AddUint64(&m.count, 1)
}

// aligned leads with the 64-bit field: clean.
type aligned struct {
	count uint64
	ready bool
}

func (a *aligned) bump() {
	atomic.AddUint64(&a.count, 1)
}

// typed uses the self-aligning typed atomics: never flagged, plain
// access is impossible by construction.
type typed struct {
	ready bool
	count atomic.Uint64
}

func (t *typed) bump() {
	t.count.Add(1)
}

// only32 uses a 32-bit atomic: no alignment demand.
type only32 struct {
	pad bool
	n   uint32
}

func (o *only32) bump() {
	atomic.AddUint32(&o.n, 1)
}
