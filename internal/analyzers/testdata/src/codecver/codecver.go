// Package codecver is golden-test input for the fingerprint-ledger
// check: the CODEC_FINGERPRINTS.json next to this file plays the role
// of the committed module-root ledger (the analyzer stops its upward
// search at the first directory holding one).
package codecver

type Encoder struct{ buf []byte }

func (e *Encoder) U8(v uint8)     {}
func (e *Encoder) Bool(v bool)    {}
func (e *Encoder) U16(v uint16)   {}
func (e *Encoder) U32(v uint32)   {}
func (e *Encoder) U64(v uint64)   {}
func (e *Encoder) I64(v int64)    {}
func (e *Encoder) F64(v float64)  {}
func (e *Encoder) Bytes(v []byte) {}
func (e *Encoder) Data() []byte   { return e.buf }

const goodVersion = 1

// Good matches its ledger entry exactly: no finding.
type Good struct {
	A uint64
	B float64
}

func (g *Good) MarshalBinary() ([]byte, error) {
	var e Encoder
	e.U16(goodVersion)
	e.U64(g.A)
	e.F64(g.B)
	return e.Data(), nil
}

const unbumpedVersion = 3

// Unbumped gained field B since the ledger was written but still
// stamps version 3: old payloads would misparse, not be rejected.
type Unbumped struct { // want `Unbumped's marshalled fields changed but its codec version stamp is still 3`
	A uint64
	B uint64
}

func (u *Unbumped) MarshalBinary() ([]byte, error) {
	var e Encoder
	e.U16(unbumpedVersion)
	e.U64(u.A)
	e.U64(u.B)
	return e.Data(), nil
}

const bumpedVersion = 2

// Bumped did the right thing — fields changed AND the version moved —
// so only the ledger is stale and needs regenerating.
type Bumped struct { // want `Bumped's committed fingerprint is stale`
	A uint64
	B uint64
}

func (b *Bumped) MarshalBinary() ([]byte, error) {
	var e Encoder
	e.U16(bumpedVersion)
	e.U64(b.A)
	e.U64(b.B)
	return e.Data(), nil
}

const freshVersion = 1

// Fresh is codec-paired but was never fingerprinted.
type Fresh struct { // want `codec-paired struct Fresh has no committed fingerprint`
	A uint64
}

func (f *Fresh) MarshalBinary() ([]byte, error) {
	var e Encoder
	e.U16(freshVersion)
	e.U64(f.A)
	return e.Data(), nil
}

// Plain has a MarshalBinary that does not touch the state codec: not
// fingerprinted, never flagged.
type Plain struct {
	A uint64
}

func (p *Plain) MarshalBinary() ([]byte, error) {
	return []byte{byte(p.A)}, nil
}
