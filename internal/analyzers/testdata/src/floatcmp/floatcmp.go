// Package floatcmp is golden-test input: each // want comment marks an
// expected finding on its line.
package floatcmp

type vec struct{ x, y float64 }

type tagged struct {
	id   int
	load float64
}

func compare(a, b float64, i, j int, u, v vec) bool {
	if a == b { // want `== on floating-point operands`
		return true
	}
	if i == j { // ok: integer comparison is exact
		return true
	}
	if u != v { // want `!= on floating-point operands`
		return false
	}
	return false
}

func structs(s, t tagged) bool {
	return s == t // want `== on floating-point operands`
}

func sentinels(rate float64) bool {
	//netsamp:floateq-ok zero is the inactive-monitor sentinel, never computed
	return rate == 0
}

func sloppySentinel(rate float64) bool {
	//netsamp:floateq-ok
	return rate == 0 // want `requires a reason`
}

const eps = 1e-9

func folded() bool {
	return eps == 1e-9 // ok: both operands are constants, folded at compile time
}

func ints(counts map[int]int) bool {
	return counts[0] != counts[1] // ok: no floating-point bits involved
}
