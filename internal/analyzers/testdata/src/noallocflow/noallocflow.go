// Package noallocflow is golden-test input for the interprocedural
// noalloc closure: a //netsamp:noalloc function may only call
// noalloc-annotated or recognized-leaf functions.
package noallocflow

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// leaf is annotated: callable from noalloc functions.
//
//netsamp:noalloc
func leaf(x int) int { return x + 1 }

// plainHelper is NOT annotated.
func plainHelper(x int) int { return x * 2 }

// callsAnnotated is clean: annotated local callee plus whitelisted
// leaves (math wholesale, sync/atomic wholesale, mutex methods).
//
//netsamp:noalloc
func callsAnnotated(mu *sync.Mutex, n *uint64) float64 {
	mu.Lock()
	v := leaf(3)
	atomic.AddUint64(n, 1)
	mu.Unlock()
	return math.Sqrt(float64(v))
}

// callsPlain flows allocation risk through an unannotated callee.
//
//netsamp:noalloc
func callsPlain() int {
	return plainHelper(3) // want `call to plainHelper which is not //netsamp:noalloc`
}

// callsFmt reaches a cross-package callee that is neither whitelisted
// nor annotated in a dependency's facts.
//
//netsamp:noalloc
func callsFmt() string {
	return fmt.Sprintf("%d", 7) // want `cross-package call to fmt.Sprintf which is not //netsamp:noalloc there`
}

// funcValue calls through a function value: unresolvable statically.
//
//netsamp:noalloc
func funcValue(f func() int) int {
	return f() // want `call through a function value`
}

// escaped acknowledges a flagged call with a reason: no finding.
//
//netsamp:noalloc
func escaped(f func() int) int {
	//netsamp:allocflow-ok classifier hook, caller contract requires noalloc impls
	return f()
}

// escapedNoReason forgets the reason: that itself is the finding.
//
//netsamp:noalloc
func escapedNoReason(f func() int) int {
	//netsamp:allocflow-ok
	return f() // want `netsamp:allocflow-ok requires a reason`
}

// coldPath calls an unannotated function only on the error exit, which
// the steady-state contract exempts.
//
//netsamp:noalloc
func coldPath(x int) int {
	if x < 0 {
		reportBad(x)
		return 0
	}
	return leaf(x)
}

func reportBad(x int) { fmt.Println("bad", x) }

// errString calls the predeclared error interface's method, a
// recognized builtin leaf.
//
//netsamp:noalloc
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// model is an interface whose in-package implementations all annotate
// the method: dynamic dispatch through it is covered.
type model interface{ value(x float64) float64 }

type linear struct{ a float64 }

//netsamp:noalloc
func (l linear) value(x float64) float64 { return l.a * x }

type square struct{}

//netsamp:noalloc
func (square) value(x float64) float64 { return x * x }

//netsamp:noalloc
func evalModel(m model, x float64) float64 {
	return m.value(x)
}

// open is an interface with an implementation that does NOT annotate
// the method, so dispatch through it is not covered.
type open interface{ cost(x int) int }

type cheap struct{}

//netsamp:noalloc
func (cheap) cost(x int) int { return x }

type pricey struct{}

func (pricey) cost(x int) int { return len(fmt.Sprint(x)) }

//netsamp:noalloc
func evalOpen(o open, x int) int {
	return o.cost(x) // want `call to open.cost which is not //netsamp:noalloc`
}

// notAnnotated is free to call anything: the analyzer only checks
// annotated functions.
func notAnnotated() string {
	return fmt.Sprintf("%d", plainHelper(2))
}
