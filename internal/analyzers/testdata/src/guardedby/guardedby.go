// Package guardedby is golden-test input for the //netsamp:guardedby
// field directive: annotated fields may only be accessed under the
// named sibling mutex.
package guardedby

import (
	"errors"
	"sync"
)

var errClosed = errors.New("closed")

type table struct {
	mu sync.Mutex
	//netsamp:guardedby mu
	entries map[string]int
	//netsamp:guardedby mu
	hits uint64
	name string // unguarded: freely accessible
}

func newTable() *table {
	t := &table{}
	t.entries = map[string]int{} // constructor: exempt
	t.hits = 0
	return t
}

func (t *table) get(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hits++ // deferred unlock does not end the critical section
	return t.entries[k]
}

func (t *table) getUnlocked(k string) int {
	return t.entries[k] // want `field entries is //netsamp:guardedby mu but accessed without t.mu held`
}

func (t *table) size() int {
	t.mu.Lock()
	n := len(t.entries)
	t.mu.Unlock()
	return n + len(t.name) // name is unguarded: fine after unlock
}

func (t *table) afterUnlock() int {
	t.mu.Lock()
	t.mu.Unlock()
	return t.entries[""] // want `field entries is //netsamp:guardedby mu but accessed without t.mu held`
}

// errExit unlocks on the cold error path; the hot-path access after the
// if-block is still inside the critical section.
func (t *table) errExit(k string) (int, error) {
	t.mu.Lock()
	if t.entries == nil {
		t.mu.Unlock()
		return 0, errClosed
	}
	v := t.entries[k]
	t.mu.Unlock()
	return v, nil
}

// sizeLocked documents its contract: the caller holds mu.
//
//netsamp:holds mu
func (t *table) sizeLocked() int {
	return len(t.entries)
}

// escape carries a structural safety argument.
func (t *table) snapshotAfterStop() uint64 {
	//netsamp:guarded-ok single-threaded after Stop, all workers joined
	return t.hits
}

func (t *table) escapeNoReason() uint64 {
	//netsamp:guarded-ok
	return t.hits // want `netsamp:guarded-ok requires a reason`
}

// spawned goroutines do not inherit the spawning frame's lock.
func (t *table) leak() {
	t.mu.Lock()
	go func() {
		t.hits++ // want `field hits is //netsamp:guardedby mu but accessed without t.mu held`
	}()
	t.mu.Unlock()
}

// lockedLit locks inside the literal itself: fine.
func (t *table) lockedLit() {
	go func() {
		t.mu.Lock()
		t.hits++
		t.mu.Unlock()
	}()
}

// rwtable exercises RLock and the missing-sibling validation.
type rwtable struct {
	mu sync.RWMutex
	//netsamp:guardedby mu
	vals []int
	//netsamp:guardedby lock
	bad int // want `netsamp:guardedby names lock, which is not a field of this struct`
}

func (r *rwtable) read(i int) int {
	r.mu.RLock()
	v := r.vals[i]
	r.mu.RUnlock()
	return v
}

func (r *rwtable) readBare(i int) int {
	return r.vals[i] // want `field vals is //netsamp:guardedby mu but accessed without r.mu held`
}
