// Package codecpair is golden-test input: each // want comment marks an
// expected finding on its line. The Encoder/Decoder below reproduce the
// shape (name + width-method set) the analyzer matches on, so the tests
// need no import of the real state package.
package codecpair

import "errors"

var errBad = errors.New("bad payload")

type Encoder struct{ buf []byte }

func (e *Encoder) U8(v uint8)     {}
func (e *Encoder) Bool(v bool)    {}
func (e *Encoder) U16(v uint16)   {}
func (e *Encoder) U32(v uint32)   {}
func (e *Encoder) U64(v uint64)   {}
func (e *Encoder) I64(v int64)    {}
func (e *Encoder) F64(v float64)  {}
func (e *Encoder) Bytes(v []byte) {}
func (e *Encoder) Data() []byte   { return e.buf }

type Decoder struct {
	rest []byte
	err  error
}

func NewDecoder(b []byte) *Decoder { return &Decoder{rest: b} }

func (d *Decoder) U8() uint8      { return 0 }
func (d *Decoder) Bool() bool     { return false }
func (d *Decoder) U16() uint16    { return 0 }
func (d *Decoder) U32() uint32    { return 0 }
func (d *Decoder) U64() uint64    { return 0 }
func (d *Decoder) I64() int64     { return 0 }
func (d *Decoder) F64() float64   { return 0 }
func (d *Decoder) Bytes() []byte  { return nil }
func (d *Decoder) Len(n int) int  { return 0 }
func (d *Decoder) Err() error     { return d.err }
func (d *Decoder) Finish() error  { return d.err }

const goodVersion = 1

// Good round-trips symmetrically: no findings.
type Good struct {
	A uint64
	B float64
}

func (g *Good) MarshalBinary() ([]byte, error) {
	var e Encoder
	e.U16(goodVersion)
	e.U64(g.A)
	e.F64(g.B)
	return e.Data(), nil
}

func (g *Good) UnmarshalBinary(b []byte) error {
	d := NewDecoder(b)
	if v := d.U16(); v != goodVersion {
		return errBad
	}
	g.A = d.U64()
	g.B = d.F64()
	return d.Finish()
}

const driftVersion = 1

// Drift reads its float field at integer width.
type Drift struct{ X float64 }

func (g *Drift) MarshalBinary() ([]byte, error) {
	var e Encoder
	e.U16(driftVersion)
	e.F64(g.X)
	return e.Data(), nil
}

func (g *Drift) UnmarshalBinary(b []byte) error {
	d := NewDecoder(b)
	d.U16()
	g.X = float64(d.I64()) // want `encode writes F64 \(f64\) but decode reads I64`
	return d.Finish()
}

const shortVersion = 1

// Short's decode stops one field early.
type Short struct{ A, B uint64 }

func (s *Short) MarshalBinary() ([]byte, error) {
	var e Encoder
	e.U16(shortVersion)
	e.U64(s.A)
	e.U64(s.B) // want `never decoded`
	return e.Data(), nil
}

func (s *Short) UnmarshalBinary(b []byte) error { // want `field\(s\) B never decoded`
	d := NewDecoder(b)
	d.U16()
	s.A = d.U64()
	return d.Finish()
}

const orphanVersion = 1

// Orphan has no UnmarshalBinary at all.
type Orphan struct{ A uint64 }

func (o *Orphan) MarshalBinary() ([]byte, error) { // want `no UnmarshalBinary`
	var e Encoder
	e.U16(orphanVersion)
	e.U64(o.A)
	return e.Data(), nil
}

// Bare encodes without a version stamp.
type Bare struct{ A uint64 }

func (b *Bare) MarshalBinary() ([]byte, error) {
	var e Encoder
	e.U64(b.A) // want `does not open with a version stamp`
	return e.Data(), nil
}

func (b *Bare) UnmarshalBinary(blob []byte) error {
	d := NewDecoder(blob)
	b.A = d.U64()
	return d.Finish()
}

const cachedVersion = 1

// Cached opts its derived field out of the encoding.
type Cached struct {
	A     uint64
	cache []byte
}

//netsamp:codec-ignore cache
func (c *Cached) MarshalBinary() ([]byte, error) {
	var e Encoder
	e.U16(cachedVersion)
	e.U64(c.A)
	return e.Data(), nil
}

func (c *Cached) UnmarshalBinary(b []byte) error { // ok: codec-ignore covers both sides
	d := NewDecoder(b)
	d.U16()
	c.A = d.U64()
	return d.Finish()
}

const recVersion = 2

// Annotation-declared pair, symmetric: no findings.
//
//netsamp:codec pair=decodeRecord
func encodeRecord(v uint64, t float64) []byte {
	var e Encoder
	e.U16(recVersion)
	e.U64(v)
	e.F64(t)
	return e.Data()
}

func decodeRecord(b []byte) (uint64, float64, error) {
	d := NewDecoder(b)
	d.U16()
	v := d.U64()
	t := d.F64()
	return v, t, d.Finish()
}

// Annotation-declared pair with a width drift.
//
//netsamp:codec pair=decodeNarrow
func encodeNarrow(v uint64) []byte {
	var e Encoder
	e.U16(recVersion)
	e.U64(v)
	return e.Data()
}

func decodeNarrow(b []byte) (uint64, error) {
	d := NewDecoder(b)
	d.U16()
	v := uint64(d.U32()) // want `encode writes U64 \(u64\) but decode reads U32`
	return v, d.Finish()
}

// A pair directive naming a function that does not exist.
//
//netsamp:codec pair=decodeGone
func encodeGone(v uint64) []byte { // want `no such function`
	var e Encoder
	e.U16(recVersion)
	e.U64(v)
	return e.Data()
}
