// Package determinism is golden-test input: each // want comment marks
// an expected finding on its line.
package determinism

import (
	"math/rand"
	"sync"
	"time"
)

func clocks() {
	_ = time.Now() // want `time\.Now reads the wall clock`

	_ = time.Since(time.Time{}) // want `time\.Since reads the wall clock`

	t := time.Unix(0, 0) // ok: a fixed instant, not a wall-clock read
	_ = t

	//netsamp:nondeterministic-ok logging only, the value is never persisted
	_ = time.Now()

	//netsamp:nondeterministic-ok
	_ = time.Now() // want `requires a reason`
}

func randomness(n int) int {
	_ = rand.Intn(n) // want `draws from the process-global generator`

	r := rand.New(rand.NewSource(1)) // ok: explicitly seeded generator
	return r.Intn(n)                 // ok: method on a local generator
}

func double(x int) int { return 2 * x }

func mapLoops(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v // ok: integer accumulation is commutative and exact
	}

	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = double(v) // ok: keyed writes land on key-determined slots
	}

	count := 0
	for range m {
		count++ // ok: increments are order-free
	}

	seen := false
	for range m {
		seen = true // ok: idempotent literal assignment
	}
	_ = seen

	var keys []int
	for k := range m {
		keys = append(keys, k) // want `materializes iteration order`
	}
	_ = keys

	total := 0.0
	for _, v := range m {
		total += float64(v) // want `float addition is not associative`
	}
	_ = total

	return sum + count + len(out)
}

func firstKey(m map[int]int) int {
	for k := range m {
		return k // want `a return value`
	}
	return 0
}

func lastKey(m map[int]int) int {
	last := 0
	for k := range m {
		last = k // want `an outer variable`
	}
	return last
}

func sortedEscape(m map[int]int) []int {
	var keys []int
	//netsamp:nondeterministic-ok keys are sorted by the caller before use
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

var counter int

func helper() {}

func goroutines(ch chan int, wg *sync.WaitGroup) {
	go func() { ch <- 1 }() // ok: the channel send is visible synchronization

	go func() { // ok: sync call visible in the body
		defer wg.Done()
		counter++
	}()

	go helper() // want `out-of-line body`

	go func() { counter++ }() // want `unsynchronized goroutine`

	//netsamp:nondeterministic-ok metrics-only goroutine, result never read back
	go func() { counter++ }()
}
