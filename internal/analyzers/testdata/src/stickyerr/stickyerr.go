// Package stickyerr is golden-test input: each // want comment marks an
// expected finding on its line. The Decoder reproduces the sticky shape
// (Err/Finish/U64) the analyzer matches on.
package stickyerr

import "os"

type Decoder struct {
	rest []byte
	err  error
}

func NewDecoder(b []byte) *Decoder { return &Decoder{rest: b} }

func (d *Decoder) U16() uint16   { return 0 }
func (d *Decoder) U64() uint64   { return 0 }
func (d *Decoder) F64() float64  { return 0 }
func (d *Decoder) Err() error    { return d.err }
func (d *Decoder) Finish() error { return d.err }

func unconsulted(b []byte) uint64 {
	d := NewDecoder(b) // want `never consulted`
	return d.U64()
}

func consulted(b []byte) (uint64, error) {
	d := NewDecoder(b) // ok: the sticky check happens exactly once below
	v := d.U64()
	return v, d.Finish()
}

func errChecked(b []byte) uint64 {
	d := NewDecoder(b) // ok: consulted through Err
	v := d.U64()
	if d.Err() != nil {
		return 0
	}
	return v
}

func drain(d *Decoder) uint64 {
	v := d.U64()
	if d.Err() != nil {
		return 0
	}
	return v
}

func handedOff(b []byte) uint64 {
	d := NewDecoder(b) // ok: the callee owns the check
	return drain(d)
}

func annotated(b []byte) uint64 {
	//netsamp:err-ok length was pre-validated by the framing layer
	d := NewDecoder(b)
	return d.U64()
}

func dropsCheck(b []byte) {
	d := NewDecoder(b)
	v := d.U64()
	_ = v
	d.Err() // want `Decoder\.Err's error is discarded`
}

func fileDiscards(f *os.File) {
	f.Sync() // want `\(\*os\.File\)\.Sync's error is discarded`

	_ = f.Truncate(0) // want `\(\*os\.File\)\.Truncate's error is discarded`

	defer f.Sync() // want `\(\*os\.File\)\.Sync's error is discarded`

	f.Sync() //netsamp:err-ok best-effort flush; Close re-syncs durably

	if _, err := f.Write(nil); err != nil { // ok: error handled
		return
	}
}

type blob struct{}

func (blob) MarshalBinary() ([]byte, error)  { return nil, nil }
func (*blob) UnmarshalBinary(b []byte) error { return nil }

func mustValidate() error { return nil }

func dropsCritical(b blob) {
	b.MarshalBinary() // want `MarshalBinary's error is discarded`

	mustValidate() // want `mustValidate's error is discarded`

	mustValidate() //netsamp:err-ok advisory check, failure handled by the next solve
}
