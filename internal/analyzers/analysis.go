// Package analyzers is netsamp's static-analysis suite: five custom
// analyzers that mechanically enforce the invariants the repo's
// correctness story rests on — deterministic replay, zero-allocation
// hot paths, encode/decode symmetry of the persistence codec, exact
// float comparison discipline, and sticky-error hygiene.
//
// The suite is built on a small stdlib-only framework that mirrors the
// golang.org/x/tools/go/analysis API (Analyzer, Pass, Diagnostic). The
// container this repo builds in has no module proxy access, so the
// x/tools dependency is deliberately not used; the framework below is
// the subset the five analyzers need, typechecking packages against the
// compiler's export data (see load.go) exactly as a vet tool would.
//
// Annotation grammar (machine-readable comments, all prefixed
// //netsamp: with no space after //):
//
//	//netsamp:noalloc
//	    On a function's doc comment: the function body is checked for
//	    allocating constructs (intraprocedurally; the alloc-pinning
//	    benchmarks remain the end-to-end guard).
//	//netsamp:nondeterministic-ok <reason>
//	    On or immediately above a flagged line: suppresses a
//	    determinism finding. The reason is mandatory.
//	//netsamp:alloc-ok <reason>
//	    On or immediately above a flagged line inside a noalloc
//	    function: suppresses an allocation finding (e.g. a provably
//	    non-escaping closure).
//	//netsamp:floateq-ok <reason>
//	    On or immediately above a float ==/!=: marks the comparison as
//	    an intentional exact fixed-point/bit-pattern comparison.
//	//netsamp:err-ok <reason>
//	    On or immediately above a discarded error: marks the discard as
//	    deliberate best-effort.
//	//netsamp:codec pair=<decodeFunc>
//	    On an encode function's doc comment: names the decode function
//	    (same package) whose read sequence must mirror the writes.
//	//netsamp:codec-ignore <field>[,<field>...]
//	    On a MarshalBinary doc comment: struct fields deliberately
//	    excluded from the encoding.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring the x/tools analysis.Analyzer
// shape so the suite could migrate to the real framework wholesale.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo, when non-nil, restricts the analyzer to packages whose
	// import path it accepts; drivers consult it before running. Tests
	// invoke analyzers directly and bypass the filter.
	AppliesTo func(pkgPath string) bool
	Run       func(*Pass) error
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position `json:"pos"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer run over one typechecked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
	// lineComments maps file → line → the comments whose text starts on
	// that line, for directive lookup.
	lineComments map[*ast.File]map[int][]*ast.Comment
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directivePrefix is the comment prefix of every netsamp annotation.
const directivePrefix = "//netsamp:"

// parseDirective splits a comment into (name, args) if it is a netsamp
// directive, e.g. "//netsamp:alloc-ok reused scratch" →
// ("alloc-ok", "reused scratch").
func parseDirective(c *ast.Comment) (name, args string, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name, args, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(name), strings.TrimSpace(args), true
}

func (p *Pass) buildLineComments() {
	if p.lineComments != nil {
		return
	}
	p.lineComments = make(map[*ast.File]map[int][]*ast.Comment, len(p.Files))
	for _, f := range p.Files {
		m := make(map[int][]*ast.Comment)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				line := p.Fset.Position(c.Pos()).Line
				m[line] = append(m[line], c)
			}
		}
		p.lineComments[f] = m
	}
}

// fileOf returns the *ast.File containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// LineDirective reports whether a directive named name annotates the
// line of pos or the line immediately above it, returning its argument
// string. Directives with a mandatory reason must check args != "".
func (p *Pass) LineDirective(pos token.Pos, name string) (args string, ok bool) {
	p.buildLineComments()
	f := p.fileOf(pos)
	if f == nil {
		return "", false
	}
	line := p.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, c := range p.lineComments[f][l] {
			if n, a, isDir := parseDirective(c); isDir && n == name {
				return a, true
			}
		}
	}
	return "", false
}

// FuncDirective reports whether fn's doc comment carries a directive
// named name, returning its argument string.
func FuncDirective(fn *ast.FuncDecl, name string) (args string, ok bool) {
	if fn.Doc == nil {
		return "", false
	}
	for _, c := range fn.Doc.List {
		if n, a, isDir := parseDirective(c); isDir && n == name {
			return a, true
		}
	}
	return "", false
}

// isTestFile reports whether the file's name ends in _test.go; the
// analyzers skip test files (the bitwise replay tests compare floats
// with == on purpose, and test helpers allocate freely).
func (p *Pass) isTestFile(f *ast.File) bool {
	name := p.Fset.Position(f.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}

// sourceFiles returns the non-test files of the pass.
func (p *Pass) sourceFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if !p.isTestFile(f) {
			out = append(out, f)
		}
	}
	return out
}

// RunAnalyzers applies every analyzer (honoring AppliesTo) to every
// package and returns the findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		NoallocAnalyzer,
		CodecPairAnalyzer,
		FloatCmpAnalyzer,
		StickyErrAnalyzer,
	}
}
