// Package analyzers is netsamp's static-analysis suite: five custom
// analyzers that mechanically enforce the invariants the repo's
// correctness story rests on — deterministic replay, zero-allocation
// hot paths, encode/decode symmetry of the persistence codec, exact
// float comparison discipline, and sticky-error hygiene.
//
// The suite is built on a small stdlib-only framework that mirrors the
// golang.org/x/tools/go/analysis API (Analyzer, Pass, Diagnostic). The
// container this repo builds in has no module proxy access, so the
// x/tools dependency is deliberately not used; the framework below is
// the subset the five analyzers need, typechecking packages against the
// compiler's export data (see load.go) exactly as a vet tool would.
//
// Annotation grammar (machine-readable comments, all prefixed
// //netsamp: with no space after //):
//
//	//netsamp:noalloc
//	    On a function's doc comment: the function body is checked for
//	    allocating constructs (intraprocedurally; the alloc-pinning
//	    benchmarks remain the end-to-end guard).
//	//netsamp:nondeterministic-ok <reason>
//	    On or immediately above a flagged line: suppresses a
//	    determinism finding. The reason is mandatory.
//	//netsamp:alloc-ok <reason>
//	    On or immediately above a flagged line inside a noalloc
//	    function: suppresses an allocation finding (e.g. a provably
//	    non-escaping closure).
//	//netsamp:floateq-ok <reason>
//	    On or immediately above a float ==/!=: marks the comparison as
//	    an intentional exact fixed-point/bit-pattern comparison.
//	//netsamp:err-ok <reason>
//	    On or immediately above a discarded error: marks the discard as
//	    deliberate best-effort.
//	//netsamp:codec pair=<decodeFunc> [reason]
//	    On an encode function's doc comment: names the decode function
//	    (same package) whose read sequence must mirror the writes.
//	//netsamp:codec-ignore <field>[,<field>...] [reason]
//	    On a MarshalBinary doc comment: struct fields deliberately
//	    excluded from the encoding.
//	//netsamp:guardedby <mu> [reason]
//	    On a struct field declaration: the field may be read or written
//	    only while <mu> (a sibling mutex field) is held — the access
//	    site's enclosing function must lock <mu> first, carry a
//	    //netsamp:holds <mu> contract, or be a constructor (name
//	    beginning new/New).
//	//netsamp:holds <mu> [reason]
//	    On a function's doc comment: the caller-holds-lock contract.
//	    Accesses to <mu>-guarded fields inside the function are allowed,
//	    and every call of the function is itself checked for the lock.
//	//netsamp:guarded-ok <reason>
//	    On or immediately above a guarded-field access: suppresses a
//	    guardedby finding (e.g. a read after all writers joined).
//	//netsamp:atomic-ok <reason>
//	    On or immediately above a plain access to an atomically-accessed
//	    field: marks the mixed access as provably race-free.
//	//netsamp:allocflow-ok <reason>
//	    On or immediately above a call inside a //netsamp:noalloc
//	    function: the callee is not annotated (or not resolvable) but is
//	    known allocation-free.
//	//netsamp:ctx-ok <reason>
//	    On or immediately above a goroutine launch, in-loop sleep or
//	    blocking channel send: cancellation is handled by other means
//	    (e.g. closing the socket the loop reads).
//
// Every directive that takes a structured first argument (codec pair=,
// codec-ignore's field list, guardedby's and holds' mutex name) treats
// only the first whitespace-separated token as structure; the remainder
// of the line is an uninterpreted free-text reason, so reasons may
// contain ':', '=' or anything else.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring the x/tools analysis.Analyzer
// shape so the suite could migrate to the real framework wholesale.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo, when non-nil, restricts the analyzer to packages whose
	// import path it accepts; drivers consult it before running. Tests
	// invoke analyzers directly and bypass the filter.
	AppliesTo func(pkgPath string) bool
	Run       func(*Pass) error
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position `json:"pos"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer run over one typechecked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// DepFacts maps import paths to the syntax-derived facts of every
	// package the driver has visited (the analyzed package's module-local
	// dependency closure, plus itself). Nil entries and missing paths
	// mean "no facts" — interprocedural checks must degrade to demanding
	// a call-site annotation, never to silently passing.
	DepFacts map[string]*PackageFacts

	diags *[]Diagnostic
	// lineComments maps file → line → the comments whose text starts on
	// that line, for directive lookup.
	lineComments map[*ast.File]map[int][]*ast.Comment
	// codeLines maps file → lines containing non-comment tokens. A
	// directive on such a line annotates that line only — it never
	// doubles as the "line above" annotation of the next line, so a
	// trailing directive on one struct field cannot leak to the field
	// below it.
	codeLines map[*ast.File]map[int]bool
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directivePrefix is the comment prefix of every netsamp annotation.
const directivePrefix = "//netsamp:"

// parseDirective splits a comment into (name, args) if it is a netsamp
// directive, e.g. "//netsamp:alloc-ok reused scratch" →
// ("alloc-ok", "reused scratch"). args is the untokenized remainder of
// the line: for reason-only directives it IS the reason, verbatim, so
// reasons containing ':' or '=' survive intact.
func parseDirective(c *ast.Comment) (name, args string, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name, args, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(name), strings.TrimSpace(args), true
}

// DirectiveArg splits a directive's argument string into its structured
// first token and the free-text remainder (the reason). Directives whose
// grammar is `<token> [reason]` — codec pair=, guardedby, holds,
// codec-ignore — must parse through this so the reason is never
// tokenized further.
func DirectiveArg(args string) (first, reason string) {
	first, reason, _ = strings.Cut(args, " ")
	return strings.TrimSpace(first), strings.TrimSpace(reason)
}

func (p *Pass) buildLineComments() {
	if p.lineComments != nil {
		return
	}
	p.lineComments = make(map[*ast.File]map[int][]*ast.Comment, len(p.Files))
	p.codeLines = make(map[*ast.File]map[int]bool, len(p.Files))
	for _, f := range p.Files {
		m := make(map[int][]*ast.Comment)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				line := p.Fset.Position(c.Pos()).Line
				m[line] = append(m[line], c)
			}
		}
		p.lineComments[f] = m
		code := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case nil, *ast.Comment, *ast.CommentGroup:
				return true
			}
			code[p.Fset.Position(n.Pos()).Line] = true
			code[p.Fset.Position(n.End()).Line] = true
			return true
		})
		p.codeLines[f] = code
	}
}

// fileOf returns the *ast.File containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// LineDirective reports whether a directive named name annotates the
// line of pos or the line immediately above it, returning its argument
// string. Directives with a mandatory reason must check args != "".
func (p *Pass) LineDirective(pos token.Pos, name string) (args string, ok bool) {
	p.buildLineComments()
	f := p.fileOf(pos)
	if f == nil {
		return "", false
	}
	line := p.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		// A directive trailing code on the line above annotates that
		// line, not this one (field-list leakage otherwise).
		if l == line-1 && p.codeLines[f][l] {
			continue
		}
		for _, c := range p.lineComments[f][l] {
			if n, a, isDir := parseDirective(c); isDir && n == name {
				return a, true
			}
		}
	}
	return "", false
}

// FuncDirective reports whether fn's doc comment carries a directive
// named name, returning its argument string.
func FuncDirective(fn *ast.FuncDecl, name string) (args string, ok bool) {
	if fn.Doc == nil {
		return "", false
	}
	for _, c := range fn.Doc.List {
		if n, a, isDir := parseDirective(c); isDir && n == name {
			return a, true
		}
	}
	return "", false
}

// isTestFile reports whether the file's name ends in _test.go; the
// analyzers skip test files (the bitwise replay tests compare floats
// with == on purpose, and test helpers allocate freely).
func (p *Pass) isTestFile(f *ast.File) bool {
	name := p.Fset.Position(f.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}

// sourceFiles returns the non-test files of the pass.
func (p *Pass) sourceFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if !p.isTestFile(f) {
			out = append(out, f)
		}
	}
	return out
}

// RunAnalyzers applies every analyzer (honoring AppliesTo) to every
// package and returns the findings sorted by position. Facts-only
// packages (module-local dependencies outside the requested patterns)
// contribute their PackageFacts to every pass but are not themselves
// analyzed.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	depFacts := make(map[string]*PackageFacts, len(pkgs))
	for _, pkg := range pkgs {
		if pkg.Facts == nil {
			pkg.Facts = ExtractFacts(pkg.Files)
		}
		depFacts[pkg.Path] = pkg.Facts
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.FactsOnly {
			continue
		}
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				DepFacts: depFacts,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		NoallocAnalyzer,
		NoallocFlowAnalyzer,
		AtomicFieldAnalyzer,
		GuardedByAnalyzer,
		CtxHygieneAnalyzer,
		CodecPairAnalyzer,
		CodecVerAnalyzer,
		FloatCmpAnalyzer,
		StickyErrAnalyzer,
	}
}

// PackageFacts are the syntax-derived facts one package exports to its
// dependents. They cross package boundaries where full type information
// does not: the standalone driver extracts them from every module-local
// package it lists, and the vettool protocol persists them in the
// per-package .vetx files the go command threads between invocations.
type PackageFacts struct {
	// Noalloc lists the functions annotated //netsamp:noalloc, as "Fn"
	// for package-level functions and "Type.Method" for methods — the
	// vocabulary noallocflow resolves cross-package callees against.
	Noalloc []string `json:"noalloc,omitempty"`
}

// HasNoalloc reports whether the facts record key ("Fn" or
// "Type.Method") as a noalloc-annotated function.
func (f *PackageFacts) HasNoalloc(key string) bool {
	if f == nil {
		return false
	}
	for _, k := range f.Noalloc {
		if k == key {
			return true
		}
	}
	return false
}

// ExtractFacts scans parsed files — syntax only, no type information —
// for the facts dependent packages need. It must stay syntax-only: the
// vettool extracts facts from dependency packages it never typechecks.
func ExtractFacts(files []*ast.File) *PackageFacts {
	facts := &PackageFacts{}
	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := FuncDirective(fn, "noalloc"); !ok {
				continue
			}
			key := fn.Name.Name
			if tn := recvTypeName(fn); tn != "" {
				key = tn + "." + fn.Name.Name
			}
			facts.Noalloc = append(facts.Noalloc, key)
		}
	}
	sort.Strings(facts.Noalloc)
	return facts
}
