package analyzers

import "testing"

func TestGuardedByGolden(t *testing.T) {
	runGolden(t, GuardedByAnalyzer, "guardedby")
}
