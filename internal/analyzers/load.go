package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadPackages loads the packages matching patterns in the module at
// dir, typechecking each against the compiler's export data. The go
// command is invoked once (`go list -export -deps -json`), which builds
// any stale export data as a side effect — the same data `go vet` hands
// a vettool, so the standalone driver and the vettool protocol see
// identical type information. Test files are not loaded.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(metas))
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}
	var pkgs []*Package
	for _, m := range metas {
		if m.Standard || m.DepOnly {
			continue
		}
		if m.Error != nil {
			return nil, fmt.Errorf("analyzers: load %s: %s", m.ImportPath, m.Error.Err)
		}
		var files []string
		for _, f := range m.GoFiles {
			files = append(files, filepath.Join(m.Dir, f))
		}
		pkg, err := TypeCheck(m.ImportPath, files, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analyzers: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var metas []listedPackage
	for {
		var m listedPackage
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analyzers: decode go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// ExportLookup returns an importer lookup function resolving import
// paths through an importPath → export-data-file map (optionally via an
// importMap of source paths to canonical ones, as a vet config supplies).
func ExportLookup(importMap, exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analyzers: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// TypeCheck parses and typechecks one package from its source files,
// resolving imports through export data.
func TypeCheck(importPath string, files []string, exports map[string]string) (*Package, error) {
	return typeCheckMapped(importPath, files, nil, exports)
}

// TypeCheckVet is TypeCheck for the vettool protocol, where the vet
// config supplies both an import map (source path → canonical path) and
// the per-package export data files.
func TypeCheckVet(importPath string, files []string, importMap, packageFile map[string]string) (*Package, error) {
	return typeCheckMapped(importPath, files, importMap, packageFile)
}

func typeCheckMapped(importPath string, files []string, importMap, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analyzers: parse %s: %w", f, err)
		}
		parsed = append(parsed, af)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", ExportLookup(importMap, exports)),
	}
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("analyzers: typecheck %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: parsed, Types: tpkg, Info: info}, nil
}

// NewInfo allocates a fully populated types.Info.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
