package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded package ready for analysis. FactsOnly packages
// are module-local dependencies of the requested patterns: their files
// are parsed (so ExtractFacts sees their annotations) but they are not
// typechecked or analyzed themselves.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package // nil for facts-only packages
	Info      *types.Info    // nil for facts-only packages
	Facts     *PackageFacts
	FactsOnly bool
}

// LoadErrorKind classifies a package-loading failure. Every failure mode
// of the loader — a pattern that does not resolve, a vendored or broken
// package the go command refuses, a source file that does not parse,
// missing export data, a typecheck failure — surfaces as a *LoadError of
// one of these kinds, never as a panic.
type LoadErrorKind int

const (
	// LoadList: `go list` failed (unknown pattern, inconsistent
	// vendoring, a build-broken target whose export data could not be
	// produced) or reported a per-package error.
	LoadList LoadErrorKind = iota
	// LoadParse: a source file failed to parse.
	LoadParse
	// LoadTypecheck: the package parsed but did not typecheck.
	LoadTypecheck
	// LoadMissingExport: an import could not be resolved because no
	// export data was supplied for it.
	LoadMissingExport
)

func (k LoadErrorKind) String() string {
	switch k {
	case LoadList:
		return "list"
	case LoadParse:
		return "parse"
	case LoadTypecheck:
		return "typecheck"
	case LoadMissingExport:
		return "missing-export-data"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// LoadError is a typed package-loading failure: which package (or
// pattern), which stage, and the underlying cause.
type LoadError struct {
	Kind LoadErrorKind
	Path string // import path, pattern, or file that failed
	Err  error
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("analyzers: %s %s: %v", e.Kind, e.Path, e.Err)
}

func (e *LoadError) Unwrap() error { return e.Err }

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadPackages loads the packages matching patterns in the module at
// dir, typechecking each against the compiler's export data. The go
// command is invoked once (`go list -export -deps -json`), which builds
// any stale export data as a side effect — the same data `go vet` hands
// a vettool, so the standalone driver and the vettool protocol see
// identical type information. Test files are not loaded.
//
// Module-local dependencies outside the patterns come back as facts-only
// packages: parsed for their //netsamp: annotations (so interprocedural
// checks resolve cross-package callees) but not analyzed.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, &LoadError{Kind: LoadList, Path: dir, Err: err}
	}
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(metas))
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}
	var pkgs []*Package
	for _, m := range metas {
		if m.Standard {
			continue
		}
		if m.DepOnly {
			// Facts-only: a dependency inside this module still carries
			// annotations the analyzed packages rely on.
			if !inDir(m.Dir, absDir) {
				continue
			}
			pkg, err := parseFactsOnly(m)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
			continue
		}
		if m.Error != nil {
			return nil, &LoadError{Kind: LoadList, Path: m.ImportPath, Err: fmt.Errorf("%s", m.Error.Err)}
		}
		var files []string
		for _, f := range m.GoFiles {
			files = append(files, filepath.Join(m.Dir, f))
		}
		pkg, err := TypeCheck(m.ImportPath, files, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// inDir reports whether path lies inside (or is) dir.
func inDir(path, dir string) bool {
	if path == "" {
		return false
	}
	return path == dir || strings.HasPrefix(path, dir+string(filepath.Separator))
}

// parseFactsOnly parses one dependency package for fact extraction.
func parseFactsOnly(m listedPackage) (*Package, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, f := range m.GoFiles {
		path := filepath.Join(m.Dir, f)
		af, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, &LoadError{Kind: LoadParse, Path: path, Err: err}
		}
		parsed = append(parsed, af)
	}
	return &Package{
		Path:      m.ImportPath,
		Fset:      fset,
		Files:     parsed,
		Facts:     ExtractFacts(parsed),
		FactsOnly: true,
	}, nil
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, &LoadError{
			Kind: LoadList,
			Path: strings.Join(patterns, " "),
			Err:  fmt.Errorf("go list: %v\n%s", err, stderr.String()),
		}
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var metas []listedPackage
	for {
		var m listedPackage
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, &LoadError{
				Kind: LoadList,
				Path: strings.Join(patterns, " "),
				Err:  fmt.Errorf("decode go list output: %w", err),
			}
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// ExportLookup returns an importer lookup function resolving import
// paths through an importPath → export-data-file map (optionally via an
// importMap of source paths to canonical ones, as a vet config supplies).
func ExportLookup(importMap, exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analyzers: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// TypeCheck parses and typechecks one package from its source files,
// resolving imports through export data.
func TypeCheck(importPath string, files []string, exports map[string]string) (*Package, error) {
	return typeCheckMapped(importPath, files, nil, exports)
}

// TypeCheckVet is TypeCheck for the vettool protocol, where the vet
// config supplies both an import map (source path → canonical path) and
// the per-package export data files.
func TypeCheckVet(importPath string, files []string, importMap, packageFile map[string]string) (*Package, error) {
	return typeCheckMapped(importPath, files, importMap, packageFile)
}

func typeCheckMapped(importPath string, files []string, importMap, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, &LoadError{Kind: LoadParse, Path: f, Err: err}
		}
		parsed = append(parsed, af)
	}
	info := NewInfo()
	var missing []string
	lookup := ExportLookup(importMap, exports)
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			rc, err := lookup(path)
			if err != nil {
				missing = append(missing, path)
			}
			return rc, err
		}),
	}
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		if len(missing) > 0 {
			return nil, &LoadError{
				Kind: LoadMissingExport,
				Path: importPath,
				Err:  fmt.Errorf("no export data for %s: %w", strings.Join(missing, ", "), err),
			}
		}
		return nil, &LoadError{Kind: LoadTypecheck, Path: importPath, Err: err}
	}
	return &Package{
		Path:  importPath,
		Fset:  fset,
		Files: parsed,
		Types: tpkg,
		Info:  info,
		Facts: ExtractFacts(parsed),
	}, nil
}

// NewInfo allocates a fully populated types.Info.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
