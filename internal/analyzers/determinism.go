package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ReplayCriticalPackages are the packages whose code runs inside the
// deterministic replay boundary: every decision they compute must be a
// pure function of (seed, interval, inputs), because crash recovery
// re-executes them and cross-checks the journal bit-for-bit (DESIGN §9).
var ReplayCriticalPackages = []string{
	"netsamp/internal/core",
	"netsamp/internal/control",
	"netsamp/internal/daemon",
	"netsamp/internal/state",
	"netsamp/internal/eval",
	"netsamp/internal/plan",
	"netsamp/internal/loadtrack",
	"netsamp/internal/faults",
	// netflow is inside the fence because its outputs feed replayed
	// decisions: flow-table sweeps, exporter listings, snapshots and
	// estimator bins must not inherit map iteration order. Its live-IO
	// edges (socket loops) carry explicit nondeterministic-ok
	// annotations.
	"netsamp/internal/netflow",
}

// IsReplayCritical reports whether pkgPath is inside the replay fence.
func IsReplayCritical(pkgPath string) bool {
	for _, p := range ReplayCriticalPackages {
		if pkgPath == p {
			return true
		}
	}
	return false
}

// DeterminismAnalyzer forbids the nondeterminism sources that break
// bit-identical replay in the replay-critical packages:
//
//   - wall-clock reads (time.Now, time.Since, time.Until);
//   - the process-global math/rand generators (package-level functions
//     draw from a shared, racy, unseedable-per-run source — all
//     randomness must flow through split-seeded rng.Source streams);
//   - map-range loops whose body feeds iteration-order-dependent
//     results outward (appends, calls, writes to outer variables,
//     float accumulation, returns using the iteration variables);
//   - `go` statements with no visible synchronization in the spawned
//     body (a channel operation or sync.* call) — a fire-and-forget
//     goroutine racing the decision path cannot be replayed.
//
// The escape hatch is `//netsamp:nondeterministic-ok <reason>` on (or
// immediately above) the flagged line; the reason is mandatory.
var DeterminismAnalyzer = &Analyzer{
	Name:      "determinism",
	Doc:       "forbid wall-clock, global rand, order-dependent map ranges and unsynchronized goroutines in replay-critical packages",
	AppliesTo: IsReplayCritical,
	Run:       runDeterminism,
}

// forbiddenTimeFuncs are the wall-clock reads that poison a replay.
var forbiddenTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// allowedGlobalRand are the math/rand package-level constructors that
// build independent, explicitly seeded generators (fine) as opposed to
// drawing from the process-global source (not fine).
var allowedGlobalRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkForbiddenCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			case *ast.GoStmt:
				checkGoStmt(pass, n)
			}
			return true
		})
	}
	return nil
}

// allowNondet reports whether the line is covered by a well-formed
// nondeterministic-ok directive; a directive without a reason is itself
// a finding.
func allowNondet(pass *Pass, pos token.Pos) bool {
	reason, ok := pass.LineDirective(pos, "nondeterministic-ok")
	if !ok {
		return false
	}
	if reason == "" {
		pass.Reportf(pos, "netsamp:nondeterministic-ok requires a reason")
		return true // annotated, if sloppily; the missing reason is the finding
	}
	return true
}

func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	obj := calleeObject(pass.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[fn.Name()] && !allowNondet(pass, call.Pos()) {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock inside the replay fence; derive timing from the interval index or annotate //netsamp:nondeterministic-ok <reason>", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedGlobalRand[fn.Name()] && !allowNondet(pass, call.Pos()) {
			pass.Reportf(call.Pos(),
				"%s.%s draws from the process-global generator; use a split-seeded rng.Source or annotate //netsamp:nondeterministic-ok <reason>", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags map-range loops whose body is order-sensitive.
//
// Order-INsensitive (allowed) operations inside the body:
//   - assignments whose left side is an index expression (m[k] = v —
//     each iteration touches its own key-derived slot);
//   - integer/boolean compound updates of outer variables (count++,
//     sum += n for integer n, seen = true, flags |= bit): commutative
//     and associative, so iteration order cannot show;
//   - delete(m, k), len/cap, purely local computation, break/continue.
//
// Everything else that lets iteration order escape — append, calls
// whose arguments use the iteration variables, float accumulation,
// plain assignment of iteration-derived values to outer variables,
// returns, channel sends — is flagged.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.Info.Types[rng.X].Type
	if !isMapType(t) {
		return
	}
	if allowNondet(pass, rng.Pos()) {
		return
	}
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := definedObj(pass.Info, id); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	body := rng.Body
	var report func(pos token.Pos, what string)
	reported := false
	report = func(pos token.Pos, what string) {
		if reported {
			return
		}
		reported = true
		pass.Reportf(pos, "map iteration order reaches %s; iterate sorted keys (topology.SortedKeys) or annotate //netsamp:nondeterministic-ok <reason>", what)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(pass.Info, n, "len") || isBuiltin(pass.Info, n, "cap") ||
				isBuiltin(pass.Info, n, "delete") || isBuiltin(pass.Info, n, "append") {
				// append is handled via its enclosing assignment below;
				// delete/len/cap are order-insensitive.
				return true
			}
			for _, arg := range n.Args {
				if mentionsObjects(pass.Info, arg, loopVars) {
					report(n.Pos(), "a call argument")
					return false
				}
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, n, body, loopVars, report)
			if allKeyedWrites(pass, n) {
				// m[k] = f(k, v): the keyed slot absorbs the value, so
				// calls inside the right-hand side are order-free too.
				return false
			}
		case *ast.IncDecStmt:
			// count++ / count-- is commutative for integers; for floats
			// ±1 is still exact, so both are fine.
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentionsObjects(pass.Info, res, loopVars) {
					report(n.Pos(), "a return value (which entry returns first depends on order)")
					return false
				}
			}
		case *ast.SendStmt:
			report(n.Pos(), "a channel send")
			return false
		}
		return true
	})
}

// checkMapRangeAssign classifies one assignment inside a map-range body.
func checkMapRangeAssign(pass *Pass, as *ast.AssignStmt, body *ast.BlockStmt, loopVars map[types.Object]bool, report func(token.Pos, string)) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		// Appending inside a map range materializes the iteration order.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(pass.Info, call, "append") {
			report(as.Pos(), "an append (the slice materializes iteration order)")
			return
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			// m[k] = v: keyed writes land on key-determined slots.
			continue
		case *ast.Ident:
			obj := pass.Info.Uses[l]
			if obj == nil {
				obj = pass.Info.Defs[l]
			}
			if obj == nil || declaredWithin(pass, obj, body) {
				continue // local to the loop body
			}
			if !mentionsObjects(pass.Info, rhs, loopVars) && as.Tok == token.ASSIGN && isOrderFreeLiteral(rhs) {
				continue // seen = true and friends
			}
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
				t := obj.Type()
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					continue // integer accumulation is exact and commutative
				}
				report(as.Pos(), "a non-integer accumulation (float addition is not associative)")
				return
			case token.ASSIGN, token.DEFINE:
				if mentionsObjects(pass.Info, rhs, loopVars) {
					report(as.Pos(), "an outer variable (which entry wins depends on order)")
					return
				}
				continue
			default:
				report(as.Pos(), "an outer variable")
				return
			}
		default:
			// Selector/star assignments to outer state.
			if mentionsObjects(pass.Info, rhs, loopVars) || mentionsObjects(pass.Info, lhs, loopVars) {
				report(as.Pos(), "outer state")
				return
			}
		}
	}
}

// allKeyedWrites reports whether every left-hand side of as is an index
// expression and no right-hand side is an append: such an assignment
// lands each iteration's value in its own key-determined slot, so the
// whole statement (calls included) is order-insensitive.
func allKeyedWrites(pass *Pass, as *ast.AssignStmt) bool {
	for _, lhs := range as.Lhs {
		if _, ok := ast.Unparen(lhs).(*ast.IndexExpr); !ok {
			return false
		}
	}
	for _, rhs := range as.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(pass.Info, call, "append") {
			return false
		}
	}
	return true
}

// isOrderFreeLiteral reports whether e is a constant literal/identifier
// whose assignment is idempotent across iterations (true, 0, "x").
func isOrderFreeLiteral(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return e.Name == "true" || e.Name == "false" || e.Name == "nil"
	}
	return false
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(pass *Pass, obj types.Object, node ast.Node) bool {
	return obj.Pos() != token.NoPos && node.Pos() <= obj.Pos() && obj.Pos() <= node.End()
}

// checkGoStmt flags goroutines with no visible synchronization: a
// spawned body that neither touches a channel nor calls into sync is
// invisible to the replay — whatever it computes races the decision
// sequence.
func checkGoStmt(pass *Pass, g *ast.GoStmt) {
	if allowNondet(pass, g.Pos()) {
		return
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		// A goroutine launched on a named function: its body is out of
		// scope here, so demand the annotation.
		pass.Reportf(g.Pos(), "goroutine with out-of-line body inside the replay fence; annotate //netsamp:nondeterministic-ok <reason> after verifying its synchronization")
		return
	}
	synced := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if synced {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			synced = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				synced = true
			}
		case *ast.RangeStmt:
			if t := pass.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					synced = true
				}
			}
		case *ast.CallExpr:
			if obj := calleeObject(pass.Info, n); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				synced = true
			}
		}
		return true
	})
	if !synced {
		pass.Reportf(g.Pos(), "unsynchronized goroutine inside the replay fence (no channel operation or sync call in its body); annotate //netsamp:nondeterministic-ok <reason> if the race is provably benign")
	}
}
