package analyzers

import "testing"

func TestCtxHygieneGolden(t *testing.T) {
	runGolden(t, CtxHygieneAnalyzer, "ctxhygiene")
}

func TestSupervisedPackages(t *testing.T) {
	for _, p := range SupervisedPackages {
		if !IsSupervised(p) {
			t.Errorf("IsSupervised(%q) = false, want true", p)
		}
	}
	for _, p := range []string{"netsamp/internal/core", "netsamp/internal/netflow", "fmt"} {
		if IsSupervised(p) {
			t.Errorf("IsSupervised(%q) = true, want false", p)
		}
	}
}
