package analyzers

import "testing"

func TestFloatCmpGolden(t *testing.T) {
	runGolden(t, FloatCmpAnalyzer, "floatcmp")
}
