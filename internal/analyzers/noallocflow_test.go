package analyzers

import (
	"os"
	"path/filepath"
	"testing"
)

// typeCheckSource typechecks a single in-memory source file as package
// importPath, resolving imports through the shared testdata exports.
func typeCheckSource(t *testing.T, importPath, src string) *Package {
	t.Helper()
	path := filepath.Join(t.TempDir(), importPath+".go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatalf("write source: %v", err)
	}
	pkg, err := TypeCheck(importPath, []string{path}, testExports(t))
	if err != nil {
		t.Fatalf("typecheck %s: %v", importPath, err)
	}
	return pkg
}

func TestNoallocFlowGolden(t *testing.T) {
	runGolden(t, NoallocFlowAnalyzer, "noallocflow")
}

// TestNoallocFlowDepFacts exercises the cross-package path: a callee
// annotated in a dependency's PackageFacts is accepted; the same call
// without facts is a finding. The golden package cannot carry a second
// package, so the facts map is injected directly.
func TestNoallocFlowDepFacts(t *testing.T) {
	src := `package depfacts

import "math/rand"

//netsamp:noalloc
func draw(r *rand.Rand) float64 {
	return r.Float64()
}
`
	for _, tc := range []struct {
		name     string
		facts    map[string]*PackageFacts
		findings int
	}{
		{"annotated-in-dep", map[string]*PackageFacts{
			"math/rand": {Noalloc: []string{"Rand.Float64"}},
		}, 0},
		{"no-facts", nil, 1},
		{"facts-without-key", map[string]*PackageFacts{
			"math/rand": {Noalloc: []string{"Rand.Int63"}},
		}, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pkg := typeCheckSource(t, "depfacts", src)
			var diags []Diagnostic
			pass := &Pass{
				Analyzer: NoallocFlowAnalyzer,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				DepFacts: tc.facts,
				diags:    &diags,
			}
			if err := NoallocFlowAnalyzer.Run(pass); err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(diags) != tc.findings {
				t.Fatalf("got %d findings, want %d: %v", len(diags), tc.findings, diags)
			}
		})
	}
}
