package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicFieldAnalyzer enforces all-or-nothing atomicity on struct
// fields: once any site in a package accesses a field through a
// sync/atomic function (atomic.AddUint64(&s.n, …), atomic.LoadUint64,
// …), every other access to that field must be atomic too. A single
// plain read racing an atomic increment is the exact bug class the
// ingest tier's stats snapshots are exposed to — the race detector only
// catches it when a test happens to interleave, while this check
// catches it at the access site.
//
// Two escape routes exist: constructors (functions whose name begins
// new/New — the value is not yet shared) and an explicit
// `//netsamp:atomic-ok <reason>` on the access line for provably
// race-free mixes (e.g. a read after every writer goroutine joined).
//
// The analyzer also checks 64-bit placement: a plain int64/uint64 field
// accessed through the 64-bit sync/atomic functions must sit at an
// 8-byte-aligned offset under 32-bit layout rules (the first word of
// the struct, or preceded only by 8-byte-aligned fields), or the
// atomics panic on 386/ARM. Fields of the typed atomic.Int64/Uint64
// kinds are exempt — the runtime aligns them itself.
var AtomicFieldAnalyzer = &Analyzer{
	Name: "atomicfield",
	Doc:  "check that atomically-accessed struct fields are accessed atomically everywhere and 64-bit-aligned",
	Run:  runAtomicField,
}

// atomicFns maps sync/atomic function names to whether they operate on
// 64-bit values (for the alignment check). Pointer-typed and Value
// operations are irrelevant to field-mixing, so only the integer/word
// families are listed.
var atomicFns = map[string]bool{
	"AddInt32": false, "AddInt64": true, "AddUint32": false, "AddUint64": true, "AddUintptr": false,
	"LoadInt32": false, "LoadInt64": true, "LoadUint32": false, "LoadUint64": true, "LoadUintptr": false,
	"StoreInt32": false, "StoreInt64": true, "StoreUint32": false, "StoreUint64": true, "StoreUintptr": false,
	"SwapInt32": false, "SwapInt64": true, "SwapUint32": false, "SwapUint64": true, "SwapUintptr": false,
	"CompareAndSwapInt32": false, "CompareAndSwapInt64": true,
	"CompareAndSwapUint32": false, "CompareAndSwapUint64": true, "CompareAndSwapUintptr": false,
}

// align32 computes struct layout the way a 32-bit gc target does; a
// 64-bit counter that this layout misaligns will fault under atomic
// access on 386/ARM even though amd64 runs it fine.
var align32 = types.SizesFor("gc", "386")

func runAtomicField(pass *Pass) error {
	// Pass 1: collect the atomically-accessed fields and the exact
	// selector nodes that appear as sync/atomic arguments.
	atomicFields := make(map[*types.Var][]token.Pos) // field → atomic-access positions
	atomicSelectors := make(map[*ast.SelectorExpr]bool)
	sixtyFour := make(map[*types.Var]bool)
	for _, f := range pass.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pass.Info, call)
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			is64, known := atomicFns[fn.Name()]
			if !known {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				s, ok := pass.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					continue
				}
				field, ok := s.Obj().(*types.Var)
				if !ok || field.Pkg() != pass.Pkg {
					continue
				}
				atomicFields[field] = append(atomicFields[field], sel.Pos())
				atomicSelectors[sel] = true
				if is64 {
					sixtyFour[field] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other access to those fields must be atomic.
	for _, f := range pass.sourceFiles() {
		var stack []ast.Node // ast.Inspect emits one nil per pushed node
		inConstructor := func() bool {
			for i := len(stack) - 1; i >= 0; i-- {
				if fd, ok := stack[i].(*ast.FuncDecl); ok {
					return isConstructorName(fd.Name.Name)
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSelectors[sel] {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			field, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			if _, tracked := atomicFields[field]; !tracked {
				return true
			}
			if inConstructor() {
				return true
			}
			if reason, ok := pass.LineDirective(sel.Pos(), "atomic-ok"); ok {
				if reason == "" {
					pass.Reportf(sel.Pos(), "netsamp:atomic-ok requires a reason")
				}
				return true
			}
			pass.Reportf(sel.Pos(),
				"field %s is accessed with sync/atomic elsewhere in this package but plainly here; use the atomic accessor (or //netsamp:atomic-ok <reason> if the mix is provably race-free)",
				field.Name())
			return true
		})
	}

	// Pass 3: 64-bit alignment placement under 32-bit layout.
	for field := range sixtyFour {
		checkAlign64(pass, field)
	}
	return nil
}

// isConstructorName reports whether a function name marks a constructor
// (the value under construction is not yet shared between goroutines).
func isConstructorName(name string) bool {
	return strings.HasPrefix(name, "new") || strings.HasPrefix(name, "New")
}

// checkAlign64 verifies the declaring struct places field at an
// 8-byte-aligned offset under 32-bit layout.
func checkAlign64(pass *Pass, field *types.Var) {
	owner := findOwnerStruct(pass, field)
	if owner == nil {
		return
	}
	fields := make([]*types.Var, owner.NumFields())
	idx := -1
	for i := 0; i < owner.NumFields(); i++ {
		fields[i] = owner.Field(i)
		if owner.Field(i) == field {
			idx = i
		}
	}
	if idx < 0 {
		return
	}
	offsets := align32.Offsetsof(fields)
	if offsets[idx]%8 != 0 {
		pass.Reportf(field.Pos(),
			"64-bit atomic field %s sits at offset %d under 32-bit layout; move it to the front of the struct (or after only 8-byte-aligned fields) so sync/atomic does not fault on 386/ARM",
			field.Name(), offsets[idx])
	}
}

// findOwnerStruct locates the struct type that declares field.
func findOwnerStruct(pass *Pass, field *types.Var) *types.Struct {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return st
			}
		}
	}
	// Unnamed struct types (fields of anonymous structs): search the
	// syntax for the declaring struct literal via type info.
	for _, f := range pass.Files {
		var found *types.Struct
		ast.Inspect(f, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			stExpr, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[stExpr]
			if !ok {
				return true
			}
			st, ok := tv.Type.(*types.Struct)
			if !ok {
				return true
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == field {
					found = st
					return false
				}
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	return nil
}
