package analyzers

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// wantLoadError asserts err is a *LoadError of the given kind.
func wantLoadError(t *testing.T, err error, kind LoadErrorKind) *LoadError {
	t.Helper()
	if err == nil {
		t.Fatalf("got nil error, want *LoadError kind %s", kind)
	}
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("got %T (%v), want *LoadError", err, err)
	}
	if le.Kind != kind {
		t.Fatalf("got kind %s (%v), want %s", le.Kind, le, kind)
	}
	if le.Unwrap() == nil {
		t.Fatalf("LoadError of kind %s carries no cause", kind)
	}
	return le
}

func TestLoadPackagesUnknownPattern(t *testing.T) {
	_, err := LoadPackages(".", []string{"netsamp/internal/doesnotexist"})
	wantLoadError(t, err, LoadList)
}

// TestLoadPackagesInconsistentVendoring points the loader at a module
// whose vendor directory exists without vendor/modules.txt — the go
// command refuses such a tree, and the refusal must surface as a typed
// list error, not a panic.
func TestLoadPackagesInconsistentVendoring(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/vendored\n\ngo 1.22\n\nrequire example.com/dep v1.0.0\n")
	write("main.go", "package main\n\nfunc main() {}\n")
	write("vendor/example.com/dep/dep.go", "package dep\n")
	_, err := LoadPackages(dir, []string{"./..."})
	wantLoadError(t, err, LoadList)
}

func TestTypeCheckSyntaxError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.go")
	if err := os.WriteFile(path, []byte("package broken\n\nfunc f( {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := TypeCheck("broken", []string{path}, nil)
	le := wantLoadError(t, err, LoadParse)
	if le.Path != path {
		t.Fatalf("LoadParse path = %q, want %q", le.Path, path)
	}
}

func TestTypeCheckMissingExportData(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "imports.go")
	src := "package imports\n\nimport \"fmt\"\n\nfunc f() { fmt.Println() }\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := TypeCheck("imports", []string{path}, map[string]string{})
	wantLoadError(t, err, LoadMissingExport)
}

func TestTypeCheckTypeError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "badtypes.go")
	src := "package badtypes\n\nfunc f() int { return \"not an int\" }\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := TypeCheck("badtypes", []string{path}, nil)
	wantLoadError(t, err, LoadTypecheck)
}

// TestLoadPackagesFactsOnlyDeps loads one real package of this module
// and checks its module-local dependencies arrive as facts-only
// packages: parsed, fact-bearing, not typechecked.
func TestLoadPackagesFactsOnlyDeps(t *testing.T) {
	pkgs, err := LoadPackages("../..", []string{"netsamp/internal/ingest"})
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	var analyzed, factsOnly int
	for _, p := range pkgs {
		if p.FactsOnly {
			factsOnly++
			if p.Types != nil || p.Info != nil {
				t.Errorf("facts-only package %s was typechecked", p.Path)
			}
			if p.Facts == nil {
				t.Errorf("facts-only package %s carries no facts", p.Path)
			}
		} else {
			analyzed++
			if p.Types == nil || p.Info == nil {
				t.Errorf("analyzed package %s missing type info", p.Path)
			}
		}
	}
	if analyzed != 1 {
		t.Errorf("analyzed %d packages, want 1", analyzed)
	}
	if factsOnly == 0 {
		t.Error("no facts-only dependencies loaded; ingest depends on at least packet")
	}
	// The packet package's noalloc annotations must be visible as facts.
	found := false
	for _, p := range pkgs {
		if p.Path == "netsamp/internal/packet" && p.Facts != nil && len(p.Facts.Noalloc) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("netsamp/internal/packet facts missing or empty")
	}
}
