package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SupervisedPackages are the packages whose goroutines live under the
// supervision tree (DESIGN §12): every long-running worker there must
// be stoppable, because the daemon's shutdown path waits for them and a
// goroutine with no cancellation path turns shutdown into a hang (or a
// leak under test, where the next test inherits the orphan).
var SupervisedPackages = []string{
	"netsamp/internal/ingest",
	"netsamp/internal/supervise",
	"netsamp/internal/daemon",
	"netsamp/internal/engine",
}

// IsSupervised reports whether pkgPath hosts supervised goroutines.
func IsSupervised(pkgPath string) bool {
	for _, p := range SupervisedPackages {
		if pkgPath == p {
			return true
		}
	}
	return false
}

// CtxHygieneAnalyzer enforces cancellation hygiene in supervised
// packages. Three findings:
//
//  1. a `go` statement whose spawned body has no cancellation path —
//     no select with a receive case, no range over a channel, and no
//     ctx.Done()/stop-channel receive anywhere in the body. Such a
//     goroutine can only exit by finishing its work, which for the
//     loop-shaped workers these packages host means never.
//
//  2. `time.Sleep` lexically inside a for/range loop — a sleeping
//     goroutine cannot observe a stop signal; the repo idiom is a
//     timer (or ticker) polled from a select that also has the
//     stop/ctx case.
//
//  3. a channel send outside any select — a send with no cancellation
//     case blocks forever once the receiver is gone, which is exactly
//     the state a shutdown produces.
//
// `//netsamp:ctx-ok <reason>` on the offending line acknowledges a
// deliberate exception (e.g. a send on a buffered channel whose
// capacity is provably sufficient, or a goroutine bounded by the
// channel it ranges over being closed by the owner).
var CtxHygieneAnalyzer = &Analyzer{
	Name:      "ctxhygiene",
	Doc:       "check that supervised-package goroutines are cancellable: stoppable spawn bodies, no bare sleeps in loops, no selectless sends",
	AppliesTo: IsSupervised,
	Run:       runCtxHygiene,
}

func runCtxHygiene(pass *Pass) error {
	// Named function decls, so `go c.pump()` can be resolved to a body.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj := pass.Info.Defs[fn.Name]; obj != nil {
				decls[obj] = fn
			}
		}
	}
	reported := make(map[token.Pos]bool) // dedupe sleeps under nested loops
	for _, f := range pass.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGoCancellable(pass, n, decls)
			case *ast.ForStmt:
				checkLoopSleep(pass, n.Body, reported)
			case *ast.RangeStmt:
				checkLoopSleep(pass, n.Body, reported)
			case *ast.SendStmt:
				checkSendHasSelect(pass, f, n)
			}
			return true
		})
	}
	return nil
}

// ctxOK consumes a `//netsamp:ctx-ok <reason>` escape at pos; it
// reports (and still suppresses) a missing reason.
func ctxOK(pass *Pass, pos token.Pos) bool {
	reason, ok := pass.LineDirective(pos, "ctx-ok")
	if !ok {
		return false
	}
	if reason == "" {
		pass.Reportf(pos, "netsamp:ctx-ok requires a reason")
	}
	return true
}

// checkGoCancellable demands the spawned body have a cancellation path.
func checkGoCancellable(pass *Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) {
	if ctxOK(pass, g.Pos()) {
		return
	}
	var body *ast.BlockStmt
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		obj := calleeObject(pass.Info, g.Call)
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() == pass.Pkg {
			if decl, ok := decls[obj]; ok {
				body = decl.Body
			}
		}
	}
	if body == nil {
		// Cross-package or dynamic spawn target: its hygiene is checked
		// where it is declared (or not at all, for foreign code) — the
		// spawn site cannot be judged here.
		return
	}
	if hasCancellationPath(body) {
		return
	}
	pass.Reportf(g.Pos(),
		"goroutine has no cancellation path (no select with a receive, no range over a channel); give it a ctx/stop case or annotate //netsamp:ctx-ok <reason>")
}

// hasCancellationPath reports whether body contains a construct through
// which a stop signal can reach the goroutine: a select with at least
// one receive case, a range over a channel-typed expression (closed by
// the owner to stop the worker), or a unary receive expression.
func hasCancellationPath(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				switch cc.Comm.(type) {
				case *ast.ExprStmt, *ast.AssignStmt:
					found = true
				}
			}
		case *ast.RangeStmt:
			// Syntactic check: ranging over anything that is not an
			// obvious int/slice literal counts; the typed pass below
			// is not available for nested literals spawned by name, so
			// accept the range and let -race/soak catch abuse.
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkLoopSleep flags time.Sleep lexically inside a loop body.
func checkLoopSleep(pass *Pass, body *ast.BlockStmt, reported map[token.Pos]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isPkgFunc(pass.Info, call, "time", "Sleep") {
			return true
		}
		if reported[call.Pos()] {
			return true
		}
		reported[call.Pos()] = true
		if ctxOK(pass, call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(),
			"time.Sleep in a supervised loop cannot observe a stop signal; use a timer/ticker in a select with the stop case, or annotate //netsamp:ctx-ok <reason>")
		return true
	})
}

// checkSendHasSelect flags a channel send that is not a select case.
func checkSendHasSelect(pass *Pass, file *ast.File, send *ast.SendStmt) {
	inSelect := false
	ast.Inspect(file, func(n ast.Node) bool {
		if inSelect {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == send {
				inSelect = true
			}
		}
		return true
	})
	if inSelect {
		return
	}
	if ctxOK(pass, send.Pos()) {
		return
	}
	pass.Reportf(send.Pos(),
		"channel send without a cancellation case blocks forever if the receiver is gone; wrap it in a select with the stop/ctx case, or annotate //netsamp:ctx-ok <reason>")
}
