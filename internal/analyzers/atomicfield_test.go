package analyzers

import "testing"

func TestAtomicFieldGolden(t *testing.T) {
	runGolden(t, AtomicFieldAnalyzer, "atomicfield")
}
