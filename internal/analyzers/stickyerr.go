package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StickyErrAnalyzer enforces the error discipline the persistence layer
// depends on:
//
//   - a function that constructs a sticky state.Decoder must consult it
//     — call Err() or Finish() — before returning (or hand the decoder
//     off); the sticky design makes every intermediate read infallible
//     precisely because ONE check at the end is mandatory, so a decode
//     path with no check silently accepts corrupt payloads;
//
//   - the error results of durability-critical calls must not be
//     discarded: (*os.File).Sync (an unchecked fsync is the
//     textbook way to lose an acknowledged write), Truncate, Write and
//     Seek on files, Decoder.Err/Finish themselves, and
//     MarshalBinary/UnmarshalBinary/Validate-shaped functions.
//
// Deliberate best-effort discards take `//netsamp:err-ok <reason>` on
// the flagged line.
var StickyErrAnalyzer = &Analyzer{
	Name: "stickyerr",
	Doc:  "flag unconsulted sticky decoders and discarded durability-critical errors",
	Run:  runStickyErr,
}

// checkedFileMethods are the *os.File methods whose error result is
// durability- or position-critical.
var checkedFileMethods = map[string]bool{
	"Sync": true, "Truncate": true, "Write": true, "Seek": true, "WriteAt": true,
}

func runStickyErr(pass *Pass) error {
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkStickyDecoders(pass, fn)
		}
		checkDiscardedErrors(pass, f)
	}
	return nil
}

// isStateDecoder reports whether t is the sticky decoder type: a named
// type called Decoder with the sticky method pair (Err and Finish) and
// the width reads. Matching on shape rather than import path keeps the
// analyzer honest in its own golden tests and robust to the state
// package moving.
func isStateDecoder(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Decoder" {
		return false
	}
	have := map[string]bool{}
	for i := 0; i < named.NumMethods(); i++ {
		have[named.Method(i).Name()] = true
	}
	return have["Err"] && have["Finish"] && have["U64"]
}

// checkStickyDecoders verifies every decoder constructed in fn is
// consulted before fn returns.
func checkStickyDecoders(pass *Pass, fn *ast.FuncDecl) {
	// decoders maps the local object to its construction position.
	type decoderUse struct {
		pos       token.Pos
		consulted bool
		escaped   bool
	}
	decoders := make(map[types.Object]*decoderUse)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := definedObj(pass.Info, id)
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil || !isStateDecoder(obj.Type()) {
				continue
			}
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if obj2 := calleeObject(pass.Info, call); obj2 != nil && strings.HasPrefix(obj2.Name(), "New") {
					decoders[obj] = &decoderUse{pos: as.Pos()}
				}
			}
		}
		return true
	})
	if len(decoders) == 0 {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// d.Err() / d.Finish() consults; d passed as an argument
			// escapes (the callee owns the check).
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if du := decoders[pass.Info.Uses[id]]; du != nil {
						if sel.Sel.Name == "Err" || sel.Sel.Name == "Finish" {
							du.consulted = true
						}
					}
				}
			}
			for _, arg := range n.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if du := decoders[pass.Info.Uses[id]]; du != nil {
						du.escaped = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if du := decoders[pass.Info.Uses[id]]; du != nil {
						du.escaped = true
					}
				}
			}
		}
		return true
	})
	for _, du := range decoders {
		if du.consulted || du.escaped {
			continue
		}
		if reason, ok := pass.LineDirective(du.pos, "err-ok"); ok {
			if reason == "" {
				pass.Reportf(du.pos, "netsamp:err-ok requires a reason")
			}
			continue
		}
		pass.Reportf(du.pos,
			"sticky Decoder is never consulted: call Err() or Finish() before returning, or the decode accepts corrupt payloads silently")
	}
}

// checkDiscardedErrors flags statements that drop durability-critical
// error results on the floor: bare expression statements and
// assignments to blank identifiers only.
func checkDiscardedErrors(pass *Pass, f *ast.File) {
	if pass.isTestFile(f) {
		return
	}
	report := func(pos token.Pos, what string) {
		if reason, ok := pass.LineDirective(pos, "err-ok"); ok {
			if reason == "" {
				pass.Reportf(pos, "netsamp:err-ok requires a reason")
			}
			return
		}
		pass.Reportf(pos, "%s's error is discarded; handle it or annotate //netsamp:err-ok <reason>", what)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = ast.Unparen(n.X).(*ast.CallExpr)
		case *ast.AssignStmt:
			// _ = f() and _, _ = f() discards.
			allBlank := true
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
					break
				}
			}
			if allBlank && len(n.Rhs) == 1 {
				call, _ = ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			}
		case *ast.GoStmt:
			call = n.Call
		case *ast.DeferStmt:
			call = n.Call
		}
		if call == nil {
			return true
		}
		if what, critical := durabilityCritical(pass, call); critical {
			report(call.Pos(), what)
		}
		return true
	})
}

// durabilityCritical classifies a call whose results are being
// discarded.
func durabilityCritical(pass *Pass, call *ast.CallExpr) (string, bool) {
	named, method := namedMethodReceiver(pass.Info, call)
	if named != nil {
		pkg := named.Obj().Pkg()
		if pkg != nil && pkg.Path() == "os" && named.Obj().Name() == "File" && checkedFileMethods[method] {
			return "(*os.File)." + method, true
		}
		if isStateDecoder(named) && (method == "Err" || method == "Finish") {
			return "Decoder." + method, true
		}
	}
	obj := calleeObject(pass.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || !returnsError(sig) {
		return "", false
	}
	switch {
	case fn.Name() == "MarshalBinary", fn.Name() == "UnmarshalBinary":
		return fn.Name(), true
	case strings.Contains(fn.Name(), "Validate"):
		return fn.Name(), true
	}
	return "", false
}
