package analyzers

// The golden tests mirror golang.org/x/tools/go/analysis/analysistest:
// each analyzer runs over a small package under testdata/src/<name>/ in
// which every expected finding is marked by a `// want "regexp"` comment
// on the same line. A diagnostic with no matching want, or a want with
// no matching diagnostic, fails the test. Escape-hatch annotations and
// known would-be false positives are exercised as lines with no want.

import (
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

// testDeps are the import paths the testdata packages may use; their
// export data is resolved once per test binary through the same
// `go list -export` path the standalone driver uses.
var testDeps = []string{"fmt", "os", "time", "math/rand", "sync", "sync/atomic", "math", "errors"}

var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

func testExports(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		metas, err := goList(".", testDeps)
		if err != nil {
			exportsErr = err
			return
		}
		exportsMap = make(map[string]string, len(metas))
		for _, m := range metas {
			if m.Export != "" {
				exportsMap[m.ImportPath] = m.Export
			}
		}
	})
	if exportsErr != nil {
		t.Fatalf("loading export data for testdata imports: %v", exportsErr)
	}
	return exportsMap
}

// wantRe extracts the backtick-quoted regexps of a want comment
// (`// want` followed by one or more `...` patterns, as analysistest).
var wantRe = regexp.MustCompile("`([^`]*)`")

type wantKey struct {
	file string // base name
	line int
}

// runGolden typechecks testdata/src/<dir>, runs a over it (bypassing
// AppliesTo, as the package path is synthetic), and matches diagnostics
// against the want comments.
func runGolden(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "src", dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata files for %s: %v", dir, err)
	}
	pkg, err := TypeCheck(dir, files, testExports(t))
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}

	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		diags:    &diags,
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	// Collect expectations.
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[wantKey][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				const marker = "// want "
				if len(c.Text) < len(marker) || c.Text[:len(marker)] != marker {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := wantKey{filepath.Base(pos.Filename), pos.Line}
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[len(marker):], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", key.file, key.line, m[1], err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		key := wantKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", key.file, key.line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

// TestGoldenSuiteCovered pins the golden tests to the full suite: a new
// analyzer must bring a testdata package.
func TestGoldenSuiteCovered(t *testing.T) {
	for _, a := range All() {
		pattern := filepath.Join("testdata", "src", a.Name, "*.go")
		files, err := filepath.Glob(pattern)
		if err != nil || len(files) == 0 {
			t.Errorf("analyzer %s has no golden testdata at %s", a.Name, pattern)
		}
	}
}
