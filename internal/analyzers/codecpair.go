package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CodecPairAnalyzer checks encode/decode symmetry of the state codec.
// Every persisted structure is written through state.Encoder and read
// back through the sticky state.Decoder; the daemon's divergence check
// (and therefore the whole deterministic-recovery guarantee) assumes
// the two sides agree on field order and width. A decode that drops a
// field, reads it at the wrong width, or reads it out of order shifts
// every subsequent byte and typically still "succeeds" — producing a
// plausible-looking, wrong state.
//
// The analyzer pairs:
//
//   - MarshalBinary/UnmarshalBinary methods declared on the same type;
//   - any function annotated `//netsamp:codec pair=<decodeFunc>` with
//     the named function in the same package.
//
// For each pair it extracts the flattened, source-ordered sequence of
// codec operations (Encoder writes vs Decoder reads, loops and
// conditionals contributing their bodies once) and demands the widths
// line up position by position; Bool/U8 are interchangeable at width 1,
// U32/Len at width 4, and U64/I64 at width 8, while F64 stays distinct
// from I64/U64 because an integer read of a float field is virtually
// always an encode/decode drift, not an intended bit-pattern pun.
//
// MarshalBinary pairs additionally require (a) the first write to be a
// version stamp (an argument mentioning an identifier containing
// "version") — adding a field without bumping the version is how a new
// binary silently misparses old checkpoints — and (b) every field of
// the marshalled struct to be referenced by both sides, with
// `//netsamp:codec-ignore f1,f2` opting specific fields out.
var CodecPairAnalyzer = &Analyzer{
	Name: "codecpair",
	Doc:  "check encode/decode symmetry, width agreement, version stamps and field coverage of state codec pairs",
	Run:  runCodecPair,
}

// codecOp is one primitive codec read or write.
type codecOp struct {
	method string // Encoder/Decoder method name as written
	class  string // width class: u8, u16, u32, u64, f64, bytes
	pos    token.Pos
	call   *ast.CallExpr
}

// opClasses maps Encoder/Decoder method names to width classes.
var opClasses = map[string]string{
	"U8": "u8", "Bool": "u8",
	"U16": "u16",
	"U32": "u32", "Len": "u32",
	"U64": "u64", "I64": "u64",
	"F64":   "f64",
	"Bytes": "bytes",
}

// isCodecType reports whether t is a state codec endpoint of the given
// role ("Encoder" or "Decoder"), matched on shape: the name plus the
// width-method set.
func isCodecType(t types.Type, role string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != role {
		return false
	}
	have := map[string]bool{}
	for i := 0; i < named.NumMethods(); i++ {
		have[named.Method(i).Name()] = true
	}
	return have["U16"] && have["U64"] && have["F64"]
}

func runCodecPair(pass *Pass) error {
	funcs := make(map[string]*ast.FuncDecl)   // plain functions by name
	methods := make(map[string]*ast.FuncDecl) // methods by Type.Name key
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Recv == nil {
				funcs[fn.Name.Name] = fn
			} else if tn := recvTypeName(fn); tn != "" {
				methods[tn+"."+fn.Name.Name] = fn
			}
		}
	}

	seen := make(map[*ast.FuncDecl]bool)
	// Marshal/Unmarshal pairs by receiver type.
	for key, enc := range methods {
		tn, name, _ := strings.Cut(key, ".")
		if name != "MarshalBinary" {
			continue
		}
		encOps := collectOps(pass, enc, "Encoder")
		if len(encOps) == 0 {
			continue // not a state-codec marshaller
		}
		dec, ok := methods[tn+".UnmarshalBinary"]
		if !ok {
			pass.Reportf(enc.Pos(), "%s has MarshalBinary but no UnmarshalBinary: every persisted encoding needs its paired decode", tn)
			continue
		}
		seen[enc], seen[dec] = true, true
		decOps := collectOps(pass, dec, "Decoder")
		compareOps(pass, tn, enc, dec, encOps, decOps)
		checkVersionStamp(pass, tn, enc, encOps)
		checkFieldCoverage(pass, tn, enc, dec)
	}
	// Annotation-declared pairs.
	for _, fns := range []map[string]*ast.FuncDecl{funcs, methods} {
		for _, enc := range fns {
			arg, ok := FuncDirective(enc, "codec")
			if !ok || seen[enc] {
				continue
			}
			first, _ := DirectiveArg(arg)
			pairName, found := strings.CutPrefix(first, "pair=")
			if !found || pairName == "" {
				pass.Reportf(enc.Pos(), "netsamp:codec directive requires pair=<decodeFunc>")
				continue
			}
			dec := funcs[pairName]
			if dec == nil {
				// Methods may be named Type.Method in the directive.
				dec = methods[pairName]
			}
			if dec == nil {
				for key, m := range methods {
					if strings.HasSuffix(key, "."+pairName) {
						dec = m
						break
					}
				}
			}
			if dec == nil {
				pass.Reportf(enc.Pos(), "netsamp:codec pair=%s: no such function in this package", pairName)
				continue
			}
			encOps := collectOps(pass, enc, "Encoder")
			decOps := collectOps(pass, dec, "Decoder")
			compareOps(pass, enc.Name.Name, enc, dec, encOps, decOps)
			checkVersionStamp(pass, enc.Name.Name, enc, encOps)
		}
	}
	return nil
}

// recvTypeName returns the bare receiver type name of a method.
func recvTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// collectOps extracts the source-ordered codec operations of role
// ("Encoder" writes or "Decoder" reads) in fn's body.
func collectOps(pass *Pass, fn *ast.FuncDecl, role string) []codecOp {
	var ops []codecOp
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		class, isOp := opClasses[sel.Sel.Name]
		if !isOp {
			return true
		}
		recv := pass.Info.Types[sel.X]
		if !isCodecType(recv.Type, role) {
			return true
		}
		ops = append(ops, codecOp{method: sel.Sel.Name, class: class, pos: call.Pos(), call: call})
		return true
	})
	return ops
}

// compareOps demands the flattened op sequences agree class by class.
func compareOps(pass *Pass, what string, enc, dec *ast.FuncDecl, encOps, decOps []codecOp) {
	n := len(encOps)
	if len(decOps) < n {
		n = len(decOps)
	}
	for i := 0; i < n; i++ {
		if encOps[i].class != decOps[i].class {
			pass.Reportf(decOps[i].pos,
				"%s codec drift at operation %d: encode writes %s (%s) but decode reads %s (%s) — every later field shifts",
				what, i+1, encOps[i].method, encOps[i].class, decOps[i].method, decOps[i].class)
			return
		}
	}
	if len(encOps) != len(decOps) {
		if len(encOps) > len(decOps) {
			missing := encOps[len(decOps)]
			pass.Reportf(missing.pos,
				"%s codec drift: encode writes %d operations but decode reads only %d — the %s write at operation %d is never decoded",
				what, len(encOps), len(decOps), missing.method, len(decOps)+1)
		} else {
			extra := decOps[len(encOps)]
			pass.Reportf(extra.pos,
				"%s codec drift: decode reads %d operations but encode writes only %d — the %s read at operation %d consumes bytes that were never written",
				what, len(decOps), len(encOps), extra.method, len(encOps)+1)
		}
	}
}

// checkVersionStamp demands the encoding opens with a version stamp.
func checkVersionStamp(pass *Pass, what string, enc *ast.FuncDecl, encOps []codecOp) {
	if len(encOps) == 0 {
		return
	}
	first := encOps[0]
	ok := false
	for _, arg := range first.call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, isIdent := n.(*ast.Ident); isIdent {
				lower := strings.ToLower(id.Name)
				if strings.Contains(lower, "version") || strings.Contains(lower, "magic") {
					ok = true
				}
			}
			return !ok
		})
	}
	if !ok {
		pass.Reportf(first.pos,
			"%s encoding does not open with a version stamp: write a <name>Version constant first so a struct change can bump it and old payloads are rejected, not misparsed", what)
	}
}

// checkFieldCoverage demands every field of the marshalled struct be
// referenced by both the encode and the decode side.
func checkFieldCoverage(pass *Pass, typeName string, enc, dec *ast.FuncDecl) {
	obj := pass.Pkg.Scope().Lookup(typeName)
	if obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	ignored := map[string]bool{}
	if arg, ok := FuncDirective(enc, "codec-ignore"); ok {
		fields, _ := DirectiveArg(arg)
		for _, f := range strings.Split(fields, ",") {
			ignored[strings.TrimSpace(f)] = true
		}
	}
	for _, side := range []struct {
		fn   *ast.FuncDecl
		verb string
	}{{enc, "encoded"}, {dec, "decoded"}} {
		referenced := fieldRefs(pass, side.fn, obj.Type())
		var missing []string
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if ignored[f.Name()] || referenced[f.Name()] {
				continue
			}
			missing = append(missing, f.Name())
		}
		if len(missing) > 0 {
			pass.Reportf(side.fn.Pos(),
				"%s field(s) %s never %s: encode them (and bump the version constant) or list them in //netsamp:codec-ignore",
				typeName, strings.Join(missing, ", "), side.verb)
		}
	}
}

// fieldRefs collects the names of T's fields selected anywhere in fn.
func fieldRefs(pass *Pass, fn *ast.FuncDecl, t types.Type) map[string]bool {
	refs := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		recv := s.Recv()
		if ptr, ok := recv.Underlying().(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if types.Identical(recv, t) {
			refs[sel.Sel.Name] = true
		}
		return true
	})
	return refs
}

