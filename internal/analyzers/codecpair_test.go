package analyzers

import "testing"

func TestCodecPairGolden(t *testing.T) {
	runGolden(t, CodecPairAnalyzer, "codecpair")
}
