package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoallocAnalyzer checks functions annotated `//netsamp:noalloc` for
// allocating constructs. It is the static complement of the
// alloc-pinning benchmarks (BenchmarkSolveReuse, the warm-chain pin):
// the benchmarks prove the composed hot path allocates zero bytes per
// op; this check points at the exact line when a refactor reintroduces
// an allocation, before any benchmark runs.
//
// Flagged constructs inside an annotated function:
//
//   - make, new;
//   - slice and map composite literals, and &T{...} (escaping
//     composites);
//   - append whose result is not reassigned to the slice being appended
//     to (x = append(x, ...) and the buffer-reuse form
//     x = append(x[:0], ...) are the amortized in-place idioms and are
//     allowed; y := append(x, ...) grows a fresh backing array);
//   - calls into fmt (every fmt call allocates for its varargs);
//   - string([]byte) / []byte(string) conversions;
//   - explicit conversions to interface types (boxing);
//   - implicit boxing at call sites: a concrete non-pointer-shaped
//     value passed where the callee declares an interface parameter
//     allocates to materialize the interface's data word (pointers,
//     maps, channels and funcs are the data word themselves and pass
//     for free; interface-typed arguments pass through unboxed);
//   - function literals (potential closure allocations);
//   - go statements (goroutine stacks).
//
// The check is intraprocedural: callees are not followed; annotate the
// callees that matter. Error paths are exempt in one narrow form — a
// fmt/errors call inside an if-body whose last statement is a return —
// because the zero-alloc contract covers the steady state, not the
// failure exits. Anything else needs `//netsamp:alloc-ok <reason>` on
// the flagged line.
var NoallocAnalyzer = &Analyzer{
	Name: "noalloc",
	Doc:  "check //netsamp:noalloc functions for allocating constructs",
	Run:  runNoalloc,
}

func runNoalloc(pass *Pass) error {
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := FuncDirective(fn, "noalloc"); !ok {
				continue
			}
			checkNoalloc(pass, fn)
		}
	}
	return nil
}

func checkNoalloc(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	report := func(pos token.Pos, what string) {
		if reason, ok := pass.LineDirective(pos, "alloc-ok"); ok {
			if reason == "" {
				pass.Reportf(pos, "netsamp:alloc-ok requires a reason")
			}
			return
		}
		pass.Reportf(pos, "%s in //netsamp:noalloc function %s; hoist it out of the hot path or annotate //netsamp:alloc-ok <reason>", what, name)
	}
	coldPaths := coldErrorBlocks(pass, fn.Body)
	inCold := func(pos token.Pos) bool {
		for _, b := range coldPaths {
			if b.Pos() <= pos && pos <= b.End() {
				return true
			}
		}
		return false
	}
	// selfAppends are append calls of the form x = append(x, ...) — the
	// amortized in-place growth idiom — identified while visiting their
	// enclosing assignment (parents precede children in the walk).
	selfAppends := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(pass.Info, call, "append") || len(call.Args) == 0 {
					continue
				}
				if i < len(n.Lhs) && len(n.Lhs) == len(n.Rhs) {
					// x = append(x, ...) and the buffer-reuse variant
					// x = append(x[:0], ...) both grow in place (amortized).
					dstExpr := ast.Unparen(call.Args[0])
					if se, ok := dstExpr.(*ast.SliceExpr); ok {
						dstExpr = se.X
					}
					dst := exprString(dstExpr)
					if dst != "" && exprString(n.Lhs[i]) == dst {
						selfAppends[call] = true
					}
				}
			}
		case *ast.CallExpr:
			switch {
			case isBuiltin(pass.Info, n, "make"):
				report(n.Pos(), "make")
			case isBuiltin(pass.Info, n, "new"):
				report(n.Pos(), "new")
			case isBuiltin(pass.Info, n, "append"):
				if !selfAppends[n] {
					report(n.Pos(), "append into a fresh backing array")
				}
			default:
				flaggedPkg := false
				if obj := calleeObject(pass.Info, n); obj != nil && obj.Pkg() != nil {
					switch obj.Pkg().Path() {
					case "fmt":
						flaggedPkg = true
						if !inCold(n.Pos()) {
							report(n.Pos(), "fmt."+obj.Name()+" (allocates for its varargs)")
						}
					case "errors":
						flaggedPkg = true
						if !inCold(n.Pos()) {
							report(n.Pos(), "errors."+obj.Name())
						}
					}
				}
				checkConversion(pass, n, report)
				// Boxing into an already-flagged fmt/errors call would
				// just duplicate the finding.
				if !flaggedPkg && !inCold(n.Pos()) {
					checkImplicitBoxing(pass, n, report)
				}
			}
		case *ast.CompositeLit:
			t := pass.Info.Types[n].Type
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal")
				case *types.Map:
					report(n.Pos(), "map literal")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal (escapes to the heap)")
				}
			}
		case *ast.FuncLit:
			report(n.Pos(), "function literal (potential closure allocation)")
			return false // don't descend: one finding per literal
		case *ast.GoStmt:
			report(n.Pos(), "go statement (goroutine stack)")
		}
		return true
	})
}

// exprString renders simple assignable expressions (identifiers,
// selector chains, index expressions with simple indices) to a
// comparable string; "" for anything more complex.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.IndexExpr:
		base := exprString(e.X)
		idx := exprString(e.Index)
		if base == "" || idx == "" {
			return ""
		}
		return base + "[" + idx + "]"
	case *ast.BasicLit:
		return e.Value
	}
	return ""
}

// checkConversion flags boxing and string/byte-slice conversions.
func checkConversion(pass *Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	to := tv.Type
	from := pass.Info.Types[call.Args[0]].Type
	if from == nil {
		return
	}
	if types.IsInterface(to.Underlying()) && !types.IsInterface(from.Underlying()) {
		report(call.Pos(), "conversion to interface (boxes the operand)")
		return
	}
	toB, toOK := to.Underlying().(*types.Basic)
	fromS, fromSliceOK := from.Underlying().(*types.Slice)
	if toOK && toB.Kind() == types.String && fromSliceOK {
		if eb, ok := fromS.Elem().Underlying().(*types.Basic); ok && (eb.Kind() == types.Byte || eb.Kind() == types.Rune || eb.Kind() == types.Int32 || eb.Kind() == types.Uint8) {
			report(call.Pos(), "string(slice) conversion (copies)")
		}
		return
	}
	if toSlice, ok := to.Underlying().(*types.Slice); ok {
		if fb, ok := from.Underlying().(*types.Basic); ok && fb.Info()&types.IsString != 0 {
			if eb, ok := toSlice.Elem().Underlying().(*types.Basic); ok && (eb.Kind() == types.Byte || eb.Kind() == types.Uint8 || eb.Kind() == types.Rune || eb.Kind() == types.Int32) {
				report(call.Pos(), "[]byte/[]rune(string) conversion (copies)")
			}
		}
	}
}

// checkImplicitBoxing flags call arguments that box implicitly: a
// concrete value passed where the callee's signature declares an
// interface parameter is converted at the call site, and unless the
// value is pointer-shaped (pointer, map, channel, func — the interface
// data word holds it directly) the conversion allocates. The check is
// conservative: the runtime's small-integer and zero-size caches make
// some boxes free, but a hot path should not rely on them.
func checkImplicitBoxing(pass *Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	if tv, ok := pass.Info.Types[call.Fun]; !ok || tv.IsType() {
		return // conversion, handled by checkConversion
	}
	sigT := pass.Info.Types[call.Fun].Type
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				// f(xs...) forwards the slice; nothing is boxed per element.
				return
			}
			pt = params.At(params.Len() - 1).Type()
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := pass.Info.Types[arg].Type
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		switch u := at.Underlying().(type) {
		case *types.Basic:
			if u.Kind() == types.UntypedNil {
				continue // nil interface, no box
			}
		case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
			continue // pointer-shaped: the data word is the value itself
		}
		report(arg.Pos(), "concrete value passed to interface parameter (boxes the argument)")
	}
}

// coldErrorBlocks collects if-bodies that end in a return statement or
// a panic — the failure exits a zero-alloc contract does not cover.
func coldErrorBlocks(pass *Pass, body *ast.BlockStmt) []*ast.BlockStmt {
	var cold []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || len(ifs.Body.List) == 0 {
			return true
		}
		switch last := ifs.Body.List[len(ifs.Body.List)-1].(type) {
		case *ast.ReturnStmt:
			cold = append(cold, ifs.Body)
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(last.X).(*ast.CallExpr); ok && isBuiltin(pass.Info, call, "panic") {
				cold = append(cold, ifs.Body)
			}
		}
		return true
	})
	return cold
}
