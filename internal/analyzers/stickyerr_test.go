package analyzers

import "testing"

func TestStickyErrGolden(t *testing.T) {
	runGolden(t, StickyErrAnalyzer, "stickyerr")
}
