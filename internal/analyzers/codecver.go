package analyzers

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CodecFingerprintFile is the committed structural-fingerprint ledger
// the codecver analyzer checks against. It lives at the module root
// (next to go.mod); the analyzer walks up from the package directory
// and stops at the first directory containing either the ledger or a
// go.mod, so test fixtures can carry their own.
const CodecFingerprintFile = "CODEC_FINGERPRINTS.json"

// CodecFingerprint is one ledger entry: the version stamp a type's
// encoding opens with, and the canonical rendering of its fields.
type CodecFingerprint struct {
	Version string `json:"version"`
	Fields  string `json:"fields"`
}

// CodecVerAnalyzer catches silent codec drift across commits. The
// codecpair analyzer proves encode and decode agree with each other
// *today*; nothing in the source proves today's encoding agrees with
// the checkpoints yesterday's binary wrote. This analyzer closes that
// gap with a committed ledger: for every codec-paired struct it
// computes a structural fingerprint (field names and types, in order)
// plus the resolved version stamp, and compares against
// CODEC_FINGERPRINTS.json. Changing a marshalled struct without
// bumping its version constant is the finding that matters — the new
// binary would misparse old payloads instead of rejecting them. Once
// the version is bumped, the ledger is stale and
// `netsamplint -write-codec-fingerprints` recommits it (README
// documents the runbook).
var CodecVerAnalyzer = &Analyzer{
	Name: "codecver",
	Doc:  "check codec-paired structs against the committed structural fingerprint ledger; field changes must bump the codec version",
	Run:  runCodecVer,
}

// CodecFingerprintsForPackage computes the ledger entries contributed
// by one loaded package, keyed "<import path>.<TypeName>". Drivers use
// it to regenerate the committed file.
func CodecFingerprintsForPackage(pkg *Package) map[string]CodecFingerprint {
	if pkg == nil || pkg.FactsOnly || pkg.Types == nil {
		return nil
	}
	pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
	return collectCodecFingerprints(pass)
}

// collectCodecFingerprints finds every type whose MarshalBinary emits
// state-codec writes and fingerprints it.
func collectCodecFingerprints(pass *Pass) map[string]CodecFingerprint {
	out := make(map[string]CodecFingerprint)
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Name.Name != "MarshalBinary" {
				continue
			}
			tn := recvTypeName(fn)
			if tn == "" {
				continue
			}
			encOps := collectOps(pass, fn, "Encoder")
			if len(encOps) == 0 {
				continue
			}
			obj := pass.Pkg.Scope().Lookup(tn)
			if obj == nil {
				continue
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			out[pass.Pkg.Path()+"."+tn] = CodecFingerprint{
				Version: resolveVersionStamp(pass, encOps),
				Fields:  canonicalFields(pass.Pkg, st),
			}
		}
	}
	return out
}

// canonicalFields renders a struct's fields as "name type; ..." with
// package-qualified types, stable across formatting changes.
func canonicalFields(pkg *types.Package, st *types.Struct) string {
	qual := types.RelativeTo(pkg)
	parts := make([]string, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		parts = append(parts, f.Name()+" "+types.TypeString(f.Type(), qual))
	}
	return strings.Join(parts, "; ")
}

// resolveVersionStamp extracts the version value the encoding opens
// with: the constant value of the first version/magic identifier in
// the first write's arguments, or the identifier's name when it is not
// a constant, or "" when the encoding has no stamp (codecpair reports
// that separately).
func resolveVersionStamp(pass *Pass, encOps []codecOp) string {
	first := encOps[0]
	version := ""
	for _, arg := range first.call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if version != "" {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			lower := strings.ToLower(id.Name)
			if !strings.Contains(lower, "version") && !strings.Contains(lower, "magic") {
				return true
			}
			if c, ok := pass.Info.Uses[id].(*types.Const); ok {
				version = c.Val().String()
			} else {
				version = id.Name
			}
			return false
		})
		if version != "" {
			break
		}
	}
	return version
}

// findFingerprintFile walks up from dir to the first directory holding
// the ledger or a go.mod; it returns the ledger path and whether the
// file exists there.
func findFingerprintFile(dir string) (string, bool) {
	for {
		path := filepath.Join(dir, CodecFingerprintFile)
		if _, err := os.Stat(path); err == nil {
			return path, true
		}
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return path, false
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return path, false
		}
		dir = parent
	}
}

// LoadCodecFingerprints reads a committed ledger.
func LoadCodecFingerprints(path string) (map[string]CodecFingerprint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ledger map[string]CodecFingerprint
	if err := json.Unmarshal(data, &ledger); err != nil {
		return nil, fmt.Errorf("analyzers: parse %s: %w", path, err)
	}
	return ledger, nil
}

// WriteCodecFingerprints writes a ledger deterministically (JSON map
// keys marshal sorted, plus a trailing newline) so regeneration diffs
// cleanly.
func WriteCodecFingerprints(path string, ledger map[string]CodecFingerprint) error {
	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runCodecVer(pass *Pass) error {
	fps := collectCodecFingerprints(pass)
	if len(fps) == 0 {
		return nil
	}
	var dir string
	if len(pass.Files) > 0 {
		dir = filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	}
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	path, found := findFingerprintFile(dir)
	var ledger map[string]CodecFingerprint
	if found {
		var err error
		ledger, err = LoadCodecFingerprints(path)
		if err != nil {
			return err
		}
	}

	keys := make([]string, 0, len(fps))
	for k := range fps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		cur := fps[key]
		tn := key[strings.LastIndex(key, ".")+1:]
		pos := pass.Files[0].Pos()
		if obj := pass.Pkg.Scope().Lookup(tn); obj != nil {
			pos = obj.Pos()
		}
		rec, ok := ledger[key]
		switch {
		case !ok:
			pass.Reportf(pos,
				"codec-paired struct %s has no committed fingerprint in %s; run `netsamplint -write-codec-fingerprints` and commit the result",
				tn, CodecFingerprintFile)
		case rec.Fields != cur.Fields && rec.Version == cur.Version:
			pass.Reportf(pos,
				"%s's marshalled fields changed but its codec version stamp is still %s; bump the version constant so old payloads are rejected instead of misparsed, then regenerate %s",
				tn, cur.Version, CodecFingerprintFile)
		case rec.Fields != cur.Fields || rec.Version != cur.Version:
			pass.Reportf(pos,
				"%s's committed fingerprint is stale (version %s→%s); run `netsamplint -write-codec-fingerprints` and commit the result",
				tn, rec.Version, cur.Version)
		}
	}
	return nil
}
