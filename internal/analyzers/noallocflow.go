package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoallocFlowAnalyzer closes the interprocedural hole the per-function
// noalloc check leaves open: a `//netsamp:noalloc` function whose own
// body is clean can still allocate through a callee. The rule it
// enforces turns the annotation set into a checked call graph — a
// noalloc function may only call:
//
//   - builtins (make/new/append are the intraprocedural check's job);
//   - functions the same package annotates //netsamp:noalloc;
//   - functions a dependency package annotates //netsamp:noalloc
//     (resolved through PackageFacts, which the standalone driver and
//     the vettool's .vetx files both carry);
//   - recognized allocation-free leaves (the whitelist below: math,
//     math/bits, sync/atomic wholesale, plus specific sync/sort/slices
//     entries);
//   - interface methods, provided every in-package concrete
//     implementation of that method is itself noalloc-annotated (the
//     RateModel hook pattern: the dispatch is dynamic but the
//     implementation set is closed).
//
// Calls through plain function values cannot be resolved statically and
// must carry `//netsamp:allocflow-ok <reason>`, as must any other call
// the rules above reject — with one resolvable exception: a local
// variable that is only ever assigned function literals defined in the
// same body (the `mix := func(...)` helper-closure idiom). Those
// literals are part of the body being inspected, so their calls are
// already checked; the variable itself adds no unverifiable edge.
// Calls inside cold error exits (an if-body ending in return or panic)
// are exempt, matching the intraprocedural check's steady-state
// contract.
var NoallocFlowAnalyzer = &Analyzer{
	Name: "noallocflow",
	Doc:  "check that //netsamp:noalloc functions only call noalloc-annotated or recognized-leaf functions",
	Run:  runNoallocFlow,
}

// noallocLeafPkgs are packages whose exported functions and methods are
// allocation-free wholesale.
var noallocLeafPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// noallocLeafFuncs are individually recognized allocation-free leaves,
// keyed "pkgpath.Fn" or "pkgpath.Type.Method". DESIGN.md §10 documents
// the list; extend it only for functions whose steady state provably
// does not allocate.
var noallocLeafFuncs = map[string]bool{
	"sync.Mutex.Lock":       true,
	"sync.Mutex.Unlock":     true,
	"sync.Mutex.TryLock":    true,
	"sync.RWMutex.Lock":     true,
	"sync.RWMutex.Unlock":   true,
	"sync.RWMutex.RLock":    true,
	"sync.RWMutex.RUnlock":  true,
	"sync.WaitGroup.Add":    true,
	"sync.WaitGroup.Done":   true,
	"sync.WaitGroup.Wait":   true,
	"sort.Search":           true,
	"sort.SearchInts":       true,
	"sort.SearchFloat64s":   true,
	"slices.Sort":           true,
	"slices.SortFunc":       true,
	"slices.BinarySearch":   true,
	"errors.Is":             true,
	"errors.As":             true,
	"builtin.error.Error":   true,
	"time.Duration.Seconds": true,
	"time.Duration.Nanoseconds": true,
	"hash/crc32.ChecksumIEEE":   true,
	// File I/O into a caller-owned buffer: the write path reuses the
	// fd's internals; error construction is the cold path.
	"os.File.Write": true,
	"os.File.Sync":  true,
	// encoding/binary's fixed-width endian accessors are pure
	// shifts/ORs over the argument slice.
	"encoding/binary.littleEndian.Uint16":    true,
	"encoding/binary.littleEndian.Uint32":    true,
	"encoding/binary.littleEndian.Uint64":    true,
	"encoding/binary.littleEndian.PutUint16": true,
	"encoding/binary.littleEndian.PutUint32": true,
	"encoding/binary.littleEndian.PutUint64": true,
	"encoding/binary.bigEndian.Uint16":       true,
	"encoding/binary.bigEndian.Uint32":       true,
	"encoding/binary.bigEndian.Uint64":       true,
	"encoding/binary.bigEndian.PutUint16":    true,
	"encoding/binary.bigEndian.PutUint32":    true,
	"encoding/binary.bigEndian.PutUint64":    true,
}

// funcKey renders a *types.Func as the whitelist/facts vocabulary:
// "Fn" or "Type.Method" (package-relative).
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.Underlying().(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	switch t := rt.(type) {
	case *types.Named:
		return t.Obj().Name() + "." + fn.Name()
	case *types.Interface:
		return fn.Name()
	}
	return fn.Name()
}

func runNoallocFlow(pass *Pass) error {
	// Local annotation set, from syntax (same vocabulary as facts).
	local := make(map[string]bool)
	var annotated []*ast.FuncDecl
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := FuncDirective(fn, "noalloc"); !ok {
				continue
			}
			key := fn.Name.Name
			if tn := recvTypeName(fn); tn != "" {
				key = tn + "." + fn.Name.Name
			}
			local[key] = true
			annotated = append(annotated, fn)
		}
	}
	for _, fn := range annotated {
		checkNoallocFlow(pass, fn, local)
	}
	return nil
}

func checkNoallocFlow(pass *Pass, fn *ast.FuncDecl, local map[string]bool) {
	name := fn.Name.Name
	report := func(pos token.Pos, what string) {
		if reason, ok := pass.LineDirective(pos, "allocflow-ok"); ok {
			if reason == "" {
				pass.Reportf(pos, "netsamp:allocflow-ok requires a reason")
			}
			return
		}
		pass.Reportf(pos, "%s in //netsamp:noalloc function %s; annotate the callee //netsamp:noalloc, whitelist it, or annotate the call //netsamp:allocflow-ok <reason>", what, name)
	}
	coldPaths := coldErrorBlocks(pass, fn.Body)
	inCold := func(pos token.Pos) bool {
		for _, b := range coldPaths {
			if b.Pos() <= pos && pos <= b.End() {
				return true
			}
		}
		return false
	}
	closures := localClosureVars(pass, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if inCold(call.Pos()) {
			return true
		}
		// Conversions and builtins belong to the intraprocedural check.
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isB := pass.Info.Uses[id].(*types.Builtin); isB {
				return true
			}
		}
		obj := calleeObject(pass.Info, call)
		callee, ok := obj.(*types.Func)
		if !ok {
			// A body-local variable only ever assigned FuncLits is a
			// named closure: its body is inside fn.Body and already
			// being inspected, so the call adds no unverified edge.
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && closures[pass.Info.ObjectOf(id)] {
				return true
			}
			report(call.Pos(), "call through a function value (callee cannot be verified allocation-free)")
			return true
		}
		key := funcKey(callee)
		pkg := callee.Pkg()
		switch {
		case pkg == nil:
			// Universe-scope (error.Error via the predeclared interface).
			if !noallocLeafFuncs["builtin."+key] {
				report(call.Pos(), "call to unresolvable "+key)
			}
		case pkg == pass.Pkg:
			if local[key] || interfaceCallCovered(pass, callee, local) {
				return true
			}
			report(call.Pos(), "call to "+key+" which is not //netsamp:noalloc")
		default:
			path := pkg.Path()
			if noallocLeafPkgs[path] || noallocLeafFuncs[path+"."+key] {
				return true
			}
			if pass.DepFacts[path].HasNoalloc(key) {
				return true
			}
			report(call.Pos(), "cross-package call to "+path+"."+key+" which is not //netsamp:noalloc there")
		}
		return true
	})
}

// localClosureVars collects body-local variables that are only ever
// assigned function literals: `mix := func(...) {...}` and never
// reassigned anything else. Calls through such a variable are safe to
// accept — every candidate body is a FuncLit inside the inspected
// function. A single non-literal assignment taints the variable.
func localClosureVars(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	assigned := make(map[types.Object]bool) // ever assigned a FuncLit
	tainted := make(map[types.Object]bool)  // assigned anything else
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); !ok || v.Pkg() != pass.Pkg {
			return
		}
		if _, isLit := ast.Unparen(rhs).(*ast.FuncLit); isLit {
			assigned[obj] = true
		} else {
			tainted[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					mark(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i := range st.Names {
					mark(st.Names[i], st.Values[i])
				}
			}
		case *ast.UnaryExpr:
			// Taking the variable's address lets anyone rebind it.
			if st.Op == token.AND {
				if id, ok := ast.Unparen(st.X).(*ast.Ident); ok {
					if obj := pass.Info.ObjectOf(id); obj != nil {
						tainted[obj] = true
					}
				}
			}
		}
		return true
	})
	closures := make(map[types.Object]bool)
	for obj := range assigned {
		if !tainted[obj] {
			closures[obj] = true
		}
	}
	return closures
}

// interfaceCallCovered handles dynamic dispatch through an interface
// declared in this package: the call is allocation-free when the
// implementation set is closed over noalloc functions — every concrete
// package-level type implementing the interface declares the method
// noalloc-annotated, and at least one implementation exists to anchor
// the claim.
func interfaceCallCovered(pass *Pass, callee *types.Func, local map[string]bool) bool {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	scope := pass.Pkg.Scope()
	impls := 0
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		var impl types.Type = named
		if !types.Implements(impl, iface) {
			impl = types.NewPointer(named)
			if !types.Implements(impl, iface) {
				continue
			}
		}
		impls++
		// Resolve the concrete method — possibly promoted from an
		// embedded type — and check its own key, so `type linear struct{
		// additive }` is covered by annotating additive's methods.
		mobj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, pass.Pkg, callee.Name())
		m, ok := mobj.(*types.Func)
		if !ok {
			return false
		}
		key := funcKey(m)
		if m.Pkg() == pass.Pkg {
			if !local[key] {
				return false
			}
		} else if m.Pkg() == nil || !pass.DepFacts[m.Pkg().Path()].HasNoalloc(key) {
			return false
		}
	}
	return impls > 0
}
