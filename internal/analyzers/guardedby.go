package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GuardedByAnalyzer enforces the `//netsamp:guardedby <mu>` field
// directive: a struct field so annotated may only be read or written
// while the named sibling mutex is held. The check is syntactic and
// per-function — an access is considered guarded when, in source order
// within the same function body, the most recent operation on
// `<base>.<mu>` (where <base> is the access's receiver expression) is a
// Lock or RLock with no intervening Unlock/RUnlock. Deferred unlocks do
// not end the critical section (they run at return), and unlocks inside
// cold error exits (an if-body ending in return or panic) are ignored —
// the unlock-then-return-error idiom does not split the hot path's
// critical section.
//
// Exemptions:
//
//   - functions annotated `//netsamp:holds <mu>` assert the caller
//     holds the lock; their bodies access <mu>-guarded fields freely
//     (the xxxLocked helper convention, now machine-checked);
//   - constructors (names beginning new/New): the value is not yet
//     shared;
//   - `//netsamp:guarded-ok <reason>` on the access line, for accesses
//     whose safety argument is structural rather than lock-based (e.g.
//     a field read after all writer goroutines are joined).
//
// The directive also demands the named mutex actually exists as a
// sibling field, so a rename cannot silently detach the annotation.
var GuardedByAnalyzer = &Analyzer{
	Name: "guardedby",
	Doc:  "check that //netsamp:guardedby <mu> fields are only accessed under the named mutex",
	Run:  runGuardedBy,
}

// guardedField records one annotated field: the mutex field name that
// guards it, inside which struct.
type guardedField struct {
	mu string
}

func runGuardedBy(pass *Pass) error {
	guards := collectGuardedFields(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGuardedFunc(pass, fn, guards)
		}
	}
	return nil
}

// collectGuardedFields gathers annotated fields across the package,
// keyed by the *types.Var of the field, validating that the named mutex
// is a sibling field.
func collectGuardedFields(pass *Pass) map[types.Object]guardedField {
	guards := make(map[types.Object]guardedField)
	for _, f := range pass.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			siblings := make(map[string]bool)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					siblings[name.Name] = true
				}
			}
			for _, field := range st.Fields.List {
				arg, ok := pass.LineDirective(field.Pos(), "guardedby")
				if !ok {
					continue
				}
				mu, _ := DirectiveArg(arg)
				if mu == "" {
					pass.Reportf(field.Pos(), "netsamp:guardedby requires a mutex field name")
					continue
				}
				if !siblings[mu] {
					pass.Reportf(field.Pos(), "netsamp:guardedby names %s, which is not a field of this struct", mu)
					continue
				}
				for _, name := range field.Names {
					obj := pass.Info.Defs[name]
					if obj == nil {
						continue
					}
					guards[obj] = guardedField{mu: mu}
				}
			}
			return true
		})
	}
	return guards
}

// lockEvent is one mutex operation observed in source order.
type lockEvent struct {
	pos  token.Pos
	key  string // "<base>.<mu>"
	held bool   // true for Lock/RLock, false for Unlock/RUnlock
}

func checkGuardedFunc(pass *Pass, fn *ast.FuncDecl, guards map[types.Object]guardedField) {
	holdsMu := ""
	if arg, ok := FuncDirective(fn, "holds"); ok {
		holdsMu, _ = DirectiveArg(arg)
		if holdsMu == "" {
			pass.Reportf(fn.Pos(), "netsamp:holds requires a mutex field name")
		}
	}
	constructor := isConstructorName(fn.Name.Name)
	cold := coldErrorBlocks(pass, fn.Body)
	checkGuardedBody(pass, fn.Body, guards, holdsMu, constructor, cold)
}

// checkGuardedBody scans one function body (function literals nested
// inside are scanned separately — a goroutine does not inherit the
// spawning frame's critical section).
func checkGuardedBody(pass *Pass, body *ast.BlockStmt, guards map[types.Object]guardedField, holdsMu string, constructor bool, cold []*ast.BlockStmt) {
	inCold := func(pos token.Pos) bool {
		for _, b := range cold {
			if b.Pos() <= pos && pos <= b.End() {
				return true
			}
		}
		return false
	}

	var events []lockEvent
	type access struct {
		sel   *ast.SelectorExpr
		field string
		key   string // "<base>.<mu>" that must be held
		mu    string
	}
	var accesses []access
	var lits []*ast.FuncLit
	skipLit := func(pos token.Pos) bool {
		for _, l := range lits {
			if l.Pos() <= pos && pos <= l.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
			checkGuardedBody(pass, n.Body, guards, "", constructor, coldErrorBlocks(pass, n.Body))
			return false
		case *ast.DeferStmt:
			// A deferred unlock runs at return; it does not end the
			// critical section at its source position. Deferred locks
			// are nonsense and likewise skipped.
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var held bool
			switch sel.Sel.Name {
			case "Lock", "RLock":
				held = true
			case "Unlock", "RUnlock":
				if inCold(n.Pos()) {
					return true
				}
				held = false
			default:
				return true
			}
			key := exprString(sel.X)
			if key == "" {
				return true
			}
			events = append(events, lockEvent{pos: n.Pos(), key: key, held: held})
			return true
		case *ast.SelectorExpr:
			s, ok := pass.Info.Selections[n]
			if !ok {
				return true
			}
			g, guarded := guards[s.Obj()]
			if !guarded {
				return true
			}
			base := exprString(n.X)
			if base == "" {
				// Unprintable receiver chains (calls, etc.) cannot be
				// matched to a lock expression; demand an annotation.
				base = "?"
			}
			accesses = append(accesses, access{sel: n, field: n.Sel.Name, key: base + "." + g.mu, mu: g.mu})
			return true
		}
		return true
	})

	for _, a := range accesses {
		if skipLit(a.sel.Pos()) {
			continue
		}
		if constructor || (holdsMu != "" && holdsMu == a.mu) {
			continue
		}
		held := false
		for _, ev := range events {
			if ev.pos >= a.sel.Pos() || ev.key != a.key {
				continue
			}
			held = ev.held
		}
		if held {
			continue
		}
		if reason, ok := pass.LineDirective(a.sel.Pos(), "guarded-ok"); ok {
			if reason == "" {
				pass.Reportf(a.sel.Pos(), "netsamp:guarded-ok requires a reason")
			}
			continue
		}
		pass.Reportf(a.sel.Pos(),
			"field %s is //netsamp:guardedby %s but accessed without %s held; lock it, annotate the function //netsamp:holds %s, or annotate the access //netsamp:guarded-ok <reason>",
			a.field, a.mu, a.key, a.mu)
	}
}
