package control

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"netsamp/internal/core"
	"netsamp/internal/loadtrack"
	"netsamp/internal/netflow"
	"netsamp/internal/plan"
	"netsamp/internal/state"
	"netsamp/internal/topology"
)

// TestNewTypedValidation: every Options rejection is a *core.InputError
// carrying the offending field, matchable against core.ErrInvalidInput.
func TestNewTypedValidation(t *testing.T) {
	cases := []struct {
		opts  Options
		field string
	}{
		{Options{Budget: 0}, "controller budget"},
		{Options{Budget: math.NaN()}, "controller budget"},
		{Options{Budget: math.Inf(1)}, "controller budget"},
		{Options{Budget: -3}, "controller budget"},
		{Options{Budget: 1, SmoothAlpha: math.NaN()}, "smooth alpha"},
		{Options{Budget: 1, SmoothAlpha: -0.1}, "smooth alpha"},
		{Options{Budget: 1, SmoothAlpha: 1.5}, "smooth alpha"},
		{Options{Budget: 1, SwitchGain: math.NaN()}, "switch gain"},
		{Options{Budget: 1, SwitchGain: math.Inf(1)}, "switch gain"},
		{Options{Budget: 1, SwitchGain: -1}, "switch gain"},
		{Options{Budget: 1, ReviveAfter: -1}, "revive after"},
		{Options{Budget: 1, SolveTimeout: -1}, "solve timeout"},
		{Options{Budget: 1, Robust: RobustOptions{Mode: core.RobustMode(99)}}, "robust mode"},
		{Options{Budget: 1, Robust: RobustOptions{ExplorationFrac: math.NaN()}}, "exploration fraction"},
		{Options{Budget: 1, Robust: RobustOptions{ExplorationFrac: -0.1}}, "exploration fraction"},
		{Options{Budget: 1, Robust: RobustOptions{ExplorationFrac: 0.6}}, "exploration fraction"},
		{Options{Budget: 1, Robust: RobustOptions{WidenFactor: 0.5}}, "widen factor"},
		{Options{Budget: 1, Robust: RobustOptions{WidenFactor: math.NaN()}}, "widen factor"},
		{Options{Budget: 1, Robust: RobustOptions{WidenFactor: math.Inf(1)}}, "widen factor"},
	}
	for i, c := range cases {
		_, err := New(c.opts)
		if err == nil {
			t.Errorf("case %d (%s): options accepted", i, c.field)
			continue
		}
		if !errors.Is(err, core.ErrInvalidInput) {
			t.Errorf("case %d (%s): %v does not match core.ErrInvalidInput", i, c.field, err)
		}
		var ie *core.InputError
		if !errors.As(err, &ie) {
			t.Errorf("case %d (%s): %v is not a *core.InputError", i, c.field, err)
			continue
		}
		if ie.Field != c.field {
			t.Errorf("case %d: field %q, want %q", i, ie.Field, c.field)
		}
	}
	// Valid robust options (and the unset sentinels) are accepted.
	for _, opts := range []Options{
		{Budget: 1},
		{Budget: 1, Robust: RobustOptions{Mode: core.RobustPessimistic, ExplorationFrac: 0.5, WidenFactor: 1.5}},
		{Budget: 1, Robust: RobustOptions{Mode: core.RobustOptimistic}},
	} {
		if _, err := New(opts); err != nil {
			t.Errorf("valid options %+v rejected: %v", opts, err)
		}
	}
}

func robustOpts(frac float64) Options {
	return Options{
		Budget:      core.BudgetPerInterval(100000, 300),
		SmoothAlpha: 0.5,
		Robust:      RobustOptions{Mode: core.RobustPessimistic, ExplorationFrac: frac},
	}
}

// TestRobustStepBudgetAndExploration: under pessimistic solving the
// deployed plan — exploration grants included — never overspends θ
// against the true loads, and the exploration reserve is actually spent
// on a deterministic, sorted set of links.
func TestRobustStepBudgetAndExploration(t *testing.T) {
	s, inv := setup(t)
	c, err := New(robustOpts(0.2))
	if err != nil {
		t.Fatal(err)
	}
	budget := c.opts.Budget
	for i := 0; i < 4; i++ {
		in := StepInput{Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks, InvSizes: inv}
		if i == 2 {
			in.Down = []topology.LinkID{s.MonitorLinks[0]}
		}
		d, err := c.StepResilient(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if spend := plan.SampledRate(d.Plan, s.Loads); spend > budget*(1+1e-9) {
			t.Fatalf("interval %d: true spend %v exceeds θ = %v", i, spend, budget)
		}
		if len(d.Explored) == 0 {
			t.Fatalf("interval %d: empty exploration set with frac 0.2", i)
		}
		for j, lid := range d.Explored {
			if j > 0 && d.Explored[j-1] >= lid {
				t.Fatalf("interval %d: Explored not strictly ascending: %v", i, d.Explored)
			}
			if !(d.Plan[lid] > 0) {
				t.Fatalf("interval %d: explored link %d has no deployed rate", i, lid)
			}
		}
	}
	// Without exploration the decision reports none.
	c2, err := New(robustOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	d, err := c2.StepResilient(context.Background(), StepInput{Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks, InvSizes: inv})
	if err != nil {
		t.Fatal(err)
	}
	if d.Explored != nil {
		t.Fatalf("Explored = %v with exploration off", d.Explored)
	}
}

// TestRobustDownMonitorWidens: a link whose monitor is reported down
// keeps its point estimate frozen but widens its confidence interval by
// WidenFactor each unobserved interval — staleness the solver can see.
func TestRobustDownMonitorWidens(t *testing.T) {
	s, inv := setup(t)
	c, err := New(robustOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	in := StepInput{Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks, InvSizes: inv}
	if _, err := c.StepResilient(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	lid := s.MonitorLinks[0]
	before := c.TrackerState()
	down := in
	down.Down = []topology.LinkID{lid}
	d, err := c.StepResilient(context.Background(), down)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, x := range d.Excluded {
		found = found || x == lid
	}
	if !found {
		t.Fatalf("down link %d not in Excluded %v", lid, d.Excluded)
	}
	after := c.TrackerState()
	wantRel := before.Rel[lid] * 1.25 // default WidenFactor
	if math.Abs(after.Rel[lid]-wantRel) > 1e-12 {
		t.Fatalf("rel after outage %v, want %v (%v widened by 1.25)", after.Rel[lid], wantRel, before.Rel[lid])
	}
	if after.Mean[lid] != before.Mean[lid] {
		t.Fatalf("mean moved during outage: %v -> %v", before.Mean[lid], after.Mean[lid])
	}
	if after.Age[lid] != 1 {
		t.Fatalf("age %d after one missed interval, want 1", after.Age[lid])
	}
	// A healthy interval re-tightens (ReviveAfter 0 readmits at once).
	if _, err := c.StepResilient(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	if got := c.TrackerState(); !(got.Rel[lid] < after.Rel[lid]) || got.Age[lid] != 0 {
		t.Fatalf("recovery did not tighten: rel %v (was %v), age %d", got.Rel[lid], after.Rel[lid], got.Age[lid])
	}
}

// TestRobustNetflowErrorWiring: the netflow estimator's delta-method
// error — inflated by transport loss — feeds StepInput.LoadRelErr and
// widens exactly the lossy link's tracked interval, while a
// no-information observation (+Inf) counts as a missed interval.
func TestRobustNetflowErrorWiring(t *testing.T) {
	s, inv := setup(t)
	c, err := New(robustOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	in := StepInput{Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks, InvSizes: inv}
	if _, err := c.StepResilient(context.Background(), in); err != nil {
		t.Fatal(err)
	}

	lossy, starved, clean := s.MonitorLinks[0], s.MonitorLinks[1], s.MonitorLinks[2]
	_, lossyErr, low := netflow.LinkLoadObservation(3, 0.01, 0.5, 300)
	if !low {
		t.Fatalf("3 records through 50%% loss not flagged low-confidence (relErr %v)", lossyErr)
	}
	_, starvedErr, _ := netflow.LinkLoadObservation(0, 0.01, 0, 300)
	relErr := make([]float64, len(s.Loads))
	relErr[lossy] = lossyErr
	relErr[starved] = starvedErr
	in2 := in
	in2.LoadRelErr = relErr
	if _, err := c.StepResilient(context.Background(), in2); err != nil {
		t.Fatal(err)
	}
	st := c.TrackerState()
	if !(st.Rel[lossy] > st.Rel[clean]) {
		t.Fatalf("lossy link rel %v not wider than clean link rel %v", st.Rel[lossy], st.Rel[clean])
	}
	if st.Age[starved] != 1 {
		t.Fatalf("starved link age %d, want 1 (+Inf error = unobserved)", st.Age[starved])
	}
	if st.Age[clean] != 0 || st.Age[lossy] != 0 {
		t.Fatalf("observed links aged: clean %d, lossy %d", st.Age[clean], st.Age[lossy])
	}
}

// TestTransportLossWidensTracker: the ingest tier's record-loss
// fraction (StepInput.TransportLoss) inflates every observed link's
// error in quadrature — a lossy interval widens the tracker's
// confidence intervals without moving its point estimates away from
// what an equally-loaded clean interval would have produced. Out-of-
// range fractions are rejected as typed input errors before any
// controller mutation.
func TestTransportLossWidensTracker(t *testing.T) {
	s, inv := setup(t)
	mk := func() *Controller {
		c, err := New(robustOpts(0))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	base := StepInput{Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks, InvSizes: inv}

	clean, lossy := mk(), mk()
	if _, err := clean.StepResilient(context.Background(), base); err != nil {
		t.Fatal(err)
	}
	in := base
	in.TransportLoss = 0.5
	if _, err := lossy.StepResilient(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	cs, ls := clean.TrackerState(), lossy.TrackerState()
	for _, lid := range s.MonitorLinks {
		if !(ls.Rel[lid] > cs.Rel[lid]) {
			t.Fatalf("link %d: lossy rel %v not wider than clean rel %v", lid, ls.Rel[lid], cs.Rel[lid])
		}
		if ls.Mean[lid] != cs.Mean[lid] {
			t.Fatalf("link %d: transport loss moved the mean %v -> %v", lid, cs.Mean[lid], ls.Mean[lid])
		}
	}

	// Loss composes with per-link errors in quadrature: a link already
	// carrying netflow error e observes sqrt(e² + ℓ²/(1−ℓ)), strictly
	// wider than either source of uncertainty alone.
	both, errOnly := mk(), mk()
	relErr := make([]float64, len(s.Loads))
	relErr[s.MonitorLinks[0]] = 0.3
	inErr := base
	inErr.LoadRelErr = relErr
	if _, err := errOnly.StepResilient(context.Background(), inErr); err != nil {
		t.Fatal(err)
	}
	inBoth := inErr
	inBoth.TransportLoss = 0.5
	if _, err := both.StepResilient(context.Background(), inBoth); err != nil {
		t.Fatal(err)
	}
	lid := s.MonitorLinks[0]
	bs, es := both.TrackerState(), errOnly.TrackerState()
	if !(bs.Rel[lid] > es.Rel[lid]) || !(bs.Rel[lid] > ls.Rel[lid]) {
		t.Fatalf("combined rel %v not wider than error-only %v and loss-only %v", bs.Rel[lid], es.Rel[lid], ls.Rel[lid])
	}
	// A no-information link (+Inf error) stays unobserved under loss:
	// inflation must not turn "no data" into a confident observation.
	starved := s.MonitorLinks[1]
	relErr[starved] = math.Inf(1)
	if _, err := both.StepResilient(context.Background(), inBoth); err != nil {
		t.Fatal(err)
	}
	if got := both.TrackerState().Age[starved]; got != 1 {
		t.Fatalf("starved link age %d under loss, want 1 (+Inf stays unobserved)", got)
	}

	// Validation: rejected fractions leave the controller untouched.
	c := mk()
	for _, bad := range []float64{math.NaN(), -0.1, 1, 1.5} {
		in := base
		in.TransportLoss = bad
		_, err := c.StepResilient(context.Background(), in)
		var ie *core.InputError
		if err == nil || !errors.As(err, &ie) || ie.Field != "transport loss" {
			t.Fatalf("TransportLoss=%v: err %v, want transport-loss InputError", bad, err)
		}
	}
	if c.Steps() != 0 {
		t.Fatal("rejected input mutated the controller")
	}

	// A plain controller carries no per-link uncertainty; a stated loss
	// fraction is validated, then ignored.
	plain, err := New(Options{Budget: robustOpts(0).Budget})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.StepResilient(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	if plain.TrackerState() != nil {
		t.Fatal("plain controller grew a tracker from transport loss")
	}
}

// sameRobustDecision extends sameDecision with the exploration set.
func sameRobustDecision(a, b *Decision) bool {
	if !sameDecision(a, b) || len(a.Explored) != len(b.Explored) {
		return false
	}
	for i := range a.Explored {
		if a.Explored[i] != b.Explored[i] {
			return false
		}
	}
	return true
}

// TestRobustSnapshotRestoreContinuation: a robust controller killed
// mid-run and restored from its version-3 snapshot — tracker state
// included — continues bit-identically to the uninterrupted original,
// through observation gaps and outages.
func TestRobustSnapshotRestoreContinuation(t *testing.T) {
	s, inv := setup(t)
	opts := robustOpts(0.15)
	opts.SwitchGain = 0.01
	orig, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	loads := append([]float64(nil), s.Loads...)
	mkInput := func(i int) StepInput {
		in := StepInput{Matrix: s.Matrix, Loads: loads, Candidates: s.MonitorLinks, InvSizes: inv}
		if i%2 == 1 {
			in.Down = []topology.LinkID{s.MonitorLinks[i%len(s.MonitorLinks)]}
		}
		relErr := make([]float64, len(loads))
		relErr[int(s.MonitorLinks[0])] = 0.3
		in.LoadRelErr = relErr
		return in
	}
	step := func(c *Controller, i int) *Decision {
		d, err := c.StepResilient(context.Background(), mkInput(i))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	for i := 0; i < 3; i++ {
		step(orig, i)
		for j := range loads {
			loads[j] *= 1.05
		}
	}

	blob, err := orig.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := st.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if st.Tracker == nil {
		t.Fatal("robust snapshot lost the tracker")
	}
	restored, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 6; i++ {
		da, db := step(orig, i), step(restored, i)
		if !sameRobustDecision(da, db) {
			t.Fatalf("interval %d diverged after restore:\n%+v\n%+v", i, da, db)
		}
		for j := range loads {
			loads[j] *= 0.97
		}
	}
}

// legacyV2Blob re-encodes a tracker-free state as a version-2 payload:
// the version stamp rewritten and the trailing has-tracker flag removed.
func legacyV2Blob(t *testing.T, st State) []byte {
	t.Helper()
	st.Tracker = nil
	blob, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	blob = append([]byte{}, blob...)
	blob[0], blob[1] = 2, 0 // version U16, little-endian
	return blob[:len(blob)-1]
}

// TestRestoreLegacyV2ColdTracker: a pre-robust (version-2) snapshot
// restores into a robust controller with a cold tracker, and its next
// decision is bit-identical to restoring the same state with the
// tracker explicitly absent — the tracker re-learns from scratch rather
// than inventing confidence it never had.
func TestRestoreLegacyV2ColdTracker(t *testing.T) {
	s, inv := setup(t)
	opts := robustOpts(0.1)
	orig, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	in := StepInput{Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks, InvSizes: inv}
	for i := 0; i < 3; i++ {
		if _, err := orig.StepResilient(context.Background(), in); err != nil {
			t.Fatal(err)
		}
	}
	snap := orig.Snapshot()

	var legacy State
	if err := legacy.UnmarshalBinary(legacyV2Blob(t, snap)); err != nil {
		t.Fatalf("v2 payload rejected: %v", err)
	}
	if legacy.Tracker != nil {
		t.Fatal("v2 payload decoded a tracker")
	}
	fromV2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := fromV2.Restore(legacy); err != nil {
		t.Fatal(err)
	}
	if fromV2.TrackerState() != nil {
		t.Fatal("tracker not cold after v2 restore")
	}

	// Reference: the same state restored with Tracker deliberately nil.
	ref, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	refState := snap
	refState.Tracker = nil
	if err := ref.Restore(refState); err != nil {
		t.Fatal(err)
	}
	da, err := fromV2.StepResilient(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	db, err := ref.StepResilient(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRobustDecision(da, db) {
		t.Fatalf("cold-tracker decisions diverged:\n%+v\n%+v", da, db)
	}
}

// TestRestoreRejectsV1AndCorruptTracker: version-1 payloads and
// version-3 payloads with corrupt tracker bytes are rejected with typed
// errors; semantically invalid tracker state fails Restore before any
// controller mutation.
func TestRestoreRejectsV1AndCorruptTracker(t *testing.T) {
	s, inv := setup(t)
	orig, err := New(robustOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	in := StepInput{Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks, InvSizes: inv}
	if _, err := orig.StepResilient(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	snap := orig.Snapshot()

	v1 := legacyV2Blob(t, snap)
	v1[0] = 1
	var st State
	if err := st.UnmarshalBinary(v1); err == nil || !strings.Contains(err.Error(), "unknown state version") {
		t.Fatalf("v1 payload: %v, want unknown-version rejection", err)
	}

	blob, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The tracker blob is the trailing field: version U16, count U32,
	// then 24 bytes per link. Stamp an unknown tracker version.
	trackerLen := 6 + 24*len(snap.Tracker.Mean)
	badVer := append([]byte{}, blob...)
	badVer[len(badVer)-trackerLen] = 99
	if err := st.UnmarshalBinary(badVer); err == nil || !strings.Contains(err.Error(), "tracker state") {
		t.Fatalf("corrupt tracker version: %v, want tracker-state rejection", err)
	}
	// Truncation inside the tracker blob breaks the codec invariants.
	if err := st.UnmarshalBinary(blob[:len(blob)-4]); err == nil || !errors.Is(err, state.ErrCodec) {
		t.Fatalf("truncated payload: %v, want state.ErrCodec", err)
	}

	// Semantic corruption is caught by Restore, leaving the controller
	// untouched.
	c, err := New(robustOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	bad := snap
	bad.Tracker = &loadtrack.State{Mean: []float64{math.NaN()}, Rel: []float64{1}, Age: []int64{0}}
	if err := c.Restore(bad); err == nil || !errors.Is(err, loadtrack.ErrBadState) {
		t.Fatalf("NaN tracker mean: %v, want loadtrack.ErrBadState", err)
	}
	if c.Steps() != 0 {
		t.Fatal("rejected restore mutated the controller")
	}

	// A tracker restored into a non-robust controller is ignored: it
	// could never influence a decision there.
	plain, err := New(Options{Budget: robustOpts(0).Budget})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Restore(snap); err != nil {
		t.Fatalf("tracker state rejected by non-robust controller: %v", err)
	}
	if plain.TrackerState() != nil {
		t.Fatal("non-robust controller adopted a tracker")
	}
}
