package control

import (
	"strings"
	"testing"

	"netsamp/internal/core"
	"netsamp/internal/topology"
)

// TestStateModelRoundTrip: the rate model name survives the binary
// encoding, including the implicit "linear" default.
func TestStateModelRoundTrip(t *testing.T) {
	for _, name := range []string{"linear", "independent-exact", "coordinated"} {
		st := State{
			Active:    []topology.LinkID{2},
			EWMALoads: []float64{100},
			Steps:     1,
			Model:     name,
		}
		blob, err := st.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back State
		if err := back.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		if back.Model != name {
			t.Fatalf("model %q decoded as %q", name, back.Model)
		}
	}
}

// TestSnapshotStampsModel: the controller records the model it solves
// under, so a restore into a differently-configured controller fails
// loudly instead of silently reinterpreting the solved rates.
func TestSnapshotStampsModel(t *testing.T) {
	lin, err := New(Options{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := lin.Snapshot().Model; got != "linear" {
		t.Fatalf("default controller stamps %q", got)
	}
	coord, err := New(Options{Budget: 1, Model: core.ModelCoordinated})
	if err != nil {
		t.Fatal(err)
	}
	if got := coord.Snapshot().Model; got != "coordinated" {
		t.Fatalf("coordinated controller stamps %q", got)
	}

	// Cross-model restore is rejected in both directions.
	if err := coord.Restore(lin.Snapshot()); err == nil {
		t.Fatal("coordinated controller restored a linear snapshot")
	} else if !strings.Contains(err.Error(), "rate model") {
		t.Fatalf("unhelpful mismatch error: %v", err)
	}
	if err := lin.Restore(coord.Snapshot()); err == nil {
		t.Fatal("linear controller restored a coordinated snapshot")
	}
	// A pre-model (empty) stamp restores into the default controller
	// only — it predates non-linear options.
	if err := lin.Restore(State{}); err != nil {
		t.Fatalf("legacy empty-model state rejected by linear controller: %v", err)
	}
	if err := coord.Restore(State{}); err == nil {
		t.Fatal("legacy empty-model state accepted by coordinated controller")
	}
}
