// Package control turns the per-interval optimizer into an operational
// monitoring controller: the component an ISP would actually run against
// its NetFlow infrastructure.
//
// The paper establishes that plans must follow traffic and routing
// dynamics (Section I) and that router-embedded monitors make
// re-activation cheap — but reconfiguring hundreds of routers every five
// minutes is still operational churn. The controller therefore adds two
// practical mechanisms on top of core.Solve:
//
//   - load smoothing: link loads are EWMA-filtered across intervals, so
//     a single noisy interval does not swing the plan;
//   - activation hysteresis: the monitor SET only changes when the
//     re-optimized set beats the best plan achievable on the currently
//     active set by a configurable relative gain. Sampling rates on the
//     active set are re-tuned every interval either way (a pure
//     configuration change, no activation churn).
package control

import (
	"context"
	"fmt"
	"math"
	"sort"

	"netsamp/internal/core"
	"netsamp/internal/engine"
	"netsamp/internal/plan"
	"netsamp/internal/rng"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
)

// Options tunes the controller.
type Options struct {
	// Budget is θ as a sampled packet rate (core.BudgetPerInterval).
	Budget float64
	// SmoothAlpha is the EWMA weight of the newest load sample in
	// (0, 1]; 1 (the default when 0) disables smoothing.
	SmoothAlpha float64
	// SwitchGain is the minimum relative objective improvement required
	// to change the active monitor set (e.g. 0.01 = 1%). 0 disables
	// hysteresis: every interval adopts the unconstrained optimum.
	SwitchGain float64
	// Solve carries the inner solver options.
	Solve core.Options
}

// Decision is the controller's output for one interval.
type Decision struct {
	// Plan is the sampling-rate assignment to deploy.
	Plan map[topology.LinkID]float64
	// Solution is the solver output behind Plan.
	Solution *core.Solution
	// SetChanged reports whether the active monitor set differs from the
	// previous interval's.
	SetChanged bool
	// Gain is the relative objective improvement of the unconstrained
	// optimum over the best retained-set plan (0 when the set was free
	// to begin with).
	Gain float64
}

// Controller holds the cross-interval state. The zero value is not
// usable; construct with New.
type Controller struct {
	opts      Options
	active    []topology.LinkID // current monitor set (sorted)
	ewmaLoads []float64
	steps     int
}

// New returns a controller. Budget must be positive.
func New(opts Options) (*Controller, error) {
	if !(opts.Budget > 0) {
		return nil, fmt.Errorf("control: budget %v, want > 0", opts.Budget)
	}
	if opts.SmoothAlpha < 0 || opts.SmoothAlpha > 1 {
		return nil, fmt.Errorf("control: smooth alpha %v out of [0, 1]", opts.SmoothAlpha)
	}
	if opts.SwitchGain < 0 {
		return nil, fmt.Errorf("control: switch gain %v, want >= 0", opts.SwitchGain)
	}
	if opts.SmoothAlpha == 0 {
		opts.SmoothAlpha = 1
	}
	return &Controller{opts: opts}, nil
}

// ActiveSet returns the currently active monitor links (sorted copy).
func (c *Controller) ActiveSet() []topology.LinkID {
	return append([]topology.LinkID(nil), c.active...)
}

// Steps returns how many intervals the controller has processed.
func (c *Controller) Steps() int { return c.steps }

// Step ingests one interval's routing matrix, raw link loads (indexed by
// LinkID) and per-pair utility parameters, and returns the plan to
// deploy. candidates is the monitorable link set for this interval.
func (c *Controller) Step(matrix *routing.Matrix, loads []float64, candidates []topology.LinkID, invSizes []float64) (*Decision, error) {
	return c.StepContext(context.Background(), matrix, loads, candidates, invSizes, 0)
}

// StepContext is Step with cancellation. The interval's two solves — the
// unconstrained optimum and the retained-set re-tune the hysteresis rule
// compares it against — are independent, so they run as concurrent
// engine jobs.
func (c *Controller) StepContext(ctx context.Context, matrix *routing.Matrix, loads []float64, candidates []topology.LinkID, invSizes []float64, workers int) (*Decision, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("control: empty candidate set")
	}
	// EWMA the loads (element-wise; topology size may change between
	// steps — reset the filter if it does).
	if c.ewmaLoads == nil || len(c.ewmaLoads) != len(loads) {
		c.ewmaLoads = append([]float64(nil), loads...)
	} else {
		a := c.opts.SmoothAlpha
		for i, u := range loads {
			c.ewmaLoads[i] = (1-a)*c.ewmaLoads[i] + a*u
		}
	}
	smoothed := c.ewmaLoads

	solveOn := func(cands []topology.LinkID) (*core.Solution, error) {
		prob, _, err := plan.Build(plan.Input{
			Matrix:       matrix,
			Loads:        smoothed,
			Candidates:   cands,
			InvMeanSizes: invSizes,
			Budget:       c.opts.Budget,
		})
		if err != nil {
			return nil, err
		}
		return core.Solve(prob, c.opts.Solve)
	}

	// Retained-set plan: re-tune rates on the intersection of the old
	// active set with today's candidates (only meaningful once a set is
	// active and hysteresis is on). A failing retained solve means a pair
	// lost coverage — the set is infeasible and we must switch, so its
	// error is deliberately demoted to "no retained plan".
	var retained []topology.LinkID
	if c.active != nil && c.opts.SwitchGain != 0 {
		retained = intersect(c.active, candidates)
	}

	var full, retainedSol *core.Solution
	jobs := []engine.Job{
		func(context.Context, *rng.Source) error {
			var err error
			full, err = solveOn(candidates)
			return err
		},
	}
	if len(retained) > 0 {
		jobs = append(jobs, func(context.Context, *rng.Source) error {
			retainedSol, _ = solveOn(retained)
			return nil
		})
	}
	if err := engine.Run(ctx, engine.Options{Workers: workers}, jobs...); err != nil {
		return nil, err
	}
	fullRates := plan.RatesByLink(full, candidates)
	fullSet := sortedKeys(fullRates)

	c.steps++
	// First interval, no hysteresis, or no previous set: adopt.
	if c.active == nil || c.opts.SwitchGain == 0 {
		changed := !equalSets(c.active, fullSet)
		c.active = fullSet
		return &Decision{Plan: fullRates, Solution: full, SetChanged: changed}, nil
	}

	if retainedSol == nil {
		c.active = fullSet
		return &Decision{Plan: fullRates, Solution: full, SetChanged: true}, nil
	}
	gain := 0.0
	if retainedSol.Objective != 0 {
		gain = (full.Objective - retainedSol.Objective) / math.Abs(retainedSol.Objective)
	}
	if gain > c.opts.SwitchGain {
		c.active = fullSet
		return &Decision{Plan: fullRates, Solution: full, SetChanged: true, Gain: gain}, nil
	}
	// Keep the set; deploy re-tuned rates.
	rates := plan.RatesByLink(retainedSol, retained)
	c.active = sortedKeys(rates)
	return &Decision{Plan: rates, Solution: retainedSol, SetChanged: false, Gain: gain}, nil
}

func sortedKeys(m map[topology.LinkID]float64) []topology.LinkID {
	out := make([]topology.LinkID, 0, len(m))
	for lid := range m {
		out = append(out, lid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalSets(a, b []topology.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intersect(a, b []topology.LinkID) []topology.LinkID {
	set := make(map[topology.LinkID]bool, len(b))
	for _, lid := range b {
		set[lid] = true
	}
	var out []topology.LinkID
	for _, lid := range a {
		if set[lid] {
			out = append(out, lid)
		}
	}
	return out
}
