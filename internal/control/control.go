// Package control turns the per-interval optimizer into an operational
// monitoring controller: the component an ISP would actually run against
// its NetFlow infrastructure.
//
// The paper establishes that plans must follow traffic and routing
// dynamics (Section I) and that router-embedded monitors make
// re-activation cheap — but reconfiguring hundreds of routers every five
// minutes is still operational churn. The controller therefore adds two
// practical mechanisms on top of core.Solve:
//
//   - load smoothing: link loads are EWMA-filtered across intervals, so
//     a single noisy interval does not swing the plan;
//   - activation hysteresis: the monitor SET only changes when the
//     re-optimized set beats the best plan achievable on the currently
//     active set by a configurable relative gain. Sampling rates on the
//     active set are re-tuned every interval either way (a pure
//     configuration change, no activation churn).
package control

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"netsamp/internal/core"
	"netsamp/internal/engine"
	"netsamp/internal/loadtrack"
	"netsamp/internal/plan"
	"netsamp/internal/rng"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
)

// Options tunes the controller.
type Options struct {
	// Budget is θ as a sampled packet rate (core.BudgetPerInterval).
	Budget float64
	// SmoothAlpha is the EWMA weight of the newest load sample in
	// (0, 1]; 1 (the default when 0) disables smoothing.
	SmoothAlpha float64
	// SwitchGain is the minimum relative objective improvement required
	// to change the active monitor set (e.g. 0.01 = 1%). 0 disables
	// hysteresis: every interval adopts the unconstrained optimum.
	SwitchGain float64
	// ReviveAfter is the re-activation hysteresis: a monitor reported
	// down must then be observed healthy for this many consecutive
	// intervals before it rejoins the candidate set. 0 readmits a
	// recovered monitor immediately; flapping monitors warrant 1–2.
	ReviveAfter int
	// SolveTimeout bounds each interval's solver wall-clock time (zero
	// disables). A solve that overruns fails that interval's
	// re-optimization and the controller falls back to its last good
	// plan instead of blocking the deployment loop.
	SolveTimeout time.Duration
	// Model selects the effective-rate model every interval optimizes
	// under (nil = core.ModelLinear). It is part of the controller's
	// identity: snapshots record it and Restore rejects state solved
	// under a different model, keeping warm starts bitwise-deterministic.
	Model core.RateModel
	// Robust enables uncertainty-aware operation: a loadtrack.Tracker
	// maintains per-link confidence intervals from the observation
	// stream, solves run against the envelope edge Robust.Mode selects,
	// and Robust.ExplorationFrac of θ is spent re-observing the most
	// uncertain links. The zero value (RobustOff) preserves the plain
	// EWMA controller bit-for-bit.
	Robust RobustOptions
	// Approx enables the deadline-aware approximation policy: when the
	// exact solve is predicted to overrun SolveTimeout, the interval is
	// served by core.SolveApprox (Frank-Wolfe with a duality-gap
	// certificate) instead of degrading to the stale fallback plan. The
	// zero value disables the policy.
	Approx ApproxPolicy
	// Solve carries the inner solver options.
	Solve core.Options
}

// RobustOptions tunes the uncertainty-aware control loop.
type RobustOptions struct {
	// Mode selects the envelope edge each interval's solves optimize
	// against (core.RobustOff disables the tracker entirely).
	Mode core.RobustMode
	// ExplorationFrac reserves this fraction of θ (in [0, 0.5]) and
	// spreads it across the most-uncertain eligible links each interval,
	// so a link the exploitation plan turns off keeps producing
	// observations instead of drifting unseen. 0 disables exploration.
	ExplorationFrac float64
	// WidenFactor is the tracker's per-unobserved-interval multiplicative
	// confidence widening (default 1.25; must be >= 1, see
	// loadtrack.Config.WidenFactor).
	WidenFactor float64
}

// ApproxPolicy tunes the deadline-aware approximation fallback. The
// policy must be deterministic — the controller is replayable from its
// inputs, so it never consults the wall clock. Instead it predicts the
// exact solver's cost from problem size with a calibrated throughput
// model:
//
//	predicted seconds = NNZ · ExactIters / ExactRate
//
// and routes the interval to core.SolveApprox whenever the prediction
// exceeds SolveTimeout. The same instance therefore makes the same
// choice on every machine; ExactRate is the single knob that anchors
// the model to real hardware (see `netsamp bench -scale`).
type ApproxPolicy struct {
	// Enabled turns the policy on. Requires an additive rate model:
	// SolveApprox's gap certificate needs a concave objective, and New
	// rejects the combination up front rather than failing intervals.
	Enabled bool
	// ExactRate is the calibrated exact-solver throughput in
	// NNZ·iterations per second; 0 selects 2e6, measured on a single
	// commodity core (1000-link hierarchical instance, Newton-CG path).
	ExactRate float64
	// ExactIters is the iteration count the cost model charges the exact
	// solver; 0 selects 600 (the observed order of magnitude for
	// converged active-set runs on generated ISP-like instances).
	ExactIters int
	// Opts carries the inner Frank-Wolfe options for approximated
	// intervals (zero value = SolveApprox defaults).
	Opts core.ApproxOptions
}

func (ap ApproxPolicy) exactRate() float64 {
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if ap.ExactRate == 0 {
		return 2e6
	}
	return ap.ExactRate
}

func (ap ApproxPolicy) exactIters() int {
	if ap.ExactIters == 0 {
		return 600
	}
	return ap.ExactIters
}

// Overruns is the policy's cost model as a standalone predicate: true
// when an exact solve over nnz compiled incidence entries is predicted
// to exceed timeout. Exported so offline tooling (`netsamp bench
// -scale`) routes instances exactly the way a live controller would.
func (ap ApproxPolicy) Overruns(nnz int, timeout time.Duration) bool {
	if timeout <= 0 {
		return false
	}
	return float64(nnz)*float64(ap.exactIters())/ap.exactRate() > timeout.Seconds()
}

// Decision is the controller's output for one interval.
type Decision struct {
	// Plan is the sampling-rate assignment to deploy.
	Plan map[topology.LinkID]float64
	// Solution is the solver output behind Plan.
	Solution *core.Solution
	// SetChanged reports whether the active monitor set differs from the
	// previous interval's.
	SetChanged bool
	// Gain is the relative objective improvement of the unconstrained
	// optimum over the best retained-set plan (0 when the set was free
	// to begin with).
	Gain float64
	// Degraded reports that this interval's re-optimization failed and
	// Plan is the last known-good plan, restricted to surviving monitors
	// and rescaled to respect the budget. Solution is nil in that case.
	Degraded bool
	// Excluded lists candidate links withheld from this interval's
	// optimization: monitors reported down, plus recovered monitors
	// still serving their ReviveAfter probation.
	Excluded []topology.LinkID
	// Uncovered counts OD pairs that traverse no eligible link this
	// interval — unmeasurable until a monitor on their path revives. The
	// optimization proceeds for the remaining pairs (Solution indexes the
	// covered pairs only).
	Uncovered int
	// Explored lists links granted a slice of the exploration reserve
	// this interval (ascending LinkID; robust mode with a non-zero
	// ExplorationFrac only). Their Plan rates include the grant.
	Explored []topology.LinkID
	// Approximated reports that the deadline policy routed this
	// interval's deployed solve to core.SolveApprox because the exact
	// path was predicted to overrun SolveTimeout.
	Approximated bool
	// ApproxGap is the Frank-Wolfe duality-gap certificate of the
	// deployed solution when Approximated is set: the exact optimum is
	// provably within ApproxGap of Solution.Objective.
	ApproxGap float64
}

// Controller holds the cross-interval state. The zero value is not
// usable; construct with New.
type Controller struct {
	opts      Options
	active    []topology.LinkID // current monitor set (sorted)
	ewmaLoads []float64
	steps     int
	fallbacks int
	// lastGood is each monitor's most recent successfully solved rate —
	// merged across intervals, not just the latest (sparse) plan, so a
	// fallback can re-enable any surviving monitor at its last
	// configuration even if the previous interval's optimum skipped it.
	lastGood  map[topology.LinkID]float64
	probation map[topology.LinkID]int // healthy intervals still owed before readmission
	// cache holds the compiled (problem, solver) pairs across intervals:
	// as long as routing and the monitor sets are stable, each interval's
	// solves re-tune a compiled workspace instead of rebuilding it.
	cache *plan.Cache
	// tracker maintains the per-link load confidence intervals in robust
	// mode (nil when Robust.Mode is off); trackMeans is its point-
	// estimate scratch, playing the role ewmaLoads plays in plain mode.
	tracker    *loadtrack.Tracker
	trackMeans []float64
}

// New returns a controller. Every Options field is validated here, and
// each rejection is a typed *core.InputError (errors.Is-matchable
// against core.ErrInvalidInput), so callers can distinguish permanent
// configuration faults from transient solve failures.
func New(opts Options) (*Controller, error) {
	if math.IsNaN(opts.Budget) || math.IsInf(opts.Budget, 0) || !(opts.Budget > 0) {
		return nil, &core.InputError{Field: "controller budget", Index: -1, Value: opts.Budget, Reason: "want a finite value > 0"}
	}
	if math.IsNaN(opts.SmoothAlpha) || opts.SmoothAlpha < 0 || opts.SmoothAlpha > 1 {
		return nil, &core.InputError{Field: "smooth alpha", Index: -1, Value: opts.SmoothAlpha, Reason: "want the EWMA coefficient in (0, 1] (0 = unset selects 1)"}
	}
	if math.IsNaN(opts.SwitchGain) || math.IsInf(opts.SwitchGain, 0) || opts.SwitchGain < 0 {
		return nil, &core.InputError{Field: "switch gain", Index: -1, Value: opts.SwitchGain, Reason: "want a finite value >= 0"}
	}
	if opts.ReviveAfter < 0 {
		return nil, &core.InputError{Field: "revive after", Index: -1, Value: float64(opts.ReviveAfter), Reason: "want >= 0 intervals"}
	}
	if opts.SolveTimeout < 0 {
		return nil, &core.InputError{Field: "solve timeout", Index: -1, Value: opts.SolveTimeout.Seconds(), Reason: "want a non-negative duration"}
	}
	if opts.Robust.Mode != core.RobustOff && opts.Robust.Mode != core.RobustPessimistic && opts.Robust.Mode != core.RobustOptimistic {
		return nil, &core.InputError{Field: "robust mode", Index: -1, Value: float64(opts.Robust.Mode), Reason: "want off, pessimistic or optimistic"}
	}
	if math.IsNaN(opts.Robust.ExplorationFrac) || opts.Robust.ExplorationFrac < 0 || opts.Robust.ExplorationFrac > 0.5 {
		return nil, &core.InputError{Field: "exploration fraction", Index: -1, Value: opts.Robust.ExplorationFrac, Reason: "want a fraction of θ in [0, 0.5]"}
	}
	ar := opts.Approx.ExactRate
	if math.IsNaN(ar) || math.IsInf(ar, 0) || ar < 0 {
		return nil, &core.InputError{Field: "approx exact rate", Index: -1, Value: ar, Reason: "want a finite throughput > 0 in nnz·iters/s (0 = unset selects 2e6)"}
	}
	if opts.Approx.ExactIters < 0 {
		return nil, &core.InputError{Field: "approx exact iters", Index: -1, Value: float64(opts.Approx.ExactIters), Reason: "want >= 0 iterations (0 = unset selects 600)"}
	}
	if opts.Approx.Enabled && opts.Model != nil && !opts.Model.Additive() {
		return nil, &core.InputError{Field: "approx policy", Index: -1, Reason: "rate model " + opts.Model.Name() + " is not additive: SolveApprox's gap certificate needs a concave objective"}
	}
	wf := opts.Robust.WidenFactor
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if math.IsNaN(wf) || math.IsInf(wf, 0) || (wf != 0 && wf < 1) {
		return nil, &core.InputError{Field: "widen factor", Index: -1, Value: wf, Reason: "want a finite value >= 1 (0 = unset selects 1.25)"}
	}
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if opts.SmoothAlpha == 0 {
		opts.SmoothAlpha = 1
	}
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if opts.Robust.WidenFactor == 0 {
		opts.Robust.WidenFactor = 1.25
	}
	return &Controller{opts: opts, probation: make(map[topology.LinkID]int), cache: plan.NewCache()}, nil
}

// ActiveSet returns the currently active monitor links (sorted copy).
func (c *Controller) ActiveSet() []topology.LinkID {
	return append([]topology.LinkID(nil), c.active...)
}

// Steps returns how many intervals the controller has processed.
func (c *Controller) Steps() int { return c.steps }

// Fallbacks returns how many intervals were served from the last
// known-good plan because re-optimization failed.
func (c *Controller) Fallbacks() int { return c.fallbacks }

// ErrNoFallback wraps a failed re-optimization that could not be
// absorbed: no previous plan exists, or no surviving monitor carries it.
var ErrNoFallback = errors.New("control: re-optimization failed with no usable fallback plan")

// errInjectedSolve is the sentinel StepInput.FailSolve injects.
var errInjectedSolve = errors.New("control: injected solver failure")

// StepInput gathers one interval's observations for StepResilient.
type StepInput struct {
	// Matrix, Loads, Candidates and InvSizes are the interval's routing
	// matrix, raw per-link packet rates, monitorable link set and
	// per-pair E[1/S_k] — as in Step.
	Matrix     *routing.Matrix
	Loads      []float64
	Candidates []topology.LinkID
	InvSizes   []float64
	// Workers bounds the interval's concurrent solves (0 = GOMAXPROCS).
	Workers int
	// Down lists monitors observed failed this interval (crashed,
	// unreachable, or silent). They are excluded from the optimization
	// and re-enter only after ReviveAfter healthy intervals.
	Down []topology.LinkID
	// Observed marks which Loads entries are fresh observations this
	// interval (indexed like Loads; nil = all fresh). Robust mode only:
	// an unobserved link keeps its tracked estimate frozen and widens
	// its confidence interval. Down and probation links are forced
	// unobserved regardless — a crashed monitor reports nothing.
	Observed []bool
	// LoadRelErr is the relative standard error of each Loads entry
	// (indexed like Loads; nil = exact). Robust mode only: the netflow
	// estimator's delta-method error — inflated under transport loss,
	// +Inf for a no-information interval — feeds the tracker, so a lossy
	// or starved observation widens the link's interval instead of being
	// trusted outright (see netflow.LinkLoadObservation).
	LoadRelErr []float64
	// TransportLoss is the ingest tier's record-loss fraction ℓ in
	// [0, 1) for this interval — wire losses plus collector drops over
	// everything the exporters emitted (ingest.Collector.LossFraction).
	// In robust mode every observed load's relative error is inflated
	// in quadrature, relErr' = sqrt(relErr² + ℓ²/(1−ℓ)), so an interval
	// observed through a lossy ingest tier widens the tracker's
	// confidence intervals instead of being trusted at face value —
	// overload degrades confidence, it never silently biases the plan.
	// Plain (non-robust) mode carries no per-link uncertainty and
	// ignores the field.
	TransportLoss float64
	// FailSolve injects a solver failure (fault injection for tests and
	// degradation studies).
	FailSolve bool
	// Delay injects artificial solver latency ahead of the solve; with
	// SolveTimeout set it models an overrunning solver.
	Delay time.Duration
}

// Step ingests one interval's routing matrix, raw link loads (indexed by
// LinkID) and per-pair utility parameters, and returns the plan to
// deploy. candidates is the monitorable link set for this interval.
func (c *Controller) Step(matrix *routing.Matrix, loads []float64, candidates []topology.LinkID, invSizes []float64) (*Decision, error) {
	return c.StepContext(context.Background(), matrix, loads, candidates, invSizes, 0)
}

// StepContext is Step with cancellation. The interval's two solves — the
// unconstrained optimum and the retained-set re-tune the hysteresis rule
// compares it against — are independent, so they run as concurrent
// engine jobs.
func (c *Controller) StepContext(ctx context.Context, matrix *routing.Matrix, loads []float64, candidates []topology.LinkID, invSizes []float64, workers int) (*Decision, error) {
	return c.StepResilient(ctx, StepInput{
		Matrix:     matrix,
		Loads:      loads,
		Candidates: candidates,
		InvSizes:   invSizes,
		Workers:    workers,
	})
}

// StepResilient is the full controller step: StepContext plus the
// failure model. Monitors listed in in.Down are excluded from the
// optimization (and re-enter only after ReviveAfter consecutive healthy
// intervals); a solver failure or SolveTimeout overrun degrades to the
// last known-good plan restricted to surviving monitors and rescaled so
// Σ p_i·U_i ≤ θ still holds against the controller's load estimate.
func (c *Controller) StepResilient(ctx context.Context, in StepInput) (*Decision, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("control: step aborted: %w", err)
	}
	if len(in.Candidates) == 0 {
		return nil, fmt.Errorf("control: empty candidate set")
	}
	if math.IsNaN(in.TransportLoss) || in.TransportLoss < 0 || in.TransportLoss >= 1 {
		return nil, &core.InputError{Field: "transport loss", Index: -1, Value: in.TransportLoss, Reason: "want a record-loss fraction in [0, 1)"}
	}

	// Health bookkeeping: a down monitor is excluded and owes
	// ReviveAfter healthy intervals; a recovered monitor counts them
	// down in probation before rejoining.
	downSet := make(map[topology.LinkID]bool, len(in.Down))
	for _, lid := range in.Down {
		downSet[lid] = true
	}
	var eligible, excluded []topology.LinkID
	for _, lid := range in.Candidates {
		switch {
		case downSet[lid]:
			c.probation[lid] = c.opts.ReviveAfter
			excluded = append(excluded, lid)
		case c.probation[lid] > 0:
			c.probation[lid]--
			excluded = append(excluded, lid)
		default:
			delete(c.probation, lid)
			eligible = append(eligible, lid)
		}
	}
	// Hysteresis yields to coverage: a healthy monitor still serving its
	// probation is readmitted immediately when an OD pair would otherwise
	// traverse no eligible link — flap damping is not worth losing a
	// pair's measurement entirely.
	if len(excluded) > 0 {
		eligSet := make(map[topology.LinkID]bool, len(eligible))
		for _, lid := range eligible {
			eligSet[lid] = true
		}
		held := make(map[topology.LinkID]bool, len(excluded))
		for _, lid := range excluded {
			if !downSet[lid] {
				held[lid] = true
			}
		}
		readmitted := false
		for _, row := range in.Matrix.Rows {
			covered := false
			for _, lid := range row {
				if eligSet[lid] {
					covered = true
					break
				}
			}
			if covered {
				continue
			}
			for _, lid := range row {
				if held[lid] {
					delete(c.probation, lid)
					eligSet[lid] = true
					readmitted = true
				}
			}
		}
		if readmitted {
			eligible, excluded = eligible[:0], excluded[:0]
			for _, lid := range in.Candidates {
				if eligSet[lid] {
					eligible = append(eligible, lid)
				} else {
					excluded = append(excluded, lid)
				}
			}
		}
	}
	sort.Slice(excluded, func(i, j int) bool { return excluded[i] < excluded[j] })
	if len(eligible) == 0 {
		return nil, fmt.Errorf("control: no monitor eligible (%d candidates all down or in probation)", len(in.Candidates))
	}

	robust := c.opts.Robust.Mode != core.RobustOff
	var smoothed []float64
	if robust {
		// The tracker subsumes the EWMA filter: point estimates follow
		// the same (1-α)·old + α·new recursion, but each link also
		// carries a confidence interval that tightens on observation and
		// widens while unobserved (down, in probation, or simply not
		// sampled). The solves below run against the resulting envelope.
		var err error
		if smoothed, err = c.trackLoads(in, excluded); err != nil {
			return nil, err
		}
	} else {
		// EWMA the loads (element-wise; topology size may change between
		// steps — reset the filter if it does).
		if c.ewmaLoads == nil || len(c.ewmaLoads) != len(in.Loads) {
			c.ewmaLoads = append([]float64(nil), in.Loads...)
		} else {
			a := c.opts.SmoothAlpha
			for i, u := range in.Loads {
				c.ewmaLoads[i] = (1-a)*c.ewmaLoads[i] + a*u
			}
		}
		smoothed = c.ewmaLoads
	}

	// Pairs whose entire path lost its monitors are unmeasurable this
	// interval; dropping them (instead of failing the solve outright)
	// keeps the optimization alive for everyone else.
	eligMatrix, eligInv, uncovered := coverageFilter(in.Matrix, in.InvSizes, eligible)

	solveOn := func(cands []topology.LinkID) (*core.Solution, error) {
		m, inv := eligMatrix, eligInv
		if len(cands) != len(eligible) {
			m, inv, _ = coverageFilter(in.Matrix, in.InvSizes, cands)
		}
		if len(m.Pairs) == 0 {
			return nil, fmt.Errorf("control: no pair measurable on %d eligible links", len(cands))
		}
		// In robust mode the exploitation solve runs on the remaining
		// (1 - ExplorationFrac)·θ; the reserve is spent in explore below.
		budget := c.opts.Budget
		if robust {
			budget *= 1 - c.opts.Robust.ExplorationFrac
		}
		comp, err := c.cache.Get(plan.Input{
			Matrix:       m,
			Loads:        smoothed,
			Candidates:   cands,
			InvMeanSizes: inv,
			Budget:       budget,
			Model:        c.opts.Model,
		})
		if err != nil {
			return nil, err
		}
		// Warm-start from the last known-good rates: intervals are small
		// perturbations of each other, so the previous plan projected back
		// into today's feasible set is steps from the new optimum. lastGood
		// is only written after the interval's solves complete, so the
		// concurrent full/retained jobs read it safely.
		opt := c.opts.Solve
		if opt.Initial == nil && len(c.lastGood) > 0 {
			prev := make([]float64, len(cands))
			for j, lid := range cands {
				prev[j] = c.lastGood[lid]
			}
			if warm, werr := core.WarmStartRates(prev, comp.Problem(), nil); werr == nil {
				opt.Initial = warm
			}
		}
		var lo, hi []float64
		if robust {
			lo = make([]float64, len(cands))
			hi = make([]float64, len(cands))
			for j, lid := range cands {
				lo[j], hi[j] = c.tracker.Bounds(int(lid))
			}
		}
		if c.approxNeeded(comp.Solver()) {
			aopt := c.opts.Approx.Opts
			aopt.Initial = opt.Initial
			if robust {
				return comp.Solver().SolveRobustApprox(c.opts.Robust.Mode, lo, hi, aopt)
			}
			return comp.Solver().SolveApprox(aopt)
		}
		if robust {
			return comp.Solver().SolveRobust(c.opts.Robust.Mode, lo, hi, opt)
		}
		return comp.Solver().Solve(opt)
	}

	// Retained-set plan: re-tune rates on the intersection of the old
	// active set with today's eligible links (only meaningful once a set
	// is active and hysteresis is on). A failing retained solve means a
	// pair lost coverage — the set is infeasible and we must switch, so
	// its error is deliberately demoted to "no retained plan".
	var retained []topology.LinkID
	//netsamp:floateq-ok zero is the hysteresis-off sentinel, never a computed value
	if c.active != nil && c.opts.SwitchGain != 0 {
		retained = intersect(c.active, eligible)
	}
	// When the retained set IS the eligible set, both jobs would solve
	// the same problem — and, now that solves share cached workspaces,
	// would race on one compiled solver. Skip the duplicate job and alias
	// its result below.
	retainedIsFull := len(retained) > 0 && equalSets(retained, eligible)

	var full, retainedSol *core.Solution
	jobs := []engine.Job{
		func(jctx context.Context, _ *rng.Source) error {
			if in.Delay > 0 {
				t := time.NewTimer(in.Delay)
				select {
				case <-t.C:
				case <-jctx.Done():
					t.Stop()
					return jctx.Err()
				}
			}
			if in.FailSolve {
				return errInjectedSolve
			}
			var err error
			full, err = solveOn(eligible)
			return err
		},
	}
	if len(retained) > 0 && !retainedIsFull {
		jobs = append(jobs, func(context.Context, *rng.Source) error {
			retainedSol, _ = solveOn(retained)
			return nil
		})
	}
	runErr := engine.Run(ctx, engine.Options{Workers: in.Workers, JobTimeout: c.opts.SolveTimeout}, jobs...)
	if ctx.Err() != nil {
		// The caller's deadline, not a solver failure: no fallback.
		return nil, runErr
	}
	if runErr != nil || full == nil {
		d, err := c.fallback(runErr, eligible, excluded, smoothed)
		if err != nil {
			return nil, err
		}
		d.Uncovered = uncovered
		return d, nil
	}
	if retainedIsFull {
		retainedSol = full
	}
	fullRates := plan.RatesByLink(full, eligible)
	fullSet := topology.SortedKeys(fullRates)

	c.steps++
	// First interval, no hysteresis, or no previous set: adopt.
	//netsamp:floateq-ok zero is the hysteresis-off sentinel, never a computed value
	if c.active == nil || c.opts.SwitchGain == 0 {
		changed := !equalSets(c.active, fullSet)
		c.active = fullSet
		c.rememberGood(fullRates)
		return c.finish(&Decision{Plan: fullRates, Solution: full, SetChanged: changed, Excluded: excluded, Uncovered: uncovered}, eligible), nil
	}

	if retainedSol == nil {
		c.active = fullSet
		c.rememberGood(fullRates)
		return c.finish(&Decision{Plan: fullRates, Solution: full, SetChanged: true, Excluded: excluded, Uncovered: uncovered}, eligible), nil
	}
	gain := 0.0
	//netsamp:floateq-ok exact-zero guard against dividing by the objective
	if retainedSol.Objective != 0 {
		gain = (full.Objective - retainedSol.Objective) / math.Abs(retainedSol.Objective)
	}
	if gain > c.opts.SwitchGain {
		c.active = fullSet
		c.rememberGood(fullRates)
		return c.finish(&Decision{Plan: fullRates, Solution: full, SetChanged: true, Gain: gain, Excluded: excluded, Uncovered: uncovered}, eligible), nil
	}
	// Keep the set; deploy re-tuned rates.
	rates := plan.RatesByLink(retainedSol, retained)
	c.active = topology.SortedKeys(rates)
	c.rememberGood(rates)
	return c.finish(&Decision{Plan: rates, Solution: retainedSol, SetChanged: false, Gain: gain, Excluded: excluded, Uncovered: uncovered}, eligible), nil
}

// trackLoads runs one robust-mode tracker update: every eligible link's
// raw load (with its stated error) is ingested as an observation, while
// excluded links — down or in probation — and links the caller marked
// unobserved widen their intervals. Returns the tracker's point
// estimates, the robust counterpart of the EWMA-smoothed loads.
func (c *Controller) trackLoads(in StepInput, excluded []topology.LinkID) ([]float64, error) {
	if c.tracker == nil || c.tracker.Len() != len(in.Loads) {
		c.tracker = loadtrack.MustNew(len(in.Loads), c.trackerConfig())
	}
	observed := make([]bool, len(in.Loads))
	if in.Observed == nil {
		for i := range observed {
			observed[i] = true
		}
	} else {
		if len(in.Observed) != len(in.Loads) {
			return nil, fmt.Errorf("control: %d observed flags for %d loads", len(in.Observed), len(in.Loads))
		}
		copy(observed, in.Observed)
	}
	for _, lid := range excluded {
		if int(lid) >= 0 && int(lid) < len(observed) {
			observed[lid] = false
		}
	}
	relErr := in.LoadRelErr
	if in.TransportLoss > 0 {
		// Transport loss is uncertainty every observation of the
		// interval shares: fold ℓ²/(1−ℓ) — the variance inflation the
		// estimator applies under binomial thinning at rate ρ(1−ℓ) —
		// into each link's stated error in quadrature. nil LoadRelErr
		// means "exact", which under loss is exact no longer.
		if in.LoadRelErr != nil && len(in.LoadRelErr) != len(in.Loads) {
			return nil, fmt.Errorf("control: %d load errors for %d loads", len(in.LoadRelErr), len(in.Loads))
		}
		extra := in.TransportLoss * in.TransportLoss / (1 - in.TransportLoss)
		relErr = make([]float64, len(in.Loads))
		for i := range relErr {
			var base float64
			if in.LoadRelErr != nil {
				base = in.LoadRelErr[i]
			}
			relErr[i] = math.Sqrt(base*base + extra)
		}
	}
	if err := c.tracker.Observe(in.Loads, relErr, observed); err != nil {
		return nil, err
	}
	if len(c.trackMeans) != c.tracker.Len() {
		c.trackMeans = make([]float64, c.tracker.Len())
	}
	c.tracker.MeansInto(c.trackMeans)
	return c.trackMeans, nil
}

func (c *Controller) trackerConfig() loadtrack.Config {
	return loadtrack.Config{Alpha: c.opts.SmoothAlpha, WidenFactor: c.opts.Robust.WidenFactor}
}

// finish applies the exploration reserve to a freshly solved decision.
// The reserve deliberately bypasses the hysteresis machinery: c.active
// and the last-good rates hold the exploitation plan only, so a
// rotating exploration set neither trips SetChanged churn nor leaks
// into fallback rescaling.
func (c *Controller) finish(d *Decision, eligible []topology.LinkID) *Decision {
	if d.Solution != nil && d.Solution.Approx {
		// Record the deadline policy's choice: operators auditing an
		// interval can see it was served approximately and how far from
		// the exact optimum the certificate places it.
		d.Approximated = true
		d.ApproxGap = d.Solution.GapBound
	}
	if c.opts.Robust.Mode == core.RobustOff || !(c.opts.Robust.ExplorationFrac > 0) {
		return d
	}
	d.Explored = c.explore(d.Plan, eligible)
	return d
}

// approxNeeded is the deadline policy's deterministic routing decision:
// true when the cost model predicts the exact solve on this compiled
// instance would overrun SolveTimeout. Pure function of problem size
// and configuration — no clocks — so replays and multi-site deployments
// route identically.
func (c *Controller) approxNeeded(s *core.Solver) bool {
	ap := c.opts.Approx
	return ap.Enabled && ap.Overruns(s.NNZ(), c.opts.SolveTimeout)
}

// explore spends the ExplorationFrac·θ reserve on the K eligible links
// with the widest relative confidence intervals (ties broken by LinkID,
// so the choice is deterministic). Each chosen link's rate grows by its
// equal share of the reserve priced at the link's UPPER load bound —
// the grant can only underspend the reserve, never break the Σ p·U ≤ θ
// guarantee the pessimistic exploitation solve established.
func (c *Controller) explore(rates map[topology.LinkID]float64, eligible []topology.LinkID) []topology.LinkID {
	frac := c.opts.Robust.ExplorationFrac
	k := int(math.Ceil(frac * float64(len(eligible))))
	if k < 1 {
		k = 1
	}
	if k > len(eligible) {
		k = len(eligible)
	}
	order := append([]topology.LinkID(nil), eligible...)
	sort.Slice(order, func(i, j int) bool {
		ri, rj := c.tracker.Rel(int(order[i])), c.tracker.Rel(int(order[j]))
		//netsamp:floateq-ok an exact tie falls through to the LinkID order
		if ri != rj {
			return ri > rj
		}
		return order[i] < order[j]
	})
	share := c.opts.Budget * frac / float64(k)
	explored := make([]topology.LinkID, 0, k)
	for _, lid := range order[:k] {
		_, hi := c.tracker.Bounds(int(lid))
		if !(hi > 0) {
			continue
		}
		rates[lid] = math.Min(1, rates[lid]+share/hi)
		explored = append(explored, lid)
	}
	sort.Slice(explored, func(i, j int) bool { return explored[i] < explored[j] })
	return explored
}

// TrackerState returns a snapshot of the robust load tracker, or nil
// when none is live (robust mode off, or no robust step taken yet).
func (c *Controller) TrackerState() *loadtrack.State {
	if c.tracker == nil {
		return nil
	}
	st := c.tracker.Snapshot()
	return &st
}

// fallback serves an interval whose re-optimization failed: the last
// known-good plan restricted to surviving (eligible) monitors, rescaled
// so Σ p_i·U_i ≤ θ against the smoothed load estimate. The stored last
// good plan is left untouched — a later interval with more survivors
// restores their rates.
func (c *Controller) fallback(cause error, eligible, excluded []topology.LinkID, loads []float64) (*Decision, error) {
	if len(c.lastGood) == 0 {
		return nil, fmt.Errorf("%w: no previous plan (cause: %v)", ErrNoFallback, cause)
	}
	elig := make(map[topology.LinkID]bool, len(eligible))
	for _, lid := range eligible {
		elig[lid] = true
	}
	fb := make(map[topology.LinkID]float64)
	for lid, p := range c.lastGood {
		if elig[lid] {
			fb[lid] = p
		}
	}
	if len(fb) == 0 {
		return nil, fmt.Errorf("%w: no surviving monitor carries the previous plan (cause: %v)", ErrNoFallback, cause)
	}
	// Rescale into the budget: overspend (load growth since the plan was
	// made) scales down; capacity freed by dead monitors is re-spent on
	// the survivors, capped at rate 1. Either way Σ p_i·U_i ≤ θ holds.
	if spend := plan.SampledRate(fb, loads); spend > c.opts.Budget || spend < c.opts.Budget*(1-1e-6) && spend > 0 {
		scale := c.opts.Budget / spend
		for lid := range fb {
			fb[lid] = math.Min(1, fb[lid]*scale)
		}
	}
	set := topology.SortedKeys(fb)
	changed := !equalSets(c.active, set)
	c.active = set
	c.steps++
	c.fallbacks++
	return &Decision{Plan: fb, SetChanged: changed, Degraded: true, Excluded: excluded}, nil
}

// coverageFilter drops OD pairs that traverse no link of cands: their
// measurement is impossible on that monitor set, and failing the whole
// interval for them would be the opposite of graceful degradation. It
// returns the (possibly shared) filtered matrix, the matching utility
// parameters, and the number of pairs dropped.
func coverageFilter(m *routing.Matrix, inv []float64, cands []topology.LinkID) (*routing.Matrix, []float64, int) {
	set := make(map[topology.LinkID]bool, len(cands))
	for _, lid := range cands {
		set[lid] = true
	}
	keep := make([]bool, len(m.Pairs))
	dropped := 0
	for k, row := range m.Rows {
		for _, lid := range row {
			if set[lid] {
				keep[k] = true
				break
			}
		}
		if !keep[k] {
			dropped++
		}
	}
	if dropped == 0 {
		return m, inv, 0
	}
	fm := &routing.Matrix{}
	var finv []float64
	for k := range m.Pairs {
		if !keep[k] {
			continue
		}
		fm.Pairs = append(fm.Pairs, m.Pairs[k])
		fm.Rows = append(fm.Rows, m.Rows[k])
		if m.Fracs != nil {
			fm.Fracs = append(fm.Fracs, m.Fracs[k])
		}
		finv = append(finv, inv[k])
	}
	return fm, finv, dropped
}

// rememberGood merges a freshly solved plan into the per-monitor last
// known-good rates.
func (c *Controller) rememberGood(rates map[topology.LinkID]float64) {
	if c.lastGood == nil {
		c.lastGood = make(map[topology.LinkID]float64, len(rates))
	}
	for lid, p := range rates {
		c.lastGood[lid] = p
	}
}

func copyRates(m map[topology.LinkID]float64) map[topology.LinkID]float64 {
	out := make(map[topology.LinkID]float64, len(m))
	for lid, p := range m {
		out[lid] = p
	}
	return out
}

func equalSets(a, b []topology.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intersect(a, b []topology.LinkID) []topology.LinkID {
	set := make(map[topology.LinkID]bool, len(b))
	for _, lid := range b {
		set[lid] = true
	}
	var out []topology.LinkID
	for _, lid := range a {
		if set[lid] {
			out = append(out, lid)
		}
	}
	return out
}
