package control

import (
	"bytes"
	"context"
	"math"
	"testing"

	"netsamp/internal/core"
	"netsamp/internal/topology"
)

// sameDecision compares two decisions bitwise (plans, flags, counters).
func sameDecision(a, b *Decision) bool {
	if a.SetChanged != b.SetChanged || a.Degraded != b.Degraded ||
		a.Uncovered != b.Uncovered || a.Gain != b.Gain {
		return false
	}
	if len(a.Plan) != len(b.Plan) || len(a.Excluded) != len(b.Excluded) {
		return false
	}
	for lid, p := range a.Plan {
		if q, ok := b.Plan[lid]; !ok || p != q {
			return false
		}
	}
	for i := range a.Excluded {
		if a.Excluded[i] != b.Excluded[i] {
			return false
		}
	}
	return true
}

// TestSnapshotRestoreContinuation: a controller snapshotted mid-run,
// serialized, and restored into a fresh controller continues with
// decisions bit-identical to the uninterrupted original.
func TestSnapshotRestoreContinuation(t *testing.T) {
	s, inv := setup(t)
	opts := Options{Budget: core.BudgetPerInterval(100000, 300), SmoothAlpha: 0.5, SwitchGain: 0.01}
	orig, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	loads := append([]float64(nil), s.Loads...)
	step := func(c *Controller, ld []float64) *Decision {
		d, err := c.StepResilient(context.Background(), StepInput{
			Matrix: s.Matrix, Loads: ld, Candidates: s.MonitorLinks, InvSizes: inv,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// Drift loads each interval so the EWMA filter state matters.
	for i := 0; i < 3; i++ {
		step(orig, loads)
		for j := range loads {
			loads[j] *= 1.03
		}
	}

	blob, err := orig.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	blob2, _ := orig.Snapshot().MarshalBinary()
	if !bytes.Equal(blob, blob2) {
		t.Fatal("state encoding is not deterministic")
	}
	var st State
	if err := st.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	restored, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(st); err != nil {
		t.Fatal(err)
	}
	if restored.Steps() != orig.Steps() || restored.Fallbacks() != orig.Fallbacks() {
		t.Fatalf("counters: %d/%d vs %d/%d", restored.Steps(), restored.Fallbacks(), orig.Steps(), orig.Fallbacks())
	}

	// Continue both controllers on identical inputs: bit-identical plans.
	for i := 0; i < 3; i++ {
		da := step(orig, loads)
		db := step(restored, loads)
		if !sameDecision(da, db) {
			t.Fatalf("interval %d diverged after restore:\n%+v\n%+v", i, da, db)
		}
		for j := range loads {
			loads[j] *= 0.97
		}
	}
}

// TestRestoreMidProbation is the restore-then-StepResilient coverage: a
// controller restored from snapshot with a monitor mid-probation must
// honor the remaining ReviveAfter intervals, and a post-restore solver
// failure must be served from the restored lastGood rates.
func TestRestoreMidProbation(t *testing.T) {
	s, inv := setup(t)
	opts := Options{Budget: core.BudgetPerInterval(100000, 300), ReviveAfter: 3}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	base := StepInput{Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks, InvSizes: inv}
	d0, err := c.StepResilient(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	// A victim whose loss keeps every pair covered, so probation is not
	// overridden by the coverage rule.
	cand := make(map[topology.LinkID]bool, len(s.MonitorLinks))
	for _, lid := range s.MonitorLinks {
		cand[lid] = true
	}
	redundant := func(victim topology.LinkID) bool {
		for _, row := range s.Matrix.Rows {
			onPath, covered := false, false
			for _, lid := range row {
				if lid == victim {
					onPath = true
				} else if cand[lid] {
					covered = true
				}
			}
			if onPath && !covered {
				return false
			}
		}
		return true
	}
	// Pick the victim in sorted order: map iteration would choose a
	// different monitor each run, and the fallback-vs-lastGood assertion
	// below only holds for victims whose exclusion does not reshape the
	// solved monitor set.
	var victim topology.LinkID = -1
	for _, lid := range topology.SortedKeys(d0.Plan) {
		if redundant(lid) {
			victim = lid
			break
		}
	}
	if victim < 0 {
		t.Skip("no redundant monitor in this scenario")
	}
	in := base
	in.Down = []topology.LinkID{victim}
	if _, err := c.StepResilient(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	// One healthy interval served: 2 of the 3 probation intervals remain.
	if _, err := c.StepResilient(context.Background(), base); err != nil {
		t.Fatal(err)
	}

	blob, err := c.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := st.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if st.Probation[victim] != 2 {
		t.Fatalf("snapshot probation = %d, want 2 remaining", st.Probation[victim])
	}
	restored, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(st); err != nil {
		t.Fatal(err)
	}

	excludedHas := func(d *Decision) bool {
		for _, lid := range d.Excluded {
			if lid == victim {
				return true
			}
		}
		return false
	}
	// The restored controller owes exactly 2 more healthy intervals.
	for i := 0; i < 2; i++ {
		d, err := restored.StepResilient(context.Background(), base)
		if err != nil {
			t.Fatal(err)
		}
		if !excludedHas(d) {
			t.Fatalf("restored controller readmitted the monitor %d intervals early", 2-i)
		}
	}
	d, err := restored.StepResilient(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if excludedHas(d) {
		t.Fatal("monitor still excluded after serving restored probation")
	}

	// A solver failure on the restored controller falls back to the
	// restored lastGood rates.
	fail := base
	fail.FailSolve = true
	fd, err := restored.StepResilient(context.Background(), fail)
	if err != nil {
		t.Fatalf("restored lastGood did not serve the fallback: %v", err)
	}
	if !fd.Degraded {
		t.Fatal("forced failure not degraded")
	}
	for lid, p := range fd.Plan {
		if prev, ok := d.Plan[lid]; ok && p != prev && math.Abs(p-prev)/prev > 1e-9 {
			t.Fatalf("fallback rate of link %d is %v, previous good %v", lid, p, prev)
		}
	}
}

func TestStateUnmarshalRejectsGarbage(t *testing.T) {
	st := State{
		Active:    []topology.LinkID{1, 5},
		EWMALoads: []float64{10, 20, 30},
		Steps:     4,
		Fallbacks: 1,
		LastGood:  map[topology.LinkID]float64{1: 0.2, 5: 0.01},
		Probation: map[topology.LinkID]int{9: 2},
	}
	blob, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back State
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.Steps != 4 || back.Fallbacks != 1 || len(back.LastGood) != 2 ||
		back.Probation[9] != 2 || len(back.Active) != 2 || len(back.EWMALoads) != 3 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if err := back.UnmarshalBinary(blob[:len(blob)-2]); err == nil {
		t.Fatal("truncated state accepted")
	}
	if err := back.UnmarshalBinary(append(blob, 7)); err == nil {
		t.Fatal("oversized state accepted")
	}
	bad := append([]byte{}, blob...)
	bad[0] = 0xee
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Fatal("unknown version accepted")
	}

	// Restore validation.
	c, err := New(Options{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Restore(State{Steps: -1}); err == nil {
		t.Fatal("negative steps accepted")
	}
	if err := c.Restore(State{LastGood: map[topology.LinkID]float64{1: math.NaN()}}); err == nil {
		t.Fatal("NaN last-good rate accepted")
	}
	if err := c.Restore(State{Probation: map[topology.LinkID]int{1: -2}}); err == nil {
		t.Fatal("negative probation accepted")
	}
	if err := c.Restore(State{EWMALoads: []float64{math.Inf(1)}}); err == nil {
		t.Fatal("Inf EWMA load accepted")
	}
}
