package control

import (
	"errors"
	"math"
	"testing"
	"time"

	"netsamp/internal/core"
	"netsamp/internal/plan"
)

// The deadline-aware approximation policy: when the deterministic cost
// model predicts the exact solve would overrun SolveTimeout, the
// interval is served by core.SolveApprox and the Decision records both
// the routing choice and the duality-gap certificate.

func TestApproxPolicyValidation(t *testing.T) {
	base := Options{Budget: 1}
	bad := base
	bad.Approx.ExactRate = math.NaN()
	if _, err := New(bad); err == nil {
		t.Fatal("NaN exact rate accepted")
	}
	bad = base
	bad.Approx.ExactRate = -1
	if _, err := New(bad); err == nil {
		t.Fatal("negative exact rate accepted")
	}
	bad = base
	bad.Approx.ExactIters = -5
	if _, err := New(bad); err == nil {
		t.Fatal("negative exact iters accepted")
	}
	bad = base
	bad.Approx.Enabled = true
	bad.Model = core.ModelIndependentExact
	_, err := New(bad)
	if err == nil {
		t.Fatal("approx policy accepted a non-additive model")
	}
	var ie *core.InputError
	if !errors.As(err, &ie) {
		t.Fatalf("refusal error %T is not *core.InputError", err)
	}
	if !errors.Is(err, core.ErrInvalidInput) {
		t.Fatal("refusal does not match core.ErrInvalidInput")
	}
	// Additive non-default models remain fine.
	ok := base
	ok.Approx.Enabled = true
	ok.Model = core.ModelCoordinated
	if _, err := New(ok); err != nil {
		t.Fatalf("approx policy rejected an additive model: %v", err)
	}
}

func TestDeadlinePolicyFallsBackToApprox(t *testing.T) {
	s, inv := setup(t)
	budget := core.BudgetPerInterval(100000, 300)
	// An absurdly low calibrated throughput makes the cost model predict
	// hours for GEANT, so the policy must route to SolveApprox.
	c, err := New(Options{
		Budget:       budget,
		SolveTimeout: time.Second,
		Approx:       ApproxPolicy{Enabled: true, ExactRate: 1e-3},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Step(s.Matrix, s.Loads, s.MonitorLinks, inv)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Approximated {
		t.Fatal("Decision.Approximated not set")
	}
	if d.Solution == nil || !d.Solution.Approx {
		t.Fatal("deployed solution is not the approximation")
	}
	if d.ApproxGap != d.Solution.GapBound {
		t.Fatalf("ApproxGap %v != Solution.GapBound %v", d.ApproxGap, d.Solution.GapBound)
	}
	if d.ApproxGap < 0 || math.IsNaN(d.ApproxGap) {
		t.Fatalf("gap certificate %v", d.ApproxGap)
	}
	if len(d.Plan) == 0 {
		t.Fatal("empty plan")
	}
	if spend := plan.SampledRate(d.Plan, s.Loads); spend > budget*(1+1e-9) {
		t.Fatalf("approximated interval overspends: %v > %v", spend, budget)
	}
	// The approximated plan should still be near-optimal: compare its
	// objective against the exact controller on identical inputs.
	exactC, err := New(Options{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	ed, err := exactC.Step(s.Matrix, s.Loads, s.MonitorLinks, inv)
	if err != nil {
		t.Fatal(err)
	}
	scale := math.Max(1, math.Abs(ed.Solution.Objective))
	if ed.Solution.Objective > d.Solution.Objective+d.ApproxGap+1e-7*scale {
		t.Fatalf("gap certificate unsound against exact controller: exact %v > approx %v + gap %v",
			ed.Solution.Objective, d.Solution.Objective, d.ApproxGap)
	}
}

func TestDeadlinePolicyPrefersExactWhenCheap(t *testing.T) {
	s, inv := setup(t)
	// A generous throughput prediction keeps GEANT far under the
	// timeout: the interval must be served exactly.
	c, err := New(Options{
		Budget:       core.BudgetPerInterval(100000, 300),
		SolveTimeout: time.Minute,
		Approx:       ApproxPolicy{Enabled: true, ExactRate: 1e12},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Step(s.Matrix, s.Loads, s.MonitorLinks, inv)
	if err != nil {
		t.Fatal(err)
	}
	if d.Approximated || (d.Solution != nil && d.Solution.Approx) {
		t.Fatal("cheap solve was approximated")
	}
}

func TestDeadlinePolicyInertWithoutTimeout(t *testing.T) {
	s, inv := setup(t)
	// No SolveTimeout means no deadline to defend: the policy never
	// triggers, however pessimistic the cost model.
	c, err := New(Options{
		Budget: core.BudgetPerInterval(100000, 300),
		Approx: ApproxPolicy{Enabled: true, ExactRate: 1e-6},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Step(s.Matrix, s.Loads, s.MonitorLinks, inv)
	if err != nil {
		t.Fatal(err)
	}
	if d.Approximated {
		t.Fatal("policy triggered without a SolveTimeout")
	}
}

func TestDeadlinePolicyRobustMode(t *testing.T) {
	s, inv := setup(t)
	budget := core.BudgetPerInterval(100000, 300)
	c, err := New(Options{
		Budget:       budget,
		SolveTimeout: time.Second,
		Approx:       ApproxPolicy{Enabled: true, ExactRate: 1e-3},
		Robust:       RobustOptions{Mode: core.RobustPessimistic},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.StepResilient(t.Context(), StepInput{
		Matrix:     s.Matrix,
		Loads:      s.Loads,
		Candidates: s.MonitorLinks,
		InvSizes:   inv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Approximated || d.Solution == nil || !d.Solution.Approx {
		t.Fatal("robust interval not served by the approximation")
	}
	if spend := plan.SampledRate(d.Plan, s.Loads); spend > budget*(1+1e-9) {
		t.Fatalf("robust approximated interval overspends: %v > %v", spend, budget)
	}
}

func TestDeadlinePolicyDeterministic(t *testing.T) {
	s, inv := setup(t)
	run := func() *Decision {
		c, err := New(Options{
			Budget:       core.BudgetPerInterval(100000, 300),
			SolveTimeout: time.Second,
			Approx:       ApproxPolicy{Enabled: true, ExactRate: 1e-3},
		})
		if err != nil {
			t.Fatal(err)
		}
		d, err := c.Step(s.Matrix, s.Loads, s.MonitorLinks, inv)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := run(), run()
	if a.Solution.Objective != b.Solution.Objective || a.ApproxGap != b.ApproxGap {
		t.Fatalf("approximated interval not deterministic: obj %v/%v gap %v/%v",
			a.Solution.Objective, b.Solution.Objective, a.ApproxGap, b.ApproxGap)
	}
	for lid, p := range a.Plan {
		if b.Plan[lid] != p {
			t.Fatalf("plan rate for link %d differs across identical runs", lid)
		}
	}
}
