package control

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"netsamp/internal/core"
	"netsamp/internal/geant"
	"netsamp/internal/rng"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
)

func setup(t *testing.T) (*geant.Scenario, []float64) {
	t.Helper()
	s := geant.MustBuild(1)
	return s, s.UtilityParams(300)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Budget: 0}); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := New(Options{Budget: 1, SmoothAlpha: 2}); err == nil {
		t.Fatal("bad alpha accepted")
	}
	if _, err := New(Options{Budget: 1, SwitchGain: -1}); err == nil {
		t.Fatal("negative gain accepted")
	}
}

func TestFirstStepAdopts(t *testing.T) {
	s, inv := setup(t)
	c, err := New(Options{Budget: core.BudgetPerInterval(100000, 300)})
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Step(s.Matrix, s.Loads, s.MonitorLinks, inv)
	if err != nil {
		t.Fatal(err)
	}
	if !d.SetChanged {
		t.Fatal("first step must adopt a set")
	}
	if len(d.Plan) == 0 || len(c.ActiveSet()) != len(d.Plan) {
		t.Fatalf("plan/active mismatch: %d vs %d", len(d.Plan), len(c.ActiveSet()))
	}
	if c.Steps() != 1 {
		t.Fatalf("steps = %d", c.Steps())
	}
}

func TestHysteresisKeepsSetUnderNoise(t *testing.T) {
	s, inv := setup(t)
	c, err := New(Options{
		Budget:      core.BudgetPerInterval(100000, 300),
		SwitchGain:  0.01,
		SmoothAlpha: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(s.Matrix, s.Loads, s.MonitorLinks, inv); err != nil {
		t.Fatal(err)
	}
	first := c.ActiveSet()
	// Ten noisy intervals: ±5% load jitter must not churn the set.
	r := rng.New(9)
	for i := 0; i < 10; i++ {
		loads := make([]float64, len(s.Loads))
		for j, u := range s.Loads {
			loads[j] = u * (0.95 + 0.1*r.Float64())
		}
		d, err := c.Step(s.Matrix, loads, s.MonitorLinks, inv)
		if err != nil {
			t.Fatal(err)
		}
		if d.SetChanged {
			t.Fatalf("interval %d: set churned under noise (gain %v)", i, d.Gain)
		}
		// Rates are still re-tuned: budget holds on smoothed loads.
		if len(d.Plan) == 0 {
			t.Fatal("empty plan")
		}
	}
	if !sameSet(first, c.ActiveSet()) {
		t.Fatal("active set drifted")
	}
}

func TestSwitchOnStructuralChange(t *testing.T) {
	s, inv := setup(t)
	c, err := New(Options{
		Budget:     core.BudgetPerInterval(100000, 300),
		SwitchGain: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(s.Matrix, s.Loads, s.MonitorLinks, inv); err != nil {
		t.Fatal(err)
	}
	// Fail FR-CH: routing changes, pair coverage moves — the controller
	// must accept the new matrix and keep every pair measurable.
	frch, _ := s.Graph.FindLink(s.Graph.MustNode("FR"), s.Graph.MustNode("CH"))
	chfr, _ := s.Graph.FindLink(s.Graph.MustNode("CH"), s.Graph.MustNode("FR"))
	s.Graph.SetDown(frch, true)
	s.Graph.SetDown(chfr, true)
	defer func() {
		s.Graph.SetDown(frch, false)
		s.Graph.SetDown(chfr, false)
	}()
	tbl := routing.ComputeTable(s.Graph)
	matrix, err := routing.BuildMatrix(tbl, s.Pairs)
	if err != nil {
		t.Fatal(err)
	}
	var candidates []topology.LinkID
	for _, lid := range matrix.LinkSet() {
		if !s.Graph.Link(lid).Access {
			candidates = append(candidates, lid)
		}
	}
	d, err := c.Step(matrix, s.Loads, candidates, inv)
	if err != nil {
		t.Fatal(err)
	}
	for k, rho := range d.Solution.Rho {
		if rho <= 0 {
			t.Fatalf("pair %d unmonitored after failure", k)
		}
	}
}

func TestNoHysteresisAlwaysAdoptsOptimum(t *testing.T) {
	s, inv := setup(t)
	c, err := New(Options{Budget: core.BudgetPerInterval(100000, 300)})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := c.Step(s.Matrix, s.Loads, s.MonitorLinks, inv)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.Step(s.Matrix, s.Loads, s.MonitorLinks, inv)
	if err != nil {
		t.Fatal(err)
	}
	// Identical conditions: the second step adopts the same set (no
	// change) and the same objective.
	if d2.SetChanged {
		t.Fatal("set changed under identical conditions")
	}
	if math.Abs(d1.Solution.Objective-d2.Solution.Objective) > 1e-9 {
		t.Fatalf("objective drifted: %v vs %v", d1.Solution.Objective, d2.Solution.Objective)
	}
}

func TestEWMASmoothing(t *testing.T) {
	s, inv := setup(t)
	c, err := New(Options{
		Budget:      core.BudgetPerInterval(100000, 300),
		SmoothAlpha: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(s.Matrix, s.Loads, s.MonitorLinks, inv); err != nil {
		t.Fatal(err)
	}
	// A 10x load spike, heavily smoothed: effective loads move ~1.9x
	// only (after two EWMA steps at alpha 0.1 starting from the spike).
	spiked := make([]float64, len(s.Loads))
	for i, u := range s.Loads {
		spiked[i] = 10 * u
	}
	d, err := c.Step(s.Matrix, spiked, s.MonitorLinks, inv)
	if err != nil {
		t.Fatal(err)
	}
	// The deployed plan spends the budget against the SMOOTHED loads;
	// against the spiked raw loads it would overspend by far less than
	// 10x thanks to smoothing.
	spent := 0.0
	for lid, p := range d.Plan {
		spent += p * spiked[lid]
	}
	budget := core.BudgetPerInterval(100000, 300)
	if spent < budget {
		t.Fatalf("spend %v below budget %v — smoothing inverted?", spent, budget)
	}
	if spent > 6*budget {
		t.Fatalf("spend %v: smoothing ineffective", spent)
	}
}

func sameSet(a, b []topology.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSwitchWhenRetainedSetLosesCoverage: if the previously active set
// cannot cover a pair under new routing, the controller must switch
// regardless of hysteresis.
func TestSwitchWhenRetainedSetLosesCoverage(t *testing.T) {
	g := topology.New()
	a, b, c := g.AddNode("A"), g.AddNode("B"), g.AddNode("C")
	ab, _ := g.AddDuplex(a, b, topology.OC48, 1)
	bc, _ := g.AddDuplex(b, c, topology.OC48, 1)
	ac, _ := g.AddDuplex(a, c, topology.OC48, 5)
	tbl := routing.ComputeTable(g)
	pairs := []routing.ODPair{{Name: "A->C", Src: a, Dst: c}}
	m1, err := routing.BuildMatrix(tbl, pairs)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, g.NumLinks())
	loads[ab], loads[bc], loads[ac] = 1000, 1000, 50
	for i := range loads {
		if loads[i] == 0 {
			loads[i] = 1
		}
	}
	ctl, err := New(Options{Budget: 5, SwitchGain: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Interval 0: path A->B->C; candidates are those two links.
	d0, err := ctl.Step(m1, loads, []topology.LinkID{ab, bc}, []float64{0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(d0.Plan) == 0 {
		t.Fatal("no initial plan")
	}
	// Interval 1: A->B fails; path becomes A->C directly. The old set
	// (ab/bc) covers nothing — the controller must switch to ac.
	g.SetDown(ab, true)
	tbl2 := routing.ComputeTable(g)
	m2, err := routing.BuildMatrix(tbl2, pairs)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := ctl.Step(m2, loads, []topology.LinkID{ac}, []float64{0.001})
	if err != nil {
		t.Fatal(err)
	}
	if !d1.SetChanged {
		t.Fatal("controller kept a set that lost coverage")
	}
	if _, ok := d1.Plan[ac]; !ok {
		t.Fatalf("new plan misses the only viable link: %v", d1.Plan)
	}
}

func TestStepEmptyCandidates(t *testing.T) {
	s, inv := setup(t)
	ctl, err := New(Options{Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Step(s.Matrix, s.Loads, nil, inv); err == nil {
		t.Fatal("empty candidate set accepted")
	}
}

// TestStepContextMatchesStep: the concurrent two-solve StepContext path
// must make the same decisions as the sequential Step wrapper — the
// parallel full/retained solves share no state and float work is
// aggregated deterministically.
func TestStepContextMatchesStep(t *testing.T) {
	s, inv := setup(t)
	mk := func() *Controller {
		c, err := New(Options{
			Budget:      core.BudgetPerInterval(100000, 300),
			SwitchGain:  0.01,
			SmoothAlpha: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	r := rng.New(31)
	for i := 0; i < 6; i++ {
		loads := make([]float64, len(s.Loads))
		for j, u := range s.Loads {
			loads[j] = u * (0.9 + 0.2*r.Float64())
		}
		da, err := a.Step(s.Matrix, loads, s.MonitorLinks, inv)
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.StepContext(context.Background(), s.Matrix, loads, s.MonitorLinks, inv, 2)
		if err != nil {
			t.Fatal(err)
		}
		if da.SetChanged != db.SetChanged || da.Gain != db.Gain {
			t.Fatalf("interval %d: decision diverged: %+v vs %+v", i, da, db)
		}
		if !reflect.DeepEqual(da.Plan, db.Plan) {
			t.Fatalf("interval %d: plans diverged", i)
		}
		if !sameSet(a.ActiveSet(), b.ActiveSet()) {
			t.Fatalf("interval %d: active sets diverged", i)
		}
	}
}

// TestStepContextCancelled: a cancelled context aborts the interval.
func TestStepContextCancelled(t *testing.T) {
	s, inv := setup(t)
	c, err := New(Options{Budget: core.BudgetPerInterval(100000, 300)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.StepContext(ctx, s.Matrix, s.Loads, s.MonitorLinks, inv, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
