package control

import (
	"fmt"
	"math"
	"sort"

	"netsamp/internal/core"
	"netsamp/internal/loadtrack"
	"netsamp/internal/plan"
	"netsamp/internal/state"
	"netsamp/internal/topology"
)

// State is the controller's restorable cross-interval memory: the active
// monitor set, the EWMA load filter, the step/fallback counters, the
// last-known-good per-monitor rates the fallback path serves, and the
// probation clocks of recovering monitors. The compiled plan cache is
// deliberately NOT part of the state — re-tuning a freshly compiled
// solver is bitwise identical to re-tuning a cached one, so rebuilding
// it cold after a restore cannot perturb the decision sequence.
type State struct {
	// Active is the current monitor set; nil means no set has been
	// adopted yet (the nil/empty distinction drives first-interval
	// adoption and is preserved across a snapshot).
	Active []topology.LinkID
	// EWMALoads is the load filter state; nil means uninitialized.
	EWMALoads []float64
	Steps     int
	Fallbacks int
	LastGood  map[topology.LinkID]float64
	Probation map[topology.LinkID]int
	// Model is the rate-model identity (core.ModelName) the state was
	// solved under. Restore rejects a mismatch with the restoring
	// controller's configured model: last-good rates from another model
	// would silently perturb the warm-start trajectory. Empty means
	// unrecorded (hand-built states) and matches any model.
	Model string
	// Tracker is the robust load tracker's state (nil when the snapshot
	// was taken without a live tracker). A version-2 snapshot decodes
	// with Tracker nil, so a pre-robust checkpoint restores into a
	// robust controller with a cold tracker that re-learns from the
	// observation stream.
	Tracker *loadtrack.State
}

// controllerStateVersion stamps the State binary encoding. Version 2
// added the rate-model identity; version 3 appended the optional load
// tracker. Version-2 payloads are still accepted (cold tracker);
// version-1 payloads are rejected (the daemon's corrupt-snapshot
// fallback restarts cold, which is safe).
const controllerStateVersion = 3

// legacyStateVersion is the newest pre-tracker encoding still accepted.
const legacyStateVersion = 2

// Snapshot captures the controller's cross-interval state (deep copies;
// later steps do not mutate the snapshot).
func (c *Controller) Snapshot() State {
	st := State{
		Steps:     c.steps,
		Fallbacks: c.fallbacks,
		Model:     core.ModelName(c.opts.Model),
	}
	if c.active != nil {
		st.Active = append([]topology.LinkID{}, c.active...)
	}
	if c.ewmaLoads != nil {
		st.EWMALoads = append([]float64{}, c.ewmaLoads...)
	}
	if c.lastGood != nil {
		st.LastGood = copyRates(c.lastGood)
	}
	if len(c.probation) > 0 {
		st.Probation = make(map[topology.LinkID]int, len(c.probation))
		for lid, n := range c.probation {
			st.Probation[lid] = n
		}
	}
	st.Tracker = c.TrackerState()
	return st
}

// Restore replaces the controller's cross-interval state with st (deep
// copies) after validating it. The plan cache restarts cold; warm starts
// derive from the restored LastGood rates exactly as they would have in
// an uninterrupted run.
func (c *Controller) Restore(st State) error {
	if st.Steps < 0 || st.Fallbacks < 0 || st.Fallbacks > st.Steps {
		return fmt.Errorf("control: restore: %d fallbacks over %d steps", st.Fallbacks, st.Steps)
	}
	// An unstamped (pre-versioning or hand-built) state was implicitly
	// solved under the linear model.
	stateModel := st.Model
	if stateModel == "" {
		stateModel = "linear"
	}
	if stateModel != core.ModelName(c.opts.Model) {
		return fmt.Errorf("control: restore: state solved under rate model %s, controller runs %s", stateModel, core.ModelName(c.opts.Model))
	}
	// Sorted iteration keeps the reported error deterministic when more
	// than one entry is invalid.
	for _, lid := range topology.SortedKeys(st.LastGood) {
		if p := st.LastGood[lid]; math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1 {
			return fmt.Errorf("control: restore: last-good rate of link %d is %v, want [0, 1]", lid, p)
		}
	}
	for _, lid := range topology.SortedKeys(st.Probation) {
		if n := st.Probation[lid]; n < 0 {
			return fmt.Errorf("control: restore: probation of link %d is %d, want >= 0", lid, n)
		}
	}
	for _, u := range st.EWMALoads {
		if math.IsNaN(u) || math.IsInf(u, 0) || u < 0 {
			return fmt.Errorf("control: restore: EWMA load %v, want finite >= 0", u)
		}
	}
	// Validate the tracker before mutating anything, so a rejected state
	// leaves the controller untouched.
	var tracker *loadtrack.Tracker
	if st.Tracker != nil && c.opts.Robust.Mode != core.RobustOff {
		tracker = loadtrack.MustNew(0, c.trackerConfig())
		if err := tracker.Restore(*st.Tracker); err != nil {
			return fmt.Errorf("control: restore: %w", err)
		}
	}
	c.steps = st.Steps
	c.fallbacks = st.Fallbacks
	c.active = nil
	if st.Active != nil {
		c.active = append([]topology.LinkID{}, st.Active...)
		sort.Slice(c.active, func(i, j int) bool { return c.active[i] < c.active[j] })
	}
	c.ewmaLoads = nil
	if st.EWMALoads != nil {
		c.ewmaLoads = append([]float64{}, st.EWMALoads...)
	}
	c.lastGood = nil
	if st.LastGood != nil {
		c.lastGood = copyRates(st.LastGood)
	}
	c.probation = make(map[topology.LinkID]int, len(st.Probation))
	for lid, n := range st.Probation {
		c.probation[lid] = n
	}
	// A snapshot without tracker state — or one restored into a
	// non-robust controller, where it could not influence a decision —
	// starts the tracker cold; robust steps re-learn the intervals.
	c.tracker = tracker
	c.trackMeans = nil
	c.cache = plan.NewCache()
	return nil
}

// MarshalBinary encodes the state deterministically: link sets sorted,
// maps serialized in ascending LinkID order, floats as IEEE-754 bits.
func (s State) MarshalBinary() ([]byte, error) {
	var e state.Encoder
	e.U16(controllerStateVersion)
	e.Bool(s.Active != nil)
	if s.Active != nil {
		sorted := append([]topology.LinkID{}, s.Active...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		e.U32(uint32(len(sorted)))
		for _, lid := range sorted {
			e.I64(int64(lid))
		}
	}
	e.Bool(s.EWMALoads != nil)
	if s.EWMALoads != nil {
		e.U32(uint32(len(s.EWMALoads)))
		for _, u := range s.EWMALoads {
			e.F64(u)
		}
	}
	e.I64(int64(s.Steps))
	e.I64(int64(s.Fallbacks))
	e.U32(uint32(len(s.LastGood)))
	for _, lid := range topology.SortedKeys(s.LastGood) {
		e.I64(int64(lid))
		e.F64(s.LastGood[lid])
	}
	probKeys := topology.SortedKeys(s.Probation)
	e.U32(uint32(len(probKeys)))
	for _, lid := range probKeys {
		e.I64(int64(lid))
		e.I64(int64(s.Probation[lid]))
	}
	e.Bytes([]byte(s.Model))
	e.Bool(s.Tracker != nil)
	if s.Tracker != nil {
		blob, err := s.Tracker.MarshalBinary()
		if err != nil {
			return nil, err
		}
		e.Bytes(blob)
	}
	return e.Data(), nil
}

// UnmarshalBinary decodes a state produced by MarshalBinary, rejecting
// unknown versions and malformed payloads. Version-2 payloads (without
// the tracker) are accepted with Tracker nil; corrupt tracker bytes in
// a version-3 payload are rejected with an error wrapping
// state.ErrCodec.
func (s *State) UnmarshalBinary(b []byte) error {
	d := state.NewDecoder(b)
	v := d.U16()
	if d.Err() == nil && v != legacyStateVersion && v != controllerStateVersion {
		return fmt.Errorf("control: unknown state version %d", v)
	}
	*s = State{}
	if d.Bool() {
		n := d.Len(8)
		s.Active = make([]topology.LinkID, 0, n)
		for i := 0; i < n; i++ {
			s.Active = append(s.Active, topology.LinkID(d.I64()))
		}
	}
	if d.Bool() {
		n := d.Len(8)
		s.EWMALoads = make([]float64, 0, n)
		for i := 0; i < n; i++ {
			s.EWMALoads = append(s.EWMALoads, d.F64())
		}
	}
	s.Steps = int(d.I64())
	s.Fallbacks = int(d.I64())
	if n := d.Len(16); n > 0 {
		s.LastGood = make(map[topology.LinkID]float64, n)
		for i := 0; i < n; i++ {
			lid := topology.LinkID(d.I64())
			s.LastGood[lid] = d.F64()
		}
	}
	if n := d.Len(16); n > 0 {
		s.Probation = make(map[topology.LinkID]int, n)
		for i := 0; i < n; i++ {
			lid := topology.LinkID(d.I64())
			s.Probation[lid] = int(d.I64())
		}
	}
	s.Model = string(d.Bytes())
	if v >= controllerStateVersion && d.Bool() {
		blob := d.Bytes()
		if d.Err() == nil {
			ts := &loadtrack.State{}
			if err := ts.UnmarshalBinary(blob); err != nil {
				return fmt.Errorf("control: tracker state: %w", err)
			}
			s.Tracker = ts
		}
	}
	return d.Finish()
}
