package control

import (
	"context"
	"errors"
	"testing"
	"time"

	"netsamp/internal/core"
	"netsamp/internal/faults"
	"netsamp/internal/plan"
	"netsamp/internal/topology"
)

func TestNewResilienceValidation(t *testing.T) {
	if _, err := New(Options{Budget: 1, ReviveAfter: -1}); err == nil {
		t.Fatal("negative revive hysteresis accepted")
	}
	if _, err := New(Options{Budget: 1, SolveTimeout: -time.Second}); err == nil {
		t.Fatal("negative solve timeout accepted")
	}
}

func TestStepResilientFallbackOnSolverFailure(t *testing.T) {
	s, inv := setup(t)
	c, err := New(Options{Budget: core.BudgetPerInterval(100000, 300)})
	if err != nil {
		t.Fatal(err)
	}
	base := StepInput{Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks, InvSizes: inv}
	d0, err := c.StepResilient(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if d0.Degraded {
		t.Fatal("healthy interval marked degraded")
	}
	in := base
	in.FailSolve = true
	d1, err := c.StepResilient(context.Background(), in)
	if err != nil {
		t.Fatalf("solver failure not absorbed: %v", err)
	}
	if !d1.Degraded || d1.Solution != nil {
		t.Fatalf("fallback decision = %+v", d1)
	}
	// The fallback redeploys the previous plan verbatim (same survivors,
	// same loads).
	if len(d1.Plan) != len(d0.Plan) {
		t.Fatalf("fallback plan size %d != %d", len(d1.Plan), len(d0.Plan))
	}
	for lid, p := range d0.Plan {
		if d1.Plan[lid] != p {
			t.Fatalf("fallback rate diverged on link %d", lid)
		}
	}
	if c.Fallbacks() != 1 || c.Steps() != 2 {
		t.Fatalf("fallbacks=%d steps=%d", c.Fallbacks(), c.Steps())
	}
	// Recovery: the next healthy interval solves normally again.
	d2, err := c.StepResilient(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Degraded || d2.Solution == nil {
		t.Fatalf("controller stuck degraded: %+v", d2)
	}
}

func TestStepResilientNoFallbackOnFirstStep(t *testing.T) {
	s, inv := setup(t)
	c, err := New(Options{Budget: core.BudgetPerInterval(100000, 300)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.StepResilient(context.Background(), StepInput{
		Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks, InvSizes: inv,
		FailSolve: true,
	})
	if !errors.Is(err, ErrNoFallback) {
		t.Fatalf("want ErrNoFallback, got %v", err)
	}
}

func TestStepResilientSolveTimeout(t *testing.T) {
	s, inv := setup(t)
	c, err := New(Options{
		Budget:       core.BudgetPerInterval(100000, 300),
		SolveTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := StepInput{Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks, InvSizes: inv}
	if _, err := c.StepResilient(context.Background(), base); err != nil {
		t.Fatal(err)
	}
	in := base
	in.Delay = time.Second // models a solver stuck far past its deadline
	d, err := c.StepResilient(context.Background(), in)
	if err != nil {
		t.Fatalf("overrun not absorbed: %v", err)
	}
	if !d.Degraded {
		t.Fatal("overrun interval not degraded")
	}
}

func TestStepResilientParentCancellationWins(t *testing.T) {
	s, inv := setup(t)
	c, err := New(Options{Budget: core.BudgetPerInterval(100000, 300)})
	if err != nil {
		t.Fatal(err)
	}
	base := StepInput{Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks, InvSizes: inv}
	if _, err := c.StepResilient(context.Background(), base); err != nil {
		t.Fatal(err)
	}
	// A caller deadline expiring mid-step must surface as the context
	// error, never be papered over by a fallback plan.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	in := base
	in.Delay = time.Second
	if _, err := c.StepResilient(ctx, in); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

// TestStepResilientReviveHysteresis: a monitor that crashed rejoins the
// optimization only after ReviveAfter consecutive healthy intervals.
func TestStepResilientReviveHysteresis(t *testing.T) {
	s, inv := setup(t)
	c, err := New(Options{Budget: core.BudgetPerInterval(100000, 300), ReviveAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := StepInput{Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks, InvSizes: inv}
	d0, err := c.StepResilient(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a victim whose loss leaves every pair covered: probation must
	// not be overridden by the coverage rule for this test.
	cand := make(map[topology.LinkID]bool, len(s.MonitorLinks))
	for _, lid := range s.MonitorLinks {
		cand[lid] = true
	}
	redundant := func(victim topology.LinkID) bool {
		for _, row := range s.Matrix.Rows {
			onPath, covered := false, false
			for _, lid := range row {
				if lid == victim {
					onPath = true
				} else if cand[lid] {
					covered = true
				}
			}
			if onPath && !covered {
				return false
			}
		}
		return true
	}
	var victim topology.LinkID = -1
	for lid := range d0.Plan {
		if redundant(lid) {
			victim = lid
			break
		}
	}
	if victim < 0 {
		t.Skip("no redundant monitor in this scenario")
	}
	excludedHas := func(d *Decision) bool {
		for _, lid := range d.Excluded {
			if lid == victim {
				return true
			}
		}
		return false
	}
	in := base
	in.Down = []topology.LinkID{victim}
	d1, err := c.StepResilient(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !excludedHas(d1) {
		t.Fatal("down monitor not excluded")
	}
	if _, ok := d1.Plan[victim]; ok {
		t.Fatal("down monitor deployed")
	}
	// Two healthy intervals of probation, then readmission.
	for i := 0; i < 2; i++ {
		d, err := c.StepResilient(context.Background(), base)
		if err != nil {
			t.Fatal(err)
		}
		if !excludedHas(d) {
			t.Fatalf("probation interval %d readmitted the monitor early", i)
		}
	}
	d4, err := c.StepResilient(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if excludedHas(d4) {
		t.Fatal("monitor still excluded after serving its probation")
	}
}

// TestStepResilientProbationYieldsToCoverage: a healthy monitor still on
// probation is readmitted early when an OD pair would otherwise have no
// eligible link on its path.
func TestStepResilientProbationYieldsToCoverage(t *testing.T) {
	s, inv := setup(t)
	c, err := New(Options{Budget: core.BudgetPerInterval(100000, 300), ReviveAfter: 5})
	if err != nil {
		t.Fatal(err)
	}
	base := StepInput{Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks, InvSizes: inv}
	if _, err := c.StepResilient(context.Background(), base); err != nil {
		t.Fatal(err)
	}
	// Find a monitor that is the sole candidate on some pair's path.
	cand := make(map[topology.LinkID]bool, len(s.MonitorLinks))
	for _, lid := range s.MonitorLinks {
		cand[lid] = true
	}
	var sole topology.LinkID = -1
	for _, row := range s.Matrix.Rows {
		var onPath []topology.LinkID
		for _, lid := range row {
			if cand[lid] {
				onPath = append(onPath, lid)
			}
		}
		if len(onPath) == 1 {
			sole = onPath[0]
			break
		}
	}
	if sole < 0 {
		t.Skip("every pair has redundant monitor coverage in this scenario")
	}
	in := base
	in.Down = []topology.LinkID{sole}
	d1, err := c.StepResilient(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Uncovered == 0 {
		t.Fatal("sole monitor down but no pair uncovered")
	}
	// Next interval the monitor is healthy again. Its 5-interval probation
	// must yield immediately: the pair is otherwise unmeasurable.
	d2, err := c.StepResilient(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, lid := range d2.Excluded {
		if lid == sole {
			t.Fatal("coverage-critical monitor held in probation")
		}
	}
	if d2.Uncovered != 0 {
		t.Fatalf("pairs still uncovered after readmission: %d", d2.Uncovered)
	}
}

func TestStepResilientAllDown(t *testing.T) {
	s, inv := setup(t)
	c, err := New(Options{Budget: core.BudgetPerInterval(100000, 300)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.StepResilient(context.Background(), StepInput{
		Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks, InvSizes: inv,
		Down: s.MonitorLinks,
	})
	if err == nil {
		t.Fatal("step with every monitor down accepted")
	}
}

// TestFallbackRespectsBudget is the robustness regression test: under
// seed-driven mid-interval monitor crashes AND forced solver failures,
// every deployed fallback plan must satisfy Σ p_i·U_i ≤ θ against the
// loads the controller planned with — even as loads grow, which forces
// the rescaling path.
func TestFallbackRespectsBudget(t *testing.T) {
	s, inv := setup(t)
	budget := core.BudgetPerInterval(100000, 300)
	c, err := New(Options{Budget: budget, ReviveAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	fp := faults.MustPlan(faults.Config{Seed: 11, MonitorCrash: 0.15, MeanOutage: 2})
	loads := append([]float64(nil), s.Loads...)
	fallbacks := 0
	for tick := 0; tick < 12; tick++ {
		in := StepInput{
			Matrix: s.Matrix, Loads: loads, Candidates: s.MonitorLinks, InvSizes: inv,
			FailSolve: tick > 0, // every re-optimization after the first fails
		}
		if tick > 0 { // interval 0 bootstraps a healthy plan; crashes follow
			in.Down = fp.DownSet(tick, s.MonitorLinks)
		}
		d, err := c.StepResilient(context.Background(), in)
		if err != nil {
			t.Fatalf("interval %d: %v", tick, err)
		}
		if tick > 0 {
			if !d.Degraded {
				t.Fatalf("interval %d: forced failure not degraded", tick)
			}
			fallbacks++
			// The budget constraint must hold on the deployed fallback.
			if spend := plan.SampledRate(d.Plan, loads); spend > budget*(1+1e-9) {
				t.Fatalf("interval %d: fallback overspends: %v > %v", tick, spend, budget)
			}
			// No dead monitor may carry sampling load.
			for _, lid := range in.Down {
				if _, ok := d.Plan[lid]; ok {
					t.Fatalf("interval %d: dead monitor %d deployed", tick, lid)
				}
			}
		}
		// Load growth: 12% per interval compounds past the original
		// plan's headroom, so the rescale path must engage.
		for i := range loads {
			loads[i] *= 1.12
		}
	}
	if fallbacks != 11 || c.Fallbacks() != 11 {
		t.Fatalf("fallbacks = %d / %d", fallbacks, c.Fallbacks())
	}
}
