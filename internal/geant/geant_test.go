package geant

import (
	"math"
	"strings"
	"testing"

	"netsamp/internal/topology"
)

func TestBuildShape(t *testing.T) {
	s := MustBuild(1)
	// 23 GEANT PoPs + JANET.
	if got := s.Graph.NumNodes(); got != 24 {
		t.Fatalf("nodes = %d, want 24", got)
	}
	// 36 duplex circuits + the duplex access link = 74 unidirectional.
	if got := s.Graph.NumLinks(); got != 74 {
		t.Fatalf("links = %d, want 74", got)
	}
	if len(s.Pairs) != 20 || len(s.Rates) != 20 || len(s.SizeDists) != 20 {
		t.Fatalf("pairs/rates/dists = %d/%d/%d", len(s.Pairs), len(s.Rates), len(s.SizeDists))
	}
	// The paper's restricted baseline monitors exactly six UK links.
	if len(s.UKLinks) != 6 {
		t.Fatalf("UK links = %d, want 6", len(s.UKLinks))
	}
	if err := s.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJANETRatesMatchPaper(t *testing.T) {
	s := MustBuild(1)
	sum := 0.0
	for k, r := range s.Rates {
		if k > 0 && r >= s.Rates[k-1] {
			t.Fatalf("rates not strictly descending at %d: %v", k, s.Rates)
		}
		sum += r
	}
	// Paper footnote: Σ = 57,933 pkt/s.
	if math.Abs(sum-TotalJANETRate) > 1e-9 {
		t.Fatalf("total JANET rate = %v, want %v", sum, TotalJANETRate)
	}
	// Largest (NL) > 30,000 pkt/s; smallest (LU) = 20 pkt/s (paper text).
	if s.Rates[0] < 30000 {
		t.Fatalf("JANET-NL rate = %v, want > 30000", s.Rates[0])
	}
	if s.Rates[len(s.Rates)-1] != 20 {
		t.Fatalf("JANET-LU rate = %v, want 20", s.Rates[len(s.Rates)-1])
	}
}

func TestAccessLinkExcludedFromMonitors(t *testing.T) {
	s := MustBuild(1)
	if !s.Graph.Link(s.AccessLink).Access {
		t.Fatal("access link not flagged")
	}
	for _, lid := range s.MonitorLinks {
		if s.Graph.Link(lid).Access {
			t.Fatalf("access link %s in candidate set", s.Graph.LinkName(lid))
		}
	}
	// Every pair must traverse the access link (ingress through UK) —
	// which is why excluding it matters.
	for k := range s.Pairs {
		if !s.Matrix.Traverses(k, s.AccessLink) {
			t.Fatalf("pair %s does not cross the access link", s.Pairs[k].Name)
		}
	}
}

func TestExpectedMonitoredPaths(t *testing.T) {
	// The structural property of Section V-C: the small OD pairs must
	// exit through the expected distal links.
	s := MustBuild(1)
	wantLast := map[string]string{
		"JANET-LU": "FR->LU",
		"JANET-SK": "CZ->SK",
		"JANET-IL": "IT->IL",
		"JANET-PL": "SE->PL",
		"JANET-BE": "FR->BE",
		"JANET-NL": "UK->NL",
	}
	for k, pr := range s.Pairs {
		want, ok := wantLast[pr.Name]
		if !ok {
			continue
		}
		row := s.Matrix.Rows[k]
		last := s.Graph.LinkName(row[len(row)-1])
		if last != want {
			t.Fatalf("%s egress link = %s, want %s", pr.Name, last, want)
		}
	}
}

func TestLoadStructure(t *testing.T) {
	// UK core links must be loaded far above the stub links carrying the
	// small OD pairs; this asymmetry is what the optimizer exploits.
	s := MustBuild(1)
	load := func(name string) float64 {
		parts := strings.Split(name, "->")
		src, dst := s.Graph.MustNode(parts[0]), s.Graph.MustNode(parts[1])
		lid, ok := s.Graph.FindLink(src, dst)
		if !ok {
			t.Fatalf("missing link %s", name)
		}
		return s.Loads[lid]
	}
	for _, heavy := range []string{"UK->NL", "UK->FR", "UK->DE"} {
		for _, light := range []string{"FR->LU", "CZ->SK", "SE->PL", "IT->IL"} {
			if load(heavy) < 4*load(light) {
				t.Fatalf("load(%s)=%v not ≫ load(%s)=%v", heavy, load(heavy), light, load(light))
			}
		}
	}
	// Every candidate link carries traffic (positive load).
	for _, lid := range s.MonitorLinks {
		if s.Loads[lid] <= 0 {
			t.Fatalf("candidate link %s has zero load", s.Graph.LinkName(lid))
		}
	}
}

func TestUtilityParams(t *testing.T) {
	s := MustBuild(1)
	params := s.UtilityParams(300)
	sizes := s.PairSizes(300)
	for k, c := range params {
		if math.Abs(c-1/float64(sizes[k])) > 1e-18 {
			t.Fatalf("pair %d: c = %v, want 1/%d", k, c, sizes[k])
		}
		if !(c > 0 && c <= 1) {
			t.Fatalf("pair %d: c = %v outside (0, 1]", k, c)
		}
	}
	// JANET-LU (20 pkt/s) → 6000 packets per interval → c ≈ 1/6000: the
	// paper's "about 1%" effective-rate regime.
	if math.Abs(params[len(params)-1]-1.0/6000) > 1e-12 {
		t.Fatalf("JANET-LU c = %v, want 1/6000", params[len(params)-1])
	}
}

func TestFlowMeanInverseSizesInPaperRange(t *testing.T) {
	s := MustBuild(1)
	for k, c := range s.FlowMeanInverseSizes() {
		// Figure 1 plots E[1/S] between ≈1/1500 and 0.002; the bounded
		// Pareto discretization lands close to that band.
		if c < 0.0004 || c > 0.004 {
			t.Fatalf("pair %d: E[1/S] = %v out of expected band", k, c)
		}
	}
}

func TestPairSizes(t *testing.T) {
	s := MustBuild(1)
	sizes := s.PairSizes(300)
	if sizes[len(sizes)-1] != 6000 { // 20 pkt/s × 300 s
		t.Fatalf("JANET-LU size = %d, want 6000", sizes[len(sizes)-1])
	}
	if sizes[0] != int64(s.Rates[0]*300+0.5) {
		t.Fatalf("JANET-NL size = %d", sizes[0])
	}
}

func TestBuildDeterministicPerSeed(t *testing.T) {
	a, b := MustBuild(7), MustBuild(7)
	for i := range a.Loads {
		if a.Loads[i] != b.Loads[i] {
			t.Fatalf("loads differ at %d for equal seeds", i)
		}
	}
	c := MustBuild(8)
	same := true
	for i := range a.Loads {
		if a.Loads[i] != c.Loads[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical loads (jitter inert)")
	}
}

func TestDefaultIntervalConsistency(t *testing.T) {
	// The scenario's sizes at the paper's 5-minute interval must be
	// positive for every pair (estimability).
	s := MustBuild(1)
	for k, size := range s.PairSizes(300) {
		if size <= 0 {
			t.Fatalf("pair %d has non-positive interval size", k)
		}
	}
}

func TestMonitorLinksSortedUnique(t *testing.T) {
	s := MustBuild(1)
	seen := map[topology.LinkID]bool{}
	for i, lid := range s.MonitorLinks {
		if seen[lid] {
			t.Fatalf("duplicate link %v", lid)
		}
		seen[lid] = true
		if i > 0 && lid <= s.MonitorLinks[i-1] {
			t.Fatal("monitor links not sorted")
		}
	}
}
