package geant

import (
	"fmt"

	"netsamp/internal/rng"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
	"netsamp/internal/traffic"
)

// The paper argues its benefits "are not limited to the specific network
// topology under consideration" (Section V-C, citing the generality of
// inter-PoP traffic structure). BuildAbilene provides a second, very
// different backbone to test that claim: the 11-PoP Abilene/Internet2
// research network (a sparse ring-like continental topology, publicly
// documented), with an analogous measurement task — a customer network
// behind the Seattle PoP sending to every other PoP.

// AbileneDestinations lists the measurement task's destination PoPs in
// descending OD-size order.
var AbileneDestinations = []string{
	"NYC", "CHI", "LA", "DC", "ATL", "DEN", "HOU", "IND", "KC", "SV",
}

// AbileneRates is the customer OD intensity (pkt/s) per destination,
// a descending heavy tail like the GEANT task's.
var AbileneRates = []float64{
	18000, 7500, 4200, 2100, 950, 420, 180, 75, 32, 15,
}

// abileneCircuits is the Abilene backbone (OC-192 trunks, 2004 era).
var abileneCircuits = []duplex{
	{"SEA", "SV", topology.OC192, 12},
	{"SEA", "DEN", topology.OC192, 14},
	{"SV", "LA", topology.OC192, 8},
	{"SV", "DEN", topology.OC192, 11},
	{"LA", "HOU", topology.OC192, 14},
	{"DEN", "KC", topology.OC192, 9},
	{"KC", "IND", topology.OC192, 8},
	{"KC", "HOU", topology.OC192, 10},
	{"HOU", "ATL", topology.OC192, 12},
	{"IND", "CHI", topology.OC192, 6},
	{"IND", "ATL", topology.OC192, 11},
	{"CHI", "NYC", topology.OC192, 10},
	{"ATL", "DC", topology.OC192, 8},
	{"NYC", "DC", topology.OC192, 6},
}

// abileneMass drives the gravity background.
var abileneMass = map[string]float64{
	"NYC": 8, "CHI": 7, "LA": 6, "DC": 5, "ATL": 4.5, "DEN": 3.5,
	"HOU": 3.5, "IND": 3, "KC": 2.5, "SV": 5, "SEA": 4,
}

// BuildAbilene constructs the Abilene scenario: 11 PoPs, 28
// unidirectional links, a customer ("CUST") behind Seattle, and 10
// customer OD pairs.
func BuildAbilene(seed uint64) (*Scenario, error) {
	g := topology.New()
	added := map[string]bool{}
	addNode := func(name string) {
		if !added[name] {
			g.AddNode(name)
			added[name] = true
		}
	}
	addNode("SEA")
	for _, c := range abileneCircuits {
		addNode(c.a)
		addNode(c.b)
	}
	for _, c := range abileneCircuits {
		g.AddDuplex(g.MustNode(c.a), g.MustNode(c.b), c.capacity, c.weight)
	}
	cust := g.AddNode("CUST")
	sea := g.MustNode("SEA")
	access, accessRev := g.AddDuplex(cust, sea, topology.OC48, 5)
	g.MarkAccess(access)
	g.MarkAccess(accessRev)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("geant: abilene: %w", err)
	}

	tbl := routing.ComputeTable(g)
	pairs := make([]routing.ODPair, len(AbileneDestinations))
	for k, dst := range AbileneDestinations {
		pairs[k] = routing.ODPair{Name: "CUST-" + dst, Src: cust, Dst: g.MustNode(dst)}
	}
	matrix, err := routing.BuildMatrix(tbl, pairs)
	if err != nil {
		return nil, fmt.Errorf("geant: abilene: %w", err)
	}

	r := rng.New(seed ^ 0xab11e4e)
	custDemands := &traffic.Matrix{}
	for k, pr := range pairs {
		custDemands.Demands = append(custDemands.Demands, traffic.Demand{Pair: pr, Rate: AbileneRates[k]})
	}
	mass := make(map[topology.NodeID]float64, len(abileneMass))
	for name, m := range abileneMass {
		mass[g.MustNode(name)] = m
	}
	background := traffic.Gravity(g, mass, 300000, 0.25, r)
	demands := background.Merge(custDemands)
	loads, err := traffic.LinkLoads(g, tbl, demands)
	if err != nil {
		return nil, fmt.Errorf("geant: abilene: %w", err)
	}

	var monitorLinks []topology.LinkID
	for _, lid := range matrix.LinkSet() {
		if !g.Link(lid).Access {
			monitorLinks = append(monitorLinks, lid)
		}
	}
	var seaLinks []topology.LinkID
	for _, lid := range g.Out(sea) {
		if !g.Link(lid).Access {
			seaLinks = append(seaLinks, lid)
		}
	}
	dists := make([]traffic.SizeDist, len(pairs))
	for k := range pairs {
		xm := 300 + 600*r.Float64()
		dists[k] = traffic.NewParetoSize(xm, 2.5, 2_000_000)
	}
	rates := append([]float64(nil), AbileneRates...)
	return &Scenario{
		Graph:        g,
		Table:        tbl,
		Origin:       cust,
		AccessLink:   access,
		Pairs:        pairs,
		Matrix:       matrix,
		Rates:        rates,
		SizeDists:    dists,
		Demands:      demands,
		Loads:        loads,
		MonitorLinks: monitorLinks,
		UKLinks:      seaLinks, // the ingress PoP's links (the restricted baseline)
	}, nil
}

// MustBuildAbilene is BuildAbilene that panics on error.
func MustBuildAbilene(seed uint64) *Scenario {
	s, err := BuildAbilene(seed)
	if err != nil {
		panic(err)
	}
	return s
}
