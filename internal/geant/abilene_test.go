package geant

import (
	"math"
	"testing"
)

func TestAbileneShape(t *testing.T) {
	s := MustBuildAbilene(1)
	// 11 Abilene PoPs + the customer node.
	if got := s.Graph.NumNodes(); got != 12 {
		t.Fatalf("nodes = %d, want 12", got)
	}
	// 14 duplex trunks + the duplex access link = 30 unidirectional.
	if got := s.Graph.NumLinks(); got != 30 {
		t.Fatalf("links = %d, want 30", got)
	}
	if len(s.Pairs) != 10 || len(s.Rates) != 10 {
		t.Fatalf("pairs/rates = %d/%d", len(s.Pairs), len(s.Rates))
	}
	if err := s.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(s.Rates); k++ {
		if s.Rates[k] >= s.Rates[k-1] {
			t.Fatal("rates not descending")
		}
	}
	// Access link excluded from candidates; every pair crosses it.
	for _, lid := range s.MonitorLinks {
		if s.Graph.Link(lid).Access {
			t.Fatal("access link among candidates")
		}
	}
	for k := range s.Pairs {
		if !s.Matrix.Traverses(k, s.AccessLink) {
			t.Fatalf("pair %s misses the access link", s.Pairs[k].Name)
		}
	}
}

func TestAbileneDeterministic(t *testing.T) {
	a, b := MustBuildAbilene(3), MustBuildAbilene(3)
	for i := range a.Loads {
		if a.Loads[i] != b.Loads[i] {
			t.Fatal("nondeterministic loads")
		}
	}
}

func TestAbileneUtilityParams(t *testing.T) {
	s := MustBuildAbilene(1)
	params := s.UtilityParams(300)
	if len(params) != 10 {
		t.Fatalf("params = %d", len(params))
	}
	// Smallest pair: 15 pkt/s → 4500 pkts/interval.
	if math.Abs(params[9]-1.0/4500) > 1e-12 {
		t.Fatalf("smallest pair c = %v", params[9])
	}
}
