// Package geant builds the evaluation scenario of the paper: the GEANT
// European research backbone (as of November 2004) carrying background
// traffic plus the measurement task "estimate the traffic sent by JANET
// (UK research network, AS 786) to each individual GEANT PoP through the
// UK PoP" — 20 OD pairs (paper, Section V).
//
// The real GEANT topology details and the sampled NetFlow feed are not
// publicly available, so this package provides a faithful synthetic
// stand-in (see DESIGN.md for the substitution rationale):
//
//   - 23 PoPs named by the paper's country codes, 36 duplex circuits =
//     72 unidirectional links, with OC-3…OC-48 capacities;
//   - the UK PoP has exactly six intra-GEANT adjacencies (the paper's
//     "UK links only" baseline monitors six links);
//   - IGP weights are chosen so small OD pairs exit through lightly
//     loaded distal links (FR→LU, CZ→SK, IT→IL, SE→PL), the structural
//     property (Section V-C) that gives network-wide placement its edge;
//   - JANET attaches to the UK PoP through an access link that is
//     excluded from the candidate monitor set (CPE routers, Section V-C);
//   - the 20 JANET OD-pair intensities form a heavy-tailed descending
//     sequence from ≈30,900 pkt/s (NL) to 20 pkt/s (LU) summing to the
//     paper's stated 57,933 pkt/s, and a gravity-model background matrix
//     loads the rest of the network.
package geant

import (
	"fmt"

	"netsamp/internal/rng"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
	"netsamp/internal/traffic"
)

// Destinations lists the 20 GEANT PoPs of the JANET measurement task in
// the order of the paper's Table I (descending OD size).
var Destinations = []string{
	"NL", "NY", "DE", "SE", "CH", "FR", "PL", "GR", "ES", "SI",
	"IT", "AT", "CZ", "BE", "PT", "HU", "HR", "IL", "SK", "LU",
}

// PairRates is the packets-per-second intensity of each JANET OD pair,
// aligned with Destinations. The first and last values and the total
// (57,933 pkt/s) are stated in the paper; the interior of the sequence
// is synthesized as a descending heavy tail.
var PairRates = []float64{
	30935, 9800, 5200, 3600, 2400, 1900, 1300, 850, 590, 400,
	280, 195, 140, 100, 72, 55, 40, 31, 25, 20,
}

// TotalJANETRate is the sum of PairRates, matching the paper's footnote
// ("adding up the values in the second column of Table I we obtain
// 57,933 packets per second").
const TotalJANETRate = 57933.0

// Scenario bundles everything the evaluation needs.
type Scenario struct {
	Graph *topology.Graph
	Table *routing.Table
	// Origin is the JANET node; AccessLink is the JANET→UK access link
	// (excluded from the candidate monitor set).
	Origin     topology.NodeID
	AccessLink topology.LinkID
	// Pairs are the 20 JANET OD pairs, Matrix their routing rows.
	Pairs  []routing.ODPair
	Matrix *routing.Matrix
	// Rates[k] is the OD intensity (pkt/s) of pair k; SizeDists[k] its
	// flow-size distribution.
	Rates     []float64
	SizeDists []traffic.SizeDist
	// Demands is the full traffic matrix (background + JANET pairs) and
	// Loads the per-link packet rates it induces.
	Demands *traffic.Matrix
	Loads   []float64
	// MonitorLinks is the candidate monitor set L: every non-access link
	// traversed by at least one pair, in LinkID order.
	MonitorLinks []topology.LinkID
	// UKLinks are the six intra-GEANT links leaving the UK PoP (the
	// paper's restricted baseline).
	UKLinks []topology.LinkID
}

// duplex describes one physical circuit of the synthetic backbone.
type duplex struct {
	a, b     string
	capacity float64
	weight   int
}

// circuits is the synthetic GEANT backbone: 36 duplex circuits over 23
// PoPs. UK has exactly six intra-GEANT adjacencies.
var circuits = []duplex{
	// UK's six GEANT links.
	{"UK", "FR", topology.OC48, 10},
	{"UK", "NL", topology.OC48, 10},
	{"UK", "DE", topology.OC48, 12},
	{"UK", "SE", topology.OC48, 14},
	{"UK", "NY", topology.OC48, 20},
	{"UK", "PT", topology.OC12, 25},
	// Continental core.
	{"FR", "DE", topology.OC48, 10},
	{"FR", "BE", topology.OC12, 7},
	{"FR", "LU", topology.OC3, 12},
	{"FR", "CH", topology.OC48, 10},
	{"FR", "ES", topology.OC12, 12},
	{"DE", "NL", topology.OC48, 8},
	{"DE", "AT", topology.OC48, 10},
	{"DE", "CZ", topology.OC12, 10},
	{"DE", "PL", topology.OC12, 16},
	{"DE", "CH", topology.OC48, 12},
	{"DE", "LU", topology.OC3, 15},
	{"DE", "SE", topology.OC12, 16},
	{"NL", "BE", topology.OC12, 8},
	{"NL", "NY", topology.OC48, 22},
	{"NL", "IE", topology.OC3, 20},
	{"SE", "PL", topology.OC3, 12},
	{"CH", "IT", topology.OC48, 8},
	{"IT", "AT", topology.OC12, 10},
	{"IT", "GR", topology.OC12, 18},
	{"IT", "IL", topology.OC3, 25},
	{"IT", "ES", topology.OC12, 20},
	{"AT", "HU", topology.OC12, 8},
	{"AT", "SI", topology.OC3, 8},
	{"AT", "SK", topology.OC3, 12},
	{"AT", "CZ", topology.OC12, 10},
	{"CZ", "SK", topology.OC3, 8},
	{"HU", "HR", topology.OC3, 10},
	{"SI", "HR", topology.OC3, 8},
	{"ES", "PT", topology.OC12, 10},
	{"GR", "CY", topology.OC3, 15},
}

// popMass drives the gravity model for background traffic: rough
// relative PoP sizes of the 2004 GEANT network.
var popMass = map[string]float64{
	"DE": 10, "UK": 9, "FR": 8, "NL": 7, "IT": 6, "NY": 5,
	"ES": 4, "SE": 4, "CH": 4, "AT": 3.5, "BE": 3, "PL": 3,
	"CZ": 2.5, "PT": 2, "GR": 2, "HU": 2, "IE": 1.5,
	"SI": 1, "HR": 1, "SK": 0.8, "IL": 0.8, "LU": 0.6, "CY": 0.5,
}

// BackgroundRate is the total background traffic (pkt/s) offered by the
// gravity model, calibrated so the UK core links are heavily loaded
// (tens of thousands of pkt/s) while stub circuits such as FR→LU and
// CZ→SK stay lightly loaded, reproducing the load structure of the
// paper's Table I.
const BackgroundRate = 500000.0

// Build constructs the scenario. seed drives the gravity-model jitter
// and the per-pair flow size parameters; the topology and JANET
// intensities are fixed.
func Build(seed uint64) (*Scenario, error) {
	g := topology.New()
	// Deterministic node order: UK first, then the circuit list order.
	added := map[string]bool{}
	addNode := func(name string) {
		if !added[name] {
			g.AddNode(name)
			added[name] = true
		}
	}
	addNode("UK")
	for _, c := range circuits {
		addNode(c.a)
		addNode(c.b)
	}
	for _, c := range circuits {
		g.AddDuplex(g.MustNode(c.a), g.MustNode(c.b), c.capacity, c.weight)
	}
	// JANET attaches through the UK PoP; the access circuit cannot be
	// monitored by the GEANT operator.
	janet := g.AddNode("JANET")
	uk := g.MustNode("UK")
	access, accessRev := g.AddDuplex(janet, uk, topology.OC48, 5)
	g.MarkAccess(access)
	g.MarkAccess(accessRev)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("geant: %w", err)
	}

	tbl := routing.ComputeTable(g)

	// The 20 JANET OD pairs of the measurement task.
	pairs := make([]routing.ODPair, len(Destinations))
	for k, dst := range Destinations {
		pairs[k] = routing.ODPair{
			Name: "JANET-" + dst,
			Src:  janet,
			Dst:  g.MustNode(dst),
		}
	}
	matrix, err := routing.BuildMatrix(tbl, pairs)
	if err != nil {
		return nil, fmt.Errorf("geant: %w", err)
	}

	// Traffic: JANET demands plus gravity background.
	r := rng.New(seed)
	janetDemands := &traffic.Matrix{}
	for k, pr := range pairs {
		janetDemands.Demands = append(janetDemands.Demands, traffic.Demand{Pair: pr, Rate: PairRates[k]})
	}
	mass := make(map[topology.NodeID]float64, len(popMass))
	for name, m := range popMass {
		mass[g.MustNode(name)] = m
	}
	background := traffic.Gravity(g, mass, BackgroundRate, 0.25, r)
	demands := background.Merge(janetDemands)
	loads, err := traffic.LinkLoads(g, tbl, demands)
	if err != nil {
		return nil, fmt.Errorf("geant: %w", err)
	}

	// Candidate monitor set: links traversed by the pairs, minus access
	// links (Section V-C).
	var monitorLinks []topology.LinkID
	for _, lid := range matrix.LinkSet() {
		if !g.Link(lid).Access {
			monitorLinks = append(monitorLinks, lid)
		}
	}

	// The six UK links of the restricted baseline.
	var ukLinks []topology.LinkID
	for _, lid := range g.Out(uk) {
		if !g.Link(lid).Access {
			ukLinks = append(ukLinks, lid)
		}
	}

	// Per-pair flow sizes: bounded Pareto with tail 2.5 and scale drawn
	// so mean sizes span roughly 500–1500 packets, i.e. E[1/S] spans the
	// ≈0.0008…0.0024 range of the paper's Figure 1.
	dists := make([]traffic.SizeDist, len(pairs))
	for k := range pairs {
		xm := 300 + 600*r.Float64() // mean = 2.5·xm/1.5 ≈ 500…1500
		dists[k] = traffic.NewParetoSize(xm, 2.5, 2_000_000)
	}

	return &Scenario{
		Graph:        g,
		Table:        tbl,
		Origin:       janet,
		AccessLink:   access,
		Pairs:        pairs,
		Matrix:       matrix,
		Rates:        append([]float64(nil), PairRates...),
		SizeDists:    dists,
		Demands:      demands,
		Loads:        loads,
		MonitorLinks: monitorLinks,
		UKLinks:      ukLinks,
	}, nil
}

// MustBuild is Build that panics on error (topology and demands are
// static, so failure indicates a programming error).
func MustBuild(seed uint64) *Scenario {
	s, err := Build(seed)
	if err != nil {
		panic(err)
	}
	return s
}

// UtilityParams returns c_k = E[1/S_k] per pair for a measurement
// interval of the given length, the parameter of each pair's SRE
// utility. S_k is the OD pair's size in packets over the interval
// (paper, Section IV-C: "Let S_k be the actual size of the kth OD pair
// ... in a given time interval"); with the scenario's constant-rate
// demands the interval size concentrates at rate·interval, so
// E[1/S_k] = 1/S_k. This is what makes the optimum fair: JANET-LU
// (6,000 packets per 5 minutes) needs an effective rate near 1% for a
// useful estimate, while JANET-NL (≈9.3M packets) is accurately
// estimated from a minuscule rate.
func (s *Scenario) UtilityParams(intervalSeconds float64) []float64 {
	out := make([]float64, len(s.Rates))
	for k, size := range s.PairSizes(intervalSeconds) {
		out[k] = 1 / float64(size)
	}
	return out
}

// FlowMeanInverseSizes returns the per-flow E[1/S] of each pair's flow
// size distribution, used by the flow-level NetFlow pipeline (not by
// the utility function, which is parameterized on OD-pair sizes — see
// UtilityParams).
func (s *Scenario) FlowMeanInverseSizes() []float64 {
	out := make([]float64, len(s.SizeDists))
	for k, d := range s.SizeDists {
		out[k] = d.MeanInverse()
	}
	return out
}

// PairSizes returns the true OD sizes in packets for a measurement
// interval of the given length in seconds.
func (s *Scenario) PairSizes(intervalSeconds float64) []int64 {
	out := make([]int64, len(s.Rates))
	for k, rate := range s.Rates {
		out[k] = int64(rate*intervalSeconds + 0.5)
	}
	return out
}
