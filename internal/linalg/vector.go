// Package linalg provides the small dense linear-algebra kernel the
// optimizer and evaluation harness rely on: vector arithmetic, dense
// matrices, LU factorization with partial pivoting and Cholesky
// factorization for symmetric positive-definite systems.
//
// Go has no mainstream numerical library in the standard library, and
// this repository is stdlib-only, so the kernel is implemented here. The
// problems solved are small (tens to a few hundred unknowns — one per
// candidate monitor link), so straightforward O(n^3) dense algorithms
// with partial pivoting are both adequate and easy to verify.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of v and w. It panics if the lengths
// differ.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Dot dimension mismatch %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// NormInf returns the maximum absolute entry of v (0 for an empty vector).
func (v Vector) NormInf() float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Scale multiplies every entry of v by a in place and returns v.
func (v Vector) Scale(a float64) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// AXPY adds a*x to v in place (v += a*x) and returns v. It panics if the
// lengths differ.
func (v Vector) AXPY(a float64, x Vector) Vector {
	if len(v) != len(x) {
		panic(fmt.Sprintf("linalg: AXPY dimension mismatch %d vs %d", len(v), len(x)))
	}
	for i := range v {
		v[i] += a * x[i]
	}
	return v
}

// Sub returns v - w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Sub dimension mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Add returns v + w as a new vector.
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Add dimension mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sum returns the sum of the entries of v.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}
