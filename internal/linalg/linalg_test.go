package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"netsamp/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := v.Norm2(); !almostEqual(got, math.Sqrt(14), 1e-12) {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := w.NormInf(); got != 6 {
		t.Fatalf("NormInf = %v", got)
	}
	if got := v.Sum(); got != 6 {
		t.Fatalf("Sum = %v", got)
	}
	s := v.Clone()
	s.Scale(2)
	if s[0] != 2 || s[2] != 6 || v[0] != 1 {
		t.Fatalf("Scale/Clone broken: %v, original %v", s, v)
	}
	a := v.Clone().AXPY(2, w) // v + 2w
	want := Vector{9, 12, 15}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("AXPY = %v, want %v", a, want)
		}
	}
	if d := w.Sub(v); d[0] != 3 || d[1] != 3 || d[2] != 3 {
		t.Fatalf("Sub = %v", d)
	}
	if d := w.Add(v); d[0] != 5 || d[1] != 7 || d[2] != 9 {
		t.Fatalf("Add = %v", d)
	}
}

func TestVectorDimensionPanics(t *testing.T) {
	cases := []func(){
		func() { Vector{1}.Dot(Vector{1, 2}) },
		func() { Vector{1}.AXPY(1, Vector{1, 2}) },
		func() { Vector{1}.Sub(Vector{1, 2}) },
		func() { Vector{1}.Add(Vector{1, 2}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic on dimension mismatch", i)
				}
			}()
			fn()
		}()
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec(Vector{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMatrixMulIdentity(t *testing.T) {
	m := NewMatrix(3, 3)
	copy(m.Data, []float64{2, -1, 0, 1, 3, 7, 0, 0, 5})
	got := m.Mul(Identity(3))
	for i := range got.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatalf("M*I != M: %v", got.Data)
		}
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("Transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("Transpose values wrong: %v", tr.Data)
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := NewMatrix(3, 3)
	copy(a.Data, []float64{
		2, 1, -1,
		-3, -1, 2,
		-2, 1, 2,
	})
	// Classic system with solution x=2, y=3, z=-1.
	x, err := Solve(a, Vector{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-10) {
			t.Fatalf("Solve = %v, want %v", x, want)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 2, 4})
	if _, err := Solve(a, Vector{1, 2}); err == nil {
		t.Fatal("expected singular matrix error")
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := FactorLU(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestLUDet(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{3, 8, 4, 6})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Det(), -14, 1e-10) {
		t.Fatalf("Det = %v, want -14", f.Det())
	}
}

// TestLUSolveRandom is a property test: for random well-conditioned A and
// random x, Solve(A, A*x) must recover x.
func TestLUSolveRandom(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(12)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		// Diagonal dominance keeps the condition number sane.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		x := make(Vector, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if !almostEqual(got[i], x[i], 1e-8) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], x[i])
			}
		}
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := NewMatrix(3, 3)
	copy(a.Data, []float64{
		4, 12, -16,
		12, 37, -43,
		-16, -43, 98,
	})
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Known factor: L = [[2,0,0],[6,1,0],[-8,5,3]].
	want := []float64{2, 0, 0, 6, 1, 0, -8, 5, 3}
	for i, w := range want {
		if !almostEqual(c.l.Data[i], w, 1e-10) {
			t.Fatalf("L = %v, want %v", c.l.Data, want)
		}
	}
	x, err := c.Solve(Vector{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	b := a.MulVec(x)
	for i, v := range []float64{1, 2, 3} {
		if !almostEqual(b[i], v, 1e-8) {
			t.Fatalf("Cholesky solve residual: %v", b)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := FactorCholesky(a); err != ErrNotSPD {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
}

// TestCholeskySolveRandomSPD checks Cholesky on random SPD matrices
// A = B*B^T + I.
func TestCholeskySolveRandomSPD(t *testing.T) {
	r := rng.New(123)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(10)
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		a := b.Mul(b.Transpose())
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		x := make(Vector, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		rhs := a.MulVec(x)
		c, err := FactorCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := c.Solve(rhs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !almostEqual(got[i], x[i], 1e-7) {
				t.Fatalf("trial %d: got %v want %v", trial, got, x)
			}
		}
	}
}

// Property: Dot is symmetric and linear in its first argument.
func TestDotProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		v, w := Vector(raw[:n]), Vector(raw[n:2*n])
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		if v.Dot(w) != w.Dot(v) {
			return false
		}
		two := v.Clone().Scale(2)
		return almostEqual(two.Dot(w), 2*v.Dot(w), 1e-6*(1+math.Abs(v.Dot(w))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLUSolve32(b *testing.B) {
	r := rng.New(5)
	n := 32
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+40)
	}
	rhs := make(Vector, n)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
