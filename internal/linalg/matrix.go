package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization encounters an (effectively)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// ErrNotSPD is returned by Cholesky when the matrix is not symmetric
// positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// NewMatrix returns a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns an independent copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Transpose returns m^T as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MulVec returns m * v. It panics on dimension mismatch.
func (m *Matrix) MulVec(v Vector) Vector {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// Mul returns m * b as a new matrix. It panics on dimension mismatch.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// LU is an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu   *Matrix // packed L (unit diagonal, below) and U (diagonal and above)
	piv  []int   // row permutation
	sign int     // determinant sign of the permutation
}

// FactorLU computes the LU factorization of the square matrix a with
// partial pivoting. a is not modified.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: FactorLU needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for col := 0; col < n; col++ {
		// Partial pivoting: pick the largest magnitude in this column.
		p := col
		max := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > max {
				max, p = v, r
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != col {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[col*n+j] = lu.Data[col*n+j], lu.Data[p*n+j]
			}
			piv[p], piv[col] = piv[col], piv[p]
			sign = -sign
		}
		d := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / d
			lu.Set(r, col, f)
			if f == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				lu.Data[r*n+j] -= f * lu.Data[col*n+j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve returns x with A*x = b for the factored A.
func (f *LU) Solve(b Vector) (Vector, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: LU.Solve dimension mismatch %d vs %d", len(b), n)
	}
	x := make(Vector, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		d := f.lu.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A*x = b for square A using LU with partial pivoting.
func Solve(a *Matrix, b Vector) (Vector, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Cholesky is the lower-triangular factor L of a symmetric positive
// definite matrix A = L*L^T.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes the Cholesky factorization of the symmetric
// positive-definite matrix a (only the lower triangle of a is read).
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: FactorCholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrNotSPD
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve returns x with A*x = b for the factored SPD matrix A.
func (c *Cholesky) Solve(b Vector) (Vector, error) {
	n := c.l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Cholesky.Solve dimension mismatch %d vs %d", len(b), n)
	}
	// Forward: L*y = b.
	y := make(Vector, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= c.l.At(i, j) * y[j]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Backward: L^T*x = y.
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}
