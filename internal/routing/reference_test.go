package routing

import (
	"math"
	"testing"

	"netsamp/internal/rng"
	"netsamp/internal/topology"
)

// floydWarshall is an independent all-pairs shortest-path reference used
// to cross-check the SPF implementation on random graphs.
func floydWarshall(g *topology.Graph) [][]int {
	n := g.NumNodes()
	const inf = math.MaxInt32
	dist := make([][]int, n)
	for i := range dist {
		dist[i] = make([]int, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = inf
			}
		}
	}
	for _, l := range g.Links() {
		if l.Down {
			continue
		}
		if l.Weight < dist[l.Src][l.Dst] {
			dist[l.Src][l.Dst] = l.Weight
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if dist[i][k] == inf {
				continue
			}
			for j := 0; j < n; j++ {
				if dist[k][j] == inf {
					continue
				}
				if d := dist[i][k] + dist[k][j]; d < dist[i][j] {
					dist[i][j] = d
				}
			}
		}
	}
	return dist
}

// randomGraph builds a random connected-ish directed graph.
func randomGraph(r *rng.Source, nodes, extraLinks int) *topology.Graph {
	g := topology.New()
	for i := 0; i < nodes; i++ {
		g.AddNode(string(rune('A'+i%26)) + string(rune('0'+i/26)))
	}
	// Spanning chain guarantees weak connectivity.
	for i := 1; i < nodes; i++ {
		g.AddDuplex(topology.NodeID(i-1), topology.NodeID(i), topology.OC48, 1+r.Intn(20))
	}
	for i := 0; i < extraLinks; i++ {
		a := topology.NodeID(r.Intn(nodes))
		b := topology.NodeID(r.Intn(nodes))
		if a == b {
			continue
		}
		g.AddLink(a, b, topology.OC12, 1+r.Intn(20))
	}
	return g
}

// TestSPFMatchesFloydWarshall cross-checks distances on random graphs.
func TestSPFMatchesFloydWarshall(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 30; trial++ {
		nodes := 3 + r.Intn(15)
		g := randomGraph(r, nodes, r.Intn(3*nodes))
		tbl := ComputeTable(g)
		want := floydWarshall(g)
		for s := 0; s < nodes; s++ {
			for d := 0; d < nodes; d++ {
				src, dst := topology.NodeID(s), topology.NodeID(d)
				if s == d {
					continue
				}
				reach := want[s][d] != math.MaxInt32
				if tbl.Reachable(src, dst) != reach {
					t.Fatalf("trial %d: reachability(%d,%d) mismatch", trial, s, d)
				}
				if !reach {
					continue
				}
				got, err := tbl.Cost(src, dst)
				if err != nil {
					t.Fatal(err)
				}
				if got != want[s][d] {
					t.Fatalf("trial %d: dist(%d,%d) = %d, Floyd-Warshall %d", trial, s, d, got, want[s][d])
				}
			}
		}
	}
}

// TestECMPFractionsConservation: on random graphs, for every reachable
// pair the fractions flowing into the destination sum to 1 and flow is
// conserved at every intermediate node.
func TestECMPFractionsConservation(t *testing.T) {
	r := rng.New(88)
	for trial := 0; trial < 30; trial++ {
		nodes := 3 + r.Intn(12)
		g := randomGraph(r, nodes, r.Intn(3*nodes))
		tbl := ComputeTable(g)
		for s := 0; s < nodes; s++ {
			for d := 0; d < nodes; d++ {
				src, dst := topology.NodeID(s), topology.NodeID(d)
				if s == d || !tbl.Reachable(src, dst) {
					continue
				}
				hops, err := tbl.Fractions(src, dst)
				if err != nil {
					t.Fatal(err)
				}
				in := make(map[topology.NodeID]float64)
				out := make(map[topology.NodeID]float64)
				for _, h := range hops {
					l := g.Link(h.Link)
					if h.Frac <= 0 || h.Frac > 1+1e-12 {
						t.Fatalf("fraction out of range: %v", h.Frac)
					}
					out[l.Src] += h.Frac
					in[l.Dst] += h.Frac
				}
				if math.Abs(out[src]-1) > 1e-9 {
					t.Fatalf("source emits %v", out[src])
				}
				if math.Abs(in[dst]-1) > 1e-9 {
					t.Fatalf("destination receives %v", in[dst])
				}
				for n := topology.NodeID(0); int(n) < nodes; n++ {
					if n == src || n == dst {
						continue
					}
					if math.Abs(in[n]-out[n]) > 1e-9 {
						t.Fatalf("flow not conserved at %d: in %v out %v", n, in[n], out[n])
					}
				}
			}
		}
	}
}

// TestECMPConsistentWithSinglePath: the single shortest path must be a
// subset of the ECMP DAG, and its cost consistent.
func TestECMPConsistentWithSinglePath(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		nodes := 3 + r.Intn(10)
		g := randomGraph(r, nodes, r.Intn(2*nodes))
		tbl := ComputeTable(g)
		for s := 0; s < nodes; s++ {
			for d := 0; d < nodes; d++ {
				src, dst := topology.NodeID(s), topology.NodeID(d)
				if s == d || !tbl.Reachable(src, dst) {
					continue
				}
				path, err := tbl.PathBetween(src, dst)
				if err != nil {
					t.Fatal(err)
				}
				hops, err := tbl.Fractions(src, dst)
				if err != nil {
					t.Fatal(err)
				}
				onDAG := map[topology.LinkID]bool{}
				for _, h := range hops {
					onDAG[h.Link] = true
				}
				for _, lid := range path.Links {
					if !onDAG[lid] {
						t.Fatalf("trial %d: single path uses link %d outside the ECMP DAG", trial, lid)
					}
				}
			}
		}
	}
}
