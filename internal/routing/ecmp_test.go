package routing

import (
	"math"
	"testing"

	"netsamp/internal/topology"
)

// ecmpDiamond builds A→{B,C}→D with equal costs, plus a tail D→E.
func ecmpDiamond(t *testing.T) (*topology.Graph, map[string]topology.NodeID) {
	t.Helper()
	g := topology.New()
	ids := map[string]topology.NodeID{}
	for _, n := range []string{"A", "B", "C", "D", "E"} {
		ids[n] = g.AddNode(n)
	}
	g.AddDuplex(ids["A"], ids["B"], topology.OC48, 10)
	g.AddDuplex(ids["A"], ids["C"], topology.OC48, 10)
	g.AddDuplex(ids["B"], ids["D"], topology.OC48, 10)
	g.AddDuplex(ids["C"], ids["D"], topology.OC48, 10)
	g.AddDuplex(ids["D"], ids["E"], topology.OC48, 10)
	return g, ids
}

func fracOf(t *testing.T, g *topology.Graph, hops []Hop, name string) float64 {
	t.Helper()
	for _, h := range hops {
		if g.LinkName(h.Link) == name {
			return h.Frac
		}
	}
	return 0
}

func TestFractionsEvenSplit(t *testing.T) {
	g, ids := ecmpDiamond(t)
	tbl := ComputeTable(g)
	hops, err := tbl.Fractions(ids["A"], ids["E"])
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"A->B", "A->C", "B->D", "C->D"} {
		if f := fracOf(t, g, hops, name); math.Abs(f-0.5) > 1e-12 {
			t.Fatalf("frac(%s) = %v, want 0.5", name, f)
		}
	}
	if f := fracOf(t, g, hops, "D->E"); math.Abs(f-1) > 1e-12 {
		t.Fatalf("frac(D->E) = %v, want 1", f)
	}
	// Conservation: fractions on links into the destination sum to 1.
	sumIn := 0.0
	for _, h := range hops {
		if g.Link(h.Link).Dst == ids["E"] {
			sumIn += h.Frac
		}
	}
	if math.Abs(sumIn-1) > 1e-12 {
		t.Fatalf("fractions into destination sum to %v", sumIn)
	}
}

func TestFractionsSinglePath(t *testing.T) {
	g, ids := ecmpDiamond(t)
	// Make the B branch cheaper: no splitting.
	bd, _ := g.FindLink(ids["B"], ids["D"])
	_ = bd
	g2 := topology.New()
	a := g2.AddNode("A")
	b := g2.AddNode("B")
	c := g2.AddNode("C")
	g2.AddDuplex(a, b, topology.OC48, 1)
	g2.AddDuplex(b, c, topology.OC48, 1)
	g2.AddDuplex(a, c, topology.OC48, 5)
	tbl := ComputeTable(g2)
	hops, err := tbl.Fractions(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 2 {
		t.Fatalf("hops = %v", hops)
	}
	for _, h := range hops {
		if math.Abs(h.Frac-1) > 1e-12 {
			t.Fatalf("single path fraction = %v", h.Frac)
		}
	}
	_ = ids
}

func TestFractionsSelfAndUnreachable(t *testing.T) {
	g, ids := ecmpDiamond(t)
	tbl := ComputeTable(g)
	hops, err := tbl.Fractions(ids["A"], ids["A"])
	if err != nil || hops != nil {
		t.Fatalf("self: %v, %v", hops, err)
	}
	iso := g.AddNode("ISO")
	tbl2 := ComputeTable(g)
	if _, err := tbl2.Fractions(ids["A"], iso); err == nil {
		t.Fatal("unreachable accepted")
	}
}

func TestFractionsDownLink(t *testing.T) {
	g, ids := ecmpDiamond(t)
	ab, _ := g.FindLink(ids["A"], ids["B"])
	g.SetDown(ab, true)
	tbl := ComputeTable(g)
	hops, err := tbl.Fractions(ids["A"], ids["E"])
	if err != nil {
		t.Fatal(err)
	}
	if f := fracOf(t, g, hops, "A->C"); math.Abs(f-1) > 1e-12 {
		t.Fatalf("frac(A->C) after failure = %v, want 1", f)
	}
	if f := fracOf(t, g, hops, "A->B"); f != 0 {
		t.Fatalf("down link carries fraction %v", f)
	}
}

func TestFractionsUnevenDAG(t *testing.T) {
	// A splits to B and C; B splits again to D and E; all rejoin at F.
	//   A→B (w1), A→C (w1); B→D (w1), B→E (w1); C→F (w2), D→F (w1), E→F (w1)
	// Costs: A→F via C: 1+2 = 3; via B→D→F: 1+1+1 = 3; via B→E→F: 3. All equal.
	// A sends 1/2 to B and 1/2 to C; B forwards 1/4 to each of D, E.
	g := topology.New()
	a, b, c, d, e, f := g.AddNode("A"), g.AddNode("B"), g.AddNode("C"), g.AddNode("D"), g.AddNode("E"), g.AddNode("F")
	g.AddDuplex(a, b, topology.OC48, 1)
	g.AddDuplex(a, c, topology.OC48, 1)
	g.AddDuplex(b, d, topology.OC48, 1)
	g.AddDuplex(b, e, topology.OC48, 1)
	g.AddDuplex(c, f, topology.OC48, 2)
	g.AddDuplex(d, f, topology.OC48, 1)
	g.AddDuplex(e, f, topology.OC48, 1)
	tbl := ComputeTable(g)
	hops, err := tbl.Fractions(a, f)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"A->B": 0.5, "A->C": 0.5,
		"B->D": 0.25, "B->E": 0.25,
		"C->F": 0.5, "D->F": 0.25, "E->F": 0.25,
	}
	for name, wf := range want {
		if gf := fracOf(t, g, hops, name); math.Abs(gf-wf) > 1e-12 {
			t.Fatalf("frac(%s) = %v, want %v", name, gf, wf)
		}
	}
}

func TestBuildMatrixECMP(t *testing.T) {
	g, ids := ecmpDiamond(t)
	tbl := ComputeTable(g)
	m, err := BuildMatrixECMP(tbl, []ODPair{
		{Name: "A->E", Src: ids["A"], Dst: ids["E"]},
		{Name: "A->B", Src: ids["A"], Dst: ids["B"]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Fracs == nil {
		t.Fatal("no fractions")
	}
	// Pair 0 crosses five links; the de link with fraction 1.
	if len(m.Rows[0]) != 5 {
		t.Fatalf("row 0 = %v", m.Rows[0])
	}
	de, _ := g.FindLink(ids["D"], ids["E"])
	if f := m.Frac(0, de); math.Abs(f-1) > 1e-12 {
		t.Fatalf("Frac(0, D->E) = %v", f)
	}
	ab, _ := g.FindLink(ids["A"], ids["B"])
	if f := m.Frac(0, ab); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("Frac(0, A->B) = %v", f)
	}
	if f := m.Frac(1, de); f != 0 {
		t.Fatalf("Frac(1, D->E) = %v", f)
	}
	// Single-path matrix Frac defaults to 1.
	sp, err := BuildMatrix(tbl, []ODPair{{Name: "A->B", Src: ids["A"], Dst: ids["B"]}})
	if err != nil {
		t.Fatal(err)
	}
	if f := sp.Frac(0, ab); f != 1 {
		t.Fatalf("single-path Frac = %v", f)
	}
}

func TestBuildMatrixECMPErrors(t *testing.T) {
	g, ids := ecmpDiamond(t)
	tbl := ComputeTable(g)
	if _, err := BuildMatrixECMP(tbl, []ODPair{{Name: "x", Src: ids["A"], Dst: ids["A"]}}); err == nil {
		t.Fatal("degenerate pair accepted")
	}
}
