package routing

import (
	"fmt"
	"sort"

	"netsamp/internal/topology"
)

// ECMP support: real backbones split traffic across equal-cost paths.
// Under flow-hash splitting, a packet of OD pair k crosses link i with
// probability f_ki ∈ [0, 1] — the fraction of pair k's traffic carried
// by link i. The optimization framework extends naturally: the routing
// matrix entry r_ki becomes fractional and the effective sampling rate
// (approximation (7)) becomes ρ_k = Σ_i f_ki·p_i, the probability that
// a random packet of the pair is sampled.
//
// Fractions are computed by equal splitting over the shortest-path DAG:
// every node forwards its share of the pair's traffic uniformly across
// its equal-cost next hops toward the destination (the standard
// per-flow ECMP model with balanced hashing).

// Hop is one link of an ECMP route with the traffic fraction it carries.
type Hop struct {
	Link topology.LinkID
	Frac float64
}

// Fractions returns the per-link traffic fractions of the (src, dst)
// flow under equal-cost multipath splitting. The returned hops are in
// ascending LinkID order. It returns an error if dst is unreachable.
func (t *Table) Fractions(src, dst topology.NodeID) ([]Hop, error) {
	if src == dst {
		return nil, nil
	}
	if !t.Reachable(src, dst) {
		return nil, fmt.Errorf("routing: %v unreachable from %v", dst, src)
	}
	// Admissible links form the shortest-path DAG toward dst:
	// dist(u, dst) == weight(u->v) + dist(v, dst).
	distTo := func(n topology.NodeID) int { return t.dist[n][dst] }
	// Node mass: fraction of the pair's traffic passing through the node.
	mass := map[topology.NodeID]float64{src: 1}
	linkFrac := map[topology.LinkID]float64{}
	// Process nodes in decreasing distance-to-dst: every admissible link
	// strictly decreases dist-to-dst, so this is a topological order of
	// the DAG.
	type nd struct {
		id topology.NodeID
		d  int
	}
	var order []nd
	seen := map[topology.NodeID]bool{src: true}
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, nd{u, distTo(u)})
		if u == dst {
			continue
		}
		for _, lid := range t.g.Out(u) {
			l := t.g.Link(lid)
			if l.Down {
				continue
			}
			if distTo(u) != l.Weight+distTo(l.Dst) {
				continue
			}
			if !seen[l.Dst] {
				seen[l.Dst] = true
				queue = append(queue, l.Dst)
			}
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].d > order[j].d })
	for _, n := range order {
		u := n.id
		if u == dst {
			continue
		}
		m := mass[u]
		if m == 0 {
			continue
		}
		var next []topology.LinkID
		for _, lid := range t.g.Out(u) {
			l := t.g.Link(lid)
			if l.Down {
				continue
			}
			if distTo(u) == l.Weight+distTo(l.Dst) {
				next = append(next, lid)
			}
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("routing: broken ECMP DAG at node %v toward %v", u, dst)
		}
		share := m / float64(len(next))
		for _, lid := range next {
			linkFrac[lid] += share
			mass[t.g.Link(lid).Dst] += share
		}
	}
	hops := make([]Hop, 0, len(linkFrac))
	for lid, f := range linkFrac {
		hops = append(hops, Hop{Link: lid, Frac: f})
	}
	sort.Slice(hops, func(i, j int) bool { return hops[i].Link < hops[j].Link })
	return hops, nil
}

// BuildMatrixECMP routes every OD pair over the full equal-cost DAG and
// assembles a fractional routing matrix: Rows[k] lists the links pair k
// can cross, Fracs[k] the traffic fraction on each.
func BuildMatrixECMP(t *Table, pairs []ODPair) (*Matrix, error) {
	m := &Matrix{
		Pairs: make([]ODPair, len(pairs)),
		Rows:  make([][]topology.LinkID, len(pairs)),
		Fracs: make([][]float64, len(pairs)),
	}
	copy(m.Pairs, pairs)
	for k, pr := range pairs {
		if pr.Src == pr.Dst {
			return nil, fmt.Errorf("routing: OD pair %q has identical endpoints", pr.Name)
		}
		hops, err := t.Fractions(pr.Src, pr.Dst)
		if err != nil {
			return nil, fmt.Errorf("routing: OD pair %q: %w", pr.Name, err)
		}
		row := make([]topology.LinkID, len(hops))
		frac := make([]float64, len(hops))
		for i, h := range hops {
			row[i], frac[i] = h.Link, h.Frac
		}
		m.Rows[k] = row
		m.Fracs[k] = frac
	}
	return m, nil
}

// Frac returns the traffic fraction of OD pair k on link id (1 for a
// traversed link of a single-path matrix, 0 if not traversed).
func (m *Matrix) Frac(k int, id topology.LinkID) float64 {
	for i, l := range m.Rows[k] {
		if l == id {
			if m.Fracs == nil || m.Fracs[k] == nil {
				return 1
			}
			return m.Fracs[k][i]
		}
	}
	return 0
}
