// Package routing computes intradomain shortest-path routes (an ISIS-like
// SPF) over a topology.Graph and derives the routing matrix R the
// optimization framework consumes: r[k][i] = 1 iff OD pair k traverses
// link i (paper, Section III).
//
// Routing is deterministic: ties between equal-cost paths are broken by
// preferring the path whose next node has the smaller NodeID, so that a
// given topology always yields the same routing matrix (experiments must
// be reproducible). ECMP splitting is intentionally out of scope; the
// paper's formulation assigns each OD pair a single set of traversed
// links.
package routing

import (
	"container/heap"
	"fmt"
	"math"

	"netsamp/internal/topology"
)

// ODPair names a measurement-task origin-destination pair. In the paper's
// terminology origin and destination can be any aggregate (end-host,
// prefix, AS, PoP); here they are graph nodes.
type ODPair struct {
	Name     string
	Src, Dst topology.NodeID
}

// Path is a directed path through the graph.
type Path struct {
	Links []topology.LinkID
	Cost  int
}

// Table holds the shortest path between every ordered pair of nodes.
type Table struct {
	g *topology.Graph
	// next[src][dst] is the first link on the path src->dst, -1 if
	// unreachable or src == dst.
	next [][]topology.LinkID
	dist [][]int
}

const unreachable = math.MaxInt32

// item is a priority-queue entry for Dijkstra.
type item struct {
	node topology.NodeID
	dist int
}

type pq []item

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(item)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ComputeTable runs SPF from every node and returns the routing table.
// Down links are ignored. Access links are routed over normally (traffic
// must ingress/egress through them); only the monitorability decision
// treats them specially.
func ComputeTable(g *topology.Graph) *Table {
	n := g.NumNodes()
	t := &Table{
		g:    g,
		next: make([][]topology.LinkID, n),
		dist: make([][]int, n),
	}
	for src := 0; src < n; src++ {
		t.next[src], t.dist[src] = sssp(g, topology.NodeID(src))
	}
	return t
}

// sssp computes single-source shortest paths with deterministic
// tie-breaking and returns, per destination, the first link of the path
// and the distance.
func sssp(g *topology.Graph, src topology.NodeID) ([]topology.LinkID, []int) {
	n := g.NumNodes()
	dist := make([]int, n)
	// prev[d] is the link used to reach d on the best path found so far.
	prev := make([]topology.LinkID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = unreachable
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(item)
		u := it.node
		if done[u] || it.dist > dist[u] {
			continue
		}
		done[u] = true
		for _, lid := range g.Out(u) {
			l := g.Link(lid)
			if l.Down {
				continue
			}
			nd := dist[u] + l.Weight
			v := l.Dst
			if nd < dist[v] {
				dist[v] = nd
				prev[v] = lid
				heap.Push(q, item{node: v, dist: nd})
			} else if nd == dist[v] && prev[v] >= 0 {
				// Deterministic tie-break: prefer the path whose
				// predecessor node has the smaller ID; on a further tie,
				// the smaller link ID.
				cur := g.Link(prev[v])
				if u < cur.Src || (u == cur.Src && lid < prev[v]) {
					prev[v] = lid
				}
			}
		}
	}
	// Convert prev pointers into first-hop links.
	next := make([]topology.LinkID, n)
	for d := 0; d < n; d++ {
		next[d] = -1
	}
	for d := 0; d < n; d++ {
		if topology.NodeID(d) == src || dist[d] == unreachable {
			continue
		}
		// Walk back from d to src collecting nothing; we only need the
		// first hop, found by walking predecessors until we reach src.
		cur := topology.NodeID(d)
		var first topology.LinkID = -1
		for cur != src {
			l := g.Link(prev[cur])
			first = prev[cur]
			cur = l.Src
		}
		next[d] = first
	}
	return next, dist
}

// Reachable reports whether dst is reachable from src.
func (t *Table) Reachable(src, dst topology.NodeID) bool {
	return src == dst || t.dist[src][dst] != unreachable
}

// Cost returns the IGP cost of the path src->dst. It returns an error if
// dst is unreachable.
func (t *Table) Cost(src, dst topology.NodeID) (int, error) {
	if !t.Reachable(src, dst) {
		return 0, fmt.Errorf("routing: %v unreachable from %v", dst, src)
	}
	return t.dist[src][dst], nil
}

// PathBetween returns the shortest path from src to dst. An empty path
// with zero cost is returned when src == dst. It returns an error if dst
// is unreachable.
func (t *Table) PathBetween(src, dst topology.NodeID) (Path, error) {
	if src == dst {
		return Path{}, nil
	}
	if !t.Reachable(src, dst) {
		return Path{}, fmt.Errorf("routing: %v unreachable from %v", dst, src)
	}
	var p Path
	cur := src
	for cur != dst {
		lid := t.next[cur][dst]
		if lid < 0 {
			return Path{}, fmt.Errorf("routing: broken next-hop chain at node %v toward %v", cur, dst)
		}
		p.Links = append(p.Links, lid)
		l := t.g.Link(lid)
		p.Cost += l.Weight
		cur = l.Dst
		if len(p.Links) > t.g.NumLinks() {
			return Path{}, fmt.Errorf("routing: next-hop loop from %v to %v", src, dst)
		}
	}
	return p, nil
}

// Matrix is the routing matrix restricted to a set of OD pairs: one
// sparse row per pair listing the links it traverses. Link identities
// are topology.LinkIDs; the optimizer maps them to dense indices over
// the candidate monitor set.
type Matrix struct {
	Pairs []ODPair
	Rows  [][]topology.LinkID
	// Fracs, when non-nil, holds the ECMP traffic fraction of each entry
	// of Rows (see BuildMatrixECMP). Nil means single-path routing, i.e.
	// every fraction is 1.
	Fracs [][]float64
}

// BuildMatrix routes every OD pair and assembles the routing matrix. It
// returns an error if any pair is unroutable or degenerate (src == dst).
func BuildMatrix(t *Table, pairs []ODPair) (*Matrix, error) {
	m := &Matrix{Pairs: make([]ODPair, len(pairs)), Rows: make([][]topology.LinkID, len(pairs))}
	copy(m.Pairs, pairs)
	for k, pr := range pairs {
		if pr.Src == pr.Dst {
			return nil, fmt.Errorf("routing: OD pair %q has identical endpoints", pr.Name)
		}
		p, err := t.PathBetween(pr.Src, pr.Dst)
		if err != nil {
			return nil, fmt.Errorf("routing: OD pair %q: %w", pr.Name, err)
		}
		row := make([]topology.LinkID, len(p.Links))
		copy(row, p.Links)
		m.Rows[k] = row
	}
	return m, nil
}

// Traverses reports whether OD pair k crosses link id (entry r_{k,i}).
func (m *Matrix) Traverses(k int, id topology.LinkID) bool {
	for _, l := range m.Rows[k] {
		if l == id {
			return true
		}
	}
	return false
}

// LinkSet returns the union L of links traversed by any OD pair, in
// ascending LinkID order (the set the paper calls L ⊆ E).
func (m *Matrix) LinkSet() []topology.LinkID {
	seen := map[topology.LinkID]bool{}
	for _, row := range m.Rows {
		for _, l := range row {
			seen[l] = true
		}
	}
	out := make([]topology.LinkID, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// PairsOnLink returns the indices of OD pairs that traverse link id.
func (m *Matrix) PairsOnLink(id topology.LinkID) []int {
	var out []int
	for k := range m.Rows {
		if m.Traverses(k, id) {
			out = append(out, k)
		}
	}
	return out
}
