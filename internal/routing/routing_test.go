package routing

import (
	"testing"

	"netsamp/internal/topology"
)

// lineGraph builds A - B - C - D with unit weights.
func lineGraph(t *testing.T) (*topology.Graph, []topology.NodeID) {
	t.Helper()
	g := topology.New()
	ids := []topology.NodeID{g.AddNode("A"), g.AddNode("B"), g.AddNode("C"), g.AddNode("D")}
	g.AddDuplex(ids[0], ids[1], topology.OC48, 1)
	g.AddDuplex(ids[1], ids[2], topology.OC48, 1)
	g.AddDuplex(ids[2], ids[3], topology.OC48, 1)
	return g, ids
}

// diamond builds a graph with two paths A->D: A-B-D (cost 2) and A-C-D
// (cost 3 by default, configurable).
func diamond(t *testing.T, viaCWeight int) (*topology.Graph, [4]topology.NodeID) {
	t.Helper()
	g := topology.New()
	a, b, c, d := g.AddNode("A"), g.AddNode("B"), g.AddNode("C"), g.AddNode("D")
	g.AddDuplex(a, b, topology.OC48, 1)
	g.AddDuplex(b, d, topology.OC48, 1)
	g.AddDuplex(a, c, topology.OC48, viaCWeight)
	g.AddDuplex(c, d, topology.OC48, viaCWeight)
	return g, [4]topology.NodeID{a, b, c, d}
}

func TestShortestPathLine(t *testing.T) {
	g, ids := lineGraph(t)
	tbl := ComputeTable(g)
	p, err := tbl.PathBetween(ids[0], ids[3])
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != 3 || len(p.Links) != 3 {
		t.Fatalf("path = %+v", p)
	}
	// Verify the path is contiguous A->B->C->D.
	want := []string{"A->B", "B->C", "C->D"}
	for i, lid := range p.Links {
		if g.LinkName(lid) != want[i] {
			t.Fatalf("hop %d = %s, want %s", i, g.LinkName(lid), want[i])
		}
	}
}

func TestPathToSelf(t *testing.T) {
	g, ids := lineGraph(t)
	tbl := ComputeTable(g)
	p, err := tbl.PathBetween(ids[1], ids[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Links) != 0 || p.Cost != 0 {
		t.Fatalf("self path = %+v", p)
	}
}

func TestPrefersCheaperPath(t *testing.T) {
	g, ids := diamond(t, 5)
	tbl := ComputeTable(g)
	p, err := tbl.PathBetween(ids[0], ids[3])
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != 2 {
		t.Fatalf("cost = %d, want 2 (via B)", p.Cost)
	}
	if g.LinkName(p.Links[0]) != "A->B" {
		t.Fatalf("first hop = %s", g.LinkName(p.Links[0]))
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Equal-cost paths via B and via C; B has the smaller node ID, so the
	// tie must always break toward B.
	for trial := 0; trial < 5; trial++ {
		g, ids := diamond(t, 1)
		tbl := ComputeTable(g)
		p, err := tbl.PathBetween(ids[0], ids[3])
		if err != nil {
			t.Fatal(err)
		}
		if p.Cost != 2 {
			t.Fatalf("cost = %d", p.Cost)
		}
		if g.LinkName(p.Links[0]) != "A->B" {
			t.Fatalf("tie broke toward %s", g.LinkName(p.Links[0]))
		}
	}
}

func TestDownLinkReroutes(t *testing.T) {
	g, ids := diamond(t, 5)
	ab, _ := g.FindLink(ids[0], ids[1])
	g.SetDown(ab, true)
	tbl := ComputeTable(g)
	p, err := tbl.PathBetween(ids[0], ids[3])
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != 10 {
		t.Fatalf("rerouted cost = %d, want 10 (via C)", p.Cost)
	}
	if g.LinkName(p.Links[0]) != "A->C" {
		t.Fatalf("rerouted first hop = %s", g.LinkName(p.Links[0]))
	}
}

func TestUnreachable(t *testing.T) {
	g := topology.New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	c := g.AddNode("C")
	g.AddLink(a, b, topology.OC3, 1) // one-way only; C isolated
	tbl := ComputeTable(g)
	if tbl.Reachable(b, a) {
		t.Fatal("B->A should be unreachable (one-way link)")
	}
	if tbl.Reachable(a, c) {
		t.Fatal("A->C should be unreachable")
	}
	if _, err := tbl.PathBetween(a, c); err == nil {
		t.Fatal("PathBetween to unreachable node must error")
	}
	if _, err := tbl.Cost(a, c); err == nil {
		t.Fatal("Cost to unreachable node must error")
	}
	if cost, err := tbl.Cost(a, b); err != nil || cost != 1 {
		t.Fatalf("Cost(A,B) = %d, %v", cost, err)
	}
}

func TestBuildMatrix(t *testing.T) {
	g, ids := lineGraph(t)
	tbl := ComputeTable(g)
	pairs := []ODPair{
		{Name: "A->D", Src: ids[0], Dst: ids[3]},
		{Name: "B->C", Src: ids[1], Dst: ids[2]},
	}
	m, err := BuildMatrix(tbl, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rows[0]) != 3 || len(m.Rows[1]) != 1 {
		t.Fatalf("rows = %v", m.Rows)
	}
	bc, _ := g.FindLink(ids[1], ids[2])
	if !m.Traverses(0, bc) || !m.Traverses(1, bc) {
		t.Fatal("both pairs must traverse B->C")
	}
	ab, _ := g.FindLink(ids[0], ids[1])
	if m.Traverses(1, ab) {
		t.Fatal("pair B->C must not traverse A->B")
	}
	set := m.LinkSet()
	if len(set) != 3 {
		t.Fatalf("LinkSet = %v, want 3 links", set)
	}
	for i := 1; i < len(set); i++ {
		if set[i] <= set[i-1] {
			t.Fatalf("LinkSet not sorted: %v", set)
		}
	}
	on := m.PairsOnLink(bc)
	if len(on) != 2 || on[0] != 0 || on[1] != 1 {
		t.Fatalf("PairsOnLink = %v", on)
	}
}

func TestBuildMatrixErrors(t *testing.T) {
	g, ids := lineGraph(t)
	tbl := ComputeTable(g)
	if _, err := BuildMatrix(tbl, []ODPair{{Name: "loop", Src: ids[0], Dst: ids[0]}}); err == nil {
		t.Fatal("degenerate pair accepted")
	}
	iso := g.AddNode("ISO")
	tbl2 := ComputeTable(g)
	if _, err := BuildMatrix(tbl2, []ODPair{{Name: "x", Src: ids[0], Dst: iso}}); err == nil {
		t.Fatal("unroutable pair accepted")
	}
}

// TestPathConsistency is a property: for every ordered reachable pair in
// a random-ish mesh, the path returned is contiguous, loop-free, starts
// at src, ends at dst, and its cost equals Table.Cost.
func TestPathConsistency(t *testing.T) {
	g := topology.New()
	var ids []topology.NodeID
	for _, n := range []string{"A", "B", "C", "D", "E", "F"} {
		ids = append(ids, g.AddNode(n))
	}
	g.AddDuplex(ids[0], ids[1], topology.OC48, 2)
	g.AddDuplex(ids[1], ids[2], topology.OC48, 2)
	g.AddDuplex(ids[2], ids[3], topology.OC48, 2)
	g.AddDuplex(ids[3], ids[4], topology.OC48, 2)
	g.AddDuplex(ids[4], ids[5], topology.OC48, 2)
	g.AddDuplex(ids[0], ids[5], topology.OC48, 3)
	g.AddDuplex(ids[1], ids[4], topology.OC48, 5)
	tbl := ComputeTable(g)
	for _, s := range ids {
		for _, d := range ids {
			if s == d {
				continue
			}
			p, err := tbl.PathBetween(s, d)
			if err != nil {
				t.Fatalf("%v->%v: %v", s, d, err)
			}
			cur := s
			visited := map[topology.NodeID]bool{s: true}
			cost := 0
			for _, lid := range p.Links {
				l := g.Link(lid)
				if l.Src != cur {
					t.Fatalf("%v->%v: discontiguous at %v", s, d, lid)
				}
				cur = l.Dst
				cost += l.Weight
				if visited[cur] {
					t.Fatalf("%v->%v: loop at %v", s, d, cur)
				}
				visited[cur] = true
			}
			if cur != d {
				t.Fatalf("%v->%v: path ends at %v", s, d, cur)
			}
			want, err := tbl.Cost(s, d)
			if err != nil || cost != want || p.Cost != want {
				t.Fatalf("%v->%v: cost %d/%d, want %d (%v)", s, d, cost, p.Cost, want, err)
			}
		}
	}
}
