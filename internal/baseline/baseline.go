// Package baseline implements the alternative monitoring strategies the
// paper compares against (Section V-C) plus a two-phase heuristic in the
// spirit of Suh et al. ("Locating network monitors: complexity,
// heuristics and coverage", Infocom 2006), the closest prior work.
//
//   - AccessLink: monitor only the customer's access link. Every sampled
//     packet belongs to the task, but small OD pairs force a high rate
//     on a heavily loaded link — and the CPE may not be monitorable.
//   - Restricted: run the full optimizer over a restricted candidate set
//     (the paper restricts to the six UK links).
//   - Uniform: one network-wide sampling rate on every candidate link,
//     chosen to exhaust the budget (what ISPs deploy today, per the
//     paper's introduction: "enable NetFlow on all routers but using
//     very low sampling rates").
//   - TwoPhaseGreedy: first choose monitor locations by greedy coverage
//     of the OD traffic, then split the budget across the chosen links —
//     placement and rate selection decoupled, unlike the paper's joint
//     formulation.
package baseline

import (
	"context"
	"fmt"
	"sort"

	"netsamp/internal/core"
	"netsamp/internal/engine"
	"netsamp/internal/plan"
	"netsamp/internal/rng"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
)

// Assignment is a per-link sampling-rate assignment produced by a
// baseline strategy.
type Assignment struct {
	Name  string
	Rates map[topology.LinkID]float64
	// Rho is the per-pair effective sampling rate under the assignment.
	Rho []float64
}

// AccessLink monitors only the given link (the customer access circuit)
// and spends the whole budget on it. It returns an error if the budget
// exceeds the link's samplable rate.
func AccessLink(m *routing.Matrix, loads []float64, link topology.LinkID, budget float64) (*Assignment, error) {
	if int(link) < 0 || int(link) >= len(loads) {
		return nil, fmt.Errorf("baseline: link %d outside load table", link)
	}
	u := loads[link]
	if u <= 0 {
		return nil, fmt.Errorf("baseline: access link %d carries no traffic", link)
	}
	p := budget / u
	if p > 1 {
		return nil, fmt.Errorf("baseline: budget %v needs rate %v > 1 on access link", budget, p)
	}
	rates := map[topology.LinkID]float64{link: p}
	return &Assignment{
		Name:  "access-link",
		Rates: rates,
		Rho:   plan.EffectiveRates(m, rates, nil),
	}, nil
}

// AccessLinkCapacityForRate returns the budget (sampled pkt/s) that
// access-link-only monitoring needs to give every OD pair an effective
// sampling rate of at least targetRho: the access link carries all pairs,
// so p = targetRho and the cost is targetRho·U_access. This is the
// paper's Section V-C capacity comparison (the "70% higher θ" argument).
func AccessLinkCapacityForRate(loads []float64, link topology.LinkID, targetRho float64) float64 {
	return targetRho * loads[link]
}

// Restricted runs the full optimizer over a restricted candidate set and
// labels the result. The paper's instance restricts to the six UK links.
func Restricted(name string, in plan.Input, opt core.Options) (*Assignment, *core.Solution, error) {
	comp, err := plan.Compile(in)
	if err != nil {
		return nil, nil, err
	}
	sol, err := comp.Solver().Solve(opt)
	if err != nil {
		return nil, nil, err
	}
	rates := plan.RatesByLink(sol, in.Candidates)
	return &Assignment{
		Name:  name,
		Rates: rates,
		Rho:   plan.EffectiveRates(in.Matrix, rates, in.Model),
	}, sol, nil
}

// Uniform assigns the same sampling rate to every candidate link,
// exhausting the budget: p = θ / Σ U_i. It returns an error if that rate
// exceeds 1.
func Uniform(m *routing.Matrix, loads []float64, candidates []topology.LinkID, budget float64) (*Assignment, error) {
	total := 0.0
	for _, lid := range candidates {
		if int(lid) < 0 || int(lid) >= len(loads) {
			return nil, fmt.Errorf("baseline: link %d outside load table", lid)
		}
		total += loads[lid]
	}
	if total <= 0 {
		return nil, fmt.Errorf("baseline: candidate set carries no traffic")
	}
	p := budget / total
	if p > 1 {
		return nil, fmt.Errorf("baseline: uniform rate %v > 1", p)
	}
	rates := make(map[topology.LinkID]float64, len(candidates))
	for _, lid := range candidates {
		rates[lid] = p
	}
	return &Assignment{
		Name:  "uniform",
		Rates: rates,
		Rho:   plan.EffectiveRates(m, rates, nil),
	}, nil
}

// TwoPhaseGreedy decouples placement from rate selection:
//
// Phase 1 greedily picks links that cover the most not-yet-covered OD
// traffic (by pair rate) until every pair is covered or maxMonitors is
// reached.
//
// Phase 2 splits the budget across the chosen links proportionally to
// the OD traffic they carry, i.e. p_i ∝ (covered rate on i)/U_i,
// normalized to exhaust the budget (capped at 1).
//
// pairRates[k] is the intensity of pair k, used as the coverage value.
func TwoPhaseGreedy(m *routing.Matrix, loads []float64, candidates []topology.LinkID, pairRates []float64, budget float64, maxMonitors int) (*Assignment, error) {
	if len(pairRates) != len(m.Pairs) {
		return nil, fmt.Errorf("baseline: %d pairRates for %d pairs", len(pairRates), len(m.Pairs))
	}
	if maxMonitors <= 0 {
		maxMonitors = len(candidates)
	}
	inSet := make(map[topology.LinkID]bool, len(candidates))
	for _, lid := range candidates {
		inSet[lid] = true
	}
	covered := make([]bool, len(m.Pairs))
	var chosen []topology.LinkID
	for len(chosen) < maxMonitors {
		var best topology.LinkID = -1
		bestGain := 0.0
		for _, lid := range candidates {
			if !inSet[lid] {
				continue
			}
			gain := 0.0
			for k := range m.Pairs {
				if !covered[k] && m.Traverses(k, lid) {
					gain += pairRates[k]
				}
			}
			if gain > bestGain {
				bestGain, best = gain, lid
			}
		}
		if best < 0 {
			break // nothing left to cover
		}
		chosen = append(chosen, best)
		inSet[best] = false
		for k := range m.Pairs {
			if m.Traverses(k, best) {
				covered[k] = true
			}
		}
		all := true
		for _, c := range covered {
			all = all && c
		}
		if all {
			break
		}
	}
	if len(chosen) == 0 {
		return nil, fmt.Errorf("baseline: greedy chose no monitors")
	}
	sort.Slice(chosen, func(i, j int) bool { return chosen[i] < chosen[j] })

	// Phase 2: weight each chosen link by the OD traffic share it carries
	// relative to its total load, then scale to the budget.
	weight := make(map[topology.LinkID]float64, len(chosen))
	for _, lid := range chosen {
		odRate := 0.0
		for k := range m.Pairs {
			if m.Traverses(k, lid) {
				odRate += pairRates[k]
			}
		}
		weight[lid] = odRate / loads[lid]
	}
	// Find scale s with Σ min(1, s·w_i)·U_i = budget (monotone: bisect).
	cost := func(s float64) float64 {
		t := 0.0
		for _, lid := range chosen {
			p := s * weight[lid]
			if p > 1 {
				p = 1
			}
			t += p * loads[lid]
		}
		return t
	}
	maxCost := cost(1e18)
	if budget > maxCost {
		return nil, fmt.Errorf("baseline: budget %v exceeds samplable %v on chosen set", budget, maxCost)
	}
	lo, hi := 0.0, 1e18
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cost(mid) < budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	s := (lo + hi) / 2
	rates := make(map[topology.LinkID]float64, len(chosen))
	for _, lid := range chosen {
		p := s * weight[lid]
		if p > 1 {
			p = 1
		}
		rates[lid] = p
	}
	return &Assignment{
		Name:  "two-phase-greedy",
		Rates: rates,
		Rho:   plan.EffectiveRates(m, rates, nil),
	}, nil
}

// FixedRate enables NetFlow on every candidate link at one fixed
// sampling rate (e.g. 1/1000) — the practice the paper's introduction
// attributes to ISPs today: "enable NetFlow on all routers but using
// very low sampling rates to minimize potential network impact". The
// budget it consumes is implied by the rate; BudgetConsumed reports it
// so the optimizer can be run at the same cost for a fair comparison.
func FixedRate(m *routing.Matrix, loads []float64, candidates []topology.LinkID, rate float64) (*Assignment, error) {
	if !(rate > 0 && rate <= 1) {
		return nil, fmt.Errorf("baseline: fixed rate %v out of (0, 1]", rate)
	}
	rates := make(map[topology.LinkID]float64, len(candidates))
	for _, lid := range candidates {
		if int(lid) < 0 || int(lid) >= len(loads) {
			return nil, fmt.Errorf("baseline: link %d outside load table", lid)
		}
		rates[lid] = rate
	}
	return &Assignment{
		Name:  "fixed-rate",
		Rates: rates,
		Rho:   plan.EffectiveRates(m, rates, nil),
	}, nil
}

// BudgetConsumed returns the sampled packet rate an assignment costs.
func (a *Assignment) BudgetConsumed(loads []float64) float64 {
	return plan.SampledRate(a.Rates, loads)
}

// Comparator is one deferred baseline evaluation for CompareAll: a
// strategy name plus the closure that builds its assignment.
type Comparator struct {
	Name  string
	Build func() (*Assignment, error)
}

// Standard returns the comparator set the evaluation sweeps run against
// the optimizer at a shared budget: uniform network-wide sampling and
// the decoupled two-phase placement heuristic.
func Standard(m *routing.Matrix, loads []float64, candidates []topology.LinkID, pairRates []float64, budget float64) []Comparator {
	return []Comparator{
		{Name: "uniform", Build: func() (*Assignment, error) {
			return Uniform(m, loads, candidates, budget)
		}},
		{Name: "two-phase-greedy", Build: func() (*Assignment, error) {
			return TwoPhaseGreedy(m, loads, candidates, pairRates, budget, 0)
		}},
	}
}

// CompareAll evaluates the comparators concurrently on the engine's
// worker pool (workers = 0 selects GOMAXPROCS) and returns the
// assignments in comparator order. A failing comparator is reported with
// its name; the others still complete.
func CompareAll(ctx context.Context, workers int, comps []Comparator) ([]*Assignment, error) {
	return engine.Map(ctx, engine.Options{Workers: workers}, len(comps),
		func(_ context.Context, i int, _ *rng.Source) (*Assignment, error) {
			a, err := comps[i].Build()
			if err != nil {
				return nil, fmt.Errorf("baseline: %s: %w", comps[i].Name, err)
			}
			return a, nil
		})
}
