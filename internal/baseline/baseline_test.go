package baseline

import (
	"math"
	"testing"

	"netsamp/internal/core"
	"netsamp/internal/geant"
	"netsamp/internal/plan"
	"netsamp/internal/topology"
)

func scenario(t *testing.T) *geant.Scenario {
	t.Helper()
	return geant.MustBuild(1)
}

func TestAccessLink(t *testing.T) {
	s := scenario(t)
	budget := core.BudgetPerInterval(100000, 300)
	a, err := AccessLink(s.Matrix, s.Loads, s.AccessLink, budget)
	if err != nil {
		t.Fatal(err)
	}
	p := a.Rates[s.AccessLink]
	want := budget / s.Loads[s.AccessLink]
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("rate = %v, want %v", p, want)
	}
	// Every pair crosses the access link, so ρ_k = p for all pairs.
	for k, rho := range a.Rho {
		if math.Abs(rho-p) > 1e-12 {
			t.Fatalf("pair %d rho = %v, want %v", k, rho, p)
		}
	}
}

func TestAccessLinkErrors(t *testing.T) {
	s := scenario(t)
	if _, err := AccessLink(s.Matrix, s.Loads, topology.LinkID(9999), 1); err == nil {
		t.Fatal("bad link accepted")
	}
	// A budget above the access link's own rate needs p > 1.
	if _, err := AccessLink(s.Matrix, s.Loads, s.AccessLink, s.Loads[s.AccessLink]*2); err == nil {
		t.Fatal("infeasible budget accepted")
	}
}

func TestAccessLinkCapacityForRate(t *testing.T) {
	s := scenario(t)
	got := AccessLinkCapacityForRate(s.Loads, s.AccessLink, 0.01)
	want := 0.01 * s.Loads[s.AccessLink]
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("capacity = %v, want %v", got, want)
	}
}

func TestUniform(t *testing.T) {
	s := scenario(t)
	budget := core.BudgetPerInterval(100000, 300)
	a, err := Uniform(s.Matrix, s.Loads, s.MonitorLinks, budget)
	if err != nil {
		t.Fatal(err)
	}
	// All candidate links share one rate.
	var p float64
	for _, r := range a.Rates {
		p = r
		break
	}
	total := 0.0
	for lid, r := range a.Rates {
		if math.Abs(r-p) > 1e-15 {
			t.Fatalf("non-uniform rates: %v vs %v", r, p)
		}
		total += r * s.Loads[lid]
	}
	if math.Abs(total-budget) > 1e-6 {
		t.Fatalf("budget spent = %v, want %v", total, budget)
	}
}

func TestUniformErrors(t *testing.T) {
	s := scenario(t)
	if _, err := Uniform(s.Matrix, s.Loads, []topology.LinkID{9999}, 1); err == nil {
		t.Fatal("bad candidate accepted")
	}
	huge := 0.0
	for _, lid := range s.MonitorLinks {
		huge += s.Loads[lid]
	}
	if _, err := Uniform(s.Matrix, s.Loads, s.MonitorLinks, huge*2); err == nil {
		t.Fatal("infeasible budget accepted")
	}
}

func TestRestrictedUKLinks(t *testing.T) {
	s := scenario(t)
	budget := core.BudgetPerInterval(100000, 300)
	in := plan.Input{
		Matrix:       s.Matrix,
		Loads:        s.Loads,
		Candidates:   s.UKLinks,
		InvMeanSizes: s.UtilityParams(300),
		Budget:       budget,
	}
	a, sol, err := Restricted("uk-links", in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Converged {
		t.Fatal("restricted solve did not converge")
	}
	// Only UK links may carry rates.
	ukSet := map[topology.LinkID]bool{}
	for _, lid := range s.UKLinks {
		ukSet[lid] = true
	}
	for lid := range a.Rates {
		if !ukSet[lid] {
			t.Fatalf("non-UK link %v activated", lid)
		}
	}
	// The restriction is expensive: the optimizer may leave some pairs
	// effectively unmonitored (the paper's point about this baseline),
	// but the budget must be exhausted and most pairs measurable.
	if got := plan.SampledRate(a.Rates, s.Loads); math.Abs(got-budget)/budget > 1e-6 {
		t.Fatalf("budget spent = %v, want %v", got, budget)
	}
	monitored := 0
	for _, rho := range a.Rho {
		if rho > 0 {
			monitored++
		}
	}
	if monitored < len(a.Rho)/2 {
		t.Fatalf("only %d/%d pairs monitored under UK restriction", monitored, len(a.Rho))
	}
}

func TestOptimalBeatsBaselinesOnWorstPair(t *testing.T) {
	// The headline comparison (Figure 2): the full optimizer must achieve
	// a (weakly) better minimum utility than the restricted and uniform
	// baselines at the same budget.
	s := scenario(t)
	budget := core.BudgetPerInterval(100000, 300)
	inv := s.UtilityParams(300)

	full := plan.Input{
		Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks,
		InvMeanSizes: inv, Budget: budget,
	}
	_, fullSol, err := Restricted("optimal", full, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	uk := full
	uk.Candidates = s.UKLinks
	_, ukSol, err := Restricted("uk", uk, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Uniform(s.Matrix, s.Loads, s.MonitorLinks, budget)
	if err != nil {
		t.Fatal(err)
	}
	if fullSol.Objective < ukSol.Objective-1e-9 {
		t.Fatalf("restricted beat the full optimizer: %v vs %v", ukSol.Objective, fullSol.Objective)
	}
	// Uniform objective under the same utilities.
	uniObj := 0.0
	for k := range s.Pairs {
		uniObj += core.MustSRE(inv[k]).Value(uni.Rho[k])
	}
	if fullSol.Objective < uniObj-1e-9 {
		t.Fatalf("uniform beat the full optimizer: %v vs %v", uniObj, fullSol.Objective)
	}
}

func TestTwoPhaseGreedy(t *testing.T) {
	s := scenario(t)
	budget := core.BudgetPerInterval(100000, 300)
	a, err := TwoPhaseGreedy(s.Matrix, s.Loads, s.MonitorLinks, s.Rates, budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Budget exhausted.
	if got := plan.SampledRate(a.Rates, s.Loads); math.Abs(got-budget)/budget > 1e-6 {
		t.Fatalf("budget spent = %v, want %v", got, budget)
	}
	// Every pair covered (positive effective rate).
	for k, rho := range a.Rho {
		if rho <= 0 {
			t.Fatalf("pair %s uncovered by greedy", s.Pairs[k].Name)
		}
	}
	// Optimal joint solution must beat the two-phase heuristic.
	inv := s.UtilityParams(300)
	_, opt, err := Restricted("optimal", plan.Input{
		Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks,
		InvMeanSizes: inv, Budget: budget,
	}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	greedyObj := 0.0
	for k := range s.Pairs {
		greedyObj += core.MustSRE(inv[k]).Value(a.Rho[k])
	}
	if opt.Objective < greedyObj-1e-9 {
		t.Fatalf("two-phase greedy beat the optimum: %v vs %v", greedyObj, opt.Objective)
	}
}

func TestTwoPhaseGreedyMonitorCap(t *testing.T) {
	s := scenario(t)
	budget := core.BudgetPerInterval(20000, 300)
	a, err := TwoPhaseGreedy(s.Matrix, s.Loads, s.MonitorLinks, s.Rates, budget, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rates) > 3 {
		t.Fatalf("greedy used %d monitors, cap 3", len(a.Rates))
	}
}

func TestTwoPhaseGreedyErrors(t *testing.T) {
	s := scenario(t)
	if _, err := TwoPhaseGreedy(s.Matrix, s.Loads, s.MonitorLinks, []float64{1}, 10, 0); err == nil {
		t.Fatal("bad pairRates accepted")
	}
}

func TestFixedRate(t *testing.T) {
	s := scenario(t)
	a, err := FixedRate(s.Matrix, s.Loads, s.MonitorLinks, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rates) != len(s.MonitorLinks) {
		t.Fatalf("rates on %d links, want %d", len(a.Rates), len(s.MonitorLinks))
	}
	for _, p := range a.Rates {
		if p != 0.001 {
			t.Fatalf("rate = %v", p)
		}
	}
	// Budget consumed = rate × Σ loads.
	sum := 0.0
	for _, lid := range s.MonitorLinks {
		sum += s.Loads[lid]
	}
	if got := a.BudgetConsumed(s.Loads); math.Abs(got-0.001*sum) > 1e-9 {
		t.Fatalf("BudgetConsumed = %v", got)
	}
	// Every pair gets a positive effective rate (all links monitored).
	for k, rho := range a.Rho {
		if rho <= 0 {
			t.Fatalf("pair %d unmonitored", k)
		}
	}
}

func TestFixedRateErrors(t *testing.T) {
	s := scenario(t)
	if _, err := FixedRate(s.Matrix, s.Loads, s.MonitorLinks, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := FixedRate(s.Matrix, s.Loads, []topology.LinkID{9999}, 0.001); err == nil {
		t.Fatal("bad link accepted")
	}
}

// TestOptimalBeatsFixedRateAtEqualBudget is the intro's option (i) vs
// option (ii): at the budget 1/1000-everywhere consumes, the optimized
// plan must achieve a higher objective.
func TestOptimalBeatsFixedRateAtEqualBudget(t *testing.T) {
	s := scenario(t)
	fixed, err := FixedRate(s.Matrix, s.Loads, s.MonitorLinks, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	budget := fixed.BudgetConsumed(s.Loads)
	inv := s.UtilityParams(300)
	_, opt, err := Restricted("optimal", plan.Input{
		Matrix: s.Matrix, Loads: s.Loads, Candidates: s.MonitorLinks,
		InvMeanSizes: inv, Budget: budget,
	}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fixedObj, fixedMin := 0.0, 1.0
	for k := range s.Pairs {
		u := core.MustSRE(inv[k]).Value(fixed.Rho[k])
		fixedObj += u
		if u < fixedMin {
			fixedMin = u
		}
	}
	if opt.Objective <= fixedObj {
		t.Fatalf("fixed-rate beat the optimum: %v vs %v", fixedObj, opt.Objective)
	}
	// The gap concentrates on the worst (small) pairs.
	optMin := 1.0
	for _, u := range opt.Utilities {
		if u < optMin {
			optMin = u
		}
	}
	if optMin <= fixedMin {
		t.Fatalf("optimal worst-pair %v not above fixed-rate worst-pair %v", optMin, fixedMin)
	}
}
