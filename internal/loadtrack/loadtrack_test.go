package loadtrack

import (
	"errors"
	"math"
	"strings"
	"testing"

	"netsamp/internal/state"
)

func TestNewDefaultsAndValidation(t *testing.T) {
	tr, err := New(3, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cfg := tr.Config()
	if cfg.Alpha != 1 || cfg.WidenFactor != 1.25 || cfg.BoundSigma != 2 || cfg.MinRel != 0.02 || cfg.MaxRel != 4 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
	for i := 0; i < 3; i++ {
		if tr.Age(i) != -1 {
			t.Fatalf("link %d age %d, want -1 (never observed)", i, tr.Age(i))
		}
	}
	bad := []Config{
		{Alpha: -0.1}, {Alpha: 1.5}, {Alpha: math.NaN()},
		{WidenFactor: 0.9}, {WidenFactor: math.Inf(1)},
		{BoundSigma: -1}, {MinRel: -0.5}, {MinRel: 3, MaxRel: 2},
	}
	for _, c := range bad {
		if _, err := New(1, c); err == nil {
			t.Errorf("New accepted bad config %+v", c)
		}
	}
	if _, err := New(-1, Config{}); err == nil {
		t.Error("New accepted negative length")
	}
}

func TestObserveTightensAndWidens(t *testing.T) {
	tr := MustNew(2, Config{Alpha: 0.5, WidenFactor: 1.5})
	// First observation anchors the estimate at the stated error.
	if err := tr.Observe([]float64{100, 200}, []float64{0.1, 0.1}, nil); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if tr.Mean(0) != 100 || tr.Rel(0) != 0.1 || tr.Age(0) != 0 {
		t.Fatalf("first observation: mean %v rel %v age %d", tr.Mean(0), tr.Rel(0), tr.Age(0))
	}
	// Repeated observation tightens the interval below the observation
	// error (quadrature combine with the filter memory).
	if err := tr.Observe([]float64{100, 200}, []float64{0.1, 0.1}, nil); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if got := tr.Rel(0); got >= 0.1 {
		t.Fatalf("repeated observation rel %v, want < 0.1", got)
	}
	relBefore := tr.Rel(1)
	// Unobserved link 1 widens multiplicatively and freezes the mean.
	if err := tr.Observe([]float64{100, 999}, []float64{0.1, 0.1}, []bool{true, false}); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if tr.Mean(1) != 200 {
		t.Fatalf("unobserved mean moved to %v, want frozen 200", tr.Mean(1))
	}
	if got, want := tr.Rel(1), relBefore*1.5; math.Abs(got-want) > 1e-15 {
		t.Fatalf("unobserved rel %v, want %v", got, want)
	}
	if tr.Age(1) != 1 {
		t.Fatalf("unobserved age %d, want 1", tr.Age(1))
	}
	// Widening saturates at MaxRel.
	for i := 0; i < 50; i++ {
		if err := tr.Observe([]float64{100, 999}, nil, []bool{true, false}); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if got := tr.Rel(1); got != tr.Config().MaxRel {
		t.Fatalf("widening saturated at %v, want MaxRel %v", got, tr.Config().MaxRel)
	}
}

func TestNeverObservedAdoptsPrior(t *testing.T) {
	tr := MustNew(1, Config{})
	if err := tr.Observe([]float64{42}, nil, []bool{false}); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if tr.Mean(0) != 42 || tr.Rel(0) != tr.Config().MaxRel || tr.Age(0) != -1 {
		t.Fatalf("prior adoption: mean %v rel %v age %d", tr.Mean(0), tr.Rel(0), tr.Age(0))
	}
	lo, hi := tr.Bounds(0)
	if !(lo > 0) || !(hi > lo) {
		t.Fatalf("prior bounds [%v, %v], want 0 < lo < hi", lo, hi)
	}
}

func TestInfiniteRelErrCountsAsUnobserved(t *testing.T) {
	tr := MustNew(1, Config{})
	if err := tr.Observe([]float64{100}, []float64{0.1}, nil); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	relBefore := tr.Rel(0)
	if err := tr.Observe([]float64{5}, []float64{math.Inf(1)}, nil); err != nil {
		t.Fatalf("Observe with +Inf relErr: %v", err)
	}
	if tr.Mean(0) != 100 {
		t.Fatalf("no-information observation moved the mean to %v", tr.Mean(0))
	}
	if tr.Rel(0) <= relBefore {
		t.Fatalf("no-information observation did not widen: %v -> %v", relBefore, tr.Rel(0))
	}
}

func TestBoundsEnvelope(t *testing.T) {
	tr := MustNew(1, Config{BoundSigma: 2})
	if err := tr.Observe([]float64{100}, []float64{0.1}, nil); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	lo, hi := tr.Bounds(0)
	if math.Abs(lo-80) > 1e-12 || math.Abs(hi-120) > 1e-12 {
		t.Fatalf("bounds [%v, %v], want [80, 120]", lo, hi)
	}
	// A very wide interval floors the lower bound above zero.
	for i := 0; i < 50; i++ {
		if err := tr.Observe([]float64{100}, nil, []bool{false}); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	lo, _ = tr.Bounds(0)
	if want := 100 * minLowerFrac; math.Abs(lo-want) > 1e-12 {
		t.Fatalf("floored lower bound %v, want %v", lo, want)
	}
	both := make([]float64, 1)
	hiInto := make([]float64, 1)
	tr.BoundsInto(both, hiInto)
	l2, h2 := tr.Bounds(0)
	if both[0] != l2 || hiInto[0] != h2 {
		t.Fatal("BoundsInto disagrees with Bounds")
	}
}

func TestObserveRejectsBadInputs(t *testing.T) {
	tr := MustNew(2, Config{})
	if err := tr.Observe([]float64{1}, nil, nil); err == nil {
		t.Error("accepted short values")
	}
	if err := tr.Observe([]float64{1, 2}, []float64{0.1}, nil); err == nil {
		t.Error("accepted short relErr")
	}
	if err := tr.Observe([]float64{1, 2}, nil, []bool{true}); err == nil {
		t.Error("accepted short observed")
	}
	if err := tr.Observe([]float64{math.NaN(), 2}, nil, nil); err == nil {
		t.Error("accepted NaN value")
	}
	if err := tr.Observe([]float64{-1, 2}, nil, nil); err == nil {
		t.Error("accepted negative value")
	}
	if err := tr.Observe([]float64{1, 2}, []float64{math.NaN(), 0}, nil); err == nil {
		t.Error("accepted NaN relErr for an observed link")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	tr := MustNew(3, Config{Alpha: 0.3})
	for i := 0; i < 5; i++ {
		obs := []bool{true, i%2 == 0, false}
		if err := tr.Observe([]float64{100, 50, 10}, []float64{0.05, 0.2, 0.5}, obs); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	st := tr.Snapshot()
	blob, err := st.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back State
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	tr2 := MustNew(0, tr.Config())
	if err := tr2.Restore(back); err != nil {
		t.Fatalf("restore: %v", err)
	}
	for i := 0; i < 3; i++ {
		if tr2.Mean(i) != tr.Mean(i) || tr2.Rel(i) != tr.Rel(i) || tr2.Age(i) != tr.Age(i) {
			t.Fatalf("link %d diverged after round trip", i)
		}
	}
	// Continued updates are bit-identical to the uninterrupted tracker.
	for i := 0; i < 3; i++ {
		v := []float64{90, 60, 20}
		e := []float64{0.1, 0.1, 0.1}
		o := []bool{true, false, true}
		if err := tr.Observe(v, e, o); err != nil {
			t.Fatal(err)
		}
		if err := tr2.Observe(v, e, o); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if tr2.Mean(i) != tr.Mean(i) || tr2.Rel(i) != tr.Rel(i) {
			t.Fatalf("link %d diverged after restore-resume", i)
		}
	}
}

func TestRestoreRejectsBadState(t *testing.T) {
	tr := MustNew(1, Config{})
	bad := []State{
		{Mean: []float64{1}, Rel: []float64{0.1, 0.2}, Age: []int64{0}},
		{Mean: []float64{math.NaN()}, Rel: []float64{0.1}, Age: []int64{0}},
		{Mean: []float64{-1}, Rel: []float64{0.1}, Age: []int64{0}},
		{Mean: []float64{1}, Rel: []float64{math.Inf(1)}, Age: []int64{0}},
		{Mean: []float64{1}, Rel: []float64{-0.1}, Age: []int64{0}},
		{Mean: []float64{1}, Rel: []float64{0.1}, Age: []int64{-2}},
	}
	for i, st := range bad {
		err := tr.Restore(st)
		if err == nil {
			t.Errorf("case %d: restore accepted bad state", i)
			continue
		}
		if !errors.Is(err, ErrBadState) {
			t.Errorf("case %d: error %v does not wrap ErrBadState", i, err)
		}
	}
}

func TestUnmarshalRejectsCorruptPayloads(t *testing.T) {
	st := MustNew(2, Config{}).Snapshot()
	blob, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var s State
	if err := s.UnmarshalBinary(blob[:len(blob)-1]); !errors.Is(err, state.ErrCodec) {
		t.Errorf("truncated payload: err %v, want ErrCodec", err)
	}
	if err := s.UnmarshalBinary(append(append([]byte{}, blob...), 0)); !errors.Is(err, state.ErrCodec) {
		t.Errorf("trailing byte: err %v, want ErrCodec", err)
	}
	wrong := append([]byte{}, blob...)
	wrong[0] = 99
	if err := s.UnmarshalBinary(wrong); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("wrong version: err %v, want version rejection", err)
	}
	if _, err := (State{Mean: []float64{1}}).MarshalBinary(); err == nil {
		t.Error("mismatched marshal lengths accepted")
	}
}
