package loadtrack

import (
	"bytes"
	"math"
	"testing"
)

// FuzzTrackerCodec drives a tracker through a fuzz-chosen sequence of
// observe/widen updates, then checks the codec invariants: a snapshot
// survives marshal→unmarshal→restore bit-exactly, the canonical
// encoding is a fixed point (re-marshal is byte-identical), and
// arbitrary payloads never panic the decoder.
func FuzzTrackerCodec(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3))
	f.Add([]byte{0xff, 0x00, 0x80}, uint8(1))
	f.Fuzz(func(t *testing.T, script []byte, n uint8) {
		links := int(n%8) + 1
		tr := MustNew(links, Config{Alpha: 0.4, WidenFactor: 1.3})
		values := make([]float64, links)
		relErr := make([]float64, links)
		observed := make([]bool, links)
		for step := 0; step+links <= len(script); step += links {
			for i := 0; i < links; i++ {
				b := script[step+i]
				values[i] = float64(b%100) + 1
				relErr[i] = float64(b%7) / 10
				observed[i] = b%3 != 0
			}
			if err := tr.Observe(values, relErr, observed); err != nil {
				t.Fatalf("Observe on valid inputs: %v", err)
			}
		}
		st := tr.Snapshot()
		blob, err := st.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back State
		if err := back.UnmarshalBinary(blob); err != nil {
			t.Fatalf("unmarshal of own encoding: %v", err)
		}
		blob2, err := back.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatal("encoding is not a fixed point")
		}
		tr2 := MustNew(0, tr.Config())
		if err := tr2.Restore(back); err != nil {
			t.Fatalf("restore: %v", err)
		}
		for i := 0; i < links; i++ {
			if math.Float64bits(tr2.Mean(i)) != math.Float64bits(tr.Mean(i)) ||
				math.Float64bits(tr2.Rel(i)) != math.Float64bits(tr.Rel(i)) ||
				tr2.Age(i) != tr.Age(i) {
				t.Fatalf("link %d state diverged through the codec", i)
			}
		}
		// The raw script interpreted as a payload must never panic; when
		// it decodes, its re-encoding must round-trip too.
		var arb State
		if err := arb.UnmarshalBinary(script); err == nil {
			rb, err := arb.MarshalBinary()
			if err != nil {
				t.Fatalf("re-marshal of decoded payload: %v", err)
			}
			if !bytes.Equal(rb, script) {
				t.Fatal("decoded payload does not re-encode canonically")
			}
		}
	})
}
