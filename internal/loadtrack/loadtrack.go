// Package loadtrack maintains per-link load estimates with
// deterministic confidence intervals, closing the loop the paper leaves
// open: the optimal allocation assumes the loads U_i are known, but in
// production they are themselves estimated from the monitors' own
// sampled observations, drift between intervals, and go stale the
// moment a monitor crashes.
//
// The tracker keeps, per link, an EWMA point estimate and a relative
// standard error. An observed interval tightens the error toward the
// observation's own standard error (the delta-method error of the
// renormalized estimator, sqrt((1-ρ)/X)); an unobserved interval — the
// link's monitor is off, crashed, or held in fault probation — widens
// the interval multiplicatively instead of merely aging it, so a dead
// monitor's estimate admits it knows less every interval, not just that
// it is old. The controller solves against the resulting lower/upper
// envelope (core.SolveRobust) and spends an exploration reserve on the
// widest intervals.
//
// Every update is a pure function of the inputs (no clocks, no global
// randomness), so a tracked run is bit-reproducible and the tracker
// state can join the controller's versioned snapshot codec.
package loadtrack

import (
	"errors"
	"fmt"
	"math"
)

// Config tunes a Tracker. Zero-value fields select the defaults noted
// on each field.
type Config struct {
	// Alpha is the EWMA weight of the newest observation in (0, 1];
	// 1 (the default when 0) trusts each observation outright.
	Alpha float64
	// WidenFactor multiplies a link's relative standard error for every
	// interval it goes unobserved (default 1.25; must be >= 1). 1 turns
	// widening off: staleness then only shows in Age.
	WidenFactor float64
	// BoundSigma is the confidence half-width in units of relative
	// standard error (default 2: a ~95% normal interval).
	BoundSigma float64
	// MinRel floors the relative standard error (default 0.02): the
	// tracker never claims an estimate is exact, because the underlying
	// quantity drifts between observations.
	MinRel float64
	// MaxRel caps the relative standard error (default 4): beyond this
	// the interval says "anything plausible" and growing it further
	// only destabilizes the bounds.
	MaxRel float64
}

// minLowerFrac floors the lower bound at this fraction of the point
// estimate: the optimizer requires strictly positive loads, and a lower
// bound collapsing to zero would let an optimistic solve assign absurd
// sampling rates to a link that merely went unobserved.
const minLowerFrac = 0.05

func (c Config) withDefaults() Config {
	out := c
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if out.Alpha == 0 {
		out.Alpha = 1
	}
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if out.WidenFactor == 0 {
		out.WidenFactor = 1.25
	}
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if out.BoundSigma == 0 {
		out.BoundSigma = 2
	}
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if out.MinRel == 0 {
		out.MinRel = 0.02
	}
	//netsamp:floateq-ok zero is the unset sentinel, never a computed value
	if out.MaxRel == 0 {
		out.MaxRel = 4
	}
	return out
}

func (c Config) validate() error {
	for _, f := range []struct {
		name string
		v    float64
		ok   bool
	}{
		{"Alpha", c.Alpha, c.Alpha > 0 && c.Alpha <= 1},
		{"WidenFactor", c.WidenFactor, c.WidenFactor >= 1 && !math.IsInf(c.WidenFactor, 0)},
		{"BoundSigma", c.BoundSigma, c.BoundSigma > 0 && !math.IsInf(c.BoundSigma, 0)},
		{"MinRel", c.MinRel, c.MinRel > 0 && !math.IsInf(c.MinRel, 0)},
		{"MaxRel", c.MaxRel, c.MaxRel >= c.MinRel && !math.IsInf(c.MaxRel, 0)},
	} {
		if !f.ok {
			return fmt.Errorf("loadtrack: %s = %v out of range", f.name, f.v)
		}
	}
	return nil
}

// Tracker is the per-link confidence state. The zero value is not
// usable; construct with New. A Tracker is not safe for concurrent
// mutation; the controller owns one and updates it once per interval.
type Tracker struct {
	cfg  Config
	mean []float64
	rel  []float64
	age  []int64 // intervals since last observation; -1 = never observed
}

// New returns a tracker for n links (indexed 0..n-1, the caller's
// LinkID space) with every link unobserved.
func New(n int, cfg Config) (*Tracker, error) {
	if n < 0 {
		return nil, fmt.Errorf("loadtrack: %d links, want >= 0", n)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &Tracker{
		cfg:  cfg,
		mean: make([]float64, n),
		rel:  make([]float64, n),
		age:  make([]int64, n),
	}
	for i := range t.age {
		t.age[i] = -1
		t.rel[i] = cfg.MaxRel
	}
	return t, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(n int, cfg Config) *Tracker {
	t, err := New(n, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of tracked links.
//netsamp:noalloc
func (t *Tracker) Len() int { return len(t.mean) }

// Config returns the validated configuration (defaults filled in).
func (t *Tracker) Config() Config { return t.cfg }

// Observe ingests one measurement interval. values[i] is link i's load
// observation; relErr (nil = exact) is its relative standard error;
// observed (nil = all) marks which links actually reported this
// interval. For an observed link the point estimate is EWMA-updated and
// the error combined from the filter's memory and the observation's own
// error; an unobserved link keeps its estimate frozen and widens by
// WidenFactor. A link that has never been observed adopts the supplied
// value as its prior, at MaxRel width — the best available anchor
// (typically the deployment-time load table) rather than an unusable
// zero. An observation with a non-finite relative error (the netflow
// estimator's degenerate no-sample case) counts as unobserved.
func (t *Tracker) Observe(values, relErr []float64, observed []bool) error {
	n := t.Len()
	if len(values) != n {
		return fmt.Errorf("loadtrack: %d values for %d links", len(values), n)
	}
	if relErr != nil && len(relErr) != n {
		return fmt.Errorf("loadtrack: %d relative errors for %d links", len(relErr), n)
	}
	if observed != nil && len(observed) != n {
		return fmt.Errorf("loadtrack: %d observed flags for %d links", len(observed), n)
	}
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("loadtrack: value of link %d is %v, want finite >= 0", i, v)
		}
		if relErr != nil && (math.IsNaN(relErr[i]) || relErr[i] < 0) && (observed == nil || observed[i]) {
			return fmt.Errorf("loadtrack: relative error of link %d is %v, want >= 0 (or +Inf for no information)", i, relErr[i])
		}
	}
	for i := range values {
		obs := observed == nil || observed[i]
		se := 0.0
		if relErr != nil {
			se = relErr[i]
		}
		if obs && math.IsInf(se, 1) {
			obs = false
		}
		if !obs {
			if t.age[i] < 0 {
				// Never observed: adopt the supplied value as the prior.
				t.mean[i] = values[i]
				t.rel[i] = t.cfg.MaxRel
			} else {
				t.rel[i] = math.Min(t.cfg.MaxRel, t.rel[i]*t.cfg.WidenFactor)
				t.age[i]++
			}
			continue
		}
		v := values[i]
		if t.age[i] < 0 {
			t.mean[i] = v
			t.rel[i] = t.clampRel(se)
			t.age[i] = 0
			continue
		}
		a := t.cfg.Alpha
		m := t.mean[i]
		nm := (1-a)*m + a*v
		var r float64
		if nm > 0 {
			// Absolute standard errors combine in quadrature (the filter
			// memory and the fresh observation are independent), then
			// renormalize by the new mean.
			carried := (1 - a) * t.rel[i] * m
			fresh := a * se * v
			r = math.Sqrt(carried*carried+fresh*fresh) / nm
		} else {
			r = t.cfg.MaxRel
		}
		t.mean[i] = nm
		t.rel[i] = t.clampRel(r)
		t.age[i] = 0
	}
	return nil
}

func (t *Tracker) clampRel(r float64) float64 {
	return math.Min(t.cfg.MaxRel, math.Max(t.cfg.MinRel, r))
}

// Mean returns link i's point estimate.
func (t *Tracker) Mean(i int) float64 { return t.mean[i] }

// Rel returns link i's relative standard error.
func (t *Tracker) Rel(i int) float64 { return t.rel[i] }

// Age returns the intervals since link i was last observed (-1 = never).
func (t *Tracker) Age(i int) int { return int(t.age[i]) }

// Bounds returns link i's confidence envelope [lo, hi]: the point
// estimate widened by BoundSigma relative standard errors, with the
// lower edge floored at a small positive fraction of the estimate so a
// robust solve always sees usable loads.
//netsamp:noalloc
func (t *Tracker) Bounds(i int) (lo, hi float64) {
	m := t.mean[i]
	w := t.cfg.BoundSigma * t.rel[i]
	lo = m * math.Max(minLowerFrac, 1-w)
	hi = m * (1 + w)
	return lo, hi
}

// MeansInto fills dst (length Len) with the point estimates.
//netsamp:noalloc
func (t *Tracker) MeansInto(dst []float64) {
	if len(dst) != t.Len() {
		panic("loadtrack: MeansInto destination length mismatch")
	}
	copy(dst, t.mean)
}

// BoundsInto fills lo and hi (length Len) with the per-link envelope.
//netsamp:noalloc
func (t *Tracker) BoundsInto(lo, hi []float64) {
	if len(lo) != t.Len() || len(hi) != t.Len() {
		panic("loadtrack: BoundsInto destination length mismatch")
	}
	for i := range lo {
		lo[i], hi[i] = t.Bounds(i)
	}
}

// ErrBadState reports tracker state that fails semantic validation
// (mismatched lengths, non-finite estimates). Restore failures wrap it.
var ErrBadState = errors.New("loadtrack: invalid tracker state")

// Snapshot captures the tracker state (deep copies).
func (t *Tracker) Snapshot() State {
	return State{
		Mean: append([]float64{}, t.mean...),
		Rel:  append([]float64{}, t.rel...),
		Age:  append([]int64{}, t.age...),
	}
}

// Restore replaces the tracker contents with st (deep copies) after
// validating it; the tracker is resized to st's length. The
// configuration is NOT part of the state — it belongs to the owning
// controller's options, exactly like the EWMA coefficient.
func (t *Tracker) Restore(st State) error {
	if len(st.Rel) != len(st.Mean) || len(st.Age) != len(st.Mean) {
		return fmt.Errorf("%w: %d means, %d rels, %d ages", ErrBadState, len(st.Mean), len(st.Rel), len(st.Age))
	}
	for i, m := range st.Mean {
		if math.IsNaN(m) || math.IsInf(m, 0) || m < 0 {
			return fmt.Errorf("%w: mean of link %d is %v, want finite >= 0", ErrBadState, i, m)
		}
		if r := st.Rel[i]; math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return fmt.Errorf("%w: relative error of link %d is %v, want finite >= 0", ErrBadState, i, r)
		}
		if st.Age[i] < -1 {
			return fmt.Errorf("%w: age of link %d is %d, want >= -1", ErrBadState, i, st.Age[i])
		}
	}
	t.mean = append(t.mean[:0:0], st.Mean...)
	t.rel = append(t.rel[:0:0], st.Rel...)
	t.age = append(t.age[:0:0], st.Age...)
	return nil
}
