package loadtrack

import (
	"fmt"

	"netsamp/internal/state"
)

// State is the tracker's restorable memory: per-link point estimates,
// relative standard errors and observation ages. It rides inside the
// controller's versioned snapshot (control state v3), so a recovered
// run resumes with exactly the confidence intervals it crashed with —
// a restore that silently reset the widths would let a freshly revived
// controller trust estimates its predecessor had already written off.
type State struct {
	Mean []float64
	Rel  []float64
	Age  []int64
}

// trackerStateVersion stamps the State binary encoding.
const trackerStateVersion = 1

// MarshalBinary encodes the state deterministically (one shared length
// prefix, floats as IEEE-754 bits). The three arrays must have equal
// lengths; Snapshot always produces such a state.
func (s State) MarshalBinary() ([]byte, error) {
	if len(s.Rel) != len(s.Mean) || len(s.Age) != len(s.Mean) {
		return nil, fmt.Errorf("loadtrack: marshal: %d means, %d rels, %d ages", len(s.Mean), len(s.Rel), len(s.Age))
	}
	var e state.Encoder
	e.U16(trackerStateVersion)
	e.U32(uint32(len(s.Mean)))
	for _, v := range s.Mean {
		e.F64(v)
	}
	for _, v := range s.Rel {
		e.F64(v)
	}
	for _, v := range s.Age {
		e.I64(v)
	}
	return e.Data(), nil
}

// UnmarshalBinary decodes a state produced by MarshalBinary, rejecting
// unknown versions and malformed payloads.
func (s *State) UnmarshalBinary(b []byte) error {
	d := state.NewDecoder(b)
	if v := d.U16(); d.Err() == nil && v != trackerStateVersion {
		return fmt.Errorf("loadtrack: unknown state version %d", v)
	}
	*s = State{}
	n := d.Len(24)
	s.Mean = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		s.Mean = append(s.Mean, d.F64())
	}
	s.Rel = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		s.Rel = append(s.Rel, d.F64())
	}
	s.Age = make([]int64, 0, n)
	for i := 0; i < n; i++ {
		s.Age = append(s.Age, d.I64())
	}
	return d.Finish()
}
