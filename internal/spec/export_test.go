package spec

import (
	"math"
	"strings"
	"testing"

	"netsamp/internal/core"
	"netsamp/internal/eval"
	"netsamp/internal/geant"
)

// TestExportRoundTripGEANT is the strongest round-trip check: exporting
// the built-in GEANT scenario, re-parsing it and solving must reproduce
// the native Table I plan exactly.
func TestExportRoundTripGEANT(t *testing.T) {
	s := geant.MustBuild(1)
	var b strings.Builder
	err := Export(&b, s.Graph, s.Demands, s.Pairs, s.Rates, 100000, 300)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n--- first lines ---\n%s",
			err, head(b.String(), 12))
	}
	res, err := parsed.Solve(core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solution.Stats.Converged {
		t.Fatal("round-trip solve did not converge")
	}
	// Native solve for comparison.
	native, err := eval.Table1(s, 100000, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Same number of active monitors, same per-pair utilities.
	activeRT := 0
	for _, p := range res.Rates {
		if p > 0 {
			activeRT++
		}
	}
	if activeRT != len(native.Links) {
		t.Fatalf("round trip activated %d monitors, native %d", activeRT, len(native.Links))
	}
	if len(res.Solution.Utilities) != len(native.Rows) {
		t.Fatalf("pair count mismatch")
	}
	// Pair order matches (export preserves order). Tolerance reflects
	// float summation order: the exported file lists demands in a
	// different order, so link loads differ in the last ulp.
	for k := range native.Rows {
		if math.Abs(res.Solution.Utilities[k]-native.Rows[k].Utility) > 1e-6 {
			t.Fatalf("pair %d utility: round trip %v, native %v",
				k, res.Solution.Utilities[k], native.Rows[k].Utility)
		}
	}
}

func TestExportRoundTripAbilene(t *testing.T) {
	s := geant.MustBuildAbilene(1)
	var b strings.Builder
	if err := Export(&b, s.Graph, s.Demands, s.Pairs, s.Rates, 60000, 300); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := parsed.Solve(core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solution.Stats.Converged {
		t.Fatal("abilene round trip did not converge")
	}
}

func TestExportValidation(t *testing.T) {
	s := geant.MustBuild(1)
	var b strings.Builder
	if err := Export(&b, s.Graph, s.Demands, s.Pairs, s.Rates[:1], 1, 300); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func head(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
