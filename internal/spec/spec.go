// Package spec parses the netsamp scenario file format: a plain-text
// description of a topology, its traffic and a measurement task, so
// operators can run the optimizer on their own networks with
// `netsamp optimize -f network.netsamp`.
//
// Format (one directive per line; '#' starts a comment):
//
//	node    <name>
//	link    <a> <b> <capacity> <weight>     # duplex circuit
//	access  <a> <b> <capacity> <weight>     # duplex, not monitorable
//	demand  <src> <dst> <pkt/s>             # background traffic
//	pair    <src> <dst> <pkt/s>             # OD pair of the task
//	theta   <packets-per-interval>
//	interval <seconds>                      # default 300
//	maxrate <a> <b> <alpha>                 # per-direction cap
//	utility sre | detection <pkts> | log <c>  # default: sre
//
// Capacities are bits per second, or one of oc3, oc12, oc48, oc192.
// Demands and pairs are routed over shortest paths; a pair's own rate
// contributes to link loads like any demand.
package spec

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"netsamp/internal/core"
	"netsamp/internal/plan"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
	"netsamp/internal/traffic"
)

// UtilityKind selects the utility family applied to every pair.
type UtilityKind int

// Utility families supported by the file format.
const (
	UtilitySRE UtilityKind = iota
	UtilityDetection
	UtilityLog
)

// Scenario is a parsed spec file.
type Scenario struct {
	Graph    *topology.Graph
	Pairs    []routing.ODPair
	Rates    []float64 // pkt/s per pair
	Demands  *traffic.Matrix
	Theta    float64
	Interval float64
	MaxRates map[topology.LinkID]float64
	Utility  UtilityKind
	// UtilityParam is the detection footprint (packets) or log scale.
	UtilityParam float64
}

// Parse reads a scenario file.
func Parse(r io.Reader) (*Scenario, error) {
	s := &Scenario{
		Graph:    topology.New(),
		Demands:  &traffic.Matrix{},
		Interval: traffic.DefaultInterval,
		MaxRates: map[topology.LinkID]float64{},
		Utility:  UtilitySRE,
	}
	type pendingRate struct {
		a, b  string
		alpha float64
		line  int
	}
	var pendingRates []pendingRate
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("spec: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "node":
			if len(fields) != 2 {
				return nil, fail("node wants 1 argument")
			}
			if _, ok := s.Graph.NodeByName(fields[1]); ok {
				return nil, fail("duplicate node %q", fields[1])
			}
			s.Graph.AddNode(fields[1])
		case "link", "access":
			if len(fields) != 5 {
				return nil, fail("%s wants <a> <b> <capacity> <weight>", fields[0])
			}
			a, err := s.node(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			b, err := s.node(fields[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			if a == b {
				return nil, fail("%s endpoints are identical", fields[0])
			}
			capBps, err := parseCapacity(fields[3])
			if err != nil {
				return nil, fail("%v", err)
			}
			weight, err := strconv.Atoi(fields[4])
			if err != nil || weight <= 0 {
				return nil, fail("bad weight %q", fields[4])
			}
			fwd, rev := s.Graph.AddDuplex(a, b, capBps, weight)
			if fields[0] == "access" {
				s.Graph.MarkAccess(fwd)
				s.Graph.MarkAccess(rev)
			}
		case "demand", "pair":
			if len(fields) != 4 {
				return nil, fail("%s wants <src> <dst> <pkt/s>", fields[0])
			}
			src, err := s.node(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			dst, err := s.node(fields[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			if src == dst {
				return nil, fail("%s endpoints are identical", fields[0])
			}
			rate, err := strconv.ParseFloat(fields[3], 64)
			if err != nil || rate <= 0 {
				return nil, fail("bad rate %q", fields[3])
			}
			pr := routing.ODPair{Name: fields[1] + "->" + fields[2], Src: src, Dst: dst}
			s.Demands.Demands = append(s.Demands.Demands, traffic.Demand{Pair: pr, Rate: rate})
			if fields[0] == "pair" {
				s.Pairs = append(s.Pairs, pr)
				s.Rates = append(s.Rates, rate)
			}
		case "theta":
			if len(fields) != 2 {
				return nil, fail("theta wants 1 argument")
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || v <= 0 {
				return nil, fail("bad theta %q", fields[1])
			}
			s.Theta = v
		case "interval":
			if len(fields) != 2 {
				return nil, fail("interval wants 1 argument")
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || v <= 0 {
				return nil, fail("bad interval %q", fields[1])
			}
			s.Interval = v
		case "maxrate":
			if len(fields) != 4 {
				return nil, fail("maxrate wants <a> <b> <alpha>")
			}
			alpha, err := strconv.ParseFloat(fields[3], 64)
			if err != nil || alpha <= 0 || alpha > 1 {
				return nil, fail("bad alpha %q", fields[3])
			}
			// Links may be declared after maxrate; resolve at the end.
			pendingRates = append(pendingRates, pendingRate{fields[1], fields[2], alpha, lineNo})
		case "utility":
			if len(fields) < 2 {
				return nil, fail("utility wants a family")
			}
			switch fields[1] {
			case "sre":
				s.Utility = UtilitySRE
			case "detection":
				if len(fields) != 3 {
					return nil, fail("utility detection wants <pkts>")
				}
				v, err := strconv.ParseFloat(fields[2], 64)
				if err != nil || v < 2 {
					return nil, fail("bad detection footprint %q", fields[2])
				}
				s.Utility, s.UtilityParam = UtilityDetection, v
			case "log":
				if len(fields) != 3 {
					return nil, fail("utility log wants <c>")
				}
				v, err := strconv.ParseFloat(fields[2], 64)
				if err != nil || v <= 0 {
					return nil, fail("bad log scale %q", fields[2])
				}
				s.Utility, s.UtilityParam = UtilityLog, v
			default:
				return nil, fail("unknown utility %q", fields[1])
			}
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	for _, pr := range pendingRates {
		a, err := s.node(pr.a)
		if err != nil {
			return nil, fmt.Errorf("spec: line %d: %v", pr.line, err)
		}
		b, err := s.node(pr.b)
		if err != nil {
			return nil, fmt.Errorf("spec: line %d: %v", pr.line, err)
		}
		lid, ok := s.Graph.FindLink(a, b)
		if !ok {
			return nil, fmt.Errorf("spec: line %d: maxrate on missing link %s->%s", pr.line, pr.a, pr.b)
		}
		s.MaxRates[lid] = pr.alpha
	}
	if s.Graph.NumNodes() == 0 {
		return nil, fmt.Errorf("spec: no nodes")
	}
	if len(s.Pairs) == 0 {
		return nil, fmt.Errorf("spec: no measurement pairs")
	}
	if s.Theta <= 0 {
		return nil, fmt.Errorf("spec: theta not set")
	}
	if err := s.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return s, nil
}

func (s *Scenario) node(name string) (topology.NodeID, error) {
	id, ok := s.Graph.NodeByName(name)
	if !ok {
		return 0, fmt.Errorf("unknown node %q", name)
	}
	return id, nil
}

func parseCapacity(s string) (float64, error) {
	switch strings.ToLower(s) {
	case "oc3":
		return topology.OC3, nil
	case "oc12":
		return topology.OC12, nil
	case "oc48":
		return topology.OC48, nil
	case "oc192":
		return topology.OC192, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad capacity %q", s)
	}
	return v, nil
}

// Result is the solved plan for a scenario.
type Result struct {
	Scenario   *Scenario
	Table      *routing.Table
	Matrix     *routing.Matrix
	Loads      []float64
	Candidates []topology.LinkID
	Solution   *core.Solution
	Rates      map[topology.LinkID]float64
}

// Solve routes the scenario, builds the problem and runs the optimizer
// under the given effective-rate model (nil = core.ModelLinear).
func (s *Scenario) Solve(opt core.Options, model core.RateModel) (*Result, error) {
	tbl := routing.ComputeTable(s.Graph)
	matrix, err := routing.BuildMatrix(tbl, s.Pairs)
	if err != nil {
		return nil, err
	}
	loads, err := traffic.LinkLoads(s.Graph, tbl, s.Demands)
	if err != nil {
		return nil, err
	}
	var candidates []topology.LinkID
	for _, lid := range matrix.LinkSet() {
		if !s.Graph.Link(lid).Access {
			candidates = append(candidates, lid)
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("spec: no monitorable links on the pairs' paths")
	}
	inv := make([]float64, len(s.Pairs))
	for k := range s.Pairs {
		inv[k] = 1 / (s.Rates[k] * s.Interval)
	}
	prob, _, err := plan.Build(plan.Input{
		Matrix:       matrix,
		Loads:        loads,
		Candidates:   candidates,
		InvMeanSizes: inv,
		Budget:       core.BudgetPerInterval(s.Theta, s.Interval),
		MaxRates:     s.MaxRates,
		Model:        model,
	})
	if err != nil {
		return nil, err
	}
	// Swap in the requested utility family (plan.Build defaults to SRE).
	switch s.Utility {
	case UtilityDetection:
		u, err := core.NewDetection(int(s.UtilityParam))
		if err != nil {
			return nil, err
		}
		for k := range prob.Pairs {
			prob.Pairs[k].Utility = u
		}
	case UtilityLog:
		u, err := core.NewLogCoverage(s.UtilityParam)
		if err != nil {
			return nil, err
		}
		for k := range prob.Pairs {
			prob.Pairs[k].Utility = u
		}
	}
	sol, err := core.Solve(prob, opt)
	if err != nil {
		return nil, err
	}
	return &Result{
		Scenario:   s,
		Table:      tbl,
		Matrix:     matrix,
		Loads:      loads,
		Candidates: candidates,
		Solution:   sol,
		Rates:      plan.RatesByLink(sol, candidates),
	}, nil
}
