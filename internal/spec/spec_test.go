package spec

import (
	"math"
	"strings"
	"testing"

	"netsamp/internal/core"
)

const goodSpec = `
# toy backbone
node A
node B
node C
node CPE
link A B oc48 10
link B C oc12 10
access CPE A oc12 5
demand A B 30000
demand B A 25000
pair CPE C 500      # the task: track CPE->C
pair CPE B 2000
theta 5000
interval 300
maxrate B C 0.5
`

func TestParseGood(t *testing.T) {
	s, err := Parse(strings.NewReader(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Graph.NumNodes() != 4 {
		t.Fatalf("nodes = %d", s.Graph.NumNodes())
	}
	if s.Graph.NumLinks() != 6 {
		t.Fatalf("links = %d", s.Graph.NumLinks())
	}
	if len(s.Pairs) != 2 || s.Rates[0] != 500 || s.Rates[1] != 2000 {
		t.Fatalf("pairs = %v rates = %v", s.Pairs, s.Rates)
	}
	// demands include the pairs themselves (4 total).
	if len(s.Demands.Demands) != 4 {
		t.Fatalf("demands = %d", len(s.Demands.Demands))
	}
	if s.Theta != 5000 || s.Interval != 300 {
		t.Fatalf("theta/interval = %v/%v", s.Theta, s.Interval)
	}
	if len(s.MaxRates) != 1 {
		t.Fatalf("maxrates = %v", s.MaxRates)
	}
	// Access link flagged.
	cpe, _ := s.Graph.NodeByName("CPE")
	a, _ := s.Graph.NodeByName("A")
	lid, ok := s.Graph.FindLink(cpe, a)
	if !ok || !s.Graph.Link(lid).Access {
		t.Fatal("access link not flagged")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"node",                           // missing name
		"node A\nnode A",                 // duplicate
		"blah A B",                       // unknown directive
		"node A\nlink A B oc48 10",       // unknown node B
		"node A\nnode B\nlink A B x 10",  // bad capacity
		"node A\nnode B\nlink A B oc3 0", // bad weight
		"node A\nnode B\nlink A B oc3 1\npair A B -5\ntheta 1",                 // bad rate
		"node A\nnode B\nlink A B oc3 1\npair A B 5",                           // no theta
		"node A\nnode B\nlink A B oc3 1\ndemand A B 5\ntheta 9",                // no pairs
		"node A\nnode B\nlink A B oc3 1\npair A B 5\ntheta 9\nmaxrate A C 0.5", // maxrate unknown node
		"node A\nnode B\nlink A B oc3 1\npair A B 5\ntheta 9\nmaxrate B A 2",   // bad alpha... parses? alpha>1 rejected
		"node A\nnode B\nlink A B oc3 1\npair A B 5\ntheta 9\nutility bogus",
		"node A\nnode B\nlink A B oc3 1\npair A B 5\ntheta 9\nutility detection 1",
		"node A\nnode B\nlink A B oc3 1\npair A B 5\ntheta 9\nutility log 0",
		"node A\nnode B\nnode I\nlink A B oc3 1\npair A B 5\ntheta 9", // disconnected I
	}
	for i, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted:\n%s", i, c)
		}
	}
}

func TestParseCapacityNames(t *testing.T) {
	for _, c := range []string{"oc3", "OC12", "oc48", "oc192", "1000000"} {
		if _, err := parseCapacity(c); err != nil {
			t.Errorf("parseCapacity(%q): %v", c, err)
		}
	}
}

func TestSolveSpec(t *testing.T) {
	s, err := Parse(strings.NewReader(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solution.Stats.Converged {
		t.Fatal("spec solve did not converge")
	}
	// Access link must not be a candidate.
	for _, lid := range res.Candidates {
		if res.Scenario.Graph.Link(lid).Access {
			t.Fatal("access link among candidates")
		}
	}
	// Budget exhausted.
	total := 0.0
	for lid, p := range res.Rates {
		total += p * res.Loads[lid]
	}
	want := s.Theta / s.Interval
	if math.Abs(total-want) > 1e-6*want {
		t.Fatalf("sampled rate %v, want %v", total, want)
	}
	// maxrate respected on B->C.
	b, _ := s.Graph.NodeByName("B")
	cn, _ := s.Graph.NodeByName("C")
	bc, _ := s.Graph.FindLink(b, cn)
	if res.Rates[bc] > 0.5+1e-9 {
		t.Fatalf("maxrate violated: %v", res.Rates[bc])
	}
}

func TestSolveSpecUtilities(t *testing.T) {
	base := `
node A
node B
link A B oc48 10
pair A B 1000
theta 3000
`
	for _, u := range []string{"utility sre", "utility detection 500", "utility log 0.01"} {
		s, err := Parse(strings.NewReader(base + u + "\n"))
		if err != nil {
			t.Fatalf("%s: %v", u, err)
		}
		res, err := s.Solve(core.Options{}, nil)
		if err != nil {
			t.Fatalf("%s: %v", u, err)
		}
		if !res.Solution.Stats.Converged {
			t.Fatalf("%s: did not converge", u)
		}
		if res.Solution.Rho[0] <= 0 {
			t.Fatalf("%s: pair unmonitored", u)
		}
	}
}

func TestSolveSpecExactModel(t *testing.T) {
	s, err := Parse(strings.NewReader(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(core.Options{}, core.ModelIndependentExact)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Rho[0] <= 0 {
		t.Fatal("exact-model solve produced no monitoring")
	}
}

func TestParseSelfLoopRejected(t *testing.T) {
	// Regression for a fuzz finding: self-loop links panicked the parser.
	bad := []string{
		"node B\nlink B B oc12 1",
		"node B\naccess B B oc12 1",
		"node A\nnode B\nlink A B oc3 1\npair A A 5\ntheta 9",
		"node A\nnode B\nlink A B oc3 1\ndemand B B 5\npair A B 5\ntheta 9",
	}
	for i, c := range bad {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
