package spec

import (
	"strings"
	"testing"
)

// FuzzParse: the scenario parser must be total — no panics on arbitrary
// input, and any accepted scenario must satisfy its invariants.
func FuzzParse(f *testing.F) {
	f.Add(goodSpec)
	f.Add("node A\n")
	f.Add("link A B oc48 10")
	f.Add("# only a comment\n\n")
	f.Add("utility detection x")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		if s.Graph.NumNodes() == 0 || len(s.Pairs) == 0 || s.Theta <= 0 {
			t.Fatal("accepted scenario violates invariants")
		}
	})
}
