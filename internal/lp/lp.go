// Package lp implements a dense two-phase primal simplex solver for
// small linear programs. Go has no mainstream LP library and this
// repository is stdlib-only, so the solver is written here; the
// instances it faces (one variable per candidate monitor link, one
// constraint per OD pair plus bounds) are tiny, making a dense tableau
// with Bland's anti-cycling rule entirely adequate.
//
// The driving application is the certified max-min solver
// (core.SolveMaxMinExact): for a candidate worst-pair utility target the
// cheapest rate vector reaching it is a linear program; bisection on the
// target then pins the exact max-min optimum.
package lp

import (
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int8

// Constraint relations.
const (
	LE Rel = iota // Σ a_j x_j ≤ b
	GE            // Σ a_j x_j ≥ b
	EQ            // Σ a_j x_j = b
)

// Status reports the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

const eps = 1e-9

// Solve minimizes c·x subject to A x (rel) b and x ≥ 0, using the
// two-phase primal simplex method with Bland's rule. It returns the
// optimal x and objective when Status == Optimal.
func Solve(c []float64, a [][]float64, rel []Rel, b []float64) ([]float64, float64, Status, error) {
	m, n := len(a), len(c)
	if len(rel) != m || len(b) != m {
		return nil, 0, Infeasible, fmt.Errorf("lp: %d rows, %d relations, %d rhs", m, len(rel), len(b))
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, 0, Infeasible, fmt.Errorf("lp: row %d has %d coefficients for %d variables", i, len(a[i]), n)
		}
	}
	// Normalize to b ≥ 0 by flipping rows.
	rows := make([][]float64, m)
	relN := make([]Rel, m)
	rhs := make([]float64, m)
	for i := range a {
		rows[i] = append([]float64(nil), a[i]...)
		relN[i] = rel[i]
		rhs[i] = b[i]
		if rhs[i] < 0 {
			for j := range rows[i] {
				rows[i][j] = -rows[i][j]
			}
			rhs[i] = -rhs[i]
			switch relN[i] {
			case LE:
				relN[i] = GE
			case GE:
				relN[i] = LE
			}
		}
	}
	// Column layout: n structural | slacks/surpluses | artificials.
	nSlack := 0
	for _, r := range relN {
		if r != EQ {
			nSlack++
		}
	}
	nArt := 0
	for _, r := range relN {
		if r != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt
	// Tableau: m rows × (total+1), last column is the RHS.
	t := make([][]float64, m)
	basis := make([]int, m)
	slackCol := n
	artCol := n + nSlack
	artOf := make([]int, 0, nArt)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, total+1)
		copy(t[i], rows[i])
		t[i][total] = rhs[i]
		switch relN[i] {
		case LE:
			t[i][slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			t[i][slackCol] = -1
			slackCol++
			t[i][artCol] = 1
			basis[i] = artCol
			artOf = append(artOf, artCol)
			artCol++
		case EQ:
			t[i][artCol] = 1
			basis[i] = artCol
			artOf = append(artOf, artCol)
			artCol++
		}
	}

	pivot := func(row, col int) {
		p := t[row][col]
		for j := range t[row] {
			t[row][j] /= p
		}
		for i := range t {
			if i == row || t[i][col] == 0 {
				continue
			}
			f := t[i][col]
			for j := range t[i] {
				t[i][j] -= f * t[row][j]
			}
		}
		basis[row] = col
	}

	// simplex runs Bland's-rule iterations minimizing obj (a cost row
	// over the current tableau). allowed bounds the columns considered.
	simplex := func(cost []float64, allowed int) Status {
		// Reduced cost row z_j - c_j maintained implicitly: compute from
		// scratch each iteration (instances are tiny; clarity wins).
		for iter := 0; iter < 10000; iter++ {
			// cB = cost of basic variables.
			enter := -1
			for j := 0; j < allowed; j++ {
				// reduced cost r_j = c_j - Σ_i cB_i * t[i][j]
				r := cost[j]
				for i := 0; i < m; i++ {
					if cb := cost[basis[i]]; cb != 0 {
						r -= cb * t[i][j]
					}
				}
				if r < -eps {
					enter = j // Bland: first improving column
					break
				}
			}
			if enter < 0 {
				return Optimal
			}
			leave := -1
			best := math.Inf(1)
			for i := 0; i < m; i++ {
				if t[i][enter] > eps {
					ratio := t[i][total] / t[i][enter]
					if ratio < best-eps || (math.Abs(ratio-best) <= eps && (leave < 0 || basis[i] < basis[leave])) {
						best = ratio
						leave = i
					}
				}
			}
			if leave < 0 {
				return Unbounded
			}
			pivot(leave, enter)
		}
		return Unbounded // cycling guard; unreachable with Bland's rule
	}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		cost1 := make([]float64, total)
		for _, j := range artOf {
			cost1[j] = 1
		}
		if st := simplex(cost1, total); st != Optimal {
			return nil, 0, Infeasible, nil
		}
		sum := 0.0
		for i := 0; i < m; i++ {
			for _, j := range artOf {
				if basis[i] == j {
					sum += t[i][total]
				}
			}
		}
		if sum > 1e-7 {
			return nil, 0, Infeasible, nil
		}
		// Drive any artificial still in the basis out (degenerate rows).
		for i := 0; i < m; i++ {
			isArt := basis[i] >= n+nSlack
			if !isArt {
				continue
			}
			pivoted := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(t[i][j]) > eps {
					pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Row is all zeros over real columns: redundant
				// constraint; leave the artificial at value 0.
				continue
			}
		}
	}

	// Phase 2: minimize the real objective over real columns only.
	cost2 := make([]float64, total)
	copy(cost2, c)
	if st := simplex(cost2, n+nSlack); st != Optimal {
		return nil, 0, Unbounded, nil
	}
	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = t[i][total]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += c[j] * x[j]
	}
	return x, obj, Optimal, nil
}
