package lp

import (
	"math"
	"testing"

	"netsamp/internal/rng"
)

func solveOK(t *testing.T, c []float64, a [][]float64, rel []Rel, b []float64) ([]float64, float64) {
	t.Helper()
	x, obj, st, err := Solve(c, a, rel, b)
	if err != nil {
		t.Fatal(err)
	}
	if st != Optimal {
		t.Fatalf("status = %v", st)
	}
	return x, obj
}

func TestSolveKnownLE(t *testing.T) {
	// maximize 3x+5y s.t. x≤4, 2y≤12, 3x+2y≤18 (classic Dantzig example)
	// → minimize -3x-5y; optimum x=2, y=6, obj=-36.
	x, obj := solveOK(t,
		[]float64{-3, -5},
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]Rel{LE, LE, LE},
		[]float64{4, 12, 18},
	)
	if math.Abs(obj+36) > 1e-9 || math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-6) > 1e-9 {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

func TestSolveKnownGE(t *testing.T) {
	// minimize 2x+3y s.t. x+y ≥ 10, x ≥ 2 → x=10-y... cheapest: put all
	// weight on x (cost 2): x=10, y=0, obj=20.
	x, obj := solveOK(t,
		[]float64{2, 3},
		[][]float64{{1, 1}, {1, 0}},
		[]Rel{GE, GE},
		[]float64{10, 2},
	)
	if math.Abs(obj-20) > 1e-9 || math.Abs(x[0]-10) > 1e-9 {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

func TestSolveEquality(t *testing.T) {
	// minimize x+2y s.t. x+y = 5, y ≥ 1 → x=4, y=1, obj=6.
	x, obj := solveOK(t,
		[]float64{1, 2},
		[][]float64{{1, 1}, {0, 1}},
		[]Rel{EQ, GE},
		[]float64{5, 1},
	)
	if math.Abs(obj-6) > 1e-9 || math.Abs(x[0]-4) > 1e-9 || math.Abs(x[1]-1) > 1e-9 {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// minimize x s.t. -x ≤ -3 (i.e. x ≥ 3) → x=3.
	x, obj := solveOK(t,
		[]float64{1},
		[][]float64{{-1}},
		[]Rel{LE},
		[]float64{-3},
	)
	if math.Abs(x[0]-3) > 1e-9 || math.Abs(obj-3) > 1e-9 {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 2.
	_, _, st, err := Solve(
		[]float64{1},
		[][]float64{{1}, {1}},
		[]Rel{LE, GE},
		[]float64{1, 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if st != Infeasible {
		t.Fatalf("status = %v", st)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// minimize -x s.t. x ≥ 0 only.
	_, _, st, err := Solve(
		[]float64{-1},
		[][]float64{{1}},
		[]Rel{GE},
		[]float64{0},
	)
	if err != nil {
		t.Fatal(err)
	}
	if st != Unbounded {
		t.Fatalf("status = %v", st)
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	if _, _, _, err := Solve([]float64{1}, [][]float64{{1, 2}}, []Rel{LE}, []float64{1}); err == nil {
		t.Fatal("bad row width accepted")
	}
	if _, _, _, err := Solve([]float64{1}, [][]float64{{1}}, []Rel{LE}, []float64{1, 2}); err == nil {
		t.Fatal("bad rhs length accepted")
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Redundant constraints (equal rows) must not break phase 1.
	x, obj := solveOK(t,
		[]float64{1, 1},
		[][]float64{{1, 1}, {1, 1}, {1, 0}},
		[]Rel{GE, GE, GE},
		[]float64{4, 4, 1},
	)
	if math.Abs(obj-4) > 1e-9 || x[0] < 1-1e-9 {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("status strings wrong")
	}
	if Status(9).String() != "unknown" {
		t.Fatal("unknown status string wrong")
	}
}

// TestSolveAgainstVertexEnumeration cross-checks the simplex on random
// 2-variable LPs against brute-force enumeration of constraint-
// intersection vertices.
func TestSolveAgainstVertexEnumeration(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 300; trial++ {
		n := 2
		m := 2 + r.Intn(4)
		c := []float64{1 + 4*r.Float64(), 1 + 4*r.Float64()} // positive costs
		a := make([][]float64, m)
		rel := make([]Rel, m)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			a[i] = []float64{r.Float64() * 2, r.Float64() * 2}
			rel[i] = GE
			b[i] = 0.5 + 2*r.Float64()
			if a[i][0]+a[i][1] < 0.2 {
				a[i][0] += 0.3 // avoid near-empty rows (keeps LP feasible)
			}
		}
		x, obj, st, err := Solve(c, a, rel, b)
		if err != nil {
			t.Fatal(err)
		}
		if st != Optimal {
			// All-GE with positive coefficients is always feasible.
			t.Fatalf("trial %d: status %v", trial, st)
		}
		// Feasibility of the returned point.
		for i := 0; i < m; i++ {
			lhs := a[i][0]*x[0] + a[i][1]*x[1]
			if lhs < b[i]-1e-7 {
				t.Fatalf("trial %d: constraint %d violated: %v < %v", trial, i, lhs, b[i])
			}
		}
		if x[0] < -1e-9 || x[1] < -1e-9 {
			t.Fatalf("trial %d: negative solution %v", trial, x)
		}
		// Brute force: candidate vertices are intersections of all pairs
		// of active constraints (including the axes x_j = 0).
		type line struct{ a0, a1, b float64 }
		var lines []line
		for i := 0; i < m; i++ {
			lines = append(lines, line{a[i][0], a[i][1], b[i]})
		}
		lines = append(lines, line{1, 0, 0}, line{0, 1, 0})
		best := math.Inf(1)
		feasible := func(p0, p1 float64) bool {
			if p0 < -1e-9 || p1 < -1e-9 {
				return false
			}
			for i := 0; i < m; i++ {
				if a[i][0]*p0+a[i][1]*p1 < b[i]-1e-7 {
					return false
				}
			}
			return true
		}
		for i := 0; i < len(lines); i++ {
			for j := i + 1; j < len(lines); j++ {
				det := lines[i].a0*lines[j].a1 - lines[i].a1*lines[j].a0
				if math.Abs(det) < 1e-12 {
					continue
				}
				p0 := (lines[i].b*lines[j].a1 - lines[i].a1*lines[j].b) / det
				p1 := (lines[i].a0*lines[j].b - lines[i].b*lines[j].a0) / det
				if feasible(p0, p1) {
					v := c[0]*p0 + c[1]*p1
					if v < best {
						best = v
					}
				}
			}
		}
		if math.Abs(obj-best) > 1e-6*(1+math.Abs(best)) {
			t.Fatalf("trial %d: simplex %v, vertex enumeration %v", trial, obj, best)
		}
		_ = n
	}
}
