package core

import (
	"math"
	"testing"
)

func TestModelByName(t *testing.T) {
	cases := map[string]RateModel{
		"linear":            ModelLinear,
		"independent-exact": ModelIndependentExact,
		"exact":             ModelIndependentExact, // legacy alias
		"coordinated":       ModelCoordinated,
	}
	for name, want := range cases {
		got, err := ModelByName(name)
		if err != nil || got != want {
			t.Errorf("ModelByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ModelByName("quantum"); err == nil {
		t.Error("unknown model accepted")
	}
	if ModelName(nil) != "linear" {
		t.Errorf("ModelName(nil) = %q", ModelName(nil))
	}
	if ModelName(ModelCoordinated) != "coordinated" {
		t.Errorf("ModelName(coordinated) = %q", ModelName(ModelCoordinated))
	}
}

func TestModelProperties(t *testing.T) {
	if !ModelLinear.Additive() || !ModelCoordinated.Additive() || ModelIndependentExact.Additive() {
		t.Fatal("Additive flags wrong")
	}
	if !ModelLinear.SupportsFracs() || !ModelCoordinated.SupportsFracs() || ModelIndependentExact.SupportsFracs() {
		t.Fatal("SupportsFracs flags wrong")
	}
	// Deployed: identity for linear/exact, clamp at 1 for coordinated.
	for _, rho := range []float64{0, 0.3, 1, 1.7} {
		if ModelLinear.Deployed(rho) != rho || ModelIndependentExact.Deployed(rho) != rho {
			t.Fatalf("Deployed(%v) not identity", rho)
		}
	}
	if ModelCoordinated.Deployed(0.4) != 0.4 || ModelCoordinated.Deployed(1.7) != 1 {
		t.Fatal("coordinated Deployed clamp wrong")
	}
}

// TestCoordinatedSolvesBitwiseAsLinear: the coordinated model's solver-
// side surrogate is the same additive form as the linear model, so the
// whole optimization trajectory — rates, rho, objective, iteration
// count — must be bitwise identical. Only deployment semantics differ.
func TestCoordinatedSolvesBitwiseAsLinear(t *testing.T) {
	mk := func(m RateModel) *Problem {
		return &Problem{
			Loads:  []float64{30000, 8000, 2000, 500},
			Budget: 60,
			Model:  m,
			Pairs: []Pair{
				{Name: "a", Links: []int{0, 1}, Utility: MustSRE(0.002)},
				{Name: "b", Links: []int{1, 2}, Utility: MustSRE(0.001)},
				{Name: "c", Links: []int{3}, Utility: MustSRE(0.003)},
			},
		}
	}
	lin, err := Solve(mk(ModelLinear), Options{})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := Solve(mk(ModelCoordinated), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lin.Objective != coord.Objective || lin.Lambda != coord.Lambda {
		t.Fatalf("objective/lambda differ: (%v, %v) vs (%v, %v)",
			lin.Objective, lin.Lambda, coord.Objective, coord.Lambda)
	}
	if lin.Stats.Iterations != coord.Stats.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", lin.Stats.Iterations, coord.Stats.Iterations)
	}
	for i := range lin.Rates {
		if lin.Rates[i] != coord.Rates[i] {
			t.Fatalf("rate %d differs: %v vs %v", i, lin.Rates[i], coord.Rates[i])
		}
	}
	for k := range lin.Rho {
		if lin.Rho[k] != coord.Rho[k] {
			t.Fatalf("rho %d differs: %v vs %v", k, lin.Rho[k], coord.Rho[k])
		}
	}
}

// TestNilModelIsLinear: the zero-value Problem solves under the linear
// model, bitwise equal to requesting it explicitly.
func TestNilModelIsLinear(t *testing.T) {
	mk := func(m RateModel) *Problem {
		return &Problem{
			Loads:  []float64{10000, 3000},
			Budget: 20,
			Model:  m,
			Pairs: []Pair{
				{Name: "a", Links: []int{0, 1}, Utility: MustSRE(0.002)},
				{Name: "b", Links: []int{1}, Utility: MustSRE(0.001)},
			},
		}
	}
	def, err := Solve(mk(nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Solve(mk(ModelLinear), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range def.Rates {
		if def.Rates[i] != lin.Rates[i] {
			t.Fatalf("rate %d differs: %v vs %v", i, def.Rates[i], lin.Rates[i])
		}
	}
}

// TestEffectiveRatesInto: the zero-alloc path must agree exactly with
// EffectiveRates under every model and reject a bad destination.
func TestEffectiveRatesInto(t *testing.T) {
	for _, m := range []RateModel{nil, ModelLinear, ModelIndependentExact, ModelCoordinated} {
		p := &Problem{
			Loads:  []float64{1000, 2000, 500},
			Budget: 5,
			Model:  m,
			Pairs: []Pair{
				{Name: "a", Links: []int{0, 1}, Utility: MustSRE(0.002)},
				{Name: "b", Links: []int{2}, Utility: MustSRE(0.001)},
			},
		}
		rates := []float64{0.4, 0.8, 0.1}
		want := p.EffectiveRates(rates)
		dst := make([]float64, len(p.Pairs))
		p.EffectiveRatesInto(dst, rates)
		for k := range want {
			if dst[k] != want[k] {
				t.Fatalf("model %s pair %d: %v vs %v", ModelName(m), k, dst[k], want[k])
			}
		}
		// The sum for additive models can exceed 1; the product model
		// cannot. Sanity-pin both shapes.
		if m == ModelIndependentExact {
			if want[0] != 1-(1-0.4)*(1-0.8) {
				t.Fatalf("product rho = %v", want[0])
			}
		} else if want[0] != float64(0.4)+float64(0.8) {
			t.Fatalf("additive rho = %v", want[0])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	p := &Problem{Loads: []float64{1}, Budget: 1, Pairs: []Pair{{Name: "a", Links: []int{0}, Utility: MustSRE(0.01)}}}
	p.EffectiveRatesInto(make([]float64, 2), []float64{0.1})
}

// TestExactModelSolverAgreesWithProblemSurface: the CSR hooks the
// compiled Solver uses must produce the same gradient as the Problem-
// layer hooks (they share the model implementation, but the indexing
// differs).
func TestExactModelGradientConsistency(t *testing.T) {
	p := &Problem{
		Loads:  []float64{30000, 8000, 2000},
		Budget: 40,
		Model:  ModelIndependentExact,
		Pairs: []Pair{
			{Name: "a", Links: []int{0, 1}, Utility: MustSRE(0.002)},
			{Name: "b", Links: []int{1, 2}, Utility: MustSRE(0.001)},
		},
	}
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	var sol Solution
	if err := s.SolveInto(&sol, Options{}); err != nil {
		t.Fatal(err)
	}
	direct, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sol.Rates {
		if math.Abs(sol.Rates[i]-direct.Rates[i]) > 1e-12 {
			t.Fatalf("rate %d: solver %v vs direct %v", i, sol.Rates[i], direct.Rates[i])
		}
	}
}
