package core

import "math"

// Matrix-free Newton at scale. The bordered dense KKT factorization in
// newtonInto is O(nf²) memory and O(nf³) time — fine for GEANT, fatal at
// 10⁴ links where the free set can be the whole candidate set. For
// additive rate models the objective Hessian is the low-rank sum
//
//	H = Σ_k c_k · ā_k ā_kᵀ,   c_k = w_k·M_k″(ρ_k) ≤ 0,
//
// so Hessian-vector products cost one CSR sweep (two passes per row) and
// the equality-constrained Newton system
//
//	H Δ = −g_f,  U_fᵀ Δ = 0
//
// can be solved by projected conjugate gradients on the budget
// hyperplane's tangent space: every CG vector is kept orthogonal to U_f,
// where A = −H is positive semi-definite (strictly positive along the
// directions that matter, since every pair's curvature is ≤ 0 and the
// line search safeguards the rest). Memory is O(n + nPairs); no pair×link
// intermediate is ever materialized.

// cgMaxIter caps the CG iterations per Newton step. The step is used as
// a safeguarded search direction, so an inexact solve only costs line-
// search progress, never correctness.
const cgMaxIter = 128

// cgResidualRel is the relative residual-norm target ‖r‖ ≤ rel·‖r₀‖ at
// which the CG solve is accepted.
const cgResidualRel = 1e-4

// newtonCGInto computes the equality-constrained Newton step at rates by
// projected CG and writes it into out (zero on pinned coordinates),
// reporting whether out is a usable ascent direction. s.freePos must be
// current (newtonInto fills it before dispatching here). Only called for
// additive models — newtonInto has already rejected the rest.
//netsamp:noalloc
func (s *Solver) newtonCGInto(out, rates, g []float64, nf int) bool {
	if s.curv == nil {
		// Scratch is only sized for solvers with n > denseKKTMaxFree, and
		// nf ≤ n, so a dispatch here without it is impossible; bail to the
		// first-order direction rather than crash if it ever happens.
		return false
	}
	p := s.p
	n := s.n
	s.curvFill(rates)
	uu := 0.0
	for i := 0; i < n; i++ {
		if s.freePos[i] >= 0 {
			uu += p.Loads[i] * p.Loads[i]
		}
	}
	if !(uu > 0) {
		return false
	}
	x, r, cp, ap := out, s.cgR, s.cgP, s.cgA
	for i := 0; i < n; i++ {
		x[i] = 0
		if s.freePos[i] >= 0 {
			r[i] = g[i]
		} else {
			r[i] = 0
		}
	}
	s.projectFree(r, uu)
	rr := 0.0
	for i := 0; i < n; i++ {
		rr += r[i] * r[i]
	}
	if !(rr > 0) {
		return false
	}
	tol2 := cgResidualRel * cgResidualRel * rr
	copy(cp, r)
	iters := nf
	if iters > cgMaxIter {
		iters = cgMaxIter
	}
	for it := 0; it < iters; it++ {
		s.hessMulInto(cp, ap)
		s.projectFree(ap, uu)
		pAp := 0.0
		for i := 0; i < n; i++ {
			pAp += cp[i] * ap[i]
		}
		if !(pAp > 0) {
			// Curvature flat (every traversing pair's c_k is 0) or lost to
			// rounding along this direction: stop with the progress so far.
			break
		}
		alpha := rr / pAp
		for i := 0; i < n; i++ {
			x[i] += alpha * cp[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := 0.0
		for i := 0; i < n; i++ {
			rrNew += r[i] * r[i]
		}
		if rrNew <= tol2 {
			break
		}
		beta := rrNew / rr
		rr = rrNew
		for i := 0; i < n; i++ {
			cp[i] = r[i] + beta*cp[i]
		}
	}
	asc := 0.0
	for i := 0; i < n; i++ {
		v := x[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
		asc += v * g[i]
	}
	return asc > 0
}

// projectFree removes the U_f component of v over the free coordinates:
// v ← v − (U_fᵀv / U_fᵀU_f)·U_f. Pinned coordinates are untouched (they
// are kept at zero by the callers).
//netsamp:noalloc
func (s *Solver) projectFree(v []float64, uu float64) {
	p := s.p
	num := 0.0
	for i := 0; i < s.n; i++ {
		if s.freePos[i] >= 0 {
			num += p.Loads[i] * v[i]
		}
	}
	tau := num / uu
	for i := 0; i < s.n; i++ {
		if s.freePos[i] >= 0 {
			v[i] -= tau * p.Loads[i]
		}
	}
}

// curvFill caches c_k = w_k·M_k″(ρ_k) for every pair at rates. One CSR
// sweep with two utility calls per pair; the Hessian-vector products
// then run on pure float arithmetic.
//netsamp:noalloc
func (s *Solver) curvFill(rates []float64) {
	if s.sh.pool != nil {
		s.shardCurvFill(rates)
		return
	}
	for k := 0; k < s.nPairs; k++ {
		s.curv[k] = s.wts[k] * s.utils[k].Curv(s.rho(k, rates))
	}
}

// hessMulInto writes (−H)·v into out over the free coordinates, using
// the curvatures cached by curvFill: for each pair, t = ā_kᵀv, then
// out += (−c_k)·t·ā_k. v must be zero on pinned coordinates; out is
// zeroed on them afterwards.
//netsamp:noalloc
func (s *Solver) hessMulInto(v, out []float64) {
	if s.sh.pool != nil {
		s.shardHessMul(v, out)
		return
	}
	for i := range out {
		out[i] = 0
	}
	s.hessMulRange(0, s.nPairs, v, out)
	for i := 0; i < s.n; i++ {
		if s.freePos[i] < 0 {
			out[i] = 0
		}
	}
}

// hessMulRange accumulates the pairs [kLo, kHi)'s Hessian-product terms
// into out — the shared inner kernel of the serial and sharded paths.
//netsamp:noalloc
func (s *Solver) hessMulRange(kLo, kHi int, v, out []float64) {
	for k := kLo; k < kHi; k++ {
		c := s.curv[k]
		//netsamp:floateq-ok exactly-zero curvature contributes nothing
		if c == 0 {
			continue
		}
		lo, hi := s.start[k], s.start[k+1]
		t := 0.0
		if s.fracs == nil {
			for j := lo; j < hi; j++ {
				t += v[s.links[j]]
			}
			//netsamp:floateq-ok exactly-zero row inner product contributes nothing
			if t == 0 {
				continue
			}
			ct := -c * t
			for j := lo; j < hi; j++ {
				out[s.links[j]] += ct
			}
		} else {
			for j := lo; j < hi; j++ {
				t += s.fracs[j] * v[s.links[j]]
			}
			//netsamp:floateq-ok exactly-zero row inner product contributes nothing
			if t == 0 {
				continue
			}
			ct := -c * t
			for j := lo; j < hi; j++ {
				out[s.links[j]] += ct * s.fracs[j]
			}
		}
	}
}
