package core

import (
	"math"
	"testing"

	"netsamp/internal/rng"
)

// TestSolveLargeInstance exercises a 300-link, 150-pair instance —
// "hundreds of monitoring points", the scale the paper's introduction
// targets.
func TestSolveLargeInstance(t *testing.T) {
	r := rng.New(4242)
	nLinks, nPairs := 300, 150
	p := &Problem{Loads: make([]float64, nLinks)}
	total := 0.0
	for i := range p.Loads {
		p.Loads[i] = math.Pow(10, 2+3*r.Float64()) // 100 … 100k pkt/s
		total += p.Loads[i]
	}
	p.Budget = total * 0.001
	for k := 0; k < nPairs; k++ {
		perm := r.Perm(nLinks)
		nHops := 1 + r.Intn(5)
		p.Pairs = append(p.Pairs, Pair{
			Name:    "k",
			Links:   append([]int(nil), perm[:nHops]...),
			Utility: MustSRE(math.Pow(10, -6+3*r.Float64())),
		})
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feasibility(t, p, sol)
	if !sol.Stats.Converged {
		t.Fatalf("large instance did not converge in %d iterations", sol.Stats.Iterations)
	}
	kktCheck(t, p, sol)
}

// TestSolveBudgetAtMaximum: θ equal to the full samplable rate forces
// every rate to its cap (a vertex solution).
func TestSolveBudgetAtMaximum(t *testing.T) {
	p := &Problem{
		Loads:   []float64{1000, 2000},
		MaxRate: []float64{0.5, 0.25},
		Budget:  1000*0.5 + 2000*0.25,
		Pairs: []Pair{
			{Name: "a", Links: []int{0}, Utility: MustSRE(0.001)},
			{Name: "b", Links: []int{1}, Utility: MustSRE(0.001)},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Converged {
		t.Fatal("vertex instance did not converge")
	}
	if math.Abs(sol.Rates[0]-0.5) > 1e-9 || math.Abs(sol.Rates[1]-0.25) > 1e-9 {
		t.Fatalf("rates = %v, want the caps", sol.Rates)
	}
}

// TestSolveTinyBudget: a budget far below one packet per second still
// produces a feasible, certified solution.
func TestSolveTinyBudget(t *testing.T) {
	p := &Problem{
		Loads:  []float64{50000, 80000},
		Budget: 0.001,
		Pairs: []Pair{
			{Name: "a", Links: []int{0}, Utility: MustSRE(0.0001)},
			{Name: "b", Links: []int{1}, Utility: MustSRE(0.0001)},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feasibility(t, p, sol)
	if !sol.Stats.Converged {
		t.Fatal("tiny budget did not converge")
	}
}

// TestSolveManyPairsOneLink: hundreds of pairs sharing a single link.
func TestSolveManyPairsOneLink(t *testing.T) {
	p := &Problem{
		Loads:  []float64{100000},
		Budget: 100,
	}
	for k := 0; k < 400; k++ {
		p.Pairs = append(p.Pairs, Pair{
			Name: "k", Links: []int{0}, Utility: MustSRE(0.0001 + 0.000001*float64(k)),
		})
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Rates[0]-0.001) > 1e-12 {
		t.Fatalf("rate = %v, want 0.001 (single-link budget identity)", sol.Rates[0])
	}
}

// TestSolveEqualityOfBudgetAndSingleCap: budget exactly consumable by
// one link at its cap while the other stays free.
func TestSolveDegenerateSingleFree(t *testing.T) {
	p := &Problem{
		Loads:   []float64{1000, 1000},
		MaxRate: []float64{0.001, 1},
		Budget:  5,
		Pairs: []Pair{
			{Name: "a", Links: []int{0}, Utility: MustSRE(0.01)},
			{Name: "b", Links: []int{1}, Utility: MustSRE(0.0001)},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feasibility(t, p, sol)
	// Link 0 saturates (cheap pair wants more but is capped), link 1
	// absorbs the rest.
	if math.Abs(sol.Rates[0]-0.001) > 1e-9 {
		t.Fatalf("capped rate = %v", sol.Rates[0])
	}
	if math.Abs(sol.Rates[1]-0.004) > 1e-9 {
		t.Fatalf("free rate = %v, want 0.004", sol.Rates[1])
	}
}

// TestSolveNoPanicOnRepeatedSolves: the solver must not share state
// across calls (regression guard for buffer reuse bugs).
func TestSolveNoStateLeak(t *testing.T) {
	p := &Problem{
		Loads:  []float64{1000, 3000},
		Budget: 10,
		Pairs: []Pair{
			{Name: "a", Links: []int{0, 1}, Utility: MustSRE(0.001)},
		},
	}
	first, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for j := range first.Rates {
			if first.Rates[j] != again.Rates[j] {
				t.Fatalf("solve %d diverged: %v vs %v", i, again.Rates, first.Rates)
			}
		}
	}
}

// TestMaxMinLargeInstance: the reweighting scheme stays stable at scale.
func TestMaxMinLargeInstance(t *testing.T) {
	r := rng.New(515)
	nLinks, nPairs := 40, 30
	p := &Problem{Loads: make([]float64, nLinks)}
	total := 0.0
	for i := range p.Loads {
		p.Loads[i] = 100 + 20000*r.Float64()
		total += p.Loads[i]
	}
	p.Budget = total * 0.002
	for k := 0; k < nPairs; k++ {
		perm := r.Perm(nLinks)
		p.Pairs = append(p.Pairs, Pair{
			Name: "k", Links: append([]int(nil), perm[:1+r.Intn(3)]...), Utility: MustSRE(0.0005),
		})
	}
	mm, err := SolveMaxMin(p, MaxMinOptions{Rounds: 15})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	minOf := func(u []float64) float64 {
		m := math.Inf(1)
		for _, v := range u {
			m = math.Min(m, v)
		}
		return m
	}
	if minOf(mm.Utilities) < minOf(sum.Utilities)-1e-9 {
		t.Fatalf("max-min min %v below sum min %v", minOf(mm.Utilities), minOf(sum.Utilities))
	}
}

// TestSolveExactModelRandomKKT: the solver under the exact rate model
// must also return feasible, certified points on random instances.
func TestSolveExactModelRandomKKT(t *testing.T) {
	r := rng.New(777)
	for trial := 0; trial < 30; trial++ {
		nLinks := 2 + r.Intn(8)
		p := &Problem{Loads: make([]float64, nLinks), Model: ModelIndependentExact}
		total := 0.0
		for i := range p.Loads {
			p.Loads[i] = 50 + 20000*r.Float64()
			total += p.Loads[i]
		}
		p.Budget = total * (0.001 + 0.01*r.Float64())
		nPairs := 1 + r.Intn(5)
		for k := 0; k < nPairs; k++ {
			perm := r.Perm(nLinks)
			maxHops := 3
			if nLinks < maxHops {
				maxHops = nLinks
			}
			p.Pairs = append(p.Pairs, Pair{
				Name:    "k",
				Links:   append([]int(nil), perm[:1+r.Intn(maxHops)]...),
				Utility: MustSRE(math.Pow(10, -4+2*r.Float64())),
			})
		}
		sol, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		feasibility(t, p, sol)
		if sol.Stats.Converged {
			kktCheck(t, p, sol)
		}
	}
}
