package core

import (
	"errors"
	"math"
	"testing"
)

func robustTestProblem() *Problem {
	return &Problem{
		Loads:  []float64{1000, 500, 2000},
		Budget: 20,
		Pairs: []Pair{
			{Name: "a", Links: []int{0, 1}, Utility: MustSRE(0.002)},
			{Name: "b", Links: []int{1, 2}, Utility: MustSRE(0.001)},
			{Name: "c", Links: []int{2}, Utility: MustSRE(0.005)},
		},
	}
}

func envelope(loads []float64, rel float64) (lo, hi []float64) {
	lo = make([]float64, len(loads))
	hi = make([]float64, len(loads))
	for i, u := range loads {
		lo[i] = u * (1 - rel)
		hi[i] = u * (1 + rel)
	}
	return lo, hi
}

func TestRobustModeNames(t *testing.T) {
	for _, m := range []RobustMode{RobustOff, RobustPessimistic, RobustOptimistic} {
		back, err := RobustModeByName(m.String())
		if err != nil || back != m {
			t.Fatalf("%v: round trip gave %v, %v", m, back, err)
		}
	}
	if _, err := RobustModeByName("paranoid"); err == nil {
		t.Fatal("unknown mode name accepted")
	}
	if got, err := RobustModeByName(""); err != nil || got != RobustOff {
		t.Fatalf("empty name: %v, %v", got, err)
	}
}

func TestSolveRobustPessimisticKeepsTrueSpendWithinBudget(t *testing.T) {
	p := robustTestProblem()
	lo, hi := envelope(p.Loads, 0.3)
	sol, err := SolveRobust(p, RobustPessimistic, lo, hi, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Spend measured against ANY loads inside the envelope — in
	// particular the true (point) loads — stays within θ.
	spend := 0.0
	for i, r := range sol.Rates {
		spend += r * p.Loads[i]
	}
	if spend > p.Budget*(1+1e-9) {
		t.Fatalf("true spend %v exceeds budget %v under pessimistic solve", spend, p.Budget)
	}
	// The solve itself saturates the budget against the upper bounds.
	spendHi := 0.0
	for i, r := range sol.Rates {
		spendHi += r * hi[i]
	}
	if math.Abs(spendHi-p.Budget) > 1e-6*p.Budget {
		t.Fatalf("envelope spend %v, want θ = %v", spendHi, p.Budget)
	}
}

func TestSolveRobustOptimisticSpendsMore(t *testing.T) {
	p := robustTestProblem()
	lo, hi := envelope(p.Loads, 0.3)
	pes, err := SolveRobust(p, RobustPessimistic, lo, hi, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SolveRobust(p, RobustOptimistic, lo, hi, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spendAt := func(sol *Solution, loads []float64) float64 {
		s := 0.0
		for i, r := range sol.Rates {
			s += r * loads[i]
		}
		return s
	}
	if !(spendAt(opt, p.Loads) > spendAt(pes, p.Loads)) {
		t.Fatalf("optimistic true spend %v not above pessimistic %v",
			spendAt(opt, p.Loads), spendAt(pes, p.Loads))
	}
}

func TestSolveRobustOffMatchesSolve(t *testing.T) {
	p := robustTestProblem()
	lo, hi := envelope(p.Loads, 0.3)
	plain, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := SolveRobust(p, RobustOff, lo, hi, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Rates {
		if math.Float64bits(plain.Rates[i]) != math.Float64bits(off.Rates[i]) {
			t.Fatalf("RobustOff rate %d differs from plain Solve", i)
		}
	}
}

func TestSolveRobustClampsInfeasibleOptimisticBudget(t *testing.T) {
	p := robustTestProblem()
	// Budget close to the maximum samplable rate under the point loads;
	// the optimistic (lower) envelope cannot carry it.
	p.Budget = 3400
	lo, hi := envelope(p.Loads, 0.3)
	sol, err := SolveRobust(p, RobustOptimistic, lo, hi, Options{})
	if err != nil {
		t.Fatalf("optimistic solve with clamped budget: %v", err)
	}
	// The clamped budget saturates every link at its cap.
	for i, r := range sol.Rates {
		if math.Abs(r-1) > 1e-6 {
			t.Fatalf("rate[%d] = %v, want 1 (budget clamped to the envelope max)", i, r)
		}
	}
}

func TestSolveRobustValidatesBounds(t *testing.T) {
	p := robustTestProblem()
	lo, hi := envelope(p.Loads, 0.3)
	cases := []struct {
		name   string
		lo, hi []float64
	}{
		{"short lower", lo[:2], hi},
		{"zero lower", []float64{0, 500, 2000}, hi},
		{"NaN upper", lo, []float64{math.NaN(), hi[1], hi[2]}},
		{"inverted", hi, lo},
	}
	for _, c := range cases {
		if _, err := SolveRobust(p, RobustPessimistic, c.lo, c.hi, Options{}); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := SolveRobust(p, RobustPessimistic, []float64{0, 1, 1}, hi, Options{}); !errors.Is(err, ErrInvalidInput) {
		t.Error("bound rejection is not a typed InputError")
	}
	if _, err := SolveRobust(p, RobustMode(9), lo, hi, Options{}); !errors.Is(err, ErrInvalidInput) {
		t.Error("unknown mode not rejected with a typed InputError")
	}
}

func TestSolveRobustWarmStartReprojected(t *testing.T) {
	p := robustTestProblem()
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s.SolveRobust(RobustPessimistic, envLo(p), envHi(p), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// An Initial stated against the POINT loads is infeasible against the
	// envelope; SolveRobust must re-project it rather than fail, and land
	// on the same optimum.
	s2, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	init, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s2.SolveRobust(RobustPessimistic, envLo(p), envHi(p), Options{Initial: init.Rates})
	if err != nil {
		t.Fatalf("warm-started robust solve: %v", err)
	}
	for i := range cold.Rates {
		if math.Abs(cold.Rates[i]-warm.Rates[i]) > 1e-6 {
			t.Fatalf("warm-started optimum diverged at link %d: %v vs %v", i, warm.Rates[i], cold.Rates[i])
		}
	}
}

func envLo(p *Problem) []float64 {
	lo, _ := envelope(p.Loads, 0.3)
	return lo
}

func envHi(p *Problem) []float64 {
	_, hi := envelope(p.Loads, 0.3)
	return hi
}
