//go:build race

package core

// raceTest shrinks the sharded-kernel tests under the race detector:
// the determinism contract is exercised identically, but the ~20×
// instrumentation slowdown would otherwise dominate the CI race job.
const raceTest = true
