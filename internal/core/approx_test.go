package core

import (
	"errors"
	"math"
	"testing"

	"netsamp/internal/rng"
)

// randomApproxProblem mirrors TestSolveRandomProblemsKKT's generator:
// modest random incidences where the exact solver's optimum is cheap to
// compute and the Frank-Wolfe gap certificate can be checked against it.
func randomApproxProblem(r *rng.Source) *Problem {
	nLinks := 4 + r.Intn(8)
	nPairs := 3 + r.Intn(10)
	p := &Problem{Loads: make([]float64, nLinks)}
	total := 0.0
	for i := range p.Loads {
		p.Loads[i] = 100 + 5000*r.Float64()
		total += p.Loads[i]
	}
	p.Budget = total * (0.02 + 0.3*r.Float64())
	for k := 0; k < nPairs; k++ {
		nl := 1 + r.Intn(3)
		links := map[int]bool{}
		for len(links) < nl {
			links[r.Intn(nLinks)] = true
		}
		var ls []int
		for i := 0; i < nLinks; i++ {
			if links[i] {
				ls = append(ls, i)
			}
		}
		p.Pairs = append(p.Pairs, Pair{
			Links:   ls,
			Utility: MustSRE(0.001 + 0.05*r.Float64()),
			Weight:  0.5 + r.Float64(),
		})
	}
	return p
}

// TestSolveApproxGapSoundness is the core certificate check: for every
// random instance, f(exact) must lie within [f(approx), f(approx)+gap] —
// the gap bound must never undersell the distance to the optimum, and
// the approximation must never (beyond rounding) beat the exact solver.
func TestSolveApproxGapSoundness(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 60; trial++ {
		p := randomApproxProblem(r)
		exact, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: exact: %v", trial, err)
		}
		s, err := NewSolver(p)
		if err != nil {
			t.Fatal(err)
		}
		apx, err := s.SolveApprox(ApproxOptions{})
		if err != nil {
			t.Fatalf("trial %d: approx: %v", trial, err)
		}
		if !apx.Approx {
			t.Fatalf("trial %d: Approx flag not set", trial)
		}
		if apx.GapBound < 0 || math.IsNaN(apx.GapBound) {
			t.Fatalf("trial %d: gap bound %v", trial, apx.GapBound)
		}
		scale := math.Max(1, math.Abs(exact.Objective))
		if apx.Objective > exact.Objective+1e-7*scale {
			t.Errorf("trial %d: approx objective %v beats exact %v", trial, apx.Objective, exact.Objective)
		}
		if exact.Objective > apx.Objective+apx.GapBound+1e-7*scale {
			t.Errorf("trial %d: gap bound unsound: exact %v > approx %v + gap %v",
				trial, exact.Objective, apx.Objective, apx.GapBound)
		}
		// Feasibility: within box bounds and under budget (Frank-Wolfe
		// iterates live in the knapsack relaxation, which may leave slack
		// on links no pair traverses).
		spend := 0.0
		for i, rate := range apx.Rates {
			a := p.alpha(i)
			if rate < -1e-12 || rate > a+1e-12 {
				t.Fatalf("trial %d: rate[%d] = %v outside [0, %v]", trial, i, rate, a)
			}
			spend += rate * p.Loads[i]
		}
		if spend > p.Budget*(1+1e-9) {
			t.Fatalf("trial %d: budget overspent: %v > %v", trial, spend, p.Budget)
		}
	}
}

func TestSolveApproxTightTolNearsExact(t *testing.T) {
	r := rng.New(5)
	p := randomApproxProblem(r)
	exact, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	apx, err := s.SolveApprox(ApproxOptions{GapTol: 1e-7, MaxIter: 20000})
	if err != nil {
		t.Fatal(err)
	}
	scale := math.Max(1, math.Abs(exact.Objective))
	if diff := exact.Objective - apx.Objective; diff > 1e-5*scale {
		t.Fatalf("tight-tolerance approx objective %v still %g below exact %v", apx.Objective, diff, exact.Objective)
	}
}

func TestSolveApproxDeterministic(t *testing.T) {
	r := rng.New(9)
	p := randomApproxProblem(r)
	s1, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s1.SolveApprox(ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.SolveApprox(ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.GapBound != b.GapBound {
		t.Fatalf("approx solve not deterministic: obj %v/%v gap %v/%v",
			a.Objective, b.Objective, a.GapBound, b.GapBound)
	}
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			t.Fatalf("rate[%d] differs across identical approx solves", i)
		}
	}
}

func TestSolveApproxRefusesNonAdditive(t *testing.T) {
	m, err := ModelByName("independent-exact")
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		Loads:  []float64{1000, 2000},
		Budget: 500,
		Model:  m,
		Pairs: []Pair{
			{Links: []int{0, 1}, Utility: MustSRE(0.01)},
		},
	}
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.SolveApprox(ApproxOptions{})
	if err == nil {
		t.Fatal("SolveApprox accepted a non-additive model")
	}
	var ie *InputError
	if !errors.As(err, &ie) {
		t.Fatalf("refusal error %T is not *InputError", err)
	}
	if !errors.Is(err, ErrInvalidInput) {
		t.Fatal("refusal does not match ErrInvalidInput")
	}
	// The exact path must still work for the same solver.
	if _, err := s.Solve(Options{}); err != nil {
		t.Fatalf("exact solve after refused approx: %v", err)
	}
}

func TestSolveApproxWarmStart(t *testing.T) {
	r := rng.New(31)
	p := randomApproxProblem(r)
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s.SolveApprox(ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.SolveApprox(ApproxOptions{Initial: cold.Rates})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Iterations > cold.Stats.Iterations {
		t.Errorf("warm start took %d iterations, cold %d", warm.Stats.Iterations, cold.Stats.Iterations)
	}
	scale := math.Max(1, math.Abs(cold.Objective))
	if warm.Objective < cold.Objective-1e-9*scale {
		t.Errorf("warm start lost objective: %v < %v", warm.Objective, cold.Objective)
	}
}

func TestSolveRobustApprox(t *testing.T) {
	p := &Problem{
		Loads:  []float64{1000, 2000, 1500},
		Budget: 900,
		Pairs: []Pair{
			{Links: []int{0, 1}, Utility: MustSRE(0.01)},
			{Links: []int{1, 2}, Utility: MustSRE(0.02)},
		},
	}
	lower := []float64{900, 1800, 1400}
	upper := []float64{1100, 2300, 1700}
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.SolveRobustApprox(RobustPessimistic, lower, upper, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Approx {
		t.Fatal("robust approx solution not flagged Approx")
	}
	// Pessimistic: spend against the UPPER loads stays within budget.
	spend := 0.0
	for i, rate := range sol.Rates {
		spend += rate * upper[i]
	}
	if spend > p.Budget*(1+1e-9) {
		t.Fatalf("pessimistic approx overspends upper-envelope budget: %v > %v", spend, p.Budget)
	}

	// RobustOff routes straight to the plain approx path.
	s2, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.SolveRobustApprox(RobustOff, nil, nil, ApproxOptions{}); err != nil {
		t.Fatal(err)
	}
}
