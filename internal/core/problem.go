package core

import (
	"fmt"
	"math"
)

// Pair is one OD pair of the measurement task: the links it traverses
// (as dense indices into the candidate monitor set) and its utility.
type Pair struct {
	Name    string
	Links   []int
	Utility Utility
	// Fracs optionally holds the ECMP traffic fraction of each entry of
	// Links (nil means single-path routing: every fraction is 1). Under
	// per-flow ECMP a packet of the pair crosses link i with probability
	// Fracs[i], so the effective sampling rate (7) generalizes to
	// rho_k = sum_i f_ki*p_i. The exact product model (1) assumes
	// deterministic single-path routing and rejects fractions.
	Fracs []float64
	// Weight scales this pair's utility in the objective; 0 means 1.
	// The paper's objective weighs pairs equally; weights support
	// operator priorities and the max-min solver's reweighting scheme.
	Weight float64
}

// weight returns the effective objective weight of the pair.
func (pr *Pair) weight() float64 {
	if pr.Weight <= 0 {
		return 1
	}
	return pr.Weight
}

// Problem is an instance of the network-wide sampling problem over a
// candidate monitor set of n links indexed 0..n-1.
//
// Loads, MaxRate and Budget share one time unit: Loads[i] is the packet
// rate U_i on link i, Budget is θ expressed as the maximum sampled
// packet rate network-wide. Use BudgetPerInterval to convert the paper's
// packets-per-measurement-interval convention.
type Problem struct {
	// Loads is U_i > 0 for each candidate link.
	Loads []float64
	// MaxRate is α_i ∈ (0, 1] for each candidate link. Nil means α_i = 1
	// for all links (no per-link cap, as in the paper's Table I run).
	MaxRate []float64
	// Budget is θ: Σ p_i·U_i = Budget at the optimum.
	Budget float64
	// Pairs is the measurement task F.
	Pairs []Pair
	// Model selects the effective-rate model. Nil means ModelLinear, the
	// paper's working approximation (7): ρ_k = Σ r_ki·p_i, valid for the
	// low rates and short monitored paths the optimum exhibits
	// (Section IV-B). See RateModel for the alternatives.
	Model RateModel
}

// model returns the effective rate model, defaulting to ModelLinear.
//netsamp:noalloc
func (p *Problem) model() RateModel {
	if p.Model == nil {
		return ModelLinear
	}
	return p.Model
}

// BudgetPerInterval converts a budget of θ sampled packets per
// measurement interval of the given length in seconds into the sampled
// packet rate used by Problem.Budget.
func BudgetPerInterval(theta, intervalSeconds float64) float64 {
	return theta / intervalSeconds
}

// NumLinks returns the size of the candidate monitor set.
//netsamp:noalloc
func (p *Problem) NumLinks() int { return len(p.Loads) }

// alpha returns the effective per-link cap for link i.
//netsamp:noalloc
func (p *Problem) alpha(i int) float64 {
	if p.MaxRate == nil {
		return 1
	}
	return p.MaxRate[i]
}

// Validate checks the problem for structural and feasibility errors:
// positive loads, caps in (0, 1], a positive budget not exceeding the
// maximum samplable rate Σ α_i·U_i, at least one pair, and pair rows
// referencing valid links.
func (p *Problem) Validate() error {
	n := p.NumLinks()
	if n == 0 {
		return fmt.Errorf("core: no candidate links")
	}
	if p.MaxRate != nil && len(p.MaxRate) != n {
		return fmt.Errorf("core: MaxRate has %d entries for %d links", len(p.MaxRate), n)
	}
	maxSampled := 0.0
	for i, u := range p.Loads {
		if !(u > 0) || math.IsInf(u, 0) {
			// !(u > 0) also rejects NaN: every comparison with NaN is false.
			return invalidInput("load of link", i, u, "want a finite value > 0")
		}
		a := p.alpha(i)
		if !(a > 0 && a <= 1) {
			return invalidInput("max rate of link", i, a, "want (0, 1]")
		}
		maxSampled += a * u
	}
	if !(p.Budget > 0) || math.IsInf(p.Budget, 0) {
		return invalidInput("budget", -1, p.Budget, "want a finite value > 0")
	}
	if p.Budget > maxSampled*(1+1e-12) {
		return invalidInput("budget", -1, p.Budget,
			fmt.Sprintf("exceeds maximum samplable rate %v (infeasible)", maxSampled))
	}
	if len(p.Pairs) == 0 {
		return fmt.Errorf("core: no OD pairs")
	}
	// One stamp array shared by every pair's duplicate-link scan: seen[l]
	// holds the 1-based index of the last pair that referenced link l.
	// This replaces the per-pair map the validator used to rebuild, and
	// it runs once per Solver compile — Solver.Solve never re-validates.
	seen := make([]int, n)
	for k, pr := range p.Pairs {
		if pr.Utility == nil {
			return fmt.Errorf("core: pair %d (%q) has no utility", k, pr.Name)
		}
		if math.IsNaN(pr.Weight) || math.IsInf(pr.Weight, 0) {
			// weight() coerces non-positive weights to 1, but NaN slips
			// through every comparison — reject it here instead.
			return invalidInput(fmt.Sprintf("pair %d (%q) weight", k, pr.Name), -1, pr.Weight, "want a finite value")
		}
		if len(pr.Links) == 0 {
			return fmt.Errorf("core: pair %d (%q) traverses no candidate link", k, pr.Name)
		}
		for _, l := range pr.Links {
			if l < 0 || l >= n {
				return fmt.Errorf("core: pair %d (%q) references link %d out of range [0,%d)", k, pr.Name, l, n)
			}
			if seen[l] == k+1 {
				return fmt.Errorf("core: pair %d (%q) references link %d twice", k, pr.Name, l)
			}
			seen[l] = k + 1
		}
		if pr.Fracs != nil {
			if len(pr.Fracs) != len(pr.Links) {
				return fmt.Errorf("core: pair %d (%q) has %d fractions for %d links", k, pr.Name, len(pr.Fracs), len(pr.Links))
			}
			if !p.model().SupportsFracs() {
				return fmt.Errorf("core: pair %d (%q): the %s rate model requires single-path routing (no fractions)", k, pr.Name, p.model().Name())
			}
			for i, f := range pr.Fracs {
				if !(f > 0 && f <= 1) {
					return invalidInput(fmt.Sprintf("pair %d (%q) fraction", k, pr.Name), i, f, "want (0, 1]")
				}
			}
		}
	}
	return nil
}

// EffectiveRates returns ρ_k for every pair at the rate vector rates,
// under the problem's rate model (the solver-side surrogate; apply
// Model.Deployed for the realized inclusion probability).
func (p *Problem) EffectiveRates(rates []float64) []float64 {
	out := make([]float64, len(p.Pairs))
	p.EffectiveRatesInto(out, rates)
	return out
}

// EffectiveRatesInto writes ρ_k for every pair at the rate vector rates
// into dst, which must have length len(p.Pairs). It is the
// allocation-free form of EffectiveRates for per-interval loops that
// reuse one destination buffer.
//netsamp:noalloc
func (p *Problem) EffectiveRatesInto(dst, rates []float64) {
	if len(dst) != len(p.Pairs) {
		panic("core: EffectiveRatesInto destination length mismatch")
	}
	m := p.model()
	for k := range p.Pairs {
		pr := &p.Pairs[k]
		dst[k] = m.pairRho(pr.Links, pr.Fracs, rates)
	}
}

func (p *Problem) effectiveRate(k int, rates []float64) float64 {
	pr := &p.Pairs[k]
	return p.model().pairRho(pr.Links, pr.Fracs, rates)
}

// Objective returns Σ_k M_k(ρ_k(rates)).
func (p *Problem) Objective(rates []float64) float64 {
	s := 0.0
	for k := range p.Pairs {
		pr := &p.Pairs[k]
		s += pr.weight() * pr.Utility.Value(p.effectiveRate(k, rates))
	}
	return s
}

// Gradient writes ∂/∂p_i Σ_k M_k(ρ_k) into out (length NumLinks).
func (p *Problem) Gradient(rates, out []float64) {
	for i := range out {
		out[i] = 0
	}
	m := p.model()
	for k := range p.Pairs {
		pr := &p.Pairs[k]
		rho := m.pairRho(pr.Links, pr.Fracs, rates)
		d := pr.weight() * pr.Utility.Deriv(rho)
		m.accumGrad(pr.Links, pr.Fracs, rates, rho, d, out)
	}
}

// lineDerivs returns φ'(t) and φ”(t) for φ(t) = Objective(rates + t·s).
// The solver's Newton line search needs both; the per-pair terms come
// from the rate model (the product model's second derivative includes
// the curvature of ρ_k(t) itself).
func (p *Problem) lineDerivs(rates, s []float64, t float64) (d1, d2 float64) {
	m := p.model()
	for k := range p.Pairs {
		pr := &p.Pairs[k]
		e1, e2 := m.lineTerms(pr.Links, pr.Fracs, rates, s, t, pr.Utility, pr.weight())
		d1 += e1
		d2 += e2
	}
	return d1, d2
}
