package core

import (
	"math"
	"testing"

	"netsamp/internal/rng"
)

func TestRateForUtilityExactRoundTrip(t *testing.T) {
	// All three utility families: M(M⁻¹(m)) = m everywhere in (0, 1),
	// including below the SRE stitch point.
	utils := []struct {
		name string
		u    Utility
	}{
		{"SRE", MustSRE(0.002)},
		{"SRE-small-c", MustSRE(1e-6)},
		{"Detection", MustDetection(500)},
		{"LogCoverage", MustLogCoverage(0.01)},
	}
	for _, tc := range utils {
		inv := tc.u.(Inverter)
		for _, m := range []float64{0.01, 0.1, 0.3, 0.5, 0.66, 0.8, 0.95, 0.999} {
			rho, err := inv.RateForUtility(m)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if got := tc.u.Value(rho); math.Abs(got-m) > 1e-9 {
				t.Fatalf("%s: M(M⁻¹(%v)) = %v", tc.name, m, got)
			}
		}
	}
}

func TestSolveMaxMinExactTwoLinks(t *testing.T) {
	// Analytic instance: two disjoint links with equal utilities; the
	// max-min optimum equalizes the rates at p = θ/(U₁+U₂).
	p := &Problem{
		Loads:  []float64{100, 20000},
		Budget: 30,
		Pairs: []Pair{
			{Name: "cheap", Links: []int{0}, Utility: MustSRE(0.002)},
			{Name: "costly", Links: []int{1}, Utility: MustSRE(0.002)},
		},
	}
	sol, err := SolveMaxMinExact(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	u := MustSRE(0.002)
	want := u.Value(p.Budget / (p.Loads[0] + p.Loads[1]))
	if math.Abs(sol.Objective-want) > 1e-6 {
		t.Fatalf("max-min value = %v, analytic %v", sol.Objective, want)
	}
	// Feasibility and full budget use.
	total := 0.0
	for i, r := range sol.Rates {
		if r < -1e-12 || r > 1+1e-9 {
			t.Fatalf("rate %d = %v", i, r)
		}
		total += r * p.Loads[i]
	}
	if math.Abs(total-p.Budget) > 1e-6 {
		t.Fatalf("budget = %v, want %v", total, p.Budget)
	}
}

func TestSolveMaxMinExactBeatsHeuristic(t *testing.T) {
	// The certified optimum must dominate (or match) the reweighting
	// heuristic on random instances.
	r := rng.New(606)
	for trial := 0; trial < 15; trial++ {
		nLinks := 3 + r.Intn(8)
		nPairs := 2 + r.Intn(6)
		p := &Problem{Loads: make([]float64, nLinks)}
		total := 0.0
		for i := range p.Loads {
			p.Loads[i] = 100 + 30000*r.Float64()
			total += p.Loads[i]
		}
		p.Budget = total * (0.0005 + 0.003*r.Float64())
		for k := 0; k < nPairs; k++ {
			perm := r.Perm(nLinks)
			maxHops := 3
			if nLinks < maxHops {
				maxHops = nLinks
			}
			p.Pairs = append(p.Pairs, Pair{
				Name:    "k",
				Links:   append([]int(nil), perm[:1+r.Intn(maxHops)]...),
				Utility: MustSRE(math.Pow(10, -5+2.5*r.Float64())),
			})
		}
		exact, err := SolveMaxMinExact(p, 1e-9)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		heur, err := SolveMaxMin(p, MaxMinOptions{Rounds: 20})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		minOf := func(u []float64) float64 {
			m := math.Inf(1)
			for _, v := range u {
				m = math.Min(m, v)
			}
			return m
		}
		if minOf(exact.Utilities) < minOf(heur.Utilities)-1e-6 {
			t.Fatalf("trial %d: exact %v below heuristic %v",
				trial, minOf(exact.Utilities), minOf(heur.Utilities))
		}
		// And it must dominate the sum-objective solution's minimum too.
		sum, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if minOf(exact.Utilities) < minOf(sum.Utilities)-1e-6 {
			t.Fatalf("trial %d: exact max-min %v below sum min %v",
				trial, minOf(exact.Utilities), minOf(sum.Utilities))
		}
	}
}

func TestSolveMaxMinExactWithDetectionUtility(t *testing.T) {
	p := &Problem{
		Loads:  []float64{40000, 800},
		Budget: 60,
		Pairs: []Pair{
			{Name: "a", Links: []int{0}, Utility: MustDetection(500)},
			{Name: "b", Links: []int{1}, Utility: MustDetection(500)},
		},
	}
	sol, err := SolveMaxMinExact(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Equal utilities, disjoint links: equalized detection probability.
	if math.Abs(sol.Utilities[0]-sol.Utilities[1]) > 1e-6 {
		t.Fatalf("not equalized: %v", sol.Utilities)
	}
}

func TestSolveMaxMinExactRejects(t *testing.T) {
	p := &Problem{
		Loads:  []float64{100},
		Budget: 1,
		Model:  ModelIndependentExact,
		Pairs:  []Pair{{Name: "a", Links: []int{0}, Utility: MustSRE(0.01)}},
	}
	if _, err := SolveMaxMinExact(p, 0); err == nil {
		t.Fatal("exact rate model accepted")
	}
}

// nonInvertible is a valid utility without a closed-form inverse.
type nonInvertible struct{ Utility }

func TestSolveMaxMinExactNeedsInverter(t *testing.T) {
	p := &Problem{
		Loads:  []float64{100},
		Budget: 1,
		Pairs:  []Pair{{Name: "a", Links: []int{0}, Utility: nonInvertible{MustSRE(0.01)}}},
	}
	if _, err := SolveMaxMinExact(p, 0); err == nil {
		t.Fatal("non-invertible utility accepted")
	}
}
