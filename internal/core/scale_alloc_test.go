package core

import (
	"testing"

	"netsamp/internal/engine"
)

// Zero-alloc pins for the scale tier: the CSR front door, the Newton-CG
// path (free set beyond the dense-KKT bound), the sharded kernels, and
// the Frank-Wolfe approximation must all keep SolveInto/SolveApproxInto
// at 0 allocs/op in steady state — at one solve per 5-minute interval
// for years, allocator traffic is drift the daemon cannot afford.

// scaleAllocProblem exceeds denseKKTMaxFree links (forcing Newton-CG)
// and one shard chunk (forcing real multi-chunk dispatch when sharded).
func scaleAllocProblem(t testing.TB) *CSRProblem {
	t.Helper()
	links, pairs := 1000, 6000
	if raceTest {
		links, pairs = 600, 5000
	}
	inst := genInstance(t, links, pairs, 3, true)
	return csrFromInstance(t, inst, 0.05)
}

func pinZeroAllocs(t *testing.T, name string, run func() error) {
	t.Helper()
	if err := run(); err != nil { // warm the reused slices
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if err := run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("%s allocates %v objects/op in steady state, want 0", name, allocs)
	}
}

func TestScaleSolveIntoZeroAllocs(t *testing.T) {
	cp := scaleAllocProblem(t)
	s, err := NewSolverCSR(cp)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumLinks() <= denseKKTMaxFree {
		t.Fatalf("problem too small to force the CG path: n = %d", s.NumLinks())
	}
	var sol Solution
	opt := Options{MaxIter: shardIters(12)}
	pinZeroAllocs(t, "CSR SolveInto (Newton-CG)", func() error {
		return s.SolveInto(&sol, opt)
	})
}

func TestScaleSolveApproxIntoZeroAllocs(t *testing.T) {
	cp := scaleAllocProblem(t)
	s, err := NewSolverCSR(cp)
	if err != nil {
		t.Fatal(err)
	}
	var sol Solution
	opt := ApproxOptions{MaxIter: shardIters(40)}
	pinZeroAllocs(t, "SolveApproxInto", func() error {
		return s.SolveApproxInto(&sol, opt)
	})
}

func TestShardedSolveIntoZeroAllocs(t *testing.T) {
	cp := scaleAllocProblem(t)
	s, err := NewSolverCSR(cp)
	if err != nil {
		t.Fatal(err)
	}
	pool := engine.NewPool(4)
	defer pool.Close()
	s.Shard(pool) // buffers allocated here, off the hot path
	var sol Solution
	opt := Options{MaxIter: shardIters(12)}
	pinZeroAllocs(t, "sharded SolveInto", func() error {
		return s.SolveInto(&sol, opt)
	})
	aopt := ApproxOptions{MaxIter: shardIters(40)}
	pinZeroAllocs(t, "sharded SolveApproxInto", func() error {
		return s.SolveApproxInto(&sol, aopt)
	})
}
