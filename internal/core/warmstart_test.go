package core

import (
	"math"
	"testing"

	"netsamp/internal/rng"
)

// budgetSpend returns Σ p_i·U_i of rates under p's loads.
func budgetSpend(p *Problem, rates []float64) float64 {
	t := 0.0
	for i, r := range rates {
		t += r * p.Loads[i]
	}
	return t
}

// checkWarmFeasible asserts rates is a valid Options.Initial for p: in
// the box and on the budget hyperplane within initialPointInto's
// tolerance.
func checkWarmFeasible(t *testing.T, p *Problem, rates []float64) {
	t.Helper()
	if len(rates) != p.NumLinks() {
		t.Fatalf("warm start has %d rates for %d links", len(rates), p.NumLinks())
	}
	for i, r := range rates {
		if r < 0 || r > p.alpha(i)+snapTol {
			t.Fatalf("rate %d = %v outside [0, %v]", i, r, p.alpha(i))
		}
	}
	spend := budgetSpend(p, rates)
	if math.Abs(spend-p.Budget) > 1e-6*math.Max(1, p.Budget) {
		t.Fatalf("warm start spends %v of budget %v", spend, p.Budget)
	}
	// The point must be accepted verbatim by the solver's own validation.
	if err := initialPointInto(p, Options{Initial: rates}, make([]float64, len(rates))); err != nil {
		t.Fatalf("initialPointInto rejects the warm start: %v", err)
	}
}

// TestWarmStartFeasible: the projection must return a budget-feasible
// point for arbitrary previous rate vectors — optima of other budgets,
// random junk, zeros, bound-violating and NaN-poisoned inputs alike.
func TestWarmStartFeasible(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 200; trial++ {
		p := wsRandomProblem(uint64(trial), 5+r.Intn(40), 1+r.Intn(30), false)
		n := p.NumLinks()
		prev := make([]float64, n)
		switch trial % 5 {
		case 0: // random in-box point
			for i := range prev {
				prev[i] = r.Float64() * p.alpha(i)
			}
		case 1: // all zero (degenerate previous plan)
		case 2: // saturated
			for i := range prev {
				prev[i] = p.alpha(i)
			}
		case 3: // out-of-box and negative entries
			for i := range prev {
				prev[i] = -1 + 3*r.Float64()
			}
		case 4: // NaN-poisoned
			for i := range prev {
				prev[i] = r.Float64() * p.alpha(i)
			}
			prev[r.Intn(n)] = math.NaN()
		}
		rates, err := WarmStartRates(prev, p, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkWarmFeasible(t, p, rates)
	}
}

// TestWarmStartPreservesActiveSet: when the previous plan overspends the
// new budget, the projection is a rescale — links that were off must
// stay exactly off, so the solver inherits the active set.
func TestWarmStartPreservesActiveSet(t *testing.T) {
	p := wsRandomProblem(7, 20, 15, false)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shrunk := *p
	shrunk.Loads = p.Loads
	shrunk.Budget = p.Budget / 2
	rates, err := WarmStart(sol, &shrunk, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range sol.Rates {
		if r == 0 && rates[i] != 0 {
			t.Fatalf("link %d was off, warm start turned it on (%v)", i, rates[i])
		}
	}
	checkWarmFeasible(t, &shrunk, rates)
}

// TestWarmStartInfeasibleBudget: a budget beyond Σ α_i·U_i must be
// reported, not silently projected.
func TestWarmStartInfeasibleBudget(t *testing.T) {
	p := wsRandomProblem(9, 10, 8, false)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := *p
	max := 0.0
	for i, u := range p.Loads {
		max += p.alpha(i) * u
	}
	bad.Budget = max * 2
	if _, err := WarmStart(sol, &bad, nil); err == nil {
		t.Fatal("infeasible budget accepted")
	}
	if _, err := WarmStart(nil, p, nil); err == nil {
		t.Fatal("nil solution accepted")
	}
	if _, err := WarmStartRates(make([]float64, 3), p, nil); err == nil {
		t.Fatal("wrong-length rates accepted")
	}
}

// TestWarmStartMatchesColdFixedPoint: a warm-started solve must land on
// the cold solve's fixed point — same objective within tolerance, same
// active monitor set — across budget and load perturbations.
func TestWarmStartMatchesColdFixedPoint(t *testing.T) {
	base := wsRandomProblem(23, 25, 20, false)
	prev, err := Solve(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(77)
	for trial := 0; trial < 40; trial++ {
		q := *base
		q.Loads = append([]float64(nil), base.Loads...)
		for i := range q.Loads {
			q.Loads[i] *= 0.8 + 0.4*r.Float64()
		}
		q.Budget = base.Budget * (0.5 + r.Float64())
		cold, err := Solve(&q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		warm0, err := WarmStart(prev, &q, nil)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := Solve(&q, Options{Initial: warm0})
		if err != nil {
			t.Fatal(err)
		}
		if !cold.Stats.Converged || !warm.Stats.Converged {
			t.Fatalf("trial %d: converged cold=%v warm=%v", trial, cold.Stats.Converged, warm.Stats.Converged)
		}
		if diff := math.Abs(cold.Objective - warm.Objective); diff > 1e-5*math.Max(1, math.Abs(cold.Objective)) {
			t.Fatalf("trial %d: objectives differ by %v (cold %v, warm %v)", trial, diff, cold.Objective, warm.Objective)
		}
		prev = warm
	}
}

// TestSetBudgetSetLoads: re-tuning a compiled solver must match a fresh
// compile of the re-tuned problem bit for bit, and invalid re-tunes must
// be rejected without corrupting the workspace.
func TestSetBudgetSetLoads(t *testing.T) {
	p := wsRandomProblem(31, 30, 25, false)
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(13)
	for trial := 0; trial < 20; trial++ {
		q := *p
		q.Loads = append([]float64(nil), p.Loads...)
		for i := range q.Loads {
			q.Loads[i] *= 0.5 + r.Float64()
		}
		q.Budget = p.Budget * (0.5 + r.Float64())
		// Loads first: the shared solver validates the current budget
		// against them, and p.Budget is feasible under ≥0.5× loads here.
		if err := s.SetLoads(q.Loads); err != nil {
			t.Fatal(err)
		}
		if err := s.SetBudget(q.Budget); err != nil {
			t.Fatal(err)
		}
		got, err := s.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewSolver(&q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Objective != want.Objective || got.Lambda != want.Lambda {
			t.Fatalf("trial %d: retuned solve differs from fresh compile (obj %v vs %v)", trial, got.Objective, want.Objective)
		}
		for i := range got.Rates {
			if got.Rates[i] != want.Rates[i] {
				t.Fatalf("trial %d: rate %d differs: %v vs %v", trial, i, got.Rates[i], want.Rates[i])
			}
		}
	}
	// Validation: bad budgets and loads are rejected.
	if err := s.SetBudget(-1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if err := s.SetBudget(math.Inf(1)); err == nil {
		t.Fatal("infinite budget accepted")
	}
	if err := s.SetLoads(make([]float64, 3)); err == nil {
		t.Fatal("wrong-length loads accepted")
	}
	bad := append([]float64(nil), s.Problem().Loads...)
	bad[0] = -5
	if err := s.SetLoads(bad); err == nil {
		t.Fatal("negative load accepted")
	}
	// The caller's Problem must never see the re-tuning.
	if p.Budget != wsRandomProblem(31, 30, 25, false).Budget {
		t.Fatal("caller's problem budget mutated")
	}
}

// TestSetBudgetInfeasible: a budget above Σ α_i·U_i under the CURRENT
// loads must be rejected, and accepted again once loads grow.
func TestSetBudgetInfeasible(t *testing.T) {
	p := wsRandomProblem(53, 10, 8, false)
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	max := 0.0
	for i, u := range p.Loads {
		max += p.alpha(i) * u
	}
	if err := s.SetBudget(max * 1.5); err == nil {
		t.Fatal("infeasible budget accepted")
	}
	grown := make([]float64, len(p.Loads))
	for i, u := range p.Loads {
		grown[i] = u * 2
	}
	if err := s.SetLoads(grown); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBudget(max * 1.5); err != nil {
		t.Fatalf("budget feasible under grown loads rejected: %v", err)
	}
	// And shrinking the loads back under a too-large budget must fail.
	if err := s.SetLoads(p.Loads); err == nil {
		t.Fatal("loads that strand the budget accepted")
	}
}

// TestWarmStartZeroAllocs: a continuation chain re-using the warm buffer
// must not allocate in steady state (the Solver lends its mask scratch).
func TestWarmStartZeroAllocs(t *testing.T) {
	p := wsRandomProblem(61, 30, 25, false)
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	var sol Solution
	if err := s.SolveInto(&sol, Options{}); err != nil {
		t.Fatal(err)
	}
	warm, err := s.WarmStart(&sol, nil)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := s.SetBudget(s.Problem().Budget * 0.999); err != nil {
			t.Fatal(err)
		}
		var werr error
		warm, werr = s.WarmStart(&sol, warm)
		if werr != nil {
			t.Fatal(werr)
		}
		if err := s.SolveInto(&sol, Options{Initial: warm}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state continuation allocates %v objects/op, want 0", allocs)
	}
}

// FuzzWarmStart: feasibility must hold for adversarial (prev, budget)
// combinations.
func FuzzWarmStart(f *testing.F) {
	f.Add(uint64(1), 0.5, 0.3)
	f.Add(uint64(2), 1.5, 0.9)
	f.Add(uint64(3), 0.001, 0.0)
	f.Fuzz(func(t *testing.T, seed uint64, budgetScale, fill float64) {
		if !(budgetScale > 0) || budgetScale > 10 || math.IsNaN(fill) {
			t.Skip()
		}
		p := wsRandomProblem(seed%100, 5+int(seed%20), 1+int(seed%15), false)
		max := 0.0
		for i, u := range p.Loads {
			max += p.alpha(i) * u
		}
		p.Budget = math.Min(p.Budget*budgetScale, max)
		if !(p.Budget > 0) {
			t.Skip()
		}
		r := rng.New(seed)
		prev := make([]float64, p.NumLinks())
		for i := range prev {
			prev[i] = fill * r.Float64() * p.alpha(i)
		}
		rates, err := WarmStartRates(prev, p, nil)
		if err != nil {
			t.Fatalf("projection failed: %v", err)
		}
		checkWarmFeasible(t, p, rates)
	})
}
