package core

import (
	"fmt"
	"math"
)

// This file provides utility functions beyond the paper's SRE utility,
// demonstrating the generality claim of Section III ("the method can be
// applied to a wide range of measurement tasks for which a utility
// function can be sought") and the ongoing-work direction of Section VI
// (utilities for anomaly detection and performance analysis). Every
// implementation satisfies the framework's contract: strictly
// increasing, strictly concave, twice continuously differentiable, with
// M(0) = 0.

// Detection is the anomaly-detection utility: the probability that at
// least one packet of an anomalous event of Size packets is sampled,
//
//	M(ρ) = 1 − (1−ρ)^Size.
//
// Detecting one packet of a scan, worm or DDoS flow is enough to flag
// the event for deeper inspection; maximizing ΣM therefore maximizes
// the expected number of detected events. The function is strictly
// increasing and strictly concave on [0, 1] for Size ≥ 2 and C^∞.
type Detection struct {
	// Size is the anomaly's footprint in packets within the interval.
	Size int
}

// NewDetection builds the detection utility for events of the given
// packet footprint. Size must be at least 2 (Size 1 gives a linear, not
// strictly concave, utility).
func NewDetection(size int) (*Detection, error) {
	if size < 2 {
		return nil, fmt.Errorf("core: detection event size %d, want >= 2", size)
	}
	return &Detection{Size: size}, nil
}

// MustDetection is NewDetection that panics on error.
func MustDetection(size int) *Detection {
	u, err := NewDetection(size)
	if err != nil {
		panic(err)
	}
	return u
}

// Value implements Utility.
//netsamp:noalloc
func (u *Detection) Value(rho float64) float64 {
	if rho <= 0 {
		return 0
	}
	if rho >= 1 {
		return 1
	}
	return 1 - math.Pow(1-rho, float64(u.Size))
}

// Deriv implements Utility.
//netsamp:noalloc
func (u *Detection) Deriv(rho float64) float64 {
	if rho < 0 {
		rho = 0
	}
	if rho >= 1 {
		return 0
	}
	m := float64(u.Size)
	return m * math.Pow(1-rho, m-1)
}

// Curv implements Utility.
//netsamp:noalloc
func (u *Detection) Curv(rho float64) float64 {
	if rho < 0 {
		rho = 0
	}
	if rho >= 1 {
		return 0
	}
	m := float64(u.Size)
	return -m * (m - 1) * math.Pow(1-rho, m-2)
}

// RateForUtility inverts the detection probability: the effective rate
// with 1−(1−ρ)^Size = m, for m ∈ (0, 1).
func (u *Detection) RateForUtility(m float64) (float64, error) {
	if !(m > 0 && m < 1) {
		return 0, fmt.Errorf("core: utility target %v out of (0, 1)", m)
	}
	return 1 - math.Pow(1-m, 1/float64(u.Size)), nil
}

// LogCoverage is a proportional-fairness utility,
//
//	M(ρ) = log(1 + ρ/c) / log(1 + 1/c),
//
// normalized so M(0) = 0 and M(1) = 1. The scale c sets where the
// marginal return flattens; small c rewards the first samples of every
// pair strongly, which suits coverage-style tasks ("sample something of
// everything") such as the flow-coverage objective of Suh et al. The
// log shape also yields proportionally fair allocations under a shared
// budget, the classic network-utility-maximization argument.
type LogCoverage struct {
	// C is the scale (knee) of the logarithm, > 0.
	C float64
	// norm caches 1/log(1+1/C).
	norm float64
}

// NewLogCoverage builds a log utility with scale c > 0.
func NewLogCoverage(c float64) (*LogCoverage, error) {
	if !(c > 0) || math.IsInf(c, 0) || math.IsNaN(c) {
		return nil, fmt.Errorf("core: log-coverage scale %v, want > 0", c)
	}
	return &LogCoverage{C: c, norm: 1 / math.Log1p(1/c)}, nil
}

// MustLogCoverage is NewLogCoverage that panics on error.
func MustLogCoverage(c float64) *LogCoverage {
	u, err := NewLogCoverage(c)
	if err != nil {
		panic(err)
	}
	return u
}

// Value implements Utility.
//netsamp:noalloc
func (u *LogCoverage) Value(rho float64) float64 {
	if rho <= 0 {
		return 0
	}
	return math.Log1p(rho/u.C) * u.norm
}

// Deriv implements Utility.
//netsamp:noalloc
func (u *LogCoverage) Deriv(rho float64) float64 {
	if rho < 0 {
		rho = 0
	}
	return u.norm / (u.C + rho)
}

// Curv implements Utility.
//netsamp:noalloc
func (u *LogCoverage) Curv(rho float64) float64 {
	if rho < 0 {
		rho = 0
	}
	d := u.C + rho
	return -u.norm / (d * d)
}

// RateForUtility inverts the log utility: the effective rate with
// M(ρ) = m, for m ∈ (0, 1).
func (u *LogCoverage) RateForUtility(m float64) (float64, error) {
	if !(m > 0 && m < 1) {
		return 0, fmt.Errorf("core: utility target %v out of (0, 1)", m)
	}
	return u.C * math.Expm1(m/u.norm), nil
}
