package core

import (
	"fmt"
	"math"
)

// Robust solving: the paper's allocation treats the link loads U_i as
// known, but an operating controller only has confidence intervals
// around them (internal/loadtrack). Solving against an edge of that
// envelope turns load uncertainty into an explicit operating posture:
//
//   - pessimistic (upper bounds): the budget constraint Σ p_i·U_i ≤ θ
//     is enforced against the largest loads consistent with the
//     envelope, so the TRUE sampled-packet spend stays within θ for any
//     loads inside it — the infrastructure never has to clip the plan;
//   - optimistic (lower bounds): the most aggressive plan the envelope
//     admits; the true spend may exceed θ, in exchange for rates closer
//     to the clairvoyant optimum when the estimates are right.
//
// SolveRobust reuses the compiled Solver workspace and the warm-start
// projection, so a controller's per-interval robust solve costs the
// same re-tune-plus-solve as the point-estimate path.

// RobustMode selects which edge of a load confidence envelope a robust
// solve optimizes against.
type RobustMode uint8

const (
	// RobustOff solves against the point estimates (the plain Solve path).
	RobustOff RobustMode = iota
	// RobustPessimistic solves against the upper load bounds.
	RobustPessimistic
	// RobustOptimistic solves against the lower load bounds.
	RobustOptimistic
)

// String returns the mode's CLI name.
func (m RobustMode) String() string {
	switch m {
	case RobustOff:
		return "off"
	case RobustPessimistic:
		return "pessimistic"
	case RobustOptimistic:
		return "optimistic"
	}
	return fmt.Sprintf("robust(%d)", uint8(m))
}

// RobustModeByName resolves "off", "pessimistic" or "optimistic".
func RobustModeByName(name string) (RobustMode, error) {
	switch name {
	case "off", "":
		return RobustOff, nil
	case "pessimistic":
		return RobustPessimistic, nil
	case "optimistic":
		return RobustOptimistic, nil
	}
	return RobustOff, fmt.Errorf("core: unknown robust mode %q (want off, pessimistic or optimistic)", name)
}

// SolveRobust re-tunes the solver onto the chosen edge of the
// [lower, upper] load envelope (per-link, dense problem order) and
// solves. RobustOff ignores the bounds and solves as-is. When the
// optimistic edge shrinks the maximum samplable rate Σ α_i·L_i below
// the configured budget, the budget is clamped to that maximum — the
// budget constraint would be inactive at the optimum anyway, and
// rejecting the interval would turn honest uncertainty into an outage.
// A non-nil opt.Initial is re-projected onto the re-tuned feasible set
// (the WarmStart machinery), so cross-interval warm starts survive the
// envelope substitution.
//
// The solver is left re-tuned to the envelope loads (and, when clamped,
// the reduced budget); re-tune with SetLoads/SetBudget — or, through a
// plan.Cache, the next Get — before reusing it for point solves.
func (s *Solver) SolveRobust(mode RobustMode, lower, upper []float64, opt Options) (*Solution, error) {
	if mode == RobustOff {
		return s.Solve(opt)
	}
	initial, err := s.retuneEnvelope(mode, lower, upper, opt.Initial)
	if err != nil {
		return nil, err
	}
	opt.Initial = initial
	return s.Solve(opt)
}

// SolveRobustApprox is SolveRobust routed through the Frank-Wolfe
// approximation path (control's deadline policy under a robust posture):
// the solver is re-tuned onto the chosen envelope edge exactly as in
// SolveRobust, then solved by SolveApprox. The same retune-state caveat
// applies.
func (s *Solver) SolveRobustApprox(mode RobustMode, lower, upper []float64, opt ApproxOptions) (*Solution, error) {
	if mode == RobustOff {
		return s.SolveApprox(opt)
	}
	initial, err := s.retuneEnvelope(mode, lower, upper, opt.Initial)
	if err != nil {
		return nil, err
	}
	opt.Initial = initial
	return s.SolveApprox(opt)
}

// retuneEnvelope validates the load envelope, re-tunes the solver onto
// the chosen edge (clamping the budget when the optimistic edge shrinks
// the maximum samplable rate below it), and re-projects the caller's
// warm start onto the re-tuned feasible set. It returns the (possibly
// replaced, possibly dropped) initial point.
func (s *Solver) retuneEnvelope(mode RobustMode, lower, upper, initial []float64) ([]float64, error) {
	if mode != RobustPessimistic && mode != RobustOptimistic {
		return nil, invalidInput("robust mode", -1, float64(mode), "want off, pessimistic or optimistic")
	}
	if len(lower) != s.n || len(upper) != s.n {
		return nil, fmt.Errorf("core: robust bounds of length %d/%d for %d links", len(lower), len(upper), s.n)
	}
	env := upper
	if mode == RobustOptimistic {
		env = lower
	}
	newMax := 0.0
	for i := range lower {
		if !(lower[i] > 0) || math.IsInf(lower[i], 0) {
			return nil, invalidInput("lower load bound of link", i, lower[i], "want a finite value > 0")
		}
		if math.IsNaN(upper[i]) || math.IsInf(upper[i], 0) || upper[i] < lower[i] {
			return nil, invalidInput("upper load bound of link", i, upper[i], "want a finite value >= the lower bound")
		}
		newMax += s.prob.alpha(i) * env[i]
	}
	// Apply (budget, loads) in the feasibility-safe order, exactly like
	// plan.Compiled.Retune: a shrinking budget first fits the old loads'
	// bound a fortiori; the target budget never grows here.
	theta := s.prob.Budget
	if theta > newMax {
		theta = newMax
		if err := s.SetBudget(theta); err != nil {
			return nil, err
		}
	}
	if err := s.SetLoads(env); err != nil {
		return nil, err
	}
	if initial != nil {
		warm, err := WarmStartRates(initial, s.Problem(), nil)
		if err != nil {
			initial = nil
		} else {
			initial = warm
		}
	}
	return initial, nil
}

// SolveRobust is the one-shot form: it compiles p and solves against
// the chosen envelope edge. For per-interval loops prefer the Solver
// method, which reuses the compiled workspace.
func SolveRobust(p *Problem, mode RobustMode, lower, upper []float64, opt Options) (*Solution, error) {
	if mode == RobustOff {
		return Solve(p, opt)
	}
	s, err := NewSolver(p)
	if err != nil {
		return nil, err
	}
	return s.SolveRobust(mode, lower, upper, opt)
}
