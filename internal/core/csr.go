package core

import (
	"fmt"
	"math"
)

// CSRProblem is a problem instance whose routing incidence arrives
// already in the solver's compiled CSR layout: pair k traverses
// Links[Start[k]:Start[k+1]], with optional parallel ECMP fractions.
// It exists for the scale tier — a 10⁶-pair instance never has to
// materialize 10⁶ Pair headers and per-pair link slices just so
// NewSolver can flatten them again. The topology generator emits this
// form directly.
type CSRProblem struct {
	// Loads is U_i > 0 for each candidate link.
	Loads []float64
	// MaxRate is α_i ∈ (0, 1] per link; nil means α_i = 1.
	MaxRate []float64
	// Budget is θ: Σ p_i·U_i = Budget at the optimum.
	Budget float64
	// Start/Links/Fracs are the CSR rows: len(Start) = nPairs+1,
	// Start[0] = 0, Start monotone, Start[nPairs] = len(Links). Fracs is
	// nil for single-path routing, else parallel to Links with entries in
	// (0, 1].
	Start []int32
	Links []int32
	Fracs []float64
	// Utilities holds one Utility per pair. Entries may be shared: a
	// scale instance with a handful of flow-size classes points many
	// pairs at the same *SRE.
	Utilities []Utility
	// Weights optionally holds per-pair objective weights (entries <= 0
	// mean 1); nil means every pair weighs 1.
	Weights []float64
	// Model selects the effective-rate model; nil means ModelLinear.
	Model RateModel
}

// NumPairs returns the number of CSR rows.
func (p *CSRProblem) NumPairs() int { return len(p.Start) - 1 }

// NewSolverCSR validates p and compiles it into a Solver workspace.
// The returned Solver behaves exactly like one built by NewSolver on the
// equivalent []Pair form — same kernels, bitwise-identical arithmetic —
// but takes ownership of the Start/Links/Fracs/Utilities slices instead
// of copying rows (the caller must not mutate them afterwards). Loads
// and MaxRate are cloned as usual, so re-tuning never touches caller
// memory. Solver.Problem().Pairs is nil for a CSR-compiled solver;
// the Pair-walking helpers (SolveMaxMin and friends) need NewSolver.
func NewSolverCSR(p *CSRProblem) (*Solver, error) {
	if p == nil {
		return nil, fmt.Errorf("core: nil CSR problem")
	}
	n := len(p.Loads)
	if n == 0 {
		return nil, fmt.Errorf("core: no candidate links")
	}
	if p.MaxRate != nil && len(p.MaxRate) != n {
		return nil, fmt.Errorf("core: MaxRate has %d entries for %d links", len(p.MaxRate), n)
	}
	prob := Problem{
		Loads:   append([]float64(nil), p.Loads...),
		MaxRate: p.MaxRate,
		Budget:  p.Budget,
		Model:   p.Model,
	}
	if prob.MaxRate != nil {
		prob.MaxRate = append([]float64(nil), p.MaxRate...)
	}
	maxSampled := 0.0
	for i, u := range prob.Loads {
		if !(u > 0) || math.IsInf(u, 0) {
			return nil, invalidInput("load of link", i, u, "want a finite value > 0")
		}
		a := prob.alpha(i)
		if !(a > 0 && a <= 1) {
			return nil, invalidInput("max rate of link", i, a, "want (0, 1]")
		}
		maxSampled += a * u
	}
	if !(p.Budget > 0) || math.IsInf(p.Budget, 0) {
		return nil, invalidInput("budget", -1, p.Budget, "want a finite value > 0")
	}
	if p.Budget > maxSampled*(1+1e-12) {
		return nil, invalidInput("budget", -1, p.Budget,
			fmt.Sprintf("exceeds maximum samplable rate %v (infeasible)", maxSampled))
	}
	nPairs := len(p.Start) - 1
	if nPairs < 1 {
		return nil, fmt.Errorf("core: no OD pairs (Start needs at least 2 entries)")
	}
	if p.Start[0] != 0 || int(p.Start[nPairs]) != len(p.Links) {
		return nil, fmt.Errorf("core: CSR Start must run 0..len(Links)=%d, got [%d..%d]",
			len(p.Links), p.Start[0], p.Start[nPairs])
	}
	if len(p.Utilities) != nPairs {
		return nil, fmt.Errorf("core: %d utilities for %d pairs", len(p.Utilities), nPairs)
	}
	if p.Weights != nil && len(p.Weights) != nPairs {
		return nil, fmt.Errorf("core: %d weights for %d pairs", len(p.Weights), nPairs)
	}
	if p.Fracs != nil {
		if len(p.Fracs) != len(p.Links) {
			return nil, fmt.Errorf("core: %d fractions for %d CSR entries", len(p.Fracs), len(p.Links))
		}
		if !prob.model().SupportsFracs() {
			return nil, fmt.Errorf("core: the %s rate model requires single-path routing (no fractions)", prob.model().Name())
		}
	}
	// Stamp-array duplicate scan, exactly like Problem.Validate but over
	// the CSR rows: seen[l] holds 1 + the index of the last pair that
	// referenced link l.
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	for k := 0; k < nPairs; k++ {
		lo, hi := p.Start[k], p.Start[k+1]
		if hi < lo {
			return nil, fmt.Errorf("core: CSR Start not monotone at pair %d (%d > %d)", k, lo, hi)
		}
		if hi == lo {
			return nil, fmt.Errorf("core: pair %d traverses no candidate link", k)
		}
		if p.Utilities[k] == nil {
			return nil, fmt.Errorf("core: pair %d has no utility", k)
		}
		if p.Weights != nil {
			if w := p.Weights[k]; math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, invalidInput(fmt.Sprintf("pair %d weight", k), -1, w, "want a finite value")
			}
		}
		for j := lo; j < hi; j++ {
			l := p.Links[j]
			if l < 0 || int(l) >= n {
				return nil, fmt.Errorf("core: pair %d references link %d out of range [0,%d)", k, l, n)
			}
			if seen[l] == int32(k) {
				return nil, fmt.Errorf("core: pair %d references link %d twice", k, l)
			}
			seen[l] = int32(k)
			if p.Fracs != nil {
				if f := p.Fracs[j]; !(f > 0 && f <= 1) {
					return nil, invalidInput(fmt.Sprintf("pair %d fraction", k), int(j-lo), f, "want (0, 1]")
				}
			}
		}
	}
	s := &Solver{
		prob:   prob,
		n:      n,
		nPairs: nPairs,
		start:  p.Start,
		links:  p.Links,
		fracs:  p.Fracs,
		utils:  p.Utilities,
		wts:    make([]float64, nPairs),
	}
	for k := 0; k < nPairs; k++ {
		w := 1.0
		if p.Weights != nil && p.Weights[k] > 0 {
			w = p.Weights[k]
		}
		s.wts[k] = w
	}
	s.baseWts = append([]float64(nil), s.wts...)
	s.initScratch()
	return s, nil
}

// NNZ reports the number of (pair, link) incidences in the compiled
// problem — the per-sweep work of the solver's gradient and line-search
// kernels, and the size input of control's deadline cost model.
func (s *Solver) NNZ() int { return len(s.links) }

// NumPairs reports the number of compiled OD pairs.
func (s *Solver) NumPairs() int { return s.nPairs }

// NumLinks reports the candidate monitor set size.
func (s *Solver) NumLinks() int { return s.n }
