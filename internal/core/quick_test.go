package core

import (
	"math"
	"testing"
	"testing/quick"
)

// Property (testing/quick): for any valid c, the SRE utility satisfies
// the framework contract at randomly drawn rates.
func TestQuickSREContract(t *testing.T) {
	f := func(rawC, rawRho uint32) bool {
		// c ∈ (1e-8, 1], rho ∈ (0, 1).
		c := 1e-8 + float64(rawC)/float64(math.MaxUint32)*(1-1e-8)
		rho := (float64(rawRho) + 1) / (float64(math.MaxUint32) + 2)
		u, err := NewSRE(c)
		if err != nil {
			return false
		}
		v := u.Value(rho)
		if math.IsNaN(v) || v < 0 {
			return false
		}
		// For c ≤ 1/2 the stitch point x₀ = 3c/(1+c) lies below 1 and M
		// stays within [0, 1]; for larger c (OD pairs of only a couple
		// of packets) the quadratic branch covers all of [0, 1] and M(1)
		// may slightly exceed 1 — harmless, since the optimizer needs
		// only monotonicity and concavity.
		if c <= 0.5 && v > 1+1e-12 {
			return false
		}
		// Monotone: value at a slightly larger rho is no smaller.
		if u.Value(math.Min(1, rho*1.01)) < v-1e-12 {
			return false
		}
		// Derivative positive, curvature negative.
		return u.Deriv(rho) > 0 && u.Curv(rho) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the SRE inverse round-trips for random (c, m).
func TestQuickSREInverseRoundTrip(t *testing.T) {
	f := func(rawC, rawM uint32) bool {
		c := 1e-7 + float64(rawC)/float64(math.MaxUint32)*0.5
		m := 0.001 + float64(rawM)/float64(math.MaxUint32)*0.998
		u, err := NewSRE(c)
		if err != nil {
			return false
		}
		rho, err := u.RateForUtility(m)
		if err != nil {
			return false
		}
		return math.Abs(u.Value(rho)-m) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the waterfill initial point is always feasible — in bounds
// and exactly on the budget hyperplane — for random problems.
func TestQuickWaterfillFeasible(t *testing.T) {
	f := func(seeds [6]uint16, budgetFrac uint8) bool {
		n := len(seeds)
		p := &Problem{Loads: make([]float64, n)}
		total := 0.0
		for i, s := range seeds {
			p.Loads[i] = 10 + float64(s)
			total += p.Loads[i]
		}
		frac := 0.001 + float64(budgetFrac)/256*0.9
		p.Budget = total * frac
		p.Pairs = []Pair{{Name: "a", Links: []int{0}, Utility: MustSRE(0.001)}}
		rates, err := initialPoint(p, Options{})
		if err != nil {
			return false
		}
		spent := 0.0
		for i, r := range rates {
			if r < -1e-12 || r > 1+1e-9 {
				return false
			}
			spent += r * p.Loads[i]
		}
		return math.Abs(spent-p.Budget) <= 1e-6*math.Max(1, p.Budget)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Solve never returns an infeasible point, whatever the
// (valid) instance.
func TestQuickSolveFeasibility(t *testing.T) {
	f := func(loads [4]uint16, budgetFrac, cScale uint8) bool {
		n := len(loads)
		p := &Problem{Loads: make([]float64, n)}
		total := 0.0
		for i, l := range loads {
			p.Loads[i] = 20 + float64(l)
			total += p.Loads[i]
		}
		p.Budget = total * (0.0005 + float64(budgetFrac)/256*0.5)
		c := math.Pow(10, -5+4*float64(cScale)/256)
		for k := 0; k < n; k++ {
			p.Pairs = append(p.Pairs, Pair{Name: "k", Links: []int{k}, Utility: MustSRE(c)})
		}
		sol, err := Solve(p, Options{})
		if err != nil {
			return false
		}
		spent := 0.0
		for i, r := range sol.Rates {
			if r < -1e-12 || r > 1+1e-9 {
				return false
			}
			spent += r * p.Loads[i]
		}
		return math.Abs(spent-p.Budget) <= 1e-6*math.Max(1, p.Budget)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
