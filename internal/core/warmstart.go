package core

import (
	"fmt"
	"math"
)

// WarmStart projects a previous optimum onto the feasible set of p and
// returns a budget-feasible starting point for Options.Initial. This is
// the continuation primitive of the evaluation and control pipelines:
// the paper's θ-sweep (Figure 2) and its successive-interval
// re-optimization (Section V) solve families of closely related
// instances, and starting each solve from the previous fixed point —
// instead of the cold waterfilling point — cuts the iteration count to
// the few steps the active set actually moves.
//
// The projection is: clamp prev's rates into the box [0, α_i], rescale
// into the budget hyperplane when the point overspends (a pure scaling
// stays inside the box), and waterfill any deficit over the remaining
// per-link headroom when it underspends. The result always satisfies
// Σ p_i·U_i = Budget within the tolerance Options.Initial requires, for
// any prev — including rate vectors that were optimal under different
// loads, a different budget, or no problem at all.
//
// buf is an optional destination reused when its capacity suffices; the
// returned slice aliases it in that case.
func WarmStart(prev *Solution, p *Problem, buf []float64) ([]float64, error) {
	if prev == nil {
		return nil, fmt.Errorf("core: warm start from nil solution")
	}
	return WarmStartRates(prev.Rates, p, buf)
}

// WarmStartRates is WarmStart for a bare rate vector (the controller
// keeps last-known-good rates per link, not whole Solutions).
func WarmStartRates(prevRates []float64, p *Problem, buf []float64) ([]float64, error) {
	n := p.NumLinks()
	return warmStartRates(prevRates, p, buf, make([]bool, n), make([]bool, n))
}

// warmStartRates is the projection with caller-supplied mask scratch
// (Solver.WarmStart lends its own, keeping continuation chains
// allocation-free in steady state).
//netsamp:noalloc
func warmStartRates(prevRates []float64, p *Problem, buf []float64, lower, upper []bool) ([]float64, error) {
	n := p.NumLinks()
	if len(prevRates) != n {
		return nil, fmt.Errorf("core: warm start has %d rates for %d links", len(prevRates), n)
	}
	if !(p.Budget > 0) || math.IsInf(p.Budget, 0) {
		return nil, invalidInput("budget", -1, p.Budget, "want a finite value > 0")
	}
	rates := resizeFloats(buf, n)

	// Clamp into the box; non-finite or negative entries drop to zero so
	// a corrupted previous plan degrades to (partial) waterfilling
	// instead of poisoning the start point.
	spend, maxSampled := 0.0, 0.0
	for i := 0; i < n; i++ {
		r := prevRates[i]
		if math.IsNaN(r) || r < 0 {
			r = 0
		}
		if a := p.alpha(i); r > a {
			r = a
		}
		rates[i] = r
		spend += r * p.Loads[i]
		maxSampled += p.alpha(i) * p.Loads[i]
	}
	if p.Budget > maxSampled*(1+1e-12) {
		return nil, invalidInput("budget", -1, p.Budget,
			fmt.Sprintf("exceeds maximum samplable rate %v (infeasible)", maxSampled))
	}

	switch {
	case spend > p.Budget:
		// Overspend: rescale onto the hyperplane. Scaling by a factor in
		// (0, 1) keeps every coordinate inside [0, α_i].
		scale := p.Budget / spend
		for i := range rates {
			rates[i] *= scale
		}
	case spend < p.Budget:
		// Deficit: waterfill the headroom — but over the links the
		// previous plan already uses first. Keeping prev's zeros at zero
		// preserves the active set the solver inherits from the start
		// point (syncActive pins exact zeros); lifting every off monitor
		// would force the solver to re-pin them one activation per
		// iteration, which is most of a cold solve. Off links are only
		// raised when the active links alone cannot absorb the deficit.
		deficit := p.Budget - spend
		interior := 0.0
		for i := 0; i < n; i++ {
			if rates[i] > 0 {
				interior += (p.alpha(i) - rates[i]) * p.Loads[i]
			}
		}
		if interior >= deficit {
			waterfill(p, rates, deficit, true)
		} else {
			for i := 0; i < n; i++ {
				if rates[i] > 0 {
					rates[i] = p.alpha(i)
				}
			}
			waterfill(p, rates, deficit-interior, false)
		}
	}
	// Exact equality: absorb the scaling/bisection residual along the
	// links in use — zeros stay exactly zero so the solver inherits the
	// previous active set.
	for i := 0; i < n; i++ {
		lower[i] = rates[i] == 0 //netsamp:floateq-ok exact-zero pins inherit the previous active set
		upper[i] = false
	}
	fixBudget(p, rates, lower, upper)
	return rates, nil
}

// waterfill raises rates to spend `deficit` more sampled packets: find τ
// with Σ min((α_i − p_i)·U_i, τ) = deficit over the included links
// (monotone in τ: bisect), then raise each by min(α_i − p_i, τ/U_i).
// onlyPositive restricts the fill to links already in use.
//netsamp:noalloc
func waterfill(p *Problem, rates []float64, deficit float64, onlyPositive bool) {
	n := p.NumLinks()
	include := func(i int) bool { return !onlyPositive || rates[i] > 0 } //netsamp:alloc-ok captures only stack values; does not escape, so it stays on the stack
	hi := 0.0
	for i := 0; i < n; i++ {
		if include(i) {
			if v := (p.alpha(i) - rates[i]) * p.Loads[i]; v > hi {
				hi = v
			}
		}
	}
	lo := 0.0
	// 64 halvings exhaust a double's precision; fixBudget absorbs the
	// remaining residual exactly.
	for iter := 0; iter < 64; iter++ {
		mid := (lo + hi) / 2
		total := 0.0
		for i := 0; i < n; i++ {
			if include(i) {
				total += math.Min((p.alpha(i)-rates[i])*p.Loads[i], mid)
			}
		}
		if total < deficit {
			lo = mid
		} else {
			hi = mid
		}
	}
	tau := (lo + hi) / 2
	for i := 0; i < n; i++ {
		if include(i) {
			rates[i] = math.Min(p.alpha(i), rates[i]+tau/p.Loads[i])
		}
	}
}

// WarmStart projects prev onto the Solver's current feasible set —
// after any SetBudget/SetLoads re-tuning — so the result can be passed
// as Options.Initial to the next Solve on this workspace. The Solver's
// mask scratch serves the projection (it is rebuilt by the next solve),
// so a continuation chain reusing buf allocates nothing.
//netsamp:noalloc
func (s *Solver) WarmStart(prev *Solution, buf []float64) ([]float64, error) {
	if prev == nil {
		return nil, fmt.Errorf("core: warm start from nil solution")
	}
	return warmStartRates(prev.Rates, s.p, buf, s.lower, s.upper)
}
