package core

import (
	"math"
	"testing"

	"netsamp/internal/rng"
)

// feasibility asserts the solution satisfies all constraints of p.
func feasibility(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	total := 0.0
	for i, r := range sol.Rates {
		if r < -1e-12 {
			t.Fatalf("rate[%d] = %v < 0", i, r)
		}
		if a := p.alpha(i); r > a+1e-9 {
			t.Fatalf("rate[%d] = %v > α=%v", i, r, a)
		}
		total += r * p.Loads[i]
	}
	if math.Abs(total-p.Budget) > 1e-6*math.Max(1, p.Budget) {
		t.Fatalf("budget: Σ p·U = %v, want %v", total, p.Budget)
	}
}

// kktResidual asserts the KKT stationarity and sign conditions.
func kktCheck(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	n := p.NumLinks()
	g := make([]float64, n)
	p.Gradient(sol.Rates, g)
	scale := 1 + normInf(g)
	for i := 0; i < n; i++ {
		interior := sol.Rates[i] > 1e-9 && sol.Rates[i] < p.alpha(i)-1e-9
		resid := g[i] - sol.Lambda*p.Loads[i]
		if interior && math.Abs(resid)/scale > 1e-6 {
			t.Fatalf("stationarity violated at free link %d: residual %v", i, resid)
		}
		if sol.Rates[i] <= 1e-9 && resid/scale > 1e-6 {
			t.Fatalf("lower-bound multiplier negative at link %d: %v", i, -resid)
		}
		if sol.Rates[i] >= p.alpha(i)-1e-9 && -resid/scale > 1e-6 {
			t.Fatalf("upper-bound multiplier negative at link %d: %v", i, resid)
		}
	}
}

func TestSolveSingleLink(t *testing.T) {
	p := &Problem{
		Loads:  []float64{1000},
		Budget: 5, // p = 0.005
		Pairs:  []Pair{{Name: "k", Links: []int{0}, Utility: MustSRE(0.002)}},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Converged {
		t.Fatal("did not converge")
	}
	feasibility(t, p, sol)
	if math.Abs(sol.Rates[0]-0.005) > 1e-9 {
		t.Fatalf("rate = %v, want 0.005", sol.Rates[0])
	}
	if math.Abs(sol.Rho[0]-0.005) > 1e-9 {
		t.Fatalf("rho = %v", sol.Rho[0])
	}
}

func TestSolveSymmetricTwoLinks(t *testing.T) {
	// Two pairs on two disjoint identical links must get equal rates.
	p := &Problem{
		Loads:  []float64{1000, 1000},
		Budget: 10,
		Pairs: []Pair{
			{Name: "a", Links: []int{0}, Utility: MustSRE(0.002)},
			{Name: "b", Links: []int{1}, Utility: MustSRE(0.002)},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feasibility(t, p, sol)
	kktCheck(t, p, sol)
	if math.Abs(sol.Rates[0]-sol.Rates[1]) > 1e-9 {
		t.Fatalf("asymmetric rates on a symmetric problem: %v", sol.Rates)
	}
	if math.Abs(sol.Rates[0]-0.005) > 1e-9 {
		t.Fatalf("rates = %v, want 0.005 each", sol.Rates)
	}
}

func TestSolveEqualizesMarginalUtilityPerCost(t *testing.T) {
	// Two disjoint links with different loads: at an interior optimum,
	// M'(ρ_k)/U_i must be equal across active links (KKT stationarity).
	// Budget is large enough that both effective rates land on the
	// analytic branch (ρ > x₀), where M'(ρ) = c/ρ² gives the closed-form
	// ratio p₁/p₂ = √(U₂/U₁).
	p := &Problem{
		Loads:  []float64{500, 4000},
		Budget: 40,
		Pairs: []Pair{
			{Name: "small", Links: []int{0}, Utility: MustSRE(0.002)},
			{Name: "large", Links: []int{1}, Utility: MustSRE(0.002)},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feasibility(t, p, sol)
	kktCheck(t, p, sol)
	u := MustSRE(0.002)
	m0 := u.Deriv(sol.Rho[0]) / p.Loads[0]
	m1 := u.Deriv(sol.Rho[1]) / p.Loads[1]
	if math.Abs(m0-m1)/m0 > 1e-5 {
		t.Fatalf("marginal utility per cost not equalized: %v vs %v", m0, m1)
	}
	// The lightly-loaded link must be sampled at the higher rate
	// (closed form: p_i ∝ 1/√U_i on the analytic branch).
	if sol.Rates[0] <= sol.Rates[1] {
		t.Fatalf("light link sampled no faster than heavy: %v", sol.Rates)
	}
	wantRatio := math.Sqrt(p.Loads[1] / p.Loads[0])
	gotRatio := sol.Rates[0] / sol.Rates[1]
	if math.Abs(gotRatio-wantRatio)/wantRatio > 1e-4 {
		t.Fatalf("rate ratio = %v, want √(U2/U1) = %v", gotRatio, wantRatio)
	}
}

func TestSolveDeactivatesUselessLink(t *testing.T) {
	// Link 2 carries no OD pair of interest: its optimal rate is zero
	// (the monitor stays off), even though the waterfill start gives it a
	// positive rate.
	p := &Problem{
		Loads:  []float64{1000, 1000, 1000},
		Budget: 10,
		Pairs: []Pair{
			{Name: "a", Links: []int{0}, Utility: MustSRE(0.002)},
			{Name: "b", Links: []int{1}, Utility: MustSRE(0.002)},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feasibility(t, p, sol)
	kktCheck(t, p, sol)
	if sol.Rates[2] != 0 {
		t.Fatalf("useless link sampled at %v", sol.Rates[2])
	}
	active := sol.ActiveMonitors()
	if len(active) != 2 || active[0] != 0 || active[1] != 1 {
		t.Fatalf("ActiveMonitors = %v", active)
	}
}

func TestSolveSharedLinkPreferred(t *testing.T) {
	// Both pairs traverse link 0; only pair b traverses link 1. All loads
	// equal. Sampling link 0 helps both pairs, so it must get the bulk of
	// the budget.
	p := &Problem{
		Loads:  []float64{1000, 1000},
		Budget: 6,
		Pairs: []Pair{
			{Name: "a", Links: []int{0}, Utility: MustSRE(0.002)},
			{Name: "b", Links: []int{0, 1}, Utility: MustSRE(0.002)},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feasibility(t, p, sol)
	kktCheck(t, p, sol)
	if sol.Rates[0] <= sol.Rates[1] {
		t.Fatalf("shared link not preferred: %v", sol.Rates)
	}
}

func TestSolveRespectsRateCap(t *testing.T) {
	p := &Problem{
		Loads:   []float64{100, 10000},
		MaxRate: []float64{0.01, 1},
		Budget:  50,
		Pairs: []Pair{
			{Name: "a", Links: []int{0}, Utility: MustSRE(0.002)},
			{Name: "b", Links: []int{1}, Utility: MustSRE(0.002)},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feasibility(t, p, sol)
	kktCheck(t, p, sol)
	// Link 0 would get a far higher rate unconstrained; the cap must bind.
	if math.Abs(sol.Rates[0]-0.01) > 1e-9 {
		t.Fatalf("cap not binding: rate = %v", sol.Rates[0])
	}
}

func TestSolveUsesFullBudget(t *testing.T) {
	p := &Problem{
		Loads:  []float64{1000, 2000, 500},
		Budget: 25,
		Pairs: []Pair{
			{Name: "a", Links: []int{0, 1}, Utility: MustSRE(0.001)},
			{Name: "b", Links: []int{2}, Utility: MustSRE(0.005)},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feasibility(t, p, sol)
	if got := sol.SampledRate(p.Loads); math.Abs(got-25) > 1e-6 {
		t.Fatalf("SampledRate = %v", got)
	}
}

func TestSolveObjectiveMonotoneInBudget(t *testing.T) {
	mk := func(budget float64) *Problem {
		return &Problem{
			Loads:  []float64{1000, 3000, 700},
			Budget: budget,
			Pairs: []Pair{
				{Name: "a", Links: []int{0, 1}, Utility: MustSRE(0.002)},
				{Name: "b", Links: []int{1, 2}, Utility: MustSRE(0.001)},
				{Name: "c", Links: []int{2}, Utility: MustSRE(0.004)},
			},
		}
	}
	prev := math.Inf(-1)
	for _, budget := range []float64{1, 5, 20, 80, 300} {
		sol, err := Solve(mk(budget), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Objective <= prev {
			t.Fatalf("objective not increasing in budget: %v at θ=%v after %v", sol.Objective, budget, prev)
		}
		prev = sol.Objective
	}
}

func TestSolveDeterministic(t *testing.T) {
	p := &Problem{
		Loads:  []float64{900, 1100, 4000, 60},
		Budget: 30,
		Pairs: []Pair{
			{Name: "a", Links: []int{0, 2}, Utility: MustSRE(0.002)},
			{Name: "b", Links: []int{1, 2}, Utility: MustSRE(0.0008)},
			{Name: "c", Links: []int{3}, Utility: MustSRE(0.01)},
		},
	}
	s1, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1.Rates {
		if s1.Rates[i] != s2.Rates[i] {
			t.Fatalf("nondeterministic rates at %d: %v vs %v", i, s1.Rates[i], s2.Rates[i])
		}
	}
}

func TestSolveFromCustomInitialPoint(t *testing.T) {
	p := &Problem{
		Loads:  []float64{1000, 1000},
		Budget: 10,
		Pairs: []Pair{
			{Name: "a", Links: []int{0}, Utility: MustSRE(0.002)},
			{Name: "b", Links: []int{1}, Utility: MustSRE(0.002)},
		},
	}
	// Lopsided but feasible start; the optimum must still be symmetric.
	sol, err := Solve(p, Options{Initial: []float64{0.009, 0.001}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Rates[0]-sol.Rates[1]) > 1e-7 {
		t.Fatalf("rates = %v, want symmetric", sol.Rates)
	}
}

func TestSolveRejectsBadInitial(t *testing.T) {
	p := &Problem{
		Loads:  []float64{1000},
		Budget: 5,
		Pairs:  []Pair{{Name: "a", Links: []int{0}, Utility: MustSRE(0.002)}},
	}
	bad := [][]float64{
		{0.004},        // wrong budget
		{-0.001},       // negative
		{1.5},          // above cap
		{0.005, 0.005}, // wrong length
	}
	for i, init := range bad {
		if _, err := Solve(p, Options{Initial: init}); err == nil {
			t.Errorf("bad initial %d accepted", i)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	good := func() *Problem {
		return &Problem{
			Loads:  []float64{100},
			Budget: 1,
			Pairs:  []Pair{{Name: "a", Links: []int{0}, Utility: MustSRE(0.01)}},
		}
	}
	cases := []func(p *Problem){
		func(p *Problem) { p.Loads = nil },
		func(p *Problem) { p.Loads = []float64{0} },
		func(p *Problem) { p.Loads = []float64{math.NaN()} },
		func(p *Problem) { p.Budget = 0 },
		func(p *Problem) { p.Budget = 1e9 }, // infeasible
		func(p *Problem) { p.MaxRate = []float64{2} },
		func(p *Problem) { p.MaxRate = []float64{0.5, 0.5} },
		func(p *Problem) { p.Pairs = nil },
		func(p *Problem) { p.Pairs[0].Utility = nil },
		func(p *Problem) { p.Pairs[0].Links = nil },
		func(p *Problem) { p.Pairs[0].Links = []int{3} },
		func(p *Problem) { p.Pairs[0].Links = []int{0, 0} },
	}
	for i, mutate := range cases {
		p := good()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("good problem rejected: %v", err)
	}
}

// TestSolveRandomProblemsKKT is the central property test: on random
// instances the solver must return a feasible point, and whenever it
// claims convergence the KKT conditions must hold.
func TestSolveRandomProblemsKKT(t *testing.T) {
	r := rng.New(2024)
	converged := 0
	const trials = 120
	for trial := 0; trial < trials; trial++ {
		nLinks := 2 + r.Intn(12)
		nPairs := 1 + r.Intn(8)
		p := &Problem{
			Loads:  make([]float64, nLinks),
			Budget: 0,
		}
		maxSampled := 0.0
		for i := range p.Loads {
			p.Loads[i] = 20 + 50000*r.Float64()
			maxSampled += p.Loads[i]
		}
		p.Budget = maxSampled * (0.0005 + 0.01*r.Float64())
		for k := 0; k < nPairs; k++ {
			maxHops := 4
			if nLinks < maxHops {
				maxHops = nLinks
			}
			nHops := 1 + r.Intn(maxHops)
			perm := r.Perm(nLinks)
			links := perm[:nHops]
			c := math.Pow(10, -4+3*r.Float64()) // 1e-4 … 1e-1
			p.Pairs = append(p.Pairs, Pair{
				Name: "pair", Links: append([]int(nil), links...), Utility: MustSRE(c),
			})
		}
		sol, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		feasibility(t, p, sol)
		if sol.Stats.Converged {
			converged++
			kktCheck(t, p, sol)
		}
		// The solution must beat (or match) the waterfill start.
		init, err := initialPoint(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Objective < p.Objective(init)-1e-9 {
			t.Fatalf("trial %d: objective %v below initial %v", trial, sol.Objective, p.Objective(init))
		}
	}
	// The paper reports 98.6%% convergence within 2000 iterations; our
	// synthetic instances are easier, but require at least 90%%.
	if float64(converged)/trials < 0.9 {
		t.Fatalf("only %d/%d trials converged", converged, trials)
	}
}

func TestSolveExactModelAgreesAtLowRates(t *testing.T) {
	mk := func(exact bool) *Problem {
		return &Problem{
			Loads:  []float64{30000, 8000, 2000, 500},
			Budget: 60,
			Model:  modelForExact(exact),
			Pairs: []Pair{
				{Name: "a", Links: []int{0, 1}, Utility: MustSRE(0.002)},
				{Name: "b", Links: []int{1, 2}, Utility: MustSRE(0.001)},
				{Name: "c", Links: []int{3}, Utility: MustSRE(0.003)},
			},
		}
	}
	approx, err := Solve(mk(false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Solve(mk(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// At optimal rates (well below 1%) the two models must agree closely
	// (paper Section IV-B justifies approximation (7) in this regime).
	for i := range approx.Rates {
		diff := math.Abs(approx.Rates[i] - exact.Rates[i])
		if diff > 0.02*math.Max(approx.Rates[i], 1e-4) {
			t.Fatalf("rate %d: approx %v vs exact %v", i, approx.Rates[i], exact.Rates[i])
		}
	}
}

func TestSolveAblationsReachSameOptimum(t *testing.T) {
	p := &Problem{
		Loads:  []float64{900, 1100, 4000, 60, 777},
		Budget: 35,
		Pairs: []Pair{
			{Name: "a", Links: []int{0, 2}, Utility: MustSRE(0.002)},
			{Name: "b", Links: []int{1, 2}, Utility: MustSRE(0.0008)},
			{Name: "c", Links: []int{3}, Utility: MustSRE(0.01)},
			{Name: "d", Links: []int{4, 0}, Utility: MustSRE(0.004)},
		},
	}
	base, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	noPR, err := Solve(p, Options{DisablePolakRibiere: true})
	if err != nil {
		t.Fatal(err)
	}
	noNewton, err := Solve(p, Options{DisableNewton: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, alt := range []*Solution{noPR, noNewton} {
		if math.Abs(alt.Objective-base.Objective) > 1e-6*math.Abs(base.Objective) {
			t.Fatalf("ablation reached different optimum: %v vs %v", alt.Objective, base.Objective)
		}
	}
}

func TestBudgetPerInterval(t *testing.T) {
	// The paper's setting: θ = 100,000 packets per 5-minute interval.
	if got := BudgetPerInterval(100000, 300); math.Abs(got-333.3333333333) > 1e-6 {
		t.Fatalf("BudgetPerInterval = %v", got)
	}
}

func TestSolveMaxMinLiftsWorstPair(t *testing.T) {
	// Asymmetric problem: under sum-of-utilities the cheap pair wins; the
	// max-min solution must lift the worst pair's utility.
	p := &Problem{
		Loads:  []float64{100, 20000},
		Budget: 30,
		Pairs: []Pair{
			{Name: "cheap", Links: []int{0}, Utility: MustSRE(0.002)},
			{Name: "costly", Links: []int{1}, Utility: MustSRE(0.002)},
		},
	}
	sum, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mm, err := SolveMaxMin(p, MaxMinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	minOf := func(u []float64) float64 {
		m := math.Inf(1)
		for _, v := range u {
			m = math.Min(m, v)
		}
		return m
	}
	if minOf(mm.Utilities) < minOf(sum.Utilities)-1e-9 {
		t.Fatalf("max-min worst utility %v below sum-objective worst %v",
			minOf(mm.Utilities), minOf(sum.Utilities))
	}
	// Feasibility of the max-min solution.
	feasibility(t, p, mm)
	// Analytic max-min optimum: with one disjoint link per pair and equal
	// utilities, the worst pair is maximized by equal rates,
	// p = θ/(U₁+U₂); the achieved minimum must come within 5% of it.
	u := MustSRE(0.002)
	optMin := u.Value(p.Budget / (p.Loads[0] + p.Loads[1]))
	if minOf(mm.Utilities) < 0.95*optMin {
		t.Fatalf("max-min worst utility %v, analytic optimum %v", minOf(mm.Utilities), optMin)
	}
}

func TestPairWeightSkewsAllocation(t *testing.T) {
	mk := func(w float64) *Problem {
		return &Problem{
			Loads:  []float64{1000, 1000},
			Budget: 10,
			Pairs: []Pair{
				{Name: "a", Links: []int{0}, Utility: MustSRE(0.002), Weight: w},
				{Name: "b", Links: []int{1}, Utility: MustSRE(0.002)},
			},
		}
	}
	even, err := Solve(mk(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := Solve(mk(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(skewed.Rates[0] > even.Rates[0]) {
		t.Fatalf("weight did not raise pair-a rate: %v vs %v", skewed.Rates[0], even.Rates[0])
	}
}

func BenchmarkSolveMedium(b *testing.B) {
	r := rng.New(7)
	nLinks, nPairs := 40, 25
	p := &Problem{Loads: make([]float64, nLinks)}
	maxSampled := 0.0
	for i := range p.Loads {
		p.Loads[i] = 100 + 40000*r.Float64()
		maxSampled += p.Loads[i]
	}
	p.Budget = maxSampled * 0.002
	for k := 0; k < nPairs; k++ {
		perm := r.Perm(nLinks)
		p.Pairs = append(p.Pairs, Pair{
			Name: "k", Links: append([]int(nil), perm[:1+r.Intn(4)]...), Utility: MustSRE(0.002),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLambdaIsMarginalValueOfCapacity validates the economic reading of
// the budget multiplier (the paper's Lagrangian, equation (6)): at the
// optimum, λ equals dF*/dθ — the utility gained per extra unit of
// sampled-packet capacity. Finite differences over θ must match the
// reported multiplier.
func TestLambdaIsMarginalValueOfCapacity(t *testing.T) {
	mk := func(budget float64) *Problem {
		return &Problem{
			Loads:  []float64{30000, 8000, 2000, 500},
			Budget: budget,
			Pairs: []Pair{
				{Name: "a", Links: []int{0, 1}, Utility: MustSRE(0.0001)},
				{Name: "b", Links: []int{1, 2}, Utility: MustSRE(0.001)},
				{Name: "c", Links: []int{3}, Utility: MustSRE(0.0002)},
			},
		}
	}
	for _, theta := range []float64{20, 100, 400} {
		sol, err := Solve(mk(theta), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Stats.Converged {
			t.Fatalf("θ=%v did not converge", theta)
		}
		h := theta * 0.001
		up, err := Solve(mk(theta+h), Options{})
		if err != nil {
			t.Fatal(err)
		}
		dn, err := Solve(mk(theta-h), Options{})
		if err != nil {
			t.Fatal(err)
		}
		fd := (up.Objective - dn.Objective) / (2 * h)
		if math.Abs(fd-sol.Lambda)/math.Max(sol.Lambda, 1e-12) > 0.02 {
			t.Fatalf("θ=%v: λ = %v, finite-difference marginal %v", theta, sol.Lambda, fd)
		}
	}
}
