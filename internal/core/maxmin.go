package core

import (
	"context"
	"math"
)

// MaxMinOptions tunes SolveMaxMin. The zero value selects sensible
// defaults.
type MaxMinOptions struct {
	// Rounds is the number of reweighting rounds (0 selects 40).
	Rounds int
	// Eta is the softmax sharpness of the reweighting (0 selects 60).
	// Larger values focus more weight on the currently-worst pairs.
	Eta float64
	// Damping blends consecutive weight vectors, w ← (1−d)·w + d·w_new
	// (0 selects 0.5).
	Damping float64
	// Solve carries the inner gradient-projection options.
	Solve Options
}

func (o MaxMinOptions) rounds() int {
	if o.Rounds <= 0 {
		return 40
	}
	return o.Rounds
}

func (o MaxMinOptions) eta() float64 {
	if o.Eta <= 0 {
		return 60
	}
	return o.Eta
}

func (o MaxMinOptions) damping() float64 {
	if o.Damping <= 0 || o.Damping > 1 {
		return 0.5
	}
	return o.Damping
}

// SolveMaxMin approximately maximizes the alternative objective the
// paper defers to future work (Section III): min_k M(ρ_k(p)), i.e. the
// utility of the worst-measured OD pair.
//
// The max-min objective is not differentiable everywhere, which breaks
// the Newton line search (the paper makes exactly this observation), so
// SolveMaxMin uses iterated reweighting: the weighted-sum problem is
// solved repeatedly with weights concentrated — by a softmax of
// sharpness Eta — on the pairs whose utility is currently lowest. Each
// round is a full KKT-verified convex solve; across rounds the weight
// vector converges toward the optimal dual weights of the max-min
// program. The best-minimum solution over all rounds is returned.
//
// This is a heuristic for the outer (weight) iteration, not a certified
// optimum of the max-min program; the stated-problem solver with its
// optimality certificate remains Solve.
func SolveMaxMin(p *Problem, opt MaxMinOptions) (*Solution, error) {
	return SolveMaxMinContext(context.Background(), p, opt)
}

// SolveMaxMinContext is SolveMaxMin with cancellation between reweighting
// rounds. All rounds share one compiled Solver workspace — the weights
// are re-tuned through Solver.SetWeights, so the caller's Problem is
// never mutated and the per-round solves reuse every buffer.
func SolveMaxMinContext(ctx context.Context, p *Problem, opt MaxMinOptions) (*Solution, error) {
	s, err := NewSolver(p)
	if err != nil {
		return nil, err
	}
	nPairs := len(p.Pairs)
	weights := make([]float64, nPairs)
	for k := range weights {
		weights[k] = 1
	}

	var best *Solution
	bestMin := math.Inf(-1)
	damp := opt.damping()
	for round := 0; round < opt.rounds(); round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.SetWeights(weights); err != nil {
			return nil, err
		}
		sol, err := s.Solve(opt.Solve)
		if err != nil {
			return nil, err
		}
		// Track the best minimum achieved; report per-pair utilities
		// unweighted.
		minU := math.Inf(1)
		for k := range p.Pairs {
			u := p.Pairs[k].Utility.Value(sol.Rho[k])
			sol.Utilities[k] = u
			if u < minU {
				minU = u
			}
		}
		sol.Objective = minU
		if minU > bestMin {
			bestMin = minU
			best = sol
		}
		// Reweight: softmax over (minU − u_k), so the worst pair gets the
		// largest weight. Normalize to mean 1 to keep the objective scale
		// stable across rounds.
		sum := 0.0
		next := make([]float64, nPairs)
		for k := range next {
			next[k] = math.Exp(opt.eta() * (minU - sol.Utilities[k]))
			sum += next[k]
		}
		for k := range next {
			next[k] *= float64(nPairs) / sum
			weights[k] = (1-damp)*weights[k] + damp*next[k]
		}
	}
	return best, nil
}
