// Package core implements the paper's primary contribution: the joint
// monitor-activation and sampling-rate optimization.
//
// Given the set L of candidate monitor links (with loads U_i and
// per-link rate caps α_i), a set F of OD pairs with their routing rows,
// and a system capacity θ (maximum packets sampled network-wide per unit
// time), core.Solve maximizes
//
//	Σ_{k∈F} M(ρ_k(p))
//
// over the sampling-rate vector p, subject to Σ_i p_i·U_i = θ and
// 0 ≤ p_i ≤ α_i, using the gradient projection method with an active
// constraint set, Polak-Ribière direction blending, a Newton
// one-dimensional line search, and Karush-Kuhn-Tucker verification with
// constraint de-activation on negative Lagrange multipliers — the
// algorithm of Section IV of the paper. Links whose optimal rate is zero
// are monitors that need not be activated: placement and rate selection
// fall out of the same optimization.
package core

import (
	"fmt"
	"math"
)

// Utility quantifies the information a measurement with effective
// sampling rate ρ provides for one OD pair (paper, Section III). A valid
// utility is strictly increasing, strictly concave and twice continuously
// differentiable on [0, 1], with Value(0) = 0.
type Utility interface {
	// Value returns M(ρ).
	Value(rho float64) float64
	// Deriv returns M'(ρ).
	Deriv(rho float64) float64
	// Curv returns M''(ρ).
	Curv(rho float64) float64
}

// SRE is the paper's utility (Section IV-C), built from the expected
// squared relative error of the flow-size estimator X/ρ for a flow of
// size S sampled binomially at rate ρ:
//
//	E[SRE](ρ) = (1-ρ)/ρ · E[1/S]
//	A(ρ)      = 1 − E[SRE](ρ)          (mean squared relative accuracy)
//
// A is strictly increasing and concave but undefined at ρ = 0, so below
// a stitching point x₀ it is replaced by its quadratic expansion A* at
// x₀, with x₀ chosen so that A*(0) = 0. Matching value, first and second
// derivative at x₀ keeps M twice continuously differentiable. Solving
// A(x₀) − x₀A'(x₀) + x₀²A”(x₀)/2 = 0 gives the closed form
//
//	x₀ = 3c/(1+c),  c = E[1/S],
//
// which reproduces the x₀ values printed in the paper's Figure 1
// (c = 0.002 → x₀ ≈ 0.005988; c ≈ 0.000667 → x₀ ≈ 0.002), and
// M(x₀) = 2(1+c)/3 ≈ 2/3 at the stitch.
type SRE struct {
	// C is E[1/S], the mean inverse flow size of the OD pair.
	C float64
	// X0 is the stitching point 3C/(1+C).
	X0 float64
	// Derivative values of A at X0, cached for the quadratic branch.
	a0, d1, d2 float64
}

// NewSRE builds the SRE utility for mean inverse OD size c = E[1/S].
// c must lie in (0, 1]: an OD pair has at least one packet, so
// E[1/S] ≤ 1, and a zero c would make the utility flat. For c > 1/2
// (OD pairs of only a couple of packets) the stitch point x₀ exceeds 1
// and M(1) may slightly exceed 1; the solver relies only on
// monotonicity and concavity, which hold for every valid c.
func NewSRE(c float64) (*SRE, error) {
	if !(c > 0 && c <= 1) {
		// !(c > 0) rejects NaN too: comparisons with NaN are false.
		return nil, invalidInput("utility parameter E[1/S]", -1, c, "want (0, 1]")
	}
	x0 := 3 * c / (1 + c)
	u := &SRE{C: c, X0: x0}
	u.a0 = u.analytic(x0)
	u.d1 = c / (x0 * x0)
	u.d2 = -2 * c / (x0 * x0 * x0)
	return u, nil
}

// MustSRE is NewSRE that panics on error, for literals in tests and
// examples.
func MustSRE(c float64) *SRE {
	u, err := NewSRE(c)
	if err != nil {
		panic(err)
	}
	return u
}

// analytic is A(ρ) = 1 − c(1−ρ)/ρ, the accuracy branch used for ρ ≥ x₀.
//netsamp:noalloc
func (u *SRE) analytic(rho float64) float64 {
	return 1 + u.C - u.C/rho
}

// Value implements Utility. For ρ beyond 1 (possible transiently under
// the linear effective-rate approximation) the analytic branch is simply
// continued; it remains increasing and concave there.
//netsamp:noalloc
func (u *SRE) Value(rho float64) float64 {
	if rho <= 0 {
		return 0
	}
	if rho >= u.X0 {
		return u.analytic(rho)
	}
	d := rho - u.X0
	return u.a0 + d*u.d1 + 0.5*d*d*u.d2
}

// Deriv implements Utility.
//netsamp:noalloc
func (u *SRE) Deriv(rho float64) float64 {
	if rho >= u.X0 {
		return u.C / (rho * rho)
	}
	if rho < 0 {
		rho = 0
	}
	return u.d1 + (rho-u.X0)*u.d2
}

// Curv implements Utility.
//netsamp:noalloc
func (u *SRE) Curv(rho float64) float64 {
	if rho >= u.X0 {
		return -2 * u.C / (rho * rho * rho)
	}
	return u.d2
}

// ExpectedSRE returns E[SRE](ρ) = (1-ρ)/ρ · c, the expected squared
// relative error of the size estimate at effective rate ρ. It returns
// +Inf at ρ = 0.
func (u *SRE) ExpectedSRE(rho float64) float64 {
	if rho <= 0 {
		return math.Inf(1)
	}
	return (1 - rho) / rho * u.C
}

// RateForUtility inverts M: the effective sampling rate with
// M(ρ) = m, for m ∈ (0, 1). Above the stitch value M(x₀) the analytic
// branch gives ρ = c/(1+c−m); below it the quadratic expansion is
// inverted in closed form. It returns an error for m outside (0, 1).
func (u *SRE) RateForUtility(m float64) (float64, error) {
	if !(m > 0 && m < 1) {
		return 0, fmt.Errorf("core: utility target %v out of (0, 1)", m)
	}
	if m >= u.a0 {
		// 1 + c - c/ρ = m  ⇒  ρ = c / (1 + c - m).
		return u.C / (1 + u.C - m), nil
	}
	// Quadratic branch: a0 + d·d1 + d²·d2/2 = m with d = ρ − x₀ ∈ [−x₀, 0].
	// The relevant root of (d2/2)d² + d1·d + (a0 − m) = 0 is the one in
	// [−x₀, 0]; with d2 < 0 that is the "+" root of the quadratic formula.
	disc := u.d1*u.d1 - 2*u.d2*(u.a0-m)
	if disc < 0 {
		disc = 0
	}
	d := (-u.d1 + math.Sqrt(disc)) / u.d2
	rho := u.X0 + d
	if rho < 0 {
		rho = 0
	}
	return rho, nil
}
