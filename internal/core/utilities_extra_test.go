package core

import (
	"math"
	"testing"
)

// checkUtilityContract verifies the framework's requirements on [0, 1]:
// M(0)=0, strictly increasing, strictly concave, derivatives consistent
// with finite differences.
func checkUtilityContract(t *testing.T, name string, u Utility) {
	t.Helper()
	if got := u.Value(0); got != 0 {
		t.Fatalf("%s: M(0) = %v", name, got)
	}
	prev := 0.0
	for i := 1; i <= 1000; i++ {
		rho := float64(i) / 1000 * 0.999 // stay inside (0,1)
		v := u.Value(rho)
		d := u.Deriv(rho)
		if d < 1e-9 {
			// Floating-point saturation (e.g. (1-ρ)^m underflow for
			// large detection footprints): the mathematical function is
			// still strictly monotone, the doubles are not. Only require
			// non-decreasing here.
			if v < prev {
				t.Fatalf("%s: decreased at ρ=%v", name, rho)
			}
			prev = v
			continue
		}
		if v <= prev {
			t.Fatalf("%s: not strictly increasing at ρ=%v", name, rho)
		}
		prev = v
		if u.Curv(rho) >= 0 {
			t.Fatalf("%s: M'' >= 0 at ρ=%v", name, rho)
		}
	}
	for _, rho := range []float64{0.01, 0.1, 0.5, 0.9} {
		h := 1e-6
		fd := (u.Value(rho+h) - u.Value(rho-h)) / (2 * h)
		if d := u.Deriv(rho); math.Abs(fd-d)/math.Max(d, 1e-12) > 1e-3 {
			t.Fatalf("%s: Deriv(%v)=%v, finite diff %v", name, rho, d, fd)
		}
		fd2 := (u.Deriv(rho+h) - u.Deriv(rho-h)) / (2 * h)
		if cv := u.Curv(rho); math.Abs(fd2-cv)/math.Max(math.Abs(cv), 1e-12) > 1e-3 {
			t.Fatalf("%s: Curv(%v)=%v, finite diff %v", name, rho, cv, fd2)
		}
	}
}

func TestDetectionContract(t *testing.T) {
	for _, size := range []int{2, 10, 1000} {
		checkUtilityContract(t, "Detection", MustDetection(size))
	}
}

func TestDetectionSemantics(t *testing.T) {
	u := MustDetection(100)
	// P(detect) of a 100-packet event at ρ=0.01 is 1-(0.99)^100 ≈ 0.634.
	if got := u.Value(0.01); math.Abs(got-(1-math.Pow(0.99, 100))) > 1e-12 {
		t.Fatalf("Value(0.01) = %v", got)
	}
	if u.Value(1) != 1 {
		t.Fatal("full sampling must detect with certainty")
	}
	// Bigger events are easier to detect.
	if MustDetection(1000).Value(0.005) <= MustDetection(10).Value(0.005) {
		t.Fatal("larger event not easier to detect")
	}
}

func TestDetectionValidation(t *testing.T) {
	for _, size := range []int{1, 0, -5} {
		if _, err := NewDetection(size); err == nil {
			t.Fatalf("NewDetection(%d) accepted", size)
		}
	}
}

func TestLogCoverageContract(t *testing.T) {
	for _, c := range []float64{0.001, 0.05, 1} {
		checkUtilityContract(t, "LogCoverage", MustLogCoverage(c))
	}
}

func TestLogCoverageNormalization(t *testing.T) {
	u := MustLogCoverage(0.01)
	if got := u.Value(1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("M(1) = %v, want 1", got)
	}
}

func TestLogCoverageValidation(t *testing.T) {
	for _, c := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewLogCoverage(c); err == nil {
			t.Fatalf("NewLogCoverage(%v) accepted", c)
		}
	}
}

// TestSolveWithDetectionUtility runs the full solver under the
// anomaly-detection utility: the framework is utility-agnostic.
func TestSolveWithDetectionUtility(t *testing.T) {
	p := &Problem{
		Loads:  []float64{40000, 3000, 800},
		Budget: 60,
		Pairs: []Pair{
			{Name: "scan-a", Links: []int{0, 1}, Utility: MustDetection(500)},
			{Name: "scan-b", Links: []int{1, 2}, Utility: MustDetection(200)},
			{Name: "scan-c", Links: []int{2}, Utility: MustDetection(2000)},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Converged {
		t.Fatal("detection-utility solve did not converge")
	}
	feasibility(t, p, sol)
	kktCheck(t, p, sol)
	// The cheap lightly-loaded link must carry the highest rate.
	if !(sol.Rates[2] > sol.Rates[1] && sol.Rates[1] > sol.Rates[0]) {
		t.Fatalf("rates not ordered by cost: %v", sol.Rates)
	}
}

// TestSolveWithMixedUtilities mixes utility families in one task, e.g.
// tracking sizes of two pairs while watching a third for anomalies.
func TestSolveWithMixedUtilities(t *testing.T) {
	p := &Problem{
		Loads:  []float64{10000, 2000},
		Budget: 40,
		Pairs: []Pair{
			{Name: "size", Links: []int{0}, Utility: MustSRE(0.0001)},
			{Name: "detect", Links: []int{1}, Utility: MustDetection(300)},
			{Name: "cover", Links: []int{0, 1}, Utility: MustLogCoverage(0.005)},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feasibility(t, p, sol)
	if sol.Stats.Converged {
		kktCheck(t, p, sol)
	}
	for k, rho := range sol.Rho {
		if rho <= 0 {
			t.Fatalf("pair %d unmonitored under mixed utilities", k)
		}
	}
}
