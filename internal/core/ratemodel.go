package core

import "fmt"

// RateModel maps a per-link sampling-rate vector to each OD pair's
// effective per-packet inclusion probability ρ_k, and supplies the
// derivatives the gradient-projection solver needs (value, gradient
// accumulation and line-search terms). It replaces the former
// Problem.Exact flag: the model is data, not a branch, so new sampling
// disciplines plug in without touching the solver.
//
// Three models ship with core:
//
//   - ModelLinear — the paper's working approximation (7),
//     ρ_k = Σ f_ki·p_i, valid for the low rates and short monitored
//     paths the optimum exhibits (Section IV-B).
//   - ModelIndependentExact — the exact product model (1),
//     ρ_k = 1 − Π(1−p_i), for monitors sampling independently.
//   - ModelCoordinated — cSamp-style coordinated sampling: monitors on
//     a path own disjoint hash ranges of flow space, so inclusion
//     probabilities add by construction. The solver-side surrogate is
//     identical to ModelLinear (the unclamped sum keeps the objective
//     concave); Deployed maps the surrogate onto the realized rate
//     min(1, ρ) once ranges are assigned (see internal/plan.Coordinate).
//
// The computational hooks are unexported: implementations live in core,
// where the solver can rely on their bitwise behavior. External callers
// select a model by identity (the Model* singletons or ModelByName) and
// interact through Name, Additive, SupportsFracs and Deployed.
type RateModel interface {
	// Name is the model's stable identity, used in cache keys, snapshot
	// payloads and CLI flags: "linear", "independent-exact",
	// "coordinated".
	Name() string
	// Additive reports whether ρ_k is an affine function of the rates
	// (linear and coordinated). Additive models get the Newton-KKT
	// second-order step and are accepted by SolveMaxMinExact.
	Additive() bool
	// SupportsFracs reports whether the model accepts ECMP routing
	// fractions. The product model assumes deterministic single-path
	// routing and rejects them.
	SupportsFracs() bool
	// Deployed maps the solver's surrogate rate ρ_k onto the inclusion
	// probability the deployed sampling discipline realizes. Identity
	// for linear and independent-exact; min(1, ρ) for coordinated
	// (disjoint ranges cannot over-sample a packet).
	Deployed(rho float64) float64

	// pairRho returns ρ_k over a pair's dense link row. fracs is nil for
	// single-path pairs.
	pairRho(links []int, fracs, rates []float64) float64
	// accumGrad adds d·∂ρ_k/∂p_i to out for each link of the row, where
	// the caller has evaluated rho = pairRho and d = w·M'(ρ).
	accumGrad(links []int, fracs, rates []float64, rho, d float64, out []float64)
	// lineTerms returns this pair's contribution to φ'(t) and φ''(t) for
	// φ(t) = Σ_k w_k·M_k(ρ_k(rates + t·dir)).
	lineTerms(links []int, fracs, rates, dir []float64, t float64, u Utility, w float64) (d1, d2 float64)

	// CSR variants of the three hooks over the Solver's compiled
	// incidence: links and fracs are the pair's subslices of the flat
	// arrays (fracs nil when no pair has fractions).
	pairRhoCSR(links []int32, fracs, rates []float64) float64
	accumGradCSR(links []int32, fracs, rates []float64, rho, d float64, out []float64)
	lineTermsCSR(links []int32, fracs, rates, dir []float64, t float64, u Utility, w float64) (d1, d2 float64)
}

// The models are package singletons so selecting one never constructs
// (or boxes) a value on a hot path, and identity comparisons are valid.
var (
	// ModelLinear is the paper's working approximation (7).
	ModelLinear RateModel = linearModel{}
	// ModelIndependentExact is the exact independent-sampling product
	// model (1).
	ModelIndependentExact RateModel = independentExactModel{}
	// ModelCoordinated is the coordinated (disjoint hash range) model.
	ModelCoordinated RateModel = coordinatedModel{}
)

// ModelByName resolves a model identity string (see RateModel.Name) to
// its singleton. "exact" is accepted as an alias of "independent-exact"
// (the former -exact CLI flag).
func ModelByName(name string) (RateModel, error) {
	switch name {
	case "linear":
		return ModelLinear, nil
	case "independent-exact", "exact":
		return ModelIndependentExact, nil
	case "coordinated":
		return ModelCoordinated, nil
	}
	return nil, fmt.Errorf("core: unknown rate model %q (want linear, independent-exact or coordinated)", name)
}

// ModelName returns m's identity, treating nil as the default linear
// model — the convention Problem.Model and plan.Input.Model share.
func ModelName(m RateModel) string {
	if m == nil {
		return ModelLinear.Name()
	}
	return m.Name()
}

// additiveModel implements the shared math of the two additive models:
// ρ_k = Σ f_ki·p_i, constant gradient, zero path curvature.
type additiveModel struct{}

//netsamp:noalloc
func (additiveModel) Additive() bool             { return true }
func (additiveModel) SupportsFracs() bool        { return true }
//netsamp:noalloc
func (additiveModel) Deployed(rho float64) float64 { return rho }

//netsamp:noalloc
func (additiveModel) pairRho(links []int, fracs, rates []float64) float64 {
	s := 0.0
	if fracs != nil {
		for j, i := range links {
			s += fracs[j] * rates[i]
		}
	} else {
		for _, i := range links {
			s += rates[i]
		}
	}
	return s
}

//netsamp:noalloc
func (additiveModel) accumGrad(links []int, fracs, rates []float64, rho, d float64, out []float64) {
	if fracs != nil {
		for j, i := range links {
			out[i] += d * fracs[j]
		}
	} else {
		for _, i := range links {
			out[i] += d
		}
	}
}

//netsamp:noalloc
func (additiveModel) lineTerms(links []int, fracs, rates, dir []float64, t float64, u Utility, w float64) (d1, d2 float64) {
	rho, q := 0.0, 0.0
	for j, i := range links {
		f := 1.0
		if fracs != nil {
			f = fracs[j]
		}
		rho += f * (rates[i] + t*dir[i])
		q += f * dir[i]
	}
	d1 = w * u.Deriv(rho) * q
	d2 = w * u.Curv(rho) * q * q
	return d1, d2
}

//netsamp:noalloc
func (additiveModel) pairRhoCSR(links []int32, fracs, rates []float64) float64 {
	sum := 0.0
	if fracs != nil {
		for j, i := range links {
			sum += fracs[j] * rates[i]
		}
	} else {
		for _, i := range links {
			sum += rates[i]
		}
	}
	return sum
}

//netsamp:noalloc
func (additiveModel) accumGradCSR(links []int32, fracs, rates []float64, rho, d float64, out []float64) {
	if fracs != nil {
		for j, i := range links {
			out[i] += d * fracs[j]
		}
	} else {
		for _, i := range links {
			out[i] += d
		}
	}
}

//netsamp:noalloc
func (additiveModel) lineTermsCSR(links []int32, fracs, rates, dir []float64, t float64, u Utility, w float64) (d1, d2 float64) {
	rho, q := 0.0, 0.0
	for j, i := range links {
		f := 1.0
		if fracs != nil {
			f = fracs[j]
		}
		rho += f * (rates[i] + t*dir[i])
		q += f * dir[i]
	}
	d1 = w * u.Deriv(rho) * q
	d2 = w * u.Curv(rho) * q * q
	return d1, d2
}

// linearModel is the paper's working approximation (7).
type linearModel struct{ additiveModel }

func (linearModel) Name() string { return "linear" }

// coordinatedModel shares the additive solver math with linearModel —
// under disjoint hash ranges the per-packet inclusion probability is
// Σ f_ki·p_i by construction, clamped at 1 only at deployment time (the
// unclamped surrogate keeps the objective concave and the optimizer's
// trajectory bitwise-identical to the linear model's).
type coordinatedModel struct{ additiveModel }

func (coordinatedModel) Name() string { return "coordinated" }

//netsamp:noalloc
func (coordinatedModel) Deployed(rho float64) float64 {
	if rho > 1 {
		return 1
	}
	return rho
}

// independentExactModel is the exact product model (1) for monitors
// sampling independently: ρ_k = 1 − Π(1−p_i). It assumes deterministic
// single-path routing (no ECMP fractions), and its Hessian has
// off-diagonal ∂²ρ/∂p_i∂p_j coupling, so the solver's Newton-KKT step
// is disabled for it.
type independentExactModel struct{}

func (independentExactModel) Name() string          { return "independent-exact" }
//netsamp:noalloc
func (independentExactModel) Additive() bool        { return false }
func (independentExactModel) SupportsFracs() bool   { return false }
//netsamp:noalloc
func (independentExactModel) Deployed(rho float64) float64 { return rho }

//netsamp:noalloc
func (independentExactModel) pairRho(links []int, fracs, rates []float64) float64 {
	q := 1.0
	for _, i := range links {
		q *= 1 - rates[i]
	}
	return 1 - q
}

//netsamp:noalloc
func (independentExactModel) accumGrad(links []int, fracs, rates []float64, rho, d float64, out []float64) {
	// ∂ρ_k/∂p_i = Π_{j≠i}(1−p_j) = (1−ρ_k)/(1−p_i).
	for _, i := range links {
		den := 1 - rates[i]
		if den < 1e-12 {
			den = 1e-12
		}
		out[i] += d * (1 - rho) / den
	}
}

//netsamp:noalloc
func (independentExactModel) lineTerms(links []int, fracs, rates, dir []float64, t float64, u Utility, w float64) (d1, d2 float64) {
	g := 1.0
	h := 0.0  // Σ s_i/(1−x_i)
	h2 := 0.0 // Σ s_i²/(1−x_i)²
	for _, i := range links {
		x := 1 - rates[i] - t*dir[i]
		if x < 1e-12 {
			x = 1e-12
		}
		g *= x
		term := dir[i] / x
		h += term
		h2 += term * term
	}
	rho := 1 - g
	rp := g * h         // ρ'(t)
	rpp := g*h2 - g*h*h // ρ''(t)
	du := w * u.Deriv(rho)
	cu := w * u.Curv(rho)
	d1 = du * rp
	d2 = cu*rp*rp + du*rpp
	return d1, d2
}

//netsamp:noalloc
func (independentExactModel) pairRhoCSR(links []int32, fracs, rates []float64) float64 {
	q := 1.0
	for _, i := range links {
		q *= 1 - rates[i]
	}
	return 1 - q
}

//netsamp:noalloc
func (independentExactModel) accumGradCSR(links []int32, fracs, rates []float64, rho, d float64, out []float64) {
	// ∂ρ_k/∂p_i = Π_{j≠i}(1−p_j) = (1−ρ_k)/(1−p_i).
	for _, i := range links {
		den := 1 - rates[i]
		if den < 1e-12 {
			den = 1e-12
		}
		out[i] += d * (1 - rho) / den
	}
}

//netsamp:noalloc
func (independentExactModel) lineTermsCSR(links []int32, fracs, rates, dir []float64, t float64, u Utility, w float64) (d1, d2 float64) {
	g := 1.0
	h := 0.0  // Σ s_i/(1−x_i)
	h2 := 0.0 // Σ s_i²/(1−x_i)²
	for _, i := range links {
		x := 1 - rates[i] - t*dir[i]
		if x < 1e-12 {
			x = 1e-12
		}
		g *= x
		term := dir[i] / x
		h += term
		h2 += term * term
	}
	rho := 1 - g
	rp := g * h         // ρ'(t)
	rpp := g*h2 - g*h*h // ρ''(t)
	du := w * u.Deriv(rho)
	cu := w * u.Curv(rho)
	d1 = du * rp
	d2 = cu*rp*rp + du*rpp
	return d1, d2
}

// guard: the singletons must keep satisfying the interface even as the
// hook set evolves.
var _ = []RateModel{linearModel{}, coordinatedModel{}, independentExactModel{}}
