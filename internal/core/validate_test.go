package core

import (
	"errors"
	"math"
	"testing"
)

func validProblem() *Problem {
	return &Problem{
		Loads:  []float64{100, 200, 50},
		Budget: 10,
		Pairs: []Pair{
			{Name: "a", Links: []int{0, 1}, Utility: MustSRE(0.002)},
			{Name: "b", Links: []int{2}, Utility: MustSRE(0.002)},
		},
	}
}

// TestValidateTypedErrors: every numeric rejection at compile time is an
// InputError wrapping ErrInvalidInput, and NaN/Inf never slips through.
func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Problem)
	}{
		{"nan-load", func(p *Problem) { p.Loads[1] = math.NaN() }},
		{"inf-load", func(p *Problem) { p.Loads[0] = math.Inf(1) }},
		{"zero-load", func(p *Problem) { p.Loads[2] = 0 }},
		{"negative-load", func(p *Problem) { p.Loads[2] = -5 }},
		{"nan-cap", func(p *Problem) { p.MaxRate = []float64{1, math.NaN(), 1} }},
		{"oversized-cap", func(p *Problem) { p.MaxRate = []float64{1, 1.5, 1} }},
		{"nan-budget", func(p *Problem) { p.Budget = math.NaN() }},
		{"inf-budget", func(p *Problem) { p.Budget = math.Inf(1) }},
		{"zero-budget", func(p *Problem) { p.Budget = 0 }},
		{"infeasible-budget", func(p *Problem) { p.Budget = 1e12 }},
		{"nan-weight", func(p *Problem) { p.Pairs[0].Weight = math.NaN() }},
		{"inf-weight", func(p *Problem) { p.Pairs[1].Weight = math.Inf(1) }},
		{"nan-fraction", func(p *Problem) { p.Pairs[0].Fracs = []float64{math.NaN(), 0.5} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := validProblem()
			tc.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatal("garbage input accepted")
			}
			if !errors.Is(err, ErrInvalidInput) {
				t.Fatalf("error %v does not wrap ErrInvalidInput", err)
			}
			var ie *InputError
			if !errors.As(err, &ie) {
				t.Fatalf("error %v is not an *InputError", err)
			}
			// NewSolver surfaces the same typed error.
			if _, serr := NewSolver(p); !errors.Is(serr, ErrInvalidInput) {
				t.Fatalf("NewSolver error %v does not wrap ErrInvalidInput", serr)
			}
		})
	}
}

// TestRetuneTypedErrors: the re-tune paths (SetBudget, SetLoads,
// WarmStart) reject garbage with the same typed errors, and rejection
// leaves the compiled solver unchanged.
func TestRetuneTypedErrors(t *testing.T) {
	s, err := NewSolver(validProblem())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), 0, -3, 1e12} {
		if err := s.SetBudget(bad); !errors.Is(err, ErrInvalidInput) {
			t.Fatalf("SetBudget(%v) = %v, want ErrInvalidInput", bad, err)
		}
	}
	if s.Problem().Budget != 10 {
		t.Fatalf("rejected SetBudget mutated the budget to %v", s.Problem().Budget)
	}
	for _, bad := range [][]float64{
		{math.NaN(), 200, 50},
		{100, math.Inf(-1), 50},
		{100, 0, 50},
		{1e-9, 1e-9, 1e-9}, // budget becomes infeasible
	} {
		if err := s.SetLoads(bad); !errors.Is(err, ErrInvalidInput) {
			t.Fatalf("SetLoads(%v) = %v, want ErrInvalidInput", bad, err)
		}
	}
	if s.Problem().Loads[0] != 100 {
		t.Fatalf("rejected SetLoads mutated loads to %v", s.Problem().Loads)
	}
	// Solve still works after the rejected re-tunes.
	sol, err := s.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}

	// WarmStart against an infeasible-budget problem: typed error.
	p := validProblem()
	p.Budget = math.Inf(1)
	if _, err := WarmStartRates(sol.Rates, p, nil); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("WarmStartRates with Inf budget = %v, want ErrInvalidInput", err)
	}
}

func TestNewSRETypedError(t *testing.T) {
	for _, bad := range []float64{math.NaN(), 0, -1, 1.5, math.Inf(1)} {
		if _, err := NewSRE(bad); !errors.Is(err, ErrInvalidInput) {
			t.Fatalf("NewSRE(%v) = %v, want ErrInvalidInput", bad, err)
		}
	}
}
