package core

import (
	"math"
	"reflect"
	"testing"

	"netsamp/internal/rng"
)

// modelForExact maps the tests' historical exact flag to a rate model.
func modelForExact(exact bool) RateModel {
	if exact {
		return ModelIndependentExact
	}
	return nil
}

// wsRandomProblem builds a randomized feasible instance for the
// workspace tests (same regime as the stress tests).
func wsRandomProblem(seed uint64, nLinks, nPairs int, exact bool) *Problem {
	r := rng.New(seed)
	p := &Problem{Loads: make([]float64, nLinks), Model: modelForExact(exact)}
	total := 0.0
	for i := range p.Loads {
		p.Loads[i] = math.Pow(10, 2+3*r.Float64())
		total += p.Loads[i]
	}
	p.Budget = total * 0.001
	for k := 0; k < nPairs; k++ {
		perm := r.Perm(nLinks)
		nHops := 1 + r.Intn(4)
		p.Pairs = append(p.Pairs, Pair{
			Name:    "k",
			Links:   append([]int(nil), perm[:nHops]...),
			Utility: MustSRE(math.Pow(10, -6+3*r.Float64())),
		})
	}
	return p
}

// TestSolverMatchesSolve: the compiled CSR path must reproduce the
// one-shot Solve bit for bit — same iterates, same certificates.
func TestSolverMatchesSolve(t *testing.T) {
	for _, exact := range []bool{false, true} {
		p := wsRandomProblem(99, 60, 40, exact)
		want, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSolver(p)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ { // reuse must not drift
			got, err := s.Solve(Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("exact=%v trial %d: Solver.Solve differs from Solve", exact, trial)
			}
		}
	}
}

// TestSolverWithFracsMatchesSolve covers the ECMP fraction path of the
// compiled incidence.
func TestSolverWithFracsMatchesSolve(t *testing.T) {
	p := &Problem{
		Loads:  []float64{5000, 8000, 12000},
		Budget: 20,
		Pairs: []Pair{
			{Name: "a", Links: []int{0, 1}, Fracs: []float64{0.5, 0.5}, Utility: MustSRE(0.002)},
			{Name: "b", Links: []int{1, 2}, Fracs: []float64{0.25, 0.75}, Utility: MustSRE(0.001)},
			{Name: "c", Links: []int{2}, Utility: MustSRE(0.0005)},
		},
	}
	want, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fractional-path Solver.Solve differs from Solve")
	}
}

// TestSolveIntoZeroAllocs is the steady-state allocation contract: a
// Solver reusing one Solution must not allocate at all.
func TestSolveIntoZeroAllocs(t *testing.T) {
	p := wsRandomProblem(7, 40, 30, false)
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	var sol Solution
	if err := s.SolveInto(&sol, Options{}); err != nil { // warm the slices
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := s.SolveInto(&sol, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state SolveInto allocates %v objects/op, want 0", allocs)
	}
}

// TestSolverSetWeights: weighted solves through SetWeights must match
// one-shot solves of an equivalently weighted Problem, and must leave
// the Solver's Problem untouched.
func TestSolverSetWeights(t *testing.T) {
	p := wsRandomProblem(13, 30, 20, false)
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	weights := make([]float64, len(p.Pairs))
	for k := range weights {
		weights[k] = 0.25 + 2*r.Float64()
	}
	if err := s.SetWeights(weights); err != nil {
		t.Fatal(err)
	}
	got, err := s.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	weighted := *p
	weighted.Pairs = append([]Pair(nil), p.Pairs...)
	for k := range weighted.Pairs {
		weighted.Pairs[k].Weight = weights[k]
	}
	want, err := Solve(&weighted, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rates, want.Rates) || got.Objective != want.Objective {
		t.Fatal("SetWeights solve differs from weighted-Problem solve")
	}
	for k := range p.Pairs {
		if p.Pairs[k].Weight != 0 {
			t.Fatal("SetWeights mutated the caller's Problem")
		}
	}
	// Resetting restores the unweighted optimum.
	if err := s.SetWeights(nil); err != nil {
		t.Fatal(err)
	}
	reset, err := s.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reset, plain) {
		t.Fatal("SetWeights(nil) did not restore the problem weights")
	}
	if err := s.SetWeights(weights[:3]); err == nil {
		t.Fatal("short weight vector accepted")
	}
}

// TestSolverRejectsInvalid: validation happens once, at compile time.
func TestSolverRejectsInvalid(t *testing.T) {
	p := &Problem{
		Loads:  []float64{1000},
		Budget: 5,
		Pairs:  []Pair{{Name: "k", Links: []int{0, 0}, Utility: MustSRE(0.002)}},
	}
	if _, err := NewSolver(p); err == nil {
		t.Fatal("duplicate link accepted")
	}
	p.Pairs[0].Links = []int{0}
	if _, err := NewSolver(p); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
}

// TestSolverSolutionIndependence: Solver.Solve results must stay valid
// after further solves (fresh allocations, not views of the workspace).
func TestSolverSolutionIndependence(t *testing.T) {
	p := wsRandomProblem(21, 25, 15, false)
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float64(nil), a.Rates...)
	if err := s.SetWeights([]float64{}); err == nil {
		t.Fatal("want length error")
	}
	if _, err := s.Solve(Options{MaxIter: 3}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rates, snapshot) {
		t.Fatal("earlier Solution mutated by a later solve")
	}
}
