package core

import "math"

// SolveApprox: a Frank-Wolfe (conditional-gradient) approximation path
// for deadline-bound solves. Each iteration takes one gradient sweep,
// solves the linear maximization over the feasible polytope
//
//	max ⟨g, v⟩  s.t.  Σ U_i·v_i ≤ θ,  0 ≤ v_i ≤ α_i
//
// exactly (a fractional knapsack: fill links by marginal utility per
// sampled packet g_i/U_i), and line-searches toward the vertex. Because
// the objective is concave for every additive rate model, the linearized
// improvement is a certified duality gap:
//
//	f* ≤ f(x) + ⟨g(x), v − x⟩ = f(x) + GapBound,
//
// sound for the paper's equality-constrained optimum too, since the
// equality feasible set is contained in the knapsack polytope. The
// iteration needs no active-set bookkeeping and no Newton systems, so
// its per-iteration cost is a small constant number of CSR sweeps —
// the escape hatch control reaches for when the exact KKT path would
// overrun the measurement interval (cf. "Fast Approximation Algorithms
// for Near-optimal Large-scale Network Monitoring").

// ApproxOptions tunes SolveApprox. The zero value selects the defaults.
type ApproxOptions struct {
	// MaxIter bounds the Frank-Wolfe iterations; 0 selects 400.
	MaxIter int
	// GapTol is the relative duality-gap target: the iteration stops once
	// GapBound ≤ GapTol·max(1, |objective|). 0 selects 1e-3.
	GapTol float64
	// Initial optionally supplies a feasible starting point (same
	// contract as Options.Initial); nil starts from the waterfilling
	// point.
	Initial []float64
}

//netsamp:noalloc
func (o ApproxOptions) maxIter() int {
	if o.MaxIter <= 0 {
		return 400
	}
	return o.MaxIter
}

//netsamp:noalloc
func (o ApproxOptions) gapTol() float64 {
	if o.GapTol <= 0 {
		return 1e-3
	}
	return o.GapTol
}

// SolveApprox runs the Frank-Wolfe approximation and returns a freshly
// allocated Solution with Approx set and GapBound carrying the duality-
// gap certificate. Refused with a typed *InputError for non-additive
// rate models: the gap bound needs a concave objective, which the
// product model does not supply.
func (s *Solver) SolveApprox(opt ApproxOptions) (*Solution, error) {
	sol := &Solution{}
	if err := s.SolveApproxInto(sol, opt); err != nil {
		return nil, err
	}
	return sol, nil
}

// SolveApproxInto is SolveApprox writing into a reused Solution; like
// SolveInto it is allocation-free in steady state.
//netsamp:noalloc
func (s *Solver) SolveApproxInto(sol *Solution, opt ApproxOptions) error {
	if !s.model.Additive() {
		return errApproxNotAdditive(s.model)
	}
	p := s.p
	n := s.n
	rates := s.rates
	if err := initialPointInto(p, Options{Initial: opt.Initial}, rates); err != nil {
		return err
	}
	g, v, d := s.g, s.sdir, s.d
	maxIter := opt.maxIter()
	gapTol := opt.gapTol()
	gap := math.Inf(1)
	var stats Stats
	for it := 1; ; it++ {
		stats.Iterations = it
		s.gradient(rates, g)
		gap = s.lmoInto(g, rates, v)
		obj := s.objectiveCSR(rates)
		if gap <= gapTol*math.Max(1, math.Abs(obj)) {
			stats.Converged = true
			break
		}
		if it >= maxIter {
			break
		}
		for i := 0; i < n; i++ {
			d[i] = v[i] - rates[i]
		}
		// Exact line search toward the vertex: φ(t) = f(x + t·d) is
		// concave on [0, 1], reuse the solver's safeguarded Newton search.
		t, _ := s.lineSearch(rates, d, 1, Options{}, false)
		if !(t > 0) {
			break
		}
		for i := 0; i < n; i++ {
			rates[i] += t * d[i]
			if rates[i] < 0 {
				rates[i] = 0
			}
			if a := p.alpha(i); rates[i] > a {
				rates[i] = a
			}
		}
	}
	syncActive(p, rates, s.lower, s.upper)
	s.gradient(rates, g)
	s.finishInto(sol, rates, g, stats, stats.Converged)
	sol.Approx = true
	sol.GapBound = gap
	return nil
}

// errApproxNotAdditive is the typed refusal for non-additive rate
// models (unannotated helper: the wrapper allocation stays off the
// noalloc-fenced solve path).
func errApproxNotAdditive(m RateModel) error {
	return &InputError{
		Field:  "rate model " + m.Name(),
		Index:  -1,
		Reason: "not additive: SolveApprox's duality-gap bound needs a concave objective; use the exact solver",
	}
}

// objectiveCSR returns Σ_k w_k·M_k(ρ_k) at rates over the compiled
// incidence.
//netsamp:noalloc
func (s *Solver) objectiveCSR(rates []float64) float64 {
	obj := 0.0
	for k := 0; k < s.nPairs; k++ {
		obj += s.wts[k] * s.utils[k].Value(s.rho(k, rates))
	}
	return obj
}

// lmoInto solves the linear maximization over the knapsack relaxation of
// the feasible set, writes the maximizing vertex into v, and returns the
// duality gap ⟨g, v − x⟩. Links are filled in descending g_i/U_i order
// (marginal utility per sampled packet); the last link taken may be
// fractional. Links with g_i ≤ 0 stay at zero — they could only waste
// budget.
//netsamp:noalloc
func (s *Solver) lmoInto(g, x, v []float64) float64 {
	p := s.p
	n := s.n
	idx := s.lmoIdx[:0]
	ratio := s.lmoRatio
	for i := 0; i < n; i++ {
		v[i] = 0
		if g[i] > 0 {
			idx = append(idx, int32(i))
			ratio[i] = g[i] / p.Loads[i]
		}
	}
	// Ascending heapsort by ratio (deterministic for fixed inputs), then
	// fill the budget from the top end.
	heapsortByKey(idx, ratio)
	rem := p.Budget
	for j := len(idx) - 1; j >= 0 && rem > 0; j-- {
		i := int(idx[j])
		u := p.Loads[i]
		take := p.alpha(i)
		if take*u > rem {
			take = rem / u
		}
		v[i] = take
		rem -= take * u
	}
	gap := 0.0
	for i := 0; i < n; i++ {
		gap += g[i] * (v[i] - x[i])
	}
	if gap < 0 {
		// v maximizes ⟨g, ·⟩ over a polytope containing x, so the true gap
		// is ≥ 0; a negative value is summation rounding at an (already)
		// optimal point. Clamp so the certificate stays sound.
		gap = 0
	}
	return gap
}

// heapsortByKey sorts idx ascending by key[idx[j]] in place. Hand-rolled
// heapsort instead of sort.Slice: no closure, no allocation, and a
// deterministic permutation for fixed inputs.
//netsamp:noalloc
func heapsortByKey(idx []int32, key []float64) {
	m := len(idx)
	for root := m/2 - 1; root >= 0; root-- {
		siftDownByKey(idx, key, root, m)
	}
	for end := m - 1; end > 0; end-- {
		idx[0], idx[end] = idx[end], idx[0]
		siftDownByKey(idx, key, 0, end)
	}
}

//netsamp:noalloc
func siftDownByKey(idx []int32, key []float64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && key[idx[child+1]] > key[idx[child]] {
			child++
		}
		if key[idx[child]] <= key[idx[root]] {
			return
		}
		idx[root], idx[child] = idx[child], idx[root]
		root = child
	}
}
