package core

import (
	"math"
	"testing"

	"netsamp/internal/engine"
)

// The sharding determinism contract: bit-identical results at ANY worker
// count (the chunk partition and reduction order never depend on it),
// and agreement with the serial kernels to rounding.

// shardProblem is sized to split into several chunks (> shardChunkPairs
// pairs) so the tests exercise real multi-chunk reductions. Under the
// race detector the instance shrinks (but stays multi-chunk): the
// contract is the same, the instrumentation overhead is not.
func shardProblem(t testing.TB) *CSRProblem {
	t.Helper()
	links, pairs := 1000, 9000
	if raceTest {
		links, pairs = 600, 8500
	}
	inst := genInstance(t, links, pairs, 21, true)
	return csrFromInstance(t, inst, 0.08)
}

func shardIters(full int) int {
	if raceTest {
		return full / 4
	}
	return full
}

func solveSharded(t testing.TB, cp *CSRProblem, workers int, approx bool) *Solution {
	t.Helper()
	s, err := NewSolverCSR(cp)
	if err != nil {
		t.Fatal(err)
	}
	if workers > 0 {
		pool := engine.NewPool(workers)
		defer pool.Close()
		s.Shard(pool)
		if !s.Sharded() {
			t.Fatal("Shard did not attach")
		}
		defer s.Shard(nil)
	}
	var sol *Solution
	if approx {
		sol, err = s.SolveApprox(ApproxOptions{MaxIter: shardIters(80)})
	} else {
		sol, err = s.Solve(Options{MaxIter: shardIters(24)})
	}
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestShardedBitIdenticalAcrossWorkerCounts(t *testing.T) {
	cp := shardProblem(t)
	for _, approx := range []bool{false, true} {
		base := solveSharded(t, cp, 1, approx)
		for _, workers := range []int{2, 4, 8} {
			sol := solveSharded(t, cp, workers, approx)
			if sol.Objective != base.Objective {
				t.Fatalf("approx=%v workers=%d: objective %v != single-worker %v",
					approx, workers, sol.Objective, base.Objective)
			}
			for i := range sol.Rates {
				if sol.Rates[i] != base.Rates[i] {
					t.Fatalf("approx=%v workers=%d: rate[%d] %v != single-worker %v",
						approx, workers, i, sol.Rates[i], base.Rates[i])
				}
			}
			for k := range sol.Rho {
				if sol.Rho[k] != base.Rho[k] {
					t.Fatalf("approx=%v workers=%d: rho[%d] differs from single-worker",
						approx, workers, k)
				}
			}
			if sol.GapBound != base.GapBound {
				t.Fatalf("approx=%v workers=%d: gap %v != single-worker %v",
					approx, workers, sol.GapBound, base.GapBound)
			}
		}
	}
}

// TestShardedKernelsMatchSerialToRounding: the sharded reduction groups
// additions differently from the serial sweep, so agreement is to
// floating-point rounding, not bitwise. Comparing single kernel sweeps
// (not whole truncated solves, where early rounding flips line-search
// decisions) pins the real contract: a chunking bug — wrong bounds,
// missed pairs, a double-counted chunk — shows up far above 1e-12.
func TestShardedKernelsMatchSerialToRounding(t *testing.T) {
	cp := shardProblem(t)
	s, err := NewSolverCSR(cp)
	if err != nil {
		t.Fatal(err)
	}
	n, nPairs := s.n, s.nPairs
	rates := make([]float64, n)
	dir := make([]float64, n)
	for i := 0; i < n; i++ {
		rates[i] = 0.3 + 0.4*float64(i%7)/7
		dir[i] = 0.01 * float64(i%5-2)
	}
	for i := range s.freePos {
		s.freePos[i] = int32(i) // all free, so hessMul zeroes nothing
	}

	gSerial := make([]float64, n)
	s.gradient(rates, gSerial)
	d1S, d2S := s.lineDerivs(rates, dir, 0.5)
	s.curvFill(rates)
	hSerial := make([]float64, n)
	s.hessMulInto(dir, hSerial)
	curvSerial := append([]float64(nil), s.curv...)

	pool := engine.NewPool(4)
	defer pool.Close()
	s.Shard(pool)
	gShard := make([]float64, n)
	s.gradient(rates, gShard)
	d1P, d2P := s.lineDerivs(rates, dir, 0.5)
	s.curvFill(rates)
	hShard := make([]float64, n)
	s.hessMulInto(dir, hShard)

	relClose := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	}
	for i := 0; i < n; i++ {
		if !relClose(gSerial[i], gShard[i]) {
			t.Fatalf("gradient[%d]: serial %v, sharded %v", i, gSerial[i], gShard[i])
		}
		if !relClose(hSerial[i], hShard[i]) {
			t.Fatalf("hessMul[%d]: serial %v, sharded %v", i, hSerial[i], hShard[i])
		}
	}
	if !relClose(d1S, d1P) || !relClose(d2S, d2P) {
		t.Fatalf("lineDerivs: serial (%v, %v), sharded (%v, %v)", d1S, d2S, d1P, d2P)
	}
	// Curvatures are written per pair with no cross-chunk reduction, so
	// they are bitwise.
	for k := 0; k < nPairs; k++ {
		if s.curv[k] != curvSerial[k] {
			t.Fatalf("curv[%d]: serial %v, sharded %v", k, curvSerial[k], s.curv[k])
		}
	}
}

func TestShardDetachRestoresSerial(t *testing.T) {
	cp := shardProblem(t)
	plain := solveSharded(t, cp, 0, false)

	s, err := NewSolverCSR(cp)
	if err != nil {
		t.Fatal(err)
	}
	pool := engine.NewPool(2)
	defer pool.Close()
	s.Shard(pool)
	if _, err := s.Solve(Options{MaxIter: shardIters(24)}); err != nil {
		t.Fatal(err)
	}
	s.Shard(nil)
	if s.Sharded() {
		t.Fatal("Sharded() true after detach")
	}
	sol, err := s.Solve(Options{MaxIter: shardIters(24)})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != plain.Objective {
		t.Fatalf("post-detach objective %v != never-sharded %v", sol.Objective, plain.Objective)
	}
	for i := range sol.Rates {
		if sol.Rates[i] != plain.Rates[i] {
			t.Fatalf("post-detach rate[%d] differs from never-sharded solve", i)
		}
	}
}

func TestShardSmallProblemSingleChunk(t *testing.T) {
	// Fewer pairs than one chunk: sharding must still work (one chunk,
	// trivial reduction) and stay bit-identical to serial — the partition
	// depends only on the pair count.
	p := &Problem{
		Loads:  []float64{1000, 2000, 1500},
		Budget: 800,
		Pairs: []Pair{
			{Links: []int{0, 1}, Utility: MustSRE(0.01)},
			{Links: []int{1, 2}, Utility: MustSRE(0.02)},
			{Links: []int{0, 2}, Utility: MustSRE(0.005)},
		},
	}
	s1, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := s1.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	pool := engine.NewPool(4)
	defer pool.Close()
	s2.Shard(pool)
	sharded, err := s2.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A single chunk reduces in the same order as the serial sweep, so
	// even serial-vs-sharded is bitwise here.
	if serial.Objective != sharded.Objective {
		t.Fatalf("single-chunk sharded objective %v != serial %v", sharded.Objective, serial.Objective)
	}
	for i := range serial.Rates {
		if serial.Rates[i] != sharded.Rates[i] {
			t.Fatalf("single-chunk sharded rate[%d] differs from serial", i)
		}
	}
}
