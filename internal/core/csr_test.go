package core

import (
	"errors"
	"math"
	"testing"

	"netsamp/internal/topology"
)

// csrFromInstance builds a CSRProblem over a generated instance with one
// shared SRE utility per flow-size class and θ = budgetFrac·Σ U_i.
func csrFromInstance(t testing.TB, inst *topology.ScaleInstance, budgetFrac float64) *CSRProblem {
	t.Helper()
	byClass := map[float64]Utility{}
	utils := make([]Utility, inst.NumPairs())
	for k, c := range inst.InvSizes {
		u, ok := byClass[c]
		if !ok {
			u = MustSRE(c)
			byClass[c] = u
		}
		utils[k] = u
	}
	return &CSRProblem{
		Loads:     inst.Loads,
		Budget:    budgetFrac * inst.MaxSampledRate(),
		Start:     inst.Start,
		Links:     inst.Links,
		Fracs:     inst.Fracs,
		Utilities: utils,
	}
}

// denseFromCSR rebuilds the equivalent dense Problem: one Pair per CSR
// row, sharing the CSR problem's utility objects.
func denseFromCSR(p *CSRProblem) *Problem {
	n := p.NumPairs()
	pairs := make([]Pair, n)
	for k := 0; k < n; k++ {
		lo, hi := p.Start[k], p.Start[k+1]
		links := make([]int, hi-lo)
		for j := lo; j < hi; j++ {
			links[j-lo] = int(p.Links[j])
		}
		var fracs []float64
		if p.Fracs != nil {
			fracs = append(fracs, p.Fracs[lo:hi]...)
		}
		pairs[k] = Pair{Links: links, Fracs: fracs, Utility: p.Utilities[k]}
	}
	return &Problem{
		Loads:  append([]float64(nil), p.Loads...),
		Budget: p.Budget,
		Pairs:  pairs,
		Model:  p.Model,
	}
}

func genInstance(t testing.TB, links, pairs int, seed uint64, ecmp bool) *topology.ScaleInstance {
	t.Helper()
	inst, err := topology.GenerateScale(topology.ScaleConfig{Seed: seed, Links: links, Pairs: pairs, ECMP: ecmp})
	if err != nil {
		t.Fatalf("GenerateScale(links=%d, pairs=%d): %v", links, pairs, err)
	}
	return inst
}

func TestNewSolverCSRValidation(t *testing.T) {
	valid := func() *CSRProblem {
		return &CSRProblem{
			Loads:     []float64{100, 200, 300},
			Budget:    50,
			Start:     []int32{0, 2, 3},
			Links:     []int32{0, 1, 2},
			Utilities: []Utility{MustSRE(0.01), MustSRE(0.02)},
		}
	}
	if _, err := NewSolverCSR(valid()); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	cases := map[string]func(*CSRProblem){
		"nil problem":        nil,
		"zero load":          func(p *CSRProblem) { p.Loads[1] = 0 },
		"nan load":           func(p *CSRProblem) { p.Loads[0] = math.NaN() },
		"no links":           func(p *CSRProblem) { p.Loads = nil },
		"budget zero":        func(p *CSRProblem) { p.Budget = 0 },
		"budget infeasible":  func(p *CSRProblem) { p.Budget = 1e9 },
		"start not zero-led": func(p *CSRProblem) { p.Start[0] = 1 },
		"start non-monotone": func(p *CSRProblem) { p.Start[1] = 3; p.Start[2] = 2 },
		"start wrong tail":   func(p *CSRProblem) { p.Start[2] = 2 },
		"empty row":          func(p *CSRProblem) { p.Start[1] = 0 },
		"link out of range":  func(p *CSRProblem) { p.Links[2] = 3 },
		"negative link":      func(p *CSRProblem) { p.Links[0] = -1 },
		"duplicate in row":   func(p *CSRProblem) { p.Links[1] = 0 },
		"nil utility":        func(p *CSRProblem) { p.Utilities[1] = nil },
		"missing utilities":  func(p *CSRProblem) { p.Utilities = p.Utilities[:1] },
		"frac zero":          func(p *CSRProblem) { p.Fracs = []float64{0, 1, 1} },
		"frac above one":     func(p *CSRProblem) { p.Fracs = []float64{1, 1, 1.5} },
		"alpha above one":    func(p *CSRProblem) { p.MaxRate = []float64{1, 2, 1} },
		"alpha zero":         func(p *CSRProblem) { p.MaxRate = []float64{1, 0, 1} },
		"bad weight":         func(p *CSRProblem) { p.Weights = []float64{1, math.Inf(1)} },
		"fracs non-frac model": func(p *CSRProblem) {
			m, err := ModelByName("independent-exact")
			if err != nil {
				t.Fatal(err)
			}
			p.Fracs = []float64{1, 0.5, 1}
			p.Model = m
		},
	}
	for name, mutate := range cases {
		p := valid()
		if mutate == nil {
			p = nil
		} else {
			mutate(p)
		}
		if _, err := NewSolverCSR(p); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}

// TestCSRMatchesDenseBitwise pins the CSR front door to the dense one:
// the same incidence expressed either way must compile to the same
// internal state and solve bit-identically (n here is far below the
// dense-KKT bound, so both run the exact same kernels).
func TestCSRMatchesDenseBitwise(t *testing.T) {
	for _, ecmp := range []bool{false, true} {
		inst := genInstance(t, 300, 600, 9, ecmp)
		cp := csrFromInstance(t, inst, 0.1)
		sc, err := NewSolverCSR(cp)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := NewSolver(denseFromCSR(cp))
		if err != nil {
			t.Fatal(err)
		}
		solC, err := sc.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		solD, err := sd.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if solC.Objective != solD.Objective {
			t.Errorf("ecmp=%v: objective %v (CSR) != %v (dense)", ecmp, solC.Objective, solD.Objective)
		}
		for i := range solC.Rates {
			if solC.Rates[i] != solD.Rates[i] {
				t.Fatalf("ecmp=%v: rate[%d] %v (CSR) != %v (dense)", ecmp, i, solC.Rates[i], solD.Rates[i])
			}
		}
		for k := range solC.Rho {
			if solC.Rho[k] != solD.Rho[k] {
				t.Fatalf("ecmp=%v: rho[%d] %v (CSR) != %v (dense)", ecmp, k, solC.Rho[k], solD.Rho[k])
			}
		}
	}
}

func csrFeasibility(t *testing.T, p *CSRProblem, sol *Solution, budgetSlack bool) {
	t.Helper()
	spend := 0.0
	for i, r := range sol.Rates {
		if r < -1e-12 || r > 1+1e-12 {
			t.Fatalf("rate[%d] = %v out of [0, 1]", i, r)
		}
		spend += r * p.Loads[i]
	}
	if budgetSlack {
		if spend > p.Budget*(1+1e-9) {
			t.Fatalf("budget overspent: %v > %v", spend, p.Budget)
		}
	} else if math.Abs(spend-p.Budget) > 1e-6*p.Budget {
		t.Fatalf("budget off: spend %v, want %v", spend, p.Budget)
	}
}

// TestCSRLargeNewtonCG drives the matrix-free Newton-KKT path (the free
// set exceeds the dense-KKT bound) and brackets its optimum with the
// Frank-Wolfe duality gap: exact must land inside [approx, approx+gap]
// up to rounding.
func TestCSRLargeNewtonCG(t *testing.T) {
	inst := genInstance(t, 1000, 3000, 5, false)
	cp := csrFromInstance(t, inst, 0.05)
	s, err := NewSolverCSR(cp)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumLinks() <= denseKKTMaxFree {
		t.Fatalf("instance too small to exercise the CG path: n = %d", s.NumLinks())
	}
	sol, err := s.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Converged {
		t.Fatalf("exact solve did not converge in %d iterations", sol.Stats.Iterations)
	}
	csrFeasibility(t, cp, sol, false)

	sa, err := NewSolverCSR(cp)
	if err != nil {
		t.Fatal(err)
	}
	apx, err := sa.SolveApprox(ApproxOptions{GapTol: 1e-4, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	scale := math.Max(1, math.Abs(apx.Objective))
	if sol.Objective < apx.Objective-1e-7*scale {
		t.Errorf("exact objective %v below approx %v", sol.Objective, apx.Objective)
	}
	if sol.Objective > apx.Objective+apx.GapBound+1e-7*scale {
		t.Errorf("exact objective %v above approx+gap %v", sol.Objective, apx.Objective+apx.GapBound)
	}
}

func TestCSRSolverRetune(t *testing.T) {
	inst := genInstance(t, 300, 400, 13, false)
	cp := csrFromInstance(t, inst, 0.1)
	s, err := NewSolverCSR(cp)
	if err != nil {
		t.Fatal(err)
	}
	sol1, err := s.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Re-tune budget and loads, solve, then restore: the restored solve
	// must be bit-identical to the first (workspace state fully reset).
	if err := s.SetBudget(cp.Budget / 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(Options{}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBudget(cp.Budget); err != nil {
		t.Fatal(err)
	}
	sol3, err := s.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol1.Objective != sol3.Objective {
		t.Fatalf("objective drifted across retune round-trip: %v != %v", sol1.Objective, sol3.Objective)
	}
	for i := range sol1.Rates {
		if sol1.Rates[i] != sol3.Rates[i] {
			t.Fatalf("rate[%d] drifted across retune round-trip", i)
		}
	}
}

func TestCSRTypedErrors(t *testing.T) {
	p := &CSRProblem{
		Loads:     []float64{100, -5},
		Budget:    10,
		Start:     []int32{0, 1},
		Links:     []int32{0},
		Utilities: []Utility{MustSRE(0.01)},
	}
	_, err := NewSolverCSR(p)
	if err == nil {
		t.Fatal("negative load accepted")
	}
	var ie *InputError
	if !errors.As(err, &ie) {
		t.Fatalf("error %T is not *InputError", err)
	}
	if !errors.Is(err, ErrInvalidInput) {
		t.Fatal("error does not match ErrInvalidInput")
	}
}
