package core

import (
	"errors"
	"fmt"
)

// ErrInvalidInput is the sentinel every numeric-input rejection wraps:
// NaN/Inf or out-of-range loads, α caps, budgets and utility parameters,
// at compile time (NewSolver/Validate) and at re-tune time
// (SetBudget/SetLoads/SetUtilities, WarmStart). Callers branch with
// errors.Is(err, ErrInvalidInput) — the control loop treats these as
// permanent configuration faults rather than transient solve failures.
var ErrInvalidInput = errors.New("core: invalid input")

// InputError is the typed rejection of a single numeric input. It wraps
// ErrInvalidInput for errors.Is.
type InputError struct {
	// Field names the rejected input: "load", "max rate", "budget",
	// "utility", "fraction", "weight".
	Field string
	// Index is the link or pair index the value belongs to, -1 when the
	// input is scalar (e.g. the budget).
	Index int
	// Value is the offending value.
	Value float64
	// Reason states the constraint that failed.
	Reason string
}

func (e *InputError) Error() string {
	if e.Index >= 0 {
		return fmt.Sprintf("core: %s %d is %v, %s", e.Field, e.Index, e.Value, e.Reason)
	}
	return fmt.Sprintf("core: %s is %v, %s", e.Field, e.Value, e.Reason)
}

// Is makes errors.Is(err, ErrInvalidInput) match every InputError.
func (e *InputError) Is(target error) bool { return target == ErrInvalidInput }

// invalidInput builds an InputError. index < 0 means a scalar input.
func invalidInput(field string, index int, value float64, reason string) error {
	return &InputError{Field: field, Index: index, Value: value, Reason: reason}
}
