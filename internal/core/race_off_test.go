//go:build !race

package core

// See race_on_test.go.
const raceTest = false
