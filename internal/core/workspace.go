package core

import (
	"fmt"
	"math"
)

// Solver is a reusable workspace for solving one Problem shape many
// times. Construction validates the problem once and compiles the pair
// rows into a flat CSR-style incidence (pair → links, with optional
// ECMP fractions), replacing the per-solve slice walks and the per-pair
// bookkeeping Validate used to rebuild on every call. All float buffers
// are owned by the Solver, so repeated SolveInto calls are allocation-
// free in steady state.
//
// A Solver is not safe for concurrent use; run one Solver per worker
// (internal/engine gives each job its own). The Problem's structure
// (pair count, link rows, fractions, rate model) must not change after
// NewSolver; numeric re-tuning between solves is supported through
// SetWeights, SetBudget, SetLoads and SetUtilities. The Solver owns a
// private copy of the Problem's numeric fields, so re-tuning never
// mutates the caller's Problem, and re-validation is limited to the
// field that changed. The one-shot core.Solve remains as a thin wrapper
// for callers that solve a shape only once.
type Solver struct {
	// prob is the Solver's private copy of the compiled problem: Loads
	// and the Pair headers are cloned so SetBudget/SetLoads/SetUtilities
	// can re-tune in place without touching the caller's Problem.
	prob   Problem
	p      *Problem
	// model is the resolved effective-rate model (never nil).
	model  RateModel
	n      int // candidate links
	nPairs int
	// maxSampled caches Σ α_i·U_i under the current loads — the budget
	// feasibility bound SetBudget re-checks without a full Validate.
	maxSampled float64

	// CSR incidence: pair k's links are links[start[k]:start[k+1]], and
	// fracs (nil when no pair has ECMP fractions) is indexed in parallel.
	start []int32
	links []int32
	fracs []float64
	utils []Utility
	wts   []float64
	// baseWts backs SetWeights(nil) for CSR-compiled solvers, which have
	// no Pair headers to read the problem weights back from. Nil for
	// solvers built by NewSolver.
	baseWts []float64

	// Scratch buffers of the gradient-projection iteration.
	rates, g, d, sdir, prevD []float64
	lower, upper             []bool

	// Scratch of the Newton-KKT step: the bordered system over the free
	// coordinates — dense only while the free set stays small (the matrix
	// is at most (denseKKTMaxFree+1)², never (n+1)², so a 10k-link solver
	// does not carry an 800 MB buffer) — and the link → free-position map.
	kkt     []float64
	kktRHS  []float64
	freePos []int32

	// Scratch of the matrix-free projected-CG Newton step used when the
	// free set outgrows the dense KKT factorization: per-pair curvature
	// coefficients and the CG work vectors. Only allocated for solvers
	// with n > denseKKTMaxFree.
	curv          []float64
	cgR, cgP, cgA []float64

	// Scratch of the Frank-Wolfe approximation path (SolveApprox): the
	// LMO's ratio keys and index permutation.
	lmoIdx   []int32
	lmoRatio []float64

	// sh is the sharding state: when a worker pool is attached via Shard,
	// the pair-loop kernels (gradient, line search, Hessian products,
	// solution assembly) fan out over fixed-size pair chunks with an
	// ordered reduction, so results are bit-identical at any worker count.
	sh shardState
}

// NewSolver validates p and compiles it into a reusable workspace.
func NewSolver(p *Problem) (*Solver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.NumLinks()
	s := &Solver{
		prob: Problem{
			Loads:   append([]float64(nil), p.Loads...),
			MaxRate: p.MaxRate,
			Budget:  p.Budget,
			Pairs:   append([]Pair(nil), p.Pairs...),
			Model:   p.Model,
		},
		n:      n,
		nPairs: len(p.Pairs),
		start:  make([]int32, len(p.Pairs)+1),
		utils:  make([]Utility, len(p.Pairs)),
		wts:    make([]float64, len(p.Pairs)),
	}
	s.initScratch()
	nnz := 0
	hasFracs := false
	for k := range p.Pairs {
		nnz += len(p.Pairs[k].Links)
		if p.Pairs[k].Fracs != nil {
			hasFracs = true
		}
	}
	s.links = make([]int32, 0, nnz)
	if hasFracs {
		s.fracs = make([]float64, 0, nnz)
	}
	for k := range p.Pairs {
		pr := &p.Pairs[k]
		for j, l := range pr.Links {
			s.links = append(s.links, int32(l))
			if hasFracs {
				f := 1.0
				if pr.Fracs != nil {
					f = pr.Fracs[j]
				}
				s.fracs = append(s.fracs, f)
			}
		}
		s.start[k+1] = int32(len(s.links))
		s.utils[k] = pr.Utility
		s.wts[k] = pr.weight()
	}
	return s, nil
}

// denseKKTMaxFree caps the free-coordinate count handled by the dense
// bordered Newton-KKT factorization. Below it the (nf+1)² system is
// assembled and eliminated in place — exactly the pre-scale behavior, so
// every small-instance result stays bitwise identical. Above it the step
// comes from the matrix-free projected-CG kernel (newtoncg.go), whose
// memory is O(n + nPairs) instead of O(n²).
const denseKKTMaxFree = 512

// initScratch sizes the solver-owned work buffers once s.prob, s.n and
// s.nPairs are populated. Shared by NewSolver and NewSolverCSR.
func (s *Solver) initScratch() {
	n := s.n
	s.p = &s.prob
	s.model = s.prob.model()
	s.maxSampled = 0
	for i, u := range s.prob.Loads {
		s.maxSampled += s.prob.alpha(i) * u
	}
	s.rates = make([]float64, n)
	s.g = make([]float64, n)
	s.d = make([]float64, n)
	s.sdir = make([]float64, n)
	s.prevD = make([]float64, n)
	s.lower = make([]bool, n)
	s.upper = make([]bool, n)
	kktDim := n
	if kktDim > denseKKTMaxFree {
		kktDim = denseKKTMaxFree
	}
	s.kkt = make([]float64, (kktDim+1)*(kktDim+1))
	s.kktRHS = make([]float64, n+1)
	s.freePos = make([]int32, n)
	if n > denseKKTMaxFree {
		s.curv = make([]float64, s.nPairs)
		s.cgR = make([]float64, n)
		s.cgP = make([]float64, n)
		s.cgA = make([]float64, n)
	}
	s.lmoIdx = make([]int32, n)
	s.lmoRatio = make([]float64, n)
}

// Problem returns the compiled problem: the Solver's private copy,
// reflecting any SetBudget/SetLoads/SetUtilities re-tuning. Callers must
// treat it as read-only; re-tune through the Set* methods.
func (s *Solver) Problem() *Problem { return s.p }

// SetBudget replaces the budget θ without recompiling, so a sweep or a
// per-interval loop can re-tune a compiled solver in place. Validation
// is limited to what changed: positivity and feasibility against the
// cached maximum samplable rate Σ α_i·U_i.
func (s *Solver) SetBudget(theta float64) error {
	if !(theta > 0) || math.IsInf(theta, 0) {
		return invalidInput("budget", -1, theta, "want a finite value > 0")
	}
	if theta > s.maxSampled*(1+1e-12) {
		return invalidInput("budget", -1, theta,
			fmt.Sprintf("exceeds maximum samplable rate %v (infeasible)", s.maxSampled))
	}
	s.prob.Budget = theta
	return nil
}

// SetLoads replaces the per-link loads without recompiling (successive
// measurement intervals re-optimize under drifting traffic). Validation
// is limited to what changed: positive finite loads and the budget
// staying within the new maximum samplable rate.
func (s *Solver) SetLoads(loads []float64) error {
	if len(loads) != s.n {
		return fmt.Errorf("core: %d loads for %d links", len(loads), s.n)
	}
	max := 0.0
	for i, u := range loads {
		if !(u > 0) || math.IsInf(u, 0) {
			return invalidInput("load of link", i, u, "want a finite value > 0")
		}
		max += s.prob.alpha(i) * u
	}
	if s.prob.Budget > max*(1+1e-12) {
		return invalidInput("budget", -1, s.prob.Budget,
			fmt.Sprintf("exceeds maximum samplable rate %v under new loads (infeasible)", max))
	}
	copy(s.prob.Loads, loads)
	s.maxSampled = max
	return nil
}

// SetUtilities replaces the per-pair utilities without recompiling (a
// cached solver can be re-parameterized when the OD size estimates
// drift between intervals). The incidence structure is untouched.
func (s *Solver) SetUtilities(us []Utility) error {
	if len(us) != s.nPairs {
		return fmt.Errorf("core: %d utilities for %d pairs", len(us), s.nPairs)
	}
	for k, u := range us {
		if u == nil {
			return fmt.Errorf("core: utility %d is nil", k)
		}
	}
	copy(s.utils, us)
	// A CSR-compiled solver has no Pair headers to mirror into.
	if s.prob.Pairs != nil {
		for k := range us {
			s.prob.Pairs[k].Utility = us[k]
		}
	}
	return nil
}

// SetWeights replaces the per-pair objective weights without recompiling
// (the max-min solver re-tunes weights every round). Entries <= 0 mean
// weight 1, mirroring Pair.Weight; nil restores the Problem's weights.
// The underlying Problem is not modified.
func (s *Solver) SetWeights(w []float64) error {
	if w == nil {
		if s.p.Pairs == nil {
			// CSR-compiled solver: the compiled weights (CSRProblem.Weights,
			// default 1) are the problem's weights; restore them.
			copy(s.wts, s.baseWts)
			return nil
		}
		for k := range s.wts {
			s.wts[k] = s.p.Pairs[k].weight()
		}
		return nil
	}
	if len(w) != s.nPairs {
		return fmt.Errorf("core: %d weights for %d pairs", len(w), s.nPairs)
	}
	for k, v := range w {
		if v <= 0 {
			v = 1
		}
		s.wts[k] = v
	}
	return nil
}

// Solve runs the gradient projection method and returns a freshly
// allocated Solution (safe to retain across further solves). For the
// allocation-free path reuse a Solution via SolveInto.
func (s *Solver) Solve(opt Options) (*Solution, error) {
	sol := &Solution{}
	if err := s.SolveInto(sol, opt); err != nil {
		return nil, err
	}
	return sol, nil
}

// SolveInto runs the solver, writing the result into sol. The Solution's
// slices are reused when their capacity suffices, so a Solution recycled
// across same-shaped solves makes the whole call allocation-free in
// steady state. The problem is NOT re-validated: validation happened
// once in NewSolver.
//netsamp:noalloc
func (s *Solver) SolveInto(sol *Solution, opt Options) error {
	p := s.p
	n := s.n
	tol := opt.tol()

	rates := s.rates
	if err := initialPointInto(p, opt, rates); err != nil {
		return err
	}

	lower, upper := s.lower, s.upper
	syncActive(p, rates, lower, upper)

	g, d, sdir, prevD := s.g, s.d, s.sdir, s.prevD
	havePrev := false

	var stats Stats
	for stats.Iterations = 0; stats.Iterations < opt.maxIter(); stats.Iterations++ {
		reproject(p, rates, lower, upper)
		s.gradient(rates, g)

		free := countFree(lower, upper)
		if free == 0 {
			// Fully constrained vertex: optimal iff some λ satisfies all
			// bound multipliers; otherwise free the violators.
			if ok := vertexKKT(p, g, lower, upper, tol); ok {
				s.finishInto(sol, rates, g, stats, true)
				return nil
			}
			deactivateVertex(p, g, lower, upper)
			stats.Removals++
			havePrev = false
			continue
		}

		lambda := projectionLambda(p, g, lower, upper)
		for i := 0; i < n; i++ {
			if lower[i] || upper[i] {
				d[i] = 0
			} else {
				d[i] = g[i] - lambda*p.Loads[i]
			}
		}

		if normInf(d) <= tol*(1+normInf(g)) {
			// (convergence test is on the unpreconditioned residual)
			// Projected gradient vanished: verify KKT at this point.
			if multipliersOK(p, g, lambda, lower, upper, tol) {
				s.finishInto(sol, rates, g, stats, true)
				return nil
			}
			// Paper's strategy: de-activate every active constraint whose
			// multiplier is negative and resume the search.
			removed := deactivateNegative(p, g, lambda, lower, upper, tol)
			if removed == 0 {
				// Numerical corner: multipliers marginally negative but
				// below deactivation threshold. Treat as converged.
				s.finishInto(sol, rates, g, stats, true)
				return nil
			}
			stats.Removals++
			havePrev = false
			continue
		}

		// Precondition with the diagonal metric 1/U_i²: equivalent to
		// taking the steepest-ascent direction in sampled-rate space
		// q_i = p_i·U_i, where the budget hyperplane Σq = θ is isotropic.
		// Without it the projected gradient zig-zags badly when loads
		// span orders of magnitude. The preconditioned direction must be
		// re-projected onto the hyperplane (in the scaled metric the
		// multiplier is the mean of g_i/U_i over free coordinates).
		if !opt.DisablePreconditioner {
			nFree, lamW := 0, 0.0
			for i := 0; i < n; i++ {
				if !lower[i] && !upper[i] {
					lamW += g[i] / p.Loads[i]
					nFree++
				}
			}
			lamW /= float64(nFree)
			for i := 0; i < n; i++ {
				if lower[i] || upper[i] {
					d[i] = 0
				} else {
					d[i] = (g[i] - lamW*p.Loads[i]) / (p.Loads[i] * p.Loads[i])
				}
			}
		}

		// Second-order step: on the current active set, solve the
		// equality-constrained Newton system for the free coordinates.
		// Quadratically convergent once the active set is right — which a
		// warm start supplies immediately — and safeguarded by the same
		// bound clamping and line search as the first-order direction.
		newton := !opt.DisableSecondOrder && s.newtonInto(sdir, rates, g, lower, upper)
		if newton {
			havePrev = false // don't blend a gradient with a Newton step
		} else {
			// Polak-Ribière blend of the previous direction (Section IV-D).
			copy(sdir, d)
			if !opt.DisablePolakRibiere && havePrev {
				num, den := 0.0, 0.0
				for i := 0; i < n; i++ {
					num += d[i] * (d[i] - prevD[i])
					den += prevD[i] * prevD[i]
				}
				if den > 0 {
					beta := num / den
					if beta > 0 {
						for i := 0; i < n; i++ {
							sdir[i] = d[i] + beta*prevD[i]
						}
						// The blended direction must remain an ascent
						// direction; otherwise restart from the projection.
						if dot(sdir, g) <= 0 {
							copy(sdir, d)
						}
					}
				}
			}
			copy(prevD, d)
			havePrev = true
		}

		tMax, blocking := maxStep(p, rates, sdir, lower, upper)
		if tMax <= 0 {
			// A constraint is binding in the search direction at step
			// zero: activate it and recompute the projection.
			if blocking >= 0 {
				activate(p, rates, blocking, lower, upper)
				havePrev = false
				continue
			}
			// Direction is zero on free coordinates; should have been
			// caught by the norm test above.
			s.finishInto(sol, rates, g, stats, false)
			return nil
		}

		t, hitMax := s.lineSearch(rates, sdir, tMax, opt, newton)
		for i := 0; i < n; i++ {
			if !lower[i] && !upper[i] {
				rates[i] += t * sdir[i]
			}
		}
		if hitMax && blocking >= 0 {
			activate(p, rates, blocking, lower, upper)
			havePrev = false
		}
		syncActive(p, rates, lower, upper)
	}

	reproject(p, rates, lower, upper)
	s.gradient(rates, g)
	s.finishInto(sol, rates, g, stats, false)
	return nil
}

// newtonInto attempts the equality-constrained Newton step at rates:
// solve
//
//	[H   U_f] [Δ]   [−g_f]
//	[U_fᵀ  0] [ν] = [  0 ]
//
// over the free coordinates, where H is the objective Hessian
// Σ_k w_k·M_k″(ρ_k)·ā_k ā_kᵀ (linear rate model) and U_f the loads —
// the budget-hyperplane tangency condition. On success the step is
// written into out (zero on pinned coordinates) and newtonInto reports
// true; the caller still clamps it to the box and line-searches along
// it, so a poor step degrades to a short move, never an infeasible one.
// Falls out (returning false) for non-additive rate models, a singular
// system, or a numerically non-ascent direction.
//netsamp:noalloc
func (s *Solver) newtonInto(out, rates, g []float64, lower, upper []bool) bool {
	if !s.model.Additive() {
		// The product model's Hessian has off-diagonal coupling terms
		// from ∂²ρ/∂p_i∂p_j; not worth the complexity for the ablation
		// model. The Hessian assembly below (c·f_a·f_b per pair) is exact
		// for every additive model.
		return false
	}
	p := s.p
	nf := 0
	for i := 0; i < s.n; i++ {
		if lower[i] || upper[i] {
			s.freePos[i] = -1
		} else {
			s.freePos[i] = int32(nf)
			nf++
		}
	}
	if nf == 0 {
		return false
	}
	if nf > denseKKTMaxFree {
		// The bordered dense system would need (nf+1)² floats and an
		// O(nf³) elimination; at scale the projected-CG kernel computes
		// the same step from Hessian-vector products over the CSR rows.
		return s.newtonCGInto(out, rates, g, nf)
	}
	m := nf + 1
	K := s.kkt[:m*m]
	for i := range K {
		K[i] = 0
	}
	for k := 0; k < s.nPairs; k++ {
		c := s.wts[k] * s.utils[k].Curv(s.rho(k, rates))
		//netsamp:floateq-ok exactly-zero curvature contributes nothing to K
		if c == 0 {
			continue
		}
		lo, hi := s.start[k], s.start[k+1]
		for a := lo; a < hi; a++ {
			ia := s.freePos[s.links[a]]
			if ia < 0 {
				continue
			}
			fa := 1.0
			if s.fracs != nil {
				fa = s.fracs[a]
			}
			row := int(ia) * m
			for b := lo; b < hi; b++ {
				ib := s.freePos[s.links[b]]
				if ib < 0 {
					continue
				}
				fb := 1.0
				if s.fracs != nil {
					fb = s.fracs[b]
				}
				K[row+int(ib)] += c * fa * fb
			}
		}
	}
	rhs := s.kktRHS[:m]
	for i := 0; i < s.n; i++ {
		if j := s.freePos[i]; j >= 0 {
			K[int(j)*m+nf] = p.Loads[i]
			K[nf*m+int(j)] = p.Loads[i]
			rhs[j] = -g[i]
		}
	}
	rhs[nf] = 0
	if !solveDenseInPlace(K, rhs, m) {
		return false
	}
	// Read the step back; require a (numerically) strict ascent
	// direction — guaranteed in exact arithmetic when H is negative
	// definite on the hyperplane's tangent space, so a failure here means
	// the system was near-singular and the step is garbage.
	asc := 0.0
	for i := 0; i < s.n; i++ {
		if j := s.freePos[i]; j >= 0 {
			v := rhs[j]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
			out[i] = v
			asc += v * g[i]
		} else {
			out[i] = 0
		}
	}
	return asc > 0
}

// solveDenseInPlace solves the m×m row-major system a·x = b by Gaussian
// elimination with partial pivoting, overwriting a and b (b becomes x).
// Reports false on an (effectively) singular pivot.
//netsamp:noalloc
func solveDenseInPlace(a, b []float64, m int) bool {
	for c := 0; c < m; c++ {
		pr, pmax := c, math.Abs(a[c*m+c])
		for r := c + 1; r < m; r++ {
			if v := math.Abs(a[r*m+c]); v > pmax {
				pr, pmax = r, v
			}
		}
		//netsamp:floateq-ok an exactly-zero pivot column means the system is singular
		if pmax == 0 {
			return false
		}
		if pr != c {
			for k := c; k < m; k++ {
				a[pr*m+k], a[c*m+k] = a[c*m+k], a[pr*m+k]
			}
			b[pr], b[c] = b[c], b[pr]
		}
		inv := 1 / a[c*m+c]
		for r := c + 1; r < m; r++ {
			f := a[r*m+c] * inv
			//netsamp:floateq-ok an exactly-zero multiplier leaves the row unchanged
			if f == 0 {
				continue
			}
			for k := c + 1; k < m; k++ {
				a[r*m+k] -= f * a[c*m+k]
			}
			b[r] -= f * b[c]
		}
	}
	for r := m - 1; r >= 0; r-- {
		v := b[r]
		for k := r + 1; k < m; k++ {
			v -= a[r*m+k] * b[k]
		}
		b[r] = v / a[r*m+r]
	}
	return true
}

// csrFracs returns pair row [lo, hi)'s fraction subslice, or nil when
// no pair carries ECMP fractions. Subslicing never allocates.
//netsamp:noalloc
func (s *Solver) csrFracs(lo, hi int32) []float64 {
	if s.fracs == nil {
		return nil
	}
	return s.fracs[lo:hi]
}

// rho returns the effective sampling rate of pair k at rates, from the
// compiled incidence.
//netsamp:noalloc
func (s *Solver) rho(k int, rates []float64) float64 {
	lo, hi := s.start[k], s.start[k+1]
	return s.model.pairRhoCSR(s.links[lo:hi], s.csrFracs(lo, hi), rates)
}

// gradient writes ∂/∂p_i Σ_k w_k·M_k(ρ_k) into out.
//netsamp:noalloc
func (s *Solver) gradient(rates, out []float64) {
	if s.sh.pool != nil {
		s.shardGradient(rates, out)
		return
	}
	for i := range out {
		out[i] = 0
	}
	for k := 0; k < s.nPairs; k++ {
		lo, hi := s.start[k], s.start[k+1]
		links, fracs := s.links[lo:hi], s.csrFracs(lo, hi)
		rho := s.model.pairRhoCSR(links, fracs, rates)
		d := s.wts[k] * s.utils[k].Deriv(rho)
		s.model.accumGradCSR(links, fracs, rates, rho, d, out)
	}
}

// lineDerivs returns φ'(t) and φ”(t) for φ(t) = Objective(rates + t·dir)
// over the compiled incidence (see Problem.lineDerivs for the math).
//netsamp:noalloc
func (s *Solver) lineDerivs(rates, dir []float64, t float64) (d1, d2 float64) {
	if s.sh.pool != nil {
		return s.shardLineDerivs(rates, dir, t)
	}
	for k := 0; k < s.nPairs; k++ {
		lo, hi := s.start[k], s.start[k+1]
		e1, e2 := s.model.lineTermsCSR(s.links[lo:hi], s.csrFracs(lo, hi), rates, dir, t, s.utils[k], s.wts[k])
		d1 += e1
		d2 += e2
	}
	return d1, d2
}

// lineSearch maximizes φ(t) = Objective(rates + t·dir) over [0, tMax].
// See the package solver notes: φ is concave along dir under the
// additive rate models, so φ' is decreasing; safeguarded Newton with a
// bisection fallback keeps the bracket valid even under the product
// rate model.
// newtonDir marks dir as a Newton-KKT step, whose natural length is 1 —
// starting there instead of the bracket midpoint saves most of the
// search when the quadratic model is accurate.
//netsamp:noalloc
func (s *Solver) lineSearch(rates, dir []float64, tMax float64, opt Options, newtonDir bool) (t float64, hitMax bool) {
	d1End, _ := s.lineDerivs(rates, dir, tMax)
	if d1End >= 0 {
		return tMax, true
	}
	lo, hi := 0.0, tMax
	t = tMax / 2
	if newtonDir && tMax > 1 {
		t = 1
	}
	for iter := 0; iter < 100; iter++ {
		d1, d2 := s.lineDerivs(rates, dir, t)
		if d1 > 0 {
			lo = t
		} else {
			hi = t
		}
		if hi-lo <= 1e-14*tMax {
			break
		}
		var next float64
		if !opt.DisableNewton && d2 < 0 {
			next = t - d1/d2
		} else {
			next = math.NaN()
		}
		if !(next > lo && next < hi) {
			next = (lo + hi) / 2
		}
		if math.Abs(next-t) <= 1e-15*tMax {
			t = next
			break
		}
		t = next
	}
	return t, false
}

// finishInto assembles the Solution at the terminal point, reusing sol's
// slices when they are large enough.
//netsamp:noalloc
func (s *Solver) finishInto(sol *Solution, rates, g []float64, stats Stats, converged bool) {
	p := s.p
	lower, upper := s.lower, s.upper
	stats.Converged = converged
	lambda := projectionLambda(p, g, lower, upper)
	if countFree(lower, upper) == 0 {
		// λ is only interval-constrained at a vertex; report the midpoint
		// of the feasible interval (clamped to finite values).
		loLam, hiLam := math.Inf(-1), math.Inf(1)
		for i := range g {
			r := g[i] / p.Loads[i]
			if upper[i] {
				loLam = math.Max(loLam, r)
			}
			if lower[i] {
				hiLam = math.Min(hiLam, r)
			}
		}
		switch {
		case !math.IsInf(loLam, 0) && !math.IsInf(hiLam, 0):
			lambda = (loLam + hiLam) / 2
		case !math.IsInf(loLam, 0):
			lambda = loLam
		case !math.IsInf(hiLam, 0):
			lambda = hiLam
		}
	}
	n := len(rates)
	sol.Rates = resizeFloats(sol.Rates, n)
	copy(sol.Rates, rates)
	sol.Rho = resizeFloats(sol.Rho, s.nPairs)
	sol.Utilities = resizeFloats(sol.Utilities, s.nPairs)
	obj := 0.0
	if s.sh.pool != nil {
		obj = s.shardFinish(rates, sol.Rho, sol.Utilities)
	} else {
		for k := 0; k < s.nPairs; k++ {
			rho := s.rho(k, rates)
			u := s.utils[k].Value(rho)
			sol.Rho[k] = rho
			sol.Utilities[k] = u
			obj += s.wts[k] * u
		}
	}
	sol.Objective = obj
	sol.GapBound = 0
	sol.Approx = false
	sol.Lambda = lambda
	sol.LowerMult = resizeFloats(sol.LowerMult, n)
	sol.UpperMult = resizeFloats(sol.UpperMult, n)
	for i := range rates {
		sol.LowerMult[i], sol.UpperMult[i] = 0, 0
		if lower[i] {
			sol.LowerMult[i] = lambda*p.Loads[i] - g[i]
		}
		if upper[i] {
			sol.UpperMult[i] = g[i] - lambda*p.Loads[i]
		}
	}
	sol.Stats = stats
}

// resizeFloats returns a slice of length n, reusing buf's storage when
// its capacity suffices.
//netsamp:noalloc
func resizeFloats(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n) //netsamp:alloc-ok grow-only scratch, amortized to zero across solves
}
