package core

import (
	"math"
	"testing"
)

func TestValidateFractions(t *testing.T) {
	good := func() *Problem {
		return &Problem{
			Loads:  []float64{100, 100},
			Budget: 1,
			Pairs: []Pair{{
				Name: "a", Links: []int{0, 1}, Fracs: []float64{0.5, 0.5},
				Utility: MustSRE(0.01),
			}},
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("good fractional problem rejected: %v", err)
	}
	cases := []func(p *Problem){
		func(p *Problem) { p.Pairs[0].Fracs = []float64{0.5} },      // length
		func(p *Problem) { p.Pairs[0].Fracs = []float64{0, 0.5} },   // zero
		func(p *Problem) { p.Pairs[0].Fracs = []float64{1.5, 0.5} }, // > 1
		func(p *Problem) { p.Model = ModelIndependentExact },        // exact + fractions
	}
	for i, mutate := range cases {
		p := good()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFractionalEffectiveRate(t *testing.T) {
	p := &Problem{
		Loads:  []float64{100, 100},
		Budget: 1,
		Pairs: []Pair{{
			Name: "a", Links: []int{0, 1}, Fracs: []float64{0.5, 0.25},
			Utility: MustSRE(0.01),
		}},
	}
	rho := p.EffectiveRates([]float64{0.02, 0.04})
	want := 0.5*0.02 + 0.25*0.04
	if math.Abs(rho[0]-want) > 1e-15 {
		t.Fatalf("rho = %v, want %v", rho[0], want)
	}
}

func TestFractionalGradientMatchesFiniteDifference(t *testing.T) {
	p := &Problem{
		Loads:  []float64{500, 900, 1300},
		Budget: 5,
		Pairs: []Pair{
			{Name: "a", Links: []int{0, 1}, Fracs: []float64{0.5, 0.5}, Utility: MustSRE(0.002)},
			{Name: "b", Links: []int{1, 2}, Fracs: []float64{0.25, 0.75}, Utility: MustSRE(0.001)},
		},
	}
	rates := []float64{0.004, 0.003, 0.002}
	g := make([]float64, 3)
	p.Gradient(rates, g)
	for i := range rates {
		h := 1e-8
		up := append([]float64(nil), rates...)
		dn := append([]float64(nil), rates...)
		up[i] += h
		dn[i] -= h
		fd := (p.Objective(up) - p.Objective(dn)) / (2 * h)
		if math.Abs(fd-g[i])/math.Max(math.Abs(g[i]), 1e-9) > 1e-4 {
			t.Fatalf("gradient[%d] = %v, finite diff %v", i, g[i], fd)
		}
	}
	// Line derivatives along a budget-neutral direction.
	s := []float64{0.001, -0.0005, 0.0002}
	d1, d2 := p.lineDerivs(rates, s, 0.1)
	h := 1e-7
	shifted := func(tt float64) float64 {
		x := append([]float64(nil), rates...)
		for i := range x {
			x[i] += tt * s[i]
		}
		return p.Objective(x)
	}
	fd1 := (shifted(0.1+h) - shifted(0.1-h)) / (2 * h)
	if math.Abs(fd1-d1)/math.Max(math.Abs(d1), 1e-9) > 1e-4 {
		t.Fatalf("lineDeriv = %v, finite diff %v", d1, fd1)
	}
	if d2 >= 0 {
		t.Fatalf("line curvature %v, want < 0", d2)
	}
}

// TestSolveECMPEquivalence: a pair split 50/50 over two identical
// parallel links must receive equal rates on both, and its effective
// rate must equal what a single-path pair would get at the same cost.
func TestSolveECMPEquivalence(t *testing.T) {
	p := &Problem{
		// Two ECMP branches of pair a (each carries half its packets and
		// half its load) and one separate link for pair b.
		Loads:  []float64{1000, 1000, 2000},
		Budget: 20,
		Pairs: []Pair{
			{Name: "a", Links: []int{0, 1}, Fracs: []float64{0.5, 0.5}, Utility: MustSRE(0.001)},
			{Name: "b", Links: []int{2}, Utility: MustSRE(0.001)},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(sol.Rates[0]-sol.Rates[1]) > 1e-9 {
		t.Fatalf("ECMP branches got unequal rates: %v", sol.Rates)
	}
	// Symmetric instance: sampling pair a on both branches at rate p
	// gives rho_a = p at cost 2000p — identical economics to pair b on
	// its single 2000-load link. Rates must match.
	if math.Abs(sol.Rates[0]-sol.Rates[2]) > 1e-7 {
		t.Fatalf("ECMP pair priced differently from single-path twin: %v", sol.Rates)
	}
	if math.Abs(sol.Rho[0]-sol.Rho[1]) > 1e-7 {
		t.Fatalf("unequal effective rates: %v", sol.Rho)
	}
}
