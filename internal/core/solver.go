package core

import (
	"fmt"
	"math"
)

// Options tunes the gradient-projection solver. The zero value selects
// the defaults used throughout the paper's evaluation.
type Options struct {
	// MaxIter bounds the number of search directions computed. The paper
	// uses 2000 ("to keep the execution time in the order of a few
	// seconds"); 0 selects that default.
	MaxIter int
	// Tol is the relative convergence tolerance on the infinity norm of
	// the projected gradient and on the KKT multiplier check. 0 selects
	// 1e-6, roughly the double-precision noise floor of the gradient at
	// the low sampling rates the optimum exhibits.
	Tol float64
	// DisablePreconditioner turns off the diagonal 1/U_i² metric that
	// makes the budget hyperplane isotropic (ablation switch; the
	// unpreconditioned method zig-zags when link loads span orders of
	// magnitude).
	DisablePreconditioner bool
	// DisablePolakRibiere turns off conjugate-direction blending and
	// falls back to the pure projected gradient (the paper discusses the
	// zig-zag pathology this causes; kept as an ablation switch).
	DisablePolakRibiere bool
	// DisableNewton replaces the Newton one-dimensional search with pure
	// bisection on φ' (ablation switch; slower, same fixed point).
	DisableNewton bool
	// DisableSecondOrder turns off the Newton-KKT step on the free
	// subspace and falls back to the first-order projected search
	// everywhere (ablation switch; the paper's method, many more
	// iterations near the optimum). The second-order step is what makes
	// warm-started continuation solves converge in a handful of
	// iterations: a warm start supplies the optimal active set, and on a
	// fixed active set the Newton iteration is quadratically convergent.
	DisableSecondOrder bool
	// Initial optionally supplies a feasible starting point. When nil a
	// waterfilling point on the budget hyperplane is used.
	Initial []float64
}

//netsamp:noalloc
func (o Options) maxIter() int {
	if o.MaxIter <= 0 {
		return 2000
	}
	return o.MaxIter
}

//netsamp:noalloc
func (o Options) tol() float64 {
	if o.Tol <= 0 {
		return 1e-6
	}
	return o.Tol
}

// Stats records how the solver ran; the paper reports these numbers for
// 200 randomized executions (Section IV-D).
type Stats struct {
	// Iterations is the number of search directions computed.
	Iterations int
	// Removals counts the events where active constraints with negative
	// Lagrange multipliers had to be de-activated to continue the search.
	Removals int
	// Converged reports whether the KKT conditions were met within
	// MaxIter iterations.
	Converged bool
}

// Solution is the solver's output: the optimal sampling-rate vector and
// its certificates.
type Solution struct {
	// Rates is p*: Rates[i] is the sampling probability of candidate
	// link i; zero means the monitor on link i stays off.
	Rates []float64
	// Objective is Σ_k M_k(ρ_k) at Rates.
	Objective float64
	// Rho and Utilities are the per-pair effective sampling rates and
	// utilities at Rates.
	Rho       []float64
	Utilities []float64
	// Lambda is the multiplier of the budget equality constraint (the
	// marginal utility of capacity θ).
	Lambda float64
	// LowerMult and UpperMult are the multipliers ν_i (p_i ≥ 0) and μ_i
	// (p_i ≤ α_i); entries are zero for inactive constraints.
	LowerMult, UpperMult []float64
	// Approx reports that this solution came from the Frank-Wolfe
	// approximation path (SolveApprox) rather than the exact KKT solver.
	Approx bool
	// GapBound is the duality-gap certificate of an approximate solution:
	// the exact optimum satisfies f* ≤ Objective + GapBound. Zero for
	// exact solves (whose certificate is Stats.Converged).
	GapBound float64
	// Stats describes the run.
	Stats Stats
}

// ActiveMonitors returns the indices of links with a strictly positive
// sampling rate — the monitors that must be activated.
func (s *Solution) ActiveMonitors() []int {
	var out []int
	for i, r := range s.Rates {
		if r > 0 {
			out = append(out, i)
		}
	}
	return out
}

// SampledRate returns Σ p_i·U_i for this solution under the given loads.
func (s *Solution) SampledRate(loads []float64) float64 {
	t := 0.0
	for i, r := range s.Rates {
		t += r * loads[i]
	}
	return t
}

// snapTol is the absolute tolerance within which a rate is snapped onto
// a bound and the bound is considered active.
const snapTol = 1e-12

// Solve runs the gradient projection method of Section IV-D and returns
// the optimizer of the sampling problem. The returned solution is
// feasible; Stats.Converged reports whether it carries a KKT optimality
// certificate (in the paper's experiments 98.6% of runs converge within
// 2000 iterations).
//
// Solve is a one-shot convenience wrapper: it validates and compiles the
// problem on every call. Callers that solve the same problem shape
// repeatedly (θ-sweeps, reweighted rounds, per-interval re-optimization)
// should build a Solver once and reuse it — repeated Solver.SolveInto
// calls are allocation-free in steady state.
func Solve(p *Problem, opt Options) (*Solution, error) {
	s, err := NewSolver(p)
	if err != nil {
		return nil, err
	}
	return s.Solve(opt)
}

// initialPointInto writes a feasible start into rates (length NumLinks):
// the caller's point (validated) or the waterfilling point
// min(α_i, τ/U_i) with τ chosen so the budget holds with equality.
//netsamp:noalloc
func initialPointInto(p *Problem, opt Options, rates []float64) error {
	n := p.NumLinks()
	if opt.Initial != nil {
		if len(opt.Initial) != n {
			return fmt.Errorf("core: initial point has %d entries for %d links", len(opt.Initial), n)
		}
		copy(rates, opt.Initial)
		total := 0.0
		for i, r := range rates {
			if r < -snapTol || r > p.alpha(i)+snapTol {
				return fmt.Errorf("core: initial rate %v of link %d violates [0, %v]", r, i, p.alpha(i))
			}
			total += r * p.Loads[i]
		}
		if math.Abs(total-p.Budget) > 1e-6*math.Max(1, p.Budget) {
			return fmt.Errorf("core: initial point uses %v of budget %v", total, p.Budget)
		}
		return nil
	}
	// Waterfill: Σ_i min(α_i·U_i, τ) = Budget; bisect on τ.
	hi := 0.0
	for i := range p.Loads {
		if v := p.alpha(i) * p.Loads[i]; v > hi {
			hi = v
		}
	}
	lo := 0.0
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		total := 0.0
		for i := range p.Loads {
			total += math.Min(p.alpha(i)*p.Loads[i], mid)
		}
		if total < p.Budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	tau := (lo + hi) / 2
	for i := range rates {
		rates[i] = math.Min(p.alpha(i), tau/p.Loads[i])
	}
	// Exact equality: rescale the interior coordinates to absorb the
	// bisection residual.
	fixBudget(p, rates, nil, nil)
	return nil
}

// initialPoint is initialPointInto with a freshly allocated buffer.
func initialPoint(p *Problem, opt Options) ([]float64, error) {
	rates := make([]float64, p.NumLinks())
	if err := initialPointInto(p, opt, rates); err != nil {
		return nil, err
	}
	return rates, nil
}

// fixBudget removes the budget-equality drift by shifting free
// coordinates along the loads vector (the minimum-norm correction),
// clamping to bounds. lower/upper may be nil, meaning all coordinates
// are free.
//netsamp:noalloc
func fixBudget(p *Problem, rates []float64, lower, upper []bool) {
	for pass := 0; pass < 4; pass++ {
		viol := -p.Budget
		for i, r := range rates {
			viol += r * p.Loads[i]
		}
		if math.Abs(viol) <= 1e-12*math.Max(1, p.Budget) {
			return
		}
		den := 0.0
		for i := range rates {
			if lower != nil && (lower[i] || upper[i]) {
				continue
			}
			den += p.Loads[i] * p.Loads[i]
		}
		//netsamp:floateq-ok a sum of squares is exactly zero only when every term is
		if den == 0 {
			return
		}
		for i := range rates {
			if lower != nil && (lower[i] || upper[i]) {
				continue
			}
			rates[i] -= viol * p.Loads[i] / den
			if rates[i] < 0 {
				rates[i] = 0
			}
			if a := p.alpha(i); rates[i] > a {
				rates[i] = a
			}
		}
	}
}

// reproject snaps near-bound rates onto their bounds and restores the
// budget equality.
//netsamp:noalloc
func reproject(p *Problem, rates []float64, lower, upper []bool) {
	for i := range rates {
		if rates[i] < snapTol {
			rates[i] = 0
		}
		if a := p.alpha(i); rates[i] > a-snapTol {
			rates[i] = a
		}
	}
	fixBudget(p, rates, lower, upper)
}

// syncActive refreshes the active-set flags from the current point.
//netsamp:noalloc
func syncActive(p *Problem, rates []float64, lower, upper []bool) {
	for i := range rates {
		lower[i] = rates[i] <= snapTol
		upper[i] = rates[i] >= p.alpha(i)-snapTol
		if lower[i] {
			rates[i] = 0
		}
		if upper[i] {
			rates[i] = p.alpha(i)
		}
	}
}

//netsamp:noalloc
func activate(p *Problem, rates []float64, i int, lower, upper []bool) {
	a := p.alpha(i)
	if math.Abs(rates[i]-a) < math.Abs(rates[i]) {
		rates[i] = a
		upper[i] = true
	} else {
		rates[i] = 0
		lower[i] = true
	}
}

//netsamp:noalloc
func countFree(lower, upper []bool) int {
	n := 0
	for i := range lower {
		if !lower[i] && !upper[i] {
			n++
		}
	}
	return n
}

// projectionLambda returns the multiplier of the budget hyperplane for
// the projection of g onto the free subspace: λ = ⟨g,U⟩/⟨U,U⟩ over free
// coordinates.
//netsamp:noalloc
func projectionLambda(p *Problem, g []float64, lower, upper []bool) float64 {
	num, den := 0.0, 0.0
	for i := range g {
		if lower[i] || upper[i] {
			continue
		}
		num += g[i] * p.Loads[i]
		den += p.Loads[i] * p.Loads[i]
	}
	//netsamp:floateq-ok a sum of squares is exactly zero only when every term is
	if den == 0 {
		return 0
	}
	return num / den
}

// multipliersOK checks the sign conditions on the bound multipliers at a
// stationary point of the free subspace: ν_i = λU_i − g_i ≥ 0 for active
// lower bounds, μ_i = g_i − λU_i ≥ 0 for active upper bounds.
//netsamp:noalloc
func multipliersOK(p *Problem, g []float64, lambda float64, lower, upper []bool, tol float64) bool {
	kappa := tol * (1 + normInf(g))
	for i := range g {
		if lower[i] && lambda*p.Loads[i]-g[i] < -kappa {
			return false
		}
		if upper[i] && g[i]-lambda*p.Loads[i] < -kappa {
			return false
		}
	}
	return true
}

// deactivateNegative frees every active bound whose multiplier is
// negative (the paper's recovery strategy) and returns how many were
// freed.
//netsamp:noalloc
func deactivateNegative(p *Problem, g []float64, lambda float64, lower, upper []bool, tol float64) int {
	kappa := tol * (1 + normInf(g))
	removed := 0
	for i := range g {
		if lower[i] && lambda*p.Loads[i]-g[i] < -kappa {
			lower[i] = false
			removed++
		} else if upper[i] && g[i]-lambda*p.Loads[i] < -kappa {
			upper[i] = false
			removed++
		}
	}
	return removed
}

// vertexKKT handles the fully-constrained case: every coordinate is at a
// bound, so λ is not pinned by stationarity; optimality holds iff the
// interval [max over upper of g_i/U_i, min over lower of g_i/U_i]
// is non-empty.
//netsamp:noalloc
func vertexKKT(p *Problem, g []float64, lower, upper []bool, tol float64) bool {
	loLam := math.Inf(-1) // λ ≥ g_i/U_i … from upper bounds
	hiLam := math.Inf(1)  // λ ≤ g_i/U_i … from lower bounds
	for i := range g {
		r := g[i] / p.Loads[i]
		if upper[i] {
			loLam = math.Max(loLam, r)
		}
		if lower[i] {
			hiLam = math.Min(hiLam, r)
		}
	}
	kappa := tol * (1 + normInf(g))
	return loLam <= hiLam+kappa
}

// deactivateVertex frees the bounds that prevent the λ-interval from
// being non-empty: the arg-max upper bound and the arg-min lower bound.
//netsamp:noalloc
func deactivateVertex(p *Problem, g []float64, lower, upper []bool) {
	loIdx, hiIdx := -1, -1
	loLam, hiLam := math.Inf(-1), math.Inf(1)
	for i := range g {
		r := g[i] / p.Loads[i]
		if upper[i] && r > loLam {
			loLam, loIdx = r, i
		}
		if lower[i] && r < hiLam {
			hiLam, hiIdx = r, i
		}
	}
	if loIdx >= 0 {
		upper[loIdx] = false
	}
	if hiIdx >= 0 {
		lower[hiIdx] = false
	}
}

// maxStep returns the largest step along s that keeps every free
// coordinate within its bounds, and the index of the first blocking
// constraint (-1 when unbounded, which cannot happen with finite caps
// unless s is zero on the free set).
//netsamp:noalloc
func maxStep(p *Problem, rates, s []float64, lower, upper []bool) (float64, int) {
	tMax := math.Inf(1)
	blocking := -1
	for i := range s {
		//netsamp:floateq-ok an exactly-zero step direction means the coordinate is stationary
		if lower[i] || upper[i] || s[i] == 0 {
			continue
		}
		var t float64
		if s[i] > 0 {
			t = (p.alpha(i) - rates[i]) / s[i]
		} else {
			t = -rates[i] / s[i]
		}
		if t < tMax {
			tMax = t
			blocking = i
		}
	}
	if math.IsInf(tMax, 1) {
		return 0, -1
	}
	return tMax, blocking
}

//netsamp:noalloc
func normInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

//netsamp:noalloc
func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
