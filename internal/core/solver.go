package core

import (
	"fmt"
	"math"
)

// Options tunes the gradient-projection solver. The zero value selects
// the defaults used throughout the paper's evaluation.
type Options struct {
	// MaxIter bounds the number of search directions computed. The paper
	// uses 2000 ("to keep the execution time in the order of a few
	// seconds"); 0 selects that default.
	MaxIter int
	// Tol is the relative convergence tolerance on the infinity norm of
	// the projected gradient and on the KKT multiplier check. 0 selects
	// 1e-6, roughly the double-precision noise floor of the gradient at
	// the low sampling rates the optimum exhibits.
	Tol float64
	// DisablePreconditioner turns off the diagonal 1/U_i² metric that
	// makes the budget hyperplane isotropic (ablation switch; the
	// unpreconditioned method zig-zags when link loads span orders of
	// magnitude).
	DisablePreconditioner bool
	// DisablePolakRibiere turns off conjugate-direction blending and
	// falls back to the pure projected gradient (the paper discusses the
	// zig-zag pathology this causes; kept as an ablation switch).
	DisablePolakRibiere bool
	// DisableNewton replaces the Newton one-dimensional search with pure
	// bisection on φ' (ablation switch; slower, same fixed point).
	DisableNewton bool
	// Initial optionally supplies a feasible starting point. When nil a
	// waterfilling point on the budget hyperplane is used.
	Initial []float64
}

func (o Options) maxIter() int {
	if o.MaxIter <= 0 {
		return 2000
	}
	return o.MaxIter
}

func (o Options) tol() float64 {
	if o.Tol <= 0 {
		return 1e-6
	}
	return o.Tol
}

// Stats records how the solver ran; the paper reports these numbers for
// 200 randomized executions (Section IV-D).
type Stats struct {
	// Iterations is the number of search directions computed.
	Iterations int
	// Removals counts the events where active constraints with negative
	// Lagrange multipliers had to be de-activated to continue the search.
	Removals int
	// Converged reports whether the KKT conditions were met within
	// MaxIter iterations.
	Converged bool
}

// Solution is the solver's output: the optimal sampling-rate vector and
// its certificates.
type Solution struct {
	// Rates is p*: Rates[i] is the sampling probability of candidate
	// link i; zero means the monitor on link i stays off.
	Rates []float64
	// Objective is Σ_k M_k(ρ_k) at Rates.
	Objective float64
	// Rho and Utilities are the per-pair effective sampling rates and
	// utilities at Rates.
	Rho       []float64
	Utilities []float64
	// Lambda is the multiplier of the budget equality constraint (the
	// marginal utility of capacity θ).
	Lambda float64
	// LowerMult and UpperMult are the multipliers ν_i (p_i ≥ 0) and μ_i
	// (p_i ≤ α_i); entries are zero for inactive constraints.
	LowerMult, UpperMult []float64
	// Stats describes the run.
	Stats Stats
}

// ActiveMonitors returns the indices of links with a strictly positive
// sampling rate — the monitors that must be activated.
func (s *Solution) ActiveMonitors() []int {
	var out []int
	for i, r := range s.Rates {
		if r > 0 {
			out = append(out, i)
		}
	}
	return out
}

// SampledRate returns Σ p_i·U_i for this solution under the given loads.
func (s *Solution) SampledRate(loads []float64) float64 {
	t := 0.0
	for i, r := range s.Rates {
		t += r * loads[i]
	}
	return t
}

// snapTol is the absolute tolerance within which a rate is snapped onto
// a bound and the bound is considered active.
const snapTol = 1e-12

// Solve runs the gradient projection method of Section IV-D and returns
// the optimizer of the sampling problem. The returned solution is
// feasible; Stats.Converged reports whether it carries a KKT optimality
// certificate (in the paper's experiments 98.6% of runs converge within
// 2000 iterations).
func Solve(p *Problem, opt Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.NumLinks()
	tol := opt.tol()

	rates, err := initialPoint(p, opt)
	if err != nil {
		return nil, err
	}

	lower := make([]bool, n) // p_i = 0 active
	upper := make([]bool, n) // p_i = α_i active
	syncActive(p, rates, lower, upper)

	g := make([]float64, n)
	d := make([]float64, n)
	sdir := make([]float64, n)
	prevD := make([]float64, n)
	havePrev := false

	var stats Stats
	for stats.Iterations = 0; stats.Iterations < opt.maxIter(); stats.Iterations++ {
		reproject(p, rates, lower, upper)
		p.Gradient(rates, g)

		free := countFree(lower, upper)
		if free == 0 {
			// Fully constrained vertex: optimal iff some λ satisfies all
			// bound multipliers; otherwise free the violators.
			if ok := vertexKKT(p, g, lower, upper, tol); ok {
				return finish(p, rates, g, lower, upper, stats, true), nil
			}
			deactivateVertex(p, g, lower, upper)
			stats.Removals++
			havePrev = false
			continue
		}

		lambda := projectionLambda(p, g, lower, upper)
		for i := 0; i < n; i++ {
			if lower[i] || upper[i] {
				d[i] = 0
			} else {
				d[i] = g[i] - lambda*p.Loads[i]
			}
		}

		if normInf(d) <= tol*(1+normInf(g)) {
			// (convergence test is on the unpreconditioned residual)
			// Projected gradient vanished: verify KKT at this point.
			if multipliersOK(p, g, lambda, lower, upper, tol) {
				return finish(p, rates, g, lower, upper, stats, true), nil
			}
			// Paper's strategy: de-activate every active constraint whose
			// multiplier is negative and resume the search.
			removed := deactivateNegative(p, g, lambda, lower, upper, tol)
			if removed == 0 {
				// Numerical corner: multipliers marginally negative but
				// below deactivation threshold. Treat as converged.
				return finish(p, rates, g, lower, upper, stats, true), nil
			}
			stats.Removals++
			havePrev = false
			continue
		}

		// Precondition with the diagonal metric 1/U_i²: equivalent to
		// taking the steepest-ascent direction in sampled-rate space
		// q_i = p_i·U_i, where the budget hyperplane Σq = θ is isotropic.
		// Without it the projected gradient zig-zags badly when loads
		// span orders of magnitude. The preconditioned direction must be
		// re-projected onto the hyperplane (in the scaled metric the
		// multiplier is the mean of g_i/U_i over free coordinates).
		if !opt.DisablePreconditioner {
			nFree, lamW := 0, 0.0
			for i := 0; i < n; i++ {
				if !lower[i] && !upper[i] {
					lamW += g[i] / p.Loads[i]
					nFree++
				}
			}
			lamW /= float64(nFree)
			for i := 0; i < n; i++ {
				if lower[i] || upper[i] {
					d[i] = 0
				} else {
					d[i] = (g[i] - lamW*p.Loads[i]) / (p.Loads[i] * p.Loads[i])
				}
			}
		}

		// Polak-Ribière blend of the previous direction (Section IV-D).
		copy(sdir, d)
		if !opt.DisablePolakRibiere && havePrev {
			num, den := 0.0, 0.0
			for i := 0; i < n; i++ {
				num += d[i] * (d[i] - prevD[i])
				den += prevD[i] * prevD[i]
			}
			if den > 0 {
				beta := num / den
				if beta > 0 {
					for i := 0; i < n; i++ {
						sdir[i] = d[i] + beta*prevD[i]
					}
					// The blended direction must remain an ascent
					// direction; otherwise restart from the projection.
					if dot(sdir, g) <= 0 {
						copy(sdir, d)
					}
				}
			}
		}
		copy(prevD, d)
		havePrev = true

		tMax, blocking := maxStep(p, rates, sdir, lower, upper)
		if tMax <= 0 {
			// A constraint is binding in the search direction at step
			// zero: activate it and recompute the projection.
			if blocking >= 0 {
				activate(p, rates, blocking, lower, upper)
				havePrev = false
				continue
			}
			// Direction is zero on free coordinates; should have been
			// caught by the norm test above.
			return finish(p, rates, g, lower, upper, stats, false), nil
		}

		t, hitMax := lineSearch(p, rates, sdir, tMax, opt)
		for i := 0; i < n; i++ {
			if !lower[i] && !upper[i] {
				rates[i] += t * sdir[i]
			}
		}
		if hitMax && blocking >= 0 {
			activate(p, rates, blocking, lower, upper)
			havePrev = false
		}
		syncActive(p, rates, lower, upper)
	}

	reproject(p, rates, lower, upper)
	p.Gradient(rates, g)
	return finish(p, rates, g, lower, upper, stats, false), nil
}

// initialPoint returns a feasible start: the caller's point (validated)
// or the waterfilling point min(α_i, τ/U_i) with τ chosen so the budget
// holds with equality.
func initialPoint(p *Problem, opt Options) ([]float64, error) {
	n := p.NumLinks()
	if opt.Initial != nil {
		if len(opt.Initial) != n {
			return nil, fmt.Errorf("core: initial point has %d entries for %d links", len(opt.Initial), n)
		}
		rates := append([]float64(nil), opt.Initial...)
		total := 0.0
		for i, r := range rates {
			if r < -snapTol || r > p.alpha(i)+snapTol {
				return nil, fmt.Errorf("core: initial rate %v of link %d violates [0, %v]", r, i, p.alpha(i))
			}
			total += r * p.Loads[i]
		}
		if math.Abs(total-p.Budget) > 1e-6*math.Max(1, p.Budget) {
			return nil, fmt.Errorf("core: initial point uses %v of budget %v", total, p.Budget)
		}
		return rates, nil
	}
	// Waterfill: Σ_i min(α_i·U_i, τ) = Budget; bisect on τ.
	hi := 0.0
	for i := range p.Loads {
		if v := p.alpha(i) * p.Loads[i]; v > hi {
			hi = v
		}
	}
	lo := 0.0
	total := func(tau float64) float64 {
		s := 0.0
		for i := range p.Loads {
			s += math.Min(p.alpha(i)*p.Loads[i], tau)
		}
		return s
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if total(mid) < p.Budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	tau := (lo + hi) / 2
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = math.Min(p.alpha(i), tau/p.Loads[i])
	}
	// Exact equality: rescale the interior coordinates to absorb the
	// bisection residual.
	fixBudget(p, rates, nil, nil)
	return rates, nil
}

// fixBudget removes the budget-equality drift by shifting free
// coordinates along the loads vector (the minimum-norm correction),
// clamping to bounds. lower/upper may be nil, meaning all coordinates
// are free.
func fixBudget(p *Problem, rates []float64, lower, upper []bool) {
	for pass := 0; pass < 4; pass++ {
		viol := -p.Budget
		for i, r := range rates {
			viol += r * p.Loads[i]
		}
		if math.Abs(viol) <= 1e-12*math.Max(1, p.Budget) {
			return
		}
		den := 0.0
		for i := range rates {
			if lower != nil && (lower[i] || upper[i]) {
				continue
			}
			den += p.Loads[i] * p.Loads[i]
		}
		if den == 0 {
			return
		}
		for i := range rates {
			if lower != nil && (lower[i] || upper[i]) {
				continue
			}
			rates[i] -= viol * p.Loads[i] / den
			if rates[i] < 0 {
				rates[i] = 0
			}
			if a := p.alpha(i); rates[i] > a {
				rates[i] = a
			}
		}
	}
}

// reproject snaps near-bound rates onto their bounds and restores the
// budget equality.
func reproject(p *Problem, rates []float64, lower, upper []bool) {
	for i := range rates {
		if rates[i] < snapTol {
			rates[i] = 0
		}
		if a := p.alpha(i); rates[i] > a-snapTol {
			rates[i] = a
		}
	}
	fixBudget(p, rates, lower, upper)
}

// syncActive refreshes the active-set flags from the current point.
func syncActive(p *Problem, rates []float64, lower, upper []bool) {
	for i := range rates {
		lower[i] = rates[i] <= snapTol
		upper[i] = rates[i] >= p.alpha(i)-snapTol
		if lower[i] {
			rates[i] = 0
		}
		if upper[i] {
			rates[i] = p.alpha(i)
		}
	}
}

func activate(p *Problem, rates []float64, i int, lower, upper []bool) {
	a := p.alpha(i)
	if math.Abs(rates[i]-a) < math.Abs(rates[i]) {
		rates[i] = a
		upper[i] = true
	} else {
		rates[i] = 0
		lower[i] = true
	}
}

func countFree(lower, upper []bool) int {
	n := 0
	for i := range lower {
		if !lower[i] && !upper[i] {
			n++
		}
	}
	return n
}

// projectionLambda returns the multiplier of the budget hyperplane for
// the projection of g onto the free subspace: λ = ⟨g,U⟩/⟨U,U⟩ over free
// coordinates.
func projectionLambda(p *Problem, g []float64, lower, upper []bool) float64 {
	num, den := 0.0, 0.0
	for i := range g {
		if lower[i] || upper[i] {
			continue
		}
		num += g[i] * p.Loads[i]
		den += p.Loads[i] * p.Loads[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// multipliersOK checks the sign conditions on the bound multipliers at a
// stationary point of the free subspace: ν_i = λU_i − g_i ≥ 0 for active
// lower bounds, μ_i = g_i − λU_i ≥ 0 for active upper bounds.
func multipliersOK(p *Problem, g []float64, lambda float64, lower, upper []bool, tol float64) bool {
	kappa := tol * (1 + normInf(g))
	for i := range g {
		if lower[i] && lambda*p.Loads[i]-g[i] < -kappa {
			return false
		}
		if upper[i] && g[i]-lambda*p.Loads[i] < -kappa {
			return false
		}
	}
	return true
}

// deactivateNegative frees every active bound whose multiplier is
// negative (the paper's recovery strategy) and returns how many were
// freed.
func deactivateNegative(p *Problem, g []float64, lambda float64, lower, upper []bool, tol float64) int {
	kappa := tol * (1 + normInf(g))
	removed := 0
	for i := range g {
		if lower[i] && lambda*p.Loads[i]-g[i] < -kappa {
			lower[i] = false
			removed++
		} else if upper[i] && g[i]-lambda*p.Loads[i] < -kappa {
			upper[i] = false
			removed++
		}
	}
	return removed
}

// vertexKKT handles the fully-constrained case: every coordinate is at a
// bound, so λ is not pinned by stationarity; optimality holds iff the
// interval [max over upper of g_i/U_i, min over lower of g_i/U_i]
// is non-empty.
func vertexKKT(p *Problem, g []float64, lower, upper []bool, tol float64) bool {
	loLam := math.Inf(-1) // λ ≥ g_i/U_i … from upper bounds
	hiLam := math.Inf(1)  // λ ≤ g_i/U_i … from lower bounds
	for i := range g {
		r := g[i] / p.Loads[i]
		if upper[i] {
			loLam = math.Max(loLam, r)
		}
		if lower[i] {
			hiLam = math.Min(hiLam, r)
		}
	}
	kappa := tol * (1 + normInf(g))
	return loLam <= hiLam+kappa
}

// deactivateVertex frees the bounds that prevent the λ-interval from
// being non-empty: the arg-max upper bound and the arg-min lower bound.
func deactivateVertex(p *Problem, g []float64, lower, upper []bool) {
	loIdx, hiIdx := -1, -1
	loLam, hiLam := math.Inf(-1), math.Inf(1)
	for i := range g {
		r := g[i] / p.Loads[i]
		if upper[i] && r > loLam {
			loLam, loIdx = r, i
		}
		if lower[i] && r < hiLam {
			hiLam, hiIdx = r, i
		}
	}
	if loIdx >= 0 {
		upper[loIdx] = false
	}
	if hiIdx >= 0 {
		lower[hiIdx] = false
	}
}

// maxStep returns the largest step along s that keeps every free
// coordinate within its bounds, and the index of the first blocking
// constraint (-1 when unbounded, which cannot happen with finite caps
// unless s is zero on the free set).
func maxStep(p *Problem, rates, s []float64, lower, upper []bool) (float64, int) {
	tMax := math.Inf(1)
	blocking := -1
	for i := range s {
		if lower[i] || upper[i] || s[i] == 0 {
			continue
		}
		var t float64
		if s[i] > 0 {
			t = (p.alpha(i) - rates[i]) / s[i]
		} else {
			t = -rates[i] / s[i]
		}
		if t < tMax {
			tMax = t
			blocking = i
		}
	}
	if math.IsInf(tMax, 1) {
		return 0, -1
	}
	return tMax, blocking
}

// lineSearch maximizes φ(t) = Objective(rates + t·s) over [0, tMax]. φ
// is concave along s (strictly, under the linear rate model), so φ' is
// decreasing: if φ'(tMax) ≥ 0 the maximum is at tMax (hit the blocking
// constraint); otherwise the unique interior root of φ' is found by
// safeguarded Newton (bisection fallback keeps the bracket valid even
// under the exact rate model, where φ can be mildly non-concave).
func lineSearch(p *Problem, rates, s []float64, tMax float64, opt Options) (t float64, hitMax bool) {
	d1End, _ := p.lineDerivs(rates, s, tMax)
	if d1End >= 0 {
		return tMax, true
	}
	lo, hi := 0.0, tMax
	t = tMax / 2
	for iter := 0; iter < 100; iter++ {
		d1, d2 := p.lineDerivs(rates, s, t)
		if d1 > 0 {
			lo = t
		} else {
			hi = t
		}
		if hi-lo <= 1e-14*tMax {
			break
		}
		var next float64
		if !opt.DisableNewton && d2 < 0 {
			next = t - d1/d2
		} else {
			next = math.NaN()
		}
		if !(next > lo && next < hi) {
			next = (lo + hi) / 2
		}
		if math.Abs(next-t) <= 1e-15*tMax {
			t = next
			break
		}
		t = next
	}
	return t, false
}

// finish assembles the Solution at the terminal point.
func finish(p *Problem, rates, g []float64, lower, upper []bool, stats Stats, converged bool) *Solution {
	stats.Converged = converged
	lambda := projectionLambda(p, g, lower, upper)
	if countFree(lower, upper) == 0 {
		// λ is only interval-constrained at a vertex; report the midpoint
		// of the feasible interval (clamped to finite values).
		loLam, hiLam := math.Inf(-1), math.Inf(1)
		for i := range g {
			r := g[i] / p.Loads[i]
			if upper[i] {
				loLam = math.Max(loLam, r)
			}
			if lower[i] {
				hiLam = math.Min(hiLam, r)
			}
		}
		switch {
		case !math.IsInf(loLam, 0) && !math.IsInf(hiLam, 0):
			lambda = (loLam + hiLam) / 2
		case !math.IsInf(loLam, 0):
			lambda = loLam
		case !math.IsInf(hiLam, 0):
			lambda = hiLam
		}
	}
	sol := &Solution{
		Rates:     append([]float64(nil), rates...),
		Objective: p.Objective(rates),
		Rho:       p.EffectiveRates(rates),
		Lambda:    lambda,
		LowerMult: make([]float64, len(rates)),
		UpperMult: make([]float64, len(rates)),
		Stats:     stats,
	}
	sol.Utilities = make([]float64, len(p.Pairs))
	for k, pr := range p.Pairs {
		sol.Utilities[k] = pr.Utility.Value(sol.Rho[k])
	}
	for i := range rates {
		if lower[i] {
			sol.LowerMult[i] = lambda*p.Loads[i] - g[i]
		}
		if upper[i] {
			sol.UpperMult[i] = g[i] - lambda*p.Loads[i]
		}
	}
	return sol
}

func normInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
