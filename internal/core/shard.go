package core

// Sharded pair-loop kernels. Every hot sweep of the solver — gradient,
// line-search derivatives, Hessian curvature and products, solution
// assembly — is a reduction over the CSR pair rows. At 10⁶ pairs one
// core is the bottleneck, so a Solver can attach a persistent worker
// pool (engine.Pool via the ForPool interface) and fan each sweep out
// over pair chunks.
//
// Determinism contract: results are bit-identical at ANY worker count,
// including 1. The chunk partition is a pure function of the problem
// shape (never of the worker count), every chunk accumulates into its
// own partial buffer in ascending pair order, and the cross-chunk
// reduction runs sequentially in ascending chunk order on the
// dispatching goroutine. Worker scheduling therefore affects wall-clock
// only. (The sharded sum groups additions differently from the serial
// kernel, so sharded-vs-unsharded agreement is to rounding, not bitwise;
// tests pin both properties.)
//
// Dispatch is allocation-free: the chunk closure is created once in
// Shard, arguments travel through solver-owned fields, and the pool's
// For loop sends plain ints.

// ForPool is the worker-pool surface the sharded kernels need.
// engine.Pool satisfies it; core deliberately does not import engine.
type ForPool interface {
	// Workers reports the pool size (informational).
	Workers() int
	// For runs fn(i) for every i in [0, n), possibly concurrently, and
	// returns when all calls completed.
	For(n int, fn func(int))
}

// shardChunkPairs is the target pairs-per-chunk. Small enough that mid-
// size problems split into several chunks (load balance, and the tests
// exercise real multi-chunk reductions), large enough that per-chunk
// dispatch overhead stays negligible.
const shardChunkPairs = 4096

// shardMaxChunks caps the chunk count: the cross-chunk reduction costs
// O(nChunks·n), which must stay well below the O(nnz) sweep it reduces.
const shardMaxChunks = 64

// Task opcodes for the chunk worker.
const (
	shardTaskGrad = iota
	shardTaskLine
	shardTaskCurv
	shardTaskHess
	shardTaskFinish
)

type shardState struct {
	pool    ForPool
	nChunks int
	chunkSz int
	// runChunk is the single closure handed to pool.For, created once in
	// Shard so dispatch never allocates.
	runChunk func(int)
	// partials holds one n-wide accumulator row per chunk (gradient and
	// Hessian-product tasks); pd1/pd2 hold per-chunk scalar partials.
	partials []float64
	pd1, pd2 []float64
	// Per-dispatch arguments.
	task            int
	vecA, vecB      []float64
	t               float64
	rhoOut, utilOut []float64
}

// Shard attaches a worker pool to the solver's pair-loop kernels; nil
// detaches and restores the serial kernels. The chunk partition depends
// only on the compiled pair count, so two solvers of the same problem
// produce bit-identical results regardless of their pools' worker
// counts. Shard allocates the chunk buffers; call it at setup time, not
// between solves on the hot path.
func (s *Solver) Shard(pool ForPool) {
	if pool == nil {
		s.sh = shardState{}
		return
	}
	nChunks := (s.nPairs + shardChunkPairs - 1) / shardChunkPairs
	if nChunks > shardMaxChunks {
		nChunks = shardMaxChunks
	}
	if nChunks < 1 {
		nChunks = 1
	}
	s.sh.nChunks = nChunks
	s.sh.chunkSz = (s.nPairs + nChunks - 1) / nChunks
	if len(s.sh.partials) < nChunks*s.n {
		s.sh.partials = make([]float64, nChunks*s.n)
		s.sh.pd1 = make([]float64, nChunks)
		s.sh.pd2 = make([]float64, nChunks)
	}
	if s.curv == nil {
		// The sharded Newton path caches curvatures even when n is small
		// enough that initScratch skipped the CG buffers.
		s.curv = make([]float64, s.nPairs)
	}
	s.sh.runChunk = s.shardChunk
	s.sh.pool = pool
}

// Sharded reports whether a worker pool is attached.
func (s *Solver) Sharded() bool { return s.sh.pool != nil }

// shardChunk executes one chunk of the current task. Chunks own disjoint
// pair ranges and disjoint output slots, so chunk bodies never touch
// shared state; the pool's completion barrier publishes their writes
// back to the dispatcher.
func (s *Solver) shardChunk(c int) {
	kLo := c * s.sh.chunkSz
	kHi := kLo + s.sh.chunkSz
	if kHi > s.nPairs {
		kHi = s.nPairs
	}
	if kLo > kHi {
		kLo = kHi
	}
	switch s.sh.task {
	case shardTaskGrad:
		part := s.sh.partials[c*s.n : (c+1)*s.n]
		for i := range part {
			part[i] = 0
		}
		rates := s.sh.vecA
		for k := kLo; k < kHi; k++ {
			lo, hi := s.start[k], s.start[k+1]
			links, fracs := s.links[lo:hi], s.csrFracs(lo, hi)
			rho := s.model.pairRhoCSR(links, fracs, rates)
			d := s.wts[k] * s.utils[k].Deriv(rho)
			s.model.accumGradCSR(links, fracs, rates, rho, d, part)
		}
	case shardTaskLine:
		d1, d2 := 0.0, 0.0
		for k := kLo; k < kHi; k++ {
			lo, hi := s.start[k], s.start[k+1]
			e1, e2 := s.model.lineTermsCSR(s.links[lo:hi], s.csrFracs(lo, hi),
				s.sh.vecA, s.sh.vecB, s.sh.t, s.utils[k], s.wts[k])
			d1 += e1
			d2 += e2
		}
		s.sh.pd1[c], s.sh.pd2[c] = d1, d2
	case shardTaskCurv:
		rates := s.sh.vecA
		for k := kLo; k < kHi; k++ {
			s.curv[k] = s.wts[k] * s.utils[k].Curv(s.rho(k, rates))
		}
	case shardTaskHess:
		part := s.sh.partials[c*s.n : (c+1)*s.n]
		for i := range part {
			part[i] = 0
		}
		s.hessMulRange(kLo, kHi, s.sh.vecB, part)
	case shardTaskFinish:
		rates := s.sh.vecA
		obj := 0.0
		for k := kLo; k < kHi; k++ {
			rho := s.rho(k, rates)
			u := s.utils[k].Value(rho)
			s.sh.rhoOut[k] = rho
			s.sh.utilOut[k] = u
			obj += s.wts[k] * u
		}
		s.sh.pd1[c] = obj
	}
}

// reducePartials adds the chunk accumulator rows into out, in ascending
// chunk order — the worker-count-independent reduction.
//netsamp:noalloc
func (s *Solver) reducePartials(out []float64) {
	n := s.n
	for c := 0; c < s.sh.nChunks; c++ {
		part := s.sh.partials[c*n : (c+1)*n]
		for i := 0; i < n; i++ {
			out[i] += part[i]
		}
	}
}

// shardGradient is the sharded form of gradient.
//netsamp:noalloc
func (s *Solver) shardGradient(rates, out []float64) {
	s.sh.task = shardTaskGrad
	s.sh.vecA = rates
	s.sh.pool.For(s.sh.nChunks, s.sh.runChunk) //netsamp:allocflow-ok sole impl engine.Pool.For is noalloc-checked in its package
	s.sh.vecA = nil
	for i := range out {
		out[i] = 0
	}
	s.reducePartials(out)
}

// shardLineDerivs is the sharded form of lineDerivs.
//netsamp:noalloc
func (s *Solver) shardLineDerivs(rates, dir []float64, t float64) (d1, d2 float64) {
	s.sh.task = shardTaskLine
	s.sh.vecA, s.sh.vecB, s.sh.t = rates, dir, t
	s.sh.pool.For(s.sh.nChunks, s.sh.runChunk) //netsamp:allocflow-ok sole impl engine.Pool.For is noalloc-checked in its package
	s.sh.vecA, s.sh.vecB = nil, nil
	for c := 0; c < s.sh.nChunks; c++ {
		d1 += s.sh.pd1[c]
		d2 += s.sh.pd2[c]
	}
	return d1, d2
}

// shardCurvFill is the sharded form of curvFill; chunks write disjoint
// s.curv ranges, so there is no reduction.
//netsamp:noalloc
func (s *Solver) shardCurvFill(rates []float64) {
	s.sh.task = shardTaskCurv
	s.sh.vecA = rates
	s.sh.pool.For(s.sh.nChunks, s.sh.runChunk) //netsamp:allocflow-ok sole impl engine.Pool.For is noalloc-checked in its package
	s.sh.vecA = nil
}

// shardHessMul is the sharded form of hessMulInto.
//netsamp:noalloc
func (s *Solver) shardHessMul(v, out []float64) {
	s.sh.task = shardTaskHess
	s.sh.vecB = v
	s.sh.pool.For(s.sh.nChunks, s.sh.runChunk) //netsamp:allocflow-ok sole impl engine.Pool.For is noalloc-checked in its package
	s.sh.vecB = nil
	for i := range out {
		out[i] = 0
	}
	s.reducePartials(out)
	for i := 0; i < s.n; i++ {
		if s.freePos[i] < 0 {
			out[i] = 0
		}
	}
}

// shardFinish is the sharded form of finishInto's per-pair sweep: rho
// and utility slots are written per pair (disjoint), the objective is
// reduced over the chunk partials in order.
//netsamp:noalloc
func (s *Solver) shardFinish(rates, rhoOut, utilOut []float64) float64 {
	s.sh.task = shardTaskFinish
	s.sh.vecA, s.sh.rhoOut, s.sh.utilOut = rates, rhoOut, utilOut
	s.sh.pool.For(s.sh.nChunks, s.sh.runChunk) //netsamp:allocflow-ok sole impl engine.Pool.For is noalloc-checked in its package
	s.sh.vecA, s.sh.rhoOut, s.sh.utilOut = nil, nil, nil
	obj := 0.0
	for c := 0; c < s.sh.nChunks; c++ {
		obj += s.sh.pd1[c]
	}
	return obj
}
