package core

import (
	"math"
	"testing"
)

func TestSREPaperFigure1Values(t *testing.T) {
	// The paper's Figure 1 annotates the stitching points:
	// c = 0.002   → x₀ ≈ 0.005988, M(x₀) ≈ 0.668
	// c ≈ 0.000667 → x₀ ≈ 0.002,   M(x₀) ≈ 0.667
	u1 := MustSRE(0.002)
	if math.Abs(u1.X0-0.0059880239) > 1e-8 {
		t.Fatalf("x0(c=0.002) = %v, want ≈0.0059880", u1.X0)
	}
	if got := u1.Value(u1.X0); math.Abs(got-0.668) > 0.0005 {
		t.Fatalf("M(x0) = %v, want ≈0.668", got)
	}
	u2 := MustSRE(1.0 / 1500)
	if math.Abs(u2.X0-0.002) > 2e-5 {
		t.Fatalf("x0(c=1/1500) = %v, want ≈0.002", u2.X0)
	}
	if got := u2.Value(u2.X0); math.Abs(got-0.667) > 0.0005 {
		t.Fatalf("M(x0) = %v, want ≈0.667", got)
	}
	// The stitch value is 2(1+c)/3 exactly.
	for _, c := range []float64{0.0001, 0.002, 0.05, 0.5} {
		u := MustSRE(c)
		want := 2 * (1 + c) / 3
		if got := u.Value(u.X0); math.Abs(got-want) > 1e-12 {
			t.Fatalf("M(x0) for c=%v: %v, want %v", c, got, want)
		}
	}
}

func TestSREZeroAtOrigin(t *testing.T) {
	for _, c := range []float64{0.0005, 0.002, 0.1, 1} {
		u := MustSRE(c)
		if got := u.Value(0); got != 0 {
			t.Fatalf("M(0) = %v for c=%v", got, c)
		}
		// The quadratic branch must hit zero smoothly: tiny rho, tiny value.
		if got := u.Value(1e-9); got < 0 || got > 1e-3 {
			t.Fatalf("M(1e-9) = %v for c=%v", got, c)
		}
	}
}

func TestSREInvalidC(t *testing.T) {
	for _, c := range []float64{0, -0.1, 1.5, math.NaN()} {
		if _, err := NewSRE(c); err == nil {
			t.Fatalf("NewSRE(%v) accepted", c)
		}
	}
}

func TestSREContinuityAtStitch(t *testing.T) {
	for _, c := range []float64{0.0007, 0.002, 0.05} {
		u := MustSRE(c)
		eps := u.X0 * 1e-7
		below, above := u.Value(u.X0-eps), u.Value(u.X0+eps)
		if math.Abs(below-above) > 1e-6 {
			t.Fatalf("c=%v: value jump at x0: %v vs %v", c, below, above)
		}
		db, da := u.Deriv(u.X0-eps), u.Deriv(u.X0+eps)
		if math.Abs(db-da)/da > 1e-4 {
			t.Fatalf("c=%v: derivative jump at x0: %v vs %v", c, db, da)
		}
		cb, ca := u.Curv(u.X0-eps), u.Curv(u.X0+eps)
		if math.Abs(cb-ca)/math.Abs(ca) > 1e-4 {
			t.Fatalf("c=%v: curvature jump at x0: %v vs %v", c, cb, ca)
		}
	}
}

func TestSREIncreasingConcave(t *testing.T) {
	for _, c := range []float64{0.0005, 0.002, 0.1} {
		u := MustSRE(c)
		prev := u.Value(0)
		for i := 1; i <= 2000; i++ {
			rho := float64(i) / 2000
			v := u.Value(rho)
			if v <= prev {
				t.Fatalf("c=%v: M not strictly increasing at ρ=%v", c, rho)
			}
			prev = v
			if u.Deriv(rho) <= 0 {
				t.Fatalf("c=%v: M' ≤ 0 at ρ=%v", c, rho)
			}
			if u.Curv(rho) >= 0 {
				t.Fatalf("c=%v: M'' ≥ 0 at ρ=%v", c, rho)
			}
		}
	}
}

func TestSREDerivMatchesFiniteDifference(t *testing.T) {
	u := MustSRE(0.002)
	for _, rho := range []float64{0.001, 0.004, u.X0, 0.01, 0.1, 0.8} {
		h := 1e-7 * (1 + rho)
		fd := (u.Value(rho+h) - u.Value(rho-h)) / (2 * h)
		if d := u.Deriv(rho); math.Abs(fd-d)/d > 1e-4 {
			t.Fatalf("ρ=%v: Deriv=%v, finite diff=%v", rho, d, fd)
		}
		fd2 := (u.Deriv(rho+h) - u.Deriv(rho-h)) / (2 * h)
		if cv := u.Curv(rho); math.Abs(fd2-cv)/math.Abs(cv) > 1e-3 {
			t.Fatalf("ρ=%v: Curv=%v, finite diff=%v", rho, cv, fd2)
		}
	}
}

func TestSREValueAtOne(t *testing.T) {
	// Sampling everything: zero error, accuracy 1.
	u := MustSRE(0.01)
	if got := u.Value(1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("M(1) = %v", got)
	}
	if got := u.ExpectedSRE(1); got != 0 {
		t.Fatalf("E[SRE](1) = %v", got)
	}
}

func TestExpectedSRE(t *testing.T) {
	u := MustSRE(0.002)
	if !math.IsInf(u.ExpectedSRE(0), 1) {
		t.Fatal("E[SRE](0) should be +Inf")
	}
	// Hand value: (1-0.01)/0.01 * 0.002 = 0.198.
	if got := u.ExpectedSRE(0.01); math.Abs(got-0.198) > 1e-12 {
		t.Fatalf("E[SRE](0.01) = %v", got)
	}
	// M = 1 - E[SRE] on the analytic branch.
	if got := u.Value(0.01); math.Abs(got-(1-0.198)) > 1e-12 {
		t.Fatalf("M(0.01) = %v", got)
	}
}

func TestRateForUtilityRoundTrip(t *testing.T) {
	u := MustSRE(0.002)
	for _, m := range []float64{0.5, 0.8, 0.9, 0.99} {
		rho, err := u.RateForUtility(m)
		if err != nil {
			t.Fatal(err)
		}
		if rho < u.X0 {
			continue // quadratic branch: inverse is of the analytic branch by design
		}
		if got := u.Value(rho); math.Abs(got-m) > 1e-12 {
			t.Fatalf("M(RateForUtility(%v)) = %v", m, got)
		}
	}
	for _, m := range []float64{0, 1, -1, 2} {
		if _, err := u.RateForUtility(m); err == nil {
			t.Fatalf("RateForUtility(%v) accepted", m)
		}
	}
}

func TestMustSREPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSRE(0) did not panic")
		}
	}()
	MustSRE(0)
}
