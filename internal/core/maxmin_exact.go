package core

import (
	"fmt"
	"math"

	"netsamp/internal/lp"
)

// Inverter is implemented by utilities whose inverse M⁻¹ is available in
// closed form. All utilities shipped with core implement it.
type Inverter interface {
	// RateForUtility returns the effective sampling rate ρ with
	// M(ρ) = m, for m ∈ (0, 1).
	RateForUtility(m float64) (float64, error)
}

// SolveMaxMinExact computes the exact max-min optimum
//
//	maximize  min_k M_k(ρ_k(p))
//	s.t.      Σ p_i·U_i = θ,  0 ≤ p_i ≤ α_i
//
// under the linear effective-rate model. For a fixed worst-pair target
// m, reaching utility m on every pair is the linear feasibility problem
// "Σ_i f_ki·p_i ≥ M_k⁻¹(m) for all k, p ≤ α, min Σ p·U ≤ θ"; because
// every M_k is increasing, feasibility is monotone in m, so bisection on
// m pins the optimum to within tol (default 1e-9). Each probe solves a
// small linear program (internal/lp).
//
// This is the certified counterpart of the SolveMaxMin heuristic; it
// requires an additive rate model (ModelLinear or ModelCoordinated —
// the LP rows are only linear in the rates then) and utilities
// implementing Inverter. Budget left over at the optimal
// target is spent waterfilling the remaining link capacity, so the
// returned solution satisfies the budget with equality without lowering
// any utility.
func SolveMaxMinExact(p *Problem, tol float64) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.model().Additive() {
		return nil, fmt.Errorf("core: SolveMaxMinExact requires an additive rate model, not %s", p.model().Name())
	}
	if tol <= 0 {
		tol = 1e-9
	}
	n := p.NumLinks()
	inverters := make([]Inverter, len(p.Pairs))
	for k := range p.Pairs {
		inv, ok := p.Pairs[k].Utility.(Inverter)
		if !ok {
			return nil, fmt.Errorf("core: pair %q utility does not implement Inverter", p.Pairs[k].Name)
		}
		inverters[k] = inv
	}

	// minCost returns the cheapest sampled rate achieving worst-pair
	// target m, or +Inf if unreachable under the caps.
	minCost := func(m float64) (float64, []float64, error) {
		c := append([]float64(nil), p.Loads...)
		var a [][]float64
		var rel []lp.Rel
		var b []float64
		for k := range p.Pairs {
			target, err := inverters[k].RateForUtility(m)
			if err != nil {
				return 0, nil, err
			}
			row := make([]float64, n)
			for j, i := range p.Pairs[k].Links {
				f := 1.0
				if p.Pairs[k].Fracs != nil {
					f = p.Pairs[k].Fracs[j]
				}
				row[i] = f
			}
			a = append(a, row)
			rel = append(rel, lp.GE)
			b = append(b, target)
		}
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			row[i] = 1
			a = append(a, row)
			rel = append(rel, lp.LE)
			b = append(b, p.alpha(i))
		}
		x, obj, st, err := lp.Solve(c, a, rel, b)
		if err != nil {
			return 0, nil, err
		}
		if st != lp.Optimal {
			return math.Inf(1), nil, nil
		}
		return obj, x, nil
	}

	lo, hi := 0.0, 1.0-1e-12
	var bestRates []float64
	// Shrink hi until feasible at least once; m near 1 is usually
	// unreachable under the budget.
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		cost, x, err := minCost(mid)
		if err != nil {
			return nil, err
		}
		if cost <= p.Budget {
			lo = mid
			bestRates = x
		} else {
			hi = mid
		}
		if hi-lo <= tol {
			break
		}
	}
	if bestRates == nil {
		// Even the smallest probed target is unaffordable; fall back to
		// the zero-target LP (always feasible: p = 0 costs 0), then
		// waterfill the budget.
		bestRates = make([]float64, n)
	}

	// Spend the leftover budget: waterfill remaining capacity (raising
	// rates never lowers a utility).
	spent := 0.0
	for i, r := range bestRates {
		spent += r * p.Loads[i]
	}
	leftover := p.Budget - spent
	if leftover > 0 {
		// Find τ with Σ_i min(α_i·U_i, r_i·U_i + τ) − r_i·U_i = leftover.
		loT, hiT := 0.0, 0.0
		for i := range bestRates {
			hiT = math.Max(hiT, p.alpha(i)*p.Loads[i])
		}
		add := func(tau float64) float64 {
			s := 0.0
			for i, r := range bestRates {
				cur := r * p.Loads[i]
				cap := p.alpha(i) * p.Loads[i]
				s += math.Min(cap, cur+tau) - cur
			}
			return s
		}
		for iter := 0; iter < 100; iter++ {
			mid := (loT + hiT) / 2
			if add(mid) < leftover {
				loT = mid
			} else {
				hiT = mid
			}
		}
		tau := (loT + hiT) / 2
		for i := range bestRates {
			cur := bestRates[i] * p.Loads[i]
			cap := p.alpha(i) * p.Loads[i]
			bestRates[i] = math.Min(cap, cur+tau) / p.Loads[i]
		}
	}

	sol := &Solution{
		Rates:     bestRates,
		Rho:       p.EffectiveRates(bestRates),
		LowerMult: make([]float64, n),
		UpperMult: make([]float64, n),
		Stats:     Stats{Converged: true},
	}
	sol.Utilities = make([]float64, len(p.Pairs))
	minU := math.Inf(1)
	for k := range p.Pairs {
		sol.Utilities[k] = p.Pairs[k].Utility.Value(sol.Rho[k])
		minU = math.Min(minU, sol.Utilities[k])
	}
	// For the max-min solver the reported objective is the minimum.
	sol.Objective = minU
	return sol, nil
}
