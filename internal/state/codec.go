// Package state provides the crash-safe persistence primitives of the
// long-running monitoring control loop: versioned, CRC32-guarded
// snapshots written with the atomic-rename discipline, and an
// append-only write-ahead journal whose torn tail is detected and
// truncated on recovery.
//
// The package is deliberately generic: it persists opaque payloads and
// knows nothing about controllers or collectors. The components that own
// state (control.Controller, netflow.Collector, the serve daemon)
// marshal themselves with the Encoder/Decoder below, and the daemon
// composes the pieces into one snapshot payload. All encodings are
// little-endian with float64 values stored as IEEE-754 bit patterns, so
// a decode restores every number bit-exactly — the property the
// deterministic recovery guarantee rests on.
package state

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Encoder builds a binary payload. The zero value is ready to use; all
// integers are little-endian and floats are stored as their IEEE-754
// bits (bit-exact round trip, no text formatting involved).
type Encoder struct {
	buf []byte
}

// Data returns the encoded payload.
func (e *Encoder) Data() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends a signed 64-bit integer (two's-complement bits).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends the IEEE-754 bits of v.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// ErrCodec reports a payload that cannot be decoded: short, or with an
// impossible length prefix. Every Decoder failure wraps it.
var ErrCodec = errors.New("state: malformed payload")

// Decoder consumes a binary payload produced by Encoder. Errors are
// sticky: after the first failure every read returns the zero value, so
// a decode sequence can run to completion and check Err once.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder wraps a payload for decoding.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

// Finish returns an error unless the payload decoded cleanly and was
// consumed exactly.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(d.b)-d.off)
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b)-d.off < n {
		d.err = fmt.Errorf("%w: want %d bytes, have %d", ErrCodec, n, len(d.b)-d.off)
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a signed 64-bit integer.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads an IEEE-754 float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes reads a length-prefixed byte slice (a copy-free subslice of the
// payload).
func (d *Decoder) Bytes() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if int(n) > d.Remaining() {
		d.err = fmt.Errorf("%w: byte field of %d exceeds %d remaining", ErrCodec, n, d.Remaining())
		return nil
	}
	return d.take(int(n))
}

// Len reads a length prefix and validates it against the bytes left,
// assuming each element occupies at least elemSize bytes — the guard
// that keeps a corrupted count from provoking a giant allocation.
func (d *Decoder) Len(elemSize int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if elemSize > 0 && int(n) > d.Remaining()/elemSize {
		d.err = fmt.Errorf("%w: count %d exceeds remaining payload", ErrCodec, n)
		return 0
	}
	return int(n)
}
