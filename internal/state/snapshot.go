package state

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot file format (little-endian):
//
//	0  magic   u32  "NSST"
//	4  version u16  envelope format version
//	6  flags   u16  reserved, zero
//	8  length  u32  payload byte count
//	12 crc32   u32  IEEE CRC of the payload
//	16 payload
//
// Files are named snap-<seq>.nss with a monotonically increasing
// 16-hex-digit sequence number, written to a temporary name in the same
// directory and atomically renamed into place, so a crash mid-write
// never clobbers an existing generation. Load walks the generations
// newest-first and returns the first one whose envelope verifies —
// corruption of the latest snapshot degrades to the previous one, never
// to an error the operator has to hand-fix.

const (
	snapshotMagic   = 0x5453534e // "NSST"
	snapshotVersion = 1
	snapshotHeader  = 16
	snapshotPrefix  = "snap-"
	snapshotSuffix  = ".nss"
)

// DefaultKeep is the number of snapshot generations retained.
const DefaultKeep = 2

// ErrNoSnapshot reports a store with no decodable snapshot.
var ErrNoSnapshot = errors.New("state: no valid snapshot")

// ErrCorrupt reports an envelope that failed verification (bad magic,
// unknown version, short payload, or CRC mismatch).
var ErrCorrupt = errors.New("state: corrupt snapshot")

// SnapshotStore persists versioned snapshots in a directory. It is not
// safe for concurrent use; the control loop owns it from one goroutine.
type SnapshotStore struct {
	dir       string
	keep      int
	nextSeq   uint64
	corrupted int
}

// OpenSnapshots opens (creating if needed) the snapshot store in dir.
func OpenSnapshots(dir string) (*SnapshotStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("state: open snapshot store: %w", err)
	}
	s := &SnapshotStore{dir: dir, keep: DefaultKeep}
	seqs, err := s.sequences()
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		s.nextSeq = seqs[len(seqs)-1] + 1
	}
	return s, nil
}

// Corrupted returns how many snapshot generations failed verification
// during Load calls — the operator-visible signal that the fallback
// path engaged.
func (s *SnapshotStore) Corrupted() int { return s.corrupted }

// sequences returns the sequence numbers present on disk, ascending.
func (s *SnapshotStore) sequences() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("state: scan snapshots: %w", err)
	}
	var seqs []uint64
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, snapshotPrefix), snapshotSuffix)
		seq, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func (s *SnapshotStore) path(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%016x%s", snapshotPrefix, seq, snapshotSuffix))
}

// Save writes payload as the next snapshot generation: envelope to a
// temporary file, fsync, atomic rename, then pruning of generations
// beyond the retention count. The previous generation stays intact on
// disk until the new one is durable.
//
//netsamp:codec pair=decodeSnapshot
func (s *SnapshotStore) Save(payload []byte) error {
	var e Encoder
	e.U32(snapshotMagic)
	e.U16(snapshotVersion)
	e.U16(0)
	e.U32(uint32(len(payload)))
	e.U32(crc32.ChecksumIEEE(payload))
	blob := append(e.Data(), payload...)

	seq := s.nextSeq
	tmp, err := os.CreateTemp(s.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("state: save snapshot: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(blob); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("state: save snapshot: %w", err)
	}
	if err := os.Rename(tmpName, s.path(seq)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("state: save snapshot: %w", err)
	}
	syncDir(s.dir)
	s.nextSeq = seq + 1

	// Prune: keep the newest `keep` generations. Best-effort — a stale
	// generation is wasted disk, not an error.
	if seqs, err := s.sequences(); err == nil && len(seqs) > s.keep {
		for _, old := range seqs[:len(seqs)-s.keep] {
			os.Remove(s.path(old))
		}
	}
	return nil
}

// Load returns the payload and sequence number of the newest snapshot
// that verifies. Generations failing verification are skipped (and
// counted in Corrupted); ErrNoSnapshot is returned when none survives.
func (s *SnapshotStore) Load() ([]byte, uint64, error) {
	seqs, err := s.sequences()
	if err != nil {
		return nil, 0, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		blob, err := os.ReadFile(s.path(seqs[i]))
		if err != nil {
			s.corrupted++
			continue
		}
		payload, err := decodeSnapshot(blob)
		if err != nil {
			s.corrupted++
			continue
		}
		return payload, seqs[i], nil
	}
	return nil, 0, ErrNoSnapshot
}

// decodeSnapshot verifies the envelope and returns the payload.
func decodeSnapshot(blob []byte) ([]byte, error) {
	d := NewDecoder(blob)
	if d.U32() != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := d.U16(); v != snapshotVersion {
		return nil, fmt.Errorf("%w: unknown format version %d", ErrCorrupt, v)
	}
	d.U16() // flags
	n := d.U32()
	sum := d.U32()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if int(n) != d.Remaining() {
		return nil, fmt.Errorf("%w: payload length %d, have %d", ErrCorrupt, n, d.Remaining())
	}
	payload := blob[snapshotHeader:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	return payload, nil
}

// syncDir fsyncs a directory so a rename is durable. Best-effort: some
// filesystems reject directory fsync, and the rename itself is already
// atomic.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync() //netsamp:err-ok some filesystems reject directory fsync; the rename is already atomic
		f.Close()
	}
}
