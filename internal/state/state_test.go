package state

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U16(0xbeef)
	e.U32(0xdeadbeef)
	e.U64(1 << 62)
	e.I64(-42)
	e.F64(math.Pi)
	e.F64(math.Inf(-1))
	e.F64(math.NaN())
	e.Bytes([]byte("payload"))

	d := NewDecoder(e.Data())
	if got := d.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip")
	}
	if got := d.U16(); got != 0xbeef {
		t.Fatalf("U16 = %#x", got)
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<62 {
		t.Fatalf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Fatalf("F64 = %v", got)
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Fatalf("F64 -Inf = %v", got)
	}
	if got := d.F64(); !math.IsNaN(got) {
		t.Fatalf("F64 NaN = %v", got)
	}
	if got := d.Bytes(); string(got) != "payload" {
		t.Fatalf("Bytes = %q", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	d.U64() // short
	if d.Err() == nil {
		t.Fatal("short read not detected")
	}
	if !errors.Is(d.Err(), ErrCodec) {
		t.Fatalf("error %v does not wrap ErrCodec", d.Err())
	}
	// Subsequent reads stay zero without panicking.
	if d.U32() != 0 || d.F64() != 0 || d.Bytes() != nil {
		t.Fatal("reads after error returned data")
	}
}

func TestDecoderLenGuardsAllocation(t *testing.T) {
	var e Encoder
	e.U32(1 << 30) // claims a billion elements
	d := NewDecoder(e.Data())
	if n := d.Len(8); n != 0 || d.Err() == nil {
		t.Fatalf("bogus count accepted: n=%d err=%v", n, d.Err())
	}
}

func TestDecoderFinishTrailing(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	d.U8()
	if err := d.Finish(); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestSnapshotSaveLoad(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty store Load = %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Save([]byte{byte(i), byte(i), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	payload, seq, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 || !bytes.Equal(payload, []byte{4, 4, 4}) {
		t.Fatalf("Load = %v seq %d", payload, seq)
	}
	// Retention: only DefaultKeep generations remain on disk.
	entries, _ := os.ReadDir(dir)
	snaps := 0
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) == ".nss" {
			snaps++
		}
	}
	if snaps != DefaultKeep {
		t.Fatalf("%d generations retained, want %d", snaps, DefaultKeep)
	}
	// Reopen: sequence numbering continues.
	s2, err := OpenSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Save([]byte("next")); err != nil {
		t.Fatal(err)
	}
	if _, seq, _ := s2.Load(); seq != 5 {
		t.Fatalf("sequence after reopen = %d, want 5", seq)
	}
}

// TestSnapshotCorruptionFallsBack: a corrupted latest generation must
// fall back to the previous valid one, not error out.
func TestSnapshotCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save([]byte("old-good")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save([]byte("new-bad")); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the newest generation.
	path := s.path(1)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xff
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	payload, seq, err := s.Load()
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if seq != 0 || string(payload) != "old-good" {
		t.Fatalf("Load = %q seq %d, want old-good seq 0", payload, seq)
	}
	if s.Corrupted() == 0 {
		t.Fatal("corruption not counted")
	}
	// Truncated header: also detected.
	if err := os.WriteFile(s.path(1), blob[:7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, seq, err := s.Load(); err != nil || seq != 0 {
		t.Fatalf("truncated-header fallback: seq %d err %v", seq, err)
	}
}

func TestJournalAppendRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.nsj")
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	for i := 0; i < 10; i++ {
		if err := j.Append([]byte{byte(i), 0xaa}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 10 || j2.Len() != 10 || j2.Torn() {
		t.Fatalf("recovered %d records, torn=%v", len(recs), j2.Torn())
	}
	for i, r := range recs {
		if !bytes.Equal(r, []byte{byte(i), 0xaa}) {
			t.Fatalf("record %d = %v", i, r)
		}
	}
}

// TestJournalTornTail: a partial append (torn length, torn payload, or
// corrupted CRC) is truncated on reopen; the valid prefix survives; the
// journal keeps appending cleanly from the cut.
func TestJournalTornTail(t *testing.T) {
	for _, tear := range []struct {
		name string
		grow func([]byte) []byte
	}{
		{"torn-length", func(b []byte) []byte { return append(b, 0x05, 0x00) }},
		{"torn-payload", func(b []byte) []byte {
			return append(b, 0xff, 0x00, 0x00, 0x00, 1, 2, 3, 4, 9, 9)
		}},
		{"crc-mismatch", func(b []byte) []byte {
			return append(b, 2, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 7, 7)
		}},
	} {
		t.Run(tear.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "journal.nsj")
			j, _, err := OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			j.Append([]byte("one"))
			j.Append([]byte("two"))
			j.Close()
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tear.grow(blob), 0o644); err != nil {
				t.Fatal(err)
			}
			j2, recs, err := OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			if !j2.Torn() {
				t.Fatal("torn tail not reported")
			}
			if len(recs) != 2 || string(recs[0]) != "one" || string(recs[1]) != "two" {
				t.Fatalf("valid prefix lost: %q", recs)
			}
			if err := j2.Append([]byte("three")); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			_, recs, err = OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 3 || string(recs[2]) != "three" {
				t.Fatalf("append after truncation: %q", recs)
			}
		})
	}
}

func TestJournalTruncateTo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.nsj")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		j.Append([]byte{byte(i)})
	}
	if err := j.TruncateTo(7); err == nil {
		t.Fatal("overlong truncation accepted")
	}
	if err := j.TruncateTo(3); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Fatalf("Len = %d", j.Len())
	}
	j.Append([]byte{0xcc})
	j.Close()
	_, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{{0}, {1}, {2}, {0xcc}}
	if len(recs) != len(want) {
		t.Fatalf("%d records after truncate+append", len(recs))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Fatalf("record %d = %v, want %v", i, recs[i], want[i])
		}
	}
}

func TestJournalRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.nsj")
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("foreign file accepted as journal")
	}
}
