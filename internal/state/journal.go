package state

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Journal file format (little-endian):
//
//	header:  magic u32 "NSJL" | version u16 | flags u16 (zero)
//	record:  length u32 | crc32 u32 | payload
//
// Records are appended and fsynced one at a time; a crash mid-append
// leaves a torn tail that OpenJournal detects (short read or CRC
// mismatch) and truncates, so the journal always reopens to a valid
// prefix. The journal is the write-ahead decision log of the control
// loop: every interval's decision is appended before the loop advances,
// and recovery re-executes from the last snapshot, cross-checking the
// re-derived decisions against the surviving journal records.

const (
	journalMagic   = 0x4c4a534e // "NSJL"
	journalVersion = 1
	journalHeader  = 8
	recordHeader   = 8
)

// maxRecordSize bounds a single journal record; a length prefix beyond
// it is treated as a torn tail rather than an allocation request.
const maxRecordSize = 16 << 20

// ErrTornTail annotates the (non-fatal) truncation OpenJournal performs.
var ErrTornTail = errors.New("state: torn journal tail truncated")

// Journal is an append-only, CRC-guarded record log. It is not safe for
// concurrent use.
type Journal struct {
	f       *os.File
	path    string
	offsets []int64 // end offset of each record
	torn    bool
	// scratch assembles header+payload for one write call; reused across
	// appends so the steady-state append path allocates nothing.
	scratch []byte
}

// OpenJournal opens (creating if needed) the journal at path, scans the
// valid record prefix, truncates any torn tail, and returns the journal
// positioned for appending together with the surviving record payloads.
func OpenJournal(path string) (*Journal, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("state: open journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	records, err := j.recover()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, records, nil
}

// recover scans the file, truncates at the first invalid byte, and
// returns the valid records.
func (j *Journal) recover() ([][]byte, error) {
	blob, err := io.ReadAll(j.f)
	if err != nil {
		return nil, fmt.Errorf("state: read journal: %w", err)
	}
	if len(blob) == 0 {
		// Fresh journal: write the header.
		var e Encoder
		e.U32(journalMagic)
		e.U16(journalVersion)
		e.U16(0)
		if _, err := j.f.Write(e.Data()); err != nil {
			return nil, fmt.Errorf("state: init journal: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return nil, fmt.Errorf("state: init journal: %w", err)
		}
		return nil, nil
	}
	if len(blob) < journalHeader ||
		binary.LittleEndian.Uint32(blob[0:]) != journalMagic ||
		binary.LittleEndian.Uint16(blob[4:]) != journalVersion {
		// Unrecognizable file: refuse rather than silently overwrite —
		// the operator pointed the daemon at something that is not a
		// netsamp journal.
		return nil, fmt.Errorf("state: %s is not a netsamp journal", j.path)
	}
	var records [][]byte
	off := int64(journalHeader)
	for {
		rest := blob[off:]
		if len(rest) == 0 {
			break
		}
		if len(rest) < recordHeader {
			j.torn = true
			break
		}
		n := binary.LittleEndian.Uint32(rest[0:])
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n > maxRecordSize || int(n) > len(rest)-recordHeader {
			j.torn = true
			break
		}
		payload := rest[recordHeader : recordHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			j.torn = true
			break
		}
		off += recordHeader + int64(n)
		j.offsets = append(j.offsets, off)
		records = append(records, payload)
	}
	if j.torn {
		if err := j.f.Truncate(off); err != nil {
			return nil, fmt.Errorf("state: truncate torn tail: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return nil, fmt.Errorf("state: truncate torn tail: %w", err)
		}
	}
	if _, err := j.f.Seek(off, io.SeekStart); err != nil {
		return nil, fmt.Errorf("state: seek journal: %w", err)
	}
	return records, nil
}

// Torn reports whether OpenJournal truncated a torn tail.
func (j *Journal) Torn() bool { return j.torn }

// Len returns the number of records in the journal.
func (j *Journal) Len() int { return len(j.offsets) }

// Append writes one record (length, CRC, payload) and fsyncs, so an
// acknowledged append survives a crash. Header and payload are staged in
// a journal-owned scratch buffer and issued as one Write so a record is
// never split across syscalls.
//
//netsamp:noalloc
func (j *Journal) Append(payload []byte) error {
	if len(payload) > maxRecordSize {
		return fmt.Errorf("state: journal record of %d bytes exceeds limit", len(payload))
	}
	j.scratch = append(j.scratch[:0],
		byte(len(payload)), byte(len(payload)>>8), byte(len(payload)>>16), byte(len(payload)>>24))
	sum := crc32.ChecksumIEEE(payload)
	j.scratch = append(j.scratch, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
	j.scratch = append(j.scratch, payload...)
	if _, err := j.f.Write(j.scratch); err != nil {
		return fmt.Errorf("state: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("state: sync journal: %w", err)
	}
	end := int64(journalHeader)
	if len(j.offsets) > 0 {
		end = j.offsets[len(j.offsets)-1]
	}
	j.offsets = append(j.offsets, end+recordHeader+int64(len(payload)))
	return nil
}

// TruncateTo keeps the first n records and discards the rest — recovery
// cuts the journal back to the snapshot boundary before re-executing
// (and re-journaling) the intervals after it.
func (j *Journal) TruncateTo(n int) error {
	if n < 0 || n > len(j.offsets) {
		return fmt.Errorf("state: truncate to %d of %d records", n, len(j.offsets))
	}
	if n == len(j.offsets) {
		return nil
	}
	end := int64(journalHeader)
	if n > 0 {
		end = j.offsets[n-1]
	}
	if err := j.f.Truncate(end); err != nil {
		return fmt.Errorf("state: truncate journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("state: truncate journal: %w", err)
	}
	if _, err := j.f.Seek(end, io.SeekStart); err != nil {
		return fmt.Errorf("state: seek journal: %w", err)
	}
	j.offsets = j.offsets[:n]
	return nil
}

// Close releases the file handle.
func (j *Journal) Close() error { return j.f.Close() }
