package netflow

import (
	"testing"
	"testing/quick"

	"netsamp/internal/packet"
)

func sampleV5Record() V5Record {
	return V5Record{
		SrcAddr:     0x0a000001,
		DstAddr:     0xc0a80001,
		NextHop:     0x0a0000fe,
		InputIface:  3,
		OutputIface: 7,
		Packets:     1234,
		Octets:      567890,
		FirstUptime: 1000,
		LastUptime:  31000,
		SrcPort:     443,
		DstPort:     51234,
		TCPFlags:    0x1b,
		Proto:       6,
		Tos:         0x10,
		SrcAS:       786,
		DstAS:       20965,
		SrcMask:     24,
		DstMask:     16,
	}
}

func TestV5HeaderRoundTrip(t *testing.T) {
	h := V5Header{
		Count:            7,
		SysUptimeMillis:  123456,
		UnixSecs:         1101081600,
		UnixNanos:        42,
		FlowSequence:     99999,
		EngineType:       1,
		EngineID:         2,
		SamplingMode:     1,
		SamplingInterval: 1000,
	}
	wire := h.AppendTo(nil)
	if len(wire) != V5HeaderSize {
		t.Fatalf("header size = %d", len(wire))
	}
	var got V5Header
	if err := got.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
}

func TestV5HeaderErrors(t *testing.T) {
	var h V5Header
	if err := h.DecodeFromBytes(make([]byte, 10)); err != ErrV5Short {
		t.Fatalf("short: %v", err)
	}
	bad := (&V5Header{Count: 1}).AppendTo(nil)
	bad[0], bad[1] = 0, 9 // version 9
	if err := h.DecodeFromBytes(bad); err != ErrV5Version {
		t.Fatalf("version: %v", err)
	}
	zero := (&V5Header{Count: 0}).AppendTo(nil)
	if err := h.DecodeFromBytes(zero); err != ErrV5BadCount {
		t.Fatalf("count 0: %v", err)
	}
	big := (&V5Header{Count: 31}).AppendTo(nil)
	if err := h.DecodeFromBytes(big); err != ErrV5BadCount {
		t.Fatalf("count 31: %v", err)
	}
}

func TestV5RecordRoundTrip(t *testing.T) {
	r := sampleV5Record()
	wire := r.AppendTo(nil)
	if len(wire) != V5RecordSize {
		t.Fatalf("record size = %d", len(wire))
	}
	var got V5Record
	if err := got.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip: %+v != %+v", got, r)
	}
}

func TestV5DatagramRoundTrip(t *testing.T) {
	var records []V5Record
	for i := 0; i < 30; i++ {
		r := sampleV5Record()
		r.SrcPort = uint16(i)
		records = append(records, r)
	}
	h := V5Header{SysUptimeMillis: 5, UnixSecs: 6, FlowSequence: 7, SamplingMode: 1, SamplingInterval: 100}
	wire, err := EncodeV5(h, records)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != V5HeaderSize+30*V5RecordSize {
		t.Fatalf("datagram size = %d", len(wire))
	}
	gotH, gotR, err := DecodeV5(wire)
	if err != nil {
		t.Fatal(err)
	}
	if gotH.Count != 30 || gotH.FlowSequence != 7 || gotH.SamplingInterval != 100 {
		t.Fatalf("header = %+v", gotH)
	}
	for i := range records {
		if gotR[i] != records[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestV5DatagramErrors(t *testing.T) {
	if _, err := EncodeV5(V5Header{}, nil); err != ErrV5BadCount {
		t.Fatalf("empty: %v", err)
	}
	if _, err := EncodeV5(V5Header{}, make([]V5Record, 31)); err != ErrV5BadCount {
		t.Fatalf("too many: %v", err)
	}
	wire, err := EncodeV5(V5Header{}, []V5Record{sampleV5Record()})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeV5(wire[:len(wire)-1]); err != ErrV5Short {
		t.Fatalf("truncated: %v", err)
	}
}

func TestV5ConversionRoundTrip(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8, mon uint16, pkts, bytes uint32, start uint32) bool {
		start %= 4_000_000 // keep start*1000 within uint32
		rec := packet.Record{
			Key: packet.FiveTuple{
				Src: packet.Addr(src), Dst: packet.Addr(dst),
				SrcPort: sp, DstPort: dp, Proto: proto,
			},
			MonitorID: mon,
			Packets:   uint64(pkts),
			Bytes:     uint64(bytes),
			Start:     start,
			End:       start + 30,
		}
		return FromV5(ToV5(rec)) == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestV5ConversionClamps(t *testing.T) {
	rec := packet.Record{Packets: 1 << 40, Bytes: 1 << 50}
	v5 := ToV5(rec)
	if v5.Packets != 0xffffffff || v5.Octets != 0xffffffff {
		t.Fatalf("counters not clamped: %+v", v5)
	}
}

func TestSamplingIntervalFor(t *testing.T) {
	cases := []struct {
		p    float64
		want uint16
		ok   bool
	}{
		{1, 1, true},
		{0.001, 1000, true},
		{0.0025, 400, true},
		{1.0 / 16383, 16383, true},
		{1e-9, 0, false},
		{0, 0, false},
		{1.5, 0, false},
	}
	for _, c := range cases {
		got, err := SamplingIntervalFor(c.p)
		if c.ok != (err == nil) {
			t.Fatalf("p=%v: err=%v", c.p, err)
		}
		if c.ok && got != c.want {
			t.Fatalf("p=%v: interval=%d, want %d", c.p, got, c.want)
		}
	}
}

// TestV5Interop: netsamp records exported in v5 and re-imported estimate
// correctly (the renormalization path is format-agnostic).
func TestV5Interop(t *testing.T) {
	recs := []packet.Record{
		{Key: key(1), MonitorID: 2, Packets: 100, Bytes: 150000, Start: 0, End: 10},
		{Key: key(2), MonitorID: 2, Packets: 50, Bytes: 75000, Start: 301, End: 330},
	}
	var v5recs []V5Record
	for _, r := range recs {
		v5recs = append(v5recs, ToV5(r))
	}
	wire, err := EncodeV5(V5Header{SamplingMode: 1, SamplingInterval: 100}, v5recs)
	if err != nil {
		t.Fatal(err)
	}
	_, decoded, err := DecodeV5(wire)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(300, []float64{0.01}, func(packet.FiveTuple) (int, bool) { return 0, true })
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range decoded {
		est.Add(FromV5(d))
	}
	bins := est.Estimates()
	if len(bins) != 2 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0].Estimate[0] != 10000 || bins[1].Estimate[0] != 5000 {
		t.Fatalf("estimates = %v / %v", bins[0].Estimate, bins[1].Estimate)
	}
}
