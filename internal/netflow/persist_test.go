package netflow

import (
	"bytes"
	"testing"
)

// TestCollectorSnapshotRoundTrip: Snapshot → marshal → unmarshal →
// Restore reproduces the accounting state exactly, including
// outstanding holes, so reordered datagrams arriving after a restart
// still reconcile against pre-crash gaps.
func TestCollectorSnapshotRoundTrip(t *testing.T) {
	c := offlineCollector()
	c.decode(dgram(7, 0, 10))
	c.decode(dgram(7, 15, 5)) // records 10..14 missing → a hole
	c.decode(dgram(3, 0, 4))
	c.decode(dgram(3, 0, 4))          // duplicate
	c.decode(dgram(7, 0, 3)[:20])     // malformed (mid-record cut)

	snap := c.Snapshot()
	if len(snap.Exporters) != 2 {
		t.Fatalf("%d exporters in snapshot", len(snap.Exporters))
	}
	if snap.Exporters[0].ID != 3 || snap.Exporters[1].ID != 7 {
		t.Fatalf("exporters not sorted: %+v", snap.Exporters)
	}
	blob, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: marshaling twice yields identical bytes.
	blob2, _ := c.Snapshot().MarshalBinary()
	if !bytes.Equal(blob, blob2) {
		t.Fatal("snapshot encoding is not deterministic")
	}

	var back CollectorSnapshot
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	c2 := offlineCollector()
	if err := c2.Restore(back); err != nil {
		t.Fatal(err)
	}
	if got, want := c2.Stats(), c.Stats(); got != want {
		t.Fatalf("restored stats %+v, want %+v", got, want)
	}
	es, ok := c2.ExporterStats(7)
	if !ok || es.LostRecords != 5 {
		t.Fatalf("exporter 7 after restore: %+v ok=%v", es, ok)
	}

	// The hole survives: the missing datagram arriving after the restore
	// is credited back, not counted as a duplicate.
	c2.decode(dgram(7, 10, 5))
	es, _ = c2.ExporterStats(7)
	if es.LostRecords != 0 || es.Duplicates != 0 {
		t.Fatalf("late fill after restore not reconciled: %+v", es)
	}
	// And the expected next sequence carried over: the next in-order
	// datagram introduces no gap.
	c2.decode(dgram(7, 20, 2))
	es, _ = c2.ExporterStats(7)
	if es.LostRecords != 0 {
		t.Fatalf("in-order datagram after restore counted lost records: %+v", es)
	}
}

// TestCollectorSnapshotRejectsGarbage: corrupted payloads fail decode
// instead of installing bogus state.
func TestCollectorSnapshotRejectsGarbage(t *testing.T) {
	c := offlineCollector()
	c.decode(dgram(1, 0, 5))
	blob, err := c.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var s CollectorSnapshot
	if err := s.UnmarshalBinary(blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if err := s.UnmarshalBinary(append(blob, 1)); err == nil {
		t.Fatal("oversized snapshot accepted")
	}
	bad := append([]byte{}, blob...)
	bad[0] = 0xff // version
	if err := s.UnmarshalBinary(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	// Restore validation: duplicate exporter IDs and hole overflow.
	dup := CollectorSnapshot{Exporters: []ExporterSnapshot{{ID: 4}, {ID: 4}}}
	if err := c.Restore(dup); err == nil {
		t.Fatal("duplicate exporter accepted")
	}
	over := CollectorSnapshot{Exporters: []ExporterSnapshot{{ID: 4, Holes: make([]Hole, maxSeqHoles+1)}}}
	if err := c.Restore(over); err == nil {
		t.Fatal("hole overflow accepted")
	}
}
