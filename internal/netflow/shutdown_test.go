package netflow

import (
	"sync"
	"testing"

	"netsamp/internal/packet"
)

// TestCollectorCloseWithStalledConsumer pins the shutdown contract: when
// the batch channel's consumer went away, Close must still return
// promptly, no send may happen after it, and every record the collector
// decoded is either delivered on the channel or counted in
// DroppedRecords — received == delivered + dropped, exactly. Run under
// -race this also pins the done/closeOnce synchronization.
func TestCollectorCloseWithStalledConsumer(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExporter(c.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Nobody drains Batches: the channel buffer (256) fills and the read
	// loop parks on the hand-off. Send enough datagrams to guarantee the
	// park on any scheduler interleaving.
	recs := make([]packet.Record, MaxRecordsPerDatagram)
	for i := range recs {
		recs[i] = packet.Record{Key: packet.FiveTuple{Src: 1, Dst: 2, SrcPort: uint16(i), DstPort: 443, Proto: packet.ProtoTCP}, Packets: 1}
	}
	for i := 0; i < 400; i++ {
		if err := exp.Export(recs); err != nil {
			t.Fatal(err)
		}
	}
	// Give the read loop a chance to ingest; exact intake does not
	// matter (UDP may shed datagrams — sequence gaps account those), the
	// invariant below must hold for whatever was decoded.
	var closers sync.WaitGroup
	closers.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer closers.Done()
			if err := c.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	closers.Wait()
	// After Close the channel is closed; drain what was delivered.
	var delivered uint64
	for b := range c.Batches() {
		delivered += uint64(len(b.Records))
	}
	st := c.Stats()
	if st.Records != delivered+st.DroppedRecords {
		t.Fatalf("accounting: decoded %d != delivered %d + dropped %d",
			st.Records, delivered, st.DroppedRecords)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestExportersSorted pins the deterministic exporter listing: ascending
// IDs, one entry per exporter, stats matching the per-ID lookup.
func TestExportersSorted(t *testing.T) {
	c := offlineCollector()
	for _, id := range []uint32{9, 3, 7, 1, 3, 9} {
		c.decode(dgramFor(id, 0, 4))
	}
	accounts := c.Exporters()
	if len(accounts) != 4 {
		t.Fatalf("got %d exporters, want 4", len(accounts))
	}
	want := []uint32{1, 3, 7, 9}
	for i, acc := range accounts {
		if acc.ID != want[i] {
			t.Fatalf("exporter %d: ID %d, want %d (listing must be ascending)", i, acc.ID, want[i])
		}
		st, ok := c.ExporterStats(acc.ID)
		if !ok || st != acc.Stats {
			t.Fatalf("exporter %d: listing stats %+v != lookup stats %+v", acc.ID, acc.Stats, st)
		}
	}
}

// dgramFor builds a datagram for an arbitrary exporter ID (dgram in
// faulttol_test is fixed per-test; this variant varies the exporter).
func dgramFor(exporter, seq uint32, n int) []byte {
	h := packet.Header{Count: uint8(n), Seq: seq, Exporter: exporter}
	b := h.AppendTo(nil)
	for i := 0; i < n; i++ {
		rec := packet.Record{
			Key:     packet.FiveTuple{Src: packet.Addr(exporter), Dst: 2, SrcPort: uint16(i), DstPort: 443, Proto: packet.ProtoTCP},
			Packets: 1,
		}
		b = rec.AppendTo(b)
	}
	return b
}

// TestEstimatorAddCounts pins the shard-merge entry point: AddCounts
// folds pre-classified counts into the same bins Add would, so a sharded
// pipeline and a single-threaded one produce identical estimates.
func TestEstimatorAddCounts(t *testing.T) {
	rho := []float64{0.5, 0.25}
	classify := func(key packet.FiveTuple) (int, bool) { return int(key.DstPort), true }
	direct, err := NewEstimator(300, rho, classify)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := NewEstimator(300, rho, classify)
	if err != nil {
		t.Fatal(err)
	}
	// Two intervals, two ODs, via the record path...
	for _, rec := range []packet.Record{
		{Key: packet.FiveTuple{DstPort: 0}, Packets: 10, Start: 10},
		{Key: packet.FiveTuple{DstPort: 1}, Packets: 4, Start: 250},
		{Key: packet.FiveTuple{DstPort: 0}, Packets: 7, Start: 400},
	} {
		direct.Add(rec)
	}
	// ...and the same totals via two shards' merged counts.
	if err := merged.AddCounts(10, []uint64{10, 0}); err != nil {
		t.Fatal(err)
	}
	if err := merged.AddCounts(250, []uint64{0, 4}); err != nil {
		t.Fatal(err)
	}
	if err := merged.AddCounts(400, []uint64{7, 0}); err != nil {
		t.Fatal(err)
	}
	if err := merged.AddCounts(10, []uint64{0}); err == nil {
		t.Fatal("AddCounts accepted a mis-sized counts slice")
	}
	a, b := direct.Estimates(), merged.Estimates()
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("bins: direct %d, merged %d, want 2", len(a), len(b))
	}
	for i := range a {
		if a[i].Start != b[i].Start {
			t.Fatalf("bin %d: start %d != %d", i, a[i].Start, b[i].Start)
		}
		for k := range rho {
			if a[i].Sampled[k] != b[i].Sampled[k] || a[i].Estimate[k] != b[i].Estimate[k] {
				t.Fatalf("bin %d od %d: direct (%d, %v) != merged (%d, %v)",
					i, k, a[i].Sampled[k], a[i].Estimate[k], b[i].Sampled[k], b[i].Estimate[k])
			}
		}
	}
}
