package netflow

import (
	"math"
	"testing"
)

func TestLinkLoadObservation(t *testing.T) {
	est, rel, low := LinkLoadObservation(1000, 0.1, 0, 100)
	if est != 100 {
		t.Fatalf("estimate %v, want 100", est)
	}
	if want := math.Sqrt(0.9 / 1000); rel != want {
		t.Fatalf("relErr %v, want %v", rel, want)
	}
	if low {
		t.Fatal("1000 samples at rate 0.1 flagged low-confidence")
	}

	// Transport loss renormalizes the estimate up and inflates the error:
	// the surviving records represent more traffic, known less precisely.
	lossEst, lossRel, _ := LinkLoadObservation(1000, 0.1, 0.5, 100)
	if lossEst != 200 {
		t.Fatalf("lossy estimate %v, want 200", lossEst)
	}
	if lossRel <= rel {
		t.Fatalf("loss did not inflate relErr: %v <= %v", lossRel, rel)
	}

	// A starved observation crosses the low-confidence threshold.
	_, rel, low = LinkLoadObservation(2, 0.01, 0, 100)
	if !low || rel <= LowConfidenceRelErr {
		t.Fatalf("2 samples at rate 0.01: relErr %v, low=%v, want low-confidence", rel, low)
	}

	// Degenerate inputs yield +Inf error (loadtrack treats the interval
	// as unobserved) and the low-confidence flag.
	degenerate := []struct {
		sampled              uint64
		rate, loss, interval float64
	}{
		{0, 0.1, 0, 100},  // nothing sampled
		{10, 0, 0, 100},   // monitor off
		{10, 0.1, 1, 100}, // total transport loss
		{10, 2, 0, 100},   // nonsensical rate
		{10, 0.1, 0, 0},   // empty interval
	}
	for i, c := range degenerate {
		est, rel, low := LinkLoadObservation(c.sampled, c.rate, c.loss, c.interval)
		if est != 0 || !math.IsInf(rel, 1) || !low {
			t.Errorf("case %d: (%v, %v, %v), want (0, +Inf, true)", i, est, rel, low)
		}
	}
}
