package netflow

import (
	"math"
	"net"
	"testing"
	"time"

	"netsamp/internal/faults"
	"netsamp/internal/packet"
)

// dgram encodes one export datagram with the given flow sequence and
// record count, bypassing the network.
func dgram(exporter, seq uint32, count int) []byte {
	h := packet.Header{Count: uint8(count), Seq: seq, Exporter: exporter}
	b := h.AppendTo(nil)
	for i := 0; i < count; i++ {
		rec := packet.Record{Key: key(byte(i)), Packets: 1}
		b = rec.AppendTo(b)
	}
	return b
}

// offlineCollector builds a collector whose decode path can be driven
// directly, without a socket.
func offlineCollector() *Collector {
	return &Collector{exps: make(map[uint32]*SeqTracker)}
}

func TestExporterStatsGap(t *testing.T) {
	c := offlineCollector()
	c.decode(dgram(7, 0, 10))
	c.decode(dgram(7, 10, 5))
	// Records 15..24 lost: next datagram starts at 25.
	c.decode(dgram(7, 25, 5))
	es, ok := c.ExporterStats(7)
	if !ok {
		t.Fatal("exporter unknown")
	}
	if es.Received != 20 || es.LostRecords != 10 || es.Duplicates != 0 || es.Datagrams != 3 {
		t.Fatalf("stats = %+v", es)
	}
	if lf := es.LossFraction(); math.Abs(lf-10.0/30) > 1e-12 {
		t.Fatalf("LossFraction = %v", lf)
	}
	if agg := c.Stats(); agg.LostRecords != 10 || agg.Records != 20 {
		t.Fatalf("aggregate = %+v", agg)
	}
}

func TestExporterStatsDuplicate(t *testing.T) {
	c := offlineCollector()
	c.decode(dgram(3, 0, 4))
	c.decode(dgram(3, 4, 4))
	c.decode(dgram(3, 4, 4)) // exact duplicate of the previous datagram
	c.decode(dgram(3, 0, 4)) // stale replay from further back
	es, _ := c.ExporterStats(3)
	if es.Duplicates != 2 || es.LostRecords != 0 || es.Received != 16 {
		t.Fatalf("stats = %+v", es)
	}
}

// TestExporterStatsReorderHealsGap: a late datagram that fills a
// previously counted gap credits the loss back instead of counting as a
// duplicate — reordering alone must not inflate the loss estimate.
func TestExporterStatsReorderHealsGap(t *testing.T) {
	c := offlineCollector()
	c.decode(dgram(1, 0, 2))
	c.decode(dgram(1, 5, 3)) // records 2..4 missing so far
	es, _ := c.ExporterStats(1)
	if es.LostRecords != 3 {
		t.Fatalf("gap not counted: %+v", es)
	}
	c.decode(dgram(1, 2, 3)) // the missing datagram arrives late
	es, _ = c.ExporterStats(1)
	if es.LostRecords != 0 || es.Duplicates != 0 {
		t.Fatalf("reorder not healed: %+v", es)
	}
	if agg := c.Stats(); agg.LostRecords != 0 {
		t.Fatalf("aggregate not healed: %+v", agg)
	}
	// Partial fill: lose 10, recover an interior 4.
	c.decode(dgram(1, 18, 2)) // records 8..17 missing
	c.decode(dgram(1, 12, 4)) // interior fill
	es, _ = c.ExporterStats(1)
	if es.LostRecords != 6 {
		t.Fatalf("partial heal wrong: %+v", es)
	}
}

// TestExporterStatsWraparound: FlowSequence is uint32 and wraps; gap
// accounting must survive the wrap.
func TestExporterStatsWraparound(t *testing.T) {
	c := offlineCollector()
	start := uint32(0xffffffff - 9) // 10 records before the wrap point
	c.decode(dgram(2, start, 10))   // next expected: 0
	c.decode(dgram(2, 0, 5))        // in order across the wrap
	es, _ := c.ExporterStats(2)
	if es.LostRecords != 0 || es.Duplicates != 0 {
		t.Fatalf("wraparound misread as gap/dup: %+v", es)
	}
	// A gap that spans the wrap: expected 5, received 3 past the wrap.
	c.decode(dgram(2, 8, 4))
	es, _ = c.ExporterStats(2)
	if es.LostRecords != 3 {
		t.Fatalf("gap across wrap = %+v", es)
	}
}

func TestExporterRetryRecoversTransientErrors(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	conn, err := net.Dial("udp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fc := faults.NewFlakyConn(conn)
	exp := NewExporterConn(fc, 5)
	defer exp.Close()
	exp.SetRetry(RetryPolicy{MaxRetries: 3, Backoff: time.Millisecond})

	fc.FailNext(2) // two transient failures, then the wire heals
	if err := exp.Export([]packet.Record{{Key: key(1), Packets: 9}}); err != nil {
		t.Fatal(err)
	}
	if err := exp.Flush(); err != nil {
		t.Fatalf("retries did not recover: %v", err)
	}
	b := <-col.Batches()
	if len(b.Records) != 1 || b.Records[0].Packets != 9 {
		t.Fatalf("batch = %+v", b)
	}
	if exp.Dropped() != 0 || exp.Sent() != 1 {
		t.Fatalf("dropped=%d sent=%d", exp.Dropped(), exp.Sent())
	}
	if exp.Retries() < 2 {
		t.Fatalf("retries = %d, want >= 2", exp.Retries())
	}
}

// TestExporterDropSurfacesAsSequenceGap: when retries are exhausted the
// records are dropped and counted — and because the flow sequence still
// advances, the collector sees the loss as an ordinary gap.
func TestExporterDropSurfacesAsSequenceGap(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	conn, err := net.Dial("udp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fc := faults.NewFlakyConn(conn)
	exp := NewExporterConn(fc, 6)
	defer exp.Close()
	exp.SetRetry(RetryPolicy{MaxRetries: 1})

	send := func(n byte) error {
		if err := exp.Export([]packet.Record{{Key: key(n), Packets: uint64(n)}}); err != nil {
			return err
		}
		return exp.Flush()
	}
	if err := send(1); err != nil {
		t.Fatal(err)
	}
	<-col.Batches()
	fc.FailNext(10) // outage longer than the retry budget
	if err := send(2); err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if exp.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", exp.Dropped())
	}
	fc.FailNext(0)
	if err := send(3); err != nil {
		t.Fatal(err)
	}
	<-col.Batches()
	es, ok := col.ExporterStats(6)
	if !ok || es.LostRecords != 1 || es.Received != 2 {
		t.Fatalf("collector missed the drop gap: %+v ok=%v", es, ok)
	}
}

// TestChannelConnEndToEnd drives an unmodified exporter over a
// fault-injecting channel and checks the collector's loss accounting
// agrees with the channel's ground truth.
func TestChannelConnEndToEnd(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	conn, err := net.Dial("udp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.MustPlan(faults.Config{Seed: 21, DatagramLoss: 0.25})
	ch := plan.Channel(8)
	exp := NewExporterConn(faults.NewChannelConn(conn, ch), 8)
	defer exp.Close()

	const n = 200
	for i := 0; i < n; i++ {
		if err := exp.Export([]packet.Record{{Key: key(byte(i)), Packets: 1}}); err != nil {
			t.Fatal(err)
		}
		if err := exp.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if ch.Lost() == 0 {
		t.Fatal("channel injected no loss")
	}
	want := uint64(n) - ch.Lost()
	deadline := time.Now().Add(5 * time.Second)
	for col.Stats().Datagrams < want {
		if time.Now().After(deadline) {
			t.Fatalf("collector got %d datagrams, want %d", col.Stats().Datagrams, want)
		}
		time.Sleep(time.Millisecond)
	}
	es, _ := col.ExporterStats(8)
	// Trailing losses are invisible until a later datagram arrives; the
	// final datagram may have been dropped, so allow the tail.
	if es.LostRecords > ch.Lost() || ch.Lost()-es.LostRecords > 3 {
		t.Fatalf("collector lost=%d, channel dropped=%d", es.LostRecords, ch.Lost())
	}
	if es.Received != want {
		t.Fatalf("received %d, want %d", es.Received, want)
	}
}

func TestEstimatorTransportLossInflation(t *testing.T) {
	classify := func(k packet.FiveTuple) (int, bool) { return 0, true }
	est, err := NewEstimator(300, []float64{0.1}, classify)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.SetTransportLoss(1); err == nil {
		t.Fatal("loss fraction 1 accepted")
	}
	if err := est.SetTransportLoss(-0.1); err == nil {
		t.Fatal("negative loss accepted")
	}
	est.Add(packet.Record{Key: key(1), Packets: 100, Start: 10})
	// Without loss: estimate = 100 / 0.1 = 1000.
	bins := est.Estimates()
	if len(bins) != 1 || math.Abs(bins[0].Estimate[0]-1000) > 1e-9 {
		t.Fatalf("bins = %+v", bins)
	}
	base := bins[0].RelStdErr[0]
	if math.Abs(base-math.Sqrt(0.9/100)) > 1e-12 {
		t.Fatalf("RelStdErr = %v", base)
	}
	if bins[0].LowConfidence[0] {
		t.Fatal("confident estimate flagged")
	}
	// 50% transport loss: the effective inclusion rate halves, the
	// estimate compensates (×2) and the error bars widen.
	if err := est.SetTransportLoss(0.5); err != nil {
		t.Fatal(err)
	}
	bins = est.Estimates()
	if math.Abs(bins[0].Estimate[0]-2000) > 1e-9 {
		t.Fatalf("loss-compensated estimate = %v", bins[0].Estimate[0])
	}
	if bins[0].RelStdErr[0] <= base {
		t.Fatalf("variance not inflated: %v <= %v", bins[0].RelStdErr[0], base)
	}
}

func TestEstimatorLowConfidenceFlag(t *testing.T) {
	classify := func(k packet.FiveTuple) (int, bool) { return int(k.SrcPort % 2), true }
	est, err := NewEstimator(300, []float64{0.001, 0}, classify)
	if err != nil {
		t.Fatal(err)
	}
	rec := packet.Record{Key: key(2), Packets: 1} // SrcPort even → OD 0
	rec.Key.SrcPort = 1000
	est.Add(rec)
	bins := est.Estimates()
	// One sampled packet at ρ = 0.001: RelStdErr ≈ 1 → flagged.
	if !bins[0].LowConfidence[0] {
		t.Fatalf("sparse estimate not flagged: %+v", bins[0])
	}
	// Unmonitored pair (ρ = 0): +Inf error, flagged, estimate 0.
	if !bins[0].LowConfidence[1] || !math.IsInf(bins[0].RelStdErr[1], 1) || bins[0].Estimate[1] != 0 {
		t.Fatalf("unmonitored pair = %+v", bins[0])
	}
}
