package netflow

import (
	"encoding/binary"
	"errors"
	"fmt"

	"netsamp/internal/packet"
)

// NetFlow v5 is the export format of the routers the paper configures
// (Cisco sampled NetFlow; GEANT ran the Juniper-compatible
// implementation). This file implements the v5 wire format so netsamp
// records interoperate with standard collectors: a 24-byte header
// followed by up to 30 48-byte records, all fields big-endian.

// V5HeaderSize and V5RecordSize are the NetFlow v5 wire sizes.
const (
	V5HeaderSize  = 24
	V5RecordSize  = 48
	V5MaxRecords  = 30
	v5Version     = 5
	v5MaxDatagram = V5HeaderSize + V5MaxRecords*V5RecordSize
)

// V5Header is the NetFlow v5 export datagram header.
type V5Header struct {
	Count            uint16 // records in this datagram (1..30)
	SysUptimeMillis  uint32 // ms since the exporter booted
	UnixSecs         uint32 // export timestamp, seconds
	UnixNanos        uint32
	FlowSequence     uint32 // total flows exported before this datagram
	EngineType       uint8
	EngineID         uint8
	SamplingMode     uint8  // 2-bit mode; 1 = packet-sampled
	SamplingInterval uint16 // 14-bit N of 1-in-N sampling
}

// V5Record is one NetFlow v5 flow record. Fields netsamp does not model
// (nexthop, interfaces beyond the monitor ID, TCP flags, ToS, AS
// numbers, masks) are carried verbatim so foreign records survive a
// decode/encode round trip.
type V5Record struct {
	SrcAddr, DstAddr, NextHop uint32
	InputIface, OutputIface   uint16
	Packets, Octets           uint32
	FirstUptime, LastUptime   uint32 // ms since exporter boot
	SrcPort, DstPort          uint16
	TCPFlags, Proto, Tos      uint8
	SrcAS, DstAS              uint16
	SrcMask, DstMask          uint8
}

// Errors of the v5 codec.
var (
	ErrV5Short    = errors.New("netflow: buffer too short for v5 datagram")
	ErrV5Version  = errors.New("netflow: not a NetFlow v5 datagram")
	ErrV5BadCount = errors.New("netflow: v5 record count out of range")
)

// AppendTo appends the 24-byte header encoding.
func (h *V5Header) AppendTo(b []byte) []byte {
	var buf [V5HeaderSize]byte
	binary.BigEndian.PutUint16(buf[0:], v5Version)
	binary.BigEndian.PutUint16(buf[2:], h.Count)
	binary.BigEndian.PutUint32(buf[4:], h.SysUptimeMillis)
	binary.BigEndian.PutUint32(buf[8:], h.UnixSecs)
	binary.BigEndian.PutUint32(buf[12:], h.UnixNanos)
	binary.BigEndian.PutUint32(buf[16:], h.FlowSequence)
	buf[20] = h.EngineType
	buf[21] = h.EngineID
	binary.BigEndian.PutUint16(buf[22:], uint16(h.SamplingMode&0x3)<<14|h.SamplingInterval&0x3fff)
	return append(b, buf[:]...)
}

// DecodeFromBytes parses a v5 header from the front of b.
func (h *V5Header) DecodeFromBytes(b []byte) error {
	if len(b) < V5HeaderSize {
		return ErrV5Short
	}
	if binary.BigEndian.Uint16(b[0:]) != v5Version {
		return ErrV5Version
	}
	h.Count = binary.BigEndian.Uint16(b[2:])
	if h.Count == 0 || h.Count > V5MaxRecords {
		return ErrV5BadCount
	}
	h.SysUptimeMillis = binary.BigEndian.Uint32(b[4:])
	h.UnixSecs = binary.BigEndian.Uint32(b[8:])
	h.UnixNanos = binary.BigEndian.Uint32(b[12:])
	h.FlowSequence = binary.BigEndian.Uint32(b[16:])
	h.EngineType = b[20]
	h.EngineID = b[21]
	sampling := binary.BigEndian.Uint16(b[22:])
	h.SamplingMode = uint8(sampling >> 14)
	h.SamplingInterval = sampling & 0x3fff
	return nil
}

// AppendTo appends the 48-byte record encoding.
func (r *V5Record) AppendTo(b []byte) []byte {
	var buf [V5RecordSize]byte
	binary.BigEndian.PutUint32(buf[0:], r.SrcAddr)
	binary.BigEndian.PutUint32(buf[4:], r.DstAddr)
	binary.BigEndian.PutUint32(buf[8:], r.NextHop)
	binary.BigEndian.PutUint16(buf[12:], r.InputIface)
	binary.BigEndian.PutUint16(buf[14:], r.OutputIface)
	binary.BigEndian.PutUint32(buf[16:], r.Packets)
	binary.BigEndian.PutUint32(buf[20:], r.Octets)
	binary.BigEndian.PutUint32(buf[24:], r.FirstUptime)
	binary.BigEndian.PutUint32(buf[28:], r.LastUptime)
	binary.BigEndian.PutUint16(buf[32:], r.SrcPort)
	binary.BigEndian.PutUint16(buf[34:], r.DstPort)
	// buf[36] pad
	buf[37] = r.TCPFlags
	buf[38] = r.Proto
	buf[39] = r.Tos
	binary.BigEndian.PutUint16(buf[40:], r.SrcAS)
	binary.BigEndian.PutUint16(buf[42:], r.DstAS)
	buf[44] = r.SrcMask
	buf[45] = r.DstMask
	// buf[46:48] pad
	return append(b, buf[:]...)
}

// DecodeFromBytes parses a v5 record from the front of b.
func (r *V5Record) DecodeFromBytes(b []byte) error {
	if len(b) < V5RecordSize {
		return ErrV5Short
	}
	r.SrcAddr = binary.BigEndian.Uint32(b[0:])
	r.DstAddr = binary.BigEndian.Uint32(b[4:])
	r.NextHop = binary.BigEndian.Uint32(b[8:])
	r.InputIface = binary.BigEndian.Uint16(b[12:])
	r.OutputIface = binary.BigEndian.Uint16(b[14:])
	r.Packets = binary.BigEndian.Uint32(b[16:])
	r.Octets = binary.BigEndian.Uint32(b[20:])
	r.FirstUptime = binary.BigEndian.Uint32(b[24:])
	r.LastUptime = binary.BigEndian.Uint32(b[28:])
	r.SrcPort = binary.BigEndian.Uint16(b[32:])
	r.DstPort = binary.BigEndian.Uint16(b[34:])
	r.TCPFlags = b[37]
	r.Proto = b[38]
	r.Tos = b[39]
	r.SrcAS = binary.BigEndian.Uint16(b[40:])
	r.DstAS = binary.BigEndian.Uint16(b[42:])
	r.SrcMask = b[44]
	r.DstMask = b[45]
	return nil
}

// EncodeV5 packs records into one v5 datagram. flowSeq is the number of
// flows exported before this datagram (the v5 loss-accounting
// convention: gaps in FlowSequence reveal lost records, not lost
// datagrams).
func EncodeV5(h V5Header, records []V5Record) ([]byte, error) {
	if len(records) == 0 || len(records) > V5MaxRecords {
		return nil, ErrV5BadCount
	}
	h.Count = uint16(len(records))
	out := make([]byte, 0, V5HeaderSize+len(records)*V5RecordSize)
	out = h.AppendTo(out)
	for i := range records {
		out = records[i].AppendTo(out)
	}
	return out, nil
}

// DecodeV5 parses one v5 datagram.
func DecodeV5(b []byte) (V5Header, []V5Record, error) {
	var h V5Header
	if err := h.DecodeFromBytes(b); err != nil {
		return V5Header{}, nil, err
	}
	want := V5HeaderSize + int(h.Count)*V5RecordSize
	if len(b) < want {
		return V5Header{}, nil, ErrV5Short
	}
	records := make([]V5Record, h.Count)
	off := V5HeaderSize
	for i := range records {
		if err := records[i].DecodeFromBytes(b[off:]); err != nil {
			return V5Header{}, nil, err
		}
		off += V5RecordSize
	}
	return h, records, nil
}

// ToV5 converts a netsamp record into a v5 record. Trace time (seconds)
// maps onto router uptime milliseconds; the monitor ID is carried in the
// input interface index, as routers report the receiving ifIndex.
func ToV5(rec packet.Record) V5Record {
	return V5Record{
		SrcAddr:     uint32(rec.Key.Src),
		DstAddr:     uint32(rec.Key.Dst),
		InputIface:  rec.MonitorID,
		Packets:     clampU32(rec.Packets),
		Octets:      clampU32(rec.Bytes),
		FirstUptime: rec.Start * 1000,
		LastUptime:  rec.End * 1000,
		SrcPort:     rec.Key.SrcPort,
		DstPort:     rec.Key.DstPort,
		Proto:       rec.Key.Proto,
	}
}

// FromV5 converts a v5 record into a netsamp record.
func FromV5(r V5Record) packet.Record {
	return packet.Record{
		Key: packet.FiveTuple{
			Src:     packet.Addr(r.SrcAddr),
			Dst:     packet.Addr(r.DstAddr),
			SrcPort: r.SrcPort,
			DstPort: r.DstPort,
			Proto:   r.Proto,
		},
		MonitorID: r.InputIface,
		Packets:   uint64(r.Packets),
		Bytes:     uint64(r.Octets),
		Start:     r.FirstUptime / 1000,
		End:       r.LastUptime / 1000,
	}
}

func clampU32(v uint64) uint32 {
	if v > 0xffffffff {
		return 0xffffffff
	}
	return uint32(v)
}

// SamplingIntervalFor converts a sampling probability into the nearest
// v5 1-in-N sampling interval (14-bit field). It returns an error for
// probabilities that cannot be represented (p > 1 or p < 1/16383).
func SamplingIntervalFor(p float64) (uint16, error) {
	if !(p > 0 && p <= 1) {
		return 0, fmt.Errorf("netflow: sampling probability %v out of (0, 1]", p)
	}
	n := int(1/p + 0.5)
	if n < 1 {
		n = 1
	}
	if n > 0x3fff {
		return 0, fmt.Errorf("netflow: sampling probability %v below v5 resolution (1/16383)", p)
	}
	return uint16(n), nil
}
